bin/exochi_asm.ml: Array Bytes Exochi_isa Filename Fun List Printf Sys
