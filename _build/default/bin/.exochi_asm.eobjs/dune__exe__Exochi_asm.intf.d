bin/exochi_asm.mli:
