bin/exochi_bench.ml: Arg Cmd Cmdliner Exochi_kernels Exochi_memory Harness Kernel List Printf Registry String Term
