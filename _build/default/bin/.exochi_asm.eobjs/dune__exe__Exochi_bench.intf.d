bin/exochi_bench.mli:
