bin/exochi_cc.ml: Array Exochi_core Exochi_isa Filename Fun List Printf Sys
