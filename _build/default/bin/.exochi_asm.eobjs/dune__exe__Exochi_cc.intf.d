bin/exochi_cc.mli:
