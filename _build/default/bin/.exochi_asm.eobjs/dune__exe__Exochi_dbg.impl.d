bin/exochi_dbg.ml: Array Chi_debug Chilite_compile Chilite_run Exo_platform Exochi_core Exochi_cpu Exochi_isa Filename Fun In_channel List Printf String Sys
