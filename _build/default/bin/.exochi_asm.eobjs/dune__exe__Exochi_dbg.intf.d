bin/exochi_dbg.mli:
