bin/exochi_run.ml: Array Chilite_compile Chilite_run Exo_platform Exochi_accel Exochi_core Exochi_cpu Exochi_isa Exochi_memory Filename Fun List Printf Sys
