bin/exochi_run.mli:
