(* Standalone assembler driver for the two ISAs.

     exochi_asm x3k  kernel.s          assemble, print a summary
     exochi_asm x3k  kernel.s -d       assemble and disassemble back
     exochi_asm via32 main.s [-d]      same for the CPU ISA *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Array.to_list Sys.argv with
  | _ :: isa :: path :: rest ->
    let src = read_file path in
    let disasm = List.mem "-d" rest in
    let name = Filename.remove_extension (Filename.basename path) in
    (match isa with
    | "x3k" -> (
      match Exochi_isa.X3k_asm.assemble ~name src with
      | Error e ->
        prerr_endline (Exochi_isa.Loc.error_to_string e);
        exit 1
      | Ok p ->
        let bin = Exochi_isa.X3k_asm.to_binary p in
        Printf.printf "%s: %d instructions, %d surface slots, %d bytes encoded\n"
          name
          (Array.length p.Exochi_isa.X3k_ast.instrs)
          (Array.length p.Exochi_isa.X3k_ast.surfaces)
          (Bytes.length bin);
        if disasm then print_string (Exochi_isa.X3k_asm.disassemble p))
    | "via32" -> (
      match Exochi_isa.Via32_asm.assemble ~name src with
      | Error e ->
        prerr_endline (Exochi_isa.Loc.error_to_string e);
        exit 1
      | Ok p ->
        let bin = Exochi_isa.Via32_asm.to_binary p in
        Printf.printf "%s: %d instructions, %d data symbols, %d bytes encoded\n"
          name
          (Array.length p.Exochi_isa.Via32_ast.instrs)
          (Array.length p.Exochi_isa.Via32_ast.symbols)
          (Bytes.length bin);
        if disasm then print_string (Exochi_isa.Via32_asm.disassemble p))
    | other ->
      Printf.eprintf "unknown ISA %S (expected x3k or via32)\n" other;
      exit 1)
  | _ ->
    prerr_endline "usage: exochi_asm <x3k|via32> <file.s> [-d]";
    exit 1
