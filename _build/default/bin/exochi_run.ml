(* Compile and execute a CHI-lite program on the simulated EXO platform.

     exochi_run prog.chi [--memmodel cc|noncc|copy]

   print_int output goes to stdout; a simulated-platform summary follows. *)

open Exochi_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Array.to_list Sys.argv with
  | _ :: path :: rest ->
    let src = read_file path in
    let name = Filename.remove_extension (Filename.basename path) in
    let memmodel =
      let rec find = function
        | "--memmodel" :: m :: _ -> (
          match m with
          | "cc" -> Exochi_memory.Memmodel.Cc_shared
          | "noncc" -> Exochi_memory.Memmodel.Non_cc_shared
          | "copy" -> Exochi_memory.Memmodel.Data_copy
          | _ ->
            prerr_endline "memmodel must be cc, noncc or copy";
            exit 1)
        | _ :: r -> find r
        | [] -> Exochi_memory.Memmodel.Cc_shared
      in
      find rest
    in
    (match Chilite_compile.compile ~name src with
    | Error e ->
      prerr_endline (Exochi_isa.Loc.error_to_string e);
      exit 1
    | Ok compiled ->
      let platform = Exo_platform.create ~memmodel () in
      let prog = Chilite_run.load ~platform compiled in
      Chilite_run.run prog;
      List.iter (fun v -> Printf.printf "%d\n" v) (Chilite_run.output prog);
      let cpu = Exo_platform.cpu platform in
      let gpu = Exo_platform.gpu platform in
      Printf.eprintf
        "[exochi] %s: %.3f ms simulated (%s); %d shred(s); ATR %d proxies / %d \
         GTT hits; CEH %d\n"
        name
        (float_of_int (Exochi_cpu.Machine.now_ps cpu) /. 1e9)
        (Exochi_memory.Memmodel.name memmodel)
        (Exochi_accel.Gpu.shreds_completed gpu)
        (Exo_platform.atr_proxies platform)
        (Exo_platform.gtt_hits platform)
        (Exo_platform.ceh_proxies platform))
  | _ ->
    prerr_endline "usage: exochi_run <prog.chi> [--memmodel cc|noncc|copy]";
    exit 1
