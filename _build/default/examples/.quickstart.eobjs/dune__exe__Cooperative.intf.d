examples/cooperative.mli:
