examples/deblocking.mli:
