examples/exceptions.ml: Address_space Chi_descriptor Exo_platform Exochi_accel Exochi_core Exochi_isa Exochi_memory Int32 Int64 Printf
