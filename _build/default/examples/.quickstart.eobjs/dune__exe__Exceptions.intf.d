examples/exceptions.mli:
