examples/quickstart.ml: Chi_fatbin Chilite_compile Chilite_run Exo_platform Exochi_accel Exochi_core Exochi_cpu Exochi_isa Int32 List Printf String
