examples/quickstart.mli:
