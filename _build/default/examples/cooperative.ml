(* Cooperative execution: the paper's Figure 9 — 600 loop iterations run
   as exo-sequencer shreds, the remaining 200 on the IA32 sequencer, both
   over the same arrays in shared virtual memory (master_nowait).

   Run with:  dune exec examples/cooperative.exe *)

open Exochi_core

let source =
  {|
// Figure 9 of the paper, in CHI-lite: each unit of work squares eight
// elements and adds a bias; the GPU takes iterations [0, 600), the
// IA32 master takes [600, 800) element-wise.
int n = 800;
int gma_iters = 600;
int IN[6400];
int OUT[6400];

void main() {
  int i;
  chi_desc(IN, 0, 6400, 1);
  chi_desc(OUT, 1, 6400, 1);

  #pragma omp parallel target(X3000) shared(IN, OUT) private(i) master_nowait
  for (i = 0; i < 600; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    ld.8.dw    [vr2..vr9] = (IN, vr1, 0)
    mul.8.dw   [vr10..vr17] = [vr2..vr9], [vr2..vr9]
    add.8.dw   [vr10..vr17] = [vr10..vr17], 7
    st.8.dw    (OUT, vr1, 0) = [vr10..vr17]
    end
  }

  // the master covers elements [600*8, 800*8) concurrently
  for (i = 4800; i < 6400; i = i + 1) {
    OUT[i] = IN[i] * IN[i] + 7;
  }

  chi_wait();
}
|}

let () =
  print_endline "EXOCHI cooperative execution: Figure 9";
  let compiled =
    match Chilite_compile.compile ~name:"cooperative" source with
    | Ok c -> c
    | Error e -> failwith (Exochi_isa.Loc.error_to_string e)
  in
  let platform = Exo_platform.create () in
  let prog = Chilite_run.load ~platform compiled in
  for i = 0 to 6399 do
    Chilite_run.write_global prog "IN" ~index:i (Int32.of_int (i mod 100))
  done;
  Chilite_run.run prog;
  let ok = ref true in
  for i = 0 to 6399 do
    let v = i mod 100 in
    if Chilite_run.read_global prog "OUT" ~index:i <> Int32.of_int ((v * v) + 7)
    then ok := false
  done;
  let cpu = Exo_platform.cpu platform in
  let gpu = Exo_platform.gpu platform in
  Printf.printf
    "results: %s | simulated %.3f ms | %d exo shreds + IA32 master worked \
     1600 elements itself\n"
    (if !ok then "verified" else "WRONG")
    (float_of_int (Exochi_cpu.Machine.now_ps cpu) /. 1e9)
    (Exochi_accel.Gpu.shreds_completed gpu);
  Printf.printf
    "the paper's point: with a shared virtual address space both sequencer \
     kinds\ncooperate on one data structure with no copies (Section 5.3).\n"
