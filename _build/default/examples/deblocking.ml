(* H.264-style deblocking with the work-queuing (taskq/task) model of
   paper Section 4.3: a macroblock may only be filtered after its left and
   upper neighbours, expressed as task dependencies; the CHI runtime
   releases tasks as their predecessors complete and the wavefront sweeps
   the frame diagonally.

   Run with:  dune exec examples/deblocking.exe *)

open Exochi_memory
open Exochi_core
module Image = Exochi_media.Image
module Machine = Exochi_cpu.Machine

let mb = 16 (* macroblock size *)
let mbx = 20 (* 320x192 frame: 20x12 macroblocks *)
let mby = 12
let w = mbx * mb
let h = mby * mb

(* The filter: smooth the two rows/columns on each macroblock's top and
   left boundary against the already-filtered neighbours (a simplified
   H.264 deblocking kernel, strength fixed). Each task = one macroblock. *)
let x3k_filter =
  {|
; %p0 = mbx, %p1 = mby of this macroblock
  mul.1.dw vr0 = %p0, 16
  mul.1.dw vr1 = %p1, 16
  ; vertical boundary: columns x0-1 / x0 over 16 rows (skip x0 = 0)
  cmp.eq.1.dw f0 = vr0, 0
  br.any f0, HORIZ
  mov.1.dw vr2 = 0
VLOOP:
  add.1.dw vr3 = vr1, vr2
  sub.1.dw vr4 = vr0, 1
  ld.1.b vr5 = (F, vr4, vr3)
  ld.1.b vr6 = (F, vr0, vr3)
  avg.1.b vr7 = vr5, vr6
  avg.1.b vr8 = vr5, vr7
  avg.1.b vr9 = vr6, vr7
  st.1.b (F, vr4, vr3) = vr8
  st.1.b (F, vr0, vr3) = vr9
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f1 = vr2, 16
  br.any f1, VLOOP
HORIZ:
  ; horizontal boundary: rows y0-1 / y0 over 16 columns (skip y0 = 0)
  cmp.eq.1.dw f0 = vr1, 0
  br.any f0, DONE
  sub.1.dw vr4 = vr1, 1
  ld.16.b vr10 = (F, vr0, vr4)
  ld.16.b vr11 = (F, vr0, vr1)
  avg.16.b vr12 = vr10, vr11
  avg.16.b vr13 = vr10, vr12
  avg.16.b vr14 = vr11, vr12
  st.16.b (F, vr0, vr4) = vr13
  st.16.b (F, vr0, vr1) = vr14
DONE:
  fence
  end
|}

(* golden reference: same filter, in raster order (which respects the
   left/up dependencies) *)
let golden frame =
  let f = Image.init ~width:w ~height:h (fun ~x ~y -> Image.get frame ~x ~y) in
  let avg a b = (a + b + 1) lsr 1 in
  for my = 0 to mby - 1 do
    for mx = 0 to mbx - 1 do
      let x0 = mx * mb and y0 = my * mb in
      if x0 > 0 then
        for r = 0 to mb - 1 do
          let y = y0 + r in
          let p = Image.get f ~x:(x0 - 1) ~y and q = Image.get f ~x:x0 ~y in
          let m = avg p q in
          Image.set f ~x:(x0 - 1) ~y (avg p m);
          Image.set f ~x:x0 ~y (avg q m)
        done;
      if y0 > 0 then
        for c = 0 to mb - 1 do
          let x = x0 + c in
          let p = Image.get f ~x ~y:(y0 - 1) and q = Image.get f ~x ~y:y0 in
          let m = avg p q in
          Image.set f ~x ~y:(y0 - 1) (avg p m);
          Image.set f ~x ~y:y0 (avg q m)
        done
    done
  done;
  f

let () =
  print_endline "EXOCHI taskq example: H.264-style deblocking wavefront";
  let platform = Exo_platform.create () in
  let rt = Chi_runtime.create ~platform () in
  let aspace = Exo_platform.aspace platform in
  let frame =
    Image.synthetic (Exochi_util.Prng.create 31L) ~width:w ~height:h
      (Image.Checker 16)
  in
  let base =
    Address_space.alloc aspace ~name:"F"
      ~bytes:(Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear * h)
      ~align:64
  in
  let d =
    Chi_descriptor.alloc platform ~name:"F" ~base ~width:w ~height:h
      ~mode:Chi_descriptor.In_out ()
  in
  Image.store aspace frame ~surface:d.Chi_descriptor.surface;
  let prog = Exochi_isa.X3k_asm.assemble_exn ~name:"deblock" x3k_filter in
  (* One task per macroblock. A block needs its left and upper neighbours
     done (paper Section 4.3), and also its upper-right one: that block's
     vertical-edge filter writes the last column of the row our
     horizontal-edge filter reads — the classic H.264 wavefront. *)
  let tasks =
    Array.init (mbx * mby) (fun id ->
        let mx = id mod mbx and my = id / mbx in
        let deps =
          (if mx > 0 then [ id - 1 ] else [])
          @ (if my > 0 then [ id - mbx ] else [])
          @ if my > 0 && mx < mbx - 1 then [ id - mbx + 1 ] else []
        in
        { Chi_runtime.tq_params = [| mx; my |]; tq_deps = deps })
  in
  let t0 = Machine.now_ps (Exo_platform.cpu platform) in
  Chi_runtime.taskq rt ~prog ~descriptors:[ d ] ~tasks;
  let t1 = Machine.now_ps (Exo_platform.cpu platform) in
  let result = Image.load aspace ~surface:d.Chi_descriptor.surface in
  let expected = golden frame in
  Printf.printf "wavefront of %d macroblock tasks finished in %.3f ms\n"
    (Array.length tasks)
    (float_of_int (t1 - t0) /. 1e9);
  Printf.printf "dependency-ordered result matches raster-order golden: %s\n"
    (if Image.equal result expected then "yes" else "NO");
  if not (Image.equal result expected) then
    Printf.printf "max abs diff: %d\n" (Image.max_abs_diff result expected)
