(* Collaborative exception handling (paper Section 3.3): exo-sequencer
   instructions the accelerator cannot complete — IEEE division by zero,
   square roots of negatives, and the double-precision [dpadd] the X3K
   hardware does not implement at all — are proxied to the IA32 sequencer,
   emulated there with full IEEE semantics, and the results written back
   into the faulting shred's registers before it resumes.

   Run with:  dune exec examples/exceptions.exe *)

open Exochi_memory
open Exochi_core
module Gpu = Exochi_accel.Gpu

let src =
  {|
; %p0 selects the demonstration
; OUT row 0: fdiv results, row 1: fsqrt results, row 2: dpadd (as pairs)
  mov.1.dw vr9 = 0
  ; fdiv: 8.0 / {2, 0, -0, 4}: lanes 1 and 2 fault
  mov.4.f vr0 = 8.0
  mov.1.f vr1 = 2.0
  bcast.4.f vr1 = vr1
  ; build divisor vector {2, 0, 0, 4} using predication on lane index
  bcast.4.dw vr3 = 0
  add.4.dw vr3 = vr3, %lane
  cmp.eq.4.dw f0 = vr3, 1
  (f0) mov.4.f vr1 = 0.0
  cmp.eq.4.dw f1 = vr3, 2
  (f1) mov.4.f vr1 = 0.0
  fdiv.4.f vr4 = vr0, vr1
  st.4.dw (OUT, vr9, 0) = vr4
  ; fsqrt: {4, -4, 9, -1}
  mov.4.f vr5 = 4.0
  (f0) mov.4.f vr5 = -4.0
  cmp.eq.4.dw f2 = vr3, 2
  (f2) mov.4.f vr5 = 9.0
  cmp.eq.4.dw f3 = vr3, 3
  (f3) mov.4.f vr5 = -1.0
  fsqrt.4.f vr6 = vr5
  mov.1.dw vr9 = 4
  st.4.dw (OUT, vr9, 0) = vr6
  ; dpadd: a double-precision pair add the exo-sequencer cannot execute
  ; natively — lanes hold (lo, hi) words of 1.5 and 0.25; the whole
  ; instruction is emulated by proxy on the IA32 sequencer.
  bcast.2.dw vr18 = 0
  add.2.dw vr18 = vr18, %lane
  cmp.eq.2.dw f0 = vr18, 0
  bcast.2.dw vr16 = 1073217536    ; high word of 1.5 in every lane...
  (f0) mov.2.dw vr16 = 0          ; ...low word in lane 0
  bcast.2.dw vr17 = 1070596096    ; high word of 0.25
  (f0) mov.2.dw vr17 = 0
  dpadd.2.dw vr20 = vr16, vr17
  mov.1.dw vr9 = 8
  st.2.dw (OUT, vr9, 0) = vr20
  end
|}

let () =
  print_endline "EXOCHI collaborative exception handling demo";
  let platform = Exo_platform.create () in
  let aspace = Exo_platform.aspace platform in
  let base = Address_space.alloc aspace ~name:"OUT" ~bytes:4096 ~align:64 in
  let d =
    Chi_descriptor.alloc platform ~name:"OUT" ~base ~width:16 ~height:1
      ~bpp:4 ~mode:Chi_descriptor.Output ()
  in
  let prog = Exochi_isa.X3k_asm.assemble_exn ~name:"ceh" src in
  let gpu = Exo_platform.gpu platform in
  Gpu.bind gpu ~prog ~surfaces:[| d.Chi_descriptor.surface |];
  Gpu.enqueue gpu [ { Gpu.shred_id = 0; entry = 0; params = [||] } ];
  ignore (Gpu.run_to_quiescence gpu);
  let lane row i =
    Int32.float_of_bits (Address_space.read_u32 aspace (base + (4 * (row + i))))
  in
  Printf.printf "fdiv  8/{2,0,0,4}  -> [%g; %g; %g; %g]\n" (lane 0 0)
    (lane 0 1) (lane 0 2) (lane 0 3);
  Printf.printf "fsqrt {4,-4,9,-1}  -> [%g; %g; %g; %g]\n" (lane 4 0)
    (lane 4 1) (lane 4 2) (lane 4 3);
  let lo = Address_space.read_u32 aspace (base + 32) in
  let hi = Address_space.read_u32 aspace (base + 36) in
  let dbl =
    Int64.float_of_bits
      (Int64.logor
         (Int64.shift_left (Int64.logand (Int64.of_int32 hi) 0xFFFFFFFFL) 32)
         (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL))
  in
  Printf.printf "dpadd 1.5 + 0.25   -> %g (double precision, emulated on IA32)\n" dbl;
  Printf.printf
    "CEH proxy executions on the IA32 sequencer: %d (fdiv, fsqrt, dpadd)\n"
    (Exo_platform.ceh_proxies platform)
