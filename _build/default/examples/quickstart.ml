(* Quickstart: the paper's Figure 6 — a CHI-lite program that adds two
   vectors on the exo-sequencers with 8-wide SIMD inline assembly, while
   the IA32 master adds two other vectors in plain C, using master_nowait
   for concurrent execution.

   Run with:  dune exec examples/quickstart.exe *)

open Exochi_core

let source =
  {|
// Figure 6 of the paper, in CHI-lite.
int n = 800;
int A[800];
int B[800];
int C[800];
int D[800];
int E[800];
int F[800];

void main() {
  int i;

  // Table 1 API #1: describe the surfaces the accelerator will touch.
  chi_desc(A, 0, 800, 1);      // CHI_INPUT
  chi_desc(B, 0, 800, 1);
  chi_desc(C, 1, 800, 1);      // CHI_OUTPUT

  // n/8 heterogeneous shreds, each adding eight elements with 8-wide
  // SIMD; the loop index arrives in %p0 via the private clause.
  #pragma omp parallel target(X3000) shared(A, B, C) private(i) master_nowait
  for (i = 0; i < 100; i = i + 1) __asm {
    shl.1.dw   vr1 = %p0, 3
    ld.8.dw    [vr2..vr9] = (A, vr1, 0)
    ld.8.dw    [vr10..vr17] = (B, vr1, 0)
    add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
    st.8.dw    (C, vr1, 0) = [vr18..vr25]
    end
  }

  // ...meanwhile the IA32 master works on different arrays (the
  // master_nowait concurrency of Section 4.2).
  for (i = 0; i < 800; i = i + 1) {
    F[i] = D[i] + E[i];
  }

  chi_wait();
  print_int(C[0]);
  print_int(C[799]);
  print_int(F[799]);
}
|}

let () =
  print_endline "EXOCHI quickstart: Figure 6 vector add";
  let compiled =
    match Chilite_compile.compile ~name:"quickstart" source with
    | Ok c -> c
    | Error e -> failwith (Exochi_isa.Loc.error_to_string e)
  in
  Printf.printf "compiled fat binary: %d section(s): %s\n"
    (List.length (Chi_fatbin.section_names compiled.Chilite_compile.fatbin))
    (String.concat ", "
       (List.map
          (fun (isa, n) ->
            Printf.sprintf "%s:%s"
              (match isa with Chi_fatbin.Via32 -> "VIA32" | Chi_fatbin.X3k -> "X3K")
              n)
          (Chi_fatbin.section_names compiled.Chilite_compile.fatbin)));
  let platform = Exo_platform.create () in
  let prog = Chilite_run.load ~platform compiled in
  (* populate the input vectors *)
  for i = 0 to 799 do
    Chilite_run.write_global prog "A" ~index:i (Int32.of_int i);
    Chilite_run.write_global prog "B" ~index:i (Int32.of_int (1000 * i));
    Chilite_run.write_global prog "D" ~index:i (Int32.of_int (2 * i));
    Chilite_run.write_global prog "E" ~index:i (Int32.of_int (3 * i))
  done;
  Chilite_run.run prog;
  (* verify *)
  let ok = ref true in
  for i = 0 to 799 do
    if Chilite_run.read_global prog "C" ~index:i <> Int32.of_int (1001 * i)
    then ok := false;
    if Chilite_run.read_global prog "F" ~index:i <> Int32.of_int (5 * i) then
      ok := false
  done;
  Printf.printf "print_int output: %s\n"
    (String.concat " " (List.map string_of_int (Chilite_run.output prog)));
  Printf.printf "exo-sequencer result C = A + B: %s\n"
    (if !ok then "verified" else "WRONG");
  let cpu = Exo_platform.cpu platform in
  Printf.printf
    "simulated time: %.3f ms; ATR proxies: %d (then %d GTT hits); shreds: %d\n"
    (float_of_int (Exochi_cpu.Machine.now_ps cpu) /. 1e9)
    (Exo_platform.atr_proxies platform)
    (Exo_platform.gtt_hits platform)
    (Exochi_accel.Gpu.shreds_completed (Exo_platform.gpu platform))
