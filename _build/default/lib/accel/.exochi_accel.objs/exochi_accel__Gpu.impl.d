lib/accel/gpu.ml: Address_space Array Bus Cache Exochi_isa Exochi_memory Exochi_util Hashtbl Int32 Lane List Option Page_table Phys_mem Pte Queue Surface Timebase Tlb
