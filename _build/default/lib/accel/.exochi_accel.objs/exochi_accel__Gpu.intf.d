lib/accel/gpu.mli: Exochi_isa Exochi_memory Exochi_util X3k_ast
