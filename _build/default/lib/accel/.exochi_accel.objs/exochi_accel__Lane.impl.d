lib/accel/lane.ml: Exochi_isa Float Int32
