lib/accel/lane.mli: Exochi_isa X3k_ast
