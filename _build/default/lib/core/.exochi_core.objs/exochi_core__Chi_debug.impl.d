lib/core/chi_debug.ml: Array Exo_platform Exochi_accel Exochi_cpu Exochi_isa List
