lib/core/chi_debug.mli: Exo_platform Exochi_cpu Exochi_isa
