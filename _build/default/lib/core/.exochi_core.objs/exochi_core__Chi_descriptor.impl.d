lib/core/chi_descriptor.ml: Exo_platform Exochi_cpu Exochi_memory Hashtbl List Printf Surface
