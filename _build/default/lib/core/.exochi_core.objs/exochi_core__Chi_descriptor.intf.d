lib/core/chi_descriptor.mli: Exo_platform Exochi_memory
