lib/core/chi_fatbin.ml: Buffer Bytes Exochi_isa Fun Int32 List Printf String
