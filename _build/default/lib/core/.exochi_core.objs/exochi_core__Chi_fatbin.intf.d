lib/core/chi_fatbin.mli: Exochi_isa
