lib/core/chi_runtime.ml: Address_space Array Cache Chi_descriptor Exo_platform Exochi_accel Exochi_cpu Exochi_isa Exochi_memory List Memmodel Page_table Phys_mem Printf Surface
