lib/core/chi_runtime.mli: Chi_descriptor Exo_platform Exochi_isa
