lib/core/chilite_ast.ml: Exochi_isa
