lib/core/chilite_ast.mli: Exochi_isa
