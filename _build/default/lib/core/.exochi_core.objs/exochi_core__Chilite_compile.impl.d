lib/core/chilite_compile.ml: Array Buffer Chi_fatbin Chilite_ast Chilite_parser Exochi_isa List Printf Result
