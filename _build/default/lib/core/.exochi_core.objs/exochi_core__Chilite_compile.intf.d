lib/core/chilite_compile.mli: Chi_fatbin Exochi_isa
