lib/core/chilite_lexer.ml: Exochi_isa Format Int64 List String
