lib/core/chilite_lexer.mli: Exochi_isa Format
