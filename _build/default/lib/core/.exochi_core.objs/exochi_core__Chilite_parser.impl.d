lib/core/chilite_parser.ml: Chilite_ast Chilite_lexer Exochi_isa Int32 List Result
