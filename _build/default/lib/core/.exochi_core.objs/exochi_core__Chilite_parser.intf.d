lib/core/chilite_parser.mli: Chilite_ast Exochi_isa
