lib/core/chilite_run.ml: Address_space Array Chi_descriptor Chi_fatbin Chi_runtime Chilite_compile Exo_platform Exochi_accel Exochi_cpu Exochi_isa Exochi_memory Int32 List Printf Surface
