lib/core/chilite_run.mli: Chi_runtime Chilite_compile Exo_platform Exochi_cpu
