lib/core/exo_platform.ml: Address_space Array Bus Cache Exochi_accel Exochi_cpu Exochi_isa Exochi_memory Hashtbl Int64 List Memmodel Option Page_table Phys_mem Printf Pte Surface Tlb
