lib/core/exo_platform.mli: Exochi_accel Exochi_cpu Exochi_memory
