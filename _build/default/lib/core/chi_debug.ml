module Machine = Exochi_cpu.Machine
module Gpu = Exochi_accel.Gpu

type t = { platform : Exo_platform.t; mutable bps : int list }

let create platform = { platform; bps = [] }

let set_breakpoint t ~pc = if not (List.mem pc t.bps) then t.bps <- pc :: t.bps
let clear_breakpoint t ~pc = t.bps <- List.filter (( <> ) pc) t.bps
let breakpoints t = List.sort compare t.bps

type cpu_stop = Hit of int | Finished

let run_cpu t loaded ~entry ~intrinsics =
  let cpu = Exo_platform.cpu t.platform in
  let first = ref true in
  let on_instr _ ~pc =
    (* do not re-trip the breakpoint we are resuming from *)
    if !first then begin
      first := false;
      `Continue
    end
    else if List.mem pc t.bps then `Pause
    else `Continue
  in
  match Machine.run ~on_instr cpu loaded ~entry ~intrinsics with
  | Machine.Paused pc -> Hit pc
  | Machine.Halted | Machine.Ret_to_host | Machine.Fuel_exhausted -> Finished

let step_cpu t loaded ~pc ~intrinsics =
  let cpu = Exo_platform.cpu t.platform in
  let steps = ref 0 in
  let on_instr _ ~pc:_ =
    incr steps;
    if !steps > 1 then `Pause else `Continue
  in
  match Machine.run ~on_instr cpu loaded ~entry:pc ~intrinsics with
  | Machine.Paused next -> Some next
  | _ -> None

let cpu_registers t =
  let cpu = Exo_platform.cpu t.platform in
  List.map
    (fun r -> (Exochi_isa.Via32_ast.reg_name r, Machine.get_reg cpu r))
    [
      Exochi_isa.Via32_ast.EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP;
    ]

let via32_line (loaded : Machine.loaded) ~pc =
  loaded.Machine.prog.Exochi_isa.Via32_ast.instrs.(pc).Exochi_isa.Via32_ast.line

type exo_stop =
  | Exo_hit of { shred_id : int; eu : int; slot : int }
  | Exo_quiescent

let slice_ps = 250_000

let run_gpu_until t ~pc =
  let gpu = Exo_platform.gpu t.platform in
  let rec go stuck =
    if Gpu.quiescent gpu then Exo_quiescent
    else begin
      let hit =
        List.find_opt (fun (_, _, _, p) -> p = pc) (Gpu.resident gpu)
      in
      match hit with
      | Some (eu, slot, shred_id, _) -> Exo_hit { shred_id; eu; slot }
      | None ->
        let retired = Gpu.run_until gpu (Gpu.now_ps gpu + slice_ps) in
        if retired = 0 && stuck > 10_000 then Exo_quiescent
        else go (if retired = 0 then stuck + 1 else 0)
    end
  in
  go 0

let exo_reg t ~shred_id ~reg ~lane =
  Gpu.peek_reg (Exo_platform.gpu t.platform) ~shred_id ~reg ~lane

let exo_where t = Gpu.resident (Exo_platform.gpu t.platform)

let x3k_line (p : Exochi_isa.X3k_ast.program) ~pc =
  p.Exochi_isa.X3k_ast.instrs.(pc).Exochi_isa.X3k_ast.line
