(** The CHI debugging environment (paper Section 4.5): one debugger for
    both sequencer kinds.

    Part one is the command set — breakpoints, single-stepping and state
    inspection on the IA32 sequencer and on the exo-sequencers. Part two
    is the communication with the runtime layer: the exo-side commands
    work by advancing the simulated GPU in small time slices and
    inspecting resident shred contexts, which is exactly how the real
    extension talks to the CHI runtime rather than to bare hardware.

    Source-level mapping comes from the per-instruction line numbers both
    assemblers (and the CHI-lite compiler) carry into their binaries. *)

type t

val create : Exo_platform.t -> t

(** {1 IA32-side debugging} *)

val set_breakpoint : t -> pc:int -> unit
val clear_breakpoint : t -> pc:int -> unit
val breakpoints : t -> int list

type cpu_stop = Hit of int (* breakpoint pc *) | Finished

(** [run_cpu t loaded ~entry ~intrinsics] executes until a breakpoint or
    program end. Resume by calling it again with the returned pc. *)
val run_cpu :
  t ->
  Exochi_cpu.Machine.loaded ->
  entry:int ->
  intrinsics:(string -> Exochi_cpu.Machine.t -> unit) ->
  cpu_stop

(** Execute exactly one instruction; returns the next pc, or [None] at
    program end. *)
val step_cpu :
  t ->
  Exochi_cpu.Machine.loaded ->
  pc:int ->
  intrinsics:(string -> Exochi_cpu.Machine.t -> unit) ->
  int option

(** Register dump, e.g. for a [info registers] command. *)
val cpu_registers : t -> (string * int32) list

(** Source line of a VIA32 instruction. *)
val via32_line : Exochi_cpu.Machine.loaded -> pc:int -> int

(** {1 Exo-sequencer-side debugging} *)

(** [run_gpu_until t ~pc] advances the exo-sequencers until some resident
    shred reaches instruction [pc] (or everything drains). *)
type exo_stop =
  | Exo_hit of { shred_id : int; eu : int; slot : int }
  | Exo_quiescent

val run_gpu_until : t -> pc:int -> exo_stop

(** Read register lane of a (resident) shred — [info vr] at a stop. *)
val exo_reg : t -> shred_id:int -> reg:int -> lane:int -> int option

(** Resident shreds: (eu, thread slot, shred id, pc). *)
val exo_where : t -> (int * int * int * int) list

(** Source line of an X3K instruction in a bound program. *)
val x3k_line : Exochi_isa.X3k_ast.program -> pc:int -> int
