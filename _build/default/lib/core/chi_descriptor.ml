open Exochi_memory

type mode = Surface.mode = Input | Output | In_out

type t = {
  desc_id : int;
  surface : Surface.t;
  mutable attrs : (string * int) list;
}

let next_id = ref 0
let alloc_cost_ps = 60_000 (* descriptor bookkeeping on the CPU *)

let alloc platform ~name ~base ~width ~height ?(bpp = 1) ?(tiling = Surface.Linear)
    ~mode () =
  incr next_id;
  let surface =
    Surface.make ~id:!next_id ~name ~base ~width ~height ~bpp ~tiling ~mode
  in
  Exo_platform.register_surface platform surface;
  Exochi_cpu.Machine.add_time_ps (Exo_platform.cpu platform) alloc_cost_ps;
  { desc_id = !next_id; surface; attrs = [] }

let free platform t =
  Exo_platform.unregister_surface platform t.surface;
  Exochi_cpu.Machine.add_time_ps (Exo_platform.cpu platform) (alloc_cost_ps / 2)

let modify platform t ~attrib ~value =
  Exochi_cpu.Machine.add_time_ps (Exo_platform.cpu platform) (alloc_cost_ps / 2);
  match attrib with
  | "tiling" ->
    let tiling =
      match value with
      | 0 -> Surface.Linear
      | 1 -> Surface.Tiled_x
      | 2 -> Surface.Tiled_y
      | v -> invalid_arg (Printf.sprintf "chi_modify_desc: tiling %d" v)
    in
    Exo_platform.unregister_surface platform t.surface;
    let s = t.surface in
    let surface =
      Surface.make ~id:s.Surface.id ~name:s.Surface.name ~base:s.Surface.base
        ~width:s.Surface.width ~height:s.Surface.height ~bpp:s.Surface.bpp
        ~tiling ~mode:s.Surface.mode
    in
    Exo_platform.register_surface platform surface;
    { t with surface }
  | _ ->
    t.attrs <- (attrib, value) :: List.remove_assoc attrib t.attrs;
    t

type features = {
  global : (string, int) Hashtbl.t;
  pershred : (int * string, int) Hashtbl.t;
}

let features () = { global = Hashtbl.create 16; pershred = Hashtbl.create 16 }
let set_feature f ~id ~value = Hashtbl.replace f.global id value

let set_feature_pershred f ~shred ~id ~value =
  Hashtbl.replace f.pershred (shred, id) value

let feature f ~shred ~id =
  match Hashtbl.find_opt f.pershred (shred, id) with
  | Some v -> Some v
  | None -> Hashtbl.find_opt f.global id
