(** CHI descriptors and accelerator feature control — the runtime APIs of
    the paper's Table 1.

    A descriptor conveys accelerator-specific access information (2-D
    dimensions, pixel size, tiling, input/output mode) for a variable
    named in a [shared] clause. The runtime inspects descriptors before
    forking heterogeneous shreds and configures the accelerator's surface
    state from them (paper §4.4). *)

type mode = Exochi_memory.Surface.mode = Input | Output | In_out

type t = {
  desc_id : int;
  surface : Exochi_memory.Surface.t;
  mutable attrs : (string * int) list;
}

(** [alloc platform ~name ~base ~width ~height ~mode] — Table 1 API #1,
    [chi_alloc_desc(targetISA, ptr, mode, width, height)]. [bpp] defaults
    to 1 (byte elements); [tiling] to linear. Registers the surface's
    range and tiling with the platform (ATR consults it) and charges a
    small runtime cost on the CPU. *)
val alloc :
  Exo_platform.t ->
  name:string ->
  base:int ->
  width:int ->
  height:int ->
  ?bpp:int ->
  ?tiling:Exochi_memory.Surface.tiling ->
  mode:mode ->
  unit ->
  t

(** Table 1 API #2: [chi_free_desc]. Unregisters the surface. *)
val free : Exo_platform.t -> t -> unit

(** Table 1 API #3: [chi_modify_desc]. Supported attributes: ["tiling"]
    (0 linear / 1 X / 2 Y) plus free-form attributes kept on the
    descriptor. Re-registers the surface when the layout changes. *)
val modify : Exo_platform.t -> t -> attrib:string -> value:int -> t

(** {1 Accelerator features (Table 1 APIs #4 and #5)} *)

type features

val features : unit -> features

(** [set_feature f ~id ~value] — global accelerator state, applied to all
    shreds ([chi_set_feature]). *)
val set_feature : features -> id:string -> value:int -> unit

(** [set_feature_pershred f ~shred ~id ~value] — per-shred override
    ([chi_set_feature_pershred]). *)
val set_feature_pershred : features -> shred:int -> id:string -> value:int -> unit

(** [feature f ~shred ~id] resolves the per-shred value (override first,
    then global, then [None]). *)
val feature : features -> shred:int -> id:string -> int option
