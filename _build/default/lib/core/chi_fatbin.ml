type isa = Via32 | X3k
type section = { sec_name : string; isa : isa; payload : bytes }
type t = { name : string; sections : section list (* reversed *) }

let empty ~name = { name; sections = [] }
let name t = t.name
let sections t = List.rev t.sections

let add_section t sec =
  if
    List.exists
      (fun s -> s.sec_name = sec.sec_name && s.isa = sec.isa)
      t.sections
  then
    invalid_arg
      (Printf.sprintf "Chi_fatbin: duplicate section %S" sec.sec_name);
  { t with sections = sec :: t.sections }

let add_via32 t prog =
  add_section t
    {
      sec_name = prog.Exochi_isa.Via32_ast.name;
      isa = Via32;
      payload = Exochi_isa.Via32_asm.to_binary prog;
    }

let add_x3k t prog =
  add_section t
    {
      sec_name = prog.Exochi_isa.X3k_ast.name;
      isa = X3k;
      payload = Exochi_isa.X3k_asm.to_binary prog;
    }

let find t isa sec_name =
  List.find_opt (fun s -> s.isa = isa && s.sec_name = sec_name) t.sections

let find_via32 t sec_name =
  match find t Via32 sec_name with
  | Some s -> Exochi_isa.Via32_asm.of_binary ~name:sec_name s.payload
  | None -> Error (Printf.sprintf "no VIA32 section %S" sec_name)

let find_x3k t sec_name =
  match find t X3k sec_name with
  | Some s -> Exochi_isa.X3k_asm.of_binary ~name:sec_name s.payload
  | None -> Error (Printf.sprintf "no X3K section %S" sec_name)

let section_names t = List.rev_map (fun s -> (s.isa, s.sec_name)) t.sections

let magic = "EXOF"

let encode t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let add_u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  let add_str16 s =
    let b = Bytes.create 2 in
    Bytes.set_uint16_le b 0 (String.length s);
    Buffer.add_bytes buf b;
    Buffer.add_string buf s
  in
  let secs = sections t in
  add_str16 t.name;
  add_u32 (List.length secs);
  List.iter
    (fun s ->
      add_str16 s.sec_name;
      add_u32 (match s.isa with Via32 -> 0 | X3k -> 1);
      add_u32 (Bytes.length s.payload);
      Buffer.add_bytes buf s.payload)
    secs;
  Buffer.to_bytes buf

let decode b =
  if Bytes.length b < 4 || Bytes.sub_string b 0 4 <> magic then
    Error "Chi_fatbin: bad magic"
  else begin
    let pos = ref 4 in
    let get_u32 () =
      let v = Int32.to_int (Bytes.get_int32_le b !pos) in
      pos := !pos + 4;
      v
    in
    let get_str16 () =
      let n = Bytes.get_uint16_le b !pos in
      pos := !pos + 2;
      let s = Bytes.sub_string b !pos n in
      pos := !pos + n;
      s
    in
    try
      let name = get_str16 () in
      let nsec = get_u32 () in
      let sections =
        List.init nsec (fun _ ->
            let sec_name = get_str16 () in
            let isa = if get_u32 () = 0 then Via32 else X3k in
            let len = get_u32 () in
            let payload = Bytes.sub b !pos len in
            pos := !pos + len;
            { sec_name; isa; payload })
      in
      Ok { name; sections = List.rev sections }
    with Invalid_argument _ -> Error "Chi_fatbin: truncated"
  end

let write_file t ~path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (encode t))

let read_file ~path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> decode (Bytes.of_string s)
  | exception Sys_error e -> Error e
