(** Fat binaries: one executable containing code sections for different
    ISAs (paper §4.1, Figure 4).

    The CHI compiler emits the IA32-path code as a VIA32 section and each
    accelerator [__asm] block as an X3K section "indexed with a unique
    identifier"; the runtime locates the accelerator binary by that
    identifier at dispatch time. *)

type isa = Via32 | X3k

type section = { sec_name : string; isa : isa; payload : bytes }
type t

val empty : name:string -> t
val name : t -> string
val sections : t -> section list

(** Add an assembled program as a section. Section names must be unique
    per ISA. *)
val add_via32 : t -> Exochi_isa.Via32_ast.program -> t

val add_x3k : t -> Exochi_isa.X3k_ast.program -> t

(** Look up and decode a section. *)
val find_via32 : t -> string -> (Exochi_isa.Via32_ast.program, string) result

val find_x3k : t -> string -> (Exochi_isa.X3k_ast.program, string) result

val section_names : t -> (isa * string) list

(** Whole-file serialisation ("EXOF" container). *)
val encode : t -> bytes

val decode : bytes -> (t, string) result

(** Convenience: write/read a fat binary on disk. *)
val write_file : t -> path:string -> unit

val read_file : path:string -> (t, string) result
