(** The CHI-lite compiler driver: semantic checks, VIA32 code generation
    for the IA32 path, inline accelerator assembly blocks handed to the
    X3K assembler, and fat-binary emission (paper Figure 4).

    The IA32 section is named ["main"]; each parallel region becomes an
    X3K section ["sec<N>"] indexed by the identifier the generated code
    passes to the [chi_parallel] runtime entry point.

    Runtime entry points the generated code calls (arguments pushed left
    to right, caller pops):
    - [chi_desc(global_idx, mode, width, height)] — Table 1 API #1.
    - [chi_parallel(section_id, lo, hi, nowait)] — launch one shred per
      iteration of [\[lo, hi)]; iteration index arrives in [%p0].
    - [chi_wait()] — barrier for the outstanding [master_nowait] team.
    - [print_int(v)] — host console output (examples, tests). *)

type section_info = {
  sec_name : string;
  shared : string list; (* surface names the region binds *)
  nowait : bool;
}

type compiled = {
  fatbin : Chi_fatbin.t;
  globals : (string * int) list; (* name -> byte size, in layout order *)
  global_init : (string * int32) list; (* scalar initialisers *)
  sections : section_info list;
}

val compile :
  name:string -> string -> (compiled, Exochi_isa.Loc.error) result

(** The generated VIA32 text (for inspection / the [exochi_cc] driver). *)
val compile_to_via32_text :
  name:string -> string -> (string, Exochi_isa.Loc.error) result
