module Loc = Exochi_isa.Loc

type token =
  | IDENT of string
  | INT of int32
  | KW of string
  | PRAGMA of string
  | ASM
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AMP
  | BAR
  | CARET
  | ANDAND
  | OROR
  | BANG
  | EOF

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "identifier %S" s
  | INT i -> Format.fprintf fmt "integer %ld" i
  | KW s -> Format.fprintf fmt "keyword %S" s
  | PRAGMA _ -> Format.pp_print_string fmt "#pragma"
  | ASM -> Format.pp_print_string fmt "__asm"
  | LPAREN -> Format.pp_print_string fmt "'('"
  | RPAREN -> Format.pp_print_string fmt "')'"
  | LBRACE -> Format.pp_print_string fmt "'{'"
  | RBRACE -> Format.pp_print_string fmt "'}'"
  | LBRACK -> Format.pp_print_string fmt "'['"
  | RBRACK -> Format.pp_print_string fmt "']'"
  | SEMI -> Format.pp_print_string fmt "';'"
  | COMMA -> Format.pp_print_string fmt "','"
  | ASSIGN -> Format.pp_print_string fmt "'='"
  | PLUS -> Format.pp_print_string fmt "'+'"
  | MINUS -> Format.pp_print_string fmt "'-'"
  | STAR -> Format.pp_print_string fmt "'*'"
  | SLASH -> Format.pp_print_string fmt "'/'"
  | PERCENT -> Format.pp_print_string fmt "'%'"
  | SHL -> Format.pp_print_string fmt "'<<'"
  | SHR -> Format.pp_print_string fmt "'>>'"
  | LT -> Format.pp_print_string fmt "'<'"
  | LE -> Format.pp_print_string fmt "'<='"
  | GT -> Format.pp_print_string fmt "'>'"
  | GE -> Format.pp_print_string fmt "'>='"
  | EQ -> Format.pp_print_string fmt "'=='"
  | NE -> Format.pp_print_string fmt "'!='"
  | AMP -> Format.pp_print_string fmt "'&'"
  | BAR -> Format.pp_print_string fmt "'|'"
  | CARET -> Format.pp_print_string fmt "'^'"
  | ANDAND -> Format.pp_print_string fmt "'&&'"
  | OROR -> Format.pp_print_string fmt "'||'"
  | BANG -> Format.pp_print_string fmt "'!'"
  | EOF -> Format.pp_print_string fmt "end of input"

type t = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int;
}

let create ~file src = { file; src; pos = 0; line = 1; bol = 0 }
let loc t = Loc.make ~file:t.file ~line:t.line ~col:(t.pos - t.bol + 1)
let peek t off = if t.pos + off < String.length t.src then Some t.src.[t.pos + off] else None

let newline t =
  t.line <- t.line + 1;
  t.bol <- t.pos

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let keywords = [ "int"; "void"; "if"; "else"; "while"; "for"; "return" ]

let rec skip_ws t =
  match peek t 0 with
  | Some ' ' | Some '\t' | Some '\r' ->
    t.pos <- t.pos + 1;
    skip_ws t
  | Some '\n' ->
    t.pos <- t.pos + 1;
    newline t;
    skip_ws t
  | Some '/' when peek t 1 = Some '/' ->
    while peek t 0 <> None && peek t 0 <> Some '\n' do
      t.pos <- t.pos + 1
    done;
    skip_ws t
  | Some '/' when peek t 1 = Some '*' ->
    t.pos <- t.pos + 2;
    let rec go () =
      match peek t 0 with
      | None -> ()
      | Some '*' when peek t 1 = Some '/' -> t.pos <- t.pos + 2
      | Some '\n' ->
        t.pos <- t.pos + 1;
        newline t;
        go ()
      | Some _ ->
        t.pos <- t.pos + 1;
        go ()
    in
    go ();
    skip_ws t
  | _ -> ()

let next t =
  skip_ws t;
  let l = loc t in
  let simple tok n =
    t.pos <- t.pos + n;
    Ok (tok, l)
  in
  match peek t 0 with
  | None -> Ok (EOF, l)
  | Some '#' ->
    (* pragma line: grab to end of line *)
    let start = t.pos in
    while peek t 0 <> None && peek t 0 <> Some '\n' do
      t.pos <- t.pos + 1
    done;
    let line = String.sub t.src start (t.pos - start) in
    let prefix = "#pragma" in
    if String.length line >= String.length prefix
       && String.sub line 0 (String.length prefix) = prefix
    then
      Ok
        ( PRAGMA
            (String.sub line (String.length prefix)
               (String.length line - String.length prefix)),
          l )
    else Loc.error l "unknown preprocessor directive"
  | Some c when is_ident_start c ->
    let start = t.pos in
    while match peek t 0 with Some c when is_ident_char c -> true | _ -> false do
      t.pos <- t.pos + 1
    done;
    let s = String.sub t.src start (t.pos - start) in
    if s = "__asm" then Ok (ASM, l)
    else if List.mem s keywords then Ok (KW s, l)
    else Ok (IDENT s, l)
  | Some c when is_digit c ->
    let start = t.pos in
    if c = '0' && (peek t 1 = Some 'x' || peek t 1 = Some 'X') then begin
      t.pos <- t.pos + 2;
      while
        match peek t 0 with
        | Some c when is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') -> true
        | _ -> false
      do
        t.pos <- t.pos + 1
      done
    end
    else
      while match peek t 0 with Some c when is_digit c -> true | _ -> false do
        t.pos <- t.pos + 1
      done;
    let s = String.sub t.src start (t.pos - start) in
    (match Int64.of_string_opt s with
    | Some v when Int64.compare v 4294967295L <= 0 -> Ok (INT (Int64.to_int32 v), l)
    | _ -> Loc.error l "integer literal out of range: %s" s)
  | Some '(' -> simple LPAREN 1
  | Some ')' -> simple RPAREN 1
  | Some '{' -> simple LBRACE 1
  | Some '}' -> simple RBRACE 1
  | Some '[' -> simple LBRACK 1
  | Some ']' -> simple RBRACK 1
  | Some ';' -> simple SEMI 1
  | Some ',' -> simple COMMA 1
  | Some '+' -> simple PLUS 1
  | Some '-' -> simple MINUS 1
  | Some '*' -> simple STAR 1
  | Some '/' -> simple SLASH 1
  | Some '%' -> simple PERCENT 1
  | Some '^' -> simple CARET 1
  | Some '<' ->
    if peek t 1 = Some '<' then simple SHL 2
    else if peek t 1 = Some '=' then simple LE 2
    else simple LT 1
  | Some '>' ->
    if peek t 1 = Some '>' then simple SHR 2
    else if peek t 1 = Some '=' then simple GE 2
    else simple GT 1
  | Some '=' -> if peek t 1 = Some '=' then simple EQ 2 else simple ASSIGN 1
  | Some '!' -> if peek t 1 = Some '=' then simple NE 2 else simple BANG 1
  | Some '&' -> if peek t 1 = Some '&' then simple ANDAND 2 else simple AMP 1
  | Some '|' -> if peek t 1 = Some '|' then simple OROR 2 else simple BAR 1
  | Some c -> Loc.error l "unexpected character %C" c

let raw_braced_block t =
  let l = loc t in
  let start = t.pos in
  let rec go () =
    match peek t 0 with
    | None -> Loc.error l "unterminated __asm block"
    | Some '}' ->
      let text = String.sub t.src start (t.pos - start) in
      t.pos <- t.pos + 1;
      Ok (text, l)
    | Some '\n' ->
      t.pos <- t.pos + 1;
      newline t;
      go ()
    | Some _ ->
      t.pos <- t.pos + 1;
      go ()
  in
  go ()
