(** Lexer for CHI-lite. Pragma lines ([#pragma ...]) are delivered whole as
    {!PRAGMA} tokens and re-tokenised by the pragma parser; [__asm { ... }]
    bodies are slurped verbatim with {!raw_braced_block} so the accelerator
    assembler sees the original text. *)

type token =
  | IDENT of string
  | INT of int32
  | KW of string (* int void if else while for return *)
  | PRAGMA of string (* full pragma line, without '#pragma' *)
  | ASM (* the __asm keyword *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACK
  | RBRACK
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | SHL
  | SHR
  | LT
  | LE
  | GT
  | GE
  | EQ
  | NE
  | AMP
  | BAR
  | CARET
  | ANDAND
  | OROR
  | BANG
  | EOF

val pp_token : Format.formatter -> token -> unit

type t

val create : file:string -> string -> t
val next : t -> (token * Exochi_isa.Loc.t, Exochi_isa.Loc.error) result

(** After the parser has consumed [ASM] and an opening ['{'] token, slurp
    raw text up to (not including) the matching ['}'] and consume it. *)
val raw_braced_block : t -> (string * Exochi_isa.Loc.t, Exochi_isa.Loc.error) result
