(** Recursive-descent parser for CHI-lite source. Returns the program AST;
    [__asm] blocks are kept as raw text (assembled later by the compiler
    driver), and pragma lines are parsed into structured clauses. *)

val parse :
  file:string -> string -> (Chilite_ast.program, Exochi_isa.Loc.error) result
