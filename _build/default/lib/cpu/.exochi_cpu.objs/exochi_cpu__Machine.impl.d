lib/cpu/machine.ml: Address_space Array Bits Bus Cache Exochi_isa Exochi_memory Exochi_util Float Int32 Int64 List Option Page_table Phys_mem Pte Timebase Tlb Via32_ast
