lib/cpu/machine.mli: Exochi_isa Exochi_memory Exochi_util
