open Exochi_util
open Exochi_memory
open Exochi_isa
open Via32_ast

type config = {
  clock_mhz : int;
  l1_bytes : int;
  l1_ways : int;
  l2_bytes : int;
  l2_ways : int;
  tlb_entries : int;
  line_bytes : int;
}

let default_config =
  {
    clock_mhz = 2400;
    l1_bytes = 32 * 1024;
    l1_ways = 8;
    l2_bytes = 4 * 1024 * 1024;
    l2_ways = 16;
    tlb_entries = 64;
    line_bytes = 64;
  }

type flags = { mutable a : int32; mutable b : int32 }

type t = {
  aspace : Address_space.t;
  bus : Bus.t;
  clock : Timebase.clock;
  l1 : Cache.t;
  l2 : Cache.t;
  tlb : Pte.Ia32.t Tlb.t;
  regs : int32 array; (* 8 GPRs *)
  xmm : int32 array; (* 8 x 4 lanes, flattened *)
  flags : flags;
  mutable now_ps : int;
  mutable pending_overhead_ps : int;
  mutable retired : int;
  mutable call_stack : int list;
  prefetch_streams : int array; (* last miss line per tracked stream *)
  mutable prefetch_rr : int;
  (* timing constants, precomputed in picoseconds *)
  q : int; (* quarter cycle *)
}

let create ?(config = default_config) ~aspace ~bus () =
  let clock = Timebase.clock ~mhz:config.clock_mhz in
  {
    aspace;
    bus;
    clock;
    l1 =
      Cache.create ~name:"cpu-l1" ~size_bytes:config.l1_bytes
        ~line_bytes:config.line_bytes ~ways:config.l1_ways;
    l2 =
      Cache.create ~name:"cpu-l2" ~size_bytes:config.l2_bytes
        ~line_bytes:config.line_bytes ~ways:config.l2_ways;
    tlb = Tlb.create ~entries:config.tlb_entries;
    regs = Array.make 8 0l;
    xmm = Array.make 32 0l;
    flags = { a = 0l; b = 0l };
    now_ps = 0;
    pending_overhead_ps = 0;
    retired = 0;
    call_stack = [];
    prefetch_streams = Array.make 8 min_int;
    prefetch_rr = 0;
    q = max 1 (Timebase.ps_per_cycle clock / 4);
  }

let aspace t = t.aspace
let clock t = t.clock
let l1 t = t.l1
let l2 t = t.l2
let now_ps t = t.now_ps
let advance_to_ps t ps = if ps > t.now_ps then t.now_ps <- ps
let add_time_ps t ps = t.now_ps <- t.now_ps + ps
let add_overhead_ps t ps = t.pending_overhead_ps <- t.pending_overhead_ps + ps
let call_stack t = t.call_stack
let instructions_retired t = t.retired

let reset_counters t =
  t.retired <- 0;
  Cache.reset_stats t.l1;
  Cache.reset_stats t.l2;
  Tlb.reset_stats t.tlb

(* The CPU reaches DRAM through the front-side bus: a single core's
   sustained streaming rate is well below the memory controller's peak
   (the integrated GMA sits controller-side and streams at full rate).
   Model: CPU requests occupy 1.5x their bytes. *)
let fsb_factor_num = 2
let fsb_factor_den = 1

let cpu_bus_request ?latency t ~bytes =
  Bus.request ?latency t.bus ~now_ps:t.now_ps
    ~bytes:(bytes * fsb_factor_num / fsb_factor_den)

(* ---- timing helpers (costs in quarter cycles) ---- *)

let cost t quarters = t.now_ps <- t.now_ps + (quarters * t.q)
let c_simple = 2 (* 0.5 cycle: ~2 simple uops/cycle *)
let c_imul = 6
let c_div = 40
let c_simd = 3 (* ~1.3 simple 128-bit ops per cycle sustained *)
let c_divps = 64
let c_sqrtps = 80
let c_br_taken = 4
let c_br_not_taken = 2
let c_callret = 8
let c_lea = 2
let c_l1_hit = 2 (* pipelined L1 hit: ~0.5 cycle effective *)
let c_l2_hit = 40 (* 10 cycles *)
let c_tlb_walk = 112 (* two cached page-table reads, ~28 cycles *)
let page_fault_ps = 1_500_000 (* 1.5 us OS fault service *)

(* ---- registers ---- *)

let get_reg t r = t.regs.(reg_index r)
let set_reg t r v = t.regs.(reg_index r) <- v
let get_xmm_lane t ~xmm ~lane = t.xmm.((xmm * 4) + lane)
let set_xmm_lane t ~xmm ~lane v = t.xmm.((xmm * 4) + lane) <- v

(* ---- memory data path ---- *)

let translate t ~vaddr ~write =
  let vpage = vaddr lsr Phys_mem.page_shift in
  match Tlb.lookup t.tlb ~vpage with
  | Some pte -> (Pte.Ia32.frame pte lsl Phys_mem.page_shift) lor (vaddr land (Phys_mem.page_size - 1))
  | None ->
    cost t c_tlb_walk;
    (match Address_space.fault_in t.aspace ~vaddr with
    | `Already -> ()
    | `Faulted -> t.now_ps <- t.now_ps + page_fault_ps);
    (match Page_table.walk (Address_space.page_table t.aspace)
             ~vpage with
    | Page_table.Mapped pte ->
      Tlb.insert t.tlb ~vpage pte;
      ignore write;
      (Pte.Ia32.frame pte lsl Phys_mem.page_shift)
      lor (vaddr land (Phys_mem.page_size - 1))
    | _ -> raise (Address_space.Segfault vaddr))

(* Account one cache access covering [paddr, paddr+size). *)
let cache_access t ~paddr ~size ~write =
  let results = Cache.access_range t.l1 ~addr:paddr ~len:size ~write in
  List.iter
    (fun (r : Cache.access_result) ->
      if r.hit then cost t c_l1_hit
      else begin
        (* victim writeback from L1 lands in L2 *)
        Option.iter
          (fun wb -> ignore (Cache.access t.l2 ~addr:wb ~write:true))
          r.writeback;
        match r.fill with
        | None -> ()
        | Some line ->
          let r2 = Cache.access t.l2 ~addr:line ~write:false in
          if r2.hit then cost t c_l2_hit
          else begin
            Option.iter
              (fun wb ->
                (* writeback is posted; it occupies the bus but the CPU
                   does not wait for it *)
                ignore (cpu_bus_request t ~bytes:(Cache.line_bytes t.l2));
                ignore wb)
              r2.writeback;
            (* multi-stream next-line hardware prefetch: a miss that
               continues one of the tracked streams pays only the transfer
               time; a random miss pays full DRAM latency and claims a
               stream slot round-robin *)
            let this_line = Option.get r.fill / Cache.line_bytes t.l2 in
            let sequential = ref false in
            Array.iteri
              (fun i last ->
                if this_line = last + 1 || this_line = last then begin
                  sequential := true;
                  t.prefetch_streams.(i) <- this_line
                end)
              t.prefetch_streams;
            if not !sequential then begin
              t.prefetch_streams.(t.prefetch_rr) <- this_line;
              t.prefetch_rr <- (t.prefetch_rr + 1) mod Array.length t.prefetch_streams
            end;
            let sequential = !sequential in
            let done_ps =
              cpu_bus_request ~latency:(not sequential) t
                ~bytes:(Cache.line_bytes t.l2)
            in
            advance_to_ps t done_ps
          end
      end)
    results

(* One cache access covering [count] contiguous elements of [size] bytes
   (SSE loads/stores are single accesses, not per-lane ones). *)
let load_multi t ~vaddr ~count ~size =
  let paddr = translate t ~vaddr ~write:false in
  cache_access t ~paddr ~size:(count * size) ~write:false;
  let a = t.aspace in
  Array.init count (fun i ->
      let va = vaddr + (i * size) in
      match size with
      | 1 -> Int32.of_int (Address_space.read_u8 a va)
      | 2 -> Int32.of_int (Address_space.read_u16 a va)
      | _ -> Address_space.read_u32 a va)

let store_multi t ~vaddr ~size v =
  let count = Array.length v in
  let paddr = translate t ~vaddr ~write:true in
  cache_access t ~paddr ~size:(count * size) ~write:true;
  let a = t.aspace in
  Array.iteri
    (fun i lane ->
      let va = vaddr + (i * size) in
      match size with
      | 1 -> Address_space.write_u8 a va (Int32.to_int lane land 0xff)
      | 2 -> Address_space.write_u16 a va (Int32.to_int lane land 0xffff)
      | _ -> Address_space.write_u32 a va lane)
    v

let load t ~vaddr ~size =
  let paddr = translate t ~vaddr ~write:false in
  cache_access t ~paddr ~size ~write:false;
  let a = t.aspace in
  match size with
  | 1 -> Int32.of_int (Address_space.read_u8 a vaddr)
  | 2 -> Int32.of_int (Address_space.read_u16 a vaddr)
  | 4 -> Address_space.read_u32 a vaddr
  | _ -> invalid_arg "Machine.load: size"

let store t ~vaddr ~size v =
  let paddr = translate t ~vaddr ~write:true in
  cache_access t ~paddr ~size ~write:true;
  let a = t.aspace in
  match size with
  | 1 -> Address_space.write_u8 a vaddr (Int32.to_int v land 0xff)
  | 2 -> Address_space.write_u16 a vaddr (Int32.to_int v land 0xffff)
  | 4 -> Address_space.write_u32 a vaddr v
  | _ -> invalid_arg "Machine.store: size"

let flush_one_cache t cache =
  let dirty = Cache.flush_all cache in
  let bytes = List.length dirty * Cache.line_bytes cache in
  if bytes > 0 then begin
    (* write-back bursts are issued by the cache controller and stream at
       the full channel rate, unlike demand misses *)
    let done_ps = Bus.request t.bus ~now_ps:t.now_ps ~bytes in
    advance_to_ps t done_ps
  end;
  bytes

let flush_caches t =
  let b1 = flush_one_cache t t.l1 in
  let b2 = flush_one_cache t t.l2 in
  b1 + b2

let flush_range t ~vaddr ~len =
  (* flush by physical line; translate page by page *)
  let total = ref 0 in
  let rec go vaddr len =
    if len > 0 then begin
      let in_page =
        min len (Phys_mem.page_size - (vaddr land (Phys_mem.page_size - 1)))
      in
      let paddr = translate t ~vaddr ~write:false in
      let d1 = Cache.flush_range t.l1 ~addr:paddr ~len:in_page in
      let d2 = Cache.flush_range t.l2 ~addr:paddr ~len:in_page in
      let bytes =
        (List.length d1 * Cache.line_bytes t.l1)
        + (List.length d2 * Cache.line_bytes t.l2)
      in
      if bytes > 0 then begin
        let done_ps = Bus.request t.bus ~now_ps:t.now_ps ~bytes in
        advance_to_ps t done_ps
      end;
      total := !total + bytes;
      go (vaddr + in_page) (len - in_page)
    end
  in
  go vaddr len;
  !total

(* ---- program loading ---- *)

type loaded = { prog : Via32_ast.program; sym_addrs : (string * int) list }

exception Unbound_symbol of string
exception Unknown_intrinsic of string

let load_program prog ~symbols =
  Array.iter
    (fun s ->
      if not (List.mem_assoc s symbols) then raise (Unbound_symbol s))
    prog.symbols;
  { prog; sym_addrs = symbols }

(* ---- execution ---- *)

type stop_reason = Halted | Ret_to_host | Fuel_exhausted | Paused of int

let mem_addr t loaded (m : mem) =
  let base = match m.base with Some r -> Int32.to_int (get_reg t r) | None -> 0 in
  let index =
    match m.index with
    | Some (r, s) -> Int32.to_int (get_reg t r) * s
    | None -> 0
  in
  let sym =
    match m.sym with
    | Some s -> (
      match List.assoc_opt s loaded.sym_addrs with
      | Some a -> a
      | None -> raise (Unbound_symbol s))
    | None -> 0
  in
  (base + index + m.disp + sym) land 0xFFFF_FFFF

let scalar_value t loaded ~size = function
  | R r -> get_reg t r
  | I i -> i
  | M m -> load t ~vaddr:(mem_addr t loaded m) ~size
  | X _ -> invalid_arg "scalar_value: xmm"

let scalar_store t loaded ~size v = function
  | R r -> set_reg t r v
  | M m -> store t ~vaddr:(mem_addr t loaded m) ~size v
  | I _ | X _ -> invalid_arg "scalar_store"

let get_xmm4 t x = Array.init 4 (fun i -> t.xmm.((x * 4) + i))
let set_xmm4 t x v = Array.blit v 0 t.xmm (x * 4) 4

let xmm_src t loaded = function
  | X x -> get_xmm4 t x
  | M m ->
    let base = mem_addr t loaded m in
    Array.init 4 (fun i -> load t ~vaddr:(base + (i * 4)) ~size:4)
  | R _ | I _ -> invalid_arg "xmm_src"

let eval_cc cc a b =
  let sa = Int32.compare a b in
  let ua =
    Int32.unsigned_compare a b
  in
  match cc with
  | E -> sa = 0
  | NE -> sa <> 0
  | L -> sa < 0
  | LE -> sa <= 0
  | G -> sa > 0
  | GE -> sa >= 0
  | B -> ua < 0
  | BE -> ua <= 0
  | A -> ua > 0
  | AE -> ua >= 0

let f32 = Int32.float_of_bits
let bits = Int32.bits_of_float

let eval_cc_float cc a b =
  let fa = f32 a and fb = f32 b in
  match cc with
  | E -> fa = fb
  | NE -> fa <> fb
  | L | B -> fa < fb
  | LE | BE -> fa <= fb
  | G | A -> fa > fb
  | GE | AE -> fa >= fb

let clamp_u8 v =
  if Int32.compare v 0l < 0 then 0l
  else if Int32.compare v 255l > 0 then 255l
  else v

(* Execute instruction at [pc]; return the next pc, or None to stop. *)
let exec_instr t loaded ~intrinsics ~pc =
  let prog = loaded.prog in
  let i = prog.instrs.(pc) in
  let next = pc + 1 in
  let binop_scalar f cost_q =
    match i.operands with
    | [ d; s ] ->
      let size = 4 in
      let a = scalar_value t loaded ~size d in
      let b = scalar_value t loaded ~size s in
      scalar_store t loaded ~size (f a b) d;
      cost t cost_q;
      Some next
    | _ -> assert false
  in
  let unop_scalar f =
    match i.operands with
    | [ d ] ->
      let a = scalar_value t loaded ~size:4 d in
      scalar_store t loaded ~size:4 (f a) d;
      cost t c_simple;
      Some next
    | _ -> assert false
  in
  let binop_xmm f cost_q =
    match i.operands with
    | [ X d; s ] ->
      let a = get_xmm4 t d and b = xmm_src t loaded s in
      set_xmm4 t d (Array.init 4 (fun l -> f a.(l) b.(l)));
      cost t cost_q;
      Some next
    | _ -> assert false
  in
  let unop_xmm f cost_q =
    match i.operands with
    | [ X d; s ] ->
      let b = xmm_src t loaded s in
      set_xmm4 t d (Array.map f b);
      cost t cost_q;
      Some next
    | _ -> assert false
  in
  let shift_amount s = Int32.to_int (scalar_value t loaded ~size:4 s) land 31 in
  match i.op with
  | Nop ->
    cost t c_simple;
    Some next
  | Hlt -> None
  | Mov size -> (
    let bytes = match size with B1 -> 1 | B2 -> 2 | B4 -> 4 in
    match i.operands with
    | [ d; s ] ->
      (match (d, s) with
      | X x, _ ->
        (* mov.d xmm, r/imm: broadcast is not implied; lane 0 only *)
        let v = scalar_value t loaded ~size:bytes s in
        set_xmm_lane t ~xmm:x ~lane:0 v;
        cost t c_simple
      | _, X x ->
        let v = get_xmm_lane t ~xmm:x ~lane:0 in
        scalar_store t loaded ~size:bytes v d;
        cost t c_simple
      | _ ->
        let v = scalar_value t loaded ~size:bytes s in
        scalar_store t loaded ~size:bytes v d;
        cost t c_simple);
      Some next
    | _ -> assert false)
  | Movsx size -> (
    let bytes, bits_n = match size with B1 -> (1, 8) | B2 -> (2, 16) | B4 -> (4, 32) in
    match i.operands with
    | [ d; M m ] ->
      let v = load t ~vaddr:(mem_addr t loaded m) ~size:bytes in
      let v =
        Int32.of_int (Bits.sign_extend (Int32.to_int v) ~bits:bits_n)
      in
      scalar_store t loaded ~size:4 v d;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Lea -> (
    match i.operands with
    | [ R d; M m ] ->
      set_reg t d (Int32.of_int (mem_addr t loaded m));
      cost t c_lea;
      Some next
    | _ -> assert false)
  | Add -> binop_scalar Int32.add c_simple
  | Sub -> binop_scalar Int32.sub c_simple
  | Imul -> binop_scalar Int32.mul c_imul
  | Sdiv ->
    binop_scalar
      (fun a b -> if b = 0l then 0l else Int32.div a b)
      c_div
  | Srem ->
    binop_scalar (fun a b -> if b = 0l then 0l else Int32.rem a b) c_div
  | And -> binop_scalar Int32.logand c_simple
  | Or -> binop_scalar Int32.logor c_simple
  | Xor -> binop_scalar Int32.logxor c_simple
  | Not -> unop_scalar Int32.lognot
  | Neg -> unop_scalar Int32.neg
  | Shl -> (
    match i.operands with
    | [ d; s ] ->
      let a = scalar_value t loaded ~size:4 d in
      scalar_store t loaded ~size:4 (Int32.shift_left a (shift_amount s)) d;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Shr -> (
    match i.operands with
    | [ d; s ] ->
      let a = scalar_value t loaded ~size:4 d in
      scalar_store t loaded ~size:4
        (Int32.shift_right_logical a (shift_amount s))
        d;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Sar -> (
    match i.operands with
    | [ d; s ] ->
      let a = scalar_value t loaded ~size:4 d in
      scalar_store t loaded ~size:4 (Int32.shift_right a (shift_amount s)) d;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Cmp -> (
    match i.operands with
    | [ a; b ] ->
      t.flags.a <- scalar_value t loaded ~size:4 a;
      t.flags.b <- scalar_value t loaded ~size:4 b;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Test -> (
    match i.operands with
    | [ a; b ] ->
      let va = scalar_value t loaded ~size:4 a in
      let vb = scalar_value t loaded ~size:4 b in
      t.flags.a <- Int32.logand va vb;
      t.flags.b <- 0l;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Setcc cc -> (
    match i.operands with
    | [ d ] ->
      scalar_store t loaded ~size:4
        (if eval_cc cc t.flags.a t.flags.b then 1l else 0l)
        d;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Push -> (
    match i.operands with
    | [ s ] ->
      let v = scalar_value t loaded ~size:4 s in
      let sp = Int32.to_int (get_reg t ESP) - 4 in
      set_reg t ESP (Int32.of_int sp);
      store t ~vaddr:sp ~size:4 v;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Pop -> (
    match i.operands with
    | [ R d ] ->
      let sp = Int32.to_int (get_reg t ESP) in
      let v = load t ~vaddr:sp ~size:4 in
      set_reg t ESP (Int32.of_int (sp + 4));
      set_reg t d v;
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Call -> (
    cost t c_callret;
    match Via32_ast.call_target prog pc with
    | Some (Internal target) ->
      t.call_stack <- next :: t.call_stack;
      Some target
    | Some (Intrinsic name) ->
      intrinsics name t;
      Some next
    | None -> raise (Unknown_intrinsic "unresolved call"))
  | Ret -> (
    cost t c_callret;
    match t.call_stack with
    | ra :: rest ->
      t.call_stack <- rest;
      Some ra
    | [] -> None)
  | Jmp -> (
    cost t c_br_taken;
    match i.operands with [ I target ] -> Some (Int32.to_int target) | _ -> assert false)
  | Jcc cc -> (
    match i.operands with
    | [ I target ] ->
      if eval_cc cc t.flags.a t.flags.b then begin
        cost t c_br_taken;
        Some (Int32.to_int target)
      end
      else begin
        cost t c_br_not_taken;
        Some next
      end
    | _ -> assert false)
  | Movdqu -> (
    match i.operands with
    | [ X d; X s ] ->
      set_xmm4 t d (get_xmm4 t s);
      cost t c_simd;
      Some next
    | [ X d; M m ] ->
      let base = mem_addr t loaded m in
      set_xmm4 t d (load_multi t ~vaddr:base ~count:4 ~size:4);
      cost t c_simd;
      Some next
    | [ M m; X s ] ->
      let base = mem_addr t loaded m in
      store_multi t ~vaddr:base ~size:4 (get_xmm4 t s);
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Movntdq -> (
    match i.operands with
    | [ M m; X src ] ->
      let base = mem_addr t loaded m in
      let paddr = translate t ~vaddr:base ~write:true in
      (* write-combining: posted straight to the bus, no cache line *)
      ignore (cpu_bus_request ~latency:false t ~bytes:16);
      ignore paddr;
      let a = t.aspace in
      Array.iteri
        (fun l lane -> Address_space.write_u32 a (base + (l * 4)) lane)
        (get_xmm4 t src);
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Movd -> (
    match i.operands with
    | [ X d; R s ] ->
      let v = get_reg t s in
      set_xmm4 t d [| v; 0l; 0l; 0l |];
      cost t c_simple;
      Some next
    | [ R d; X s ] ->
      set_reg t d (get_xmm_lane t ~xmm:s ~lane:0);
      cost t c_simple;
      Some next
    | _ -> assert false)
  | Movpk size -> (
    let bytes = match size with B1 -> 1 | B2 -> 2 | B4 -> 4 in
    match i.operands with
    | [ X d; M m ] ->
      let base = mem_addr t loaded m in
      let raw = load_multi t ~vaddr:base ~count:4 ~size:bytes in
      let v =
        Array.map
          (fun r ->
            match size with
            | B1 -> r (* zero-extend bytes *)
            | B2 -> Int32.of_int (Bits.sign_extend (Int32.to_int r) ~bits:16)
            | B4 -> r)
          raw
      in
      set_xmm4 t d v;
      cost t c_simd;
      Some next
    | [ M m; X s ] ->
      let base = mem_addr t loaded m in
      store_multi t ~vaddr:base ~size:bytes (get_xmm4 t s);
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Paddd -> binop_xmm Int32.add c_simd
  | Psubd -> binop_xmm Int32.sub c_simd
  | Pmulld -> binop_xmm Int32.mul c_simd
  | Pminsd -> binop_xmm (fun a b -> if Int32.compare a b < 0 then a else b) c_simd
  | Pmaxsd -> binop_xmm (fun a b -> if Int32.compare a b > 0 then a else b) c_simd
  | Pabsd -> unop_xmm Int32.abs c_simd
  | Pavgb ->
    binop_xmm
      (fun a b ->
        let avg_byte sh =
          let ba = (Int32.to_int a lsr sh) land 0xff
          and bb = (Int32.to_int b lsr sh) land 0xff in
          (ba + bb + 1) lsr 1
        in
        Int32.of_int
          (avg_byte 0 lor (avg_byte 8 lsl 8) lor (avg_byte 16 lsl 16)
          lor (avg_byte 24 lsl 24)))
      c_simd
  | Pcmpgtd ->
    binop_xmm
      (fun a b -> if Int32.compare a b > 0 then 0xFFFFFFFFl else 0l)
      c_simd
  | Pavgd ->
    binop_xmm
      (fun a b ->
        let a64 = Int64.logand (Int64.of_int32 a) 0xFFFFFFFFL in
        let b64 = Int64.logand (Int64.of_int32 b) 0xFFFFFFFFL in
        Int64.to_int32 (Int64.div (Int64.add (Int64.add a64 b64) 1L) 2L))
      c_simd
  | Psadd -> (
    match i.operands with
    | [ X d; s ] ->
      let a = get_xmm4 t d and b = xmm_src t loaded s in
      let sum = ref 0l in
      for l = 0 to 3 do
        sum := Int32.add !sum (Int32.abs (Int32.sub a.(l) b.(l)))
      done;
      set_xmm4 t d [| !sum; 0l; 0l; 0l |];
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Phaddd -> (
    match i.operands with
    | [ X d; s ] ->
      let b = xmm_src t loaded s in
      let sum = Array.fold_left Int32.add 0l b in
      set_xmm4 t d [| sum; 0l; 0l; 0l |];
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Packus -> unop_xmm clamp_u8 c_simd
  | Pand -> binop_xmm Int32.logand c_simd
  | Por -> binop_xmm Int32.logor c_simd
  | Pxor -> binop_xmm Int32.logxor c_simd
  | Pslld | Psrld | Psrad -> (
    match i.operands with
    | [ X d; I n ] ->
      let n = Int32.to_int n land 31 in
      let f =
        match i.op with
        | Pslld -> fun v -> Int32.shift_left v n
        | Psrld -> fun v -> Int32.shift_right_logical v n
        | _ -> fun v -> Int32.shift_right v n
      in
      set_xmm4 t d (Array.map f (get_xmm4 t d));
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Pshufd -> (
    match i.operands with
    | [ X d; X s; I ctrl ] ->
      let c = Int32.to_int ctrl in
      let src = get_xmm4 t s in
      set_xmm4 t d (Array.init 4 (fun l -> src.((c lsr (l * 2)) land 3)));
      cost t c_simd;
      Some next
    | _ -> assert false)
  | Addps -> binop_xmm (fun a b -> bits (f32 a +. f32 b)) c_simd
  | Subps -> binop_xmm (fun a b -> bits (f32 a -. f32 b)) c_simd
  | Mulps -> binop_xmm (fun a b -> bits (f32 a *. f32 b)) c_simd
  | Divps -> binop_xmm (fun a b -> bits (f32 a /. f32 b)) c_divps
  | Minps -> binop_xmm (fun a b -> bits (Float.min (f32 a) (f32 b))) c_simd
  | Maxps -> binop_xmm (fun a b -> bits (Float.max (f32 a) (f32 b))) c_simd
  | Sqrtps -> unop_xmm (fun a -> bits (sqrt (f32 a))) c_sqrtps
  | Cvtdq2ps -> unop_xmm (fun a -> bits (Int32.to_float a)) c_simd
  | Cvtps2dq ->
    unop_xmm
      (fun a -> Int32.of_float (Float.round (f32 a)))
      c_simd
  | Cmpps cc ->
    binop_xmm
      (fun a b -> if eval_cc_float cc a b then 0xFFFFFFFFl else 0l)
      c_simd
  | Movmskps -> (
    match i.operands with
    | [ R d; X s ] ->
      let v = get_xmm4 t s in
      let mask = ref 0 in
      Array.iteri
        (fun l lane -> if Int32.compare lane 0l < 0 then mask := !mask lor (1 lsl l))
        v;
      set_reg t d (Int32.of_int !mask);
      cost t c_simple;
      Some next
    | _ -> assert false)

let run ?fuel ?poll ?on_instr t loaded ~entry ~intrinsics =
  let fuel = ref (Option.value fuel ~default:max_int) in
  let pc = ref entry in
  let result = ref None in
  while !result = None do
    if !fuel <= 0 then result := Some Fuel_exhausted
    else begin
      decr fuel;
      if t.pending_overhead_ps > 0 then begin
        t.now_ps <- t.now_ps + t.pending_overhead_ps;
        t.pending_overhead_ps <- 0
      end;
      Option.iter (fun f -> f t) poll;
      let pause =
        match on_instr with
        | Some f -> f t ~pc:!pc = `Pause
        | None -> false
      in
      if pause then result := Some (Paused !pc)
      else begin
        let stop_kind =
          match loaded.prog.instrs.(!pc).op with
          | Hlt -> Some Halted
          | Ret when t.call_stack = [] -> Some Ret_to_host
          | _ -> None
        in
        match exec_instr t loaded ~intrinsics ~pc:!pc with
        | Some next ->
          t.retired <- t.retired + 1;
          pc := next
        | None ->
          t.retired <- t.retired + 1;
          result := Some (Option.value stop_kind ~default:Halted)
      end
    end
  done;
  Option.get !result
