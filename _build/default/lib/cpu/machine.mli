(** The IA32-class CPU sequencer: a timing-modelled VIA32 interpreter.

    One [Machine.t] is the paper's OS-managed IA32 sequencer. It executes
    VIA32 programs against the shared {!Exochi_memory.Address_space},
    accounting time per instruction class and through a TLB + L1 + L2
    cache hierarchy in front of the shared {!Exochi_memory.Bus}. The EXO
    proxy handlers (ATR, CEH) and the CHI runtime inject their costs with
    {!add_time_ps} / {!add_overhead_ps}.

    Calibration (Core 2 Duo class): 2.4 GHz, ~2 simple ALU ops per cycle,
    one 128-bit (4-lane) SSE op per cycle, L1 32 KiB / 3 cycles, L2 4 MiB
    / 14 cycles, DRAM via the shared bus. *)

type t

type config = {
  clock_mhz : int;
  l1_bytes : int;
  l1_ways : int;
  l2_bytes : int;
  l2_ways : int;
  tlb_entries : int;
  line_bytes : int;
}

val default_config : config

val create :
  ?config:config ->
  aspace:Exochi_memory.Address_space.t ->
  bus:Exochi_memory.Bus.t ->
  unit ->
  t

val aspace : t -> Exochi_memory.Address_space.t
val clock : t -> Exochi_util.Timebase.clock
val l1 : t -> Exochi_memory.Cache.t
val l2 : t -> Exochi_memory.Cache.t

(** {1 Time} *)

(** Current local time in picoseconds. *)
val now_ps : t -> int

(** Move local time forward (used when the CPU waits on an event). *)
val advance_to_ps : t -> int -> unit

(** Charge [ps] of busy work (runtime services, proxy handlers). *)
val add_time_ps : t -> int -> unit

(** Charge deferred overhead (e.g. servicing user-level interrupts while
    the CPU is busy elsewhere); it is folded into [now_ps] before the next
    instruction executes. *)
val add_overhead_ps : t -> int -> unit

(** {1 Register access (for intrinsics, debugger, tests)} *)

val get_reg : t -> Exochi_isa.Via32_ast.reg -> int32
val set_reg : t -> Exochi_isa.Via32_ast.reg -> int32 -> unit
val get_xmm_lane : t -> xmm:int -> lane:int -> int32
val set_xmm_lane : t -> xmm:int -> lane:int -> int32 -> unit

(** {1 Timed data access (cache + bus accounting)} *)

val load : t -> vaddr:int -> size:int -> int32
val store : t -> vaddr:int -> size:int -> int32 -> unit

(** Flush both data caches, paying the write-back cost through the bus;
    returns the number of dirty bytes written back. *)
val flush_caches : t -> int

(** Flush a virtual address range (CLFLUSH loop). *)
val flush_range : t -> vaddr:int -> len:int -> int

(** {1 Program execution} *)

(** A loaded program: code plus the data-symbol binding produced by the
    loader. *)
type loaded = {
  prog : Exochi_isa.Via32_ast.program;
  sym_addrs : (string * int) list;
}

val load_program :
  Exochi_isa.Via32_ast.program -> symbols:(string * int) list -> loaded

exception Unbound_symbol of string
exception Unknown_intrinsic of string

(** Why [run] returned. *)
type stop_reason =
  | Halted (* executed hlt *)
  | Ret_to_host (* ret with an empty call stack *)
  | Fuel_exhausted
  | Paused of int (* on_instr returned `Pause; carries the pc *)

(** The call stack survives across [run] calls, so a debugger can resume
    a [Paused] machine by calling [run ~entry:pc] again. *)
val call_stack : t -> int list

(** [run t loaded ~entry ~intrinsics] executes from instruction index
    [entry] until [hlt] or a top-level [ret]. [intrinsics name t] is
    called for [call] instructions that target runtime intrinsics; it may
    read and modify machine state and charge time. [fuel] bounds the
    instruction count (default: unlimited). [poll] is invoked before each
    instruction — the user-level-interrupt hook. *)
val run :
  ?fuel:int ->
  ?poll:(t -> unit) ->
  ?on_instr:(t -> pc:int -> [ `Continue | `Pause ]) ->
  t ->
  loaded ->
  entry:int ->
  intrinsics:(string -> t -> unit) ->
  stop_reason


(** {1 Counters} *)

val instructions_retired : t -> int
val reset_counters : t -> unit
