lib/isa/asm_lexer.ml: Format Int64 List Loc String
