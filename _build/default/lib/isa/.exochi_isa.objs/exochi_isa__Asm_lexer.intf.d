lib/isa/asm_lexer.mli: Format Loc
