lib/isa/loc.ml: Format
