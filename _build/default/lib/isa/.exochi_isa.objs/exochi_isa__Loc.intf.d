lib/isa/loc.mli: Format
