lib/isa/via32_asm.ml: Format Loc Result Via32_ast Via32_check Via32_encode Via32_parser
