lib/isa/via32_asm.mli: Loc Via32_ast
