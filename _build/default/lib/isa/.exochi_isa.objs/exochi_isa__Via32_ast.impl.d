lib/isa/via32_ast.ml: Array Format List Option Printf
