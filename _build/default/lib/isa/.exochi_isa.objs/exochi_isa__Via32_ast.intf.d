lib/isa/via32_ast.mli: Format
