lib/isa/via32_check.ml: Array Int32 List Loc Result Via32_ast
