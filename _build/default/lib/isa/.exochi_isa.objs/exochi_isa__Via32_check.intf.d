lib/isa/via32_check.mli: Loc Via32_ast
