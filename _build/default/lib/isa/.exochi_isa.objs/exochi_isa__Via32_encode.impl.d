lib/isa/via32_encode.ml: Array Buffer Bytes Int32 List Printf Result String Via32_ast
