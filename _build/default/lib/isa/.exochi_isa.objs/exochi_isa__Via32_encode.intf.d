lib/isa/via32_encode.mli: Via32_ast
