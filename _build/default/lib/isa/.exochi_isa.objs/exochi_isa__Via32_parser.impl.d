lib/isa/via32_parser.ml: Array Asm_lexer Int32 Int64 List Loc Option Result String Via32_ast
