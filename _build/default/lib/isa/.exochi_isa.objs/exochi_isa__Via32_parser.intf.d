lib/isa/via32_parser.mli: Loc Via32_ast
