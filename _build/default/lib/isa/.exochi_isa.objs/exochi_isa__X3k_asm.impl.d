lib/isa/x3k_asm.ml: Format Loc Result X3k_ast X3k_check X3k_encode X3k_parser
