lib/isa/x3k_asm.mli: Loc X3k_ast
