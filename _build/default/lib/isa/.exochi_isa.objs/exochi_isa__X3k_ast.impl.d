lib/isa/x3k_ast.ml: Array Format List Option Printf
