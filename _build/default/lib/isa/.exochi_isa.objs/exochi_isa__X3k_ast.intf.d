lib/isa/x3k_ast.mli: Format
