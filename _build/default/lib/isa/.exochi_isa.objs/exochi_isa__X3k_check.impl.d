lib/isa/x3k_check.ml: Array Int32 List Loc Result X3k_ast
