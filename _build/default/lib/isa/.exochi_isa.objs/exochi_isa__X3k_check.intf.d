lib/isa/x3k_check.mli: Loc X3k_ast
