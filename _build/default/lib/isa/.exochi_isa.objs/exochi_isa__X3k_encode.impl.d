lib/isa/x3k_encode.ml: Array Buffer Bytes Exochi_util Int32 List Printf Result String X3k_ast
