lib/isa/x3k_encode.mli: X3k_ast
