lib/isa/x3k_parser.ml: Array Asm_lexer Int32 Int64 List Loc Option Result String X3k_ast
