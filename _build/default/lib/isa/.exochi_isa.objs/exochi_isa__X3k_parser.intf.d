lib/isa/x3k_parser.mli: Loc X3k_ast
