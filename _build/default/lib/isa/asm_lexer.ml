type token =
  | IDENT of string
  | INT of int64
  | FLOAT of float
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EQUALS
  | DOT
  | DOTDOT
  | PERCENT
  | BANG
  | AT
  | PLUS
  | MINUS
  | STAR
  | NEWLINE
  | EOF

let pp_token fmt = function
  | IDENT s -> Format.fprintf fmt "identifier %S" s
  | INT i -> Format.fprintf fmt "integer %Ld" i
  | FLOAT f -> Format.fprintf fmt "float %g" f
  | LBRACK -> Format.pp_print_string fmt "'['"
  | RBRACK -> Format.pp_print_string fmt "']'"
  | LPAREN -> Format.pp_print_string fmt "'('"
  | RPAREN -> Format.pp_print_string fmt "')'"
  | COMMA -> Format.pp_print_string fmt "','"
  | COLON -> Format.pp_print_string fmt "':'"
  | EQUALS -> Format.pp_print_string fmt "'='"
  | DOT -> Format.pp_print_string fmt "'.'"
  | DOTDOT -> Format.pp_print_string fmt "'..'"
  | PERCENT -> Format.pp_print_string fmt "'%'"
  | BANG -> Format.pp_print_string fmt "'!'"
  | AT -> Format.pp_print_string fmt "'@'"
  | PLUS -> Format.pp_print_string fmt "'+'"
  | MINUS -> Format.pp_print_string fmt "'-'"
  | STAR -> Format.pp_print_string fmt "'*'"
  | NEWLINE -> Format.pp_print_string fmt "newline"
  | EOF -> Format.pp_print_string fmt "end of input"

type t = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let create ~file src = { file; src; pos = 0; line = 1; bol = 0 }
let loc t = Loc.make ~file:t.file ~line:t.line ~col:(t.pos - t.bol + 1)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let is_hex_digit c =
  is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

let peek t off = if t.pos + off < String.length t.src then Some t.src.[t.pos + off] else None

let rec skip_blanks t =
  match peek t 0 with
  | Some (' ' | '\t' | '\r') ->
    t.pos <- t.pos + 1;
    skip_blanks t
  | Some ';' -> skip_line_comment t
  | Some '/' when peek t 1 = Some '/' -> skip_line_comment t
  | _ -> ()

and skip_line_comment t =
  (match peek t 0 with
  | Some c when c <> '\n' ->
    t.pos <- t.pos + 1;
    skip_line_comment t
  | _ -> ());
  skip_blanks t

let lex_ident t =
  let start = t.pos in
  while
    match peek t 0 with Some c when is_ident_char c -> true | _ -> false
  do
    t.pos <- t.pos + 1
  done;
  IDENT (String.sub t.src start (t.pos - start))

let lex_number t =
  let start = t.pos in
  let l = loc t in
  if peek t 0 = Some '0' && (peek t 1 = Some 'x' || peek t 1 = Some 'X') then begin
    t.pos <- t.pos + 2;
    let digits_start = t.pos in
    while match peek t 0 with Some c when is_hex_digit c -> true | _ -> false do
      t.pos <- t.pos + 1
    done;
    if t.pos = digits_start then Loc.error l "malformed hex literal"
    else begin
      let s = String.sub t.src start (t.pos - start) in
      match Int64.of_string_opt s with
      | Some v -> Ok (INT v)
      | None -> Loc.error l "hex literal out of range: %s" s
    end
  end
  else begin
    while match peek t 0 with Some c when is_digit c -> true | _ -> false do
      t.pos <- t.pos + 1
    done;
    let is_float =
      peek t 0 = Some '.'
      && (match peek t 1 with Some c -> is_digit c | None -> false)
    in
    if is_float then begin
      t.pos <- t.pos + 1;
      while match peek t 0 with Some c when is_digit c -> true | _ -> false do
        t.pos <- t.pos + 1
      done;
      (* optional exponent *)
      (match peek t 0 with
      | Some ('e' | 'E') ->
        let saved = t.pos in
        t.pos <- t.pos + 1;
        (match peek t 0 with
        | Some ('+' | '-') -> t.pos <- t.pos + 1
        | _ -> ());
        if match peek t 0 with Some c -> is_digit c | None -> false then
          while match peek t 0 with Some c when is_digit c -> true | _ -> false do
            t.pos <- t.pos + 1
          done
        else t.pos <- saved
      | _ -> ());
      let s = String.sub t.src start (t.pos - start) in
      match float_of_string_opt s with
      | Some f -> Ok (FLOAT f)
      | None -> Loc.error l "malformed float literal: %s" s
    end
    else begin
      let s = String.sub t.src start (t.pos - start) in
      match Int64.of_string_opt s with
      | Some v -> Ok (INT v)
      | None -> Loc.error l "integer literal out of range: %s" s
    end
  end

let next t =
  skip_blanks t;
  let l = loc t in
  match peek t 0 with
  | None -> Ok (EOF, l)
  | Some '\n' ->
    t.pos <- t.pos + 1;
    t.line <- t.line + 1;
    t.bol <- t.pos;
    Ok (NEWLINE, l)
  | Some c when is_ident_start c -> Ok (lex_ident t, l)
  | Some c when is_digit c ->
    (match lex_number t with Ok tok -> Ok (tok, l) | Error e -> Error e)
  | Some '.' when peek t 1 = Some '.' ->
    t.pos <- t.pos + 2;
    Ok (DOTDOT, l)
  | Some c ->
    let simple tok =
      t.pos <- t.pos + 1;
      Ok (tok, l)
    in
    (match c with
    | '[' -> simple LBRACK
    | ']' -> simple RBRACK
    | '(' -> simple LPAREN
    | ')' -> simple RPAREN
    | ',' -> simple COMMA
    | ':' -> simple COLON
    | '=' -> simple EQUALS
    | '.' -> simple DOT
    | '%' -> simple PERCENT
    | '!' -> simple BANG
    | '@' -> simple AT
    | '+' -> simple PLUS
    | '-' -> simple MINUS
    | '*' -> simple STAR
    | c -> Loc.error l "unexpected character %C" c)

let all t =
  let rec go acc =
    match next t with
    | Error e -> Error e
    | Ok ((EOF, _) as last) -> Ok (List.rev (last :: acc))
    | Ok tok -> go (tok :: acc)
  in
  go []
