(** Hand-written lexer shared by the X3K and VIA32 assemblers.

    Comments run from [;] or [//] to end of line. Newlines are significant
    (one instruction per line) and are reported as {!NEWLINE} tokens. *)

type token =
  | IDENT of string (* mnemonics, registers, labels, symbols *)
  | INT of int64 (* decimal or 0x hex *)
  | FLOAT of float
  | LBRACK
  | RBRACK
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | EQUALS
  | DOT
  | DOTDOT
  | PERCENT
  | BANG
  | AT
  | PLUS
  | MINUS
  | STAR
  | NEWLINE
  | EOF

val pp_token : Format.formatter -> token -> unit

type t

(** [create ~file src] prepares to lex [src]; [file] is used in
    locations. *)
val create : file:string -> string -> t

(** Current position (of the token about to be returned by {!next}). *)
val loc : t -> Loc.t

(** [next t] consumes and returns the next token. After [EOF], returns
    [EOF] forever. Lexical errors (bad characters, malformed numbers)
    are reported with their location. *)
val next : t -> (token * Loc.t, Loc.error) result

(** [all t] lexes to completion (including the final [EOF]). *)
val all : t -> ((token * Loc.t) list, Loc.error) result
