type t = { file : string; line : int; col : int }

let dummy = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let pp fmt t = Format.fprintf fmt "%s:%d:%d" t.file t.line t.col

type error = { loc : t; msg : string }

let error loc fmt =
  Format.kasprintf (fun msg -> Error { loc; msg }) fmt

let pp_error fmt e = Format.fprintf fmt "%a: %s" pp e.loc e.msg
let error_to_string e = Format.asprintf "%a" pp_error e
