(** Source locations and located diagnostics, shared by the two assemblers
    and the CHI-lite compiler front end. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit

(** A located diagnostic. *)
type error = { loc : t; msg : string }

val error : t -> ('a, Format.formatter, unit, ('b, error) result) format4 -> 'a
val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string
