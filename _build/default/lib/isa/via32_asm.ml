let ( let* ) = Result.bind

let assemble ~name src =
  let* p = Via32_parser.parse ~name src in
  Via32_check.check p

let assemble_exn ~name src =
  match assemble ~name src with
  | Ok p -> p
  | Error e -> failwith (Loc.error_to_string e)

let to_binary = Via32_encode.encode_program
let of_binary = Via32_encode.decode_program
let disassemble p = Format.asprintf "%a" Via32_ast.pp_program p
