(** Structural validation of parsed VIA32 programs: operand arity and
    kinds per opcode, memory-operand well-formedness, branch targets in
    range, call targets resolved, and termination ([hlt], [ret] or an
    unconditional [jmp] last). *)

val check : Via32_ast.program -> (Via32_ast.program, Loc.error) result
