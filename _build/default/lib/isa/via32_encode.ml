open Via32_ast

let instr_bytes = 36

(* Opcode family / sub-code. Families with parameters store the parameter
   in the sub byte. *)
let cc_code = function
  | E -> 0
  | NE -> 1
  | L -> 2
  | LE -> 3
  | G -> 4
  | GE -> 5
  | B -> 6
  | BE -> 7
  | A -> 8
  | AE -> 9

let cc_of_code = function
  | 0 -> Ok E
  | 1 -> Ok NE
  | 2 -> Ok L
  | 3 -> Ok LE
  | 4 -> Ok G
  | 5 -> Ok GE
  | 6 -> Ok B
  | 7 -> Ok BE
  | 8 -> Ok A
  | 9 -> Ok AE
  | c -> Error (Printf.sprintf "bad cc code %d" c)

let msize_code = function B1 -> 0 | B2 -> 1 | B4 -> 2

let msize_of_code = function
  | 0 -> Ok B1
  | 1 -> Ok B2
  | 2 -> Ok B4
  | c -> Error (Printf.sprintf "bad msize code %d" c)

let family = function
  | Mov _ -> 0
  | Movsx _ -> 1
  | Lea -> 2
  | Add -> 3
  | Sub -> 4
  | Imul -> 5
  | Sdiv -> 6
  | Srem -> 7
  | And -> 8
  | Or -> 9
  | Xor -> 10
  | Not -> 11
  | Neg -> 12
  | Shl -> 13
  | Shr -> 14
  | Sar -> 15
  | Cmp -> 16
  | Test -> 17
  | Setcc _ -> 18
  | Push -> 19
  | Pop -> 20
  | Call -> 21
  | Ret -> 22
  | Jmp -> 23
  | Jcc _ -> 24
  | Nop -> 25
  | Hlt -> 26
  | Movdqu -> 27
  | Movd -> 28
  | Movpk _ -> 29
  | Paddd -> 30
  | Psubd -> 31
  | Pmulld -> 32
  | Pminsd -> 33
  | Pmaxsd -> 34
  | Pabsd -> 35
  | Pavgd -> 36
  | Psadd -> 37
  | Phaddd -> 38
  | Packus -> 39
  | Pand -> 40
  | Por -> 41
  | Pxor -> 42
  | Pslld -> 43
  | Psrld -> 44
  | Psrad -> 45
  | Pshufd -> 46
  | Addps -> 47
  | Subps -> 48
  | Mulps -> 49
  | Divps -> 50
  | Minps -> 51
  | Maxps -> 52
  | Sqrtps -> 53
  | Cvtdq2ps -> 54
  | Cvtps2dq -> 55
  | Cmpps _ -> 56
  | Movmskps -> 57
  | Pcmpgtd -> 58
  | Pavgb -> 59
  | Movntdq -> 60

let sub = function
  | Mov m | Movsx m | Movpk m -> msize_code m
  | Setcc c | Jcc c | Cmpps c -> cc_code c
  | _ -> 0

let ( let* ) = Result.bind

let opcode_of_codes fam sb =
  match fam with
  | 0 ->
    let* m = msize_of_code sb in
    Ok (Mov m)
  | 1 ->
    let* m = msize_of_code sb in
    Ok (Movsx m)
  | 2 -> Ok Lea
  | 3 -> Ok Add
  | 4 -> Ok Sub
  | 5 -> Ok Imul
  | 6 -> Ok Sdiv
  | 7 -> Ok Srem
  | 8 -> Ok And
  | 9 -> Ok Or
  | 10 -> Ok Xor
  | 11 -> Ok Not
  | 12 -> Ok Neg
  | 13 -> Ok Shl
  | 14 -> Ok Shr
  | 15 -> Ok Sar
  | 16 -> Ok Cmp
  | 17 -> Ok Test
  | 18 ->
    let* c = cc_of_code sb in
    Ok (Setcc c)
  | 19 -> Ok Push
  | 20 -> Ok Pop
  | 21 -> Ok Call
  | 22 -> Ok Ret
  | 23 -> Ok Jmp
  | 24 ->
    let* c = cc_of_code sb in
    Ok (Jcc c)
  | 25 -> Ok Nop
  | 26 -> Ok Hlt
  | 27 -> Ok Movdqu
  | 28 -> Ok Movd
  | 29 ->
    let* m = msize_of_code sb in
    Ok (Movpk m)
  | 30 -> Ok Paddd
  | 31 -> Ok Psubd
  | 32 -> Ok Pmulld
  | 33 -> Ok Pminsd
  | 34 -> Ok Pmaxsd
  | 35 -> Ok Pabsd
  | 36 -> Ok Pavgd
  | 37 -> Ok Psadd
  | 38 -> Ok Phaddd
  | 39 -> Ok Packus
  | 40 -> Ok Pand
  | 41 -> Ok Por
  | 42 -> Ok Pxor
  | 43 -> Ok Pslld
  | 44 -> Ok Psrld
  | 45 -> Ok Psrad
  | 46 -> Ok Pshufd
  | 47 -> Ok Addps
  | 48 -> Ok Subps
  | 49 -> Ok Mulps
  | 50 -> Ok Divps
  | 51 -> Ok Minps
  | 52 -> Ok Maxps
  | 53 -> Ok Sqrtps
  | 54 -> Ok Cvtdq2ps
  | 55 -> Ok Cvtps2dq
  | 56 ->
    let* c = cc_of_code sb in
    Ok (Cmpps c)
  | 57 -> Ok Movmskps
  | 58 -> Ok Pcmpgtd
  | 59 -> Ok Pavgb
  | 60 -> Ok Movntdq
  | f -> Error (Printf.sprintf "bad opcode family %d" f)

(* Operand slot: 11 bytes (kind + 10 payload). *)
let k_none = 0
let k_reg = 1
let k_xmm = 2
let k_imm = 3
let k_mem = 4

let sym_slot symbols s =
  let rec go i =
    if i >= Array.length symbols then
      invalid_arg ("Via32_encode: unknown symbol " ^ s)
    else if symbols.(i) = s then i
    else go (i + 1)
  in
  go 0

let encode_operand symbols b off = function
  | None -> Bytes.set_uint8 b off k_none
  | Some (R r) ->
    Bytes.set_uint8 b off k_reg;
    Bytes.set_uint8 b (off + 1) (reg_index r)
  | Some (X x) ->
    Bytes.set_uint8 b off k_xmm;
    Bytes.set_uint8 b (off + 1) x
  | Some (I i) ->
    Bytes.set_uint8 b off k_imm;
    Bytes.set_int32_le b (off + 1) i
  | Some (M m) ->
    Bytes.set_uint8 b off k_mem;
    let flags =
      (if m.base <> None then 1 else 0)
      lor (if m.index <> None then 2 else 0)
      lor if m.sym <> None then 4 else 0
    in
    Bytes.set_uint8 b (off + 1) flags;
    Bytes.set_uint8 b (off + 2)
      (match m.base with Some r -> reg_index r | None -> 0);
    (match m.index with
    | Some (r, s) ->
      Bytes.set_uint8 b (off + 3) (reg_index r);
      Bytes.set_uint8 b (off + 4) s
    | None ->
      Bytes.set_uint8 b (off + 3) 0;
      Bytes.set_uint8 b (off + 4) 1);
    Bytes.set_int32_le b (off + 5) (Int32.of_int m.disp);
    Bytes.set_uint8 b (off + 9)
      (match m.sym with Some s -> sym_slot symbols s | None -> 0)

let decode_operand symbols b off =
  match Bytes.get_uint8 b off with
  | 0 -> Ok None
  | 1 -> Ok (Some (R (reg_of_index (Bytes.get_uint8 b (off + 1)))))
  | 2 -> Ok (Some (X (Bytes.get_uint8 b (off + 1))))
  | 3 -> Ok (Some (I (Bytes.get_int32_le b (off + 1))))
  | 4 ->
    let flags = Bytes.get_uint8 b (off + 1) in
    let base =
      if flags land 1 <> 0 then
        Some (reg_of_index (Bytes.get_uint8 b (off + 2)))
      else None
    in
    let index =
      if flags land 2 <> 0 then
        Some (reg_of_index (Bytes.get_uint8 b (off + 3)), Bytes.get_uint8 b (off + 4))
      else None
    in
    let disp = Int32.to_int (Bytes.get_int32_le b (off + 5)) in
    let sym =
      if flags land 4 <> 0 then begin
        let slot = Bytes.get_uint8 b (off + 9) in
        if slot < Array.length symbols then Some symbols.(slot) else None
      end
      else None
    in
    Ok (Some (M { base; index; disp; sym }))
  | k -> Error (Printf.sprintf "bad operand kind %d" k)

let encode_instr symbols i =
  let b = Bytes.make instr_bytes '\000' in
  Bytes.set_uint8 b 0 (family i.op);
  Bytes.set_uint8 b 1 (sub i.op);
  let o1, o2, o3 =
    match i.operands with
    | [] -> (None, None, None)
    | [ a ] -> (Some a, None, None)
    | [ a; b ] -> (Some a, Some b, None)
    | [ a; b; c ] -> (Some a, Some b, Some c)
    | _ -> invalid_arg "Via32_encode: more than three operands"
  in
  encode_operand symbols b 2 o1;
  encode_operand symbols b 13 o2;
  encode_operand symbols b 24 o3;
  Bytes.set_uint8 b 35 (List.length i.operands);
  b

let decode_instr symbols b ~pos ~line =
  let* op = opcode_of_codes (Bytes.get_uint8 b pos) (Bytes.get_uint8 b (pos + 1)) in
  let* o1 = decode_operand symbols b (pos + 2) in
  let* o2 = decode_operand symbols b (pos + 13) in
  let* o3 = decode_operand symbols b (pos + 24) in
  let n = Bytes.get_uint8 b (pos + 35) in
  let* operands =
    match (n, o1, o2, o3) with
    | 0, None, None, None -> Ok []
    | 1, Some a, None, None -> Ok [ a ]
    | 2, Some a, Some b, None -> Ok [ a; b ]
    | 3, Some a, Some b, Some c -> Ok [ a; b; c ]
    | _ -> Error "inconsistent operand count"
  in
  Ok { op; operands; line }

let magic = "VI32"

let encode_program p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let add_u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  let add_str16 s =
    let b = Bytes.create 2 in
    Bytes.set_uint16_le b 0 (String.length s);
    Buffer.add_bytes buf b;
    Buffer.add_string buf s
  in
  add_u32 (Array.length p.instrs);
  add_u32 (Array.length p.symbols);
  add_u32 (List.length p.labels);
  add_u32 (List.length p.calls);
  add_str16 p.name;
  Array.iter add_str16 p.symbols;
  List.iter
    (fun (l, idx) ->
      add_str16 l;
      add_u32 idx)
    p.labels;
  List.iter
    (fun (idx, target) ->
      add_u32 idx;
      match target with
      | Internal t ->
        add_u32 0;
        add_u32 t
      | Intrinsic s ->
        add_u32 1;
        add_str16 s)
    p.calls;
  Array.iter (fun i -> add_u32 i.line) p.instrs;
  Array.iter (fun i -> Buffer.add_bytes buf (encode_instr p.symbols i)) p.instrs;
  Buffer.to_bytes buf

let decode_program ~name b =
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s: %s" name msg) in
  if Bytes.length b < 4 || Bytes.sub_string b 0 4 <> magic then fail "bad magic"
  else begin
    pos := 4;
    let get_u32 () =
      let v = Int32.to_int (Bytes.get_int32_le b !pos) in
      pos := !pos + 4;
      v
    in
    let get_str16 () =
      let n = Bytes.get_uint16_le b !pos in
      pos := !pos + 2;
      let s = Bytes.sub_string b !pos n in
      pos := !pos + n;
      s
    in
    try
      let ninstr = get_u32 () in
      let nsym = get_u32 () in
      let nlabel = get_u32 () in
      let ncall = get_u32 () in
      let pname = get_str16 () in
      let symbols = Array.init nsym (fun _ -> get_str16 ()) in
      let labels =
        List.init nlabel (fun _ ->
            let l = get_str16 () in
            let idx = get_u32 () in
            (l, idx))
      in
      let calls =
        List.init ncall (fun _ ->
            let idx = get_u32 () in
            match get_u32 () with
            | 0 ->
              let t = get_u32 () in
              (idx, Internal t)
            | _ ->
              let s = get_str16 () in
              (idx, Intrinsic s))
      in
      let lines = Array.init ninstr (fun _ -> get_u32 ()) in
      let dummy = { op = Nop; operands = []; line = 0 } in
      let instrs = Array.make ninstr dummy in
      let rec go i =
        if i >= ninstr then Ok ()
        else
          match
            decode_instr symbols b ~pos:(!pos + (i * instr_bytes))
              ~line:lines.(i)
          with
          | Ok instr ->
            instrs.(i) <- instr;
            go (i + 1)
          | Error e -> fail e
      in
      let* () = go 0 in
      Ok { name = pname; instrs; labels; calls; symbols; source = "" }
    with Invalid_argument _ -> fail "truncated program"
  end
