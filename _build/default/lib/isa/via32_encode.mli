(** Fixed-width binary encoding of VIA32 programs for fat-binary code
    sections. [decode_program] is the exact inverse of [encode_program]
    for any program accepted by {!Via32_check} (modulo the original
    source text, which is not stored). *)

val instr_bytes : int
val encode_program : Via32_ast.program -> bytes
val decode_program : name:string -> bytes -> (Via32_ast.program, string) result
