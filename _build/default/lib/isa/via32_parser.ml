open Via32_ast

let ( let* ) = Result.bind

type pre_operand = Op of operand | Name of string * Loc.t

type pre_instr = {
  p_op : opcode;
  p_operands : pre_operand list;
  p_line : int;
  p_loc : Loc.t;
}

type state = {
  lx : Asm_lexer.t;
  mutable tok : Asm_lexer.token;
  mutable tok_loc : Loc.t;
  mutable symbols : string list; (* reversed *)
}

let advance st =
  match Asm_lexer.next st.lx with
  | Ok (tok, loc) ->
    st.tok <- tok;
    st.tok_loc <- loc;
    Ok ()
  | Error e -> Error e

let expect st want ~what =
  if st.tok = want then advance st
  else
    Loc.error st.tok_loc "expected %a in %s, found %a" Asm_lexer.pp_token want
      what Asm_lexer.pp_token st.tok

let reg_of_name = function
  | "eax" -> Some EAX
  | "ebx" -> Some EBX
  | "ecx" -> Some ECX
  | "edx" -> Some EDX
  | "esi" -> Some ESI
  | "edi" -> Some EDI
  | "ebp" -> Some EBP
  | "esp" -> Some ESP
  | _ -> None

let xmm_of_name s =
  if String.length s >= 4 && String.sub s 0 3 = "xmm" then
    match int_of_string_opt (String.sub s 3 (String.length s - 3)) with
    | Some n when n >= 0 && n <= 7 -> Some n
    | _ -> None
  else None

let cc_of_name = function
  | "e" -> Some E
  | "ne" -> Some NE
  | "l" -> Some L
  | "le" -> Some LE
  | "g" -> Some G
  | "ge" -> Some GE
  | "b" -> Some B
  | "be" -> Some BE
  | "a" -> Some A
  | "ae" -> Some AE
  | _ -> None

let msize_of_suffix = function
  | "b" -> Some B1
  | "w" -> Some B2
  | "d" -> Some B4
  | _ -> None

(* Mnemonic root (+ optional '.' suffix) -> opcode. *)
let opcode_of_mnemonic loc root suffix =
  let need_none op =
    match suffix with
    | None -> Ok op
    | Some s -> Loc.error loc "mnemonic %s takes no suffix .%s" root s
  in
  let with_msize mk =
    match suffix with
    | Some s -> (
      match msize_of_suffix s with
      | Some m -> Ok (mk m)
      | None -> Loc.error loc "bad size suffix .%s on %s" s root)
    | None -> Ok (mk B4)
  in
  match root with
  | "mov" -> with_msize (fun m -> Mov m)
  | "movsx" -> (
    match suffix with
    | Some s -> (
      match msize_of_suffix s with
      | Some B4 -> Loc.error loc "movsx.d is meaningless; use mov.d"
      | Some m -> Ok (Movsx m)
      | None -> Loc.error loc "bad size suffix .%s on movsx" s)
    | None -> Loc.error loc "movsx requires .b or .w")
  | "movpk" -> (
    match suffix with
    | Some s -> (
      match msize_of_suffix s with
      | Some B4 -> Loc.error loc "movpk.d is meaningless; use movdqu"
      | Some m -> Ok (Movpk m)
      | None -> Loc.error loc "bad size suffix .%s on movpk" s)
    | None -> Loc.error loc "movpk requires .b or .w")
  | "cmpps" -> (
    match suffix with
    | Some s -> (
      match cc_of_name s with
      | Some c -> Ok (Cmpps c)
      | None -> Loc.error loc "bad condition .%s on cmpps" s)
    | None -> Loc.error loc "cmpps requires a condition suffix")
  | "lea" -> need_none Lea
  | "add" -> need_none Add
  | "sub" -> need_none Sub
  | "imul" -> need_none Imul
  | "sdiv" -> need_none Sdiv
  | "srem" -> need_none Srem
  | "and" -> need_none And
  | "or" -> need_none Or
  | "xor" -> need_none Xor
  | "not" -> need_none Not
  | "neg" -> need_none Neg
  | "shl" -> need_none Shl
  | "shr" -> need_none Shr
  | "sar" -> need_none Sar
  | "cmp" -> need_none Cmp
  | "test" -> need_none Test
  | "push" -> need_none Push
  | "pop" -> need_none Pop
  | "call" -> need_none Call
  | "ret" -> need_none Ret
  | "jmp" -> need_none Jmp
  | "nop" -> need_none Nop
  | "hlt" -> need_none Hlt
  | "movdqu" -> need_none Movdqu
  | "movntdq" -> need_none Movntdq
  | "movd" -> need_none Movd
  | "paddd" -> need_none Paddd
  | "psubd" -> need_none Psubd
  | "pmulld" -> need_none Pmulld
  | "pminsd" -> need_none Pminsd
  | "pmaxsd" -> need_none Pmaxsd
  | "pabsd" -> need_none Pabsd
  | "pavgd" -> need_none Pavgd
  | "pavgb" -> need_none Pavgb
  | "psadd" -> need_none Psadd
  | "phaddd" -> need_none Phaddd
  | "packus" -> need_none Packus
  | "pcmpgtd" -> need_none Pcmpgtd
  | "pand" -> need_none Pand
  | "por" -> need_none Por
  | "pxor" -> need_none Pxor
  | "pslld" -> need_none Pslld
  | "psrld" -> need_none Psrld
  | "psrad" -> need_none Psrad
  | "pshufd" -> need_none Pshufd
  | "addps" -> need_none Addps
  | "subps" -> need_none Subps
  | "mulps" -> need_none Mulps
  | "divps" -> need_none Divps
  | "minps" -> need_none Minps
  | "maxps" -> need_none Maxps
  | "sqrtps" -> need_none Sqrtps
  | "cvtdq2ps" -> need_none Cvtdq2ps
  | "cvtps2dq" -> need_none Cvtps2dq
  | "movmskps" -> need_none Movmskps
  | _ -> (
    (* jCC / setCC families *)
    let try_prefix prefix mk =
      let pl = String.length prefix in
      if String.length root > pl && String.sub root 0 pl = prefix then
        Option.map mk (cc_of_name (String.sub root pl (String.length root - pl)))
      else None
    in
    match try_prefix "j" (fun c -> Jcc c) with
    | Some op -> (
      match suffix with
      | None -> Ok op
      | Some s -> Loc.error loc "mnemonic %s takes no suffix .%s" root s)
    | None -> (
      match try_prefix "set" (fun c -> Setcc c) with
      | Some op -> (
        match suffix with
        | None -> Ok op
        | Some s -> Loc.error loc "mnemonic %s takes no suffix .%s" root s)
      | None -> Loc.error loc "unknown mnemonic %S" root))

let intern_symbol st name =
  if not (List.mem name st.symbols) then st.symbols <- name :: st.symbols

(* memory operand: '[' term (('+'|'-') term)* ']' *)
let parse_mem st =
  let* () = expect st Asm_lexer.LBRACK ~what:"memory operand" in
  let base = ref None
  and index = ref None
  and disp = ref 0
  and sym = ref None in
  let add_reg loc r scale =
    if scale = 1 && !base = None then Ok (base := Some r)
    else if !index = None then
      if scale = 1 || scale = 2 || scale = 4 || scale = 8 then
        Ok (index := Some (r, scale))
      else Loc.error loc "bad scale %d (1/2/4/8)" scale
    else Loc.error loc "too many registers in memory operand"
  in
  let rec term sign =
    let loc = st.tok_loc in
    match st.tok with
    | Asm_lexer.IDENT s -> (
      let* () = advance st in
      match reg_of_name s with
      | Some r ->
        if sign < 0 then Loc.error loc "cannot subtract a register"
        else if st.tok = Asm_lexer.STAR then begin
          let* () = advance st in
          match st.tok with
          | Asm_lexer.INT v ->
            let* () = advance st in
            let* () = add_reg loc r (Int64.to_int v) in
            more ()
          | _ -> Loc.error st.tok_loc "expected scale after '*'"
        end
        else
          let* () = add_reg loc r 1 in
          more ()
      | None ->
        if sign < 0 then Loc.error loc "cannot subtract a symbol"
        else if !sym <> None then
          Loc.error loc "multiple symbols in memory operand"
        else begin
          sym := Some s;
          intern_symbol st s;
          more ()
        end)
    | Asm_lexer.INT v ->
      let* () = advance st in
      disp := !disp + (sign * Int64.to_int v);
      more ()
    | tok ->
      Loc.error loc "unexpected %a in memory operand" Asm_lexer.pp_token tok
  and more () =
    match st.tok with
    | Asm_lexer.PLUS ->
      let* () = advance st in
      term 1
    | Asm_lexer.MINUS ->
      let* () = advance st in
      term (-1)
    | Asm_lexer.RBRACK -> advance st
    | tok ->
      Loc.error st.tok_loc "expected '+', '-' or ']' in memory operand, found %a"
        Asm_lexer.pp_token tok
  in
  let* () = term 1 in
  Ok { base = !base; index = !index; disp = !disp; sym = !sym }

let parse_operand st =
  let loc = st.tok_loc in
  match st.tok with
  | Asm_lexer.IDENT s -> (
    match reg_of_name s with
    | Some r ->
      let* () = advance st in
      Ok (Op (R r))
    | None -> (
      match xmm_of_name s with
      | Some x ->
        let* () = advance st in
        Ok (Op (X x))
      | None ->
        let* () = advance st in
        Ok (Name (s, loc))))
  | Asm_lexer.INT v ->
    let* () = advance st in
    if Int64.compare v (-2147483648L) < 0 || Int64.compare v 4294967295L > 0
    then Loc.error loc "immediate %Ld out of 32-bit range" v
    else Ok (Op (I (Int64.to_int32 v)))
  | Asm_lexer.MINUS -> (
    let* () = advance st in
    match st.tok with
    | Asm_lexer.INT v ->
      let* () = advance st in
      Ok (Op (I (Int64.to_int32 (Int64.neg v))))
    | _ -> Loc.error st.tok_loc "expected integer after '-'")
  | Asm_lexer.LBRACK ->
    let* m = parse_mem st in
    Ok (Op (M m))
  | tok -> Loc.error loc "expected operand, found %a" Asm_lexer.pp_token tok

let parse ~name src =
  let lx = Asm_lexer.create ~file:name src in
  let* tok, tok_loc =
    match Asm_lexer.next lx with Ok x -> Ok x | Error e -> Error e
  in
  let st = { lx; tok; tok_loc; symbols = [] } in
  let pre = ref [] in
  let labels = ref [] in
  let count = ref 0 in
  let end_of_statement () =
    match st.tok with
    | Asm_lexer.NEWLINE -> advance st
    | Asm_lexer.EOF -> Ok ()
    | tok ->
      Loc.error st.tok_loc "trailing tokens after instruction: %a"
        Asm_lexer.pp_token tok
  in
  let parse_instr_after ident iloc =
    (* optional '.' suffix *)
    let* suffix =
      if st.tok = Asm_lexer.DOT then
        let* () = advance st in
        match st.tok with
        | Asm_lexer.IDENT s ->
          let* () = advance st in
          Ok (Some s)
        | _ -> Loc.error st.tok_loc "expected mnemonic suffix after '.'"
      else Ok None
    in
    let* op = opcode_of_mnemonic iloc ident suffix in
    let* operands =
      if st.tok = Asm_lexer.NEWLINE || st.tok = Asm_lexer.EOF then Ok []
      else begin
        let rec go acc =
          let* o = parse_operand st in
          if st.tok = Asm_lexer.COMMA then
            let* () = advance st in
            go (o :: acc)
          else Ok (List.rev (o :: acc))
        in
        go []
      end
    in
    Ok { p_op = op; p_operands = operands; p_line = iloc.Loc.line; p_loc = iloc }
  in
  let rec lines () =
    match st.tok with
    | Asm_lexer.EOF -> Ok ()
    | Asm_lexer.NEWLINE ->
      let* () = advance st in
      lines ()
    | Asm_lexer.IDENT ident ->
      let iloc = st.tok_loc in
      let* () = advance st in
      if st.tok = Asm_lexer.COLON then begin
        let* () = advance st in
        if List.mem_assoc ident !labels then
          Loc.error iloc "duplicate label %S" ident
        else begin
          labels := (ident, !count) :: !labels;
          lines ()
        end
      end
      else begin
        let* i = parse_instr_after ident iloc in
        pre := i :: !pre;
        incr count;
        let* () = end_of_statement () in
        lines ()
      end
    | tok ->
      Loc.error st.tok_loc "expected instruction or label, found %a"
        Asm_lexer.pp_token tok
  in
  let* () = lines () in
  let pre = List.rev !pre in
  let labels = !labels in
  (* Resolve names: branch targets must be labels; call targets may be
     labels or intrinsics; names elsewhere are rejected. *)
  let calls = ref [] in
  let* instrs =
    List.fold_left
      (fun acc (idx, p) ->
        let* acc = acc in
        let* operands =
          match (p.p_op, p.p_operands) with
          | (Jmp | Jcc _), [ Name (n, loc) ] -> (
            match List.assoc_opt n labels with
            | Some target -> Ok [ I (Int32.of_int target) ]
            | None -> Loc.error loc "undefined label %S" n)
          | (Jmp | Jcc _), _ ->
            Loc.error p.p_loc "%s requires a label operand"
              (opcode_name p.p_op)
          | Call, [ Name (n, _) ] ->
            (match List.assoc_opt n labels with
            | Some target -> calls := (idx, Internal target) :: !calls
            | None -> calls := (idx, Intrinsic n) :: !calls);
            Ok []
          | Call, _ -> Loc.error p.p_loc "call requires a name operand"
          | _, ops ->
            List.fold_left
              (fun acc o ->
                let* acc = acc in
                match o with
                | Op o -> Ok (o :: acc)
                | Name (n, loc) -> Loc.error loc "unexpected name %S" n)
              (Ok []) ops
            |> Result.map List.rev
        in
        Ok ({ op = p.p_op; operands; line = p.p_line } :: acc))
      (Ok [])
      (List.mapi (fun i p -> (i, p)) pre)
  in
  let instrs = Array.of_list (List.rev instrs) in
  Ok
    {
      name;
      instrs;
      labels;
      calls = !calls;
      symbols = Array.of_list (List.rev st.symbols);
      source = src;
    }
