(** Recursive-descent parser for VIA32 assembly (Intel syntax). Labels are
    resolved to instruction indices; [call] targets are classified as
    internal labels or named runtime intrinsics; data symbols referenced in
    memory operands are collected into the program's symbol table for the
    loader. Structural validation lives in {!Via32_check}. *)

val parse : name:string -> string -> (Via32_ast.program, Loc.error) result
