let ( let* ) = Result.bind

let assemble ~name src =
  let* p = X3k_parser.parse ~name src in
  X3k_check.check p

let assemble_exn ~name src =
  match assemble ~name src with
  | Ok p -> p
  | Error e -> failwith (Loc.error_to_string e)

let to_binary = X3k_encode.encode_program
let of_binary = X3k_encode.decode_program
let disassemble p = Format.asprintf "%a" X3k_ast.pp_program p
