(** Structural validation of parsed X3K programs: operand shapes per
    opcode, SIMD width legality, register-range divisibility, branch
    targets in range, and termination (the program must end in [end] or
    an unconditional [jmp]). Runs after parsing and before encoding, so
    the simulator can assume well-formed instructions. *)

val check : X3k_ast.program -> (X3k_ast.program, Loc.error) result
