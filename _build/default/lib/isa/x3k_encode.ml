open X3k_ast

let instr_bytes = 20

let opcode_code = function
  | Mov -> 0
  | Add -> 1
  | Sub -> 2
  | Mul -> 3
  | Mac -> 4
  | Min -> 5
  | Max -> 6
  | Avg -> 7
  | Abs -> 8
  | Sad -> 9
  | Hadd -> 10
  | Shl -> 11
  | Shr -> 12
  | Sar -> 13
  | And -> 14
  | Or -> 15
  | Xor -> 16
  | Not -> 17
  | Sat -> 18
  | Fadd -> 19
  | Fsub -> 20
  | Fmul -> 21
  | Fmac -> 22
  | Fmin -> 23
  | Fmax -> 24
  | Fdiv -> 25
  | Fsqrt -> 26
  | Fabs -> 27
  | Cvtif -> 28
  | Cvtfi -> 29
  | Dpadd -> 30
  | Sel -> 31
  | Ld -> 32
  | St -> 33
  | Gather -> 34
  | Scatter -> 35
  | Sample -> 36
  | Jmp -> 37
  | End -> 38
  | Fence -> 39
  | Cmp Eq -> 40
  | Cmp Ne -> 41
  | Cmp Lt -> 42
  | Cmp Le -> 43
  | Cmp Gt -> 44
  | Cmp Ge -> 45
  | Br Any -> 50
  | Br All -> 51
  | Br None_set -> 52
  | Semacq -> 53
  | Semrel -> 54
  | Sendreg -> 55
  | Spawn -> 56
  | Nop -> 57
  | Bcast -> 58

let opcode_of_code = function
  | 0 -> Ok Mov
  | 1 -> Ok Add
  | 2 -> Ok Sub
  | 3 -> Ok Mul
  | 4 -> Ok Mac
  | 5 -> Ok Min
  | 6 -> Ok Max
  | 7 -> Ok Avg
  | 8 -> Ok Abs
  | 9 -> Ok Sad
  | 10 -> Ok Hadd
  | 11 -> Ok Shl
  | 12 -> Ok Shr
  | 13 -> Ok Sar
  | 14 -> Ok And
  | 15 -> Ok Or
  | 16 -> Ok Xor
  | 17 -> Ok Not
  | 18 -> Ok Sat
  | 19 -> Ok Fadd
  | 20 -> Ok Fsub
  | 21 -> Ok Fmul
  | 22 -> Ok Fmac
  | 23 -> Ok Fmin
  | 24 -> Ok Fmax
  | 25 -> Ok Fdiv
  | 26 -> Ok Fsqrt
  | 27 -> Ok Fabs
  | 28 -> Ok Cvtif
  | 29 -> Ok Cvtfi
  | 30 -> Ok Dpadd
  | 31 -> Ok Sel
  | 32 -> Ok Ld
  | 33 -> Ok St
  | 34 -> Ok Gather
  | 35 -> Ok Scatter
  | 36 -> Ok Sample
  | 37 -> Ok Jmp
  | 38 -> Ok End
  | 39 -> Ok Fence
  | 40 -> Ok (Cmp Eq)
  | 41 -> Ok (Cmp Ne)
  | 42 -> Ok (Cmp Lt)
  | 43 -> Ok (Cmp Le)
  | 44 -> Ok (Cmp Gt)
  | 45 -> Ok (Cmp Ge)
  | 50 -> Ok (Br Any)
  | 51 -> Ok (Br All)
  | 52 -> Ok (Br None_set)
  | 53 -> Ok Semacq
  | 54 -> Ok Semrel
  | 55 -> Ok Sendreg
  | 56 -> Ok Spawn
  | 57 -> Ok Nop
  | 58 -> Ok Bcast
  | c -> Error (Printf.sprintf "bad opcode byte %d" c)

let dtype_code = function B -> 0 | W -> 1 | DW -> 2 | F -> 3

let dtype_of_code = function
  | 0 -> Ok B
  | 1 -> Ok W
  | 2 -> Ok DW
  | 3 -> Ok F
  | c -> Error (Printf.sprintf "bad dtype byte %d" c)

let sreg_code = function
  | Sid -> 0
  | Nshred -> 1
  | Eu -> 2
  | Tid -> 3
  | Lane -> 4
  | Param n -> 16 + n

let sreg_of_code = function
  | 0 -> Ok Sid
  | 1 -> Ok Nshred
  | 2 -> Ok Eu
  | 3 -> Ok Tid
  | 4 -> Ok Lane
  | c when c >= 16 && c < 24 -> Ok (Param (c - 16))
  | c -> Error (Printf.sprintf "bad sreg code %d" c)

(* Operand slots: 1 kind byte + 4 payload bytes. *)
let k_none = 0
let k_reg = 1
let k_range = 2
let k_flag = 3
let k_imm = 4
let k_sreg = 5
let k_surf = 6
let k_surf2d = 7
let k_remote = 8

let encode_operand b off = function
  | None -> Bytes.set_uint8 b off k_none
  | Some o -> (
    let kind, payload =
      match o with
      | Reg r -> (k_reg, Int32.of_int r)
      | Range (a, b) -> (k_range, Int32.of_int (a lor (b lsl 8)))
      | Flag f -> (k_flag, Int32.of_int f)
      | Imm i -> (k_imm, i)
      | Sreg s -> (k_sreg, Int32.of_int (sreg_code s))
      | Surf { slot; index; offset } ->
        if offset < -32768 || offset > 32767 then
          invalid_arg "X3k_encode: surface offset exceeds i16";
        (k_surf, Int32.of_int (slot lor (index lsl 8) lor (offset land 0xffff) lsl 16))
      | Surf2d { slot; xreg; yreg } ->
        (k_surf2d, Int32.of_int (slot lor (xreg lsl 8) lor (yreg lsl 16)))
      | Remote { shred_reg; reg } ->
        (k_remote, Int32.of_int (shred_reg lor (reg lsl 8)))
    in
    Bytes.set_uint8 b off kind;
    Bytes.set_int32_le b (off + 1) payload)

let decode_operand b off =
  let kind = Bytes.get_uint8 b off in
  let payload = Bytes.get_int32_le b (off + 1) in
  let pi = Int32.to_int payload land 0xFFFFFFFF in
  match kind with
  | 0 -> Ok None
  | 1 -> Ok (Some (Reg (pi land 0x7f)))
  | 2 -> Ok (Some (Range (pi land 0xff, (pi lsr 8) land 0xff)))
  | 3 -> Ok (Some (Flag (pi land 3)))
  | 4 -> Ok (Some (Imm payload))
  | 5 -> (
    match sreg_of_code (pi land 0xff) with
    | Ok s -> Ok (Some (Sreg s))
    | Error e -> Error e)
  | 6 ->
    let offset = Exochi_util.Bits.sign_extend ((pi lsr 16) land 0xffff) ~bits:16 in
    Ok (Some (Surf { slot = pi land 0xff; index = (pi lsr 8) land 0xff; offset }))
  | 7 ->
    Ok
      (Some
         (Surf2d
            { slot = pi land 0xff; xreg = (pi lsr 8) land 0xff; yreg = (pi lsr 16) land 0xff }))
  | 8 -> Ok (Some (Remote { shred_reg = pi land 0xff; reg = (pi lsr 8) land 0xff }))
  | k -> Error (Printf.sprintf "bad operand kind %d" k)

let encode_instr i =
  let b = Bytes.make instr_bytes '\000' in
  Bytes.set_uint8 b 0 (opcode_code i.op);
  Bytes.set_uint8 b 1 i.width;
  Bytes.set_uint8 b 2 (dtype_code i.dtype);
  (match i.pred with
  | None -> Bytes.set_uint8 b 3 0
  | Some { flag; negate } ->
    Bytes.set_uint8 b 3 (0x80 lor (if negate then 0x40 else 0) lor flag));
  encode_operand b 4 i.dst;
  let s1, s2 =
    match i.srcs with
    | [] -> (None, None)
    | [ a ] -> (Some a, None)
    | [ a; b ] -> (Some a, Some b)
    | _ -> invalid_arg "X3k_encode: more than two sources"
  in
  encode_operand b 9 s1;
  encode_operand b 14 s2;
  Bytes.set_uint8 b 19 (List.length i.srcs);
  b

let ( let* ) = Result.bind

let decode_instr b ~pos ~line =
  let* op = opcode_of_code (Bytes.get_uint8 b pos) in
  let width = Bytes.get_uint8 b (pos + 1) in
  let* dtype = dtype_of_code (Bytes.get_uint8 b (pos + 2)) in
  let pb = Bytes.get_uint8 b (pos + 3) in
  let pred =
    if pb land 0x80 <> 0 then
      Some { flag = pb land 3; negate = pb land 0x40 <> 0 }
    else None
  in
  let* dst = decode_operand b (pos + 4) in
  let* s1 = decode_operand b (pos + 9) in
  let* s2 = decode_operand b (pos + 14) in
  let nsrcs = Bytes.get_uint8 b (pos + 19) in
  let* srcs =
    match (nsrcs, s1, s2) with
    | 0, None, None -> Ok []
    | 1, Some a, None -> Ok [ a ]
    | 2, Some a, Some b -> Ok [ a; b ]
    | _ -> Error "inconsistent source-operand count"
  in
  Ok { pred; op; width; dtype; dst; srcs; line }

(* Program container:
   magic "X3KP" | u32 ninstr | u32 nsurf | u32 nlabel | u32 nname
   | name bytes | surfaces (u16 len + bytes)* | labels (u16 len + bytes + u32 idx)*
   | instruction words. Line numbers ride in a side table (u32 each). *)
let magic = "X3KP"

let encode_program p =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf magic;
  let add_u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  let add_str16 s =
    let b = Bytes.create 2 in
    Bytes.set_uint16_le b 0 (String.length s);
    Buffer.add_bytes buf b;
    Buffer.add_string buf s
  in
  add_u32 (Array.length p.instrs);
  add_u32 (Array.length p.surfaces);
  add_u32 (List.length p.labels);
  add_str16 p.name;
  Array.iter add_str16 p.surfaces;
  List.iter
    (fun (l, idx) ->
      add_str16 l;
      add_u32 idx)
    p.labels;
  Array.iter (fun i -> add_u32 i.line) p.instrs;
  Array.iter (fun i -> Buffer.add_bytes buf (encode_instr i)) p.instrs;
  Buffer.to_bytes buf

let decode_program ~name b =
  let pos = ref 0 in
  let fail msg = Error (Printf.sprintf "%s: %s" name msg) in
  if Bytes.length b < 4 || Bytes.sub_string b 0 4 <> magic then
    fail "bad magic"
  else begin
    pos := 4;
    let get_u32 () =
      let v = Int32.to_int (Bytes.get_int32_le b !pos) in
      pos := !pos + 4;
      v
    in
    let get_str16 () =
      let n = Bytes.get_uint16_le b !pos in
      pos := !pos + 2;
      let s = Bytes.sub_string b !pos n in
      pos := !pos + n;
      s
    in
    try
      let ninstr = get_u32 () in
      let nsurf = get_u32 () in
      let nlabel = get_u32 () in
      let pname = get_str16 () in
      let surfaces = Array.init nsurf (fun _ -> get_str16 ()) in
      let labels =
        List.init nlabel (fun _ ->
            let l = get_str16 () in
            let idx = get_u32 () in
            (l, idx))
      in
      let lines = Array.init ninstr (fun _ -> get_u32 ()) in
      let instrs = Array.make ninstr X3k_ast.nop in
      let rec go i =
        if i >= ninstr then Ok ()
        else
          match decode_instr b ~pos:(!pos + (i * instr_bytes)) ~line:lines.(i) with
          | Ok instr ->
            instrs.(i) <- instr;
            go (i + 1)
          | Error e -> fail e
      in
      let* () = go 0 in
      Ok { name = pname; instrs; surfaces; labels; source = "" }
    with Invalid_argument _ -> fail "truncated program"
  end
