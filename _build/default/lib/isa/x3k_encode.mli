(** Fixed-width binary encoding of X3K instructions, used for the code
    sections of CHI fat binaries.

    Every instruction occupies {!instr_bytes} bytes; a program section is
    a header (instruction count, surface-slot table, label table) followed
    by the instruction words. [decode] is the exact inverse of [encode]
    for any program accepted by {!X3k_check}. *)

val instr_bytes : int

(** [encode_program p] serialises a checked program (header + code). *)
val encode_program : X3k_ast.program -> bytes

(** [decode_program ~name b] parses bytes produced by
    [encode_program]. *)
val decode_program : name:string -> bytes -> (X3k_ast.program, string) result

(** Encode/decode a single instruction (20-byte word). *)
val encode_instr : X3k_ast.instr -> bytes

val decode_instr : bytes -> pos:int -> line:int -> (X3k_ast.instr, string) result
