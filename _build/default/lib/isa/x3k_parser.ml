open X3k_ast

(* Operands before label resolution. *)
type pre_operand = Op of operand | Label_ref of string * Loc.t

type pre_instr = {
  p_pred : pred option;
  p_op : opcode;
  p_width : int;
  p_dtype : dtype;
  p_dst : pre_operand option;
  p_srcs : pre_operand list;
  p_line : int;
}

type state = {
  lx : Asm_lexer.t;
  mutable tok : Asm_lexer.token;
  mutable tok_loc : Loc.t;
  mutable surfaces : string list; (* reversed *)
  mutable nsurf : int;
}

let ( let* ) = Result.bind

let advance st =
  match Asm_lexer.next st.lx with
  | Ok (tok, loc) ->
    st.tok <- tok;
    st.tok_loc <- loc;
    Ok ()
  | Error e -> Error e

let expect st want ~what =
  if st.tok = want then advance st
  else
    Loc.error st.tok_loc "expected %a in %s, found %a" Asm_lexer.pp_token want
      what Asm_lexer.pp_token st.tok

let intern_surface st name =
  let rec find i = function
    | [] -> None
    | s :: _ when s = name -> Some (st.nsurf - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 st.surfaces with
  | Some slot -> slot
  | None ->
    st.surfaces <- name :: st.surfaces;
    st.nsurf <- st.nsurf + 1;
    st.nsurf - 1

let parse_reg_name loc s =
  if String.length s > 2 && String.sub s 0 2 = "vr" then
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some n when n >= 0 && n <= 127 -> Ok n
    | _ -> Loc.error loc "bad vector register %S (vr0..vr127)" s
  else Loc.error loc "expected vector register, found %S" s

let parse_flag_name loc s =
  if String.length s = 2 && s.[0] = 'f' then
    match int_of_string_opt (String.sub s 1 1) with
    | Some n when n >= 0 && n <= 3 -> Ok n
    | _ -> Loc.error loc "bad flag register %S (f0..f3)" s
  else Loc.error loc "expected flag register, found %S" s

let parse_sreg loc s =
  match s with
  | "sid" -> Ok Sid
  | "nshred" -> Ok Nshred
  | "eu" -> Ok Eu
  | "tid" -> Ok Tid
  | "lane" -> Ok Lane
  | _ ->
    if String.length s = 2 && s.[0] = 'p' then
      match int_of_string_opt (String.sub s 1 1) with
      | Some n when n >= 0 && n <= 7 -> Ok (Param n)
      | _ -> Loc.error loc "bad special register %%%s" s
    else Loc.error loc "unknown special register %%%s" s

let imm_of_int loc v =
  if Int64.compare v (-2147483648L) < 0 || Int64.compare v 4294967295L > 0 then
    Loc.error loc "immediate %Ld out of 32-bit range" v
  else Ok (Int64.to_int32 v)

(* Parse an integer with optional leading minus (for surface offsets and
   remote register indices). *)
let parse_int st ~what =
  let loc = st.tok_loc in
  match st.tok with
  | Asm_lexer.INT v ->
    let* () = advance st in
    let* v = imm_of_int loc v in
    Ok (Int32.to_int v)
  | Asm_lexer.MINUS ->
    let* () = advance st in
    (match st.tok with
    | Asm_lexer.INT v ->
      let* () = advance st in
      let* v = imm_of_int loc (Int64.neg v) in
      Ok (Int32.to_int v)
    | _ -> Loc.error st.tok_loc "expected integer after '-' in %s" what)
  | _ ->
    Loc.error loc "expected integer in %s, found %a" what Asm_lexer.pp_token
      st.tok

let is_vreg_ident s = String.length s > 2 && String.sub s 0 2 = "vr"

let is_flag_ident s =
  String.length s = 2 && s.[0] = 'f' && s.[1] >= '0' && s.[1] <= '9'

let parse_operand st ~dtype =
  let loc = st.tok_loc in
  match st.tok with
  | Asm_lexer.IDENT s when is_vreg_ident s ->
    let* r = parse_reg_name loc s in
    let* () = advance st in
    Ok (Op (Reg r))
  | Asm_lexer.IDENT s when is_flag_ident s ->
    let* f = parse_flag_name loc s in
    let* () = advance st in
    Ok (Op (Flag f))
  | Asm_lexer.IDENT s ->
    let* () = advance st in
    Ok (Label_ref (s, loc))
  | Asm_lexer.MINUS -> (
    let* () = advance st in
    match st.tok with
    | Asm_lexer.INT v ->
      let* () = advance st in
      if dtype = F then Ok (Op (Imm (Int32.bits_of_float (-.Int64.to_float v))))
      else
        let* i = imm_of_int loc (Int64.neg v) in
        Ok (Op (Imm i))
    | Asm_lexer.FLOAT f ->
      let* () = advance st in
      if dtype = F then Ok (Op (Imm (Int32.bits_of_float (-.f))))
      else Loc.error loc "float immediate in non-.f instruction"
    | _ -> Loc.error st.tok_loc "expected number after '-'")
  | Asm_lexer.INT v ->
    let* () = advance st in
    if dtype = F then Ok (Op (Imm (Int32.bits_of_float (Int64.to_float v))))
    else
      let* i = imm_of_int loc v in
      Ok (Op (Imm i))
  | Asm_lexer.FLOAT f ->
    let* () = advance st in
    if dtype = F then Ok (Op (Imm (Int32.bits_of_float f)))
    else Loc.error loc "float immediate in non-.f instruction"
  | Asm_lexer.PERCENT -> (
    let* () = advance st in
    match st.tok with
    | Asm_lexer.IDENT s ->
      let* sr = parse_sreg st.tok_loc s in
      let* () = advance st in
      Ok (Op (Sreg sr))
    | _ -> Loc.error st.tok_loc "expected special register name after '%%'")
  | Asm_lexer.LBRACK -> (
    let* () = advance st in
    match st.tok with
    | Asm_lexer.IDENT a ->
      let* ra = parse_reg_name st.tok_loc a in
      let* () = advance st in
      let* () = expect st Asm_lexer.DOTDOT ~what:"register range" in
      (match st.tok with
      | Asm_lexer.IDENT b ->
        let* rb = parse_reg_name st.tok_loc b in
        let* () = advance st in
        let* () = expect st Asm_lexer.RBRACK ~what:"register range" in
        if ra > rb then Loc.error loc "empty register range [vr%d..vr%d]" ra rb
        else Ok (Op (Range (ra, rb)))
      | _ -> Loc.error st.tok_loc "expected register after '..'")
    | _ -> Loc.error st.tok_loc "expected register after '['")
  | Asm_lexer.LPAREN -> (
    (* (NAME, vrI, off) or (NAME, vrX, vrY) *)
    let* () = advance st in
    match st.tok with
    | Asm_lexer.IDENT name ->
      let slot = intern_surface st name in
      let* () = advance st in
      let* () = expect st Asm_lexer.COMMA ~what:"surface operand" in
      (match st.tok with
      | Asm_lexer.IDENT r ->
        let* ri = parse_reg_name st.tok_loc r in
        let* () = advance st in
        let* () = expect st Asm_lexer.COMMA ~what:"surface operand" in
        (match st.tok with
        | Asm_lexer.IDENT r2 ->
          let* ry = parse_reg_name st.tok_loc r2 in
          let* () = advance st in
          let* () = expect st Asm_lexer.RPAREN ~what:"surface operand" in
          Ok (Op (Surf2d { slot; xreg = ri; yreg = ry }))
        | Asm_lexer.INT _ | Asm_lexer.MINUS ->
          let* off = parse_int st ~what:"surface offset" in
          let* () = expect st Asm_lexer.RPAREN ~what:"surface operand" in
          Ok (Op (Surf { slot; index = ri; offset = off }))
        | _ ->
          Loc.error st.tok_loc
            "expected offset or row register in surface operand")
      | _ -> Loc.error st.tok_loc "expected index register in surface operand")
    | _ -> Loc.error st.tok_loc "expected surface name after '('")
  | Asm_lexer.AT -> (
    let* () = advance st in
    let* () = expect st Asm_lexer.LPAREN ~what:"remote register operand" in
    match st.tok with
    | Asm_lexer.IDENT r ->
      let* sr = parse_reg_name st.tok_loc r in
      let* () = advance st in
      let* () = expect st Asm_lexer.COMMA ~what:"remote register operand" in
      let* reg = parse_int st ~what:"remote register index" in
      let* () = expect st Asm_lexer.RPAREN ~what:"remote register operand" in
      if reg < 0 || reg > 127 then
        Loc.error loc "remote register index %d out of range" reg
      else Ok (Op (Remote { shred_reg = sr; reg }))
    | _ -> Loc.error st.tok_loc "expected register in remote operand")
  | tok -> Loc.error loc "expected operand, found %a" Asm_lexer.pp_token tok

let opcode_of_root loc root ~cond ~mode =
  match (root, cond, mode) with
  | "mov", None, None -> Ok Mov
  | "add", None, None -> Ok Add
  | "sub", None, None -> Ok Sub
  | "mul", None, None -> Ok Mul
  | "mac", None, None -> Ok Mac
  | "min", None, None -> Ok Min
  | "max", None, None -> Ok Max
  | "avg", None, None -> Ok Avg
  | "abs", None, None -> Ok Abs
  | "sad", None, None -> Ok Sad
  | "hadd", None, None -> Ok Hadd
  | "shl", None, None -> Ok Shl
  | "shr", None, None -> Ok Shr
  | "sar", None, None -> Ok Sar
  | "and", None, None -> Ok And
  | "or", None, None -> Ok Or
  | "xor", None, None -> Ok Xor
  | "not", None, None -> Ok Not
  | "sat", None, None -> Ok Sat
  | "bcast", None, None -> Ok Bcast
  | "fadd", None, None -> Ok Fadd
  | "fsub", None, None -> Ok Fsub
  | "fmul", None, None -> Ok Fmul
  | "fmac", None, None -> Ok Fmac
  | "fmin", None, None -> Ok Fmin
  | "fmax", None, None -> Ok Fmax
  | "fdiv", None, None -> Ok Fdiv
  | "fsqrt", None, None -> Ok Fsqrt
  | "fabs", None, None -> Ok Fabs
  | "cvtif", None, None -> Ok Cvtif
  | "cvtfi", None, None -> Ok Cvtfi
  | "dpadd", None, None -> Ok Dpadd
  | "cmp", Some c, None -> Ok (Cmp c)
  | "cmp", None, None -> Loc.error loc "cmp requires a condition suffix"
  | "sel", None, None -> Ok Sel
  | "ld", None, None -> Ok Ld
  | "st", None, None -> Ok St
  | "gather", None, None -> Ok Gather
  | "scatter", None, None -> Ok Scatter
  | "sample", None, None -> Ok Sample
  | "br", None, Some m -> Ok (Br m)
  | "br", None, None -> Loc.error loc "br requires .any/.all/.none"
  | "jmp", None, None -> Ok Jmp
  | "end", None, None -> Ok End
  | "fence", None, None -> Ok Fence
  | "sendreg", None, None -> Ok Sendreg
  | "spawn", None, None -> Ok Spawn
  | "nop", None, None -> Ok Nop
  | _ -> Loc.error loc "unknown mnemonic %S" root

let classify_suffixes loc sfx =
  let cond = ref None
  and mode = ref None
  and width = ref None
  and dt = ref None in
  let* () =
    List.fold_left
      (fun acc s ->
        let* () = acc in
        match s with
        | "eq" -> Ok (cond := Some Eq)
        | "ne" -> Ok (cond := Some Ne)
        | "lt" -> Ok (cond := Some Lt)
        | "le" -> Ok (cond := Some Le)
        | "gt" -> Ok (cond := Some Gt)
        | "ge" -> Ok (cond := Some Ge)
        | "any" -> Ok (mode := Some Any)
        | "all" -> Ok (mode := Some All)
        | "none" -> Ok (mode := Some None_set)
        | "b" -> Ok (dt := Some B)
        | "w" -> Ok (dt := Some W)
        | "dw" -> Ok (dt := Some DW)
        | "f" -> Ok (dt := Some F)
        | s -> (
          match int_of_string_opt s with
          | Some n when n = 1 || n = 2 || n = 4 || n = 8 || n = 16 ->
            Ok (width := Some n)
          | Some n -> Loc.error loc "bad SIMD width %d (1/2/4/8/16)" n
          | None -> Loc.error loc "unknown mnemonic suffix %S" s))
      (Ok ()) sfx
  in
  Ok (!cond, !mode, !width, !dt)

let has_dst = function
  | Mov | Add | Sub | Mul | Mac | Min | Max | Avg | Abs | Sad | Hadd | Shl
  | Shr | Sar | And | Or | Xor | Not | Sat | Bcast | Fadd | Fsub | Fmul | Fmac | Fmin
  | Fmax | Fdiv | Fsqrt | Fabs | Cvtif | Cvtfi | Dpadd | Cmp _ | Sel | Ld
  | St | Gather | Scatter | Sample | Sendreg ->
    true
  | Br _ | Jmp | End | Fence | Semacq | Semrel | Spawn | Nop -> false

(* Parse the mnemonic suffixes and operands of one instruction. [root] is
   the already-consumed mnemonic root; [pred] any already-parsed
   predication. *)
let parse_instr_body st ~pred ~root ~root_loc ~line =
  let rec suffixes acc =
    if st.tok = Asm_lexer.DOT then
      let* () = advance st in
      match st.tok with
      | Asm_lexer.IDENT s ->
        let* () = advance st in
        suffixes (s :: acc)
      | Asm_lexer.INT v ->
        let* () = advance st in
        suffixes (Int64.to_string v :: acc)
      | _ -> Loc.error st.tok_loc "expected mnemonic suffix after '.'"
    else Ok (List.rev acc)
  in
  let* sfx = suffixes [] in
  (* sem.acq / sem.rel: the first suffix selects the opcode *)
  let* op, sfx =
    match (root, sfx) with
    | "sem", "acq" :: rest -> Ok (Some Semacq, rest)
    | "sem", "rel" :: rest -> Ok (Some Semrel, rest)
    | "sem", _ -> Loc.error root_loc "sem requires .acq or .rel"
    | _ -> Ok (None, sfx)
  in
  let* cond, mode, width, dt = classify_suffixes root_loc sfx in
  let* op =
    match op with
    | Some op -> Ok op
    | None -> opcode_of_root root_loc root ~cond ~mode
  in
  let width = Option.value width ~default:1 in
  let dtype = Option.value dt ~default:DW in
  let* dst, srcs =
    if st.tok = Asm_lexer.NEWLINE || st.tok = Asm_lexer.EOF then Ok (None, [])
    else begin
      let* first = parse_operand st ~dtype in
      if st.tok = Asm_lexer.EQUALS then begin
        let* () = advance st in
        let rec parse_srcs acc =
          let* o = parse_operand st ~dtype in
          if st.tok = Asm_lexer.COMMA then
            let* () = advance st in
            parse_srcs (o :: acc)
          else Ok (List.rev (o :: acc))
        in
        let* srcs = parse_srcs [] in
        Ok (Some first, srcs)
      end
      else begin
        let rec parse_rest acc =
          if st.tok = Asm_lexer.COMMA then
            let* () = advance st in
            let* o = parse_operand st ~dtype in
            parse_rest (o :: acc)
          else Ok (List.rev acc)
        in
        let* rest = parse_rest [ first ] in
        Ok (None, rest)
      end
    end
  in
  (* Operand-form sanity is finished in X3k_check; here we only keep the
     dst/srcs split faithful to the '=' in the source. *)
  ignore (has_dst op);
  Ok
    {
      p_pred = pred;
      p_op = op;
      p_width = width;
      p_dtype = dtype;
      p_dst = dst;
      p_srcs = srcs;
      p_line = line;
    }

(* An instruction starting at the current token (used after '(' pred). *)
let parse_pred_instr st ~line =
  (* '(' at statement start is always predication: instructions never
     begin with a surface operand. *)
  let* () = expect st Asm_lexer.LPAREN ~what:"predication" in
  let* negate =
    if st.tok = Asm_lexer.BANG then
      let* () = advance st in
      Ok true
    else Ok false
  in
  match st.tok with
  | Asm_lexer.IDENT s ->
    let* f = parse_flag_name st.tok_loc s in
    let* () = advance st in
    let* () = expect st Asm_lexer.RPAREN ~what:"predication" in
    (match st.tok with
    | Asm_lexer.IDENT root ->
      let root_loc = st.tok_loc in
      let* () = advance st in
      parse_instr_body st ~pred:(Some { flag = f; negate }) ~root ~root_loc
        ~line
    | tok ->
      Loc.error st.tok_loc "expected mnemonic after predication, found %a"
        Asm_lexer.pp_token tok)
  | _ -> Loc.error st.tok_loc "expected flag register in predication"

let resolve_operand labels = function
  | Op o -> Ok o
  | Label_ref (name, loc) -> (
    match List.assoc_opt name labels with
    | Some idx -> Ok (Imm (Int32.of_int idx))
    | None -> Loc.error loc "undefined label %S" name)

let parse ~name src =
  let lx = Asm_lexer.create ~file:name src in
  let* tok, tok_loc =
    match Asm_lexer.next lx with Ok x -> Ok x | Error e -> Error e
  in
  let st = { lx; tok; tok_loc; surfaces = []; nsurf = 0 } in
  let pre = ref [] in
  let labels = ref [] in
  let count = ref 0 in
  let end_of_statement () =
    match st.tok with
    | Asm_lexer.NEWLINE -> advance st
    | Asm_lexer.EOF -> Ok ()
    | tok ->
      Loc.error st.tok_loc "trailing tokens after instruction: %a"
        Asm_lexer.pp_token tok
  in
  let rec lines () =
    match st.tok with
    | Asm_lexer.EOF -> Ok ()
    | Asm_lexer.NEWLINE ->
      let* () = advance st in
      lines ()
    | Asm_lexer.IDENT ident ->
      let iloc = st.tok_loc in
      let* () = advance st in
      if st.tok = Asm_lexer.COLON then begin
        let* () = advance st in
        if List.mem_assoc ident !labels then
          Loc.error iloc "duplicate label %S" ident
        else begin
          labels := (ident, !count) :: !labels;
          lines ()
        end
      end
      else begin
        let* i =
          parse_instr_body st ~pred:None ~root:ident ~root_loc:iloc
            ~line:iloc.Loc.line
        in
        pre := i :: !pre;
        incr count;
        let* () = end_of_statement () in
        lines ()
      end
    | Asm_lexer.LPAREN ->
      let line = st.tok_loc.Loc.line in
      let* i = parse_pred_instr st ~line in
      pre := i :: !pre;
      incr count;
      let* () = end_of_statement () in
      lines ()
    | tok ->
      Loc.error st.tok_loc "expected instruction or label, found %a"
        Asm_lexer.pp_token tok
  in
  let* () = lines () in
  let pre = List.rev !pre in
  let labels = !labels in
  let* instrs =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* dst =
          match p.p_dst with
          | None -> Ok None
          | Some o ->
            let* o = resolve_operand labels o in
            Ok (Some o)
        in
        let* srcs =
          List.fold_left
            (fun acc o ->
              let* acc = acc in
              let* o = resolve_operand labels o in
              Ok (o :: acc))
            (Ok []) p.p_srcs
        in
        Ok
          ({
             pred = p.p_pred;
             op = p.p_op;
             width = p.p_width;
             dtype = p.p_dtype;
             dst;
             srcs = List.rev srcs;
             line = p.p_line;
           }
          :: acc))
      (Ok []) pre
  in
  let instrs = Array.of_list (List.rev instrs) in
  let surfaces = Array.of_list (List.rev st.surfaces) in
  Ok { name; instrs; surfaces; labels; source = src }
