(** Recursive-descent parser for X3K assembly text.

    Produces an unvalidated {!X3k_ast.program}: labels are resolved to
    instruction indices, surface names are interned into the slot table in
    order of first appearance, and float immediates are bit-cast when the
    instruction's data type is [f]. Structural validation (operand kinds,
    widths, register ranges) is performed by {!X3k_check}. *)

val parse : name:string -> string -> (X3k_ast.program, Loc.error) result
