lib/kernels/advdi.mli: Kernel
