lib/kernels/alphablend.ml: Exochi_media Exochi_memory Image Kernel List Printf Surface
