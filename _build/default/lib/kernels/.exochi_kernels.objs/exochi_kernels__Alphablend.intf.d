lib/kernels/alphablend.mli: Kernel
