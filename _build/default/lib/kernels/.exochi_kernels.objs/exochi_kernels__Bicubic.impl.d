lib/kernels/bicubic.ml: Array Buffer Exochi_media Exochi_memory Image Kernel List Printf Surface
