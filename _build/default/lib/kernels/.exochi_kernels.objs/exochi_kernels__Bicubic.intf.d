lib/kernels/bicubic.mli: Kernel
