lib/kernels/bob.ml: Exochi_media Exochi_memory Image Kernel List Printf Surface
