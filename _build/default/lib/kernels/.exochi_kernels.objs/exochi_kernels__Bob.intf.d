lib/kernels/bob.mli: Kernel
