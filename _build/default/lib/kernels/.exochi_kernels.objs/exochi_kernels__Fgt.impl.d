lib/kernels/fgt.ml: Array Exochi_accel Exochi_media Exochi_memory Image Int32 Kernel List Printf Surface
