lib/kernels/fgt.mli: Kernel
