lib/kernels/fmd.ml: Array Exochi_media Exochi_memory Float Image Kernel List Printf Surface
