lib/kernels/fmd.mli: Exochi_media Kernel
