lib/kernels/harness.mli: Exochi_accel Exochi_core Exochi_memory Kernel
