lib/kernels/kalman.ml: Array Buffer Exochi_media Exochi_memory Image Int32 Kernel List Printf Surface
