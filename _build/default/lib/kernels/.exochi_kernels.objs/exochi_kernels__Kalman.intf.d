lib/kernels/kalman.mli: Kernel
