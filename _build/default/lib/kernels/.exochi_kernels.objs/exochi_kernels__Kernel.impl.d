lib/kernels/kernel.ml: Exochi_media Exochi_util List Printf
