lib/kernels/kernel.mli: Exochi_media Exochi_util
