lib/kernels/linear_filter.ml: Exochi_media Exochi_memory Image Kernel List Printf Surface
