lib/kernels/linear_filter.mli: Kernel
