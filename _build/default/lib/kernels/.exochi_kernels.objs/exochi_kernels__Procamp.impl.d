lib/kernels/procamp.ml: Array Exochi_media Exochi_memory Image Int32 Kernel List Printf Surface
