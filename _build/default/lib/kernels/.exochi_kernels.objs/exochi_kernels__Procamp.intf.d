lib/kernels/procamp.mli: Kernel
