lib/kernels/registry.ml: Advdi Alphablend Bicubic Bob Fgt Fmd Kalman Kernel Linear_filter List Procamp Sepia String
