lib/kernels/sepia.mli: Kernel
