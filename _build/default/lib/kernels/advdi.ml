(* Advanced de-interlacing (Table 2): motion-adaptive — per missing pixel,
   measure temporal motion against the previous frame; static areas weave
   the previous frame's line, moving areas fall back to spatial (BOB)
   interpolation. Considerably more computation per pixel than BOB. *)

open Exochi_media

let w = 720
let h = 480
let tile_w = 240
let tile_h = 16
let motion_thresh = 8

let make_io ?(frames = 30) prng _scale =
  let cur = Image.synthetic_video prng ~width:w ~height:h ~frames Image.Natural in
  let hs = h * frames in
  (* PRV(frame f) = CUR(frame f-1); frame 0 sees itself *)
  let prv =
    Image.init ~width:w ~height:hs (fun ~x ~y ->
        let f = y / h and py = y mod h in
        let pf = max 0 (f - 1) in
        Image.get cur ~x ~y:((pf * h) + py))
  in
  {
    Kernel.wl_desc = Printf.sprintf "%d frames %dx%d" frames w h;
    inputs = [ ("CUR", cur); ("PRV", prv) ];
    outputs = [ ("OUT", w, hs) ];
    units = w / tile_w * (hs / tile_h);
    meta = [ ("w", w); ("hs", hs); ("frames", frames) ];
  }

let golden io =
  let cur = List.assoc "CUR" io.Kernel.inputs in
  let prv = List.assoc "PRV" io.Kernel.inputs in
  let hs = Kernel.meta io "hs" in
  let out =
    Image.init ~width:w ~height:hs (fun ~x ~y ->
        if y land 1 = 0 then Image.get cur ~x ~y
        else begin
          let frame_last = (((y / h) + 1) * h) - 1 in
          let ylo = y - 1 and yhi = min (y + 1) frame_last in
          let m =
            abs (Image.get cur ~x ~y:ylo - Image.get prv ~x ~y:ylo)
            + abs (Image.get cur ~x ~y:yhi - Image.get prv ~x ~y:yhi)
          in
          if m < motion_thresh then Image.get prv ~x ~y
          else (Image.get cur ~x ~y:ylo + Image.get cur ~x ~y:yhi + 1) lsr 1
        end)
  in
  [ ("OUT", out) ]

let x3k_asm _io =
  Printf.sprintf
    {|; advanced de-interlace: 240x16 tile at (%%p0, %%p1); %%p2 = frame last row
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = %%p1
  mov.1.dw vr9 = %%p2
  mov.1.dw vr2 = 0
AROW:
  add.1.dw vr3 = vr1, vr2
  and.1.dw vr4 = vr3, 1
  cmp.eq.1.dw f0 = vr4, 0
  br.any f0, AEVEN
  sub.1.dw vr7 = vr3, 1
  add.1.dw vr8 = vr3, 1
  min.1.dw vr8 = vr8, vr9
  mov.1.dw vr5 = vr0
  mov.1.dw vr6 = 0
AODD:
  ld.16.b vr10 = (CUR, vr5, vr7)
  ld.16.b vr11 = (PRV, vr5, vr7)
  sub.16.dw vr12 = vr10, vr11
  abs.16.dw vr12 = vr12
  ld.16.b vr13 = (CUR, vr5, vr8)
  ld.16.b vr14 = (PRV, vr5, vr8)
  sub.16.dw vr15 = vr13, vr14
  abs.16.dw vr15 = vr15
  add.16.dw vr12 = vr12, vr15
  ld.16.b vr16 = (PRV, vr5, vr3)
  avg.16.b vr17 = vr10, vr13
  cmp.lt.16.dw f1 = vr12, %d
  (f1) sel.16.dw vr18 = vr16, vr17
  st.16.b (OUT, vr5, vr3) = vr18
  add.1.dw vr5 = vr5, 16
  add.1.dw vr6 = vr6, 1
  cmp.lt.1.dw f2 = vr6, %d
  br.any f2, AODD
  jmp ANEXT
AEVEN:
  mov.1.dw vr5 = vr0
  mov.1.dw vr6 = 0
ACOPY:
  ld.16.b vr10 = (CUR, vr5, vr3)
  st.16.b (OUT, vr5, vr3) = vr10
  add.1.dw vr5 = vr5, 16
  add.1.dw vr6 = vr6, 1
  cmp.lt.1.dw f2 = vr6, %d
  br.any f2, ACOPY
ANEXT:
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f0 = vr2, %d
  br.any f0, AROW
  end
|}
    motion_thresh (tile_w / 16) (tile_w / 16) tile_h

let unit_params _io u =
  let cols = w / tile_w in
  let y0 = u / cols * tile_h in
  let frame_last = (((y0 / h) + 1) * h) - 1 in
  [| u mod cols * tile_w; y0; frame_last |]

(* thresh at 0 *)
let cpool _io = Array.make 4 (Int32.of_int motion_thresh)

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  ignore io;
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  let cols = w / tile_w in
  Printf.sprintf
    {|; advanced de-interlace, units %d..%d
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  mov.d eax, esi
  sdiv eax, %d
  imul eax, %d            ; y0
  mov.d ecx, esi
  srem ecx, %d
  imul ecx, %d            ; x0
  mov.d edi, 0
rloop:
  cmp edi, %d
  jge rdone
  mov.d edx, eax
  add edx, edi            ; y
  mov.d ebx, edx
  and ebx, 1
  cmp ebx, 0
  je evenrow
  ; odd row offsets: ebx = ylo*pitch+x0, ebp = yhi*pitch+x0, edx = y*pitch+x0
  mov.d ebx, edx
  sdiv ebx, %d
  imul ebx, %d
  add ebx, %d             ; frame_last
  mov.d ebp, edx
  add ebp, 1
  cmp ebp, ebx
  jle clampdone
  mov.d ebp, ebx
clampdone:
  imul ebp, %d
  add ebp, ecx
  mov.d ebx, edx
  sub ebx, 1
  imul ebx, %d
  add ebx, ecx
  imul edx, %d
  add edx, ecx
  mov.d eax, 0
oddcol:
  cmp eax, %d
  jge oddcoldone
  movpk.b xmm0, [CUR + ebx + eax]   ; cur(ylo)
  movpk.b xmm1, [PRV + ebx + eax]
  movpk.b xmm2, [CUR + ebp + eax]   ; cur(yhi)
  movpk.b xmm3, [PRV + ebp + eax]
  movdqu xmm4, xmm0
  psubd xmm4, xmm1
  pabsd xmm4, xmm4
  movdqu xmm5, xmm2
  psubd xmm5, xmm3
  pabsd xmm5, xmm5
  paddd xmm4, xmm5                  ; motion metric
  movpk.b xmm1, [PRV + edx + eax]   ; weave candidate
  pavgd xmm0, xmm2                  ; bob candidate
  ; mask = thresh > m ? -1 : 0
  movdqu xmm5, [CPOOL]
  pcmpgtd xmm5, xmm4
  ; out = bob ^ ((bob ^ weave) & mask)
  pxor xmm1, xmm0
  pand xmm1, xmm5
  pxor xmm0, xmm1
  movpk.b [OUT + edx + eax], xmm0
  add eax, 4
  jmp oddcol
oddcoldone:
  mov.d eax, esi
  sdiv eax, %d
  imul eax, %d
  jmp nextrow
evenrow:
  imul edx, %d
  add edx, ecx
  mov.d ebx, 0
evencol:
  cmp ebx, %d
  jge nextrow
  movdqu xmm0, [CUR + edx + ebx]
  movdqu [OUT + edx + ebx], xmm0
  add ebx, 16
  jmp evencol
nextrow:
  add edi, 1
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi cols tile_h cols tile_w tile_h h h (h - 1) pitch pitch pitch
    tile_w cols tile_h pitch tile_w

let kernel : Kernel.t =
  {
    name = "Advanced De-interlacing";
    abbrev = "ADVDI";
    description =
      "Computationally intensive advanced de-interlacing filter with motion \
       detection";
    scales = [ Kernel.Small ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (fun _ -> 2_700);
    band_ordered = true;
  }
