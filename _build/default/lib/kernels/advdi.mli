(** Table 2 kernel: see the implementation header for the algorithm and
    the shred decomposition. *)

val kernel : Kernel.t
