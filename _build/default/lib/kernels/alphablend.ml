(* Alpha blending (Table 2): bi-linearly scale a 64x32 logo up to 720x480
   and blend it over the background with constant alpha. The exo-sequencer
   version uses the fixed-function texture sampler; the IA32 version must
   emulate bilinear filtering in software, pixel by pixel, with a stack
   frame for the interpolation temporaries — exactly the contrast the
   paper calls out for this kernel. *)

open Exochi_media

let w = 720
let h = 480
let ow = 64
let oh = 32
let tile_w = 16
let tile_h = 8
let alpha = 160
let du = ow lsl 16 / w
let dv = oh lsl 16 / h

let make_io ?frames prng _scale =
  ignore frames;
  let bg = Image.synthetic prng ~width:w ~height:h Image.Natural in
  let ovl = Image.synthetic prng ~width:ow ~height:oh (Image.Checker 4) in
  {
    Kernel.wl_desc = Printf.sprintf "blend %dx%d image onto %dx%d" ow oh w h;
    inputs = [ ("BG", bg); ("OVL", ovl) ];
    outputs = [ ("OUT", w, h) ];
    units = w / tile_w * (h / tile_h);
    meta = [ ("w", w); ("h", h) ];
  }

let clamp255 v = if v < 0 then 0 else if v > 255 then 255 else v
let clampi lo hi v = if v < lo then lo else if v > hi then hi else v

(* Bit-exact model of the fixed-function sampler (Gpu.sample_value). *)
let bilinear ovl ~u ~v =
  let xi = u asr 16 and yi = v asr 16 in
  let fx = (u asr 8) land 0xff and fy = (v asr 8) land 0xff in
  let texel x y =
    Image.get ovl ~x:(clampi 0 (ow - 1) x) ~y:(clampi 0 (oh - 1) y)
  in
  let t00 = texel xi yi
  and t10 = texel (xi + 1) yi
  and t01 = texel xi (yi + 1)
  and t11 = texel (xi + 1) (yi + 1) in
  let top = (t00 lsl 8) + ((t10 - t00) * fx) in
  let bot = (t01 lsl 8) + ((t11 - t01) * fx) in
  ((top lsl 8) + ((bot - top) * fy) + 32768) asr 16

let blend bg ov = clamp255 (((bg * (256 - alpha)) + (ov * alpha) + 128) asr 8)

let golden io =
  let bg = List.assoc "BG" io.Kernel.inputs in
  let ovl = List.assoc "OVL" io.Kernel.inputs in
  let out =
    Image.init ~width:w ~height:h (fun ~x ~y ->
        let ov = bilinear ovl ~u:(x * du) ~v:(y * dv) in
        blend (Image.get bg ~x ~y) ov)
  in
  [ ("OUT", out) ]

let x3k_asm _io =
  Printf.sprintf
    {|; alpha blend: 16x8 tile at (%%p0, %%p1); sampler does the scaling
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = %%p1
  bcast.16.dw vr4 = vr0
  add.16.dw vr4 = vr4, %%lane
  mul.16.dw vr5 = vr4, %d
  mov.1.dw vr2 = 0
BROW:
  add.1.dw vr3 = vr1, vr2
  mul.1.dw vr6 = vr3, %d
  bcast.16.dw vr7 = vr6
  sample.16.b vr10 = (OVL, vr5, vr7)
  ld.16.b vr11 = (BG, vr0, vr3)
  mul.16.dw vr11 = vr11, %d
  mac.16.dw vr11 = vr10, %d
  add.16.dw vr11 = vr11, 128
  shr.16.dw vr11 = vr11, 8
  sat.16.b vr11 = vr11
  st.16.b (OUT, vr0, vr3) = vr11
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f0 = vr2, %d
  br.any f0, BROW
  end
|}
    du dv (256 - alpha) alpha tile_h

let unit_params _io u =
  let cols = w / tile_w in
  [| u mod cols * tile_w; u / cols * tile_h |]

let cpool _io = [| 0l; 0l; 0l; 0l |]

(* Stack frame: 0 fy | 4 rowlo | 8 rowhi | 12 bgrow | 16 fx | 20 r
   | 24 top | 28 scratch *)
let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  ignore io;
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  let opitch = Surface.required_pitch ~width:ow ~bpp:1 ~tiling:Surface.Linear in
  let cols = w / tile_w in
  Printf.sprintf
    {|; alpha blend, units %d..%d (software bilinear, scalar)
  mov.d esi, %d
  sub esp, 32
uloop:
  cmp esi, %d
  jge alldone
  mov.d ecx, esi
  srem ecx, %d
  imul ecx, %d            ; x0
  mov.d edi, 0
  mov.d [esp + 20], edi   ; r = 0
rloop:
  mov.d edi, [esp + 20]
  cmp edi, %d
  jge rdone
  mov.d eax, esi
  sdiv eax, %d
  imul eax, %d
  add eax, edi            ; y
  mov.d edx, eax
  imul edx, %d
  add edx, ecx
  mov.d [esp + 12], edx   ; bg/out row offset (incl. x0)
  imul eax, %d            ; v = y*dv
  mov.d ebx, eax
  sar ebx, 16             ; yi
  sar eax, 8
  and eax, 255
  mov.d [esp + 0], eax    ; fy (8-bit fraction)
  mov.d edx, ebx
  add edx, 1
  cmp edx, %d
  jle ycl
  mov.d edx, %d
ycl:
  imul ebx, %d
  mov.d [esp + 4], ebx    ; rowlo
  imul edx, %d
  mov.d [esp + 8], edx    ; rowhi
  mov.d ebp, 0
xloop:
  cmp ebp, %d
  jge xdone
  mov.d eax, ecx
  add eax, ebp
  imul eax, %d            ; u
  mov.d ebx, eax
  sar ebx, 16             ; xi
  sar eax, 8
  and eax, 255
  mov.d [esp + 16], eax   ; fx (8-bit fraction)
  mov.d edi, ebx
  add edi, 1
  cmp edi, %d
  jle xcl
  mov.d edi, %d
xcl:
  ; top = (t00<<8) + (t10-t00)*fx
  mov.d edx, [esp + 4]
  mov.b eax, [OVL + edx + ebx]
  mov.d [esp + 28], eax
  mov.b eax, [OVL + edx + edi]
  sub eax, [esp + 28]
  imul eax, [esp + 16]
  mov.d edx, [esp + 28]
  shl edx, 8
  add eax, edx
  mov.d [esp + 24], eax
  ; bot = (t01<<8) + (t11-t01)*fx
  mov.d edx, [esp + 8]
  mov.b eax, [OVL + edx + ebx]
  mov.d [esp + 28], eax
  mov.b eax, [OVL + edx + edi]
  sub eax, [esp + 28]
  imul eax, [esp + 16]
  mov.d edx, [esp + 28]
  shl edx, 8
  add eax, edx
  ; ov = ((top<<8) + (bot-top)*fy + 32768) >> 16
  sub eax, [esp + 24]
  imul eax, [esp + 0]
  mov.d edx, [esp + 24]
  shl edx, 8
  add eax, edx
  add eax, 32768
  sar eax, 16
  ; blend with background
  mov.d edx, [esp + 12]
  mov.b edi, [BG + edx + ebp]
  imul edi, %d
  imul eax, %d
  add eax, edi
  add eax, 128
  sar eax, 8
  cmp eax, 0
  jge cpos
  mov.d eax, 0
cpos:
  cmp eax, 255
  jle chi
  mov.d eax, 255
chi:
  mov.b [OUT + edx + ebp], eax
  add ebp, 1
  jmp xloop
xdone:
  mov.d edi, [esp + 20]
  add edi, 1
  mov.d [esp + 20], edi
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  add esp, 32
  hlt
|}
    lo hi lo hi cols tile_w tile_h cols tile_h pitch dv (oh - 1) (oh - 1)
    opitch opitch tile_w du (ow - 1) (ow - 1) (256 - alpha) alpha

let kernel : Kernel.t =
  {
    name = "Alpha Blending";
    abbrev = "AlphaBlend";
    description =
      "Bi-linear scale 64x32 image up to 720x480 and blend with 720x480 image";
    scales = [ Kernel.Small ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (fun _ -> 2_700);
    band_ordered = true;
  }
