(* Bicubic scaling (Table 2): upscale 360x240 video to 720x480 with a
   Catmull-Rom half-pel filter ((-1, 9, 9, -1)/16 at odd phases, exact
   copy at even phases). Source frames carry a 2-pixel replicated border
   so the tap windows never leave the surface.

   The exo-sequencer version is 16-wide and gather-based, holding all
   intermediates in the large register file; the IA32 version is scalar —
   2007-era SSE has neither gathers nor a packed 32-bit multiply, which is
   why the paper reports its largest speedup (10.97X) on this kernel. *)

open Exochi_media

let sw = 360
let sh = 240
let dw = 720
let dh = 480
let margin = 2
let pw = sw + (2 * margin) (* padded frame width: 364 *)
let ph = sh + (2 * margin) (* padded frame height: 244 *)
let tile_w = 240
let tile_h = 16

let make_io ?(frames = 30) prng _scale =
  let src = Image.synthetic_video prng ~width:sw ~height:sh ~frames Image.Natural in
  (* pad each frame independently, then restack *)
  let padded =
    Image.init ~width:pw ~height:(ph * frames) (fun ~x ~y ->
        let f = y / ph and py = y mod ph in
        let sx = min (sw - 1) (max 0 (x - margin)) in
        let sy = min (sh - 1) (max 0 (py - margin)) in
        Image.get src ~x:sx ~y:((f * sh) + sy))
  in
  {
    Kernel.wl_desc = Printf.sprintf "Scale %d frames %dx%d to %dx%d" frames sw sh dw dh;
    inputs = [ ("IN", padded) ];
    outputs = [ ("OUT", dw, dh * frames) ];
    units = dw / tile_w * (dh / tile_h) * frames;
    meta = [ ("frames", frames) ];
  }

let clamp255 v = if v < 0 then 0 else if v > 255 then 255 else v

let weights = function 0 -> [| 0; 16; 0; 0 |] | _ -> [| -1; 9; 9; -1 |]

let golden io =
  let inp = List.assoc "IN" io.Kernel.inputs in
  let frames = Kernel.meta io "frames" in
  let out = Image.create ~width:dw ~height:(dh * frames) in
  for f = 0 to frames - 1 do
    for yy = 0 to dh - 1 do
      let sy = yy asr 1 and wy = weights (yy land 1) in
      for xx = 0 to dw - 1 do
        let sx = xx asr 1 and wx = weights (xx land 1) in
        let acc = ref 0 in
        for j = 0 to 3 do
          if wy.(j) <> 0 then begin
            for i = 0 to 3 do
              if wx.(i) <> 0 then
                acc :=
                  !acc
                  + (wy.(j) * wx.(i)
                    * Image.get inp
                        ~x:(sx - 1 + i + margin)
                        ~y:((f * ph) + sy - 1 + j + margin))
            done
          end
        done;
        Image.set out ~x:xx ~y:((f * dh) + yy) (clamp255 ((!acc + 128) asr 8))
      done
    done
  done;
  [ ("OUT", out) ]

(* Emit one horizontal-blend row: gathers the 4 taps of padded row index
   [row_reg] (scalar) into lanes addressed by sx lanes [vr5], blends by
   lane parity (flag f1 = even lanes) into [dst]. *)
let h_row ~row_reg ~dst =
  Printf.sprintf
    {|  mul.1.dw vr15 = %s, %d
  bcast.16.dw vr16 = vr15
  add.16.dw vr16 = vr16, vr5
  gather.16.b vr20 = (IN, vr16, -1)
  gather.16.b vr21 = (IN, vr16, 0)
  gather.16.b vr22 = (IN, vr16, 1)
  gather.16.b vr23 = (IN, vr16, 2)
  mul.16.dw vr25 = vr21, 16
  add.16.dw vr26 = vr21, vr22
  mul.16.dw vr26 = vr26, 9
  sub.16.dw vr26 = vr26, vr20
  sub.16.dw vr26 = vr26, vr23
  (f1) sel.16.dw %s = vr25, vr26
|}
    row_reg pw dst

let x3k_asm io =
  ignore io;
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    (Printf.sprintf
       {|; bicubic 2x upscale: %dx%d out tile at (%%p0, %%p1) of frame %%p2
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = %%p1
  mov.1.dw vr2 = %%p2
  mul.1.dw vr7 = vr2, %d      ; padded frame row base
  mul.1.dw vr18 = vr2, %d     ; output frame row base
  ; lane parity of x never changes across 16-aligned groups
  bcast.16.dw vr4 = vr0
  add.16.dw vr4 = vr4, %%lane
  and.16.dw vr6 = vr4, 1
  cmp.eq.16.dw f1 = vr6, 0
  mov.1.dw vr3 = 0            ; r
XROW:
  add.1.dw vr8 = vr1, vr3     ; Y within frame
  add.1.dw vr9 = vr18, vr8    ; Y global in OUT
  shr.1.dw vr11 = vr8, 1      ; sy
  and.1.dw vr12 = vr8, 1      ; fy
  add.1.dw vr13 = vr7, vr11
  add.1.dw vr13 = vr13, %d    ; padded centre row
  mov.1.dw vr17 = vr0         ; group x (scalar)
  bcast.16.dw vr4 = vr0
  add.16.dw vr4 = vr4, %%lane
  mov.1.dw vr14 = 0           ; g
GLOOP:
  shr.16.dw vr5 = vr4, 1
  add.16.dw vr5 = vr5, %d     ; sx lanes in padded coords
  cmp.eq.1.dw f2 = vr12, 0
  br.any f2, YEVEN
|}
       tile_w tile_h ph dh margin margin);
  (* fy = 1: four tap rows *)
  for j = 0 to 3 do
    Buffer.add_string buf
      (Printf.sprintf {|  add.1.dw vr19 = vr13, %d
|} (j - 1));
    Buffer.add_string buf (h_row ~row_reg:"vr19" ~dst:(Printf.sprintf "vr3%d" j))
  done;
  Buffer.add_string buf
    {|  add.16.dw vr40 = vr31, vr32
  mul.16.dw vr40 = vr40, 9
  sub.16.dw vr40 = vr40, vr30
  sub.16.dw vr40 = vr40, vr33
  jmp YOUT
YEVEN:
|};
  Buffer.add_string buf (h_row ~row_reg:"vr13" ~dst:"vr40");
  Buffer.add_string buf
    {|  mul.16.dw vr40 = vr40, 16
YOUT:
  add.16.dw vr40 = vr40, 128
  sar.16.dw vr40 = vr40, 8
  sat.16.b vr40 = vr40
  st.16.b (OUT, vr17, vr9) = vr40
  add.1.dw vr17 = vr17, 16
  add.16.dw vr4 = vr4, 16
  add.1.dw vr14 = vr14, 1
|};
  Buffer.add_string buf
    (Printf.sprintf {|  cmp.lt.1.dw f0 = vr14, %d
  br.any f0, GLOOP
  add.1.dw vr3 = vr3, 1
  cmp.lt.1.dw f0 = vr3, %d
  br.any f0, XROW
  end
|}
       (tile_w / 16) tile_h);
  Buffer.contents buf

let unit_params _io u =
  let cols = dw / tile_w in
  let bands = dh / tile_h in
  let per_frame = cols * bands in
  let f = u / per_frame in
  let r = u mod per_frame in
  [| r mod cols * tile_w; r / cols * tile_h; f |]

let cpool _io = [| 0l; 0l; 0l; 0l |]

(* Scalar IA32 version. Fixed stack frame (esp does not move inside the
   loops; the horizontal pass pushes/pops ecx symmetrically):
   0 fy | 4 centre padded row | 8 out row bytes | 12 r | 16 h-acc | 20 h1
   | 28 padded frame row base | 32 out frame row base | 36 y0. *)
let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  ignore io;
  let ppitch = Surface.required_pitch ~width:pw ~bpp:1 ~tiling:Surface.Linear in
  let opitch = Surface.required_pitch ~width:dw ~bpp:1 ~tiling:Surface.Linear in
  let cols = dw / tile_w in
  let bands = dh / tile_h in
  let per_frame = cols * bands in
  (* Horizontal tap pass: row byte base in ebx, tap column in edi, output
     x parity in edx; result (16x-scaled for even) in eax. *)
  let hpass_l prefix =
    Printf.sprintf
      {|  cmp edx, 0
  jne %shodd
  mov.b eax, [IN + ebx + edi]
  shl eax, 4
  jmp %shdone
%shodd:
  mov.b eax, [IN + ebx + edi]
  push ecx
  mov.b ecx, [IN + ebx + edi + 1]
  add eax, ecx
  imul eax, 9
  mov.b ecx, [IN + ebx + edi - 1]
  sub eax, ecx
  mov.b ecx, [IN + ebx + edi + 2]
  sub eax, ecx
  pop ecx
%shdone:
|}
      prefix prefix prefix prefix
  in
  Printf.sprintf
    {|; bicubic 2x upscale, units %d..%d (scalar)
  mov.d esi, %d
  sub esp, 48
uloop:
  cmp esi, %d
  jge alldone
  ; decode unit: frame, band, column
  mov.d eax, esi
  sdiv eax, %d            ; frame
  mov.d ebx, esi
  srem ebx, %d            ; index within frame
  mov.d ecx, ebx
  srem ecx, %d
  imul ecx, %d            ; x0
  sdiv ebx, %d
  imul ebx, %d            ; y0 within frame
  mov.d [esp + 36], ebx
  mov.d edx, eax
  imul edx, %d
  mov.d [esp + 28], edx   ; padded frame row base
  imul eax, %d
  mov.d [esp + 32], eax   ; out frame row base
  mov.d edi, 0
  mov.d [esp + 12], edi
rloop:
  mov.d edi, [esp + 12]
  cmp edi, %d
  jge rdone
  mov.d eax, [esp + 36]
  add eax, edi            ; Y within frame
  mov.d edx, eax
  and edx, 1
  mov.d [esp + 0], edx    ; fy
  sar eax, 1
  add eax, [esp + 28]
  add eax, %d
  mov.d [esp + 4], eax    ; centre padded row index
  mov.d eax, [esp + 32]
  add eax, [esp + 36]
  add eax, edi
  imul eax, %d
  mov.d [esp + 8], eax    ; out row byte offset
  mov.d ebp, 0
xloop:
  cmp ebp, %d
  jge xdone
  mov.d eax, ecx
  add eax, ebp
  mov.d edx, eax
  and edx, 1              ; fx
  sar eax, 1
  add eax, %d
  mov.d edi, eax          ; tap column
  mov.d eax, [esp + 0]
  cmp eax, 0
  jne fyodd
  mov.d ebx, [esp + 4]
  imul ebx, %d
%s  imul eax, 16
  jmp vdone
fyodd:
  mov.d ebx, [esp + 4]
  sub ebx, 1
  imul ebx, %d
%s  mov.d [esp + 16], eax   ; h0
  mov.d ebx, [esp + 4]
  imul ebx, %d
%s  mov.d [esp + 20], eax   ; h1
  mov.d ebx, [esp + 4]
  add ebx, 1
  imul ebx, %d
%s  add eax, [esp + 20]
  imul eax, 9
  sub eax, [esp + 16]
  mov.d [esp + 16], eax   ; 9(h1+h2) - h0
  mov.d ebx, [esp + 4]
  add ebx, 2
  imul ebx, %d
%s  mov.d ebx, [esp + 16]
  sub ebx, eax
  mov.d eax, ebx
vdone:
  add eax, 128
  sar eax, 8
  cmp eax, 0
  jge vpos
  mov.d eax, 0
vpos:
  cmp eax, 255
  jle vhi
  mov.d eax, 255
vhi:
  mov.d ebx, [esp + 8]
  add ebx, ecx
  add ebx, ebp
  mov.b [OUT + ebx], eax
  add ebp, 1
  jmp xloop
xdone:
  mov.d edi, [esp + 12]
  add edi, 1
  mov.d [esp + 12], edi
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  add esp, 48
  hlt
|}
    lo hi lo hi per_frame per_frame cols tile_w cols tile_h ph dh tile_h margin
    opitch tile_w margin ppitch (hpass_l "a") ppitch (hpass_l "b") ppitch
    (hpass_l "c") ppitch (hpass_l "d") ppitch (hpass_l "e")

let kernel : Kernel.t =
  {
    name = "Bicubic Scaling";
    abbrev = "Bicubic";
    description = "Scale video using bicubic filter";
    scales = [ Kernel.Small ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (fun _ -> 2_700);
    band_ordered = true;
  }
