(* De-interlace BOB Avg (Table 2): even scanlines are kept from the field;
   odd (missing) scanlines are the rounding average of the lines above and
   below within the same frame. Bandwidth-bound — the least computational
   kernel in the suite. One shred = a 240x16 tile of stacked video. *)

open Exochi_media

let w = 720
let h = 480
let tile_w = 240
let tile_h = 16

let make_io ?(frames = 30) prng _scale =
  let v = Image.synthetic_video prng ~width:w ~height:h ~frames Image.Natural in
  let hs = h * frames in
  {
    Kernel.wl_desc = Printf.sprintf "%d frames %dx%d" frames w h;
    inputs = [ ("IN", v) ];
    outputs = [ ("OUT", w, hs) ];
    units = w / tile_w * (hs / tile_h);
    meta = [ ("w", w); ("hs", hs); ("frames", frames) ];
  }

let golden io =
  let v = List.assoc "IN" io.Kernel.inputs in
  let hs = Kernel.meta io "hs" in
  let out =
    Image.init ~width:w ~height:hs (fun ~x ~y ->
        if y land 1 = 0 then Image.get v ~x ~y
        else begin
          let frame_last = ((y / h) + 1) * h-1 in
          let ylo = y - 1 and yhi = min (y + 1) frame_last in
          (Image.get v ~x ~y:ylo + Image.get v ~x ~y:yhi + 1) lsr 1
        end)
  in
  [ ("OUT", out) ]

let x3k_asm _io =
  Printf.sprintf
    {|; BOB de-interlace: 240x16 tile at (%%p0, %%p1); %%p2 = frame's last row
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = %%p1
  mov.1.dw vr9 = %%p2
  mov.1.dw vr2 = 0
BROW:
  add.1.dw vr3 = vr1, vr2
  and.1.dw vr4 = vr3, 1
  cmp.eq.1.dw f0 = vr4, 0
  br.any f0, BEVEN
  sub.1.dw vr7 = vr3, 1
  add.1.dw vr8 = vr3, 1
  min.1.dw vr8 = vr8, vr9
  mov.1.dw vr5 = vr0
  mov.1.dw vr6 = 0
BODD:
  ld.16.b vr10 = (IN, vr5, vr7)
  ld.16.b vr11 = (IN, vr5, vr8)
  avg.16.b vr10 = vr10, vr11
  st.16.b (OUT, vr5, vr3) = vr10
  add.1.dw vr5 = vr5, 16
  add.1.dw vr6 = vr6, 1
  cmp.lt.1.dw f1 = vr6, %d
  br.any f1, BODD
  jmp BNEXT
BEVEN:
  mov.1.dw vr5 = vr0
  mov.1.dw vr6 = 0
BCOPY:
  ld.16.b vr10 = (IN, vr5, vr3)
  st.16.b (OUT, vr5, vr3) = vr10
  add.1.dw vr5 = vr5, 16
  add.1.dw vr6 = vr6, 1
  cmp.lt.1.dw f1 = vr6, %d
  br.any f1, BCOPY
BNEXT:
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f0 = vr2, %d
  br.any f0, BROW
  end
|}
    (tile_w / 16) (tile_w / 16) tile_h

let unit_params _io u =
  let cols = w / tile_w in
  let y0 = u / cols * tile_h in
  let frame_last = (((y0 / h) + 1) * h) - 1 in
  [| u mod cols * tile_w; y0; frame_last |]

let cpool _io = [| 0l; 0l; 0l; 0l |]

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  ignore io;
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  let cols = w / tile_w in
  Printf.sprintf
    {|; BOB de-interlace, units %d..%d
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  mov.d eax, esi
  sdiv eax, %d
  imul eax, %d            ; y0
  mov.d ecx, esi
  srem ecx, %d
  imul ecx, %d            ; x0
  mov.d edi, 0
rloop:
  cmp edi, %d
  jge rdone
  mov.d edx, eax
  add edx, edi            ; y
  mov.d ebx, edx
  and ebx, 1
  cmp ebx, 0
  je evenrow
  ; odd row: average y-1 and min(y+1, frame_last)
  mov.d ebx, edx
  sdiv ebx, %d            ; frame index
  imul ebx, %d
  add ebx, %d             ; frame_last
  mov.d ebp, edx
  add ebp, 1
  cmp ebp, ebx
  jle nhclamp
  mov.d ebp, ebx
nhclamp:
  imul ebp, %d            ; yhi * pitch
  add ebp, ecx
  mov.d ebx, edx
  sub ebx, 1
  imul ebx, %d            ; ylo * pitch
  add ebx, ecx
  imul edx, %d            ; y * pitch
  add edx, ecx
  ; 240 px, 4 at a time; reuse esi? no -- use a scratch loop on stack-free reg:
  mov.d eax, 0
oddcol:
  cmp eax, %d
  jge oddcoldone
  movdqu xmm0, [IN + ebx + eax]
  movdqu xmm1, [IN + ebp + eax]
  pavgb xmm0, xmm1
  movntdq [OUT + edx + eax], xmm0
  add eax, 16
  jmp oddcol
oddcoldone:
  ; recompute eax = y0 (clobbered)
  mov.d eax, esi
  sdiv eax, %d
  imul eax, %d
  jmp nextrow
evenrow:
  imul edx, %d            ; y * pitch
  add edx, ecx
  mov.d ebx, 0
evencol:
  cmp ebx, %d
  jge nextrow
  movdqu xmm0, [IN + edx + ebx]
  movntdq [OUT + edx + ebx], xmm0
  add ebx, 16
  jmp evencol
nextrow:
  add edi, 1
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi cols tile_h cols tile_w tile_h h h (h - 1) pitch pitch pitch
    tile_w cols tile_h pitch tile_w

let kernel : Kernel.t =
  {
    name = "De-interlace BOB Avg";
    abbrev = "BOB";
    description =
      "De-interlace video by averaging nearby pixels within a field to \
       compute missing scanlines";
    scales = [ Kernel.Small ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (fun _ -> 2_700);
    band_ordered = true;
  }
