(* Film Mode Detection (Table 2): detect video cadence (3:2 pulldown) so
   inverse telecine can be applied. Each shred compares one band of rows
   between frame t and frame t+2, producing per-field sums of absolute
   differences; the tiny final cadence decision runs on the host from the
   metric table (provided here as [detect_cadence]).

   60 frames -> 58 (t, t+2) pairs x 22 bands = 1,276 shreds, matching
   Table 2 exactly. *)

open Exochi_media

let w = 720
let h = 480
let bands = 22
let band_rows = (h + bands - 1) / bands (* 22 rows; the last band has 18 *)

let make_io ?(frames = 60) prng _scale =
  if frames < 3 then invalid_arg "FMD needs at least 3 frames";
  let v = Image.synthetic_video prng ~width:w ~height:h ~frames Image.Natural in
  let pairs = frames - 2 in
  let units = pairs * bands in
  {
    Kernel.wl_desc = Printf.sprintf "%d frames %dx%d" frames w h;
    inputs = [ ("F", v) ];
    (* metrics: 2 x u32 per shred, stored as a 2-wide dword surface *)
    outputs = [ ("MET", 2, units) ];
    units;
    meta =
      [ ("w", w); ("h", h); ("frames", frames); ("pairs", pairs); ("bpp:MET", 4) ];
  }

let band_range band =
  let lo = band * band_rows in
  let hi = min h (lo + band_rows) in
  (lo, hi)

let golden io =
  let v = List.assoc "F" io.Kernel.inputs in
  let out = Image.create ~width:2 ~height:io.Kernel.units in
  for u = 0 to io.Kernel.units - 1 do
    let t = u / bands and band = u mod bands in
    let lo, hi = band_range band in
    let top = ref 0 and bot = ref 0 in
    for y = lo to hi - 1 do
      let acc = if y land 1 = 0 then top else bot in
      for x = 0 to w - 1 do
        acc :=
          !acc
          + abs
              (Image.get v ~x ~y:(((t + 2) * h) + y)
              - Image.get v ~x ~y:((t * h) + y))
      done
    done;
    Image.set out ~x:0 ~y:u !top;
    Image.set out ~x:1 ~y:u !bot
  done;
  [ ("MET", out) ]

(* Host-side cadence decision from the metric table: in 3:2 pulldown, every
   5th frame pair repeats a field, so the top-field SAD sequence shows a
   periodic minimum. Returns the detected period phase, or None. *)
let detect_cadence metrics ~pairs =
  let field_sad t =
    let s = ref 0 in
    for band = 0 to bands - 1 do
      s := !s + Image.get metrics ~x:0 ~y:((t * bands) + band)
    done;
    !s
  in
  let sads = Array.init pairs field_sad in
  if pairs < 10 then None
  else begin
    (* score each phase of a period-5 cadence *)
    let best = ref (-1) and best_score = ref 0.0 in
    for phase = 0 to 4 do
      let inside = ref 0.0 and outside = ref 0.0 in
      let n_in = ref 0 and n_out = ref 0 in
      Array.iteri
        (fun t s ->
          if t mod 5 = phase then begin
            inside := !inside +. float_of_int s;
            incr n_in
          end
          else begin
            outside := !outside +. float_of_int s;
            incr n_out
          end)
        sads;
      if !n_in > 0 && !n_out > 0 then begin
        let mean_in = !inside /. float_of_int !n_in in
        let mean_out = !outside /. float_of_int !n_out in
        let score = mean_out /. Float.max 1.0 mean_in in
        if score > !best_score then begin
          best_score := score;
          best := phase
        end
      end
    done;
    if !best_score > 2.0 then Some !best else None
  end

let x3k_asm _io =
  Printf.sprintf
    {|; film mode detection: band SADs; %%p0 = row lo, %%p1 = row count,
; %%p2 = frame t row base, %%p3 = frame t+2 row base, %%p4 = unit id
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = 0          ; r
  mov.1.dw vr24 = 0         ; top accumulator
  mov.1.dw vr25 = 0         ; bottom accumulator
MROW:
  add.1.dw vr3 = vr0, vr1   ; y within frame
  add.1.dw vr4 = vr3, %%p2   ; y in frame t
  add.1.dw vr5 = vr3, %%p3   ; y in frame t+2
  and.1.dw vr6 = vr3, 1
  mov.1.dw vr7 = 0          ; row SAD
  mov.1.dw vr8 = 0          ; x
  mov.1.dw vr9 = 0          ; group counter
MCOL:
  ld.16.b vr10 = (F, vr8, vr5)
  ld.16.b vr11 = (F, vr8, vr4)
  sad.16.b vr12 = vr10, vr11
  add.1.dw vr7 = vr7, vr12
  add.1.dw vr8 = vr8, 16
  add.1.dw vr9 = vr9, 1
  cmp.lt.1.dw f0 = vr9, %d
  br.any f0, MCOL
  cmp.eq.1.dw f1 = vr6, 0
  (f1) add.1.dw vr24 = vr24, vr7
  (!f1) add.1.dw vr25 = vr25, vr7
  add.1.dw vr1 = vr1, 1
  cmp.lt.1.dw f0 = vr1, %%p1
  br.any f0, MROW
  ; store metrics at element indices 2u and 2u+1
  mul.1.dw vr20 = %%p4, 2
  st.1.dw (MET, vr20, 0) = vr24
  st.1.dw (MET, vr20, 1) = vr25
  end
|}
    (w / 16)

let unit_params io u =
  let h' = Kernel.meta io "h" in
  let t = u / bands and band = u mod bands in
  let lo, hi = band_range band in
  [| lo; hi - lo; t * h'; (t + 2) * h'; u |]

let cpool _io = [| 0l; 0l; 0l; 0l |]

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  let h' = Kernel.meta io "h" in
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  let met_pitch = Surface.required_pitch ~width:2 ~bpp:4 ~tiling:Surface.Linear in
  Printf.sprintf
    {|; film mode detection, units %d..%d
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  ; t = u / bands, band = u mod bands
  mov.d eax, esi
  sdiv eax, %d            ; t
  mov.d ecx, esi
  srem ecx, %d            ; band
  imul ecx, %d            ; row lo
  ; edi = row counter within band, ebx = top acc, ebp = bottom acc
  mov.d ebx, 0
  mov.d ebp, 0
  mov.d edi, ecx
bandrow:
  ; stop at min(h, lo+band_rows)
  mov.d edx, ecx
  add edx, %d
  cmp edx, %d
  jle bounded
  mov.d edx, %d
bounded:
  cmp edi, edx
  jge banddone
  ; addresses: frame t row = (t*h + y)*pitch ; t+2 = ((t+2)*h + y)*pitch
  mov.d edx, eax
  imul edx, %d
  add edx, edi
  imul edx, %d            ; frame t row offset
  push ebp
  mov.d ebp, eax
  add ebp, 2
  imul ebp, %d
  add ebp, edi
  imul ebp, %d            ; frame t+2 row offset
  ; row SAD into a scratch: reuse stack slot? accumulate into xmm5 lane0
  pxor xmm5, xmm5
  push ecx
  mov.d ecx, 0
sadcol:
  cmp ecx, %d
  jge saddone
  movpk.b xmm0, [F + ebp + ecx]
  movpk.b xmm1, [F + edx + ecx]
  psadd xmm0, xmm1
  paddd xmm5, xmm0
  add ecx, 4
  jmp sadcol
saddone:
  pop ecx
  pop ebp
  ; add row SAD to the right field accumulator
  movd edx, xmm5
  mov.d eax, edi
  and eax, 1
  cmp eax, 0
  jne oddacc
  add ebx, edx
  jmp accdone
oddacc:
  add ebp, edx
accdone:
  ; restore eax = t
  mov.d eax, esi
  sdiv eax, %d
  add edi, 1
  jmp bandrow
banddone:
  ; store metrics row u: [top, bottom]
  mov.d edx, esi
  imul edx, %d
  mov.d [MET + edx], ebx
  mov.d [MET + edx + 4], ebp
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi bands bands band_rows band_rows h' h' h' pitch h' pitch w
    bands met_pitch

let kernel : Kernel.t =
  {
    name = "Film Mode Detection";
    abbrev = "FMD";
    description = "Detect video cadence so inverse telecine can be applied";
    scales = [ Kernel.Small ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (fun _ -> 1_276);
    band_ordered = false;
  }
