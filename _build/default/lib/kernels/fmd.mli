(** Table 2 kernel: film mode detection. The shreds produce per-band
    field SAD metrics; [detect_cadence] is the host-side decision the
    paper's "inverse telecine can be applied" step consumes. *)

val kernel : Kernel.t

(** [detect_cadence metrics ~pairs] looks for a period-5 (3:2 pulldown)
    pattern in the top-field SAD sequence; returns the phase if one
    stands out. *)
val detect_cadence : Exochi_media.Image.t -> pairs:int -> int option

(** Number of row bands per frame pair (Table 2's 1,276 = 58 pairs x 22
    bands at 60 frames). *)
val bands : int
