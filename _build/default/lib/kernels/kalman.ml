(* Kalman video noise-reduction (Table 2): a temporal recursive filter.
   out_f = prev + ((in_f - prev) * alpha) >> 8, where prev is the filtered
   previous frame and alpha snaps to 256 (pass-through) when the temporal
   difference exceeds a motion threshold, else 64 (strong smoothing).

   One shred owns an 8x4 pixel block for the *entire* sequence, keeping
   the filter state in vector registers across frames — the decomposition
   that gives Table 2's 4,096 / 65,536 shreds and exercises the X3000's
   large register file. *)

open Exochi_media

let block_w = 8
let block_h = 4
let thresh = 24
let alpha_smooth = 64

let dims = function
  | Kernel.Small -> (512, 256)
  | Kernel.Large -> (2048, 1024)

let make_io ?(frames = 30) prng scale =
  let w, h = dims scale in
  let v = Image.synthetic_video prng ~width:w ~height:h ~frames Image.Noise in
  {
    Kernel.wl_desc = Printf.sprintf "%d frames %dx%d" frames w h;
    inputs = [ ("IN", v) ];
    outputs = [ ("OUT", w, h * frames) ];
    units = w / block_w * (h / block_h);
    meta = [ ("w", w); ("h", h); ("frames", frames) ];
  }

let clamp255 v = if v < 0 then 0 else if v > 255 then 255 else v

let golden io =
  let v = List.assoc "IN" io.Kernel.inputs in
  let w = Kernel.meta io "w"
  and h = Kernel.meta io "h"
  and frames = Kernel.meta io "frames" in
  let out = Image.create ~width:w ~height:(h * frames) in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let prev = ref (Image.get v ~x ~y) in
      Image.set out ~x ~y !prev;
      for f = 1 to frames - 1 do
        let inp = Image.get v ~x ~y:((f * h) + y) in
        let d = inp - !prev in
        let alpha = if abs d > thresh then 256 else alpha_smooth in
        let nv = clamp255 (!prev + ((d * alpha) asr 8)) in
        Image.set out ~x ~y:((f * h) + y) nv;
        prev := nv
      done
    done
  done;
  [ ("OUT", out) ]

let x3k_asm io =
  let frames = Kernel.meta io "frames" and h = Kernel.meta io "h" in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    {|; Kalman temporal filter: 8x4 block at (%p0, %p1), state in vr20..vr23
  mov.1.dw vr0 = %p0
  mov.1.dw vr1 = %p1
|};
  (* frame 0: copy and capture state *)
  for r = 0 to block_h - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         {|  add.1.dw vr3 = vr1, %d
  ld.8.b vr2%d = (IN, vr0, vr3)
  st.8.b (OUT, vr0, vr3) = vr2%d
|}
         r r r)
  done;
  Buffer.add_string buf
    (Printf.sprintf {|  mov.1.dw vr4 = 1
KFRAME:
  cmp.ge.1.dw f0 = vr4, %d
  br.any f0, KDONE
  mul.1.dw vr5 = vr4, %d
  add.1.dw vr5 = vr5, vr1
|} frames h);
  for r = 0 to block_h - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         {|  add.1.dw vr6 = vr5, %d
  ld.8.b vr10 = (IN, vr0, vr6)
  sub.8.dw vr11 = vr10, vr2%d
  abs.8.dw vr12 = vr11
  cmp.gt.8.dw f1 = vr12, %d
  mov.8.dw vr13 = %d
  (f1) mov.8.dw vr13 = 256
  mul.8.dw vr11 = vr11, vr13
  sar.8.dw vr11 = vr11, 8
  add.8.dw vr2%d = vr2%d, vr11
  sat.8.b vr2%d = vr2%d
  st.8.b (OUT, vr0, vr6) = vr2%d
|}
         r r thresh alpha_smooth r r r r r)
  done;
  Buffer.add_string buf {|  add.1.dw vr4 = vr4, 1
  jmp KFRAME
KDONE:
  end
|};
  Buffer.contents buf

let unit_params io u =
  let bw = Kernel.meta io "w" / block_w in
  [| u mod bw * block_w; u / bw * block_h |]

let cpool _io =
  let quad v = [ v; v; v; v ] in
  (* 0:thresh 16:alpha_smooth 32:256 *)
  List.concat_map quad [ thresh; alpha_smooth; 256 ]
  |> List.map Int32.of_int |> Array.of_list

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  let w = Kernel.meta io "w"
  and h = Kernel.meta io "h"
  and frames = Kernel.meta io "frames" in
  let bw = w / block_w in
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  (* frames innermost, the filter state held in xmm7 across the whole
     sequence -- the register-resident recurrence a tuned SSE version
     would use *)
  Printf.sprintf
    {|; Kalman temporal filter, units %d..%d (state in xmm7; constants
; hoisted: xmm4 = threshold, xmm5 = 64, xmm6 = 64^256)
  movdqu xmm4, [CPOOL]
  movdqu xmm5, [CPOOL + 16]
  movdqu xmm6, [CPOOL + 16]
  pxor xmm6, [CPOOL + 32]
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  mov.d eax, esi
  sdiv eax, %d
  imul eax, %d            ; y0
  mov.d ecx, esi
  srem ecx, %d
  imul ecx, %d            ; x0
  mov.d edi, 0            ; r
rloop:
  cmp edi, %d
  jge rdone
  mov.d ebp, 0            ; group offset (0, 4)
gloop:
  cmp ebp, 8
  jge gdone
  ; edx = byte offset of (y0+r, x0+group) in frame 0
  mov.d edx, eax
  add edx, edi
  imul edx, %d
  add edx, ecx
  add edx, ebp
  ; frame 0: state = input, stored as-is
  movpk.b xmm7, [IN + edx]
  movpk.b [OUT + edx], xmm7
  mov.d ebx, 1            ; frame counter
floop:
  cmp ebx, %d
  jge fdone
  add edx, %d             ; advance one frame (h*pitch bytes)
  movpk.b xmm0, [IN + edx]
  movdqu xmm2, xmm0
  psubd xmm2, xmm7        ; d
  movdqu xmm3, xmm2
  pabsd xmm3, xmm3
  pcmpgtd xmm3, xmm4      ; mask: |d| > thresh
  ; alpha = mask ? 256 : 64 = 64 ^ ((64^256)&mask)
  pand xmm3, xmm6
  pxor xmm3, xmm5
  pmulld xmm2, xmm3
  psrad xmm2, 8
  paddd xmm7, xmm2
  packus xmm7, xmm7       ; clamp: the stored (and carried) state
  movpk.b [OUT + edx], xmm7
  add ebx, 1
  jmp floop
fdone:
  ; rewind edx is unnecessary: recomputed per group
  add ebp, 4
  jmp gloop
gdone:
  add edi, 1
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi bw block_h bw block_w block_h pitch frames (h * pitch)

let kernel : Kernel.t =
  {
    name = "Kalman";
    abbrev = "Kalman";
    description = "Video noise reduction filter";
    scales = [ Kernel.Small; Kernel.Large ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (function Kernel.Small -> 4_096 | Kernel.Large -> 65_536);
    band_ordered = false;
  }
