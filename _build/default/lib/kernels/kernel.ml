type scale = Small | Large

type io = {
  wl_desc : string;
  inputs : (string * Exochi_media.Image.t) list;
  outputs : (string * int * int) list;
  units : int;
  meta : (string * int) list;
}

let meta io key =
  match List.assoc_opt key io.meta with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Kernel.meta: no key %S" key)

type t = {
  name : string;
  abbrev : string;
  description : string;
  scales : scale list;
  make_io : ?frames:int -> Exochi_util.Prng.t -> scale -> io;
  golden : io -> (string * Exochi_media.Image.t) list;
  x3k_asm : io -> string;
  unit_params : io -> int -> int array;
  via32_asm : io -> lo:int -> hi:int -> string;
  cpool : io -> int32 array;
  table2_shreds : scale -> int;
  band_ordered : bool;
}
