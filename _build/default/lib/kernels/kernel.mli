(** Common interface for the Table 2 media kernels.

    Every kernel provides a golden OCaml reference, an X3K (accelerator)
    implementation as inline-assembly text, and a VIA32 (CPU/SSE-class)
    implementation, plus the shred decomposition the paper reports. Work
    is expressed in {e units} — one unit is one shred's worth (a pixel
    block, a band, a frame tile, per kernel) — so the cooperative
    experiments (Figure 10) can split the same unit space between the
    IA32 sequencer and the exo-sequencers. *)

type scale = Small | Large

(** A concrete workload instance. *)
type io = {
  wl_desc : string; (* Table 2 "data size" text *)
  inputs : (string * Exochi_media.Image.t) list; (* surface name -> pixels *)
  outputs : (string * int * int) list; (* name, width, height *)
  units : int; (* total shreds at 100% GPU *)
  meta : (string * int) list; (* kernel-specific dimensions *)
}

val meta : io -> string -> int

type t = {
  name : string;
  abbrev : string;
  description : string; (* Table 2 description *)
  scales : scale list;
  make_io : ?frames:int -> Exochi_util.Prng.t -> scale -> io;
      (** [frames] overrides the video length for quick benchmark runs
          (video kernels only). *)
  golden : io -> (string * Exochi_media.Image.t) list;
  x3k_asm : io -> string; (* accelerator program; one shred = one unit *)
  unit_params : io -> int -> int array; (* unit id -> %p0..%p7 *)
  via32_asm : io -> lo:int -> hi:int -> string;
      (** CPU program processing units [lo, hi); references surfaces by
          name and the constant pool as symbol CPOOL. *)
  cpool : io -> int32 array; (* constant-pool dwords for the CPU code *)
  table2_shreds : scale -> int; (* shred count the paper reports *)
  band_ordered : bool;
      (* shred i only reads input bytes near fraction i/units of each
         input surface — the precondition for interleaved (chunked)
         cache flushing in non-coherent mode. Temporal kernels that read
         far-apart frames (Kalman, FMD) are not band-ordered and must be
         flushed up-front. *)
}
