(* Linear filter (Table 2): each output pixel is the average of the input
   pixel and its eight neighbours — a 3x3 box blur. Inputs carry a 1-pixel
   replicated border so the inner loops have no edge cases; division by 9
   is the exact fixed-point multiply (x * 7282 + 32768) >> 16 on both
   targets. One shred processes an 8x6 pixel block. *)

open Exochi_media

let block_w = 8
let block_h = 6

let dims = function
  | Kernel.Small -> (640, 480)
  | Kernel.Large -> (2000, 2004)
(* paper says 2000x2000; 2004 rows align the 8x6 block grid and give
   exactly the 83,500 shreds Table 2 reports *)

let make_io ?frames prng scale =
  ignore frames;
  let w, h = dims scale in
  let src = Image.synthetic prng ~width:w ~height:h Image.Natural in
  let padded = Image.pad src ~margin:1 in
  {
    Kernel.wl_desc = Printf.sprintf "%dx%d image" w h;
    inputs = [ ("IN", padded) ];
    outputs = [ ("OUT", w, h) ];
    units = w / block_w * (h / block_h);
    meta = [ ("w", w); ("h", h); ("bw", w / block_w); ("bh", h / block_h) ];
  }

let golden io =
  let padded = List.assoc "IN" io.Kernel.inputs in
  let w = Kernel.meta io "w" and h = Kernel.meta io "h" in
  let out =
    Image.init ~width:w ~height:h (fun ~x ~y ->
        let sum = ref 0 in
        for dy = 0 to 2 do
          for dx = 0 to 2 do
            sum := !sum + Image.get padded ~x:(x + dx) ~y:(y + dy)
          done
        done;
        ((!sum * 7282) + 32768) lsr 16)
  in
  [ ("OUT", out) ]

let x3k_asm _io =
  {|; linear filter: 8x6 block at (%p0, %p1)
  mul.1.dw vr0 = %p0, 8        ; x0 (window-left column, padded coords)
  mul.1.dw vr1 = %p1, 6        ; y0
  mov.1.dw vr2 = 0             ; row counter
ROW:
  add.1.dw vr3 = vr1, vr2      ; top window row / output row
  add.1.dw vr4 = vr3, 1
  add.1.dw vr5 = vr3, 2
  add.1.dw vr6 = vr0, 1
  add.1.dw vr7 = vr0, 2
  ld.8.b vr10 = (IN, vr0, vr3)
  ld.8.b vr11 = (IN, vr6, vr3)
  ld.8.b vr12 = (IN, vr7, vr3)
  ld.8.b vr13 = (IN, vr0, vr4)
  ld.8.b vr14 = (IN, vr6, vr4)
  ld.8.b vr15 = (IN, vr7, vr4)
  ld.8.b vr16 = (IN, vr0, vr5)
  ld.8.b vr17 = (IN, vr6, vr5)
  ld.8.b vr18 = (IN, vr7, vr5)
  add.8.dw vr20 = vr10, vr11
  add.8.dw vr20 = vr20, vr12
  add.8.dw vr20 = vr20, vr13
  add.8.dw vr20 = vr20, vr14
  add.8.dw vr20 = vr20, vr15
  add.8.dw vr20 = vr20, vr16
  add.8.dw vr20 = vr20, vr17
  add.8.dw vr20 = vr20, vr18
  mul.8.dw vr20 = vr20, 7282
  add.8.dw vr20 = vr20, 32768
  shr.8.dw vr20 = vr20, 16
  sat.8.b vr20 = vr20
  st.8.b (OUT, vr0, vr3) = vr20
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f0 = vr2, 6
  br.any f0, ROW
  end
|}

let unit_params io u =
  let bw = Kernel.meta io "bw" in
  [| u mod bw; u / bw |]

let cpool _io = [| 7282l; 7282l; 7282l; 7282l; 32768l; 32768l; 32768l; 32768l |]

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  let w = Kernel.meta io "w" in
  let bw = Kernel.meta io "bw" in
  let pin = Surface.required_pitch ~width:(w + 2) ~bpp:1 ~tiling:Surface.Linear in
  let pout = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  Printf.sprintf
    {|; linear filter, units %d..%d (SSE 4-wide)
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  mov.d eax, esi
  sdiv eax, %d
  mov.d ebx, eax
  imul ebx, %d
  mov.d ecx, esi
  sub ecx, ebx
  shl ecx, 3
  imul eax, 6
  mov.d edi, 0
rloop:
  cmp edi, 6
  jge rdone
  mov.d edx, eax
  add edx, edi
  imul edx, %d
  add edx, ecx
  mov.d ebp, 0
gloop:
  cmp ebp, 8
  jge gdone
  movpk.b xmm0, [IN + edx + ebp]
  movpk.b xmm1, [IN + edx + ebp + 1]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + 2]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + %d]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + %d]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + %d]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + %d]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + %d]
  paddd xmm0, xmm1
  movpk.b xmm1, [IN + edx + ebp + %d]
  paddd xmm0, xmm1
  pmulld xmm0, [CPOOL]
  paddd xmm0, [CPOOL + 16]
  psrld xmm0, 16
  packus xmm0, xmm0
  mov.d ebx, eax
  add ebx, edi
  imul ebx, %d
  add ebx, ecx
  add ebx, ebp
  movpk.b [OUT + ebx], xmm0
  add ebp, 4
  jmp gloop
gdone:
  add edi, 1
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi bw bw pin pin (pin + 1) (pin + 2) (2 * pin) ((2 * pin) + 1)
    ((2 * pin) + 2) pout

let kernel : Kernel.t =
  {
    name = "Linear Filter";
    abbrev = "LinearFilter";
    description =
      "Compute output pixel as average of input pixel and eight surrounding \
       pixels";
    scales = [ Kernel.Small; Kernel.Large ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (function Kernel.Small -> 6_480 | Kernel.Large -> 83_500);
    band_ordered = true;
  }
