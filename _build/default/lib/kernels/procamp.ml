(* ProcAmp (Table 2): simple linear modification to YUV values for colour
   correction — contrast/brightness on luma, saturation on chroma, in Q7
   fixed point. Video frames are stacked vertically in one surface; one
   shred processes a 240x16 tile. *)

open Exochi_media

let w = 720
let h = 480
let tile_w = 240
let tile_h = 16
let contrast = 140 (* Q7 *)
let brightness = 10
let saturation = 130 (* Q7 *)

let make_io ?(frames = 30) prng _scale =
  let plane c = Image.synthetic_video prng ~width:w ~height:h ~frames c in
  let hs = h * frames in
  {
    Kernel.wl_desc = Printf.sprintf "%d frames %dx%d" frames w h;
    inputs =
      [
        ("Y", plane Image.Natural);
        ("U", plane Image.Gradient);
        ("V", plane Image.Noise);
      ];
    outputs = [ ("YO", w, hs); ("UO", w, hs); ("VO", w, hs) ];
    units = w / tile_w * (hs / tile_h);
    meta = [ ("w", w); ("hs", hs); ("frames", frames) ];
  }

let clamp255 v = if v < 0 then 0 else if v > 255 then 255 else v
let luma v = clamp255 ((((v - 16) * contrast) asr 7) + 16 + brightness)
let chroma v = clamp255 ((((v - 128) * saturation) asr 7) + 128)

let golden io =
  let map name f =
    let p = List.assoc name io.Kernel.inputs in
    Image.init ~width:p.Image.width ~height:p.Image.height (fun ~x ~y ->
        f (Image.get p ~x ~y))
  in
  [ ("YO", map "Y" luma); ("UO", map "U" chroma); ("VO", map "V" chroma) ]

let x3k_asm _io =
  Printf.sprintf
    {|; procamp: 240x16 tile at (%%p0, %%p1)
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = %%p1
  mov.1.dw vr2 = 0
PROW:
  add.1.dw vr3 = vr1, vr2
  mov.1.dw vr4 = vr0
  mov.1.dw vr5 = 0
PCOL:
  ld.16.b vr10 = (Y, vr4, vr3)
  sub.16.dw vr10 = vr10, 16
  mul.16.dw vr10 = vr10, %d
  sar.16.dw vr10 = vr10, 7
  add.16.dw vr10 = vr10, %d
  sat.16.b vr10 = vr10
  st.16.b (YO, vr4, vr3) = vr10
  ld.16.b vr11 = (U, vr4, vr3)
  sub.16.dw vr11 = vr11, 128
  mul.16.dw vr11 = vr11, %d
  sar.16.dw vr11 = vr11, 7
  add.16.dw vr11 = vr11, 128
  sat.16.b vr11 = vr11
  st.16.b (UO, vr4, vr3) = vr11
  ld.16.b vr12 = (V, vr4, vr3)
  sub.16.dw vr12 = vr12, 128
  mul.16.dw vr12 = vr12, %d
  sar.16.dw vr12 = vr12, 7
  add.16.dw vr12 = vr12, 128
  sat.16.b vr12 = vr12
  st.16.b (VO, vr4, vr3) = vr12
  add.1.dw vr4 = vr4, 16
  add.1.dw vr5 = vr5, 1
  cmp.lt.1.dw f0 = vr5, %d
  br.any f0, PCOL
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f0 = vr2, %d
  br.any f0, PROW
  end
|}
    contrast (16 + brightness) saturation saturation (tile_w / 16) tile_h

let unit_params _io u =
  let cols = w / tile_w in
  [| u mod cols * tile_w; u / cols * tile_h |]

let cpool _io =
  let quad v = [ v; v; v; v ] in
  (* 0:contrast 16:16+bri 32:saturation 48:const16 64:const128 *)
  List.concat_map quad [ contrast; 16 + brightness; saturation; 16; 128 ]
  |> List.map Int32.of_int |> Array.of_list

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  ignore io;
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  let cols = w / tile_w in
  let chan inp out coeff_off bias_off sub_off =
    Printf.sprintf
      {|  movpk.b xmm0, [%s + edx + ebp]
  psubd xmm0, [CPOOL + %d]
  pmulld xmm0, [CPOOL + %d]
  psrad xmm0, 7
  paddd xmm0, [CPOOL + %d]
  packus xmm0, xmm0
  movpk.b [%s + edx + ebp], xmm0|}
      inp sub_off coeff_off bias_off out
  in
  Printf.sprintf
    {|; procamp, units %d..%d
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  mov.d eax, esi
  sdiv eax, %d
  mov.d ebx, eax
  imul ebx, %d
  mov.d ecx, esi
  sub ecx, ebx
  imul ecx, %d
  imul eax, %d
  mov.d edi, 0
rloop:
  cmp edi, %d
  jge rdone
  mov.d edx, eax
  add edx, edi
  imul edx, %d
  add edx, ecx
  mov.d ebp, 0
gloop:
  cmp ebp, %d
  jge gdone
%s
%s
%s
  add ebp, 4
  jmp gloop
gdone:
  add edi, 1
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi cols cols tile_w tile_h tile_h pitch tile_w
    (chan "Y" "YO" 0 16 48)
    (chan "U" "UO" 32 64 64)
    (chan "V" "VO" 32 64 64)

let kernel : Kernel.t =
  {
    name = "ProcAmp";
    abbrev = "ProcAmp";
    description = "Simple linear modification to YUV values for color correction";
    scales = [ Kernel.Small ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (fun _ -> 2_700);
    band_ordered = true;
  }
