let all =
  [
    Linear_filter.kernel;
    Sepia.kernel;
    Fgt.kernel;
    Bicubic.kernel;
    Kalman.kernel;
    Fmd.kernel;
    Alphablend.kernel;
    Bob.kernel;
    Advdi.kernel;
    Procamp.kernel;
  ]

let find abbrev =
  let target = String.lowercase_ascii abbrev in
  List.find_opt
    (fun k -> String.lowercase_ascii k.Kernel.abbrev = target)
    all
