(** The full Table 2 kernel suite, in the paper's order. *)

val all : Kernel.t list

(** Look up a kernel by its abbreviation (case-insensitive). *)
val find : string -> Kernel.t option
