(* Sepia tone (Table 2): modify RGB values to artificially age the image.
   Classic sepia matrix in 8.8 fixed point, saturating to bytes. One shred
   processes an 8x8 block across all three channel planes. *)

open Exochi_media

let block = 8

(* matrix rows (R G B coefficients, x256) *)
let cr = (101, 197, 48)
let cg = (89, 176, 43)
let cb = (70, 137, 34)

let dims = function
  | Kernel.Small -> (640, 480)
  | Kernel.Large -> (2000, 2000)

let make_io ?frames prng scale =
  ignore frames;
  let w, h = dims scale in
  let plane c = Image.synthetic prng ~width:w ~height:h c in
  {
    Kernel.wl_desc = Printf.sprintf "%dx%d image" w h;
    inputs =
      [
        ("RI", plane Image.Natural);
        ("GI", plane Image.Gradient);
        ("BI", plane Image.Noise);
      ];
    outputs = [ ("RO", w, h); ("GO", w, h); ("BO", w, h) ];
    units = w / block * (h / block);
    meta = [ ("w", w); ("h", h); ("bw", w / block) ];
  }

let clamp255 v = if v < 0 then 0 else if v > 255 then 255 else v

let golden io =
  let r = List.assoc "RI" io.Kernel.inputs in
  let g = List.assoc "GI" io.Kernel.inputs in
  let b = List.assoc "BI" io.Kernel.inputs in
  let w = Kernel.meta io "w" and h = Kernel.meta io "h" in
  let mk (c1, c2, c3) =
    Image.init ~width:w ~height:h (fun ~x ~y ->
        clamp255
          (((Image.get r ~x ~y * c1)
           + (Image.get g ~x ~y * c2)
           + (Image.get b ~x ~y * c3))
          lsr 8))
  in
  [ ("RO", mk cr); ("GO", mk cg); ("BO", mk cb) ]

let x3k_asm _io =
  let channel (c1, c2, c3) out =
    Printf.sprintf
      {|  mul.8.dw vr20 = vr10, %d
  mac.8.dw vr20 = vr11, %d
  mac.8.dw vr20 = vr12, %d
  shr.8.dw vr20 = vr20, 8
  sat.8.b vr20 = vr20
  st.8.b (%s, vr0, vr3) = vr20|}
      c1 c2 c3 out
  in
  Printf.sprintf
    {|; sepia tone: 8x8 block at pixel (%%p0, %%p1)
  mov.1.dw vr0 = %%p0
  mov.1.dw vr1 = %%p1
  mov.1.dw vr2 = 0
SROW:
  add.1.dw vr3 = vr1, vr2
  ld.8.b vr10 = (RI, vr0, vr3)
  ld.8.b vr11 = (GI, vr0, vr3)
  ld.8.b vr12 = (BI, vr0, vr3)
%s
%s
%s
  add.1.dw vr2 = vr2, 1
  cmp.lt.1.dw f0 = vr2, 8
  br.any f0, SROW
  end
|}
    (channel cr "RO") (channel cg "GO") (channel cb "BO")

let unit_params io u =
  let bw = Kernel.meta io "bw" in
  [| u mod bw * block; u / bw * block |]

let cpool _io =
  let quad v = [ v; v; v; v ] in
  let (r1, r2, r3) = cr and (g1, g2, g3) = cg and (b1, b2, b3) = cb in
  List.concat_map quad [ r1; r2; r3; g1; g2; g3; b1; b2; b3 ]
  |> List.map Int32.of_int |> Array.of_list

let via32_asm io ~lo ~hi =
  let open Exochi_memory in
  let w = Kernel.meta io "w" in
  let bw = Kernel.meta io "bw" in
  let pitch = Surface.required_pitch ~width:w ~bpp:1 ~tiling:Surface.Linear in
  let channel idx out =
    (* coefficients for channel [idx] live at CPOOL offsets 48*idx *)
    let o = 48 * idx in
    Printf.sprintf
      {|  movdqu xmm4, xmm0
  pmulld xmm4, [CPOOL + %d]
  movdqu xmm5, xmm1
  pmulld xmm5, [CPOOL + %d]
  paddd xmm4, xmm5
  movdqu xmm5, xmm2
  pmulld xmm5, [CPOOL + %d]
  paddd xmm4, xmm5
  psrld xmm4, 8
  packus xmm4, xmm4
  movpk.b [%s + edx + ebp], xmm4|}
      o (o + 16) (o + 32) out
  in
  Printf.sprintf
    {|; sepia tone, units %d..%d
  mov.d esi, %d
uloop:
  cmp esi, %d
  jge alldone
  mov.d eax, esi
  sdiv eax, %d
  mov.d ebx, eax
  imul ebx, %d
  mov.d ecx, esi
  sub ecx, ebx
  shl ecx, 3
  imul eax, 8
  mov.d edi, 0
rloop:
  cmp edi, 8
  jge rdone
  mov.d edx, eax
  add edx, edi
  imul edx, %d
  add edx, ecx
  mov.d ebp, 0
gloop:
  cmp ebp, 8
  jge gdone
  movpk.b xmm0, [RI + edx + ebp]
  movpk.b xmm1, [GI + edx + ebp]
  movpk.b xmm2, [BI + edx + ebp]
%s
%s
%s
  add ebp, 4
  jmp gloop
gdone:
  add edi, 1
  jmp rloop
rdone:
  add esi, 1
  jmp uloop
alldone:
  hlt
|}
    lo hi lo hi bw bw pitch (channel 0 "RO") (channel 1 "GO") (channel 2 "BO")

let kernel : Kernel.t =
  {
    name = "Sepia Tone";
    abbrev = "SepiaTone";
    description = "Modify RGB values to artificially age image";
    scales = [ Kernel.Small; Kernel.Large ];
    make_io;
    golden;
    x3k_asm;
    unit_params;
    via32_asm;
    cpool;
    table2_shreds = (function Kernel.Small -> 4_800 | Kernel.Large -> 62_500);
    band_ordered = true;
  }
