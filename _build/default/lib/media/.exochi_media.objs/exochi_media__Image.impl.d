lib/media/image.ml: Address_space Array Bits Exochi_memory Exochi_util Int32 Printf Prng Surface
