lib/media/image.mli: Exochi_memory Exochi_util
