open Exochi_util

type t = { width : int; height : int; data : int array }

let create ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Image.create";
  { width; height; data = Array.make (width * height) 0 }

let init ~width ~height f =
  if width <= 0 || height <= 0 then invalid_arg "Image.init";
  {
    width;
    height;
    data = Array.init (width * height) (fun i -> f ~x:(i mod width) ~y:(i / width));
  }

let get t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg (Printf.sprintf "Image.get (%d,%d) of %dx%d" x y t.width t.height);
  t.data.((y * t.width) + x)

let set t ~x ~y v =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg "Image.set";
  t.data.((y * t.width) + x) <- v

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

let get_clamped t ~x ~y =
  t.data.((clamp 0 (t.height - 1) y * t.width) + clamp 0 (t.width - 1) x)

let pad t ~margin =
  if margin < 0 then invalid_arg "Image.pad";
  init ~width:(t.width + (2 * margin)) ~height:(t.height + (2 * margin))
    (fun ~x ~y -> get_clamped t ~x:(x - margin) ~y:(y - margin))

let crop t ~x ~y ~width ~height =
  if x < 0 || y < 0 || x + width > t.width || y + height > t.height then
    invalid_arg "Image.crop";
  init ~width ~height (fun ~x:cx ~y:cy -> get t ~x:(x + cx) ~y:(y + cy))

type content = Gradient | Noise | Natural | Checker of int

let synthetic prng ~width ~height content =
  match content with
  | Gradient ->
    init ~width ~height (fun ~x ~y -> ((x * 3) + (y * 2)) mod 256)
  | Noise -> init ~width ~height (fun ~x:_ ~y:_ -> Prng.byte prng)
  | Checker tile ->
    let tile = max 1 tile in
    init ~width ~height (fun ~x ~y ->
        if (x / tile) + (y / tile) land 1 = 1 then 220 else 35)
  | Natural ->
    (* low-frequency field + a few hard edges + texture + light noise *)
    let phase = Prng.float prng *. 6.28 in
    let edge_x = width / 3 and edge_y = (2 * height) / 3 in
    init ~width ~height (fun ~x ~y ->
        let fx = float_of_int x and fy = float_of_int y in
        let base =
          128.0
          +. (60.0 *. sin ((fx /. 37.0) +. phase))
          +. (40.0 *. cos (fy /. 23.0))
        in
        let edge = if x > edge_x && y < edge_y then 30.0 else -20.0 in
        let texture =
          if (x lxor y) land 7 = 0 then 12.0 else 0.0
        in
        let noise = float_of_int (Prng.int prng 9) -. 4.0 in
        clamp 0 255 (int_of_float (base +. edge +. texture +. noise)))

let synthetic_video prng ~width ~height ~frames content =
  if frames <= 0 then invalid_arg "Image.synthetic_video";
  let base =
    synthetic prng ~width:(width + (2 * frames)) ~height:(height + frames)
      content
  in
  init ~width ~height:(frames * height) (fun ~x ~y ->
      let f = y / height and py = y mod height in
      (* pan two pixels right and one down per frame *)
      get base ~x:(x + (2 * f)) ~y:(py + f))

let equal a b = a.width = b.width && a.height = b.height && a.data = b.data

let max_abs_diff a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Image.max_abs_diff: shape mismatch";
  let m = ref 0 in
  Array.iteri (fun i v -> m := max !m (abs (v - b.data.(i)))) a.data;
  !m

let psnr a b =
  if a.width <> b.width || a.height <> b.height then
    invalid_arg "Image.psnr: shape mismatch";
  let se = ref 0.0 in
  Array.iteri
    (fun i v ->
      let d = float_of_int (v - b.data.(i)) in
      se := !se +. (d *. d))
    a.data;
  if !se = 0.0 then infinity
  else begin
    let mse = !se /. float_of_int (Array.length a.data) in
    10.0 *. log10 (255.0 *. 255.0 /. mse)
  end

open Exochi_memory

let store aspace t ~surface =
  if t.width <> surface.Surface.width || t.height <> surface.Surface.height
  then invalid_arg "Image.store: shape mismatch with surface";
  for y = 0 to t.height - 1 do
    for x = 0 to t.width - 1 do
      let va = Surface.element_addr surface ~x ~y in
      let v = t.data.((y * t.width) + x) in
      match surface.Surface.bpp with
      | 1 -> Address_space.write_u8 aspace va (v land 0xff)
      | 2 -> Address_space.write_u16 aspace va (v land 0xffff)
      | _ -> Address_space.write_u32 aspace va (Int32.of_int v)
    done
  done

let load aspace ~surface =
  init ~width:surface.Surface.width ~height:surface.Surface.height
    (fun ~x ~y ->
      let va = Surface.element_addr surface ~x ~y in
      match surface.Surface.bpp with
      | 1 -> Address_space.read_u8 aspace va
      | 2 ->
        Bits.sign_extend (Address_space.read_u16 aspace va) ~bits:16
      | _ -> Bits.sign_extend (Int32.to_int (Address_space.read_u32 aspace va) land 0xFFFFFFFF) ~bits:32)
