(** Host-side image planes: the golden-reference representation of media
    data, plus conversion to and from simulated-memory surfaces.

    A plane is a [width] x [height] grid of integer samples (8-bit pixel
    data or wider intermediate values). Multi-frame video is represented
    as a plane of height [frames * height] — frames stacked vertically,
    which is also how the kernels' surfaces are laid out. *)

type t = { width : int; height : int; data : int array }

val create : width:int -> height:int -> t
val init : width:int -> height:int -> (x:int -> y:int -> int) -> t
val get : t -> x:int -> y:int -> int
val set : t -> x:int -> y:int -> int -> unit

(** [get_clamped] replicates edges (border handling for filters). *)
val get_clamped : t -> x:int -> y:int -> int

(** [pad t ~margin] returns a plane grown by [margin] on every side with
    replicated edges (kernels with spatial neighbourhoods consume padded
    inputs so the inline assembly needs no border cases). *)
val pad : t -> margin:int -> t

(** [crop t ~x ~y ~width ~height] extracts a sub-plane. *)
val crop : t -> x:int -> y:int -> width:int -> height:int -> t

(** {1 Synthetic content} *)

type content =
  | Gradient (* smooth diagonal ramp *)
  | Noise (* uniform noise *)
  | Natural (* gradients + edges + texture + noise: exercises all paths *)
  | Checker of int (* checkerboard with the given tile size *)

val synthetic : Exochi_util.Prng.t -> width:int -> height:int -> content -> t

(** [synthetic_video prng ~width ~height ~frames content] builds a stacked
    video whose frames pan slowly (so temporal kernels see real motion). *)
val synthetic_video :
  Exochi_util.Prng.t -> width:int -> height:int -> frames:int -> content -> t

(** {1 Comparison} *)

val equal : t -> t -> bool
val max_abs_diff : t -> t -> int

(** Peak signal-to-noise ratio assuming 8-bit samples; [infinity] when
    identical. *)
val psnr : t -> t -> float

(** {1 Simulated-memory interop} *)

(** [store aspace t ~surface] writes the plane's samples into a surface's
    backing memory ([bpp] must be 1, 2 or 4; samples are truncated).
    Functional, untimed: workload setup. *)
val store :
  Exochi_memory.Address_space.t -> t -> surface:Exochi_memory.Surface.t -> unit

(** [load aspace ~surface] reads a surface back into a plane (byte
    surfaces zero-extend, word surfaces sign-extend). *)
val load :
  Exochi_memory.Address_space.t -> surface:Exochi_memory.Surface.t -> t
