lib/memory/address_space.ml: Bits Bytes Exochi_util Int64 List Page_table Phys_mem Pte
