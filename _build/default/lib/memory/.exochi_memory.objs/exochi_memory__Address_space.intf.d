lib/memory/address_space.mli: Page_table Phys_mem
