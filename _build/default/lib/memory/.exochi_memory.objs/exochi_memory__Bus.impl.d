lib/memory/bus.ml: Exochi_util Timebase
