lib/memory/bus.mli:
