lib/memory/cache.ml: Array Bits Exochi_util
