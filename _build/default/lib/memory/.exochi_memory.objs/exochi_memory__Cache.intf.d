lib/memory/cache.mli:
