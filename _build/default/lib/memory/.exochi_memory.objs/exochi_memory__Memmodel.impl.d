lib/memory/memmodel.ml: Exochi_util Timebase
