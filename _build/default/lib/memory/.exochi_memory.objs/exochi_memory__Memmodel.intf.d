lib/memory/memmodel.mli:
