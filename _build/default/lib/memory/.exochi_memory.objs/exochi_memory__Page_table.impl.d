lib/memory/page_table.ml: Phys_mem Pte
