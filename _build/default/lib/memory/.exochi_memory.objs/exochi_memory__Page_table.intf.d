lib/memory/page_table.mli: Phys_mem Pte
