lib/memory/phys_mem.ml: Bytes Char Hashtbl List
