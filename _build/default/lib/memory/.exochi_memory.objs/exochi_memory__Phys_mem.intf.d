lib/memory/phys_mem.mli:
