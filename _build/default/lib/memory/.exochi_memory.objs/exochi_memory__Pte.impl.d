lib/memory/pte.ml: Exochi_util Format Int32 Int64 Printf
