lib/memory/pte.mli: Format
