lib/memory/surface.ml: Bits Exochi_util Format Printf Pte
