lib/memory/surface.mli: Format Pte
