lib/memory/tlb.ml: Hashtbl
