lib/memory/tlb.mli:
