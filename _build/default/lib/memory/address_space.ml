open Exochi_util

exception Segfault of int

type region = { name : string; base : int; bytes : int }

type t = {
  mem : Phys_mem.t;
  pt : Page_table.t;
  mutable brk : int;
  mutable regions : region list; (* newest first *)
  mutable minor_faults : int;
}

(* User allocations start well above the null page and any loader region. *)
let base_va = 0x1000_0000
let top_va = 0xC000_0000

let create mem =
  { mem; pt = Page_table.create mem; brk = base_va; regions = []; minor_faults = 0 }

let phys_mem t = t.mem
let page_table t = t.pt

let alloc t ~name ~bytes ~align =
  if bytes <= 0 then invalid_arg "Address_space.alloc: bytes";
  if (not (Bits.is_pow2 align)) || align < 16 then
    invalid_arg "Address_space.alloc: align";
  let base = Bits.align_up t.brk align in
  if base + bytes > top_va then raise Phys_mem.Out_of_memory_frames;
  t.brk <- base + bytes;
  t.regions <- { name; base; bytes } :: t.regions;
  base

let regions t = List.rev_map (fun r -> (r.name, r.base, r.bytes)) t.regions

let in_some_region t vaddr =
  List.exists (fun r -> vaddr >= r.base && vaddr < r.base + r.bytes) t.regions

let fault_in t ~vaddr =
  let vpage = vaddr lsr Phys_mem.page_shift in
  match Page_table.walk t.pt ~vpage with
  | Page_table.Mapped _ -> `Already
  | No_table | Not_present ->
    if not (in_some_region t vaddr) then raise (Segfault vaddr);
    let frame = Phys_mem.alloc_frame t.mem in
    let pte =
      Pte.Ia32.make
        {
          Pte.Ia32.present = true;
          writable = true;
          user = true;
          write_through = false;
          cache_disable = false;
          accessed = false;
          dirty = false;
          frame;
        }
    in
    Page_table.map t.pt ~vpage ~pte;
    t.minor_faults <- t.minor_faults + 1;
    `Faulted

let translate t ~vaddr ~write =
  ignore (fault_in t ~vaddr);
  match Page_table.translate ~set_dirty:write t.pt ~vaddr with
  | Some pa -> pa
  | None -> raise (Segfault vaddr)

(* Scalar accessors narrower than a page never straddle pages when
   naturally aligned; we handle the unaligned straddle case by splitting
   into bytes. *)
let page_off vaddr = vaddr land (Phys_mem.page_size - 1)

let read_u8 t vaddr = Phys_mem.read_u8 t.mem (translate t ~vaddr ~write:false)

let write_u8 t vaddr v =
  Phys_mem.write_u8 t.mem (translate t ~vaddr ~write:true) v

let rec read_le t vaddr n =
  if n = 0 then 0L
  else if page_off vaddr + n <= Phys_mem.page_size then begin
    let pa = translate t ~vaddr ~write:false in
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (Int64.logor (Int64.shift_left acc 8)
             (Int64.of_int (Phys_mem.read_u8 t.mem (pa + i))))
    in
    go (n - 1) 0L
  end
  else begin
    let lo = read_le t vaddr 1 in
    Int64.logor lo (Int64.shift_left (read_le t (vaddr + 1) (n - 1)) 8)
  end

let rec write_le t vaddr n v =
  if n > 0 then
    if page_off vaddr + n <= Phys_mem.page_size then begin
      let pa = translate t ~vaddr ~write:true in
      for i = 0 to n - 1 do
        Phys_mem.write_u8 t.mem (pa + i)
          (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
      done
    end
    else begin
      write_le t vaddr 1 v;
      write_le t (vaddr + 1) (n - 1) (Int64.shift_right_logical v 8)
    end

let read_u16 t vaddr = Int64.to_int (read_le t vaddr 2)
let read_u32 t vaddr = Int64.to_int32 (read_le t vaddr 4)
let write_u16 t vaddr v = write_le t vaddr 2 (Int64.of_int (v land 0xffff))

let write_u32 t vaddr v =
  write_le t vaddr 4 (Int64.logand (Int64.of_int32 v) 0xFFFF_FFFFL)

let read_bytes t ~vaddr ~len =
  let buf = Bytes.create len in
  let rec go vaddr off len =
    if len > 0 then begin
      let chunk = min len (Phys_mem.page_size - page_off vaddr) in
      let pa = translate t ~vaddr ~write:false in
      Phys_mem.blit_to_bytes t.mem ~src:pa ~dst:buf ~dst_off:off ~len:chunk;
      go (vaddr + chunk) (off + chunk) (len - chunk)
    end
  in
  go vaddr 0 len;
  buf

let write_bytes t ~vaddr src =
  let len = Bytes.length src in
  let rec go vaddr off len =
    if len > 0 then begin
      let chunk = min len (Phys_mem.page_size - page_off vaddr) in
      let pa = translate t ~vaddr ~write:true in
      Phys_mem.blit_of_bytes t.mem ~src ~src_off:off ~dst:pa ~len:chunk;
      go (vaddr + chunk) (off + chunk) (len - chunk)
    end
  in
  go vaddr 0 len

let minor_faults t = t.minor_faults
