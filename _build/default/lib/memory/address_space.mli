(** A process's shared virtual address space.

    One address space is shared by the OS-managed IA32 sequencer and all
    exo-sequencers — the central idea of EXO. The space owns the IA32-format
    page table; allocation is lazy (demand paging), so first-touch from the
    CPU takes a minor fault and first-touch from the accelerator goes
    through the full ATR proxy path.

    Virtual reads/writes here are *functional* accesses used by loaders,
    golden-data setup and the proxy handler; timing-model clients (CPU and
    accelerator simulators) perform their own TLB/cache accounting and then
    come here for data. *)

type t

val create : Phys_mem.t -> t
val phys_mem : t -> Phys_mem.t
val page_table : t -> Page_table.t

(** [alloc t ~name ~bytes ~align] reserves a virtual range (no frames are
    committed). [align] must be a power of two [>= 16]. *)
val alloc : t -> name:string -> bytes:int -> align:int -> int

(** Named regions: [(name, base, bytes)]. *)
val regions : t -> (string * int * int) list

(** [fault_in t ~vaddr] ensures the page holding [vaddr] is mapped,
    allocating and mapping a frame if needed (the OS page-fault handler).
    Returns [`Already] or [`Faulted]. Faulting an address outside any
    allocated region raises [Segfault]. *)
val fault_in : t -> vaddr:int -> [ `Already | `Faulted ]

exception Segfault of int

(** Translate for data access, faulting in on demand. *)
val translate : t -> vaddr:int -> write:bool -> int

(** Demand-paged virtual accessors (may straddle pages). *)
val read_u8 : t -> int -> int

val read_u16 : t -> int -> int
val read_u32 : t -> int -> int32
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int32 -> unit
val read_bytes : t -> vaddr:int -> len:int -> bytes
val write_bytes : t -> vaddr:int -> bytes -> unit

(** Number of minor faults serviced so far. *)
val minor_faults : t -> int
