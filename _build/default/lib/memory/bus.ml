open Exochi_util

type t = {
  gbps : float;
  latency_ps : int;
  mutable busy_until : int;
  mutable total_bytes : int;
  mutable total_requests : int;
}

let create ~gbps ~latency_ps =
  if gbps <= 0.0 || latency_ps < 0 then invalid_arg "Bus.create";
  { gbps; latency_ps; busy_until = 0; total_bytes = 0; total_requests = 0 }

let request ?(latency = true) t ~now_ps ~bytes =
  if bytes < 0 then invalid_arg "Bus.request";
  let start = max now_ps t.busy_until in
  let occupy = Timebase.transfer_ps ~bytes ~gbps:t.gbps in
  t.busy_until <- start + occupy;
  t.total_bytes <- t.total_bytes + bytes;
  t.total_requests <- t.total_requests + 1;
  t.busy_until + (if latency then t.latency_ps else 0)

let busy_until t = t.busy_until
let total_bytes t = t.total_bytes
let total_requests t = t.total_requests

let reset_stats t =
  t.total_bytes <- 0;
  t.total_requests <- 0

let gbps t = t.gbps
