(** Shared memory-controller model.

    The CPU sequencer and the accelerator EUs contend for one DRAM channel
    (the 965G-class chipset in the prototype has a unified memory
    architecture — the GMA X3000 has no private VRAM). A request occupies
    the channel for [bytes / bandwidth] and observes an additional access
    latency. This single shared resource is what makes the bandwidth-bound
    kernel (BOB) speed up far less than the compute-bound ones. *)

type t

val create : gbps:float -> latency_ps:int -> t

(** [request t ~now_ps ~bytes] schedules a transfer issued at [now_ps];
    returns the completion time. Requests serialise on the channel.
    [latency:false] omits the DRAM access latency — used for transfers
    the requester has already covered (hardware-prefetched lines). *)
val request : ?latency:bool -> t -> now_ps:int -> bytes:int -> int

(** The time at which the channel becomes free. *)
val busy_until : t -> int

val total_bytes : t -> int
val total_requests : t -> int
val reset_stats : t -> unit

(** Peak bandwidth in decimal GB/s. *)
val gbps : t -> float
