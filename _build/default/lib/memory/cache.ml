open Exochi_util

type line = { mutable tag : int; mutable valid : bool; mutable dirty : bool; mutable lru : int }

type t = {
  name : string;
  line_bytes : int;
  sets : int;
  ways : int;
  lines : line array array; (* [set].[way] *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable writebacks : int;
}

let create ~name ~size_bytes ~line_bytes ~ways =
  if not (Bits.is_pow2 size_bytes && Bits.is_pow2 line_bytes && Bits.is_pow2 ways)
  then invalid_arg "Cache.create: sizes must be powers of two";
  let sets = size_bytes / (line_bytes * ways) in
  if sets < 1 then invalid_arg "Cache.create: size too small";
  let lines =
    Array.init sets (fun _ ->
        Array.init ways (fun _ -> { tag = 0; valid = false; dirty = false; lru = 0 }))
  in
  { name; line_bytes; sets; ways; lines; tick = 0; hits = 0; misses = 0; writebacks = 0 }

let name t = t.name
let line_bytes t = t.line_bytes

type access_result = { hit : bool; fill : int option; writeback : int option }

let split t addr =
  let line_no = addr / t.line_bytes in
  (line_no mod t.sets, line_no / t.sets)

let line_addr t ~set ~tag = ((tag * t.sets) + set) * t.line_bytes

let find_way t set tag =
  let ways = t.lines.(set) in
  let rec go i =
    if i >= t.ways then None
    else if ways.(i).valid && ways.(i).tag = tag then Some i
    else go (i + 1)
  in
  go 0

let victim_way t set =
  let ways = t.lines.(set) in
  let best = ref 0 in
  (try
     for i = 0 to t.ways - 1 do
       if not ways.(i).valid then begin
         best := i;
         raise Exit
       end;
       if ways.(i).lru < ways.(!best).lru then best := i
     done
   with Exit -> ());
  !best

let access t ~addr ~write =
  t.tick <- t.tick + 1;
  let set, tag = split t addr in
  match find_way t set tag with
  | Some w ->
    let l = t.lines.(set).(w) in
    l.lru <- t.tick;
    if write then l.dirty <- true;
    t.hits <- t.hits + 1;
    { hit = true; fill = None; writeback = None }
  | None ->
    t.misses <- t.misses + 1;
    let w = victim_way t set in
    let l = t.lines.(set).(w) in
    let writeback =
      if l.valid && l.dirty then begin
        t.writebacks <- t.writebacks + 1;
        Some (line_addr t ~set ~tag:l.tag)
      end
      else None
    in
    l.tag <- tag;
    l.valid <- true;
    l.dirty <- write;
    l.lru <- t.tick;
    { hit = false; fill = Some (line_addr t ~set ~tag); writeback }

let access_range t ~addr ~len ~write =
  if len <= 0 then []
  else begin
    let first = addr / t.line_bytes and last = (addr + len - 1) / t.line_bytes in
    let acc = ref [] in
    for line = last downto first do
      acc := access t ~addr:(line * t.line_bytes) ~write :: !acc
    done;
    !acc
  end

let flush_all t =
  let dirty = ref [] in
  for set = t.sets - 1 downto 0 do
    for w = t.ways - 1 downto 0 do
      let l = t.lines.(set).(w) in
      if l.valid then begin
        if l.dirty then begin
          dirty := line_addr t ~set ~tag:l.tag :: !dirty;
          t.writebacks <- t.writebacks + 1
        end;
        l.valid <- false;
        l.dirty <- false
      end
    done
  done;
  !dirty

let flush_range t ~addr ~len =
  if len <= 0 then []
  else begin
    let dirty = ref [] in
    let first = addr / t.line_bytes and last = (addr + len - 1) / t.line_bytes in
    for line = last downto first do
      let la = line * t.line_bytes in
      let set, tag = split t la in
      match find_way t set tag with
      | None -> ()
      | Some w ->
        let l = t.lines.(set).(w) in
        if l.dirty then begin
          dirty := la :: !dirty;
          t.writebacks <- t.writebacks + 1
        end;
        l.valid <- false;
        l.dirty <- false
    done;
    !dirty
  end

let snoop t ~line_addr:la =
  let set, tag = split t la in
  match find_way t set tag with
  | None -> `Absent
  | Some w ->
    let l = t.lines.(set).(w) in
    let r = if l.dirty then `Dirty else `Clean in
    if l.dirty then t.writebacks <- t.writebacks + 1;
    l.valid <- false;
    l.dirty <- false;
    r

let probe t ~line_addr:la =
  let set, tag = split t la in
  match find_way t set tag with
  | None -> `Absent
  | Some w -> if t.lines.(set).(w).dirty then `Dirty else `Clean

let count t pred =
  let n = ref 0 in
  Array.iter (Array.iter (fun l -> if pred l then incr n)) t.lines;
  !n

let dirty_line_count t = count t (fun l -> l.valid && l.dirty)
let valid_line_count t = count t (fun l -> l.valid)
let hits t = t.hits
let misses t = t.misses
let writebacks t = t.writebacks

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.writebacks <- 0
