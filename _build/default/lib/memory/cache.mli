(** Set-associative write-back, write-allocate cache model.

    The cache tracks tags only — data always lives in {!Phys_mem} — which
    is sufficient for the paper's experiments: what matters is *when* a
    line is dirty (flush cost, coherence traffic) and whether an access
    hits (latency). Figure 8's three memory models differ exactly in who
    pays for flushes and snoops. *)

type t

(** [create ~name ~size_bytes ~line_bytes ~ways] — sizes must be powers of
    two with [size_bytes = sets * ways * line_bytes]. *)
val create : name:string -> size_bytes:int -> line_bytes:int -> ways:int -> t

val name : t -> string
val line_bytes : t -> int

type access_result = {
  hit : bool;
  fill : int option; (* line address fetched from the next level *)
  writeback : int option; (* dirty victim line address, if evicted *)
}

(** [access t ~addr ~write] touches the single line containing [addr]. *)
val access : t -> addr:int -> write:bool -> access_result

(** [access_range t ~addr ~len ~write] touches every line overlapping
    [addr, addr+len) and returns the per-line results in address order. *)
val access_range : t -> addr:int -> len:int -> write:bool -> access_result list

(** [flush_all t] cleans every line: returns the addresses of dirty lines
    written back and marks the whole cache invalid (WBINVD-style, which is
    what the prototype's hand-off flushes do). *)
val flush_all : t -> int list

(** [flush_range t ~addr ~len] is CLFLUSH over a range: dirty lines in the
    range are written back and all covered lines invalidated. Returns the
    written-back line addresses. *)
val flush_range : t -> addr:int -> len:int -> int list

(** [snoop t ~line_addr] models a coherence probe from another agent:
    the line is invalidated; the result says whether data had to be
    supplied ([`Dirty]) or just dropped. *)
val snoop : t -> line_addr:int -> [ `Absent | `Clean | `Dirty ]

(** [probe t ~line_addr] inspects a line's state without changing it
    (used by the non-coherent protocol checker). *)
val probe : t -> line_addr:int -> [ `Absent | `Clean | `Dirty ]

val dirty_line_count : t -> int
val valid_line_count : t -> int

(** Counters. *)
val hits : t -> int

val misses : t -> int
val writebacks : t -> int
val reset_stats : t -> unit
