open Exochi_util

type config = Data_copy | Non_cc_shared | Cc_shared

let name = function
  | Data_copy -> "Data Copy"
  | Non_cc_shared -> "Non-CC Shared"
  | Cc_shared -> "CC Shared"

let all = [ Data_copy; Non_cc_shared; Cc_shared ]

type costs = {
  copy_gbps : float;
  flush_gbps : float;
  naive_flush_gbps : float;
  semaphore_ps : int;
  snoop_ps : int;
}

let default_costs =
  {
    copy_gbps = 3.1; (* paper §5.2 *)
    flush_gbps = 8.0; (* optimised write-back of dirty lines *)
    naive_flush_gbps = 2.0; (* paper §5.2: unoptimised flush *)
    semaphore_ps = 200_000; (* 200 ns uncontended semaphore round trip *)
    snoop_ps = 40_000; (* 40 ns cross-agent probe *)
  }

let copy_ps c ~bytes = Timebase.transfer_ps ~bytes ~gbps:c.copy_gbps
let flush_ps c ~bytes = Timebase.transfer_ps ~bytes ~gbps:c.flush_gbps
let naive_flush_ps c ~bytes = Timebase.transfer_ps ~bytes ~gbps:c.naive_flush_gbps
