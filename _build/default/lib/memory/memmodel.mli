(** The three memory-model configurations of the paper's Figure 8, plus
    their cost parameters.

    - [Data_copy]: no shared virtual memory. Inputs are copied from the
      CPU's address space into an accelerator-private region before
      dispatch, and outputs copied back afterwards, at [copy_gbps]
      (3.1 GB/s in the paper — an SSE-optimised cacheable→write-combining
      copy).
    - [Non_cc_shared]: shared virtual address space, no hardware cache
      coherence. Handing data across requires flushing dirty lines, at
      [flush_gbps]; critical sections serialise hand-offs.
    - [Cc_shared]: coherent shared virtual memory — no copies, no flushes,
      only per-line snoop traffic. *)

type config = Data_copy | Non_cc_shared | Cc_shared

val name : config -> string
val all : config list

type costs = {
  copy_gbps : float; (* explicit data-copy rate *)
  flush_gbps : float; (* optimised cache-flush writeback rate *)
  naive_flush_gbps : float; (* unoptimised flush rate (paper: 2 GB/s) *)
  semaphore_ps : int; (* critical-section acquire/release cost *)
  snoop_ps : int; (* per-line coherence probe cost *)
}

(** Paper-calibrated defaults: 3.1 GB/s copy, 8 GB/s optimised flush,
    2 GB/s naive flush. *)
val default_costs : costs

(** [copy_ps costs ~bytes] / [flush_ps costs ~bytes] /
    [naive_flush_ps costs ~bytes] price a transfer. *)
val copy_ps : costs -> bytes:int -> int

val flush_ps : costs -> bytes:int -> int
val naive_flush_ps : costs -> bytes:int -> int
