type t = {
  mem : Phys_mem.t;
  dir_frame : int;
  mutable walk_reads : int;
}

let entries_per_table = 1024

let create mem =
  let dir_frame = Phys_mem.alloc_frame mem in
  { mem; dir_frame; walk_reads = 0 }

let root t = t.dir_frame lsl Phys_mem.page_shift

let indices vpage =
  if vpage < 0 || vpage >= entries_per_table * entries_per_table then
    invalid_arg "Page_table: vpage out of 32-bit range";
  (vpage lsr 10, vpage land 0x3ff)

(* Directory entries reuse the IA32 PTE bit layout: present + frame of the
   leaf table, as on real x86. *)
let dir_entry_addr t di = root t + (di * 4)

let table_frame t di =
  let e = Phys_mem.read_u32 t.mem (dir_entry_addr t di) in
  t.walk_reads <- t.walk_reads + 1;
  if Pte.Ia32.present e then Some (Pte.Ia32.frame e) else None

let ensure_table t di =
  match table_frame t di with
  | Some f -> f
  | None ->
    let f = Phys_mem.alloc_frame t.mem in
    let e =
      Pte.Ia32.make
        {
          Pte.Ia32.present = true;
          writable = true;
          user = true;
          write_through = false;
          cache_disable = false;
          accessed = false;
          dirty = false;
          frame = f;
        }
    in
    Phys_mem.write_u32 t.mem (dir_entry_addr t di) e;
    f

let leaf_addr tf ti = (tf lsl Phys_mem.page_shift) + (ti * 4)

let map t ~vpage ~pte =
  let di, ti = indices vpage in
  let tf = ensure_table t di in
  Phys_mem.write_u32 t.mem (leaf_addr tf ti) pte

let unmap t ~vpage =
  let di, ti = indices vpage in
  match table_frame t di with
  | None -> ()
  | Some tf -> Phys_mem.write_u32 t.mem (leaf_addr tf ti) Pte.Ia32.absent

type walk_result = Mapped of Pte.Ia32.t | No_table | Not_present

let walk t ~vpage =
  let di, ti = indices vpage in
  match table_frame t di with
  | None -> No_table
  | Some tf ->
    let e = Phys_mem.read_u32 t.mem (leaf_addr tf ti) in
    t.walk_reads <- t.walk_reads + 1;
    if Pte.Ia32.present e then Mapped e else Not_present

let translate ?(set_dirty = false) t ~vaddr =
  let vpage = vaddr lsr Phys_mem.page_shift in
  match walk t ~vpage with
  | No_table | Not_present -> None
  | Mapped e ->
    let di, ti = indices vpage in
    (match table_frame t di with
    | None -> assert false
    | Some tf ->
      let e' = Pte.Ia32.with_accessed e in
      let e' = if set_dirty then Pte.Ia32.with_dirty e' else e' in
      if e' <> e then Phys_mem.write_u32 t.mem (leaf_addr tf ti) e');
    Some
      ((Pte.Ia32.frame e lsl Phys_mem.page_shift)
      lor (vaddr land (Phys_mem.page_size - 1)))

let walk_reads t = t.walk_reads

let mapped_pages t =
  let acc = ref [] in
  for di = entries_per_table - 1 downto 0 do
    match
      let e = Phys_mem.read_u32 t.mem (dir_entry_addr t di) in
      if Pte.Ia32.present e then Some (Pte.Ia32.frame e) else None
    with
    | None -> ()
    | Some tf ->
      for ti = entries_per_table - 1 downto 0 do
        let e = Phys_mem.read_u32 t.mem (leaf_addr tf ti) in
        if Pte.Ia32.present e then acc := ((di lsl 10) lor ti) :: !acc
      done
  done;
  !acc
