(** Two-level IA32-format page table, stored *inside* simulated physical
    memory.

    The directory and leaf tables are real 4 KiB frames of {!Phys_mem};
    walks are performed with ordinary physical reads, so the ATR proxy
    handler exercises the same data path as any other memory client. The
    virtual address space is 32-bit: 10-bit directory index, 10-bit table
    index, 12-bit offset. *)

type t

(** [create mem] allocates an empty directory frame in [mem]. *)
val create : Phys_mem.t -> t

(** Physical address of the directory (the simulated CR3). *)
val root : t -> int

(** [map t ~vpage ~pte] installs [pte] for virtual page [vpage],
    allocating an intermediate table frame if needed. *)
val map : t -> vpage:int -> pte:Pte.Ia32.t -> unit

(** [unmap t ~vpage] clears the entry (no-op when absent). *)
val unmap : t -> vpage:int -> unit

type walk_result =
  | Mapped of Pte.Ia32.t
  | No_table (* directory entry absent *)
  | Not_present (* leaf entry absent *)

(** [walk t ~vpage] performs the two-level walk. Counts as two physical
    reads, reported in [walk_reads] for timing. *)
val walk : t -> vpage:int -> walk_result

(** [translate t ~vaddr] is the physical address for [vaddr], or [None]
    if the page is unmapped. Sets the accessed bit as hardware would;
    [set_dirty] also sets the dirty bit. *)
val translate : ?set_dirty:bool -> t -> vaddr:int -> int option

(** Number of physical reads issued by walks so far (for timing models). *)
val walk_reads : t -> int

(** All currently mapped virtual pages (ascending), for diagnostics. *)
val mapped_pages : t -> int list
