let page_size = 4096
let page_shift = 12

exception Out_of_memory_frames

type t = {
  total_frames : int;
  frames : (int, bytes) Hashtbl.t; (* frame number -> backing store *)
  mutable next_frame : int; (* bump allocator *)
  mutable free_list : int list; (* returned frames *)
  mutable allocated : int;
}

let create ~frames =
  if frames <= 0 then invalid_arg "Phys_mem.create";
  {
    total_frames = frames;
    frames = Hashtbl.create 1024;
    next_frame = 0;
    free_list = [];
    allocated = 0;
  }

let total_frames t = t.total_frames
let frames_allocated t = t.allocated

let alloc_frame t =
  match t.free_list with
  | f :: rest ->
    t.free_list <- rest;
    t.allocated <- t.allocated + 1;
    Hashtbl.replace t.frames f (Bytes.make page_size '\000');
    f
  | [] ->
    if t.next_frame >= t.total_frames then raise Out_of_memory_frames;
    let f = t.next_frame in
    t.next_frame <- t.next_frame + 1;
    t.allocated <- t.allocated + 1;
    f

let free_frame t f =
  if f < 0 || f >= t.next_frame then invalid_arg "Phys_mem.free_frame";
  if List.mem f t.free_list then invalid_arg "Phys_mem.free_frame: double free";
  Hashtbl.remove t.frames f;
  t.free_list <- f :: t.free_list;
  t.allocated <- t.allocated - 1

(* Frame backing store, created lazily so sparse address spaces stay cheap. *)
let backing t frame =
  match Hashtbl.find_opt t.frames frame with
  | Some b -> b
  | None ->
    let b = Bytes.make page_size '\000' in
    Hashtbl.replace t.frames frame b;
    b

let split addr = (addr lsr page_shift, addr land (page_size - 1))

let check_span off size =
  if off + size > page_size then
    invalid_arg "Phys_mem: access straddles a frame boundary"

let read_u8 t addr =
  let frame, off = split addr in
  match Hashtbl.find_opt t.frames frame with
  | None -> 0
  | Some b -> Char.code (Bytes.get b off)

let read_u16 t addr =
  let frame, off = split addr in
  check_span off 2;
  match Hashtbl.find_opt t.frames frame with
  | None -> 0
  | Some b -> Bytes.get_uint16_le b off

let read_u32 t addr =
  let frame, off = split addr in
  check_span off 4;
  match Hashtbl.find_opt t.frames frame with
  | None -> 0l
  | Some b -> Bytes.get_int32_le b off

let read_u64 t addr =
  let frame, off = split addr in
  check_span off 8;
  match Hashtbl.find_opt t.frames frame with
  | None -> 0L
  | Some b -> Bytes.get_int64_le b off

let write_u8 t addr v =
  let frame, off = split addr in
  Bytes.set (backing t frame) off (Char.chr (v land 0xff))

let write_u16 t addr v =
  let frame, off = split addr in
  check_span off 2;
  Bytes.set_uint16_le (backing t frame) off (v land 0xffff)

let write_u32 t addr v =
  let frame, off = split addr in
  check_span off 4;
  Bytes.set_int32_le (backing t frame) off v

let write_u64 t addr v =
  let frame, off = split addr in
  check_span off 8;
  Bytes.set_int64_le (backing t frame) off v

let blit_to_bytes t ~src ~dst ~dst_off ~len =
  let rec go src dst_off len =
    if len > 0 then begin
      let frame, off = split src in
      let chunk = min len (page_size - off) in
      (match Hashtbl.find_opt t.frames frame with
      | None -> Bytes.fill dst dst_off chunk '\000'
      | Some b -> Bytes.blit b off dst dst_off chunk);
      go (src + chunk) (dst_off + chunk) (len - chunk)
    end
  in
  go src dst_off len

let blit_of_bytes t ~src ~src_off ~dst ~len =
  let rec go src_off dst len =
    if len > 0 then begin
      let frame, off = split dst in
      let chunk = min len (page_size - off) in
      Bytes.blit src src_off (backing t frame) off chunk;
      go (src_off + chunk) (dst + chunk) (len - chunk)
    end
  in
  go src_off dst len

let copy t ~src ~dst ~len =
  let buf = Bytes.create len in
  blit_to_bytes t ~src ~dst:buf ~dst_off:0 ~len;
  blit_of_bytes t ~src:buf ~src_off:0 ~dst ~len
