(** Simulated physical memory.

    Memory is organised as 4 KiB frames allocated on demand from a fixed
    pool. Page tables, surface data and the shred work queue all live in
    this memory — the IA32 proxy handler walks page tables by issuing reads
    against it, exactly as the EXO firmware does on real hardware. *)

type t

val page_size : int (* 4096 *)
val page_shift : int (* 12 *)

(** [create ~frames] builds a physical memory of [frames] 4 KiB frames. *)
val create : frames:int -> t

val total_frames : t -> int
val frames_allocated : t -> int

(** Allocate a zeroed frame; returns the frame number.
    Raises [Out_of_memory_frames] when the pool is exhausted. *)
val alloc_frame : t -> int

exception Out_of_memory_frames

(** [free_frame t f] returns [f] to the pool. Double frees are rejected. *)
val free_frame : t -> int -> unit

(** Reads and writes take physical byte addresses. Accesses must stay
    within one frame ([read_u8] .. [read_u64] never straddle frames in the
    simulator; callers split at frame boundaries). Unallocated frames read
    as zero and are materialised on write. *)

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int32
val read_u64 : t -> int -> int64
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int32 -> unit
val write_u64 : t -> int -> int64 -> unit

(** Bulk transfer helpers (may straddle frames). *)
val blit_to_bytes : t -> src:int -> dst:bytes -> dst_off:int -> len:int -> unit
val blit_of_bytes : t -> src:bytes -> src_off:int -> dst:int -> len:int -> unit

(** [copy t ~src ~dst ~len] copies between physical ranges. *)
val copy : t -> src:int -> dst:int -> len:int -> unit
