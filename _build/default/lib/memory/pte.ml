module Ia32 = struct
  type t = int32

  type attrs = {
    present : bool;
    writable : bool;
    user : bool;
    write_through : bool;
    cache_disable : bool;
    accessed : bool;
    dirty : bool;
    frame : int;
  }

  let absent = 0l

  let bit b v pos = if b then Int32.logor v (Int32.shift_left 1l pos) else v

  let make a =
    if a.frame < 0 || a.frame > 0xFFFFF then invalid_arg "Pte.Ia32.make: frame";
    let v = Int32.shift_left (Int32.of_int a.frame) 12 in
    let v = bit a.present v 0 in
    let v = bit a.writable v 1 in
    let v = bit a.user v 2 in
    let v = bit a.write_through v 3 in
    let v = bit a.cache_disable v 4 in
    let v = bit a.accessed v 5 in
    let v = bit a.dirty v 6 in
    v

  let test v pos = Int32.logand (Int32.shift_right_logical v pos) 1l = 1l

  let decode v =
    {
      present = test v 0;
      writable = test v 1;
      user = test v 2;
      write_through = test v 3;
      cache_disable = test v 4;
      accessed = test v 5;
      dirty = test v 6;
      frame = Int32.to_int (Int32.shift_right_logical v 12) land 0xFFFFF;
    }

  let present v = test v 0
  let frame v = Int32.to_int (Int32.shift_right_logical v 12) land 0xFFFFF
  let with_accessed v = Int32.logor v 0x20l
  let with_dirty v = Int32.logor v 0x40l

  let pp fmt v =
    let a = decode v in
    Format.fprintf fmt "ia32-pte{frame=%#x%s%s%s%s%s%s%s}" a.frame
      (if a.present then " P" else " !P")
      (if a.writable then " RW" else "")
      (if a.user then " US" else "")
      (if a.write_through then " PWT" else "")
      (if a.cache_disable then " PCD" else "")
      (if a.accessed then " A" else "")
      (if a.dirty then " D" else "")
end

module X3k = struct
  type t = int64
  type cache_type = Uncached | Write_combining | Write_back
  type tiling = Linear | Tiled_x | Tiled_y

  type attrs = {
    valid : bool;
    cache : cache_type;
    tiling : tiling;
    write_enable : bool;
    frame : int;
  }

  let absent = 0L

  let cache_code = function
    | Uncached -> 0
    | Write_combining -> 1
    | Write_back -> 2

  let cache_of_code = function
    | 0 -> Uncached
    | 1 -> Write_combining
    | 2 -> Write_back
    | c -> invalid_arg (Printf.sprintf "Pte.X3k: cache code %d" c)

  let tiling_code = function Linear -> 0 | Tiled_x -> 1 | Tiled_y -> 2

  let tiling_of_code = function
    | 0 -> Linear
    | 1 -> Tiled_x
    | 2 -> Tiled_y
    | c -> invalid_arg (Printf.sprintf "Pte.X3k: tiling code %d" c)

  let make a =
    if a.frame < 0 || a.frame > 0xFFFFFFF then invalid_arg "Pte.X3k.make: frame";
    let open Exochi_util.Bits in
    let v = 0L in
    let v = insert64 v ~hi:0 ~lo:0 (if a.valid then 1L else 0L) in
    let v = insert64 v ~hi:2 ~lo:1 (Int64.of_int (cache_code a.cache)) in
    let v = insert64 v ~hi:4 ~lo:3 (Int64.of_int (tiling_code a.tiling)) in
    let v = insert64 v ~hi:5 ~lo:5 (if a.write_enable then 1L else 0L) in
    insert64 v ~hi:39 ~lo:12 (Int64.of_int a.frame)

  let decode v =
    let open Exochi_util.Bits in
    {
      valid = extract64 v ~hi:0 ~lo:0 = 1L;
      cache = cache_of_code (Int64.to_int (extract64 v ~hi:2 ~lo:1));
      tiling = tiling_of_code (Int64.to_int (extract64 v ~hi:4 ~lo:3));
      write_enable = extract64 v ~hi:5 ~lo:5 = 1L;
      frame = Int64.to_int (extract64 v ~hi:39 ~lo:12);
    }

  let valid v = Int64.logand v 1L = 1L
  let frame v = Int64.to_int (Exochi_util.Bits.extract64 v ~hi:39 ~lo:12)

  let pp fmt v =
    let a = decode v in
    Format.fprintf fmt "x3k-pte{frame=%#x%s cache=%s tiling=%s%s}" a.frame
      (if a.valid then " V" else " !V")
      (match a.cache with
      | Uncached -> "UC"
      | Write_combining -> "WC"
      | Write_back -> "WB")
      (match a.tiling with Linear -> "lin" | Tiled_x -> "X" | Tiled_y -> "Y")
      (if a.write_enable then " WE" else "")
end

let transcode ia32 ~tiling =
  if not (Ia32.present ia32) then X3k.absent
  else begin
    let a = Ia32.decode ia32 in
    let cache =
      if a.cache_disable then X3k.Uncached
      else if a.write_through then X3k.Write_combining
      else X3k.Write_back
    in
    X3k.make
      {
        X3k.valid = true;
        cache;
        tiling;
        write_enable = a.writable;
        frame = a.frame;
      }
  end

let transcode_back x3k =
  if not (X3k.valid x3k) then Ia32.absent
  else begin
    let a = X3k.decode x3k in
    if a.frame > 0xFFFFF then
      invalid_arg "Pte.transcode_back: frame exceeds IA32 range";
    Ia32.make
      {
        Ia32.present = true;
        writable = a.write_enable;
        user = true;
        write_through = (a.cache = X3k.Write_combining);
        cache_disable = (a.cache = X3k.Uncached);
        accessed = false;
        dirty = false;
        frame = a.frame;
      }
  end
