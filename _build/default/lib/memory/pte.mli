(** Page-table-entry formats for the two sequencer families, and the
    address-translation-remapping (ATR) transcoder between them.

    The whole point of ATR (paper §3.2) is that the exo-sequencer's TLB
    consumes a *different* entry format than the IA32 page table stores, so
    the IA32 proxy handler must transcode entries before inserting them into
    the exo TLB. We model two concrete formats:

    - IA32 format: 32-bit, x86-style bit layout (P/RW/US/PWT/PCD/A/D, frame
      in bits 31:12).
    - X3K format: 64-bit, GPU-driver-style layout (valid, cache type,
      tiling mode, write enable, frame in bits 39:12).

    The layouts genuinely differ (width, bit positions, attribute
    vocabulary), so [transcode] performs real work. *)

(** {1 IA32 page-table entries} *)

module Ia32 : sig
  type t = int32

  type attrs = {
    present : bool;
    writable : bool;
    user : bool;
    write_through : bool;
    cache_disable : bool;
    accessed : bool;
    dirty : bool;
    frame : int; (* physical frame number, 20 bits *)
  }

  val absent : t

  (** [make attrs] packs an entry. Frame numbers wider than 20 bits are
      rejected. *)
  val make : attrs -> t

  val decode : t -> attrs
  val present : t -> bool
  val frame : t -> int

  (** Set the accessed / dirty bits (used by the walker on access). *)
  val with_accessed : t -> t

  val with_dirty : t -> t
  val pp : Format.formatter -> t -> unit
end

(** {1 X3K (accelerator) page-table entries} *)

module X3k : sig
  type t = int64

  type cache_type = Uncached | Write_combining | Write_back
  type tiling = Linear | Tiled_x | Tiled_y

  type attrs = {
    valid : bool;
    cache : cache_type;
    tiling : tiling;
    write_enable : bool;
    frame : int; (* physical frame number, 28 bits *)
  }

  val absent : t
  val make : attrs -> t
  val decode : t -> attrs
  val valid : t -> bool
  val frame : t -> int
  val pp : Format.formatter -> t -> unit
end

(** {1 ATR transcoding} *)

(** [transcode ia32 ~tiling] rewrites an IA32 entry into the accelerator
    format: present → valid, RW → write-enable, PCD/PWT → cache type
    (PCD → uncached, PWT alone → write-combining, neither → write-back),
    frame carried across. [tiling] comes from the surface descriptor of the
    page's owning surface (the IA32 format has no tiling notion — this is
    precisely the information mismatch ATR bridges).
    Returns [X3k.absent] when the entry is not present. *)
val transcode : Ia32.t -> tiling:X3k.tiling -> X3k.t

(** [transcode_back x3k] recovers the IA32-visible attribute subset, used
    by collaborative exception handling when the proxy needs an IA32 view
    of an accelerator mapping. Tiling is dropped (IA32 cannot express it);
    accessed/dirty are cleared. *)
val transcode_back : X3k.t -> Ia32.t
