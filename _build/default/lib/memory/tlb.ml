type 'a entry = { payload : 'a; mutable last_use : int }

type 'a t = {
  capacity : int;
  table : (int, 'a entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~entries =
  if entries <= 0 then invalid_arg "Tlb.create";
  { capacity = entries; table = Hashtbl.create entries; tick = 0; hits = 0; misses = 0 }

let capacity t = t.capacity

let lookup t ~vpage =
  t.tick <- t.tick + 1;
  match Hashtbl.find_opt t.table vpage with
  | Some e ->
    e.last_use <- t.tick;
    t.hits <- t.hits + 1;
    Some e.payload
  | None ->
    t.misses <- t.misses + 1;
    None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun vpage e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | _ -> Some (vpage, e.last_use))
      t.table None
  in
  match victim with
  | Some (vpage, _) -> Hashtbl.remove t.table vpage
  | None -> ()

let insert t ~vpage payload =
  t.tick <- t.tick + 1;
  if (not (Hashtbl.mem t.table vpage)) && Hashtbl.length t.table >= t.capacity
  then evict_lru t;
  Hashtbl.replace t.table vpage { payload; last_use = t.tick }

let invalidate t ~vpage = Hashtbl.remove t.table vpage
let flush t = Hashtbl.reset t.table
let occupancy t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0
