(** A small fully-associative TLB with LRU replacement, generic in the
    entry payload so the CPU side can cache IA32 PTEs and the accelerator
    side can cache X3K-format entries. *)

type 'a t

(** [create ~entries] builds an empty TLB. [entries] must be positive. *)
val create : entries:int -> 'a t

val capacity : 'a t -> int

(** [lookup t ~vpage] returns the payload and refreshes LRU state. *)
val lookup : 'a t -> vpage:int -> 'a option

(** [insert t ~vpage payload] fills an entry, evicting the least recently
    used one when full. Re-inserting an existing vpage replaces it. *)
val insert : 'a t -> vpage:int -> 'a -> unit

(** [invalidate t ~vpage] drops one translation. *)
val invalidate : 'a t -> vpage:int -> unit

(** [flush t] drops everything (e.g. on context switch). *)
val flush : 'a t -> unit

val occupancy : 'a t -> int

(** Hit/miss counters ([lookup] that returns [Some]/[None]). *)
val hits : 'a t -> int

val misses : 'a t -> int
val reset_stats : 'a t -> unit
