lib/util/bits.mli:
