lib/util/prng.mli:
