lib/util/stats.mli:
