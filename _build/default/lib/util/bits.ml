let extract64 v ~hi ~lo =
  assert (0 <= lo && lo <= hi && hi < 64);
  let width = hi - lo + 1 in
  let shifted = Int64.shift_right_logical v lo in
  if width = 64 then shifted
  else Int64.logand shifted (Int64.sub (Int64.shift_left 1L width) 1L)

let insert64 v ~hi ~lo field =
  assert (0 <= lo && lo <= hi && hi < 64);
  let width = hi - lo + 1 in
  let mask =
    if width = 64 then -1L else Int64.sub (Int64.shift_left 1L width) 1L
  in
  if Int64.logand field (Int64.lognot mask) <> 0L then
    invalid_arg "Bits.insert64: field wider than hi..lo";
  let cleared = Int64.logand v (Int64.lognot (Int64.shift_left mask lo)) in
  Int64.logor cleared (Int64.shift_left field lo)

let extract32 v ~hi ~lo =
  assert (0 <= lo && lo <= hi && hi < 32);
  let width = hi - lo + 1 in
  (v lsr lo) land ((1 lsl width) - 1)

let insert32 v ~hi ~lo field =
  assert (0 <= lo && lo <= hi && hi < 32);
  let width = hi - lo + 1 in
  let mask = (1 lsl width) - 1 in
  if field land lnot mask <> 0 then
    invalid_arg "Bits.insert32: field wider than hi..lo";
  (v land lnot (mask lsl lo)) lor (field lsl lo)

let test_bit v i = (v lsr i) land 1 = 1
let set_bit v i b = if b then v lor (1 lsl i) else v land lnot (1 lsl i)

let sign_extend v ~bits =
  assert (bits > 0 && bits < 63);
  let shift = Sys.int_size - bits in
  (v lsl shift) asr shift

let popcount v =
  let rec go acc v = if v = 0 then acc else go (acc + (v land 1)) (v lsr 1) in
  go 0 v

let is_pow2 v = v > 0 && v land (v - 1) = 0

let align_up v a =
  assert (is_pow2 a);
  (v + a - 1) land lnot (a - 1)

let log2 v =
  assert (is_pow2 v);
  let rec go acc v = if v = 1 then acc else go (acc + 1) (v lsr 1) in
  go 0 v
