(** Bit-field extraction and insertion helpers used by the page-table-entry
    formats and the instruction encoders. All fields are described as
    [(hi, lo)] inclusive bit positions, matching hardware datasheet style. *)

(** [extract64 v ~hi ~lo] reads bits [hi..lo] of [v] as an unsigned value.
    Requires [0 <= lo <= hi < 64]. *)
val extract64 : int64 -> hi:int -> lo:int -> int64

(** [insert64 v ~hi ~lo field] writes [field] into bits [hi..lo] of [v].
    Bits of [field] above the field width are rejected with
    [Invalid_argument]. *)
val insert64 : int64 -> hi:int -> lo:int -> int64 -> int64

(** [extract32 v ~hi ~lo] reads bits [hi..lo] of a 32-bit value held in an
    [int]. *)
val extract32 : int -> hi:int -> lo:int -> int

(** [insert32 v ~hi ~lo field] writes [field] into bits [hi..lo]. *)
val insert32 : int -> hi:int -> lo:int -> int -> int

(** [test_bit v i] is bit [i] of [v]. *)
val test_bit : int -> int -> bool

(** [set_bit v i b] sets bit [i] of [v] to [b]. *)
val set_bit : int -> int -> bool -> int

(** Sign-extend the low [bits] bits of [v]. *)
val sign_extend : int -> bits:int -> int

(** Number of set bits in the low 62 bits. *)
val popcount : int -> int

(** [align_up v a] rounds [v] up to a multiple of [a] (a power of two). *)
val align_up : int -> int -> int

(** [is_pow2 v] holds when [v] is a positive power of two. *)
val is_pow2 : int -> bool

(** Base-2 logarithm of a power of two. *)
val log2 : int -> int
