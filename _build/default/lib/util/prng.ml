type t = { mutable state : int64 }

let create seed = { state = seed }

(* splitmix64: tiny state, passes BigCrush, and trivially splittable. *)
let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (Int64.shift_right_logical (next64 t) 2) in
  v mod bound

let float t =
  let v = Int64.to_float (Int64.shift_right_logical (next64 t) 11) in
  v /. 9007199254740992.0 (* 2^53 *)

let byte t = int t 256

let gaussian t ~mean ~sigma =
  (* Box-Muller; guard against log 0. *)
  let u1 = max 1e-12 (float t) and u2 = float t in
  let r = sqrt (-2.0 *. log u1) in
  mean +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let split t = create (next64 t)
