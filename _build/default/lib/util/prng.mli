(** Deterministic pseudo-random number generation.

    All synthetic workload content (images, video, noise) is produced from
    this splitmix64-based generator so that every run of the test and
    benchmark suites sees bit-identical inputs. *)

type t

(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)
val create : int64 -> t

(** Next raw 64-bit value. *)
val next64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)
val int : t -> int -> int

(** Uniform float in [\[0, 1)]. *)
val float : t -> float

(** [byte t] is uniform in [\[0, 255\]]. *)
val byte : t -> int

(** Gaussian sample (Box-Muller) with the given mean and standard
    deviation. *)
val gaussian : t -> mean:float -> sigma:float -> float

(** [split t] derives an independent generator; the parent advances. *)
val split : t -> t
