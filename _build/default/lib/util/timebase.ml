type clock = { mhz : int; ps_per_cycle : int }

let clock ~mhz =
  if mhz <= 0 || mhz > 1_000_000 then invalid_arg "Timebase.clock";
  (* 1 MHz -> 1_000_000 ps/cycle. Round to nearest picosecond; at 2.4 GHz
     the error is below 0.12%, far inside the model's accuracy. *)
  { mhz; ps_per_cycle = (1_000_000 + (mhz / 2)) / mhz }

let mhz c = c.mhz
let ps_per_cycle c = c.ps_per_cycle
let cycles_to_ps c n = n * c.ps_per_cycle
let ps_to_cycles c ps = (ps + c.ps_per_cycle - 1) / c.ps_per_cycle

let transfer_ps ~bytes ~gbps =
  if gbps <= 0.0 then invalid_arg "Timebase.transfer_ps";
  (* bytes / (gbps * 1e9 B/s) seconds = bytes / gbps ns = 1000*bytes/gbps ps *)
  int_of_float (ceil (1000.0 *. float_of_int bytes /. gbps))

let pp_ps fmt ps =
  let f = float_of_int ps in
  if ps < 1_000 then Format.fprintf fmt "%d ps" ps
  else if ps < 1_000_000 then Format.fprintf fmt "%.2f ns" (f /. 1e3)
  else if ps < 1_000_000_000 then Format.fprintf fmt "%.2f us" (f /. 1e6)
  else if f < 1e12 then Format.fprintf fmt "%.2f ms" (f /. 1e9)
  else Format.fprintf fmt "%.3f s" (f /. 1e12)
