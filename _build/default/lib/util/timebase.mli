(** Clock-domain arithmetic.

    The simulated platform runs two clock domains — the CPU sequencer
    (2.4 GHz in the prototype) and the accelerator (667 MHz class) — plus
    bandwidth-priced operations such as data copies. All cross-domain
    comparison happens on a single global timeline in picoseconds. *)

(** A clock domain: frequency in MHz. *)
type clock

val clock : mhz:int -> clock
val mhz : clock -> int

(** Picoseconds per cycle of this clock. *)
val ps_per_cycle : clock -> int

(** [cycles_to_ps c n] is the duration of [n] cycles. *)
val cycles_to_ps : clock -> int -> int

(** [ps_to_cycles c ps] rounds up to whole cycles. *)
val ps_to_cycles : clock -> int -> int

(** [transfer_ps ~bytes ~gbps] is the time to move [bytes] at [gbps]
    (decimal gigabytes per second), rounded up to a picosecond. *)
val transfer_ps : bytes:int -> gbps:float -> int

(** Pretty-print a picosecond duration with an adaptive unit. *)
val pp_ps : Format.formatter -> int -> unit
