test/test_accel.ml: Address_space Alcotest Array Buffer Bus Exochi_accel Exochi_isa Exochi_memory Float Int32 List Page_table Phys_mem Printf Pte QCheck QCheck_alcotest Surface X3k_asm X3k_ast
