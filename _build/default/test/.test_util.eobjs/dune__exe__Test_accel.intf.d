test/test_accel.mli:
