test/test_chilite.mli:
