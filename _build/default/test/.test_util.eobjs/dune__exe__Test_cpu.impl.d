test/test_cpu.ml: Address_space Alcotest Bus Exochi_cpu Exochi_isa Exochi_memory Int32 List Phys_mem Printf Via32_asm Via32_ast
