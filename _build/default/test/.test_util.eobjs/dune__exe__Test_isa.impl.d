test/test_isa.ml: Alcotest Array Asm_lexer Astring Exochi_isa Gen Int32 List Loc QCheck QCheck_alcotest Via32_asm Via32_ast X3k_asm X3k_ast X3k_check
