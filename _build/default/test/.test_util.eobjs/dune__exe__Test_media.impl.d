test/test_media.ml: Address_space Alcotest Array Exochi_media Exochi_memory Exochi_util Image List Phys_mem QCheck QCheck_alcotest Surface
