test/test_media.mli:
