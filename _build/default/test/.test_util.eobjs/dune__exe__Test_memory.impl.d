test/test_memory.ml: Address_space Alcotest Bus Bytes Cache Char Exochi_memory Hashtbl List Option Page_table Phys_mem Pte QCheck QCheck_alcotest Surface Tlb
