test/test_util.ml: Alcotest Bits Exochi_util Int64 Prng QCheck QCheck_alcotest Stats Timebase
