open Exochi_memory
open Exochi_isa
module Machine = Exochi_cpu.Machine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i32 = Alcotest.(check int32)

(* Build a machine with a data buffer bound to symbol DATA and a stack. *)
let setup () =
  let mem = Phys_mem.create ~frames:1024 in
  let aspace = Address_space.create mem in
  let bus = Bus.create ~gbps:8.0 ~latency_ps:90_000 in
  let cpu = Machine.create ~aspace ~bus () in
  let data = Address_space.alloc aspace ~name:"DATA" ~bytes:8192 ~align:64 in
  let stack = Address_space.alloc aspace ~name:"stack" ~bytes:8192 ~align:4096 in
  Machine.set_reg cpu Via32_ast.ESP (Int32.of_int (stack + 8000));
  (cpu, aspace, data)

let run_src ?(intrinsics = fun n _ -> failwith n) cpu data src =
  let prog = Via32_asm.assemble_exn ~name:"t" src in
  let loaded = Machine.load_program prog ~symbols:[ ("DATA", data) ] in
  match Machine.run cpu loaded ~entry:0 ~intrinsics with
  | Machine.Halted | Machine.Ret_to_host -> ()
  | _ -> Alcotest.fail "unexpected stop reason"

let eax cpu = Machine.get_reg cpu Via32_ast.EAX

(* ---- scalar semantics ---- *)

let test_arith () =
  let cpu, _, data = setup () in
  run_src cpu data
    {|
  mov.d eax, 10
  mov.d ebx, 3
  imul eax, ebx
  sub eax, 5
  sdiv eax, 4
  hlt
|};
  check_i32 "(((10*3)-5)/4)" 6l (eax cpu)

let test_srem_and_neg () =
  let cpu, _, data = setup () in
  run_src cpu data "  mov.d eax, -17\n  srem eax, 5\n  hlt\n";
  check_i32 "-17 rem 5" (-2l) (eax cpu)

let test_shifts () =
  let cpu, _, data = setup () in
  run_src cpu data
    "  mov.d eax, -64\n  sar eax, 2\n  mov.d ebx, -64\n  shr ebx, 28\n  hlt\n";
  check_i32 "sar" (-16l) (eax cpu);
  check_i32 "shr" 15l (Machine.get_reg cpu Via32_ast.EBX)

let test_flags_jcc_matrix () =
  let cpu, _, data = setup () in
  (* count how many conditions hold for (3, 5) *)
  run_src cpu data
    {|
  mov.d eax, 0
  cmp ebx, 5
  jl a1
  jmp a2
a1:
  add eax, 1
a2:
  cmp ebx, 5
  jge b1
  jmp b2
b1:
  add eax, 100
b2:
  hlt
|};
  (* ebx = 0 initially: 0 < 5 -> +1; 0 >= 5 false *)
  check_i32 "jl taken, jge not" 1l (eax cpu)

let test_unsigned_conditions () =
  let cpu, _, data = setup () in
  run_src cpu data
    {|
  mov.d ebx, -1
  mov.d eax, 0
  cmp ebx, 1
  ja yes
  jmp fin
yes:
  mov.d eax, 1
fin:
  hlt
|};
  check_i32 "-1 unsigned above 1" 1l (eax cpu)

let test_setcc () =
  let cpu, _, data = setup () in
  run_src cpu data "  cmp eax, 0\n  sete ebx\n  setne ecx\n  hlt\n";
  check_i32 "sete" 1l (Machine.get_reg cpu Via32_ast.EBX);
  check_i32 "setne" 0l (Machine.get_reg cpu Via32_ast.ECX)

let test_push_pop_call_ret () =
  let cpu, _, data = setup () in
  run_src cpu data
    {|
  mov.d eax, 5
  push eax
  mov.d eax, 0
  call double_top
  pop ebx
  hlt
double_top:
  ; internal calls keep return addresses off the memory stack, so the
  ; caller's argument sits right at [esp]
  mov.d ecx, esp
  mov.d eax, [ecx]
  imul eax, 2
  mov.d [ecx], eax
  ret
|};
  check_i32 "popped doubled value" 10l (Machine.get_reg cpu Via32_ast.EBX)

let test_lea () =
  let cpu, _, data = setup () in
  run_src cpu data "  mov.d ebx, 7\n  lea eax, [ebx + ebx*4 + 3]\n  hlt\n";
  check_i32 "lea" 38l (eax cpu)

let test_memory_sizes () =
  let cpu, aspace, data = setup () in
  run_src cpu data
    {|
  mov.d eax, -2
  mov.b [DATA], eax
  mov.w [DATA + 2], eax
  mov.d [DATA + 4], eax
  hlt
|};
  check_int "byte truncated" 0xFE (Address_space.read_u8 aspace data);
  check_int "word truncated" 0xFFFE (Address_space.read_u16 aspace (data + 2));
  check_i32 "dword" (-2l) (Address_space.read_u32 aspace (data + 4))

let test_movsx () =
  let cpu, aspace, data = setup () in
  Address_space.write_u8 aspace data 0x80;
  run_src cpu data "  movsx.b eax, [DATA]\n  mov.d ebx, [DATA]\n  hlt\n";
  check_i32 "sign extended" (-128l) (eax cpu)

(* ---- SIMD ---- *)

let test_simd_int_ops () =
  let cpu, aspace, data = setup () in
  for i = 0 to 3 do
    Address_space.write_u32 aspace (data + (4 * i)) (Int32.of_int (i + 1));
    Address_space.write_u32 aspace (data + 16 + (4 * i)) (Int32.of_int (10 * (i + 1)))
  done;
  run_src cpu data
    {|
  movdqu xmm0, [DATA]
  movdqu xmm1, [DATA + 16]
  paddd xmm0, xmm1
  pmulld xmm0, xmm0
  movdqu [DATA + 32], xmm0
  hlt
|};
  for i = 0 to 3 do
    let v = (i + 1) + (10 * (i + 1)) in
    check_i32
      (Printf.sprintf "lane %d" i)
      (Int32.of_int (v * v))
      (Address_space.read_u32 aspace (data + 32 + (4 * i)))
  done

let test_pavgb_bytes () =
  let cpu, aspace, data = setup () in
  Address_space.write_u32 aspace data 0xFF00FF00l;
  Address_space.write_u32 aspace (data + 16) 0x00FF00FFl;
  run_src cpu data
    {|
  movdqu xmm0, [DATA]
  movdqu xmm1, [DATA + 16]
  pavgb xmm0, xmm1
  movdqu [DATA + 32], xmm0
  hlt
|};
  (* every byte pair averages (0xFF + 0x00 + 1) >> 1 = 0x80 *)
  check_i32 "per-byte averages" 0x80808080l
    (Address_space.read_u32 aspace (data + 32))

let test_pcmpgtd_blend () =
  let cpu, aspace, data = setup () in
  List.iteri
    (fun i v -> Address_space.write_u32 aspace (data + (4 * i)) v)
    [ 5l; 50l; 5l; 50l ];
  (* threshold 10 *)
  List.iteri
    (fun i v -> Address_space.write_u32 aspace (data + 16 + (4 * i)) v)
    [ 10l; 10l; 10l; 10l ];
  run_src cpu data
    {|
  movdqu xmm0, [DATA + 16]
  pcmpgtd xmm0, [DATA]
  movdqu [DATA + 32], xmm0
  hlt
|};
  check_i32 "gt" 0xFFFFFFFFl (Address_space.read_u32 aspace (data + 32));
  check_i32 "not gt" 0l (Address_space.read_u32 aspace (data + 36))

let test_psadd_phaddd () =
  let cpu, aspace, data = setup () in
  List.iteri
    (fun i v -> Address_space.write_u32 aspace (data + (4 * i)) v)
    [ 1l; 2l; 3l; 4l ];
  List.iteri
    (fun i v -> Address_space.write_u32 aspace (data + 16 + (4 * i)) v)
    [ 4l; 3l; 2l; 1l ];
  run_src cpu data
    {|
  movdqu xmm0, [DATA]
  psadd xmm0, [DATA + 16]
  movd eax, xmm0
  movdqu xmm1, [DATA]
  phaddd xmm1, xmm1
  movd ebx, xmm1
  hlt
|};
  check_i32 "sad = 3+1+1+3" 8l (eax cpu);
  check_i32 "hadd = 10" 10l (Machine.get_reg cpu Via32_ast.EBX)

let test_pshufd_broadcast () =
  let cpu, _, data = setup () in
  run_src cpu data
    {|
  mov.d eax, 42
  movd xmm0, eax
  pshufd xmm1, xmm0, 0
  pshufd xmm2, xmm1, 27
  movdqu [DATA], xmm1
  hlt
|};
  let _ = data in
  ()

let test_packus_saturation () =
  let cpu, aspace, data = setup () in
  List.iteri
    (fun i v -> Address_space.write_u32 aspace (data + (4 * i)) v)
    [ -5l; 300l; 128l; 0l ];
  run_src cpu data
    "  movdqu xmm0, [DATA]\n  packus xmm0, xmm0\n  movdqu [DATA + 16], xmm0\n  hlt\n";
  List.iteri
    (fun i expect ->
      check_i32
        (Printf.sprintf "lane %d" i)
        expect
        (Address_space.read_u32 aspace (data + 16 + (4 * i))))
    [ 0l; 255l; 128l; 0l ]

let test_float_ops () =
  let cpu, aspace, data = setup () in
  List.iteri
    (fun i v ->
      Address_space.write_u32 aspace (data + (4 * i)) (Int32.bits_of_float v))
    [ 1.0; 4.0; 9.0; 16.0 ];
  run_src cpu data
    "  movdqu xmm0, [DATA]\n  sqrtps xmm0, xmm0\n  cvtps2dq xmm0, xmm0\n  movdqu [DATA + 16], xmm0\n  hlt\n";
  List.iteri
    (fun i expect ->
      check_i32
        (Printf.sprintf "sqrt lane %d" i)
        expect
        (Address_space.read_u32 aspace (data + 16 + (4 * i))))
    [ 1l; 2l; 3l; 4l ]

let test_movmskps () =
  let cpu, aspace, data = setup () in
  List.iteri
    (fun i v -> Address_space.write_u32 aspace (data + (4 * i)) v)
    [ -1l; 1l; -5l; 7l ];
  run_src cpu data "  movdqu xmm0, [DATA]\n  movmskps eax, xmm0\n  hlt\n";
  check_i32 "sign mask" 0b0101l (eax cpu)

(* ---- machinery ---- *)

let test_intrinsics_dispatch () =
  let cpu, _, data = setup () in
  let called = ref [] in
  run_src
    ~intrinsics:(fun name cpu ->
      called := name :: !called;
      Machine.set_reg cpu Via32_ast.EAX 99l)
    cpu data "  call chi_special\n  hlt\n";
  check_bool "intrinsic called" true (!called = [ "chi_special" ]);
  check_i32 "intrinsic mutated state" 99l (eax cpu)

let test_unbound_symbol_rejected () =
  let cpu, _, _ = setup () in
  let prog = Via32_asm.assemble_exn ~name:"t" "  mov.d eax, [NOPE]\n  hlt\n" in
  check_bool "raises" true
    (try
       ignore (Machine.load_program prog ~symbols:[]);
       ignore cpu;
       false
     with Machine.Unbound_symbol "NOPE" -> true)

let test_fuel_exhaustion () =
  let cpu, _, data = setup () in
  let prog = Via32_asm.assemble_exn ~name:"t" "spin:\n  jmp spin\n" in
  let loaded = Machine.load_program prog ~symbols:[ ("DATA", data) ] in
  match Machine.run ~fuel:1000 cpu loaded ~entry:0 ~intrinsics:(fun _ _ -> ())
  with
  | Machine.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "expected fuel exhaustion"

let test_pause_resume () =
  let cpu, _, data = setup () in
  let prog =
    Via32_asm.assemble_exn ~name:"t"
      "  mov.d eax, 1\n  add eax, 1\n  add eax, 1\n  hlt\n"
  in
  let loaded = Machine.load_program prog ~symbols:[ ("DATA", data) ] in
  let hits = ref 0 in
  let on_instr _ ~pc = if pc = 2 && !hits = 0 then (incr hits; `Pause) else `Continue in
  (match Machine.run ~on_instr cpu loaded ~entry:0 ~intrinsics:(fun _ _ -> ()) with
  | Machine.Paused 2 -> ()
  | _ -> Alcotest.fail "expected pause at pc 2");
  check_i32 "state at pause" 2l (eax cpu);
  (match Machine.run cpu loaded ~entry:2 ~intrinsics:(fun _ _ -> ()) with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "resume");
  check_i32 "finished" 3l (eax cpu)

let test_time_advances () =
  let cpu, _, data = setup () in
  let t0 = Machine.now_ps cpu in
  run_src cpu data "  mov.d eax, 0\nl:\n  add eax, 1\n  cmp eax, 1000\n  jl l\n  hlt\n";
  check_bool "time advanced" true (Machine.now_ps cpu > t0);
  check_bool "instructions counted" true (Machine.instructions_retired cpu >= 3000)

let test_overhead_folded_in () =
  let cpu, _, data = setup () in
  Machine.add_overhead_ps cpu 1_000_000;
  let t0 = Machine.now_ps cpu in
  run_src cpu data "  hlt\n";
  check_bool "overhead charged before next instr" true
    (Machine.now_ps cpu - t0 >= 1_000_000)

let () =
  Alcotest.run "cpu"
    [
      ( "scalar",
        [
          Alcotest.test_case "arith" `Quick test_arith;
          Alcotest.test_case "srem/neg" `Quick test_srem_and_neg;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "jcc" `Quick test_flags_jcc_matrix;
          Alcotest.test_case "unsigned cc" `Quick test_unsigned_conditions;
          Alcotest.test_case "setcc" `Quick test_setcc;
          Alcotest.test_case "push/pop/call/ret" `Quick test_push_pop_call_ret;
          Alcotest.test_case "lea" `Quick test_lea;
          Alcotest.test_case "memory sizes" `Quick test_memory_sizes;
          Alcotest.test_case "movsx" `Quick test_movsx;
        ] );
      ( "simd",
        [
          Alcotest.test_case "int ops" `Quick test_simd_int_ops;
          Alcotest.test_case "pavgb" `Quick test_pavgb_bytes;
          Alcotest.test_case "pcmpgtd" `Quick test_pcmpgtd_blend;
          Alcotest.test_case "psadd/phaddd" `Quick test_psadd_phaddd;
          Alcotest.test_case "pshufd" `Quick test_pshufd_broadcast;
          Alcotest.test_case "packus" `Quick test_packus_saturation;
          Alcotest.test_case "float" `Quick test_float_ops;
          Alcotest.test_case "movmskps" `Quick test_movmskps;
        ] );
      ( "machinery",
        [
          Alcotest.test_case "intrinsics" `Quick test_intrinsics_dispatch;
          Alcotest.test_case "unbound symbol" `Quick test_unbound_symbol_rejected;
          Alcotest.test_case "fuel" `Quick test_fuel_exhaustion;
          Alcotest.test_case "pause/resume" `Quick test_pause_resume;
          Alcotest.test_case "time advances" `Quick test_time_advances;
          Alcotest.test_case "overhead" `Quick test_overhead_folded_in;
        ] );
    ]
