(* Every Table 2 kernel, executed on both simulated targets and compared
   bit-for-bit with the golden OCaml reference. Video kernels run with a
   short frame count to keep the suite fast; the full lengths run in the
   benchmark harness. *)

open Exochi_kernels
module Image = Exochi_media.Image

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let frames_for (k : Kernel.t) =
  match k.abbrev with "FMD" -> Some 6 | _ -> Some 3

let gpu_case (k : Kernel.t) () =
  let r = Harness.run ?frames:(frames_for k) k Kernel.Small in
  check_int (k.abbrev ^ " exo-sequencer output exact") 0 r.max_diff;
  check_bool "correct" true r.correct;
  check_bool "shreds ran" true (r.shreds > 0)

let cpu_case (k : Kernel.t) () =
  let r =
    Harness.run ?frames:(frames_for k) ~split:Harness.All_cpu k Kernel.Small
  in
  check_int (k.abbrev ^ " IA32 output exact") 0 r.max_diff;
  check_bool "no shreds on cpu path" true (r.shreds = 0)

let coop_case (k : Kernel.t) () =
  let r =
    Harness.run ?frames:(frames_for k) ~split:(Harness.Cooperative 0.3) k
      Kernel.Small
  in
  check_int (k.abbrev ^ " cooperative output exact") 0 r.max_diff

let memmodel_case (k : Kernel.t) mm () =
  let r = Harness.run ?frames:(frames_for k) ~memmodel:mm k Kernel.Small in
  check_int (k.abbrev ^ " output exact") 0 r.max_diff;
  check_int "no protocol violations" 0 r.protocol_violations

(* Table 2 shred counts at paper sizes *)
let shred_count_case (k : Kernel.t) scale () =
  let io =
    k.make_io
      ?frames:(match k.abbrev with "FMD" -> Some 60 | _ -> Some 30)
      (Exochi_util.Prng.create 1L) scale
  in
  let paper = k.table2_shreds scale in
  let delta = abs (io.Kernel.units - paper) in
  check_bool
    (Printf.sprintf "%s units %d within 2%% of paper %d" k.abbrev
       io.Kernel.units paper)
    true
    (100 * delta <= 2 * paper)

(* FMD cadence detection finds an injected 3:2 pulldown *)
let test_fmd_cadence_detection () =
  let prng = Exochi_util.Prng.create 11L in
  let frames = 30 in
  let base =
    Image.synthetic_video prng ~width:720 ~height:480 ~frames:12 Image.Natural
  in
  (* telecine: repeat source frames in a 2:3 pattern *)
  let pulldown =
    Image.init ~width:720 ~height:(480 * frames) (fun ~x ~y ->
        let f = y / 480 and py = y mod 480 in
        let src = f * 12 / frames in
        Image.get base ~x ~y:((src * 480) + py))
  in
  let io =
    {
      Kernel.wl_desc = "pulldown";
      inputs = [ ("F", pulldown) ];
      outputs = [ ("MET", 2, (frames - 2) * 22) ];
      units = (frames - 2) * 22;
      meta =
        [ ("w", 720); ("h", 480); ("frames", frames); ("pairs", frames - 2);
          ("bpp:MET", 4) ];
    }
  in
  let metrics = List.assoc "MET" (Fmd.kernel.Kernel.golden io) in
  match Fmd.detect_cadence metrics ~pairs:(frames - 2) with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a cadence to be detected"

let test_fmd_no_cadence_on_plain_video () =
  let prng = Exochi_util.Prng.create 12L in
  let io = Fmd.kernel.Kernel.make_io ~frames:30 prng Kernel.Small in
  let metrics = List.assoc "MET" (Fmd.kernel.Kernel.golden io) in
  check_bool "no false positive" true
    (Fmd.detect_cadence metrics ~pairs:28 = None)

(* deterministic workloads: same seed, same golden *)
let test_workloads_deterministic () =
  List.iter
    (fun (k : Kernel.t) ->
      let io1 = k.make_io ?frames:(frames_for k) (Exochi_util.Prng.create 5L) Kernel.Small in
      let io2 = k.make_io ?frames:(frames_for k) (Exochi_util.Prng.create 5L) Kernel.Small in
      List.iter2
        (fun (n1, p1) (n2, p2) ->
          check_bool (k.abbrev ^ " input " ^ n1) true
            (n1 = n2 && Image.equal p1 p2))
        io1.Kernel.inputs io2.Kernel.inputs)
    Registry.all

(* The whole stack on tiled surfaces: SepiaTone's accelerator code uses
   2-D surface addressing, so re-homing its six planes onto Y-tiled
   surfaces must not change a single pixel. ATR picks the tiling up from
   the descriptor registry when transcoding PTEs. *)
let test_kernel_on_tiled_surfaces () =
  let open Exochi_core in
  let open Exochi_memory in
  let k = Sepia.kernel in
  let io = k.Kernel.make_io (Exochi_util.Prng.create 21L) Kernel.Small in
  (* shrink: crop every plane to 64x64 to keep the test quick *)
  let crop img = Image.crop img ~x:0 ~y:0 ~width:64 ~height:64 in
  let io =
    {
      io with
      Kernel.inputs = List.map (fun (n, p) -> (n, crop p)) io.Kernel.inputs;
      outputs = List.map (fun (n, _, _) -> (n, 64, 64)) io.Kernel.outputs;
      units = 64 / 8 * (64 / 8);
      meta = [ ("w", 64); ("h", 64); ("bw", 8) ];
    }
  in
  let platform = Exo_platform.create () in
  let rt = Chi_runtime.create ~platform () in
  let aspace = Exo_platform.aspace platform in
  let mk name mode img_opt =
    let pitch = Surface.required_pitch ~width:64 ~bpp:1 ~tiling:Surface.Tiled_y in
    let base =
      Address_space.alloc aspace ~name ~bytes:(pitch * 64 * 2) ~align:4096
    in
    let d =
      Chi_descriptor.alloc platform ~name ~base ~width:64 ~height:64
        ~tiling:Surface.Tiled_y ~mode ()
    in
    Option.iter (fun img -> Image.store aspace img ~surface:d.Chi_descriptor.surface) img_opt;
    d
  in
  let descs =
    List.map
      (fun (n, img) -> mk n Chi_descriptor.Input (Some img))
      io.Kernel.inputs
    @ List.map (fun (n, _, _) -> mk n Chi_descriptor.Output None) io.Kernel.outputs
  in
  let prog =
    Exochi_isa.X3k_asm.assemble_exn ~name:"sepia" (k.Kernel.x3k_asm io)
  in
  ignore
    (Chi_runtime.parallel rt ~prog ~descriptors:descs ~num_threads:io.Kernel.units
       ~params:(k.Kernel.unit_params io) ~master_nowait:false ());
  let golden = k.Kernel.golden io in
  List.iter
    (fun (name, expected) ->
      let d =
        List.find
          (fun d -> d.Chi_descriptor.surface.Surface.name = name)
          descs
      in
      let got = Image.load aspace ~surface:d.Chi_descriptor.surface in
      check_int (name ^ " tiled output exact") 0 (Image.max_abs_diff expected got))
    golden

let test_registry_complete () =
  check_int "ten kernels" 10 (List.length Registry.all);
  check_bool "lookup" true (Registry.find "bob" <> None);
  check_bool "case insensitive" true (Registry.find "LINEARFILTER" <> None);
  check_bool "missing" true (Registry.find "nope" = None)

let () =
  let per_kernel =
    List.concat_map
      (fun (k : Kernel.t) ->
        [
          Alcotest.test_case (k.Kernel.abbrev ^ " on exo-sequencers") `Slow
            (gpu_case k);
          Alcotest.test_case (k.Kernel.abbrev ^ " on IA32") `Slow (cpu_case k);
        ])
      Registry.all
  in
  let coop =
    List.map
      (fun (k : Kernel.t) ->
        Alcotest.test_case (k.Kernel.abbrev ^ " cooperative") `Slow (coop_case k))
      [ Linear_filter.kernel; Bob.kernel ]
  in
  let memmodels =
    List.concat_map
      (fun (k : Kernel.t) ->
        [
          Alcotest.test_case (k.Kernel.abbrev ^ " non-cc") `Slow
            (memmodel_case k Exochi_memory.Memmodel.Non_cc_shared);
          Alcotest.test_case (k.Kernel.abbrev ^ " data-copy") `Slow
            (memmodel_case k Exochi_memory.Memmodel.Data_copy);
        ])
      [ Linear_filter.kernel; Advdi.kernel ]
  in
  let shred_counts =
    List.concat_map
      (fun (k : Kernel.t) ->
        List.map
          (fun scale ->
            Alcotest.test_case
              (k.Kernel.abbrev ^ " table2 shreds") `Quick
              (shred_count_case k scale))
          k.Kernel.scales)
      Registry.all
  in
  Alcotest.run "kernels"
    [
      ("golden-vs-targets", per_kernel);
      ("cooperative", coop);
      ("memory-models", memmodels);
      ("table2", shred_counts);
      ( "fmd-cadence",
        [
          Alcotest.test_case "detects pulldown" `Slow test_fmd_cadence_detection;
          Alcotest.test_case "no false positive" `Slow test_fmd_no_cadence_on_plain_video;
        ] );
      ( "misc",
        [
          Alcotest.test_case "deterministic workloads" `Quick test_workloads_deterministic;
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "tiled surfaces end-to-end" `Quick
            test_kernel_on_tiled_surfaces;
        ] );
    ]
