open Exochi_media
open Exochi_memory
module Prng = Exochi_util.Prng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_init_get_set () =
  let p = Image.init ~width:8 ~height:4 (fun ~x ~y -> (10 * y) + x) in
  check_int "get" 23 (Image.get p ~x:3 ~y:2);
  Image.set p ~x:3 ~y:2 99;
  check_int "set" 99 (Image.get p ~x:3 ~y:2)

let test_bounds () =
  let p = Image.create ~width:4 ~height:4 in
  check_bool "oob raises" true
    (try
       ignore (Image.get p ~x:4 ~y:0);
       false
     with Invalid_argument _ -> true)

let test_clamped () =
  let p = Image.init ~width:4 ~height:4 (fun ~x ~y -> (10 * y) + x) in
  check_int "clamp left" 0 (Image.get_clamped p ~x:(-5) ~y:0);
  check_int "clamp corner" 33 (Image.get_clamped p ~x:99 ~y:99)

let test_pad_replicates () =
  let p = Image.init ~width:3 ~height:3 (fun ~x ~y -> (10 * y) + x) in
  let q = Image.pad p ~margin:2 in
  check_int "dims" 7 q.Image.width;
  check_int "corner replicated" 0 (Image.get q ~x:0 ~y:0);
  check_int "centre preserved" 11 (Image.get q ~x:3 ~y:3);
  check_int "bottom-right replicated" 22 (Image.get q ~x:6 ~y:6)

let test_crop () =
  let p = Image.init ~width:8 ~height:8 (fun ~x ~y -> (10 * y) + x) in
  let c = Image.crop p ~x:2 ~y:3 ~width:3 ~height:2 in
  check_int "crop origin" 32 (Image.get c ~x:0 ~y:0);
  check_int "crop extent" 44 (Image.get c ~x:2 ~y:1)

let test_synthetic_deterministic () =
  let a = Image.synthetic (Prng.create 5L) ~width:32 ~height:32 Image.Natural in
  let b = Image.synthetic (Prng.create 5L) ~width:32 ~height:32 Image.Natural in
  check_bool "same seed same image" true (Image.equal a b);
  let c = Image.synthetic (Prng.create 6L) ~width:32 ~height:32 Image.Natural in
  check_bool "different seed differs" false (Image.equal a c)

let test_synthetic_in_byte_range () =
  List.iter
    (fun content ->
      let p = Image.synthetic (Prng.create 9L) ~width:40 ~height:20 content in
      Array.iter
        (fun v -> check_bool "0..255" true (v >= 0 && v <= 255))
        p.Image.data)
    [ Image.Gradient; Image.Noise; Image.Natural; Image.Checker 4 ]

let test_video_pans () =
  let v = Image.synthetic_video (Prng.create 1L) ~width:16 ~height:8 ~frames:3 Image.Natural in
  check_int "stacked height" 24 v.Image.height;
  (* frame 1 shifted two px right of frame 0 *)
  check_int "pan" (Image.get v ~x:2 ~y:1) (Image.get v ~x:0 ~y:(8 + 0))

let test_psnr () =
  let a = Image.init ~width:8 ~height:8 (fun ~x:_ ~y:_ -> 100) in
  let b = Image.init ~width:8 ~height:8 (fun ~x:_ ~y:_ -> 100) in
  check_bool "identical is infinite" true (Image.psnr a b = infinity);
  Image.set b ~x:0 ~y:0 101;
  check_bool "near-identical is high" true (Image.psnr a b > 40.0);
  check_int "max abs diff" 1 (Image.max_abs_diff a b)

let surface_roundtrip tiling bpp =
  let mem = Phys_mem.create ~frames:1024 in
  let aspace = Address_space.create mem in
  let p = Image.synthetic (Prng.create 3L) ~width:100 ~height:20 Image.Noise in
  let s =
    Surface.make ~id:1 ~name:"s"
      ~base:(Address_space.alloc aspace ~name:"s" ~bytes:(1 lsl 16) ~align:4096)
      ~width:100 ~height:20 ~bpp ~tiling ~mode:Surface.In_out
  in
  Image.store aspace p ~surface:s;
  let q = Image.load aspace ~surface:s in
  Alcotest.(check bool) "roundtrip" true (Image.equal p q)

let test_surface_roundtrips () =
  surface_roundtrip Surface.Linear 1;
  surface_roundtrip Surface.Linear 2;
  surface_roundtrip Surface.Linear 4;
  surface_roundtrip Surface.Tiled_x 1;
  surface_roundtrip Surface.Tiled_y 1

let prop_store_load_linear =
  QCheck.Test.make ~name:"store/load roundtrip random sizes" ~count:40
    QCheck.(pair (int_range 1 64) (int_range 1 32))
    (fun (w, h) ->
      let mem = Phys_mem.create ~frames:512 in
      let aspace = Address_space.create mem in
      let p = Image.synthetic (Prng.create 7L) ~width:w ~height:h Image.Noise in
      let s =
        Surface.make ~id:1 ~name:"s"
          ~base:(Address_space.alloc aspace ~name:"s" ~bytes:(1 lsl 14) ~align:64)
          ~width:w ~height:h ~bpp:1 ~tiling:Surface.Linear ~mode:Surface.In_out
      in
      Image.store aspace p ~surface:s;
      Image.equal p (Image.load aspace ~surface:s))

let () =
  Alcotest.run "media"
    [
      ( "image",
        [
          Alcotest.test_case "init/get/set" `Quick test_init_get_set;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "clamped" `Quick test_clamped;
          Alcotest.test_case "pad" `Quick test_pad_replicates;
          Alcotest.test_case "crop" `Quick test_crop;
          Alcotest.test_case "synthetic deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "synthetic range" `Quick test_synthetic_in_byte_range;
          Alcotest.test_case "video pans" `Quick test_video_pans;
          Alcotest.test_case "psnr" `Quick test_psnr;
        ] );
      ( "surfaces",
        [
          Alcotest.test_case "roundtrips" `Quick test_surface_roundtrips;
          QCheck_alcotest.to_alcotest prop_store_load_linear;
        ] );
    ]
