open Exochi_memory

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- Phys_mem ---- *)

let test_phys_rw () =
  let m = Phys_mem.create ~frames:16 in
  Phys_mem.write_u32 m 0x1000 0xDEADBEEFl;
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Phys_mem.read_u32 m 0x1000);
  check_int "u8 low byte" 0xEF (Phys_mem.read_u8 m 0x1000);
  Phys_mem.write_u16 m 0x1004 0xABCD;
  check_int "u16" 0xABCD (Phys_mem.read_u16 m 0x1004);
  Phys_mem.write_u64 m 0x1008 0x0123456789ABCDEFL;
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Phys_mem.read_u64 m 0x1008)

let test_phys_unallocated_reads_zero () =
  let m = Phys_mem.create ~frames:16 in
  Alcotest.(check int32) "zero" 0l (Phys_mem.read_u32 m 0x3000)

let test_phys_alloc_exhaustion () =
  let m = Phys_mem.create ~frames:2 in
  ignore (Phys_mem.alloc_frame m);
  ignore (Phys_mem.alloc_frame m);
  Alcotest.check_raises "exhausted" Phys_mem.Out_of_memory_frames (fun () ->
      ignore (Phys_mem.alloc_frame m))

let test_phys_free_reuse () =
  let m = Phys_mem.create ~frames:2 in
  let a = Phys_mem.alloc_frame m in
  ignore (Phys_mem.alloc_frame m);
  Phys_mem.write_u32 m (a * 4096) 42l;
  Phys_mem.free_frame m a;
  let a' = Phys_mem.alloc_frame m in
  check_int "frame reused" a a';
  Alcotest.(check int32) "reused frame zeroed" 0l (Phys_mem.read_u32 m (a * 4096))

let test_phys_straddle_rejected () =
  let m = Phys_mem.create ~frames:16 in
  Alcotest.check_raises "straddle"
    (Invalid_argument "Phys_mem: access straddles a frame boundary") (fun () ->
      ignore (Phys_mem.read_u32 m 4094))

let test_phys_blit_roundtrip () =
  let m = Phys_mem.create ~frames:16 in
  let src = Bytes.of_string "hello, straddling world!" in
  Phys_mem.blit_of_bytes m ~src ~src_off:0 ~dst:4090 ~len:(Bytes.length src);
  let dst = Bytes.create (Bytes.length src) in
  Phys_mem.blit_to_bytes m ~src:4090 ~dst ~dst_off:0 ~len:(Bytes.length src);
  Alcotest.(check string) "roundtrip across frames" (Bytes.to_string src)
    (Bytes.to_string dst)

(* ---- Pte ---- *)

let prop_ia32_pte_roundtrip =
  QCheck.Test.make ~name:"ia32 pte make/decode roundtrip" ~count:500
    QCheck.(
      tup7 bool bool bool bool bool bool (int_bound 0xFFFFF))
    (fun (p, w, u, wt, cd, a, frame) ->
      let attrs =
        {
          Pte.Ia32.present = p;
          writable = w;
          user = u;
          write_through = wt;
          cache_disable = cd;
          accessed = a;
          dirty = false;
          frame;
        }
      in
      Pte.Ia32.decode (Pte.Ia32.make attrs) = attrs)

let prop_x3k_pte_roundtrip =
  QCheck.Test.make ~name:"x3k pte make/decode roundtrip" ~count:500
    QCheck.(
      tup4 bool (int_bound 2) (int_bound 2) (int_bound 0xFFFFFFF))
    (fun (v, cache, tiling, frame) ->
      let attrs =
        {
          Pte.X3k.valid = v;
          cache =
            (match cache with
            | 0 -> Pte.X3k.Uncached
            | 1 -> Pte.X3k.Write_combining
            | _ -> Pte.X3k.Write_back);
          tiling =
            (match tiling with
            | 0 -> Pte.X3k.Linear
            | 1 -> Pte.X3k.Tiled_x
            | _ -> Pte.X3k.Tiled_y);
          write_enable = true;
          frame;
        }
      in
      Pte.X3k.decode (Pte.X3k.make attrs) = attrs)

let test_transcode_semantics () =
  let ia32 =
    Pte.Ia32.make
      {
        Pte.Ia32.present = true;
        writable = true;
        user = true;
        write_through = false;
        cache_disable = false;
        accessed = false;
        dirty = false;
        frame = 0x4242;
      }
  in
  let x = Pte.transcode ia32 ~tiling:Pte.X3k.Tiled_y in
  let a = Pte.X3k.decode x in
  check_bool "valid" true a.Pte.X3k.valid;
  check_bool "write enable" true a.Pte.X3k.write_enable;
  check_int "frame carried" 0x4242 a.Pte.X3k.frame;
  check_bool "tiling from descriptor" true (a.Pte.X3k.tiling = Pte.X3k.Tiled_y);
  check_bool "cache WB" true (a.Pte.X3k.cache = Pte.X3k.Write_back)

let test_transcode_cache_mapping () =
  let mk ~wt ~cd =
    Pte.transcode
      (Pte.Ia32.make
         {
           Pte.Ia32.present = true;
           writable = false;
           user = true;
           write_through = wt;
           cache_disable = cd;
           accessed = false;
           dirty = false;
           frame = 1;
         })
      ~tiling:Pte.X3k.Linear
  in
  check_bool "PCD -> UC" true
    ((Pte.X3k.decode (mk ~wt:false ~cd:true)).Pte.X3k.cache = Pte.X3k.Uncached);
  check_bool "PWT -> WC" true
    ((Pte.X3k.decode (mk ~wt:true ~cd:false)).Pte.X3k.cache
    = Pte.X3k.Write_combining)

let test_transcode_absent () =
  check_bool "absent stays absent" true
    (Pte.transcode Pte.Ia32.absent ~tiling:Pte.X3k.Linear = Pte.X3k.absent)

let prop_transcode_back =
  QCheck.Test.make ~name:"transcode_back inverts frame+perm" ~count:200
    QCheck.(pair bool (int_bound 0xFFFFF))
    (fun (w, frame) ->
      let ia32 =
        Pte.Ia32.make
          {
            Pte.Ia32.present = true;
            writable = w;
            user = true;
            write_through = false;
            cache_disable = false;
            accessed = false;
            dirty = false;
            frame;
          }
      in
      let back = Pte.transcode_back (Pte.transcode ia32 ~tiling:Pte.X3k.Linear) in
      let a = Pte.Ia32.decode back in
      a.Pte.Ia32.frame = frame && a.Pte.Ia32.writable = w && a.Pte.Ia32.present)

(* ---- Page_table ---- *)

let mk_pte frame =
  Pte.Ia32.make
    {
      Pte.Ia32.present = true;
      writable = true;
      user = true;
      write_through = false;
      cache_disable = false;
      accessed = false;
      dirty = false;
      frame;
    }

let test_pt_map_walk () =
  let m = Phys_mem.create ~frames:64 in
  let pt = Page_table.create m in
  Page_table.map pt ~vpage:0x12345 ~pte:(mk_pte 77);
  (match Page_table.walk pt ~vpage:0x12345 with
  | Page_table.Mapped e -> check_int "frame" 77 (Pte.Ia32.frame e)
  | _ -> Alcotest.fail "expected mapped");
  check_bool "unmapped vpage" true (Page_table.walk pt ~vpage:0x54321 <> Page_table.Mapped Pte.Ia32.absent);
  (match Page_table.walk pt ~vpage:0x12346 with
  | Page_table.Not_present -> ()
  | Page_table.No_table -> Alcotest.fail "same table should exist"
  | _ -> Alcotest.fail "should be not present")

let test_pt_unmap () =
  let m = Phys_mem.create ~frames:64 in
  let pt = Page_table.create m in
  Page_table.map pt ~vpage:5 ~pte:(mk_pte 9);
  Page_table.unmap pt ~vpage:5;
  check_bool "unmapped" true (Page_table.walk pt ~vpage:5 = Page_table.Not_present)

let test_pt_translate_sets_bits () =
  let m = Phys_mem.create ~frames:64 in
  let pt = Page_table.create m in
  Page_table.map pt ~vpage:2 ~pte:(mk_pte 3);
  let pa = Page_table.translate ~set_dirty:true pt ~vaddr:0x2ABC in
  check_int "translation" ((3 * 4096) + 0xABC) (Option.get pa);
  match Page_table.walk pt ~vpage:2 with
  | Page_table.Mapped e ->
    let a = Pte.Ia32.decode e in
    check_bool "accessed" true a.Pte.Ia32.accessed;
    check_bool "dirty" true a.Pte.Ia32.dirty
  | _ -> Alcotest.fail "mapped"

let test_pt_walk_reads_counted () =
  let m = Phys_mem.create ~frames:64 in
  let pt = Page_table.create m in
  Page_table.map pt ~vpage:1 ~pte:(mk_pte 2);
  let before = Page_table.walk_reads pt in
  ignore (Page_table.walk pt ~vpage:1);
  check_bool "two-level walk costs reads" true (Page_table.walk_reads pt - before >= 2)

let test_pt_tables_live_in_phys_mem () =
  let m = Phys_mem.create ~frames:64 in
  let used0 = Phys_mem.frames_allocated m in
  let pt = Page_table.create m in
  Page_table.map pt ~vpage:0 ~pte:(mk_pte 1);
  check_bool "directory+table frames allocated" true
    (Phys_mem.frames_allocated m >= used0 + 2)

(* ---- Tlb ---- *)

let test_tlb_hit_miss () =
  let t = Tlb.create ~entries:4 in
  check_bool "miss" true (Tlb.lookup t ~vpage:1 = None);
  Tlb.insert t ~vpage:1 "a";
  check_bool "hit" true (Tlb.lookup t ~vpage:1 = Some "a");
  check_int "hits" 1 (Tlb.hits t);
  check_int "misses" 1 (Tlb.misses t)

let test_tlb_lru_eviction () =
  let t = Tlb.create ~entries:2 in
  Tlb.insert t ~vpage:1 1;
  Tlb.insert t ~vpage:2 2;
  ignore (Tlb.lookup t ~vpage:1);
  (* 2 is now LRU *)
  Tlb.insert t ~vpage:3 3;
  check_bool "1 kept" true (Tlb.lookup t ~vpage:1 = Some 1);
  check_bool "2 evicted" true (Tlb.lookup t ~vpage:2 = None);
  check_int "occupancy bounded" 2 (Tlb.occupancy t)

let test_tlb_invalidate_flush () =
  let t = Tlb.create ~entries:4 in
  Tlb.insert t ~vpage:1 1;
  Tlb.insert t ~vpage:2 2;
  Tlb.invalidate t ~vpage:1;
  check_bool "invalidated" true (Tlb.lookup t ~vpage:1 = None);
  Tlb.flush t;
  check_int "flushed" 0 (Tlb.occupancy t)

(* ---- Cache ---- *)

let test_cache_hit_after_fill () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  let r1 = Cache.access c ~addr:0 ~write:false in
  check_bool "first is miss" false r1.Cache.hit;
  let r2 = Cache.access c ~addr:32 ~write:false in
  check_bool "same line hits" true r2.Cache.hit

let test_cache_writeback_on_eviction () =
  (* 2-way, 8 sets: three lines mapping to set 0 force an eviction *)
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  let set_stride = 64 * 8 in
  ignore (Cache.access c ~addr:0 ~write:true);
  ignore (Cache.access c ~addr:set_stride ~write:false);
  let r = Cache.access c ~addr:(2 * set_stride) ~write:false in
  check_bool "dirty victim written back" true (r.Cache.writeback = Some 0)

let test_cache_flush_all () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  ignore (Cache.access c ~addr:0 ~write:true);
  ignore (Cache.access c ~addr:64 ~write:false);
  let dirty = Cache.flush_all c in
  check_int "one dirty line" 1 (List.length dirty);
  check_int "cache empty" 0 (Cache.valid_line_count c)

let test_cache_flush_range () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  ignore (Cache.access c ~addr:0 ~write:true);
  ignore (Cache.access c ~addr:512 ~write:true);
  let dirty = Cache.flush_range c ~addr:0 ~len:64 in
  check_int "only range flushed" 1 (List.length dirty);
  check_int "other line still dirty" 1 (Cache.dirty_line_count c)

let test_cache_snoop_and_probe () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  ignore (Cache.access c ~addr:0 ~write:true);
  check_bool "probe dirty" true (Cache.probe c ~line_addr:0 = `Dirty);
  check_bool "probe leaves state" true (Cache.probe c ~line_addr:0 = `Dirty);
  check_bool "snoop dirty" true (Cache.snoop c ~line_addr:0 = `Dirty);
  check_bool "snoop invalidates" true (Cache.probe c ~line_addr:0 = `Absent)

let test_cache_access_range_spanning () =
  let c = Cache.create ~name:"t" ~size_bytes:1024 ~line_bytes:64 ~ways:2 in
  let rs = Cache.access_range c ~addr:60 ~len:8 ~write:false in
  check_int "spans two lines" 2 (List.length rs)

(* ---- Bus ---- *)

let test_bus_serialises () =
  let b = Bus.create ~gbps:8.0 ~latency_ps:1000 in
  let t1 = Bus.request b ~now_ps:0 ~bytes:64 in
  let t2 = Bus.request b ~now_ps:0 ~bytes:64 in
  check_bool "second waits" true (t2 > t1);
  check_int "bytes accounted" 128 (Bus.total_bytes b)

let test_bus_latency_optional () =
  let b = Bus.create ~gbps:8.0 ~latency_ps:1000 in
  let t1 = Bus.request ~latency:false b ~now_ps:0 ~bytes:8 in
  check_int "transfer only" 1000 t1

(* ---- Surface ---- *)

let test_surface_linear_addr () =
  let s =
    Surface.make ~id:1 ~name:"s" ~base:0x1000 ~width:100 ~height:10 ~bpp:1
      ~tiling:Surface.Linear ~mode:Surface.Input
  in
  check_int "pitch aligned" 128 s.Surface.pitch;
  check_int "addr" (0x1000 + 128 + 5) (Surface.element_addr s ~x:5 ~y:1)

let test_surface_bounds_checked () =
  let s =
    Surface.make ~id:1 ~name:"s" ~base:0 ~width:10 ~height:10 ~bpp:1
      ~tiling:Surface.Linear ~mode:Surface.Input
  in
  check_bool "raises" true
    (try
       ignore (Surface.element_addr s ~x:10 ~y:0);
       false
     with Invalid_argument _ -> true)

let prop_tiled_bijective tiling name =
  QCheck.Test.make ~name ~count:300
    QCheck.(pair (int_bound 299) (int_bound 99))
    (fun (x, y) ->
      let s =
        Surface.make ~id:1 ~name:"t" ~base:0 ~width:300 ~height:100 ~bpp:1
          ~tiling ~mode:Surface.Input
      in
      let a = Surface.element_addr s ~x ~y in
      (* in range, and distinct from the left neighbour when one exists *)
      a >= 0
      && a < Surface.byte_size s
      && (x = 0 || a <> Surface.element_addr s ~x:(x - 1) ~y))

let test_surface_tiled_distinct_addresses () =
  (* exhaustive injectivity on a small tiled surface *)
  List.iter
    (fun tiling ->
      let s =
        Surface.make ~id:1 ~name:"t" ~base:0 ~width:140 ~height:40 ~bpp:1
          ~tiling ~mode:Surface.Input
      in
      let seen = Hashtbl.create 5600 in
      for y = 0 to 39 do
        for x = 0 to 139 do
          let a = Surface.element_addr s ~x ~y in
          check_bool "in backing range" true (a >= 0 && a < Surface.byte_size s);
          check_bool "no collision" false (Hashtbl.mem seen a);
          Hashtbl.replace seen a ()
        done
      done)
    [ Surface.Tiled_x; Surface.Tiled_y ]

let test_surface_contains () =
  let s =
    Surface.make ~id:1 ~name:"s" ~base:0x2000 ~width:64 ~height:4 ~bpp:4
      ~tiling:Surface.Linear ~mode:Surface.Output
  in
  check_bool "inside" true (Surface.contains s ~vaddr:0x2000);
  check_bool "outside" false (Surface.contains s ~vaddr:(0x2000 + Surface.byte_size s))

(* ---- Address_space ---- *)

let test_aspace_rw_roundtrip () =
  let m = Phys_mem.create ~frames:256 in
  let a = Address_space.create m in
  let base = Address_space.alloc a ~name:"buf" ~bytes:10000 ~align:64 in
  Address_space.write_u32 a base 123456789l;
  Address_space.write_u32 a (base + 8000) 42l;
  Alcotest.(check int32) "near" 123456789l (Address_space.read_u32 a base);
  Alcotest.(check int32) "far page" 42l (Address_space.read_u32 a (base + 8000));
  check_bool "faults serviced" true (Address_space.minor_faults a >= 2)

let test_aspace_bytes_straddle_pages () =
  let m = Phys_mem.create ~frames:256 in
  let a = Address_space.create m in
  let base = Address_space.alloc a ~name:"buf" ~bytes:16384 ~align:4096 in
  let data = Bytes.init 5000 (fun i -> Char.chr (i land 0xff)) in
  Address_space.write_bytes a ~vaddr:(base + 3000) data;
  let got = Address_space.read_bytes a ~vaddr:(base + 3000) ~len:5000 in
  Alcotest.(check string) "straddling roundtrip" (Bytes.to_string data)
    (Bytes.to_string got)

let test_aspace_segfault () =
  let m = Phys_mem.create ~frames:256 in
  let a = Address_space.create m in
  check_bool "segfault outside regions" true
    (try
       ignore (Address_space.read_u8 a 0x500);
       false
     with Address_space.Segfault _ -> true)

let test_aspace_unaligned_u32 () =
  let m = Phys_mem.create ~frames:256 in
  let a = Address_space.create m in
  let base = Address_space.alloc a ~name:"b" ~bytes:8192 ~align:4096 in
  (* write a u32 straddling a page boundary *)
  Address_space.write_u32 a (base + 4094) 0x11223344l;
  Alcotest.(check int32) "straddled u32" 0x11223344l
    (Address_space.read_u32 a (base + 4094))

let () =
  Alcotest.run "memory"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "rw" `Quick test_phys_rw;
          Alcotest.test_case "unallocated zero" `Quick test_phys_unallocated_reads_zero;
          Alcotest.test_case "exhaustion" `Quick test_phys_alloc_exhaustion;
          Alcotest.test_case "free/reuse" `Quick test_phys_free_reuse;
          Alcotest.test_case "straddle rejected" `Quick test_phys_straddle_rejected;
          Alcotest.test_case "blit roundtrip" `Quick test_phys_blit_roundtrip;
        ] );
      ( "pte",
        [
          QCheck_alcotest.to_alcotest prop_ia32_pte_roundtrip;
          QCheck_alcotest.to_alcotest prop_x3k_pte_roundtrip;
          Alcotest.test_case "transcode semantics" `Quick test_transcode_semantics;
          Alcotest.test_case "cache mapping" `Quick test_transcode_cache_mapping;
          Alcotest.test_case "absent" `Quick test_transcode_absent;
          QCheck_alcotest.to_alcotest prop_transcode_back;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "map/walk" `Quick test_pt_map_walk;
          Alcotest.test_case "unmap" `Quick test_pt_unmap;
          Alcotest.test_case "translate sets A/D" `Quick test_pt_translate_sets_bits;
          Alcotest.test_case "walk reads counted" `Quick test_pt_walk_reads_counted;
          Alcotest.test_case "tables in phys mem" `Quick test_pt_tables_live_in_phys_mem;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "lru eviction" `Quick test_tlb_lru_eviction;
          Alcotest.test_case "invalidate/flush" `Quick test_tlb_invalidate_flush;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit after fill" `Quick test_cache_hit_after_fill;
          Alcotest.test_case "writeback on eviction" `Quick test_cache_writeback_on_eviction;
          Alcotest.test_case "flush all" `Quick test_cache_flush_all;
          Alcotest.test_case "flush range" `Quick test_cache_flush_range;
          Alcotest.test_case "snoop/probe" `Quick test_cache_snoop_and_probe;
          Alcotest.test_case "range spanning" `Quick test_cache_access_range_spanning;
        ] );
      ( "bus",
        [
          Alcotest.test_case "serialises" `Quick test_bus_serialises;
          Alcotest.test_case "latency optional" `Quick test_bus_latency_optional;
        ] );
      ( "surface",
        [
          Alcotest.test_case "linear addressing" `Quick test_surface_linear_addr;
          Alcotest.test_case "bounds" `Quick test_surface_bounds_checked;
          QCheck_alcotest.to_alcotest (prop_tiled_bijective Surface.Tiled_x "tiledX sane");
          QCheck_alcotest.to_alcotest (prop_tiled_bijective Surface.Tiled_y "tiledY sane");
          Alcotest.test_case "tiled injective" `Quick test_surface_tiled_distinct_addresses;
          Alcotest.test_case "contains" `Quick test_surface_contains;
        ] );
      ( "address_space",
        [
          Alcotest.test_case "rw roundtrip" `Quick test_aspace_rw_roundtrip;
          Alcotest.test_case "bytes straddle" `Quick test_aspace_bytes_straddle_pages;
          Alcotest.test_case "segfault" `Quick test_aspace_segfault;
          Alcotest.test_case "unaligned u32" `Quick test_aspace_unaligned_u32;
        ] );
    ]
