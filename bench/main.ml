(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) on the simulated EXO platform.

     dune exec bench/main.exe            -- everything, reduced video length
     dune exec bench/main.exe -- fig7    -- one experiment
     dune exec bench/main.exe -- --full  -- paper-sized workloads (slow)

   Experiments: table2 fig7 fig8 fig10 flush ablate-smt ablate-atr soak
   metrics lint opt scale micro ("metrics" writes BENCH_metrics.json;
   "lint" writes BENCH_lint.json; "opt" writes BENCH_opt.json; "scale"
   writes BENCH_scale.json and gates on the multi-device speedups).
   Absolute times are simulated-platform times; the reproduction target is
   the *shape* (who wins, by what factor, where the crossovers are). *)

open Exochi_kernels
module Memmodel = Exochi_memory.Memmodel

let line = String.make 78 '-'

type cfg = { frames : int; full : bool }

let header title =
  Printf.printf "\n%s\n%s\n%s\n" line title line

let ms ps = float_of_int ps /. 1e9

(* paper-reported speedups for Figure 7; starred values are given exactly
   in the text, the rest are read off the figure *)
let paper_fig7 =
  [
    ("LinearFilter", 5.5);
    ("SepiaTone", 4.2);
    ("FGT", 2.8);
    ("Bicubic", 10.97);
    ("Kalman", 6.2);
    ("FMD", 3.5);
    ("AlphaBlend", 8.5);
    ("BOB", 1.41);
    ("ADVDI", 7.5);
    ("ProcAmp", 4.6);
  ]

let scale_of cfg (k : Kernel.t) =
  if cfg.full && List.mem Kernel.Large k.scales then Kernel.Large
  else Kernel.Small

let frames_of cfg (k : Kernel.t) =
  (* image-only kernels ignore the frame count *)
  match k.abbrev with
  | "FMD" -> Some (max 12 (if cfg.full then 60 else 2 * cfg.frames))
  | _ -> Some (if cfg.full then 30 else cfg.frames)

(* ---- Table 2 ---- *)

let table2 cfg =
  header "Table 2: media-processing kernels (paper shred counts vs ours)";
  Printf.printf "%-14s %-34s %10s %10s\n" "Kernel" "Data size (at paper scale)"
    "paper" "ours";
  List.iter
    (fun (k : Kernel.t) ->
      List.iter
        (fun scale ->
          (* shred counts at the paper's data sizes (full frame counts) *)
          let io =
            k.make_io
              ?frames:(match k.abbrev with "FMD" -> Some 60 | _ -> Some 30)
              (Exochi_util.Prng.create 1L) scale
          in
          Printf.printf "%-14s %-34s %10d %10d\n" k.abbrev io.Kernel.wl_desc
            (k.table2_shreds scale) io.Kernel.units)
        k.scales)
    Registry.all;
  ignore cfg

(* ---- Figure 7 ---- *)

let fig7 cfg =
  header
    "Figure 7: speedup from execution on GMA X3000 exo-sequencers over the \
     IA32 sequencer";
  Printf.printf "%-14s %12s %12s %9s %9s  %s\n" "Kernel" "IA32" "X3000"
    "speedup" "paper" "check";
  let rows =
    List.map
      (fun (k : Kernel.t) ->
        let scale = scale_of cfg k in
        let frames = frames_of cfg k in
        let g = Harness.run ?frames k scale in
        let c = Harness.run ?frames ~split:Harness.All_cpu k scale in
        let speedup = float_of_int c.time_ps /. float_of_int g.time_ps in
        let paper = List.assoc k.abbrev paper_fig7 in
        Printf.printf "%-14s %10.3fms %10.3fms %8.2fx %8.2fx  %s\n%!" k.abbrev
          (ms c.time_ps) (ms g.time_ps) speedup paper
          (if g.correct && c.correct then "outputs-ok" else "OUTPUT-MISMATCH");
        (k.abbrev, speedup, paper))
      Registry.all
  in
  let ours = List.map (fun (_, s, _) -> s) rows in
  let paper = List.map (fun (_, _, p) -> p) rows in
  Printf.printf "\nrange: ours %.2fx..%.2fx (paper 1.41x..10.97x); geomean %.2fx (paper %.2fx)\n"
    (fst (Exochi_util.Stats.min_max ours))
    (snd (Exochi_util.Stats.min_max ours))
    (Exochi_util.Stats.geomean ours)
    (Exochi_util.Stats.geomean paper);
  let min_k, _, _ =
    List.fold_left
      (fun ((_, ms', _) as m) ((_, s, _) as r) -> if s < ms' then r else m)
      (List.hd rows) rows
  in
  let max_k, _, _ =
    List.fold_left
      (fun ((_, ms', _) as m) ((_, s, _) as r) -> if s > ms' then r else m)
      (List.hd rows) rows
  in
  Printf.printf "slowest win: %s (paper: BOB); biggest win: %s (paper: Bicubic)\n"
    min_k max_k

(* ---- Figure 8 ---- *)

let fig8 cfg =
  header
    "Figure 8: impact of data copying vs shared virtual address space \
     (relative to CC Shared)";
  Printf.printf "%-14s %12s %12s %12s %10s %10s\n" "Kernel" "DataCopy"
    "Non-CC" "CC" "copy/cc" "noncc/cc";
  let ratios =
    List.map
      (fun (k : Kernel.t) ->
        let scale = scale_of cfg k in
        let frames = frames_of cfg k in
        let run mm = Harness.run ?frames ~memmodel:mm k scale in
        let dc = run Memmodel.Data_copy in
        let ncc = run Memmodel.Non_cc_shared in
        let cc = run Memmodel.Cc_shared in
        assert (dc.correct && ncc.correct && cc.correct);
        let r_dc = float_of_int cc.time_ps /. float_of_int dc.time_ps in
        let r_ncc = float_of_int cc.time_ps /. float_of_int ncc.time_ps in
        Printf.printf "%-14s %10.3fms %10.3fms %10.3fms %9.1f%% %9.1f%%\n%!"
          k.abbrev (ms dc.time_ps) (ms ncc.time_ps) (ms cc.time_ps)
          (100.0 *. r_dc) (100.0 *. r_ncc);
        (r_dc, r_ncc))
      Registry.all
  in
  let dcs = List.map fst ratios and nccs = List.map snd ratios in
  Printf.printf
    "\naggregate: Data Copy achieves %.1f%% of CC (paper: 70.5%%); Non-CC \
     achieves %.1f%% (paper: 85.3%%)\n"
    (100.0 *. Exochi_util.Stats.mean dcs)
    (100.0 *. Exochi_util.Stats.mean nccs)

(* ---- Figure 10 ---- *)

let fig10 cfg =
  header
    "Figure 10: cooperative multi-shredding between the IA32 sequencer and \
     the exo-sequencers (time relative to IA32-alone)";
  Printf.printf "%-14s %9s %9s %9s %9s %9s %9s %11s\n" "Kernel" "gpu-only"
    "ia32-10%" "ia32-25%" "oracle" "dynamic" "o-frac" "gain-vs-gpu";
  List.iter
    (fun (k : Kernel.t) ->
      let scale = scale_of cfg k in
      let frames = frames_of cfg k in
      let g = Harness.run ?frames k scale in
      let c = Harness.run ?frames ~split:Harness.All_cpu k scale in
      let rel r = float_of_int r.Harness.time_ps /. float_of_int c.time_ps in
      let coop f = Harness.run ?frames ~split:(Harness.Cooperative f) k scale in
      let ofrac =
        Harness.oracle_fraction ~cpu_time:c.time_ps ~gpu_time:g.time_ps
      in
      let r10 = coop 0.10 and r25 = coop 0.25 in
      (* the paper's oracle is the *optimal* static division; interference
         on the shared bus makes the fraction predicted from isolated runs
         an over-estimate, so search a couple of candidates (0% = gpu-only
         is always a candidate) *)
      let candidates =
        [ g; coop ofrac; coop (0.6 *. ofrac) ]
      in
      let ror =
        List.fold_left
          (fun best r ->
            if r.Harness.time_ps < best.Harness.time_ps then r else best)
          (List.hd candidates) (List.tl candidates)
      in
      let dyn = Harness.run ?frames ~split:Harness.Dynamic k scale in
      assert (r10.correct && r25.correct && ror.correct && dyn.correct);
      let gain =
        100.0
        *. (float_of_int g.time_ps /. float_of_int ror.time_ps -. 1.0)
      in
      Printf.printf "%-14s %9.3f %9.3f %9.3f %9.3f %9.3f %9.2f %+10.1f%%\n%!"
        k.abbrev (rel g) (rel r10) (rel r25) (rel ror) (rel dyn) ofrac gain)
    Registry.all;
  Printf.printf
    "\npaper: BOB gains up to 38%% at the oracle partition, Bicubic only 8%%;\n\
     a bad static partition (e.g. 25%% for Bicubic) can lose to gpu-only.\n\
     'dynamic' is the self-scheduling policy of Section 5.3 (no a-priori \
     split).\n"

(* ---- intelligent cache flushing (Section 5.2 in-line experiment) ---- *)

let flush_ablation cfg =
  header
    "Flush ablation (Section 5.2): naive up-front flush vs interleaved \
     flushing, non-CC shared memory, LinearFilter";
  let k =
    match Registry.find "LinearFilter" with Some k -> k | None -> assert false
  in
  let scale = scale_of cfg k in
  let cc = Harness.run k scale in
  let cpu = Harness.run ~split:Harness.All_cpu k scale in
  let upfront =
    Harness.run ~memmodel:Memmodel.Non_cc_shared
      ~flush_policy:Exochi_core.Chi_runtime.Upfront_naive k scale
  in
  let inter =
    Harness.run ~memmodel:Memmodel.Non_cc_shared
      ~flush_policy:Exochi_core.Chi_runtime.Interleaved k scale
  in
  assert (cc.correct && cpu.correct && upfront.correct && inter.correct);
  let sp r = float_of_int cpu.Harness.time_ps /. float_of_int r.Harness.time_ps in
  Printf.printf "IA32 alone:          %10.3fms\n" (ms cpu.time_ps);
  Printf.printf "CC shared:           %10.3fms  speedup %.2fx\n" (ms cc.time_ps) (sp cc);
  Printf.printf "non-CC, naive 2GB/s: %10.3fms  speedup %.2fx (flushed %d KiB)\n"
    (ms upfront.time_ps) (sp upfront) (upfront.flush_bytes / 1024);
  Printf.printf "non-CC, interleaved: %10.3fms  speedup %.2fx (flushed %d KiB)\n"
    (ms inter.time_ps) (sp inter) (inter.flush_bytes / 1024);
  Printf.printf
    "paper: naive flush degraded LinearFilter to 3.15x; interleaving \
     recovers close to CC.\n";
  Printf.printf "protocol violations: upfront=%d interleaved=%d (must be 0)\n"
    upfront.protocol_violations inter.protocol_violations

(* ---- ablations ---- *)

let ablate_smt cfg =
  header "Ablation: switch-on-stall multithreading (LinearFilter, ADVDI)";
  List.iter
    (fun abbrev ->
      let k = Option.get (Registry.find abbrev) in
      let scale = scale_of cfg k in
      let frames = frames_of cfg k in
      let on = Harness.run ?frames k scale in
      let off =
        Harness.run ?frames
          ~gpu_config:
            { Exochi_accel.Gpu.default_config with switch_on_stall = false }
          k scale
      in
      Printf.printf
        "%-14s with SMT %8.3fms | without %8.3fms | fine-grained MT gives %.2fx\n%!"
        abbrev (ms on.time_ps) (ms off.time_ps)
        (float_of_int off.time_ps /. float_of_int on.time_ps))
    [ "LinearFilter"; "ADVDI" ]

let ablate_atr cfg =
  header "Ablation: exo TLB size / ATR pressure (SepiaTone)";
  let k = Option.get (Registry.find "SepiaTone") in
  let scale = scale_of cfg k in
  List.iter
    (fun entries ->
      let r =
        Harness.run
          ~gpu_config:{ Exochi_accel.Gpu.default_config with tlb_entries = entries }
          k scale
      in
      Printf.printf
        "tlb=%4d entries: %8.3fms  gtt-fetches=%d full-proxies=%d\n%!" entries
        (ms r.time_ps) r.gtt_hits r.atr_proxies)
    [ 8; 32; 128; 512 ];
  (* without the GTT shadow every exo TLB miss is a full user-level
     interrupt + page-walk + transcode proxy round trip on the CPU *)
  let lazy_atr =
    Harness.run ~gtt_enabled:false
      ~gpu_config:{ Exochi_accel.Gpu.default_config with tlb_entries = 32 }
      k scale
  in
  Printf.printf
    "tlb=  32, no GTT shadow (pure lazy ATR): %8.3fms  full-proxies=%d\n"
    (ms lazy_atr.time_ps) lazy_atr.atr_proxies

(* ---- fault-injection soak (robustness of self-healing dispatch) ---- *)

let soak cfg =
  header
    "Fault-injection soak: self-healing shred dispatch under per-class \
     fault rates (outputs must stay bit-correct)";
  let kernels =
    List.filter_map Registry.find [ "SepiaTone"; "LinearFilter"; "Bicubic" ]
  in
  let rates = [ 0.0; 0.002; 0.01 ] in
  Printf.printf "%-14s %7s %10s %8s %8s %6s %9s %7s %6s  %s\n" "Kernel" "rate"
    "time" "injected" "retries" "quar" "fallbacks" "recov" "fatal" "check";
  List.iter
    (fun (k : Kernel.t) ->
      let scale = scale_of cfg k in
      let frames = frames_of cfg k in
      let baseline = Harness.run ?frames k scale in
      List.iter
        (fun rate ->
          let fault_plan =
            Exochi_faults.Fault_plan.create ~seed:42L
              ~rates:(Exochi_faults.Fault_plan.uniform_rates rate)
              ()
          in
          let trace = Exochi_obs.Trace.create () in
          let r = Harness.run ?frames ~fault_plan ~trace k scale in
          assert r.correct;
          (* a disabled (all-zero-rate) plan must be free: the run is
             time-for-time identical to one with no plan installed *)
          if rate = 0.0 then begin
            assert (r.time_ps = baseline.time_ps);
            assert (r.faults_injected = 0 && r.retries = 0);
            assert (r.quarantined_seqs = 0 && r.fallback_shreds = 0)
          end;
          (* jittered backoff: shreds reaped in the same wave must not be
             re-released in lock-step (no release-time collisions) *)
          let release = Hashtbl.create 64 in
          List.iter
            (fun e ->
              match e.Exochi_obs.Trace.kind with
              | Exochi_obs.Trace.Redispatch { attempt; delay_ps; _ } ->
                let key =
                  (e.Exochi_obs.Trace.ts_ps, attempt,
                   e.Exochi_obs.Trace.ts_ps + delay_ps)
                in
                assert (not (Hashtbl.mem release key));
                Hashtbl.replace release key ()
              | _ -> ())
            (Exochi_obs.Trace.events trace);
          Printf.printf
            "%-14s %6.1f%% %8.3fms %8d %8d %6d %9d %7d %6d  %s\n%!" k.abbrev
            (100.0 *. rate) (ms r.time_ps) r.faults_injected r.retries
            r.quarantined_seqs r.fallback_shreds r.recovered_faults
            r.fatal_faults
            (if r.correct then "outputs-ok" else "OUTPUT-MISMATCH"))
        rates)
    kernels;
  Printf.printf
    "\nall runs bit-correct; zero-rate plans verified time-identical to \
     fault-free runs.\n"

(* ---- per-kernel observability metrics (Exo-trace aggregator) ---- *)

let metrics cfg =
  header
    "Per-kernel Exo-trace metrics (occupancy, shred latency, proxy \
     breakdowns) -> BENCH_metrics.json";
  Printf.printf "%-14s %8s %12s %12s %8s %8s %8s\n" "Kernel" "occup"
    "lat-p50" "lat-p99" "gtt" "proxy" "events";
  let rows =
    List.map
      (fun (k : Kernel.t) ->
        let scale = scale_of cfg k in
        let frames = frames_of cfg k in
        let sink = Exochi_obs.Trace.create () in
        let r = Harness.run ?frames ~trace:sink k scale in
        assert r.Harness.correct;
        let m = Exochi_obs.Metrics.of_sink sink in
        Printf.printf "%-14s %7.1f%% %10.3fms %10.3fms %8d %8d %8d\n%!"
          k.abbrev
          (100.0 *. m.Exochi_obs.Metrics.occupancy)
          (m.Exochi_obs.Metrics.lat_p50_ps /. 1e9)
          (m.Exochi_obs.Metrics.lat_p99_ps /. 1e9)
          m.Exochi_obs.Metrics.atr_gtt_hits.Exochi_obs.Metrics.count
          m.Exochi_obs.Metrics.atr_proxies.Exochi_obs.Metrics.count
          m.Exochi_obs.Metrics.events;
        Exochi_obs.Metrics.to_json
          ~extra:
            [
              ("kernel", Printf.sprintf "%S" k.abbrev);
              ("time_ps", string_of_int r.Harness.time_ps);
            ]
          m)
      Registry.all
  in
  let oc = open_out "BENCH_metrics.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i json ->
          output_string oc "  ";
          output_string oc json;
          if i < List.length rows - 1 then output_string oc ",";
          output_string oc "\n")
        rows;
      output_string oc "]\n");
  Printf.printf "\nwrote %d per-kernel metric record(s) to BENCH_metrics.json\n"
    (List.length rows)

(* ---- Exo-check analyzer throughput ---- *)

let count_lines s =
  (* non-empty trailing line counts *)
  let n = String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 s in
  if String.length s > 0 && s.[String.length s - 1] <> '\n' then n + 1 else n

let lint cfg =
  header
    "Exo-check throughput over the media-kernel sections -> BENCH_lint.json";
  Printf.printf "%-14s %8s %8s %6s %6s %10s %12s %12s %8s\n" "Kernel" "x3k-ln"
    "via-ln" "errs" "warns" "lint-us" "lines/sec" "bound-l/s" "slack";
  let module F = Exochi_analysis.Finding in
  let module E = Exochi_analysis.Exo_check in
  let module B = Exochi_analysis.Bound in
  let cycle_ps =
    Exochi_util.Timebase.ps_per_cycle
      (Exochi_util.Timebase.clock
         ~mhz:Exochi_accel.Gpu.default_config.Exochi_accel.Gpu.clock_mhz)
  in
  let rows =
    List.map
      (fun (k : Kernel.t) ->
        let scale = scale_of cfg k in
        let io =
          k.make_io ?frames:(frames_of cfg k)
            (Exochi_util.Prng.create 1L)
            scale
        in
        let x3k_src = k.x3k_asm io in
        let via_src = k.via32_asm io ~lo:0 ~hi:io.Kernel.units in
        let xp =
          Exochi_isa.X3k_asm.assemble_exn ~name:(k.abbrev ^ ".x3k") x3k_src
        in
        let vp =
          match Exochi_isa.Via32_asm.assemble ~name:(k.abbrev ^ ".s") via_src with
          | Ok p -> p
          | Error e -> failwith (Exochi_isa.Loc.error_to_string e)
        in
        let lint_once () = E.check_x3k xp @ E.check_via32 vp in
        let findings = lint_once () in
        (* the registry kernels must stay clean at error severity *)
        assert (not (F.has_errors findings));
        let lines = count_lines x3k_src + count_lines via_src in
        let reps = 50 in
        let t0 = Sys.time () in
        for _ = 1 to reps do
          ignore (lint_once ())
        done;
        let elapsed = Float.max (Sys.time () -. t0) 1e-9 in
        let per_lint_us = elapsed /. float_of_int reps *. 1e6 in
        let lps = float_of_int (lines * reps) /. elapsed in
        let errs = F.count F.Error findings
        and warns = F.count F.Warning findings in
        (* Exo-bound throughput and soundness slack: the interval env is
           the per-parameter min/max over every unit's launch vector *)
        let units = io.Kernel.units in
        let nparams = Array.length (k.unit_params io 0) in
        let plo = Array.copy (k.unit_params io 0) in
        let phi = Array.copy (k.unit_params io 0) in
        for u = 1 to units - 1 do
          Array.iteri
            (fun i v ->
              if v < plo.(i) then plo.(i) <- v;
              if v > phi.(i) then phi.(i) <- v)
            (k.unit_params io u)
        done;
        let env i =
          if i >= 0 && i < nparams then Some (plo.(i), phi.(i)) else None
        in
        let bound_once () =
          ignore (B.analyze_x3k ~env xp);
          ignore (B.analyze_via32 vp)
        in
        let b = B.analyze_x3k ~env xp in
        (* a registry kernel's bound must never regress to Unbounded *)
        (match b.B.verdict with
        | B.Unbounded ->
          failwith (k.abbrev ^ ": Exo-bound verdict regressed to Unbounded")
        | _ -> ());
        let bt0 = Sys.time () in
        for _ = 1 to reps do
          bound_once ()
        done;
        let belapsed = Float.max (Sys.time () -. bt0) 1e-9 in
        let bound_lps = float_of_int (lines * reps) /. belapsed in
        (* slack = static bound over measured fault-free busy time; >= 1.0
           whenever the bound is proven (the tier-1 soundness gate) *)
        let bound_cycles, bound_slack =
          match b.B.verdict with
          | B.Cycles c ->
            let r =
              Exochi_kernels.Harness.run ?frames:(frames_of cfg k)
                ~split:Exochi_kernels.Harness.All_gpu k scale
            in
            let static_ps = float_of_int (r.Exochi_kernels.Harness.shreds * c * cycle_ps) in
            ( Some c,
              Some
                (static_ps
                /. Float.max (float_of_int r.Exochi_kernels.Harness.gpu_busy_ps) 1.0) )
          | _ -> (None, None)
        in
        Printf.printf "%-14s %8d %8d %6d %6d %10.1f %12.0f %12.0f %8s\n%!"
          k.abbrev (count_lines x3k_src) (count_lines via_src) errs warns
          per_lint_us lps bound_lps
          (match bound_slack with
          | Some s -> Printf.sprintf "%.2fx" s
          | None -> "-");
        let module J = Exochi_obs.Tiny_json in
        J.Obj
          ([
             ("kernel", J.Str k.abbrev);
             ("x3k_lines", J.Num (float_of_int (count_lines x3k_src)));
             ("via32_lines", J.Num (float_of_int (count_lines via_src)));
             ("errors", J.Num (float_of_int errs));
             ("warnings", J.Num (float_of_int warns));
             ("lint_us", J.Num per_lint_us);
             ("lines_per_sec", J.Num lps);
             ("bound_lines_per_sec", J.Num bound_lps);
           ]
          @ (match bound_cycles with
            | Some c -> [ ("bound_cycles", J.Num (float_of_int c)) ]
            | None -> [])
          @
          match bound_slack with
          | Some s -> [ ("bound_slack", J.Num s) ]
          | None -> []))
      Registry.all
  in
  let module J = Exochi_obs.Tiny_json in
  let oc = open_out "BENCH_lint.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~indent:2 (J.Arr rows)));
  Printf.printf "\nwrote %d analyzer throughput record(s) to BENCH_lint.json\n"
    (List.length rows)

(* ---- Exo-serve: offered load vs throughput/latency ---- *)

let serve _cfg =
  header
    "Exo-serve: multi-tenant serving under offered load -> BENCH_serve.json";
  let module S = Exochi_serving in
  let seed = 42L in
  let run_one ?(static_admission = false) ~batch ~mode ~jobs ~deadline_slack_ps
      () =
    let config = { S.Server.default_config with batch; static_admission } in
    let server = S.Server.create ~config () in
    let spec =
      {
        (S.Workload.default_spec ~seed ~tenants:2 ~jobs mode) with
        deadline_slack_ps;
      }
    in
    S.Server.run server (S.Workload.create spec)
  in
  (* 1) closed-loop saturation measures the platform's serving capacity *)
  let cap_st =
    run_one ~batch:S.Batcher.default
      ~mode:(S.Workload.Closed { clients_per_tenant = 8; think_ps = 0 })
      ~jobs:240 ~deadline_slack_ps:None ()
  in
  let capacity = cap_st.S.Server_stats.throughput_jps in
  Printf.printf "closed-loop capacity: %.0f jobs/s (2 tenants, 16 clients)\n\n"
    capacity;
  Printf.printf "%-10s %10s %10s %10s %10s %10s %6s %6s %7s\n" "run"
    "offered" "tput" "p50-us" "p95-us" "p99-us" "done" "shed" "batches";
  let line label offered (st : S.Server_stats.t) =
    Printf.printf "%-10s %10.0f %10.0f %10.1f %10.1f %10.1f %6d %6d %7d\n%!"
      label offered st.S.Server_stats.throughput_jps
      (st.S.Server_stats.lat_p50_ps /. 1e6)
      (st.S.Server_stats.lat_p95_ps /. 1e6)
      (st.S.Server_stats.lat_p99_ps /. 1e6)
      st.S.Server_stats.completed st.S.Server_stats.shed
      st.S.Server_stats.batches
  in
  line "closed" capacity cap_st;
  (* 2) open loop at three offered-load levels, jobs batched per team *)
  let deadline = Some 1_000_000_000 (* 1 ms *) in
  let levels = [ 0.5; 1.0; 2.0 ] in
  let open_rows =
    List.map
      (fun mult ->
        let offered = mult *. capacity in
        let st =
          run_one ~batch:S.Batcher.default
            ~mode:(S.Workload.Open { rate_jps = offered })
            ~jobs:300 ~deadline_slack_ps:deadline ()
        in
        line (Printf.sprintf "open-%.1fx" mult) offered st;
        (Printf.sprintf "open-%.1fx" mult, offered, st))
      levels
  in
  (* 3) one-job-per-team baseline at the overload point: same workload,
     batching disabled — the gain from coalescing is the ratio *)
  let nobatch_st =
    run_one
      ~batch:{ S.Batcher.max_jobs = 1; max_shreds = S.Batcher.default.S.Batcher.max_shreds }
      ~mode:(S.Workload.Open { rate_jps = 2.0 *. capacity })
      ~jobs:300 ~deadline_slack_ps:deadline ()
  in
  line "no-batch" (2.0 *. capacity) nobatch_st;
  let batched_2x =
    match List.rev open_rows with (_, _, st) :: _ -> st | [] -> assert false
  in
  let gain =
    batched_2x.S.Server_stats.throughput_jps
    /. Float.max nobatch_st.S.Server_stats.throughput_jps 1e-9
  in
  Printf.printf
    "\nbatching gain at 2.0x offered load: %.2fx throughput (%.0f vs %.0f \
     jobs/s)\n"
    gain batched_2x.S.Server_stats.throughput_jps
    nobatch_st.S.Server_stats.throughput_jps;
  assert (
    batched_2x.S.Server_stats.throughput_jps
    > nobatch_st.S.Server_stats.throughput_jps);
  (* 4) the Exo-bound static admission gate at 1.0x load: with feasible
     deadlines it must shed nothing, so goodput stays within 2% of the
     analyzer-off baseline *)
  let adm_st =
    run_one ~static_admission:true ~batch:S.Batcher.default
      ~mode:(S.Workload.Open { rate_jps = capacity })
      ~jobs:300 ~deadline_slack_ps:deadline ()
  in
  line "adm-1.0x" capacity adm_st;
  let base_1x =
    match List.nth_opt open_rows 1 with
    | Some (_, _, st) -> st
    | None -> assert false
  in
  let adm_ratio =
    adm_st.S.Server_stats.goodput_jps
    /. Float.max base_1x.S.Server_stats.goodput_jps 1e-9
  in
  Printf.printf
    "\nstatic admission at 1.0x load: goodput %.0f vs %.0f jobs/s (%.3fx)\n"
    adm_st.S.Server_stats.goodput_jps base_1x.S.Server_stats.goodput_jps
    adm_ratio;
  assert (adm_ratio >= 0.98 && adm_ratio <= 1.02);
  let module J = Exochi_obs.Tiny_json in
  let row label offered (st : S.Server_stats.t) =
    J.Obj
      [
        ("run", J.Str label);
        ("mode", J.Str (if label = "closed" then "closed" else "open"));
        ("offered_jps", J.Num offered);
        ("throughput_jps", J.Num st.S.Server_stats.throughput_jps);
        ("goodput_jps", J.Num st.S.Server_stats.goodput_jps);
        ("lat_p50_ps", J.Num st.S.Server_stats.lat_p50_ps);
        ("lat_p95_ps", J.Num st.S.Server_stats.lat_p95_ps);
        ("lat_p99_ps", J.Num st.S.Server_stats.lat_p99_ps);
        ("completed", J.Num (float_of_int st.S.Server_stats.completed));
        ("shed", J.Num (float_of_int st.S.Server_stats.shed));
        ("batches", J.Num (float_of_int st.S.Server_stats.batches));
        ( "batch_jobs_mean",
          J.Num st.S.Server_stats.batch_jobs_mean );
      ]
  in
  let doc =
    J.Obj
      [
        ("seed", J.Num (Int64.to_float seed));
        ("tenants", J.Num 2.0);
        ("capacity_jps", J.Num capacity);
        ("batch_gain_2x", J.Num gain);
        ("static_admission_goodput_ratio", J.Num adm_ratio);
        ( "rows",
          J.Arr
            (row "closed" capacity cap_st
             :: List.map (fun (l, o, st) -> row l o st) open_rows
            @ [
                row "no-batch" (2.0 *. capacity) nobatch_st;
                row "adm-1.0x" capacity adm_st;
              ]) );
      ]
  in
  let oc = open_out "BENCH_serve.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~indent:2 doc ^ "\n"));
  Printf.printf "wrote %d serving record(s) to BENCH_serve.json\n"
    (3 + List.length open_rows)

(* ---- Exo-guard: serving resilience under faults ---- *)

let guard_bench _cfg =
  header
    "Exo-guard: goodput under faults x hedging x audits -> BENCH_guard.json";
  let module S = Exochi_serving in
  let seed = 42L in
  let jobs = 90 in
  let run_one ~rate ~hedge ~audit =
    let config =
      {
        S.Server.default_config with
        guard = Some { S.Server.g_audit_frac = audit };
        hedge_after_ps = (if hedge then 300_000_000 else 0);
        breaker_cooldown_ps = 500_000_000;
      }
    in
    (* a zero-rate plan perturbs nothing but still seeds the guard's
       deterministic audit stream, so audit cost shows up at rate 0 *)
    let fault_plan =
      Exochi_faults.Fault_plan.create ~seed:7L
        ~rates:(Exochi_faults.Fault_plan.uniform_rates rate) ()
    in
    let server = S.Server.create ~config ~fault_plan () in
    let spec =
      {
        (S.Workload.default_spec ~seed ~tenants:2 ~jobs
           (S.Workload.Closed { clients_per_tenant = 6; think_ps = 0 }))
        with
        deadline_slack_ps = Some 2_000_000_000 (* 2 ms *);
      }
    in
    S.Server.run server (S.Workload.create spec)
  in
  Printf.printf "%-8s %6s %6s %10s %10s %10s %5s %5s %5s %6s %6s\n" "rate"
    "hedge" "audit" "goodput" "tput" "p99-us" "sdc" "det" "hedges" "b-open"
    "b-close";
  let rows = ref [] in
  List.iter
    (fun rate ->
      List.iter
        (fun hedge ->
          List.iter
            (fun audit ->
              let st = run_one ~rate ~hedge ~audit in
              let r = st.S.Server_stats.recovery in
              Printf.printf
                "%-8g %6b %6.2f %10.0f %10.0f %10.1f %5d %5d %5d %6d %6d\n%!"
                rate hedge audit st.S.Server_stats.goodput_jps
                st.S.Server_stats.throughput_jps
                (st.S.Server_stats.lat_p99_ps /. 1e6)
                r.S.Server_stats.r_sdc_corrupted r.S.Server_stats.r_sdc_detected
                r.S.Server_stats.r_hedges r.S.Server_stats.r_breaker_opens
                r.S.Server_stats.r_breaker_closes;
              assert (
                r.S.Server_stats.r_sdc_detected
                = r.S.Server_stats.r_sdc_corrupted);
              rows := ((rate, hedge, audit), st) :: !rows)
            [ 0.0; 0.05; 0.2 ])
        [ false; true ])
    [ 0.0; 1e-4; 1e-3 ];
  let rows = List.rev !rows in
  let find rate hedge audit =
    snd (List.find (fun (k, _) -> k = (rate, hedge, audit)) rows)
  in
  (* the headline claim: hedged re-dispatch recovers most of the
     fault-free goodput even at a 1e-3 per-decision fault rate *)
  let base = (find 0.0 true 0.05).S.Server_stats.goodput_jps in
  let faulted = (find 1e-3 true 0.05).S.Server_stats.goodput_jps in
  let recovered = faulted /. Float.max base 1e-9 in
  Printf.printf
    "\nhedged goodput at 1e-3 faults: %.0f of %.0f jobs/s fault-free \
     (%.0f%% recovered)\n"
    faulted base (100.0 *. recovered);
  assert (recovered >= 0.8);
  let module J = Exochi_obs.Tiny_json in
  let row ((rate, hedge, audit), (st : S.Server_stats.t)) =
    let r = st.S.Server_stats.recovery in
    J.Obj
      [
        ("fault_rate", J.Num rate);
        ("hedging", J.Bool hedge);
        ("audit_frac", J.Num audit);
        ("goodput_jps", J.Num st.S.Server_stats.goodput_jps);
        ("throughput_jps", J.Num st.S.Server_stats.throughput_jps);
        ("lat_p99_ps", J.Num st.S.Server_stats.lat_p99_ps);
        ("completed", J.Num (float_of_int st.S.Server_stats.completed));
        ("shed", J.Num (float_of_int st.S.Server_stats.shed));
        ("sdc_corrupted", J.Num (float_of_int r.S.Server_stats.r_sdc_corrupted));
        ("sdc_detected", J.Num (float_of_int r.S.Server_stats.r_sdc_detected));
        ("audit_shreds", J.Num (float_of_int r.S.Server_stats.r_audit_shreds));
        ("hedges", J.Num (float_of_int r.S.Server_stats.r_hedges));
        ("hedge_wins", J.Num (float_of_int r.S.Server_stats.r_hedge_wins));
        ("breaker_opens", J.Num (float_of_int r.S.Server_stats.r_breaker_opens));
        ( "breaker_closes",
          J.Num (float_of_int r.S.Server_stats.r_breaker_closes) );
      ]
  in
  let doc =
    J.Obj
      [
        ("seed", J.Num (Int64.to_float seed));
        ("jobs", J.Num (float_of_int jobs));
        ("goodput_recovered_at_1e3", J.Num recovered);
        ("rows", J.Arr (List.map row rows));
      ]
  in
  let oc = open_out "BENCH_guard.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~indent:2 doc ^ "\n"));
  Printf.printf "wrote %d guard record(s) to BENCH_guard.json\n"
    (List.length rows)

(* ---- Exo-scope: cost of the Live tap on the serve hot path ---- *)

let obs_bench _cfg =
  header
    "Exo-scope: streaming-tap overhead on a serve workload -> BENCH_obs.json";
  let module S = Exochi_serving in
  let module O = Exochi_obs in
  let seed = 42L in
  let jobs = 240 in
  let run_one ~mode () =
    let sink = if mode = `Plain then None else Some (O.Trace.create ()) in
    let live =
      if mode = `Tapped then
        Option.map (fun s ->
            let l = O.Live.create () in
            O.Live.attach l s;
            l) sink
      else None
    in
    let server = S.Server.create ?trace:sink () in
    let wl =
      S.Workload.create
        (S.Workload.default_spec ~seed ~tenants:2 ~jobs
           (S.Workload.Closed { clients_per_tenant = 8; think_ps = 0 }))
    in
    let st = S.Server.run server wl in
    (st, sink, live)
  in
  let best_of n f =
    let best = ref infinity and last = ref None in
    for _ = 1 to n do
      let t0 = Sys.time () in
      let r = f () in
      let dt = Sys.time () -. t0 in
      if dt < !best then best := dt;
      last := Some r
    done;
    (!best, Option.get !last)
  in
  ignore (run_one ~mode:`Plain ());
  (* warm the arenas/allocator once *)
  let plain_s, (plain_st, _, _) = best_of 5 (run_one ~mode:`Plain) in
  let traced_s, (traced_st, _, _) = best_of 5 (run_one ~mode:`Traced) in
  let tapped_s, (tapped_st, sink, live) = best_of 5 (run_one ~mode:`Tapped) in
  let sink = Option.get sink and live = Option.get live in
  (* the marginal cost of the streaming tap on an already-traced run —
     the number the ≤5% budget governs (the ring itself is the price of
     tracing, measured separately) *)
  let tap_overhead = (tapped_s -. traced_s) /. traced_s in
  let ring_overhead = (traced_s -. plain_s) /. plain_s in
  Printf.printf
    "untraced: %.3fs  ring: %.3fs (%+.1f%%)  ring+tap: %.3fs (tap %+.1f%%)  \
     (%d events tapped, %d jobs)\n"
    plain_s traced_s (100.0 *. ring_overhead) tapped_s (100.0 *. tap_overhead)
    (O.Live.events live) (O.Live.jobs_done live);
  (* the tap must be invisible to the simulation... *)
  assert (plain_st = traced_st);
  assert (plain_st = tapped_st);
  (* ...exact over the whole run whether or not the ring wrapped... *)
  assert (O.Live.events live = O.Trace.length sink + O.Trace.dropped sink);
  assert (O.Live.jobs_done live = tapped_st.S.Server_stats.completed);
  (* ...and cheap: within 5% of the tap-free traced host time. *)
  assert (tap_overhead <= 0.05);
  let module J = O.Tiny_json in
  let doc =
    J.Obj
      [
        ("seed", J.Num (Int64.to_float seed));
        ("jobs", J.Num (float_of_int jobs));
        ("untraced_host_s", J.Num plain_s);
        ("traced_host_s", J.Num traced_s);
        ("tapped_host_s", J.Num tapped_s);
        ("ring_overhead_frac", J.Num ring_overhead);
        ("tap_overhead_frac", J.Num tap_overhead);
        ("tap_overhead_budget", J.Num 0.05);
        ("events_tapped", J.Num (float_of_int (O.Live.events live)));
        ("events_dropped_by_ring", J.Num (float_of_int (O.Trace.dropped sink)));
        ("jobs_done", J.Num (float_of_int (O.Live.jobs_done live)));
        ( "job_lat_p99_us",
          J.Num (O.Hist.quantile (O.Live.job_lat live) 99.0 /. 1e6) );
        ("sim_identical", J.Bool (plain_st = tapped_st));
      ]
  in
  let oc = open_out "BENCH_obs.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~indent:2 doc ^ "\n"));
  print_endline "wrote tap-overhead record to BENCH_obs.json"

(* ---- Exo-opt: busy-time reductions of the optimizing backend ---- *)

let opt_bench _cfg =
  header
    "Exo-opt: per-kernel gpu_busy reduction at -O1/-O2 -> BENCH_opt.json";
  let module Opt = Exochi_opt.Opt in
  (* the differential-test configuration: every kernel all-GPU at Small
     scale, FMD at 6 frames (its motion window), the rest at 3 *)
  let frames (k : Kernel.t) = if k.abbrev = "FMD" then 6 else 3 in
  let run k level =
    Harness.run ~frames:(frames k) ~split:Harness.All_gpu ~opt_level:level k
      Kernel.Small
  in
  Printf.printf "%-14s %12s %12s %12s %8s %8s\n" "kernel" "O0-busy-ps"
    "O1-busy-ps" "O2-busy-ps" "O2-red%" "instrs";
  let rows =
    List.map
      (fun (k : Kernel.t) ->
        let r0 = run k Opt.O0 in
        let r1 = run k Opt.O1 in
        let r2 = run k Opt.O2 in
        List.iter
          (fun (r : Harness.result) ->
            assert (r.Harness.correct && r.Harness.max_diff = 0))
          [ r0; r1; r2 ];
        (* no kernel may regress at any level *)
        assert (r1.Harness.gpu_busy_ps <= r0.Harness.gpu_busy_ps);
        assert (r2.Harness.gpu_busy_ps <= r0.Harness.gpu_busy_ps);
        let red =
          1.0
          -. (float_of_int r2.Harness.gpu_busy_ps
             /. float_of_int (max 1 r0.Harness.gpu_busy_ps))
        in
        Printf.printf "%-14s %12d %12d %12d %8.1f %8d\n%!" k.abbrev
          r0.Harness.gpu_busy_ps r1.Harness.gpu_busy_ps r2.Harness.gpu_busy_ps
          (100.0 *. red) r2.Harness.gpu_instrs;
        (k, r0, r1, r2, red))
      Registry.all
  in
  let geomean =
    1.0
    -. Exochi_util.Stats.geomean
         (List.map
            (fun (_, (r0 : Harness.result), _, (r2 : Harness.result), _) ->
              float_of_int r2.Harness.gpu_busy_ps
              /. float_of_int (max 1 r0.Harness.gpu_busy_ps))
            rows)
  in
  Printf.printf "\ngeomean busy reduction at -O2: %.1f%% (floor 5%%)\n"
    (100.0 *. geomean);
  (* the headline acceptance gate *)
  assert (geomean >= 0.05);
  let module J = Exochi_obs.Tiny_json in
  let row ((k : Kernel.t), (r0 : Harness.result), (r1 : Harness.result),
           (r2 : Harness.result), red) =
    J.Obj
      [
        ("kernel", J.Str k.abbrev);
        ("busy_o0_ps", J.Num (float_of_int r0.Harness.gpu_busy_ps));
        ("busy_o1_ps", J.Num (float_of_int r1.Harness.gpu_busy_ps));
        ("busy_o2_ps", J.Num (float_of_int r2.Harness.gpu_busy_ps));
        ("reduction_o2", J.Num red);
        ("instrs_o0", J.Num (float_of_int r0.Harness.gpu_instrs));
        ("instrs_o2", J.Num (float_of_int r2.Harness.gpu_instrs));
        ("correct_all_levels", J.Bool true);
      ]
  in
  let doc =
    J.Obj
      [
        ("split", J.Str "all_gpu");
        ("scale", J.Str "small");
        ("geomean_reduction_o2", J.Num geomean);
        ("geomean_floor", J.Num 0.05);
        ("rows", J.Arr (List.map row rows));
      ]
  in
  let oc = open_out "BENCH_opt.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~indent:2 doc ^ "\n"));
  Printf.printf "wrote %d kernel record(s) to BENCH_opt.json\n"
    (List.length rows)

(* ---- Exo-fabric: multi-device sharded scaling ---- *)

let scale_bench cfg =
  header
    "Exo-fabric: data-parallel device scaling (sharded teams) -> \
     BENCH_scale.json";
  Printf.printf "%-14s %12s %12s %8s %12s %8s\n" "Kernel" "1-dev" "2-dev"
    "x2" "4-dev" "x4";
  (* data-parallel image kernels: every shred is an independent row
     block, so the runtime shards the team across the device set *)
  let kernels = [ "SepiaTone"; "LinearFilter"; "AlphaBlend" ] in
  let rows =
    List.map
      (fun abbrev ->
        let k = Option.get (Registry.find abbrev) in
        let scale = scale_of cfg k in
        let frames = frames_of cfg k in
        let legacy = Harness.run ?frames k scale in
        let run d = Harness.run ?frames ~devices:d k scale in
        let r1 = run 1 and r2 = run 2 and r4 = run 4 in
        assert (r1.Harness.correct && r2.Harness.correct && r4.Harness.correct);
        (* one device through the device-set machinery must be
           time-identical to the pre-refactor single-device path *)
        if r1.Harness.time_ps <> legacy.Harness.time_ps then
          failwith
            (Printf.sprintf
               "scale: %s devices=1 is not time-identical (%d ps vs %d ps)"
               abbrev r1.Harness.time_ps legacy.Harness.time_ps);
        let speedup a b =
          float_of_int a.Harness.time_ps /. float_of_int b.Harness.time_ps
        in
        let x2 = speedup r1 r2 and x4 = speedup r1 r4 in
        Printf.printf "%-14s %10.3fms %10.3fms %7.2fx %10.3fms %7.2fx\n%!"
          k.Kernel.abbrev (ms r1.Harness.time_ps) (ms r2.Harness.time_ps) x2
          (ms r4.Harness.time_ps) x4;
        if x2 < 1.8 then
          failwith
            (Printf.sprintf "scale: %s only %.2fx goodput at 2 devices (>= \
                             1.8x required)" abbrev x2);
        if x4 < 3.2 then
          failwith
            (Printf.sprintf "scale: %s only %.2fx goodput at 4 devices (>= \
                             3.2x required)" abbrev x4);
        Printf.sprintf
          "{\"kernel\":%S,\"time_1dev_ps\":%d,\"time_2dev_ps\":%d,\
           \"time_4dev_ps\":%d,\"speedup_2dev\":%.4f,\"speedup_4dev\":%.4f,\
           \"identical_1dev\":true}"
          abbrev r1.Harness.time_ps r2.Harness.time_ps r4.Harness.time_ps x2
          x4)
      kernels
  in
  let oc = open_out "BENCH_scale.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "[\n";
      List.iteri
        (fun i json ->
          output_string oc "  ";
          output_string oc json;
          if i < List.length rows - 1 then output_string oc ",";
          output_string oc "\n")
        rows;
      output_string oc "]\n");
  Printf.printf
    "\nwrote %d device-scaling record(s) to BENCH_scale.json (gates: >= \
     1.8x at 2 devices, >= 3.2x at 4)\n"
    (List.length rows)

(* ---- bechamel micro-benchmarks of the simulator itself ---- *)

let micro () =
  header "Simulator micro-benchmarks (host-side, via bechamel)";
  let open Bechamel in
  let open Toolkit in
  let asm_src = (Option.get (Registry.find "LinearFilter")).Kernel.x3k_asm
      ((Option.get (Registry.find "LinearFilter")).Kernel.make_io
         (Exochi_util.Prng.create 1L) Kernel.Small)
  in
  let t_asm =
    Test.make ~name:"x3k-assemble-linearfilter" (Staged.stage (fun () ->
        ignore (Exochi_isa.X3k_asm.assemble ~name:"lf" asm_src)))
  in
  let prog = Exochi_isa.X3k_asm.assemble_exn ~name:"lf" asm_src in
  let bin = Exochi_isa.X3k_asm.to_binary prog in
  let t_dec =
    Test.make ~name:"x3k-decode-binary" (Staged.stage (fun () ->
        ignore (Exochi_isa.X3k_asm.of_binary ~name:"lf" bin)))
  in
  let t_pte =
    Test.make ~name:"atr-pte-transcode" (Staged.stage (fun () ->
        let pte =
          Exochi_memory.Pte.Ia32.make
            {
              Exochi_memory.Pte.Ia32.present = true;
              writable = true;
              user = true;
              write_through = false;
              cache_disable = false;
              accessed = false;
              dirty = false;
              frame = 0x1234;
            }
        in
        ignore (Exochi_memory.Pte.transcode pte ~tiling:Exochi_memory.Pte.X3k.Tiled_x)))
  in
  let benchmark test =
    let cfg =
      Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) ()
    in
    let raw = Benchmark.all cfg [ Instance.monotonic_clock ] test in
    let results =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-40s %12.1f ns/run\n" name est
        | _ -> ())
      results
  in
  List.iter
    (fun t -> benchmark (Test.make_grouped ~name:"sim" ~fmt:"%s %s" [ t ]))
    [ t_asm; t_dec; t_pte ]

(* ---- driver ---- *)

let () =
  let args = Array.to_list Sys.argv in
  let full = List.mem "--full" args in
  let frames =
    let rec find = function
      | "--frames" :: v :: _ -> int_of_string v
      | _ :: rest -> find rest
      | [] -> if full then 30 else 16
    in
    find args
  in
  let cfg = { frames; full } in
  let wanted =
    List.filter
      (fun a ->
        List.mem a
          [ "table2"; "fig7"; "fig8"; "fig10"; "flush"; "ablate-smt";
            "ablate-atr"; "soak"; "metrics"; "lint"; "serve"; "guard";
            "obs"; "opt"; "scale"; "micro" ])
      args
  in
  let wanted =
    if wanted = [] then
      [ "table2"; "fig7"; "fig8"; "fig10"; "flush"; "ablate-smt";
        "ablate-atr"; "soak"; "metrics"; "lint"; "serve"; "guard"; "obs";
        "opt"; "scale"; "micro" ]
    else wanted
  in
  Printf.printf
    "EXOCHI reproduction benchmarks (video kernels at %d frames%s)\n" frames
    (if full then ", full paper scale" else "; use --full for paper scale");
  List.iter
    (fun e ->
      match e with
      | "table2" -> table2 cfg
      | "fig7" -> fig7 cfg
      | "fig8" -> fig8 cfg
      | "fig10" -> fig10 cfg
      | "flush" -> flush_ablation cfg
      | "ablate-smt" -> ablate_smt cfg
      | "ablate-atr" -> ablate_atr cfg
      | "soak" -> soak cfg
      | "metrics" -> metrics cfg
      | "lint" -> lint cfg
      | "serve" -> serve cfg
      | "guard" -> guard_bench cfg
      | "obs" -> obs_bench cfg
      | "opt" -> opt_bench cfg
      | "scale" -> scale_bench cfg
      | "micro" -> micro ()
      | _ -> ())
    wanted
