(* Single-kernel benchmark CLI (the full suite lives in bench/main.exe).

     exochi_bench KERNEL [options]   e.g.  exochi_bench BOB --frames 16

   Options (cmdliner):
     --split gpu|cpu|FRACTION   where the work runs (default gpu)
     --memmodel cc|noncc|copy   Figure 8 configuration (default cc)
     --frames N                 video length (default 16)
     --large                    the kernel's large data size, if it has one
     --trace FILE               write a Chrome/Perfetto trace of the run
     --metrics [FILE]           per-kernel metrics JSON ("-" = stdout) *)

open Cmdliner
open Exochi_kernels

let run_bench kernel_name split memmodel frames large trace_out metrics_out =
  match Registry.find kernel_name with
  | None ->
    Printf.eprintf "unknown kernel %S; available: %s\n" kernel_name
      (String.concat ", "
         (List.map (fun (k : Kernel.t) -> k.abbrev) Registry.all));
    exit 1
  | Some k ->
    let scale =
      if large then
        if List.mem Kernel.Large k.Kernel.scales then Kernel.Large
        else begin
          Printf.eprintf "%s has no large data size\n" k.Kernel.abbrev;
          exit 1
        end
      else Kernel.Small
    in
    let split =
      match split with
      | "gpu" -> Harness.All_gpu
      | "cpu" -> Harness.All_cpu
      | "dynamic" -> Harness.Dynamic
      | f -> (
        match float_of_string_opt f with
        | Some f when f >= 0.0 && f <= 1.0 -> Harness.Cooperative f
        | _ ->
          prerr_endline "--split must be gpu, cpu, dynamic or a fraction in [0,1]";
          exit 1)
    in
    let memmodel_name = memmodel in
    let memmodel =
      match memmodel with
      | "cc" -> Exochi_memory.Memmodel.Cc_shared
      | "noncc" -> Exochi_memory.Memmodel.Non_cc_shared
      | "copy" -> Exochi_memory.Memmodel.Data_copy
      | _ ->
        prerr_endline "--memmodel must be cc, noncc or copy";
        exit 1
    in
    let trace =
      if trace_out <> None || metrics_out <> None then
        Some (Exochi_obs.Trace.create ())
      else None
    in
    let r = Harness.run ~memmodel ~split ~frames ?trace k scale in
    Option.iter
      (fun sink ->
        (match trace_out with
        | Some file ->
          let oc = open_out file in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Exochi_obs.Trace_export.to_chrome sink))
        | None -> ());
        match metrics_out with
        | Some dest ->
          let json =
            Exochi_obs.Metrics.to_json
              ~extra:
                [
                  ("kernel", Printf.sprintf "%S" k.Kernel.abbrev);
                  ("memmodel", Printf.sprintf "%S" memmodel_name);
                  ("time_ps", string_of_int r.time_ps);
                ]
              (Exochi_obs.Metrics.of_sink sink)
          in
          if dest = "-" then print_endline json
          else begin
            let oc = open_out dest in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () -> output_string oc (json ^ "\n"))
          end
        | None -> ())
      trace;
    Printf.printf "%s (%s, %s)\n" k.Kernel.name k.Kernel.abbrev
      k.Kernel.description;
    Printf.printf "  simulated time : %.3f ms\n" (float_of_int r.time_ps /. 1e9);
    Printf.printf "  outputs        : %s\n"
      (if r.correct then "bit-exact vs golden reference"
       else Printf.sprintf "MISMATCH (max |diff| = %d)" r.max_diff);
    Printf.printf "  shreds         : %d (switches %d)\n" r.shreds
      r.thread_switches;
    Printf.printf "  instructions   : %d exo / %d IA32\n" r.gpu_instrs
      r.cpu_instrs;
    Printf.printf "  ATR            : %d proxies, %d GTT hits\n" r.atr_proxies
      r.gtt_hits;
    if r.flush_bytes > 0 then
      Printf.printf "  flushed        : %d KiB\n" (r.flush_bytes / 1024);
    if r.copy_bytes > 0 then
      Printf.printf "  copied         : %d KiB\n" (r.copy_bytes / 1024);
    if not r.correct then exit 1

let kernel_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL")

let split_arg =
  Arg.(value & opt string "gpu" & info [ "split" ] ~docv:"gpu|cpu|FRACTION")

let memmodel_arg =
  Arg.(value & opt string "cc" & info [ "memmodel" ] ~docv:"cc|noncc|copy")

let frames_arg = Arg.(value & opt int 16 & info [ "frames" ] ~docv:"N")
let large_arg = Arg.(value & flag & info [ "large" ])

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:"Write a Chrome/Perfetto trace-event JSON of the run to $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write per-kernel metrics JSON to $(docv) (use - for stdout).")

let cmd =
  Cmd.v
    (Cmd.info "exochi_bench" ~doc:"Run one Table 2 kernel on the simulated EXO platform")
    Term.(
      const run_bench $ kernel_arg $ split_arg $ memmodel_arg $ frames_arg
      $ large_arg $ trace_arg $ metrics_arg)

let () = exit (Cmd.eval cmd)
