(* CHI-lite compiler driver: produce a fat binary from C-like source.

     exochi_cc prog.chi                 compile, write prog.fat
     exochi_cc prog.chi -o out.fat      choose the output path
     exochi_cc prog.chi -S              print the generated VIA32 assembly
     exochi_cc prog.chi --sections      list the fat binary's sections
     exochi_cc prog.chi --lint          also run Exo-check (warnings only)
     exochi_cc prog.chi --lint-error    fail on error-severity findings
     exochi_cc prog.chi -O1|-O2         Exo-opt the accelerator sections
     exochi_cc prog.chi -O2 --emit-asm  dump original vs optimized X3K
                                        side by side with per-block cycles

   Compile failures print the offending source line with a caret. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  match Array.to_list Sys.argv with
  | _ :: path :: rest ->
    let src = read_file path in
    let name = Filename.remove_extension (Filename.basename path) in
    let fail e =
      prerr_endline (Exochi_isa.Loc.error_to_string_source ~src e);
      exit 1
    in
    let opt_level =
      let rec find = function
        | [] -> Exochi_opt.Opt.O0
        | f :: r -> (
          match Exochi_opt.Opt.level_of_string f with
          | Some l when String.length f > 1 && f.[0] = '-' -> l
          | _ -> find r)
      in
      find rest
    in
    if List.mem "-S" rest then begin
      match Exochi_core.Chilite_compile.compile_to_via32_text ~name src with
      | Ok text -> print_string text
      | Error e -> fail e
    end
    else if List.mem "--emit-asm" rest then begin
      (* compile twice — O0 for the originals — and print each
         accelerator section's before/after with cycle deltas *)
      match
        ( Exochi_core.Chilite_compile.compile ~name src,
          Exochi_core.Chilite_compile.compile ~opt_level ~name src )
      with
      | Error e, _ | _, Error e -> fail e
      | Ok original, Ok optimized ->
        List.iter2
          (fun (o : Exochi_core.Chilite_compile.section_info)
               (q : Exochi_core.Chilite_compile.section_info) ->
            print_string
              (Exochi_opt.Opt.diff_report
                 ~original:o.Exochi_core.Chilite_compile.x3k
                 ~optimized:q.Exochi_core.Chilite_compile.x3k))
          original.Exochi_core.Chilite_compile.sections
          optimized.Exochi_core.Chilite_compile.sections
    end
    else begin
      match Exochi_core.Chilite_compile.compile ~opt_level ~name src with
      | Error e -> fail e
      | Ok compiled ->
        let lint = List.mem "--lint" rest in
        let lint_error = List.mem "--lint-error" rest in
        if lint || lint_error then begin
          let findings =
            Exochi_analysis.Exo_check.check_compiled compiled
          in
          List.iter
            (fun f ->
              prerr_endline (Exochi_analysis.Finding.to_string f))
            findings;
          if lint_error && Exochi_analysis.Finding.has_errors findings then
            exit 1
        end;
        let fb = compiled.Exochi_core.Chilite_compile.fatbin in
        if List.mem "--sections" rest then
          List.iter
            (fun (isa, n) ->
              Printf.printf "%-6s %s\n"
                (match isa with
                | Exochi_core.Chi_fatbin.Via32 -> "VIA32"
                | Exochi_core.Chi_fatbin.X3k -> "X3K")
                n)
            (Exochi_core.Chi_fatbin.section_names fb)
        else begin
          let out =
            let rec find = function
              | "-o" :: o :: _ -> o
              | _ :: r -> find r
              | [] -> Filename.remove_extension path ^ ".fat"
            in
            find rest
          in
          Exochi_core.Chi_fatbin.write_file fb ~path:out;
          Printf.printf "%s: fat binary with %d section(s) -> %s\n" name
            (List.length (Exochi_core.Chi_fatbin.section_names fb))
            out
        end
    end
  | _ ->
    prerr_endline
      "usage: exochi_cc <prog.chi> [-o out.fat] [-O0|-O1|-O2] [-S] \
       [--sections] [--emit-asm] [--lint] [--lint-error]";
    exit 1
