(* A command-driven cross-ISA debugger over a CHI-lite program — the
   reproduction's analogue of the paper's enhanced Intel Debugger
   (Section 4.5). Commands come from stdin, one per line:

     list                    disassemble the IA32 (VIA32) section
     break N / clear N       breakpoint at VIA32 instruction index N
     run                     run to the next breakpoint or program end
     step                    execute one IA32 instruction
     regs                    IA32 register dump
     line                    source line of the current stop
     exo-run N               advance the exo-sequencers until some shred
                             reaches X3K instruction index N
     exo-where               resident shreds (eu, slot, shred, pc)
     exo-reg SID REG LANE    read a resident shred's register lane
     exo-trace SEQ [N]       timeline of the last N (default 16) trace
                             events on one sequencer; SEQ is "ia32",
                             "EU/SLOT" (e.g. 2/1), or "all"
     output                  values printed so far
     quit

   A non-interactive subcommand inspects the Exo-opt backend:

     exochi_dbg opt-diff <prog.chi|KERNEL> [0|1|2]

   dumps each accelerator section (or the registry kernel's X3K
   program) original vs optimized side by side, with per-block
   worst-retire cycle costs (level defaults to 2).

   A second non-interactive subcommand inspects the Exo-fabric device
   set:

     exochi_dbg devices [N] [SEED:RATE]

   builds an N-device platform (default 2), drives a short canned serve
   workload through it — with the optional fault plan installed — and
   dumps the device table: backend kind and capabilities, per-device
   circuit-breaker census and per-device fault-stream positions.

   Example:
     printf 'break 2\nrun\nregs\nstep\nrun\noutput\nquit\n' | \
       dune exec bin/exochi_dbg.exe -- examples/vadd.chi *)

open Exochi_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let opt_diff target level_arg =
  let level =
    match Exochi_opt.Opt.level_of_string level_arg with
    | Some l -> l
    | None ->
      prerr_endline "opt-diff: level must be 0, 1 or 2";
      exit 1
  in
  let diff p =
    print_string
      (Exochi_opt.Opt.diff_report ~original:p
         ~optimized:(Exochi_opt.Opt.optimize level p))
  in
  if Sys.file_exists target then begin
    let src = read_file target in
    let name = Filename.remove_extension (Filename.basename target) in
    match Chilite_compile.compile ~name src with
    | Error e ->
      prerr_endline (Exochi_isa.Loc.error_to_string_source ~src e);
      exit 1
    | Ok compiled ->
      List.iter
        (fun (s : Chilite_compile.section_info) ->
          diff s.Chilite_compile.x3k)
        compiled.Chilite_compile.sections
  end
  else
    match Exochi_kernels.Registry.find target with
    | None ->
      Printf.eprintf
        "opt-diff: %s is neither a .chi file nor a registry kernel\n" target;
      exit 1
    | Some k ->
      let io =
        k.Exochi_kernels.Kernel.make_io ~frames:3
          (Exochi_util.Prng.create 42L)
          Exochi_kernels.Kernel.Small
      in
      diff
        (Exochi_isa.X3k_asm.assemble_exn ~name:k.Exochi_kernels.Kernel.abbrev
           (k.Exochi_kernels.Kernel.x3k_asm io))

let device_table ndev fault_spec =
  if ndev <= 0 then begin
    prerr_endline "devices: N must be positive";
    exit 1
  end;
  let module Serve = Exochi_serving in
  let module Sb = Exochi_accel.Sequencer_backend in
  let module Fault_plan = Exochi_faults.Fault_plan in
  let fault_plan =
    match fault_spec with
    | None -> None
    | Some spec -> (
      match Fault_plan.of_spec spec with
      | Ok p -> Some p
      | Error msg ->
        prerr_endline msg;
        exit 1)
  in
  (* guard knobs on so the breaker column can be non-trivial under a
     fault plan; the workload is fixed, so the table is deterministic *)
  let config =
    {
      Serve.Server.default_config with
      devices = ndev;
      hedge_after_ps = 300 * 1_000_000;
      breaker_cooldown_ps = 2000 * 1_000_000;
    }
  in
  let server = Serve.Server.create ~config ?fault_plan () in
  let spec =
    Serve.Workload.default_spec ~seed:42L ~tenants:2 ~jobs:(16 * ndev)
      (Serve.Workload.Closed { clients_per_tenant = 4; think_ps = 0 })
  in
  ignore (Serve.Server.run server (Serve.Workload.create spec));
  let chi = Serve.Server.runtime server in
  let platform = Serve.Server.platform server in
  Printf.printf "device table: %d device(s), %d shred(s) completed\n" ndev
    (List.fold_left
       (fun acc (b : Sb.t) -> acc + b.Sb.shreds_completed ())
       0
       (Exochi_core.Exo_platform.all_backends platform));
  List.iter
    (fun (b : Sb.t) ->
      let dev = b.Sb.caps.Sb.bk_dev in
      Printf.printf "  %s\n" (Sb.describe b);
      (* the trailing IA32 soft backend has no breaker slice and no
         fault stream of its own — it is the fallback endpoint *)
      if b.Sb.caps.Sb.bk_kind = Sb.X3k then begin
        let closed, opened, half = Chi_runtime.breaker_census chi ~dev in
        Printf.printf
          "         breakers: %d closed, %d open, %d half-open; %d shred(s) \
           done\n"
          closed opened half
          (b.Sb.shreds_completed ());
        let positions =
          match Exochi_core.Exo_platform.fault_plan_dev platform dev with
          | None -> "no fault plan"
          | Some plan ->
            Fault_plan.all_classes
            |> List.map2
                 (fun n c ->
                   Printf.sprintf "%s:%d" (Fault_plan.class_name c) n)
                 (Array.to_list (Fault_plan.drawn_counts plan))
            |> String.concat " "
        in
        Printf.printf "         fault stream: %s\n" positions
      end)
    (Exochi_core.Exo_platform.all_backends platform)

let () =
  match Array.to_list Sys.argv with
  | _ :: "opt-diff" :: target :: rest ->
    opt_diff target (match rest with l :: _ -> l | [] -> "2")
  | _ :: "devices" :: rest ->
    let ndev, fault_spec =
      match rest with
      | [] -> (2, None)
      | n :: rest -> (
        match int_of_string_opt n with
        | Some n -> (n, match rest with s :: _ -> Some s | [] -> None)
        | None ->
          prerr_endline "usage: exochi_dbg devices [N] [SEED:RATE]";
          exit 1)
    in
    device_table ndev fault_spec
  | _ :: path :: _ ->
    let src = read_file path in
    let name = Filename.remove_extension (Filename.basename path) in
    let compiled =
      match Chilite_compile.compile ~name src with
      | Ok c -> c
      | Error e ->
        prerr_endline (Exochi_isa.Loc.error_to_string e);
        exit 1
    in
    (* the debugger always records a (small) trace so exo-trace works
       without a rerun; events beyond the ring capacity are dropped
       oldest-first, which is exactly what a timeline of "the last N
       events" wants *)
    let sink = Exochi_obs.Trace.create ~capacity:65_536 () in
    let platform = Exo_platform.create ~trace:sink () in
    let prog = Chilite_run.load ~platform compiled in
    let dbg = Chi_debug.create platform in
    let intrinsics = Chilite_run.intrinsic_handler prog in
    let loaded = Chilite_run.loaded prog in
    let pc = ref 0 in
    let finished = ref false in
    let say fmt = Printf.printf fmt in
    let rec loop () =
      match In_channel.input_line stdin with
      | None -> ()
      | Some cmd -> (
        (match String.split_on_char ' ' (String.trim cmd) with
        | [ "" ] -> ()
        | [ "quit" ] -> raise Exit
        | [ "list" ] ->
          print_string (Exochi_isa.Via32_asm.disassemble loaded.Exochi_cpu.Machine.prog)
        | [ "break"; n ] ->
          Chi_debug.set_breakpoint dbg ~pc:(int_of_string n);
          say "breakpoint at %s (breakpoints: %s)\n" n
            (String.concat ","
               (List.map string_of_int (Chi_debug.breakpoints dbg)))
        | [ "clear"; n ] -> Chi_debug.clear_breakpoint dbg ~pc:(int_of_string n)
        | [ "run" ] ->
          if !finished then say "program has finished\n"
          else (
            match Chi_debug.run_cpu dbg loaded ~entry:!pc ~intrinsics with
            | Chi_debug.Hit bp ->
              pc := bp;
              say "stopped at pc %d (source line %d)\n" bp
                (Chi_debug.via32_line loaded ~pc:bp)
            | Chi_debug.Finished ->
              finished := true;
              say "program finished\n")
        | [ "step" ] ->
          if !finished then say "program has finished\n"
          else (
            match Chi_debug.step_cpu dbg loaded ~pc:!pc ~intrinsics with
            | Some next ->
              pc := next;
              say "pc %d (source line %d)\n" next
                (Chi_debug.via32_line loaded ~pc:next)
            | None ->
              finished := true;
              say "program finished\n")
        | [ "regs" ] ->
          List.iter
            (fun (n, v) -> say "  %-4s = %ld\n" n v)
            (Chi_debug.cpu_registers dbg)
        | [ "line" ] ->
          say "pc %d: source line %d\n" !pc (Chi_debug.via32_line loaded ~pc:!pc)
        | [ "exo-run"; n ] -> (
          match Chi_debug.run_gpu_until dbg ~pc:(int_of_string n) with
          | Chi_debug.Exo_hit { shred_id; eu; slot } ->
            say "shred %d stopped at pc %s (EU %d, thread %d)\n" shred_id n eu
              slot
          | Chi_debug.Exo_quiescent -> say "exo-sequencers are quiescent\n")
        | [ "exo-where" ] ->
          List.iter
            (fun (eu, slot, sid, p) ->
              say "  EU %d thread %d: shred %d at pc %d\n" eu slot sid p)
            (Chi_debug.exo_where dbg)
        | [ "exo-reg"; sid; r; l ] -> (
          match
            Chi_debug.exo_reg dbg ~shred_id:(int_of_string sid)
              ~reg:(int_of_string r) ~lane:(int_of_string l)
          with
          | Some v -> say "  shred %s vr%s[%s] = %d\n" sid r l v
          | None -> say "  shred %s is not resident\n" sid)
        | "exo-trace" :: seq :: rest -> (
          let module Trace = Exochi_obs.Trace in
          let n = match rest with [ n ] -> int_of_string n | _ -> 16 in
          let sel =
            match String.lowercase_ascii seq with
            | "all" -> Ok None
            | "ia32" -> Ok (Some Trace.Ia32)
            | s -> (
              match String.split_on_char '/' s with
              | [ e; t ] -> (
                match (int_of_string_opt e, int_of_string_opt t) with
                | Some eu, Some slot -> Ok (Some (Trace.Exo { eu; slot }))
                | _ -> Error ())
              | _ -> Error ())
          in
          match sel with
          | Error () -> say "exo-trace: SEQ must be ia32, EU/SLOT or all\n"
          | Ok sel ->
            let evs =
              match sel with
              | None -> Trace.events sink
              | Some s ->
                List.filter
                  (fun (e : Trace.event) -> e.Trace.seq = s)
                  (Trace.events sink)
            in
            let total = List.length evs in
            let evs =
              if total > n then List.filteri (fun i _ -> i >= total - n) evs
              else evs
            in
            if evs = [] then say "  (no trace events on %s)\n" seq
            else begin
              say "  last %d of %d event(s) on %s:\n" (List.length evs) total
                seq;
              List.iter
                (fun e ->
                  say "  %s\n" (Format.asprintf "%a" Trace.pp_event e))
                evs
            end)
        | [ "output" ] ->
          say "  %s\n"
            (String.concat " "
               (List.map string_of_int (Chilite_run.output prog)))
        | _ -> say "unknown command: %s\n" cmd);
        loop ())
    in
    (try loop () with Exit -> ());
    say "[exochi_dbg] done\n"
  | _ ->
    prerr_endline
      "usage: exochi_dbg <prog.chi>  (commands on stdin)\n\
      \       exochi_dbg opt-diff <prog.chi|KERNEL> [0|1|2]\n\
      \       exochi_dbg devices [N] [SEED:RATE]";
    exit 1
