(* Exo-check driver: static analysis without simulation.

     exochi_lint prog.chi                  lint a CHI-lite program
     exochi_lint a.chi b.chi kern.x3k      several inputs (.chi / .x3k / .s)
     exochi_lint --format json prog.chi    machine-readable findings
     exochi_lint --format sarif prog.chi   SARIF 2.1.0 (one run, all files)
     exochi_lint --rules                   print the rule catalog

   Text findings carry the offending source line with a caret. Exit
   status is 1 when any error-severity finding (or, with --werror, any
   warning) is reported, 2 on usage or compile/assembly failure. *)

module Finding = Exochi_analysis.Finding
module Exo_check = Exochi_analysis.Exo_check
module Loc = Exochi_isa.Loc
module Tiny_json = Exochi_obs.Tiny_json

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let usage () =
  prerr_endline
    "usage: exochi_lint [--format text|json|sarif] [--werror] [--rules] \
     <prog.chi | kernel.x3k | cpu.s> ...";
  exit 2

(* A dead-store finding (EXO009) that vanishes when the same code is
   linted after Exo-opt's -O1 pipeline was eliminated by the optimizer:
   report it once, annotated, instead of asking the user to fix code
   the compiler already removes. *)
let annotate_fixed_by_opt findings optimized_findings =
  List.map
    (fun (f : Finding.t) ->
      if
        f.Finding.rule = "EXO009"
        && not
             (List.exists
                (fun (g : Finding.t) ->
                  g.Finding.rule = f.Finding.rule && g.Finding.loc = f.Finding.loc)
                optimized_findings)
      then Finding.with_note f "fixed-by-opt"
      else f)
    findings

(* Lint one input; returns (findings, source) or a hard failure. *)
let lint_file path =
  let src = read_file path in
  match Filename.extension path with
  | ".chi" -> (
    match Exo_check.check_source ~name:path src with
    | Ok findings ->
      let findings =
        match
          Exochi_core.Chilite_compile.compile ~opt_level:Exochi_opt.Opt.O1
            ~name:path src
        with
        | Ok c ->
          annotate_fixed_by_opt findings (Exo_check.check_compiled c)
        | Error _ -> findings
      in
      Ok (findings, src)
    | Error e -> Error [ e ])
  | ".x3k" -> (
    match Exochi_isa.X3k_asm.assemble_all ~name:path src with
    | Ok p ->
      let findings = Exo_check.check_x3k p in
      let findings =
        annotate_fixed_by_opt findings
          (Exo_check.check_x3k (Exochi_opt.Opt.optimize Exochi_opt.Opt.O1 p))
      in
      Ok (findings, src)
    | Error es -> Error es)
  | ".s" | ".via32" -> (
    match Exochi_isa.Via32_asm.assemble_all ~name:path src with
    | Ok p -> Ok (Exo_check.check_via32 p, src)
    | Error es -> Error es)
  | ext ->
    Error
      [
        Loc.errorf (Loc.make ~file:path ~line:1 ~col:1)
          "don't know how to lint %S files (expected .chi, .x3k or .s)" ext;
      ]

let () =
  let format = ref `Text in
  let werror = ref false in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | "--format" :: ("text" | "json" | "sarif" as f) :: rest ->
      format :=
        (match f with "json" -> `Json | "sarif" -> `Sarif | _ -> `Text);
      parse rest
    | "--format" :: _ -> usage ()
    | "--werror" :: rest ->
      werror := true;
      parse rest
    | "--rules" :: _ ->
      List.iter
        (fun (id, desc) -> Printf.printf "%s  %s\n" id desc)
        Finding.rules;
      exit 0
    | ("-h" | "--help") :: _ -> usage ()
    | f :: rest ->
      files := f :: !files;
      parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let files = List.rev !files in
  if files = [] then usage ();
  let failed = ref false in
  let results =
    List.map
      (fun path ->
        match lint_file path with
        | Ok r -> (path, r)
        | Error es ->
          List.iter
            (fun e -> prerr_endline (Loc.error_to_string e))
            es;
          failed := true;
          (path, ([], "")))
      files
  in
  if !failed then exit 2;
  let all = List.concat_map (fun (_, (fs, _)) -> fs) results in
  (match !format with
  | `Json ->
    let reports =
      List.map
        (fun (path, (fs, _)) ->
          Finding.report_json ~extra:[ ("file", Tiny_json.Str path) ] fs)
        results
    in
    print_endline (Tiny_json.to_string ~indent:2 (Tiny_json.Arr reports))
  | `Sarif ->
    print_endline (Tiny_json.to_string ~indent:2 (Finding.to_sarif all))
  | `Text ->
    List.iter
      (fun (_, (fs, src)) ->
        List.iter
          (fun f ->
            print_endline (Finding.to_string f);
            Option.iter print_endline
              (Option.map
                 (fun line ->
                   Printf.sprintf "%5d | %s" f.Finding.loc.Loc.line line)
                 (Loc.source_line src f.Finding.loc.Loc.line)))
          fs)
      results;
    Printf.printf "%d error(s), %d warning(s), %d info(s) in %d file(s)\n"
      (Finding.count Finding.Error all)
      (Finding.count Finding.Warning all)
      (Finding.count Finding.Info all)
      (List.length files));
  if Finding.has_errors all then exit 1;
  if !werror && Finding.count Finding.Warning all > 0 then exit 1
