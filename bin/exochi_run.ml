(* Compile and execute a CHI-lite program on the simulated EXO platform.

     exochi_run prog.chi [--memmodel cc|noncc|copy] [--faults SEED:RATE]
                [--trace out.json] [--capacity N] [--metrics]
                [--profile out.speedscope.json] [--opt-level 0|1|2]

   print_int output goes to stdout; a simulated-platform summary follows.
   --faults installs a deterministic fault-injection plan (uniform
   per-class rate) and the self-healing runtime absorbs the faults.
   --trace records every platform event and writes a Chrome/Perfetto
   trace-event file (open in about:tracing or ui.perfetto.dev), one track
   per exo-sequencer plus the IA32 proxy track; --capacity sets the event
   ring size. --metrics prints the aggregated per-run metrics (occupancy,
   latency percentiles, proxy breakdowns) to stderr. --profile collects
   an exact per-instruction cost profile (exo frames anchored to their
   .chi sections) and writes speedscope JSON plus a
   collapsed-stack .collapsed sibling. All flags may be combined. *)

open Exochi_core

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* --list-kernels: the registry as a table — abbreviation, full name,
   ISA targets, shred decomposition and surface shapes (Small scale,
   video kernels clipped to a few frames so the listing is instant). *)
let list_kernels () =
  Printf.printf "%-14s %-26s %-12s %7s  %s\n" "KERNEL" "NAME" "ISA" "SHREDS"
    "SURFACES (small scale)";
  List.iter
    (fun k ->
      let prng = Exochi_util.Prng.create 1L in
      let io = k.Exochi_kernels.Kernel.make_io ~frames:4 prng Exochi_kernels.Kernel.Small in
      let surf =
        String.concat ", "
          (List.map
             (fun (n, img) ->
               Printf.sprintf "%s %dx%d in" n
                 img.Exochi_media.Image.width img.Exochi_media.Image.height)
             io.Exochi_kernels.Kernel.inputs
          @ List.map
              (fun (n, w, h) -> Printf.sprintf "%s %dx%d out" n w h)
              io.Exochi_kernels.Kernel.outputs)
      in
      Printf.printf "%-14s %-26s %-12s %7d  %s\n"
        k.Exochi_kernels.Kernel.abbrev k.Exochi_kernels.Kernel.name
        "X3K, VIA32" io.Exochi_kernels.Kernel.units surf)
    Exochi_kernels.Registry.all

let () =
  match Array.to_list Sys.argv with
  | _ :: "--list-kernels" :: _ -> list_kernels ()
  | _ :: path :: rest ->
    let src = read_file path in
    let name = Filename.remove_extension (Filename.basename path) in
    let memmodel =
      let rec find = function
        | "--memmodel" :: m :: _ -> (
          match m with
          | "cc" -> Exochi_memory.Memmodel.Cc_shared
          | "noncc" -> Exochi_memory.Memmodel.Non_cc_shared
          | "copy" -> Exochi_memory.Memmodel.Data_copy
          | _ ->
            prerr_endline "memmodel must be cc, noncc or copy";
            exit 1)
        | _ :: r -> find r
        | [] -> Exochi_memory.Memmodel.Cc_shared
      in
      find rest
    in
    let fault_plan =
      let rec find = function
        | "--faults" :: spec :: _ -> (
          match Exochi_faults.Fault_plan.of_spec spec with
          | Ok plan -> Some plan
          | Error msg ->
            prerr_endline msg;
            exit 1)
        | [ "--faults" ] ->
          prerr_endline "--faults requires an argument (SEED:RATE)";
          exit 1
        | _ :: r -> find r
        | [] -> None
      in
      find rest
    in
    let trace_out =
      let rec find = function
        | "--trace" :: file :: _ -> Some file
        | [ "--trace" ] ->
          prerr_endline "--trace requires an output file";
          exit 1
        | _ :: r -> find r
        | [] -> None
      in
      find rest
    in
    let profile_out =
      let rec find = function
        | "--profile" :: file :: _ -> Some file
        | [ "--profile" ] ->
          prerr_endline "--profile requires an output file";
          exit 1
        | _ :: r -> find r
        | [] -> None
      in
      find rest
    in
    let capacity =
      let rec find = function
        | "--capacity" :: n :: _ -> (
          match int_of_string_opt n with
          | Some c when c > 0 -> Some c
          | _ ->
            prerr_endline "--capacity requires a positive integer";
            exit 1)
        | [ "--capacity" ] ->
          prerr_endline "--capacity requires an argument";
          exit 1
        | _ :: r -> find r
        | [] -> None
      in
      find rest
    in
    let opt_level =
      let rec find = function
        | "--opt-level" :: v :: _ -> (
          match Exochi_opt.Opt.level_of_string v with
          | Some l -> l
          | None ->
            prerr_endline "--opt-level must be 0, 1 or 2";
            exit 1)
        | [ "--opt-level" ] ->
          prerr_endline "--opt-level requires an argument (0, 1 or 2)";
          exit 1
        | _ :: r -> find r
        | [] -> Exochi_opt.Opt.O0
      in
      find rest
    in
    let want_metrics = List.mem "--metrics" rest in
    let trace =
      if trace_out <> None || want_metrics then
        Some (Exochi_obs.Trace.create ?capacity ())
      else None
    in
    let profile = Option.map (fun _ -> Exochi_obs.Profile.create ()) profile_out in
    (match Chilite_compile.compile ~opt_level ~name src with
    | Error e ->
      prerr_endline (Exochi_isa.Loc.error_to_string e);
      exit 1
    | Ok compiled ->
      let platform = Exo_platform.create ~memmodel ?fault_plan ?trace () in
      let prog = Chilite_run.load ?profile ~platform compiled in
      Chilite_run.run prog;
      Exo_platform.emit_mem_counters platform;
      Option.iter
        (fun sink ->
          (match trace_out with
          | Some file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc (Exochi_obs.Trace_export.to_chrome sink));
            Printf.eprintf
              "[exochi] trace: %d event(s) on %d track(s) written to %s\n"
              (Exochi_obs.Trace.length sink)
              (Exochi_obs.Trace_export.track_count sink)
              file
          | None -> ());
          if want_metrics then begin
            prerr_string
              (Exochi_obs.Metrics.render (Exochi_obs.Metrics.of_sink sink));
            let dropped = Exochi_obs.Trace.dropped sink in
            if dropped > 0 then
              Printf.eprintf
                "WARNING: %d events dropped — windowed percentiles (raise \
                 --capacity or attach a live tap for exact statistics)\n"
                dropped
          end)
        trace;
      (match (profile, profile_out) with
      | Some p, Some file ->
        let write path s =
          let oc = open_out path in
          Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
              output_string oc s)
        in
        write file (Exochi_obs.Profile.to_speedscope p ~name);
        write (file ^ ".collapsed") (Exochi_obs.Profile.to_collapsed p);
        Printf.eprintf
          "[exochi] profile: %.3f ms attributed (%.3f ms exo) written to %s \
           (+ .collapsed)\n"
          (float_of_int (Exochi_obs.Profile.total_ps p) /. 1e9)
          (float_of_int (Exochi_obs.Profile.root_total_ps p ~prefix:"exo ")
          /. 1e9)
          file
      | _ -> ());
      List.iter (fun v -> Printf.printf "%d\n" v) (Chilite_run.output prog);
      let cpu = Exo_platform.cpu platform in
      let gpu = Exo_platform.gpu platform in
      Printf.eprintf
        "[exochi] %s: %.3f ms simulated (%s); %d shred(s); ATR %d proxies / %d \
         GTT hits; CEH %d\n"
        name
        (float_of_int (Exochi_cpu.Machine.now_ps cpu) /. 1e9)
        (Exochi_memory.Memmodel.name memmodel)
        (Exochi_accel.Gpu.shreds_completed gpu)
        (Exo_platform.atr_proxies platform)
        (Exo_platform.gtt_hits platform)
        (Exo_platform.ceh_proxies platform);
      match fault_plan with
      | None -> ()
      | Some plan ->
        let r = Chi_runtime.recovery (Chilite_run.runtime prog) in
        Printf.eprintf
          "[exochi] faults: %d injected (seed %Ld); recovery: %d redispatch, \
           %d doorbell re-rings, %d watchdog kills, %d quarantined, %d ATR \
           retries, %d IA32 fallbacks, %d fatal; guard: %d hedge(s) (%d \
           won), breakers %d open / %d close\n"
          (Exochi_faults.Fault_plan.injected_total plan)
          (Exochi_faults.Fault_plan.seed plan)
          r.Chi_runtime.redispatches r.Chi_runtime.doorbell_redeliveries
          r.Chi_runtime.watchdog_kills r.Chi_runtime.quarantined_seqs
          (Exo_platform.atr_transient_retries platform)
          r.Chi_runtime.fallback_shreds r.Chi_runtime.fatal
          r.Chi_runtime.hedges r.Chi_runtime.hedge_wins
          r.Chi_runtime.breaker_opens r.Chi_runtime.breaker_closes)
  | _ ->
    prerr_endline
      "usage: exochi_run <prog.chi> [--memmodel cc|noncc|copy] [--faults \
       SEED:RATE] [--trace out.json] [--capacity N] [--metrics] [--profile \
       out.speedscope.json] [--opt-level 0|1|2]\n\
      \       exochi_run --list-kernels";
    exit 1
