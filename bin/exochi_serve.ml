(* Exo-serve: run the multi-tenant kernel-job server against a generated
   workload on the simulated EXO platform.

     exochi_serve [--mode closed|open] [--jobs N] [--tenants N] [--seed S]
                  [--rate JOBS_PER_S] [--clients N] [--think-us U]
                  [--kernels NAME[:W],NAME[:W],...] [--shreds LO:HI]
                  [--deadline-us U] [--weights W,W,...] [--queue-cap N]
                  [--backlog N] [--batch-jobs N] [--batch-shreds N]
                  [--no-batch] [--faults SEED:RATE] [--metrics]
                  [--json FILE] [--trace FILE]
                  [--guard] [--audit FRAC] [--hedge-us U] [--no-hedge]
                  [--breaker-cooldown-us U] [--journal FILE] [--recover]
                  [--crash-after N]

   Closed loop (default): --clients per tenant, each submitting its next
   job --think-us after the previous one finishes — the generator that
   measures platform capacity. Open loop: --rate jobs per simulated
   second with exponential inter-arrival gaps — the generator that
   exposes overload (queueing, shedding, deadline misses).

   --metrics prints the full serving statistics as JSON (including the
   CHI runtime's recovery counters: redispatches, watchdog kills,
   quarantines, IA32 fallbacks, fatal) instead of the human report.
   --json also writes that JSON to a file. --faults installs a
   deterministic fault plan; the exit status is nonzero if any injected
   fault proved fatal (a shed job), so CI can gate on it.

   --guard turns on the Exo-guard resilience stack: output-integrity
   checking with golden-replay audits (fraction --audit, default 0.05),
   hedged re-dispatch of stragglers (--hedge-us, default 300; --no-hedge
   disables) and circuit-breaker quarantine with probationary
   reinstatement (--breaker-cooldown-us, default 2000).

   --journal FILE appends every admission/completion/shed to a
   crash-safe journal (checksummed, flushed per record). After a crash,
   --recover --journal FILE verifies the journal's fingerprint, reports
   the stranded un-acked jobs, then redoes the deterministic run while
   checking each completion against the journaled sequence; the journal
   is rewritten, byte-identical to an uninterrupted run's. --crash-after
   N SIGKILLs the process after N completions (crash-drill hook for the
   chaos test). *)

module Serve = Exochi_serving

let usage () =
  prerr_endline
    "usage: exochi_serve [--mode closed|open] [--jobs N] [--tenants N]\n\
    \         [--seed S] [--rate JOBS_PER_S] [--clients N] [--think-us U]\n\
    \         [--kernels NAME[:W],...] [--shreds LO:HI] [--deadline-us U]\n\
    \         [--weights W,...] [--queue-cap N] [--backlog N]\n\
    \         [--batch-jobs N] [--batch-shreds N] [--no-batch]\n\
    \         [--faults SEED:RATE] [--metrics] [--json FILE] [--trace FILE]\n\
    \         [--guard] [--audit FRAC] [--hedge-us U] [--no-hedge]\n\
    \         [--breaker-cooldown-us U] [--journal FILE] [--recover]\n\
    \         [--crash-after N]";
  exit 1

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* flag lookups over the raw argument list *)
  let opt name =
    let rec find = function
      | f :: v :: _ when f = name -> Some v
      | [ f ] when f = name -> die "%s requires an argument" name
      | _ :: r -> find r
      | [] -> None
    in
    find args
  in
  let flag name = List.mem name args in
  let int_opt name default =
    match opt name with
    | None -> default
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> die "%s: not an integer: %s" name v)
  in
  let float_opt name default =
    match opt name with
    | None -> default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None -> die "%s: not a number: %s" name v)
  in
  if flag "--help" || flag "-h" then usage ();
  let known =
    [ "--mode"; "--jobs"; "--tenants"; "--seed"; "--rate"; "--clients";
      "--think-us"; "--kernels"; "--shreds"; "--deadline-us"; "--weights";
      "--queue-cap"; "--backlog"; "--batch-jobs"; "--batch-shreds";
      "--no-batch"; "--faults"; "--metrics"; "--json"; "--trace";
      "--guard"; "--audit"; "--hedge-us"; "--no-hedge";
      "--breaker-cooldown-us"; "--journal"; "--recover"; "--crash-after" ]
  in
  let bare = [ "--no-batch"; "--metrics"; "--guard"; "--no-hedge"; "--recover" ] in
  let rec check = function
    | f :: rest when String.length f > 2 && String.sub f 0 2 = "--" ->
      if not (List.mem f known) then die "unknown option %s" f;
      let takes_value = not (List.mem f bare) in
      check (if takes_value then match rest with _ :: r -> r | [] -> [] else rest)
    | _ :: rest -> check rest
    | [] -> ()
  in
  check args;
  let tenants = int_opt "--tenants" 2 in
  if tenants <= 0 then die "--tenants must be positive";
  let jobs = int_opt "--jobs" 200 in
  let seed = Int64.of_int (int_opt "--seed" 42) in
  let mode =
    match Option.value (opt "--mode") ~default:"closed" with
    | "closed" ->
      Serve.Workload.Closed
        {
          clients_per_tenant = int_opt "--clients" 4;
          think_ps = int_opt "--think-us" 0 * 1_000_000;
        }
    | "open" -> Serve.Workload.Open { rate_jps = float_opt "--rate" 2000.0 }
    | m -> die "--mode must be closed or open (got %s)" m
  in
  let mix =
    let spec =
      Option.value (opt "--kernels") ~default:"SepiaTone:3,LinearFilter:1"
    in
    String.split_on_char ',' spec
    |> List.filter (fun s -> s <> "")
    |> List.map (fun entry ->
           match String.split_on_char ':' entry with
           | [ name ] -> (name, 1.0)
           | [ name; w ] -> (
             match float_of_string_opt w with
             | Some f when f > 0.0 -> (name, f)
             | _ -> die "--kernels: bad weight in %s" entry)
           | _ -> die "--kernels: bad entry %s" entry)
  in
  List.iter
    (fun (name, _) ->
      if Exochi_kernels.Registry.find name = None then
        die "--kernels: unknown kernel %s (try exochi_run --list-kernels)" name)
    mix;
  let shreds_lo, shreds_hi =
    match opt "--shreds" with
    | None -> (4, 32)
    | Some s -> (
      match String.split_on_char ':' s with
      | [ lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some l, Some h when 0 < l && l <= h -> (l, h)
        | _ -> die "--shreds: bad range %s" s)
      | _ -> die "--shreds expects LO:HI")
  in
  let deadline_slack_ps =
    match opt "--deadline-us" with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some us when us > 0 -> Some (us * 1_000_000)
      | _ -> die "--deadline-us: bad value %s" v)
  in
  let weights =
    match opt "--weights" with
    | None -> Array.make tenants 1.0
    | Some s ->
      let ws =
        String.split_on_char ',' s
        |> List.map (fun w ->
               match float_of_string_opt w with
               | Some f when f > 0.0 -> f
               | _ -> die "--weights: bad weight %s" w)
      in
      if List.length ws <> tenants then
        die "--weights: expected %d weights" tenants;
      Array.of_list ws
  in
  let queue_cap = int_opt "--queue-cap" 64 in
  let backlog = int_opt "--backlog" 96 in
  let batch =
    if flag "--no-batch" then { Serve.Batcher.max_jobs = 1; max_shreds = 256 }
    else
      {
        Serve.Batcher.max_jobs = int_opt "--batch-jobs" 32;
        max_shreds = int_opt "--batch-shreds" 256;
      }
  in
  let fault_plan =
    match opt "--faults" with
    | None -> None
    | Some spec -> (
      match Exochi_faults.Fault_plan.of_spec spec with
      | Ok plan -> Some plan
      | Error msg -> die "%s" msg)
  in
  let trace_out = opt "--trace" in
  let trace =
    if trace_out <> None then Some (Exochi_obs.Trace.create ()) else None
  in
  (* Exo-guard stack: --guard is the umbrella; --audit implies the
     integrity checker; hedging/breakers can be tuned independently *)
  let guard_on = flag "--guard" || opt "--audit" <> None in
  let audit_frac = float_opt "--audit" 0.05 in
  if audit_frac < 0.0 || audit_frac > 1.0 then
    die "--audit: fraction must be in [0,1]";
  let hedge_after_ps =
    if flag "--no-hedge" then 0
    else if opt "--hedge-us" <> None || flag "--guard" then
      int_opt "--hedge-us" 300 * 1_000_000
    else 0
  in
  let breaker_cooldown_ps =
    if opt "--breaker-cooldown-us" <> None || flag "--guard" then
      int_opt "--breaker-cooldown-us" 2000 * 1_000_000
    else 0
  in
  let config =
    {
      Serve.Server.default_config with
      tenants =
        Array.init tenants (fun i ->
            Serve.Tenant.make_config ~weight:weights.(i) ~queue_cap
              (Printf.sprintf "tenant%d" i));
      batch;
      backlog_cap = backlog;
      guard =
        (if guard_on then Some { Serve.Server.g_audit_frac = audit_frac }
         else None);
      hedge_after_ps;
      breaker_cooldown_ps;
    }
  in
  let mode_name =
    match mode with Serve.Workload.Open _ -> "open" | Closed _ -> "closed"
  in
  (* Crash-safe journal + deterministic recovery. The fingerprint hashes
     every run parameter that shapes the schedule, so --recover refuses a
     journal written by a different run. *)
  let fingerprint =
    Serve.Journal.fingerprint
      [ mode_name; string_of_int jobs; string_of_int tenants;
        Int64.to_string seed;
        Option.value (opt "--rate") ~default:"";
        Option.value (opt "--clients") ~default:"";
        Option.value (opt "--think-us") ~default:"";
        String.concat ","
          (List.map (fun (n, w) -> Printf.sprintf "%s:%g" n w) mix);
        Printf.sprintf "%d:%d" shreds_lo shreds_hi;
        Option.value (opt "--deadline-us") ~default:"";
        String.concat "," (Array.to_list (Array.map string_of_float weights));
        string_of_int queue_cap; string_of_int backlog;
        string_of_int batch.Serve.Batcher.max_jobs;
        string_of_int batch.Serve.Batcher.max_shreds;
        Option.value (opt "--faults") ~default:"";
        string_of_bool guard_on; string_of_float audit_frac;
        string_of_int hedge_after_ps; string_of_int breaker_cooldown_ps ]
  in
  let journal_path = opt "--journal" in
  let recover = flag "--recover" in
  if recover && journal_path = None then die "--recover requires --journal";
  let expect =
    if not recover then None
    else begin
      let path = Option.get journal_path in
      let rp = Serve.Journal.load path in
      (match rp.Serve.Journal.rp_fingerprint with
      | None -> die "--recover: %s is not a serve journal (no fingerprint)" path
      | Some fp when fp <> fingerprint ->
        die "--recover: journal %s was written by a different run \
             configuration" path
      | Some _ -> ());
      let unacked = Serve.Journal.unacked rp in
      Printf.eprintf
        "[exochi] recover: %s — %d admitted, %d completed, %d shed, %d \
         un-acked%s%s; redoing the run\n"
        path
        (List.length rp.Serve.Journal.rp_admitted)
        (List.length rp.Serve.Journal.rp_completed)
        (List.length rp.Serve.Journal.rp_shed)
        (List.length unacked)
        (if rp.Serve.Journal.rp_truncated then " (torn tail frame dropped)"
         else "")
        (if rp.Serve.Journal.rp_garbled > 0 then
           Printf.sprintf " (%d garbled record(s) skipped)"
             rp.Serve.Journal.rp_garbled
         else "");
      Some rp.Serve.Journal.rp_completed
    end
  in
  let journal =
    Option.map (fun p -> Serve.Journal.start p ~fingerprint) journal_path
  in
  let server = Serve.Server.create ~config ?fault_plan ?trace ?journal ?expect () in
  let spec =
    {
      (Serve.Workload.default_spec ~seed ~tenants ~jobs mode) with
      mix;
      shreds_lo;
      shreds_hi;
      deadline_slack_ps;
    }
  in
  let crash_after = int_opt "--crash-after" 0 in
  let completions = ref 0 in
  let on_job_done (_ : Serve.Job.t) =
    incr completions;
    if crash_after > 0 && !completions >= crash_after then
      (* a real crash: no atexit, no flush beyond the journal's own *)
      Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  let stats =
    Serve.Server.run ~on_job_done server (Serve.Workload.create spec)
  in
  Option.iter Serve.Journal.close journal;
  if recover then begin
    let left = Serve.Server.unverified server in
    if left > 0 then
      die
        "[exochi] recover: redo finished with %d journaled completion(s) \
         never retraced — replay diverged"
        left;
    Printf.eprintf
      "[exochi] recover: redo retraced every journaled completion; journal \
       rewritten\n"
  end;
  let json =
    Serve.Server_stats.to_json
      ~extra:[ ("mode", mode_name); ("seed", Int64.to_string seed) ]
      stats
  in
  if flag "--metrics" then print_endline json
  else print_string (Serve.Server_stats.render stats);
  (match opt "--json" with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (json ^ "\n"));
    Printf.eprintf "[exochi] serving stats written to %s\n" file);
  (match (trace_out, trace) with
  | Some file, Some sink ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Exochi_obs.Trace_export.to_chrome sink));
    Printf.eprintf "[exochi] trace: %d event(s) written to %s\n"
      (Exochi_obs.Trace.length sink) file
  | _ -> ());
  if stats.Serve.Server_stats.recovery.Serve.Server_stats.r_fatal > 0 then begin
    Printf.eprintf "[exochi] FATAL: %d unrecoverable fault(s) during serving\n"
      stats.Serve.Server_stats.recovery.Serve.Server_stats.r_fatal;
    exit 2
  end
