(* Exo-serve: run the multi-tenant kernel-job server against a generated
   workload on the simulated EXO platform.

     exochi_serve [--mode closed|open] [--jobs N] [--tenants N] [--seed S]
                  [--rate JOBS_PER_S] [--clients N] [--think-us U]
                  [--kernels NAME[:W],NAME[:W],...] [--shreds LO:HI]
                  [--deadline-us U] [--weights W,W,...] [--queue-cap N]
                  [--backlog N] [--batch-jobs N] [--batch-shreds N]
                  [--no-batch] [--faults SEED:RATE] [--metrics]
                  [--json FILE] [--trace FILE] [--capacity N]
                  [--guard] [--audit FRAC] [--hedge-us U] [--no-hedge]
                  [--breaker-cooldown-us U] [--journal FILE] [--recover]
                  [--crash-after N] [--top] [--prom FILE]
                  [--obs-interval-us U] [--profile FILE] [--static-admission]
                  [--opt LEVEL] [--devices N] [--placement least-loaded|affinity]

   Closed loop (default): --clients per tenant, each submitting its next
   job --think-us after the previous one finishes — the generator that
   measures platform capacity. Open loop: --rate jobs per simulated
   second with exponential inter-arrival gaps — the generator that
   exposes overload (queueing, shedding, deadline misses).

   --metrics prints the full serving statistics as JSON (including the
   CHI runtime's recovery counters: redispatches, watchdog kills,
   quarantines, IA32 fallbacks, fatal) instead of the human report.
   --json also writes that JSON to a file. --faults installs a
   deterministic fault plan; the exit status is nonzero if any injected
   fault proved fatal (a shed job), so CI can gate on it.

   --guard turns on the Exo-guard resilience stack: output-integrity
   checking with golden-replay audits (fraction --audit, default 0.05),
   hedged re-dispatch of stragglers (--hedge-us, default 300; --no-hedge
   disables) and circuit-breaker quarantine with probationary
   reinstatement (--breaker-cooldown-us, default 2000).

   --static-admission turns on Exo-bound static admission control: each
   kernel arena carries the analyzer's proven worst-case cycle bound,
   and a deadline job whose bound already exceeds its remaining slack is
   shed at admission ("infeasible-deadline") instead of wasting
   accelerator time on a certain miss.

   --opt LEVEL (0, 1 or 2) runs the Exo-opt backend over every arena's
   X3K program at build time; bounds, admission and execution all use
   the optimized code. Outputs are bit-identical at every level.

   --journal FILE appends every admission/completion/shed to a
   crash-safe journal (checksummed, flushed per record). After a crash,
   --recover --journal FILE verifies the journal's fingerprint, reports
   the stranded un-acked jobs, then redoes the deterministic run while
   checking each completion against the journaled sequence; the journal
   is rewritten, byte-identical to an uninterrupted run's. --crash-after
   N SIGKILLs the process after N completions (crash-drill hook for the
   chaos test).

   Exo-scope live observability: --top prints a dashboard snapshot line
   to stderr every --obs-interval-us of simulated time (throughput,
   goodput, per-tenant backlog, breaker states, p50/p99 from the exact
   streaming tap); --prom FILE rewrites FILE with a Prometheus text
   exposition at the same cadence. Both attach a Live aggregator to the
   trace tap, so their statistics stay exact even after the bounded
   event ring wraps. --capacity sets the ring size. --profile FILE
   collects the exact per-instruction cost profile of every dispatched
   kernel and writes speedscope JSON (+ a .collapsed flamegraph
   sibling). None of these flags shape the schedule, so they are
   excluded from the journal fingerprint.

   --devices N runs the platform with an N-device X3K set: each dispatch
   cycle launches up to one batch per device, pinned by --placement
   (least-loaded or affinity) and overlapped in simulated time.
   --devices 1 (the default) is bit-identical to the historical
   single-device server, journals included; a multi-device topology is
   part of the journal fingerprint, so --recover refuses a journal
   written under a different device count. *)

module Serve = Exochi_serving

let usage () =
  prerr_endline
    "usage: exochi_serve [--mode closed|open] [--jobs N] [--tenants N]\n\
    \         [--seed S] [--rate JOBS_PER_S] [--clients N] [--think-us U]\n\
    \         [--kernels NAME[:W],...] [--shreds LO:HI] [--deadline-us U]\n\
    \         [--weights W,...] [--queue-cap N] [--backlog N]\n\
    \         [--batch-jobs N] [--batch-shreds N] [--no-batch]\n\
    \         [--faults SEED:RATE] [--metrics] [--json FILE] [--trace FILE]\n\
    \         [--capacity N] [--guard] [--audit FRAC] [--hedge-us U]\n\
    \         [--no-hedge] [--breaker-cooldown-us U] [--journal FILE]\n\
    \         [--recover] [--crash-after N] [--top] [--prom FILE]\n\
    \         [--obs-interval-us U] [--profile FILE] [--static-admission]\n\
    \         [--opt LEVEL] [--devices N] [--placement least-loaded|affinity]";
  exit 1

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* flag lookups over the raw argument list *)
  let opt name =
    let rec find = function
      | f :: v :: _ when f = name -> Some v
      | [ f ] when f = name -> die "%s requires an argument" name
      | _ :: r -> find r
      | [] -> None
    in
    find args
  in
  let flag name = List.mem name args in
  let int_opt name default =
    match opt name with
    | None -> default
    | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> die "%s: not an integer: %s" name v)
  in
  let float_opt name default =
    match opt name with
    | None -> default
    | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None -> die "%s: not a number: %s" name v)
  in
  if flag "--help" || flag "-h" then usage ();
  let known =
    [ "--mode"; "--jobs"; "--tenants"; "--seed"; "--rate"; "--clients";
      "--think-us"; "--kernels"; "--shreds"; "--deadline-us"; "--weights";
      "--queue-cap"; "--backlog"; "--batch-jobs"; "--batch-shreds";
      "--no-batch"; "--faults"; "--metrics"; "--json"; "--trace";
      "--capacity"; "--guard"; "--audit"; "--hedge-us"; "--no-hedge";
      "--breaker-cooldown-us"; "--journal"; "--recover"; "--crash-after";
      "--top"; "--prom"; "--obs-interval-us"; "--profile";
      "--static-admission"; "--opt"; "--devices"; "--placement" ]
  in
  let bare =
    [ "--no-batch"; "--metrics"; "--guard"; "--no-hedge"; "--recover"; "--top";
      "--static-admission" ]
  in
  let rec check = function
    | f :: rest when String.length f > 2 && String.sub f 0 2 = "--" ->
      if not (List.mem f known) then die "unknown option %s" f;
      let takes_value = not (List.mem f bare) in
      check (if takes_value then match rest with _ :: r -> r | [] -> [] else rest)
    | _ :: rest -> check rest
    | [] -> ()
  in
  check args;
  let tenants = int_opt "--tenants" 2 in
  if tenants <= 0 then die "--tenants must be positive";
  let jobs = int_opt "--jobs" 200 in
  let seed = Int64.of_int (int_opt "--seed" 42) in
  let mode =
    match Option.value (opt "--mode") ~default:"closed" with
    | "closed" ->
      Serve.Workload.Closed
        {
          clients_per_tenant = int_opt "--clients" 4;
          think_ps = int_opt "--think-us" 0 * 1_000_000;
        }
    | "open" -> Serve.Workload.Open { rate_jps = float_opt "--rate" 2000.0 }
    | m -> die "--mode must be closed or open (got %s)" m
  in
  let mix =
    let spec =
      Option.value (opt "--kernels") ~default:"SepiaTone:3,LinearFilter:1"
    in
    String.split_on_char ',' spec
    |> List.filter (fun s -> s <> "")
    |> List.map (fun entry ->
           match String.split_on_char ':' entry with
           | [ name ] -> (name, 1.0)
           | [ name; w ] -> (
             match float_of_string_opt w with
             | Some f when f > 0.0 -> (name, f)
             | _ -> die "--kernels: bad weight in %s" entry)
           | _ -> die "--kernels: bad entry %s" entry)
  in
  List.iter
    (fun (name, _) ->
      if Exochi_kernels.Registry.find name = None then
        die "--kernels: unknown kernel %s (try exochi_run --list-kernels)" name)
    mix;
  let shreds_lo, shreds_hi =
    match opt "--shreds" with
    | None -> (4, 32)
    | Some s -> (
      match String.split_on_char ':' s with
      | [ lo; hi ] -> (
        match (int_of_string_opt lo, int_of_string_opt hi) with
        | Some l, Some h when 0 < l && l <= h -> (l, h)
        | _ -> die "--shreds: bad range %s" s)
      | _ -> die "--shreds expects LO:HI")
  in
  let deadline_slack_ps =
    match opt "--deadline-us" with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some us when us > 0 -> Some (us * 1_000_000)
      | _ -> die "--deadline-us: bad value %s" v)
  in
  let weights =
    match opt "--weights" with
    | None -> Array.make tenants 1.0
    | Some s ->
      let ws =
        String.split_on_char ',' s
        |> List.map (fun w ->
               match float_of_string_opt w with
               | Some f when f > 0.0 -> f
               | _ -> die "--weights: bad weight %s" w)
      in
      if List.length ws <> tenants then
        die "--weights: expected %d weights" tenants;
      Array.of_list ws
  in
  let queue_cap = int_opt "--queue-cap" 64 in
  let backlog = int_opt "--backlog" 96 in
  let batch =
    if flag "--no-batch" then { Serve.Batcher.max_jobs = 1; max_shreds = 256 }
    else
      {
        Serve.Batcher.max_jobs = int_opt "--batch-jobs" 32;
        max_shreds = int_opt "--batch-shreds" 256;
      }
  in
  let fault_plan =
    match opt "--faults" with
    | None -> None
    | Some spec -> (
      match Exochi_faults.Fault_plan.of_spec spec with
      | Ok plan -> Some plan
      | Error msg -> die "%s" msg)
  in
  let trace_out = opt "--trace" in
  let top = flag "--top" in
  let prom_out = opt "--prom" in
  let profile_out = opt "--profile" in
  let obs_interval_ps =
    let us = int_opt "--obs-interval-us" 5000 in
    if us <= 0 then die "--obs-interval-us must be positive";
    us * 1_000_000
  in
  let capacity =
    match opt "--capacity" with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some c when c > 0 -> Some c
      | _ -> die "--capacity requires a positive integer")
  in
  (* the dashboard and exposition feed off the trace tap, so they need a
     sink even when no trace file is written *)
  let trace =
    if trace_out <> None || top || prom_out <> None then
      Some (Exochi_obs.Trace.create ?capacity ())
    else None
  in
  let live =
    match trace with
    | Some sink when top || prom_out <> None ->
      let l = Exochi_obs.Live.create () in
      Exochi_obs.Live.attach l sink;
      Some l
    | _ -> None
  in
  (* Exo-guard stack: --guard is the umbrella; --audit implies the
     integrity checker; hedging/breakers can be tuned independently *)
  let guard_on = flag "--guard" || opt "--audit" <> None in
  let audit_frac = float_opt "--audit" 0.05 in
  if audit_frac < 0.0 || audit_frac > 1.0 then
    die "--audit: fraction must be in [0,1]";
  let hedge_after_ps =
    if flag "--no-hedge" then 0
    else if opt "--hedge-us" <> None || flag "--guard" then
      int_opt "--hedge-us" 300 * 1_000_000
    else 0
  in
  let breaker_cooldown_ps =
    if opt "--breaker-cooldown-us" <> None || flag "--guard" then
      int_opt "--breaker-cooldown-us" 2000 * 1_000_000
    else 0
  in
  let static_admission = flag "--static-admission" in
  let opt_level =
    match opt "--opt" with
    | None -> Exochi_opt.Opt.O0
    | Some v -> (
      match Exochi_opt.Opt.level_of_string v with
      | Some l -> l
      | None -> die "--opt: expected 0, 1 or 2, got %s" v)
  in
  let devices = int_opt "--devices" 1 in
  if devices <= 0 then die "--devices must be positive";
  let placement =
    match opt "--placement" with
    | None -> Serve.Placement.Least_loaded
    | Some v -> (
      match Serve.Placement.policy_of_string v with
      | Some p -> p
      | None -> die "--placement: expected least-loaded or affinity, got %s" v)
  in
  let config =
    {
      Serve.Server.default_config with
      tenants =
        Array.init tenants (fun i ->
            Serve.Tenant.make_config ~weight:weights.(i) ~queue_cap
              (Printf.sprintf "tenant%d" i));
      batch;
      backlog_cap = backlog;
      guard =
        (if guard_on then Some { Serve.Server.g_audit_frac = audit_frac }
         else None);
      hedge_after_ps;
      breaker_cooldown_ps;
      static_admission;
      opt_level;
      devices;
      placement;
    }
  in
  let mode_name =
    match mode with Serve.Workload.Open _ -> "open" | Closed _ -> "closed"
  in
  (* Crash-safe journal + deterministic recovery. The fingerprint hashes
     every run parameter that shapes the schedule, so --recover refuses a
     journal written by a different run. *)
  let fingerprint =
    Serve.Serve_journal.fingerprint
      ([ mode_name; string_of_int jobs; string_of_int tenants;
        Int64.to_string seed;
        Option.value (opt "--rate") ~default:"";
        Option.value (opt "--clients") ~default:"";
        Option.value (opt "--think-us") ~default:"";
        String.concat ","
          (List.map (fun (n, w) -> Printf.sprintf "%s:%g" n w) mix);
        Printf.sprintf "%d:%d" shreds_lo shreds_hi;
        Option.value (opt "--deadline-us") ~default:"";
        String.concat "," (Array.to_list (Array.map string_of_float weights));
        string_of_int queue_cap; string_of_int backlog;
        string_of_int batch.Serve.Batcher.max_jobs;
        string_of_int batch.Serve.Batcher.max_shreds;
        Option.value (opt "--faults") ~default:"";
        string_of_bool guard_on; string_of_float audit_frac;
        string_of_int hedge_after_ps; string_of_int breaker_cooldown_ps;
        string_of_bool static_admission;
        Exochi_opt.Opt.level_name opt_level ]
      (* A multi-device topology shapes the schedule, so it is part of
         the fingerprint — but only when devices > 1, which keeps every
         pre-device-set single-device journal verifiable unchanged. *)
      @ (if devices > 1 then
           [ Printf.sprintf "devices=%d" devices;
             "placement=" ^ Serve.Placement.policy_name placement ]
         else []))
  in
  let journal_path = opt "--journal" in
  let recover = flag "--recover" in
  if recover && journal_path = None then die "--recover requires --journal";
  let expect =
    if not recover then None
    else begin
      let path = Option.get journal_path in
      let rp = Serve.Serve_journal.load path in
      (match rp.Serve.Serve_journal.rp_fingerprint with
      | None -> die "--recover: %s is not a serve journal (no fingerprint)" path
      | Some fp when fp <> fingerprint ->
        die "--recover: journal %s was written by a different run \
             configuration" path
      | Some _ -> ());
      let unacked = Serve.Serve_journal.unacked rp in
      Printf.eprintf
        "[exochi] recover: %s — %d admitted, %d completed, %d shed, %d \
         un-acked%s%s; redoing the run\n"
        path
        (List.length rp.Serve.Serve_journal.rp_admitted)
        (List.length rp.Serve.Serve_journal.rp_completed)
        (List.length rp.Serve.Serve_journal.rp_shed)
        (List.length unacked)
        (if rp.Serve.Serve_journal.rp_truncated then " (torn tail frame dropped)"
         else "")
        (if rp.Serve.Serve_journal.rp_garbled > 0 then
           Printf.sprintf " (%d garbled record(s) skipped)"
             rp.Serve.Serve_journal.rp_garbled
         else "");
      Some rp.Serve.Serve_journal.rp_completed
    end
  in
  let journal =
    Option.map (fun p -> Serve.Serve_journal.start p ~fingerprint) journal_path
  in
  let server = Serve.Server.create ~config ?fault_plan ?trace ?journal ?expect () in
  let profile = Option.map (fun _ -> Exochi_obs.Profile.create ()) profile_out in
  Option.iter
    (fun p ->
      Exochi_core.Exo_profiler.attach_gpu p
        (Exochi_core.Exo_platform.gpu (Serve.Server.platform server)))
    profile;
  let spec =
    {
      (Serve.Workload.default_spec ~seed ~tenants ~jobs mode) with
      mix;
      shreds_lo;
      shreds_hi;
      deadline_slack_ps;
    }
  in
  let crash_after = int_opt "--crash-after" 0 in
  let completions = ref 0 in
  let on_job_done (_ : Serve.Job.t) =
    incr completions;
    if crash_after > 0 && !completions >= crash_after then
      (* a real crash: no atexit, no flush beyond the journal's own *)
      Unix.kill (Unix.getpid ()) Sys.sigkill
  in
  (* ---- Exo-scope dashboard & exposition (fed by the Live tap) ---- *)
  let write_file path s =
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
        output_string oc s)
  in
  let top_line l =
    let st = Serve.Server.stats server in
    let h = Exochi_obs.Live.job_lat l in
    let us ps = ps /. 1e6 in
    let depths =
      Serve.Server.tenant_depths server
      |> Array.to_list
      |> List.map (fun (n, d) -> Printf.sprintf "%s:%d" n d)
      |> String.concat " "
    in
    Printf.sprintf
      "[top] t=%9.3fms  done=%-5d shed=%-3d thr=%6.0f jobs/s  goodput=%6.0f  \
       p50=%7.1fus p99=%7.1fus  depth=%d [%s]  breakers=%d"
      (float_of_int (Serve.Server.now_ps server) /. 1e9)
      (Exochi_obs.Live.jobs_done l)
      (Exochi_obs.Live.jobs_shed l)
      (Exochi_obs.Live.job_throughput_jps l)
      st.Serve.Server_stats.goodput_jps
      (us (Exochi_obs.Hist.quantile h 50.0))
      (us (Exochi_obs.Hist.quantile h 99.0))
      (Serve.Server.queue_depth server)
      depths
      (Serve.Server.breakers_open server)
  in
  let prom_text l =
    let open Exochi_obs in
    let h = Live.job_lat l in
    let us ps = ps /. 1e6 in
    let f = float_of_int in
    (* per-device families exist only under a multi-device topology, so
       single-device expositions stay byte-identical *)
    let per_device =
      if Serve.Server.devices server <= 1 then []
      else
        let rows = Array.to_list (Serve.Server.device_snapshot server) in
        let lab d = [ ("device", string_of_int d) ] in
        [
          Prom.multi "exochi_device_shreds_outstanding"
            ~help:"Outstanding shreds pinned per device" Prom.Gauge
            (List.map (fun (d, sh, _, _, _) -> (lab d, f sh)) rows);
          Prom.multi "exochi_device_batches_outstanding"
            ~help:"Outstanding batches pinned per device" Prom.Gauge
            (List.map (fun (d, _, b, _, _) -> (lab d, f b)) rows);
          Prom.multi "exochi_device_breakers_open"
            ~help:"Open circuit breakers per device" Prom.Gauge
            (List.map (fun (d, _, _, op, _) -> (lab d, f op)) rows);
        ]
    in
    Prom.to_text
      ([
        Prom.gauge "exochi_sim_time_ms" ~help:"Simulated time"
          (f (Serve.Server.now_ps server) /. 1e9);
        Prom.counter "exochi_jobs_arrived_total" ~help:"Jobs past admission"
          (f (Live.jobs_arrived l));
        Prom.counter "exochi_jobs_done_total" ~help:"Jobs completed"
          (f (Live.jobs_done l));
        Prom.counter "exochi_jobs_shed_total" ~help:"Jobs rejected or dropped"
          (f (Live.jobs_shed l));
        Prom.multi "exochi_jobs_shed_by_reason" ~help:"Sheds by typed reason"
          Prom.Counter
          (Live.sheds_by_reason l
          |> List.map (fun (r, n) -> ([ ("reason", r) ], f n)));
        Prom.counter "exochi_batches_total" ~help:"Coalesced teams dispatched"
          (f (Live.batches l));
        Prom.gauge "exochi_job_throughput_jps"
          ~help:"Completed jobs per simulated second"
          (Live.job_throughput_jps l);
        Prom.gauge "exochi_job_latency_p50_us"
          ~help:"Job latency p50 (exact streaming histogram)"
          (us (Hist.quantile h 50.0));
        Prom.gauge "exochi_job_latency_p99_us"
          ~help:"Job latency p99 (exact streaming histogram)"
          (us (Hist.quantile h 99.0));
        Prom.multi "exochi_tenant_queue_depth" ~help:"Queued jobs per tenant"
          Prom.Gauge
          (Serve.Server.tenant_depths server
          |> Array.to_list
          |> List.map (fun (n, d) -> ([ ("tenant", n) ], f d)));
        Prom.gauge "exochi_breakers_open" ~help:"Open circuit breakers"
          (f (Serve.Server.breakers_open server));
        Prom.counter "exochi_sdc_detected_total"
          ~help:"Detected silent data corruptions"
          (f (Live.sdc_detected l));
        Prom.counter "exochi_trace_dropped_total"
          ~help:"Events dropped by the bounded trace ring"
          (f (match trace with Some s -> Trace.dropped s | None -> 0));
      ]
      @ per_device)
  in
  let snapshot l =
    if top then prerr_endline (top_line l);
    Option.iter (fun file -> write_file file (prom_text l)) prom_out
  in
  (* last snapshot's simulated time; 0 also suppresses a t=0 snapshot *)
  let last_obs = ref 0 in
  let on_cycle () =
    Option.iter
      (fun l ->
        let now = Serve.Server.now_ps server in
        if now - !last_obs >= obs_interval_ps then begin
          last_obs := now;
          snapshot l
        end)
      live
  in
  let stats =
    Serve.Server.run ~on_job_done ~on_cycle server (Serve.Workload.create spec)
  in
  (* final snapshot so --prom always reflects the finished run *)
  Option.iter snapshot live;
  Option.iter Serve.Serve_journal.close journal;
  if recover then begin
    let left = Serve.Server.unverified server in
    if left > 0 then
      die
        "[exochi] recover: redo finished with %d journaled completion(s) \
         never retraced — replay diverged"
        left;
    Printf.eprintf
      "[exochi] recover: redo retraced every journaled completion; journal \
       rewritten\n"
  end;
  let json =
    Serve.Server_stats.to_json
      ~extra:[ ("mode", mode_name); ("seed", Int64.to_string seed) ]
      stats
  in
  if flag "--metrics" then print_endline json
  else print_string (Serve.Server_stats.render stats);
  (match trace with
  | Some sink when flag "--metrics" && Exochi_obs.Trace.dropped sink > 0 ->
    Printf.eprintf
      "WARNING: %d events dropped — windowed percentiles (raise --capacity; \
       Live tap statistics above stay exact)\n"
      (Exochi_obs.Trace.dropped sink)
  | _ -> ());
  (match (profile, profile_out) with
  | Some p, Some file ->
    write_file file
      (Exochi_obs.Profile.to_speedscope p
         ~name:(Printf.sprintf "exochi_serve %s seed %Ld" mode_name seed));
    write_file (file ^ ".collapsed") (Exochi_obs.Profile.to_collapsed p);
    Printf.eprintf
      "[exochi] profile: %.3f ms exo-sequencer cost attributed, written to \
       %s (+ .collapsed)\n"
      (float_of_int (Exochi_obs.Profile.root_total_ps p ~prefix:"exo ")
      /. 1e9)
      file
  | _ -> ());
  (match opt "--json" with
  | None -> ()
  | Some file ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (json ^ "\n"));
    Printf.eprintf "[exochi] serving stats written to %s\n" file);
  (match (trace_out, trace) with
  | Some file, Some sink ->
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (Exochi_obs.Trace_export.to_chrome sink));
    Printf.eprintf "[exochi] trace: %d event(s) written to %s\n"
      (Exochi_obs.Trace.length sink) file
  | _ -> ());
  if stats.Serve.Server_stats.recovery.Serve.Server_stats.r_fatal > 0 then begin
    Printf.eprintf "[exochi] FATAL: %d unrecoverable fault(s) during serving\n"
      stats.Serve.Server_stats.recovery.Serve.Server_stats.r_fatal;
    exit 2
  end
