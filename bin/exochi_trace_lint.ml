(* Validate an exported Chrome/Perfetto trace-event file:

     exochi_trace_lint trace.json [--min-tracks N]

   Checks the file is well-formed JSON with a traceEvents array, that
   every event carries ph/pid/tid/ts (dur on "X" slices), and that
   timestamps are monotonically non-decreasing per track. CI runs this
   over the example trace it uploads as an artifact. Exit 0 on success. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let usage () =
    prerr_endline "usage: exochi_trace_lint <trace.json> [--min-tracks N]";
    exit 2
  in
  match Array.to_list Sys.argv with
  | _ :: path :: rest ->
    let min_tracks =
      match rest with
      | [] -> 0
      | [ "--min-tracks"; n ] -> (
        match int_of_string_opt n with Some n -> n | None -> usage ())
      | _ -> usage ()
    in
    let text =
      try read_file path
      with Sys_error msg ->
        prerr_endline ("exochi_trace_lint: " ^ msg);
        exit 1
    in
    (match Exochi_obs.Trace_export.validate_chrome text with
    | Error msg ->
      Printf.eprintf "exochi_trace_lint: %s: INVALID: %s\n" path msg;
      exit 1
    | Ok v ->
      if v.Exochi_obs.Trace_export.tracks < min_tracks then begin
        Printf.eprintf
          "exochi_trace_lint: %s: only %d track(s), expected at least %d\n"
          path v.Exochi_obs.Trace_export.tracks min_tracks;
        exit 1
      end;
      Printf.printf
        "%s: OK (%d track(s), %d event(s), %d counter sample(s); per-track \
         timestamps monotonic)\n"
        path v.Exochi_obs.Trace_export.tracks v.Exochi_obs.Trace_export.events
        v.Exochi_obs.Trace_export.counters)
  | _ -> usage ()
