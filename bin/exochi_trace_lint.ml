(* Validate an exported Chrome/Perfetto trace-event file:

     exochi_trace_lint trace.json [--min-tracks N] [--allow-dropped]

   Checks the file is well-formed JSON with a traceEvents array, that
   every event carries ph/pid/tid/ts (dur on "X" slices), and that
   timestamps are monotonically non-decreasing per track. A file whose
   exochi_sink metadata records ring drops fails the lint — the export
   is a tail window of the run, not the run — unless --allow-dropped is
   given. CI runs this over the example trace it uploads as an artifact.
   Exit 0 on success. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let () =
  let usage () =
    prerr_endline
      "usage: exochi_trace_lint <trace.json> [--min-tracks N] \
       [--allow-dropped]";
    exit 2
  in
  match Array.to_list Sys.argv with
  | _ :: path :: rest ->
    let min_tracks = ref 0 and allow_dropped = ref false in
    let rec parse = function
      | [] -> ()
      | "--min-tracks" :: n :: r -> (
        match int_of_string_opt n with
        | Some n ->
          min_tracks := n;
          parse r
        | None -> usage ())
      | "--allow-dropped" :: r ->
        allow_dropped := true;
        parse r
      | _ -> usage ()
    in
    parse rest;
    let min_tracks = !min_tracks and allow_dropped = !allow_dropped in
    let text =
      try read_file path
      with Sys_error msg ->
        prerr_endline ("exochi_trace_lint: " ^ msg);
        exit 1
    in
    (match Exochi_obs.Trace_export.validate_chrome text with
    | Error msg ->
      Printf.eprintf "exochi_trace_lint: %s: INVALID: %s\n" path msg;
      exit 1
    | Ok v ->
      if v.Exochi_obs.Trace_export.tracks < min_tracks then begin
        Printf.eprintf
          "exochi_trace_lint: %s: only %d track(s), expected at least %d\n"
          path v.Exochi_obs.Trace_export.tracks min_tracks;
        exit 1
      end;
      if v.Exochi_obs.Trace_export.dropped > 0 && not allow_dropped then begin
        Printf.eprintf
          "exochi_trace_lint: %s: %d event(s) dropped — the ring wrapped, \
           so this export is a tail window of the run, not the run \
           (re-record with a larger --capacity, or pass --allow-dropped)\n"
          path v.Exochi_obs.Trace_export.dropped;
        exit 1
      end;
      Printf.printf
        "%s: OK (%d track(s), %d event(s), %d counter sample(s)%s; \
         per-track timestamps monotonic)\n"
        path v.Exochi_obs.Trace_export.tracks v.Exochi_obs.Trace_export.events
        v.Exochi_obs.Trace_export.counters
        (if v.Exochi_obs.Trace_export.dropped > 0 then
           Printf.sprintf ", %d dropped" v.Exochi_obs.Trace_export.dropped
         else ""))
  | _ -> usage ()
