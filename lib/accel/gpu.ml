open Exochi_util
open Exochi_memory
open Exochi_isa.X3k_ast
module Fault_plan = Exochi_faults.Fault_plan
module Trace = Exochi_obs.Trace

type config = {
  clock_mhz : int;
  eus : int;
  threads_per_eu : int;
  cache_bytes : int;
  cache_ways : int;
  line_bytes : int;
  tlb_entries : int;
  dispatch_cycles : int;
  switch_on_stall : bool;
  fault_plan : Fault_plan.t option;
  trace : Trace.sink option;
  dev : int;  (* device index in the platform's device set *)
}

let default_config =
  {
    clock_mhz = 667;
    eus = 8;
    threads_per_eu = 4;
    cache_bytes = 128 * 1024;
    cache_ways = 8;
    line_bytes = 64;
    tlb_entries = 128;
    dispatch_cycles = 120;
    switch_on_stall = true;
    fault_plan = None;
    trace = None;
    dev = 0;
  }

type shred = { shred_id : int; entry : int; params : int array }

type fault_request = {
  fault_op : opcode;
  fault_dtype : dtype;
  lane_a : int array;
  lane_b : int array;
}

type hooks = {
  atr : vpage:int -> now_ps:int -> Pte.X3k.t option * int;
  ceh : fault_request -> now_ps:int -> int array * int;
  ceh_spurious : now_ps:int -> int;
  mem_delay : paddr:int -> bytes:int -> write:bool -> now_ps:int -> int;
  on_shred_done : shred -> now_ps:int -> unit;
}

exception Stuck of string

exception
  Gpu_segfault of { vaddr : int; vpage : int; shred_id : int }

type ctx_state =
  | Idle
  | Ready
  | Stalled of int (* resume at ps *)
  | Wait_sem of int
  | Hung (* injected fault: the context stopped retiring *)

type ctx = {
  mutable state : ctx_state;
  mutable pc : int;
  vregs : int array; (* 128 regs x 16 lanes *)
  reg_ready : int array; (* per-register scoreboard, ps *)
  flags : int array; (* 4 flag registers, 16-bit lane masks *)
  flag_ready : int array;
  mutable shred : shred option;
  mutable store_done : int; (* last posted store completion *)
  mutable started : int; (* dispatch timestamp, for the watchdog *)
  mutable fails : int; (* consecutive reaps on this slot *)
  mutable completions : int; (* shreds retired by this slot, ever *)
  mutable disabled : bool; (* quarantined: removed from the eligible set *)
  mutable sems_held : int list;
}

type eu = {
  eu_id : int;
  ctxs : ctx array;
  mutable now : int;
  mutable current : int;
  mutable streak : int; (* consecutive issues from the current context *)
}

type binding = { prog : program; surf_table : Surface.t array }

(* One entry per hedged shred id. The entry exists while copies race;
   the first copy to retire wins, cancels the others and removes the
   entry — removal is load-bearing because shred ids restart at 0 with
   every team, so a stale entry would hijack a later team's shred. *)
type hedge_entry = { mutable won : bool }

type t = {
  cfg : config;
  aspace : Address_space.t;
  bus : Bus.t;
  hooks : hooks;
  clock : Timebase.clock;
  cycle : int; (* ps *)
  cache : Cache.t;
  gtlb : Pte.X3k.t Tlb.t;
  eus : eu array;
  queue : shred Queue.t;
  parked : shred Queue.t; (* enqueued but doorbell lost: invisible to EUs *)
  mutable binding : binding option;
  mutable nshred : int; (* team size visible as %nshred *)
  mutable spawn_counter : int;
  sem_held : bool array;
  mutable sem_waiters : (int * int) list array; (* (eu, slot) *)
  pending_regs : (int, (int * int array) list ref) Hashtbl.t;
  hedged : (int, hedge_entry) Hashtbl.t; (* shred_id -> race state *)
  mutable hedge_wins_ : int;
  mutable sampler_busy : int;
  (* counters *)
  mutable retired : int;
  mutable switches : int;
  mutable busy_cyc : int;
  mutable stall_cyc : int;
  mutable completed : int;
  mutable sampler_reqs : int;
  mutable last_done : int; (* time the most recent shred finished *)
  mutable operand_stall_ps : int;
  (* Exo-scope profiler hook: called once per retired instruction with
     the bound program, the pc that issued, and its exact simulated cost
     in ps. Must be pure accumulation — no clock / PRNG / machine state —
     so profiled runs stay bit- and time-identical (same contract as the
     trace sink). *)
  mutable prof : (prog:program -> pc:int -> cost_ps:int -> unit) option;
}

let mk_ctx () =
  {
    state = Idle;
    pc = 0;
    vregs = Array.make (128 * 16) 0;
    reg_ready = Array.make 128 0;
    flags = Array.make 4 0;
    flag_ready = Array.make 4 0;
    shred = None;
    store_done = 0;
    started = 0;
    fails = 0;
    completions = 0;
    disabled = false;
    sems_held = [];
  }

let create ?(config = default_config) ~aspace ~bus ~hooks () =
  let clock = Timebase.clock ~mhz:config.clock_mhz in
  {
    cfg = config;
    aspace;
    bus;
    hooks;
    clock;
    cycle = Timebase.ps_per_cycle clock;
    cache =
      Cache.create ~name:"gpu-cache" ~size_bytes:config.cache_bytes
        ~line_bytes:config.line_bytes ~ways:config.cache_ways;
    gtlb = Tlb.create ~entries:config.tlb_entries;
    eus =
      Array.init config.eus (fun eu_id ->
          {
            eu_id;
            ctxs = Array.init config.threads_per_eu (fun _ -> mk_ctx ());
            now = 0;
            current = 0;
            streak = 0;
          });
    queue = Queue.create ();
    parked = Queue.create ();
    binding = None;
    nshred = 0;
    spawn_counter = 0;
    sem_held = Array.make 16 false;
    sem_waiters = Array.make 16 [];
    pending_regs = Hashtbl.create 64;
    hedged = Hashtbl.create 16;
    hedge_wins_ = 0;
    sampler_busy = 0;
    retired = 0;
    switches = 0;
    busy_cyc = 0;
    stall_cyc = 0;
    completed = 0;
    sampler_reqs = 0;
    last_done = 0;
    operand_stall_ps = 0;
    prof = None;
  }

let set_profiler t f = t.prof <- Some f
let clear_profiler t = t.prof <- None

let config t = t.cfg
let clock t = t.clock
let cache t = t.cache
let tlb t = t.gtlb

let now_ps t = Array.fold_left (fun acc eu -> max acc eu.now) 0 t.eus

(* Tracing reads simulator state only — no clock, counter, or PRNG is
   touched — so a traced run is time-for-time and bit-for-bit identical
   to an untraced one; without a sink each site costs one [match]. *)
let trace_emit t ~ts ?dur ~seq kind =
  match t.cfg.trace with
  | None -> ()
  | Some sink -> Trace.emit sink ~ts_ps:ts ?dur_ps:dur ~dev:t.cfg.dev ~seq kind

let bind t ~prog ~surfaces =
  if Array.length surfaces < Array.length prog.surfaces then
    invalid_arg "Gpu.bind: surface table smaller than program slot table";
  t.binding <- Some { prog; surf_table = surfaces }

(* One SIGNAL doorbell covers the whole batch: if the fault plan drops
   it, the shreds sit in shared memory ([parked]) but no EU ever polls
   them until the runtime re-rings the doorbell. *)
let enqueue t shreds =
  t.nshred <- t.nshred + List.length shreds;
  let lost =
    match t.cfg.fault_plan with
    | Some plan -> Fault_plan.decide plan Fault_plan.Lost_signal
    | None -> false
  in
  (match t.cfg.trace with
  | None -> ()
  | Some _ ->
    let ts = now_ps t in
    List.iter
      (fun s ->
        trace_emit t ~ts ~seq:Trace.Ia32
          (Trace.Shred_enqueue { shred_id = s.shred_id }))
      shreds;
    trace_emit t ~ts ~seq:Trace.Ia32
      (Trace.Signal_doorbell { shreds = List.length shreds; lost });
    if lost then
      trace_emit t ~ts ~seq:Trace.Ia32
        (Trace.Fault_injected { cls = "lost-signal" }));
  let q = if lost then t.parked else t.queue in
  List.iter (fun s -> Queue.add s q) shreds

(* Re-dispatch of already-counted shreds (recovery): the team size must
   not grow, and the recovery doorbell is assumed reliable. *)
let reenqueue t shreds = List.iter (fun s -> Queue.add s t.queue) shreds

let redeliver_doorbell t =
  let n = Queue.length t.parked in
  Queue.transfer t.parked t.queue;
  if n > 0 then
    trace_emit t ~ts:(now_ps t) ~seq:Trace.Ia32
      (Trace.Doorbell_redeliver { shreds = n });
  n

let parked_count t = Queue.length t.parked

let drain_queue t =
  let acc = ref [] in
  Queue.iter (fun s -> acc := s :: !acc) t.queue;
  Queue.iter (fun s -> acc := s :: !acc) t.parked;
  Queue.clear t.queue;
  Queue.clear t.parked;
  List.rev !acc

let queue_length t = Queue.length t.queue
let shreds_completed t = t.completed

let quiescent t =
  Queue.is_empty t.queue
  && Array.for_all
       (fun eu -> Array.for_all (fun c -> c.state = Idle) eu.ctxs)
       t.eus

let advance_to_ps t ps =
  Array.iter (fun eu -> if eu.now < ps then eu.now <- ps) t.eus

let last_shred_done t = t.last_done
let operand_stall_ps t = t.operand_stall_ps
let instructions_retired t = t.retired
let thread_switches t = t.switches
let stall_cycles t = t.stall_cyc
let busy_cycles t = t.busy_cyc
let cycle_ps t = t.cycle
let hw_contexts t = t.cfg.eus * t.cfg.threads_per_eu
let sampler_requests t = t.sampler_reqs

let reset_counters t =
  t.retired <- 0;
  t.switches <- 0;
  t.busy_cyc <- 0;
  t.stall_cyc <- 0;
  t.sampler_reqs <- 0;
  Cache.reset_stats t.cache;
  Tlb.reset_stats t.gtlb

let flush_cache t =
  let dirty = Cache.flush_all t.cache in
  let bytes = List.length dirty * Cache.line_bytes t.cache in
  if bytes > 0 then ignore (Bus.request t.bus ~now_ps:(now_ps t) ~bytes);
  bytes

(* ---- register file access ---- *)

let reg_lane ctx reg lane = ctx.vregs.((reg * 16) + lane)
let set_reg_lane ctx reg lane v = ctx.vregs.((reg * 16) + lane) <- v

(* Map a logical lane index of an operand to (register, lane-in-reg). *)
let operand_slot ~width op j =
  match op with
  | Reg r -> (r, j)
  | Range (a, b) ->
    let count = b - a + 1 in
    let per = width / count in
    (a + (j / per), j mod per)
  | _ -> invalid_arg "operand_slot"

(* Latest readiness among registers an operand touches. *)
let operand_ready ctx ~width = function
  | Reg r -> ctx.reg_ready.(r)
  | Range (a, b) ->
    ignore width;
    let r = ref 0 in
    for k = a to b do
      r := max !r ctx.reg_ready.(k)
    done;
    !r
  | Flag f -> ctx.flag_ready.(f)
  | Surf { index; _ } -> ctx.reg_ready.(index)
  | Surf2d { xreg; yreg; _ } -> max ctx.reg_ready.(xreg) ctx.reg_ready.(yreg)
  | Remote { shred_reg; _ } -> ctx.reg_ready.(shred_reg)
  | Imm _ | Sreg _ -> 0

let read_lanes t ctx ~width op =
  match op with
  | Reg _ | Range _ ->
    Array.init width (fun j ->
        let r, l = operand_slot ~width op j in
        reg_lane ctx r l)
  | Imm i -> Array.make width (Lane.wrap32 (Int32.to_int i))
  | Sreg Lane -> Array.init width (fun j -> j)
  | Sreg s ->
    let v =
      match (s, ctx.shred) with
      | Sid, Some sh -> sh.shred_id
      | Sid, None -> 0
      | Nshred, _ -> t.nshred
      | Eu, _ -> 0 (* patched by caller when needed *)
      | Tid, _ -> 0
      | Lane, _ -> assert false
      | Param n, Some sh ->
        if n < Array.length sh.params then sh.params.(n) else 0
      | Param _, None -> 0
    in
    Array.make width v
  | Flag f -> Array.make width ctx.flags.(f)
  | Surf _ | Surf2d _ | Remote _ -> invalid_arg "read_lanes: memory operand"

let write_lanes ctx ~width op lanes ~ready =
  match op with
  | Reg _ | Range _ ->
    for j = 0 to width - 1 do
      let r, l = operand_slot ~width op j in
      set_reg_lane ctx r l lanes.(j)
    done;
    (match op with
    | Reg r -> ctx.reg_ready.(r) <- max ctx.reg_ready.(r) ready
    | Range (a, b) ->
      for k = a to b do
        ctx.reg_ready.(k) <- max ctx.reg_ready.(k) ready
      done
    | _ -> ())
  | _ -> invalid_arg "write_lanes"

(* Predication mask for the current instruction: which lanes execute. *)
let pred_mask ctx ~width = function
  | None -> (1 lsl width) - 1
  | Some { flag; negate } ->
    let m = ctx.flags.(flag) in
    let m = if negate then lnot m else m in
    m land ((1 lsl width) - 1)

let apply_pred ~mask ~width old_lanes new_lanes =
  Array.init width (fun j ->
      if (mask lsr j) land 1 = 1 then new_lanes.(j) else old_lanes.(j))

(* ---- memory path ---- *)

(* Translate one page through the exo TLB; [`Stall ps] means an ATR proxy
   round-trip was initiated and the instruction must replay. *)
let translate_page t eu vaddr =
  let vpage = vaddr lsr Phys_mem.page_shift in
  match Tlb.lookup t.gtlb ~vpage with
  | Some pte when Pte.X3k.valid pte ->
    `Ok ((Pte.X3k.frame pte lsl Phys_mem.page_shift)
        lor (vaddr land (Phys_mem.page_size - 1)))
  | _ -> (
    trace_emit t ~ts:eu.now
      ~seq:(Trace.Exo { eu = eu.eu_id; slot = eu.current })
      (Trace.Atr_tlb_miss { vpage });
    match t.hooks.atr ~vpage ~now_ps:eu.now with
    | Some pte, done_ps ->
      Tlb.insert t.gtlb ~vpage pte;
      `Stall done_ps
    | None, _ ->
      let shred_id =
        match eu.ctxs.(eu.current).shred with
        | Some sh -> sh.shred_id
        | None -> -1
      in
      raise (Gpu_segfault { vaddr; vpage; shred_id }))

(* Timing for an access to a translated physical range. Returns the
   completion timestamp. *)
let timed_access t eu ~paddr ~bytes ~write =
  let extra = t.hooks.mem_delay ~paddr ~bytes ~write ~now_ps:eu.now in
  let start = eu.now + extra in
  let results = Cache.access_range t.cache ~addr:paddr ~len:bytes ~write in
  let hit_lat = 20 * t.cycle in
  List.fold_left
    (fun acc (r : Cache.access_result) ->
      if r.hit then max acc (start + hit_lat)
      else begin
        (* victim writebacks are posted *)
        Option.iter
          (fun _wb ->
            ignore
              (Bus.request t.bus ~now_ps:start ~bytes:(Cache.line_bytes t.cache)))
          r.writeback;
        if write then
          (* write-combining: no read-for-ownership fetch; the dirty line
             pays its transfer when written back *)
          max acc (start + hit_lat)
        else begin
          let done_ps =
            Bus.request t.bus ~now_ps:start ~bytes:(Cache.line_bytes t.cache)
          in
          max acc done_ps
        end
      end)
    (start + hit_lat) results

(* Functional element read/write through physical memory. *)
let mem = Address_space.phys_mem

let read_elem t ~paddr ~dtype =
  let m = mem t.aspace in
  match dtype with
  | B -> Phys_mem.read_u8 m paddr
  | W -> Lane.wrap W (Phys_mem.read_u16 m paddr)
  | DW | F -> Lane.wrap32 (Int32.to_int (Phys_mem.read_u32 m paddr))

let write_elem t ~paddr ~dtype v =
  let m = mem t.aspace in
  match dtype with
  | B -> Phys_mem.write_u8 m paddr (v land 0xff)
  | W -> Phys_mem.write_u16 m paddr (v land 0xffff)
  | DW | F -> Phys_mem.write_u32 m paddr (Int32.of_int v)

(* Element addresses for a surface access. 1-D [Surf] addressing treats
   the surface as a row-major element array; [Surf2d] walks along a row. *)
let surface t slot =
  match t.binding with
  | None -> invalid_arg "Gpu: no binding"
  | Some b ->
    if slot >= Array.length b.surf_table then invalid_arg "Gpu: surface slot";
    b.surf_table.(slot)

let element_vaddrs t ctx ~width op =
  match op with
  | Surf { slot; index; offset } ->
    let s = surface t slot in
    let base_idx = reg_lane ctx index 0 + offset in
    Array.init width (fun k ->
        let e = base_idx + k in
        let x = e mod s.Surface.width and y = e / s.Surface.width in
        Surface.element_addr s ~x ~y)
  | Surf2d { slot; xreg; yreg } ->
    let s = surface t slot in
    let x0 = reg_lane ctx xreg 0 and y = reg_lane ctx yreg 0 in
    Array.init width (fun k -> Surface.element_addr s ~x:(x0 + k) ~y)
  | _ -> invalid_arg "element_vaddrs"

let gather_vaddrs t ctx ~width op =
  match op with
  | Surf { slot; index; offset } ->
    let s = surface t slot in
    Array.init width (fun k ->
        let e = reg_lane ctx index k + offset in
        let x = e mod s.Surface.width and y = e / s.Surface.width in
        Surface.element_addr s ~x ~y)
  | _ -> invalid_arg "gather_vaddrs"

(* Translate all pages covered by a set of element addresses.
   Returns physical addresses or the latest stall time. *)
let translate_all t eu vaddrs =
  let n = Array.length vaddrs in
  let paddrs = Array.make n 0 in
  let stall = ref 0 in
  for k = 0 to n - 1 do
    match translate_page t eu vaddrs.(k) with
    | `Ok pa -> paddrs.(k) <- pa
    | `Stall ps -> stall := max !stall ps
  done;
  if !stall > 0 then `Stall !stall else `Ok paddrs

(* ---- semaphores ---- *)

let sem_release t sem =
  match t.sem_waiters.(sem) with
  | [] -> t.sem_held.(sem) <- false
  | (e, s) :: rest ->
    t.sem_waiters.(sem) <- rest;
    let ctx = t.eus.(e).ctxs.(s) in
    (* hand the semaphore to the waiter and wake it *)
    ctx.state <- Stalled (t.eus.(e).now + (10 * t.cycle));
    ctx.sems_held <- sem :: ctx.sems_held;
    ctx.pc <- ctx.pc + 1 (* its semacq completes *)

(* ---- sampler ---- *)

(* Bilinear sample of a bpp=1 surface at Q16.16 texel coordinates. *)
(* 8-bit interpolation fractions: every intermediate fits in a signed
   32-bit register, so the software-emulated IA32 path can reproduce the
   fixed-function result exactly. *)
let sample_value t s ~u ~v =
  let m = mem t.aspace in
  let clampi lo hi x = if x < lo then lo else if x > hi then hi else x in
  let xi = u asr 16 and yi = v asr 16 in
  let fx = (u asr 8) land 0xff and fy = (v asr 8) land 0xff in
  let texel x y =
    let x = clampi 0 (s.Surface.width - 1) x
    and y = clampi 0 (s.Surface.height - 1) y in
    let va = Surface.element_addr s ~x ~y in
    (* the sampler has its own translation path; functional access only
       here, timing is charged by the caller *)
    match Page_table.translate (Address_space.page_table t.aspace) ~vaddr:va with
    | Some pa -> Phys_mem.read_u8 m pa
    | None -> 0
  in
  let t00 = texel xi yi
  and t10 = texel (xi + 1) yi
  and t01 = texel xi (yi + 1)
  and t11 = texel (xi + 1) (yi + 1) in
  let top = (t00 lsl 8) + ((t10 - t00) * fx) in
  let bot = (t01 lsl 8) + ((t11 - t01) * fx) in
  ((top lsl 8) + ((bot - top) * fy) + 32768) asr 16

(* ---- ALU semantics ---- *)

let alu_result op dtype a b =
  match op with
  | Add -> Lane.add dtype a b
  | Sub -> Lane.sub dtype a b
  | Mul -> Lane.mul dtype a b
  | Min -> Lane.min_ dtype a b
  | Max -> Lane.max_ dtype a b
  | Avg -> Lane.avg dtype a b
  | Shl -> Lane.shl dtype a b
  | Shr -> Lane.shr dtype a b
  | Sar -> Lane.sar dtype a b
  | And -> Lane.and_ a b
  | Or -> Lane.or_ a b
  | Xor -> Lane.xor_ a b
  | Fadd -> Lane.fadd a b
  | Fsub -> Lane.fsub a b
  | Fmul -> Lane.fmul a b
  | Fmin -> Lane.fmin a b
  | Fmax -> Lane.fmax a b
  | _ -> invalid_arg "alu_result"

let unary_result op dtype a =
  match op with
  | Mov -> Lane.wrap dtype a
  | Abs -> Lane.abs_ dtype a
  | Not -> Lane.not_ dtype a
  | Sat -> Lane.saturate dtype a
  | Fabs -> Lane.fabs a
  | Cvtif -> Lane.cvtif a
  | Cvtfi -> Lane.cvtfi a
  | _ -> invalid_arg "unary_result"

(* ---- instruction execution ---- *)

type exec_outcome =
  | Advance (* pc + 1 *)
  | Goto of int
  | Replay of int (* stall until ps, do not advance pc *)
  | Finished (* shred ended *)
  | Blocked_sem of int

(* Results bypass to the next instruction (1-cycle effective ALU
   latency); multiplies and float ops are longer, and memory readiness
   comes from the cache/bus path. The cycle counts live in [X3k_cost]
   so the Exo-opt list scheduler plans against the same numbers. *)
let lat_alu t = Exochi_isa.X3k_cost.alu_latency_cycles * t.cycle
let lat_mul t = Exochi_isa.X3k_cost.mul_latency_cycles * t.cycle
let lat_fdiv t = Exochi_isa.X3k_cost.fdiv_latency_cycles * t.cycle
let lat_fsqrt t = Exochi_isa.X3k_cost.fsqrt_latency_cycles * t.cycle
let lat_cmp t = Exochi_isa.X3k_cost.cmp_latency_cycles * t.cycle

let issue_cycles = Exochi_isa.X3k_cost.issue_cycles

let exec_instr t eu slot =
  let ctx = eu.ctxs.(slot) in
  let b = Option.get t.binding in
  let i = b.prog.instrs.(ctx.pc) in
  let width = i.width in
  (* operand readiness *)
  let ready_needed =
    List.fold_left
      (fun acc o -> max acc (operand_ready ctx ~width o))
      (match i.dst with
      | Some ((Reg _ | Range _) as d) -> operand_ready ctx ~width d
      | Some (Surf _ as d) | Some (Surf2d _ as d) -> operand_ready ctx ~width d
      | Some (Remote _ as d) -> operand_ready ctx ~width d
      | _ -> 0)
      i.srcs
  in
  let ready_needed =
    match i.pred with
    | Some { flag; _ } -> max ready_needed ctx.flag_ready.(flag)
    | None -> ready_needed
  in
  if ready_needed > eu.now then begin
    t.operand_stall_ps <- t.operand_stall_ps + (ready_needed - eu.now);
    Replay ready_needed
  end
  else if
    (match t.cfg.fault_plan with
    | None -> false
    | Some plan -> (
      match i.op with
      | Nop | End | Br _ | Jmp | Fence | Semacq | Semrel -> false
      | _ -> Fault_plan.decide plan Fault_plan.Ceh_spurious))
  then begin
    (* injected spurious CEH trap: the IA32 handler finds nothing to
       emulate and resumes the shred, which replays the instruction *)
    trace_emit t ~ts:eu.now
      ~seq:(Trace.Exo { eu = eu.eu_id; slot })
      (Trace.Fault_injected { cls = "ceh-spurious" });
    Replay (t.hooks.ceh_spurious ~now_ps:eu.now)
  end
  else begin
    let mask = pred_mask ctx ~width i.pred in
    let src n = List.nth i.srcs n in
    let outcome =
      match i.op with
      | Nop -> Advance
      | Add | Sub | Mul | Min | Max | Avg | Shl | Shr | Sar | And | Or | Xor
      | Fadd | Fsub | Fmul | Fmin | Fmax ->
        let a = read_lanes t ctx ~width (src 0) in
        let bl = read_lanes t ctx ~width (src 1) in
        let res = Array.init width (fun j -> alu_result i.op i.dtype a.(j) bl.(j)) in
        let dst = Option.get i.dst in
        let old = read_lanes t ctx ~width dst in
        let lat = match i.op with Mul -> lat_mul t | _ -> lat_alu t in
        write_lanes ctx ~width dst
          (apply_pred ~mask ~width old res)
          ~ready:(eu.now + lat);
        Advance
      | Mac | Fmac ->
        let a = read_lanes t ctx ~width (src 0) in
        let bl = read_lanes t ctx ~width (src 1) in
        let dst = Option.get i.dst in
        let acc = read_lanes t ctx ~width dst in
        let res =
          Array.init width (fun j ->
              if i.op = Mac then
                Lane.add i.dtype acc.(j) (Lane.mul i.dtype a.(j) bl.(j))
              else Lane.fadd acc.(j) (Lane.fmul a.(j) bl.(j)))
        in
        write_lanes ctx ~width dst
          (apply_pred ~mask ~width acc res)
          ~ready:(eu.now + lat_mul t);
        Advance
      | Bcast ->
        let a = read_lanes t ctx ~width (src 0) in
        let res = Array.make width (Lane.wrap i.dtype a.(0)) in
        let dst = Option.get i.dst in
        let old = read_lanes t ctx ~width dst in
        write_lanes ctx ~width dst
          (apply_pred ~mask ~width old res)
          ~ready:(eu.now + lat_alu t);
        Advance
      | Mov | Abs | Not | Sat | Fabs | Cvtif | Cvtfi ->
        let a = read_lanes t ctx ~width (src 0) in
        let res = Array.map (unary_result i.op i.dtype) a in
        let dst = Option.get i.dst in
        let old = read_lanes t ctx ~width dst in
        write_lanes ctx ~width dst
          (apply_pred ~mask ~width old res)
          ~ready:(eu.now + lat_alu t);
        Advance
      | Fdiv | Fsqrt | Dpadd ->
        let a = read_lanes t ctx ~width (src 0) in
        let bl =
          if i.op = Fsqrt then Array.make width 0
          else read_lanes t ctx ~width (src 1)
        in
        let faulted = ref false in
        let res =
          Array.init width (fun j ->
              match i.op with
              | Fdiv -> (
                match Lane.fdiv a.(j) bl.(j) with
                | Ok v -> v
                | Error `Fault ->
                  faulted := true;
                  0)
              | Fsqrt -> (
                match Lane.fsqrt a.(j) with
                | Ok v -> v
                | Error `Fault ->
                  faulted := true;
                  0)
              | _ ->
                (* double-precision pair add: not supported natively *)
                faulted := true;
                0)
        in
        let dst = Option.get i.dst in
        let old = read_lanes t ctx ~width dst in
        if !faulted then begin
          (* collaborative exception handling: proxy the whole
             instruction to the IA32 sequencer *)
          let req =
            { fault_op = i.op; fault_dtype = i.dtype; lane_a = a; lane_b = bl }
          in
          let emulated, done_ps = t.hooks.ceh req ~now_ps:eu.now in
          trace_emit t ~ts:done_ps
            ~seq:(Trace.Exo { eu = eu.eu_id; slot })
            (Trace.Ceh_writeback { op = opcode_name i.op; lanes = width });
          write_lanes ctx ~width dst
            (apply_pred ~mask ~width old emulated)
            ~ready:done_ps;
          ctx.state <- Stalled done_ps;
          Advance
        end
        else begin
          let lat = if i.op = Fsqrt then lat_fsqrt t else lat_fdiv t in
          write_lanes ctx ~width dst
            (apply_pred ~mask ~width old res)
            ~ready:(eu.now + lat);
          Advance
        end
      | Sad ->
        let a = read_lanes t ctx ~width (src 0) in
        let bl = read_lanes t ctx ~width (src 1) in
        let sum = ref 0 in
        for j = 0 to width - 1 do
          if (mask lsr j) land 1 = 1 then
            sum := !sum + abs (a.(j) - bl.(j))
        done;
        let dst = Option.get i.dst in
        let res = Array.make width 0 in
        res.(0) <- Lane.wrap32 !sum;
        write_lanes ctx ~width dst res ~ready:(eu.now + lat_mul t);
        Advance
      | Hadd ->
        let a = read_lanes t ctx ~width (src 0) in
        let sum = ref 0 in
        for j = 0 to width - 1 do
          if (mask lsr j) land 1 = 1 then sum := !sum + a.(j)
        done;
        let dst = Option.get i.dst in
        let res = Array.make width 0 in
        res.(0) <- Lane.wrap i.dtype !sum;
        write_lanes ctx ~width dst res ~ready:(eu.now + lat_mul t);
        Advance
      | Cmp cond -> (
        let a = read_lanes t ctx ~width (src 0) in
        let bl = read_lanes t ctx ~width (src 1) in
        let m = ref 0 in
        for j = 0 to width - 1 do
          if Lane.compare_lanes i.dtype cond a.(j) bl.(j) then
            m := !m lor (1 lsl j)
        done;
        match i.dst with
        | Some (Flag f) ->
          ctx.flags.(f) <- !m;
          ctx.flag_ready.(f) <- eu.now + lat_cmp t;
          Advance
        | _ -> invalid_arg "cmp dst")
      | Sel ->
        let a = read_lanes t ctx ~width (src 0) in
        let bl = read_lanes t ctx ~width (src 1) in
        let dst = Option.get i.dst in
        let res =
          Array.init width (fun j ->
              if (mask lsr j) land 1 = 1 then a.(j) else bl.(j))
        in
        write_lanes ctx ~width dst res ~ready:(eu.now + lat_alu t);
        Advance
      | Ld -> (
        let vaddrs = element_vaddrs t ctx ~width (src 0) in
        match translate_all t eu vaddrs with
        | `Stall ps -> Replay ps
        | `Ok paddrs ->
          let bytes = width * dtype_bytes i.dtype in
          let done_ps =
            timed_access t eu ~paddr:paddrs.(0) ~bytes ~write:false
          in
          let res =
            Array.init width (fun k -> read_elem t ~paddr:paddrs.(k) ~dtype:i.dtype)
          in
          let dst = Option.get i.dst in
          let old = read_lanes t ctx ~width dst in
          write_lanes ctx ~width dst
            (apply_pred ~mask ~width old res)
            ~ready:done_ps;
          Advance)
      | St -> (
        let vaddrs = element_vaddrs t ctx ~width (Option.get i.dst) in
        match translate_all t eu vaddrs with
        | `Stall ps -> Replay ps
        | `Ok paddrs ->
          let v = read_lanes t ctx ~width (src 0) in
          let bytes = width * dtype_bytes i.dtype in
          let done_ps = timed_access t eu ~paddr:paddrs.(0) ~bytes ~write:true in
          for k = 0 to width - 1 do
            if (mask lsr k) land 1 = 1 then
              write_elem t ~paddr:paddrs.(k) ~dtype:i.dtype v.(k)
          done;
          ctx.store_done <- max ctx.store_done done_ps;
          Advance)
      | Gather -> (
        let vaddrs = gather_vaddrs t ctx ~width (src 0) in
        match translate_all t eu vaddrs with
        | `Stall ps -> Replay ps
        | `Ok paddrs ->
          (* per-lane accesses: charge each distinct line *)
          let done_ps = ref eu.now in
          Array.iter
            (fun pa ->
              done_ps :=
                max !done_ps
                  (timed_access t eu ~paddr:pa
                     ~bytes:(dtype_bytes i.dtype)
                     ~write:false))
            paddrs;
          let res =
            Array.init width (fun k -> read_elem t ~paddr:paddrs.(k) ~dtype:i.dtype)
          in
          let dst = Option.get i.dst in
          let old = read_lanes t ctx ~width dst in
          write_lanes ctx ~width dst
            (apply_pred ~mask ~width old res)
            ~ready:!done_ps;
          Advance)
      | Scatter -> (
        let vaddrs = gather_vaddrs t ctx ~width (Option.get i.dst) in
        match translate_all t eu vaddrs with
        | `Stall ps -> Replay ps
        | `Ok paddrs ->
          let v = read_lanes t ctx ~width (src 0) in
          let done_ps = ref eu.now in
          Array.iteri
            (fun k pa ->
              if (mask lsr k) land 1 = 1 then begin
                done_ps :=
                  max !done_ps
                    (timed_access t eu ~paddr:pa
                       ~bytes:(dtype_bytes i.dtype)
                       ~write:true);
                write_elem t ~paddr:pa ~dtype:i.dtype v.(k)
              end)
            paddrs;
          ctx.store_done <- max ctx.store_done !done_ps;
          Advance)
      | Sample -> (
        match src 0 with
        | Surf2d { slot; xreg; yreg } ->
          let s = surface t slot in
          if s.Surface.bpp <> 1 then
            invalid_arg "sample: only bpp=1 surfaces";
          (* the sampler translates through the same shared TLB; charge
             one translation for the footprint's first texel *)
          let u0 = reg_lane ctx xreg 0 and v0 = reg_lane ctx yreg 0 in
          let clampi lo hi x = if x < lo then lo else if x > hi then hi else x in
          let x0 = clampi 0 (s.Surface.width - 1) (u0 asr 16)
          and y0 = clampi 0 (s.Surface.height - 1) (v0 asr 16) in
          (match translate_page t eu (Surface.element_addr s ~x:x0 ~y:y0) with
          | `Stall ps -> Replay ps
          | `Ok _ ->
            t.sampler_reqs <- t.sampler_reqs + 1;
            let start = max eu.now t.sampler_busy in
            (* throughput: ~2 cycles/lane (four texel fetches + filter
               per lane); latency: 24 cycles *)
            let occupy = width * 2 * t.cycle in
            t.sampler_busy <- start + occupy;
            (* sampler reads 4 texels/lane through the shared cache *)
            let mem_done = ref start in
            for k = 0 to width - 1 do
              let u = reg_lane ctx xreg k and v = reg_lane ctx yreg k in
              let x = clampi 0 (s.Surface.width - 1) (u asr 16)
              and y = clampi 0 (s.Surface.height - 1) (v asr 16) in
              let va = Surface.element_addr s ~x ~y in
              (match Page_table.translate
                       (Address_space.page_table t.aspace) ~vaddr:va with
              | Some pa ->
                mem_done :=
                  max !mem_done (timed_access t eu ~paddr:pa ~bytes:4 ~write:false)
              | None -> ())
            done;
            let res =
              Array.init width (fun k ->
                  sample_value t s ~u:(reg_lane ctx xreg k) ~v:(reg_lane ctx yreg k))
            in
            let dst = Option.get i.dst in
            let old = read_lanes t ctx ~width dst in
            let done_ps = max (!mem_done + (24 * t.cycle)) (start + occupy) in
            write_lanes ctx ~width dst
              (apply_pred ~mask ~width old res)
              ~ready:done_ps;
            Advance)
        | _ -> invalid_arg "sample operand")
      | Br mode -> (
        match i.srcs with
        | [ Flag f; Imm target ] ->
          let m = ctx.flags.(f) land ((1 lsl width) - 1) in
          let taken =
            match mode with
            | Any -> m <> 0
            | All -> m = (1 lsl width) - 1
            | None_set -> m = 0
          in
          if taken then Goto (Int32.to_int target) else Advance
        | _ -> invalid_arg "br operands")
      | Jmp -> (
        match i.srcs with
        | [ Imm target ] -> Goto (Int32.to_int target)
        | _ -> invalid_arg "jmp operands")
      | End -> Finished
      | Fence ->
        if ctx.store_done > eu.now then Replay ctx.store_done else Advance
      | Semacq -> (
        match i.srcs with
        | [ Imm s ] ->
          let s = Int32.to_int s in
          if t.sem_held.(s) then Blocked_sem s
          else begin
            t.sem_held.(s) <- true;
            ctx.sems_held <- s :: ctx.sems_held;
            Advance
          end
        | _ -> invalid_arg "sem operands")
      | Semrel -> (
        match i.srcs with
        | [ Imm s ] ->
          let s = Int32.to_int s in
          ctx.sems_held <- List.filter (fun x -> x <> s) ctx.sems_held;
          sem_release t s;
          Advance
        | _ -> invalid_arg "sem operands")
      | Sendreg -> (
        match i.dst with
        | Some (Remote { shred_reg; reg }) ->
          let target_sid = reg_lane ctx shred_reg 0 in
          let v = read_lanes t ctx ~width (src 0) in
          let delivered = ref false in
          Array.iter
            (fun e ->
              Array.iter
                (fun c ->
                  match c.shred with
                  | Some sh when sh.shred_id = target_sid && not !delivered ->
                    delivered := true;
                    for j = 0 to width - 1 do
                      set_reg_lane c reg j v.(j)
                    done;
                    c.reg_ready.(reg) <-
                      max c.reg_ready.(reg) (eu.now + (10 * t.cycle))
                  | _ -> ())
                e.ctxs)
            t.eus;
          if not !delivered then begin
            let cell =
              match Hashtbl.find_opt t.pending_regs target_sid with
              | Some c -> c
              | None ->
                let c = ref [] in
                Hashtbl.replace t.pending_regs target_sid c;
                c
            in
            cell := (reg, Array.sub v 0 width) :: !cell
          end;
          Advance
        | _ -> invalid_arg "sendreg dst")
      | Spawn -> (
        match i.srcs with
        | [ Imm target; Reg preg ] ->
          t.spawn_counter <- t.spawn_counter + 1;
          let params = Array.init 8 (fun j -> reg_lane ctx preg j) in
          let sh =
            {
              shred_id = 1_000_000 + t.spawn_counter;
              entry = Int32.to_int target;
              params;
            }
          in
          Queue.add sh t.queue;
          t.nshred <- t.nshred + 1;
          Advance
        | _ -> invalid_arg "spawn operands")
    in
    outcome
  end

(* ---- dispatch ---- *)

let dispatch t eu slot shred =
  let ctx = eu.ctxs.(slot) in
  ctx.shred <- Some shred;
  ctx.pc <- shred.entry;
  Array.fill ctx.reg_ready 0 128 0;
  Array.fill ctx.flag_ready 0 4 0;
  Array.fill ctx.flags 0 4 0;
  ctx.store_done <- 0;
  (* apply register writes sent before the shred became resident *)
  (match Hashtbl.find_opt t.pending_regs shred.shred_id with
  | Some cell ->
    List.iter
      (fun (reg, lanes) ->
        Array.iteri (fun j v -> set_reg_lane ctx reg j v) lanes)
      !cell;
    Hashtbl.remove t.pending_regs shred.shred_id
  | None -> ());
  ctx.started <- eu.now;
  let hang =
    match t.cfg.fault_plan with
    | Some plan -> Fault_plan.decide plan Fault_plan.Shred_hang
    | None -> false
  in
  let seq = Trace.Exo { eu = eu.eu_id; slot } in
  trace_emit t ~ts:eu.now ~seq
    (Trace.Shred_dispatch { shred_id = shred.shred_id });
  if hang then begin
    (* the EU wedges before retiring anything: no architectural state of
       the shred changes, so a re-dispatch restarts it from scratch *)
    trace_emit t ~ts:eu.now ~seq (Trace.Fault_injected { cls = "shred-hang" });
    ctx.state <- Hung
  end
  else begin
    trace_emit t
      ~ts:(eu.now + (t.cfg.dispatch_cycles * t.cycle))
      ~seq
      (Trace.Shred_start { shred_id = shred.shred_id });
    ctx.state <- Stalled (eu.now + (t.cfg.dispatch_cycles * t.cycle))
  end

(* Refresh stalled contexts whose resume time has passed; fill idle
   contexts from the queue. *)
let refresh t eu =
  Array.iteri
    (fun slot ctx ->
      (match ctx.state with
      | Stalled ps when ps <= eu.now -> ctx.state <- Ready
      | _ -> ());
      if ctx.state = Idle && (not ctx.disabled) && not (Queue.is_empty t.queue)
      then dispatch t eu slot (Queue.pop t.queue))
    eu.ctxs

(* Pick the context to issue from. Switch-on-stall: keep the current
   context while it is ready; otherwise rotate to the next ready one. *)
let pick t eu =
  let n = Array.length eu.ctxs in
  let rotate () =
    let found = ref None in
    for k = 1 to n - 1 do
      let c = (eu.current + k) mod n in
      if !found = None && eu.ctxs.(c).state = Ready then found := Some c
    done;
    !found
  in
  (* fairness quantum: even without a stall, rotate after a burst so a
     busy-spinning shred cannot starve its EU siblings *)
  let quantum_expired = t.cfg.switch_on_stall && eu.streak >= 64 in
  if eu.ctxs.(eu.current).state = Ready && not quantum_expired then
    Some eu.current
  else if t.cfg.switch_on_stall then begin
    eu.streak <- 0;
    match rotate () with
    | Some c -> Some c
    | None ->
      if eu.ctxs.(eu.current).state = Ready then Some eu.current else None
  end
  else if eu.ctxs.(eu.current).state = Idle then
    (* without fine-grained multithreading the EU only leaves a context
       when its shred retires (coarse-grained switching) *)
    rotate ()
  else None

(* Earliest future event on this EU (stall resume). *)
let next_event eu =
  Array.fold_left
    (fun acc ctx ->
      match ctx.state with
      | Stalled ps -> (match acc with None -> Some ps | Some a -> Some (min a ps))
      | _ -> acc)
    None eu.ctxs

(* Cancel every copy of a hedged shred except the winner: clear other
   resident contexts and purge queued duplicates. Safe mid-race because
   hedged copies are pure functions of their (identical) params — any
   stores the losing copy already performed wrote the same values the
   winner writes. A cancelled Hung copy bumps the slot's fail count: the
   wedge was real even though the watchdog never had to fire. *)
let cancel_hedge_copies t shred_id ~except_eu ~except_slot =
  Array.iter
    (fun eu ->
      Array.iteri
        (fun slot ctx ->
          match ctx.shred with
          | Some sh
            when sh.shred_id = shred_id
                 && not (eu.eu_id = except_eu && slot = except_slot) ->
            List.iter (fun s -> sem_release t s) ctx.sems_held;
            ctx.sems_held <- [];
            (match ctx.state with
            | Hung -> ctx.fails <- ctx.fails + 1
            | _ -> ());
            ctx.shred <- None;
            ctx.state <- Idle
          | _ -> ())
        eu.ctxs)
    t.eus;
  let purge q =
    let keep = Queue.create () in
    Queue.iter (fun s -> if s.shred_id <> shred_id then Queue.add s keep) q;
    Queue.clear q;
    Queue.transfer keep q
  in
  purge t.queue;
  purge t.parked

let finish_shred t eu slot =
  let ctx = eu.ctxs.(slot) in
  (match ctx.shred with
  | Some sh ->
    ctx.completions <- ctx.completions + 1;
    let suppressed =
      match Hashtbl.find_opt t.hedged sh.shred_id with
      | Some e when e.won -> true (* a sibling copy already won the race *)
      | Some e ->
        e.won <- true;
        t.hedge_wins_ <- t.hedge_wins_ + 1;
        trace_emit t ~ts:eu.now
          ~seq:(Trace.Exo { eu = eu.eu_id; slot })
          (Trace.Hedge_win { shred_id = sh.shred_id });
        cancel_hedge_copies t sh.shred_id ~except_eu:eu.eu_id
          ~except_slot:slot;
        Hashtbl.remove t.hedged sh.shred_id;
        false
      | None -> false
    in
    if not suppressed then begin
      t.completed <- t.completed + 1;
      t.last_done <- max t.last_done eu.now;
      trace_emit t ~ts:ctx.started
        ~dur:(max 0 (eu.now - ctx.started))
        ~seq:(Trace.Exo { eu = eu.eu_id; slot })
        (Trace.Shred_run { shred_id = sh.shred_id });
      t.hooks.on_shred_done sh ~now_ps:eu.now
    end
  | None -> ());
  ctx.shred <- None;
  ctx.fails <- 0;
  ctx.sems_held <- [];
  ctx.state <- Idle

let step_eu t eu target_ps =
  let retired_here = ref 0 in
  let continue_ = ref true in
  while !continue_ && eu.now < target_ps do
    refresh t eu;
    match pick t eu with
    | None -> (
      (* nothing ready: jump to the next event or the slice end *)
      match next_event eu with
      | Some ps when ps < target_ps ->
        t.stall_cyc <- t.stall_cyc + ((ps - eu.now) / t.cycle);
        eu.now <- max eu.now ps
      | _ ->
        if
          (not (Queue.is_empty t.queue))
          && Array.exists (fun c -> c.state = Idle && not c.disabled) eu.ctxs
        then refresh t eu
        else begin
          t.stall_cyc <- t.stall_cyc + ((target_ps - eu.now) / t.cycle);
          eu.now <- target_ps;
          continue_ := false
        end)
    | Some slot ->
      (* fly-weight switch-on-stall: no pipeline bubble *)
      if slot <> eu.current then begin
        t.switches <- t.switches + 1;
        eu.streak <- 0
      end;
      eu.streak <- eu.streak + 1;
      eu.current <- slot;
      let ctx = eu.ctxs.(slot) in
      let prog = (Option.get t.binding).prog in
      let pc0 = ctx.pc in
      let cycles = issue_cycles prog.instrs.(pc0) in
      let profile cost_cyc =
        match t.prof with
        | None -> ()
        | Some f -> f ~prog ~pc:pc0 ~cost_ps:(cost_cyc * t.cycle)
      in
      (match exec_instr t eu slot with
      | Advance ->
        ctx.pc <- ctx.pc + 1;
        t.retired <- t.retired + 1;
        incr retired_here;
        t.busy_cyc <- t.busy_cyc + cycles;
        eu.now <- eu.now + (cycles * t.cycle);
        profile cycles
      | Goto pc ->
        ctx.pc <- pc;
        t.retired <- t.retired + 1;
        incr retired_here;
        t.busy_cyc <- t.busy_cyc + cycles + 2;
        eu.now <- eu.now + ((cycles + 2) * t.cycle);
        profile (cycles + 2)
      | Replay ps ->
        ctx.state <- Stalled (max ps (eu.now + t.cycle))
      | Finished ->
        t.retired <- t.retired + 1;
        incr retired_here;
        eu.now <- eu.now + t.cycle;
        finish_shred t eu slot
      | Blocked_sem s ->
        ctx.state <- Wait_sem s;
        t.sem_waiters.(s) <- t.sem_waiters.(s) @ [ (eu.eu_id, slot) ])
  done;
  !retired_here

(* EUs are stepped one at a time, but they contend for the shared bus
   whose arbiter state ([busy_until]) is global. Stepping one EU far ahead
   of the others would make the laggards' requests queue behind traffic
   from the "future", serialising the machine -- so a run is chopped into
   short synchronisation slices. *)
let sync_slice_ps = 250_000 (* 250 ns *)

let run_until t target_ps =
  let retired = ref 0 in
  let floor_now =
    Array.fold_left (fun acc eu -> min acc eu.now) max_int t.eus
  in
  let slice = ref (min target_ps (floor_now + sync_slice_ps)) in
  let continue_ = ref true in
  while !continue_ do
    Array.iter (fun eu -> retired := !retired + step_eu t eu !slice) t.eus;
    if !slice >= target_ps then continue_ := false
    else slice := min target_ps (!slice + sync_slice_ps)
  done;
  !retired

let run_to_quiescence t =
  let quantum = 200_000_000 (* 200 us *) in
  let stuck_rounds = ref 0 in
  while not (quiescent t) do
    let target = now_ps t + quantum in
    let retired = run_until t target in
    if retired = 0 then begin
      incr stuck_rounds;
      if !stuck_rounds > 3 then begin
        let waiting =
          Array.exists
            (fun eu ->
              Array.exists
                (fun c -> match c.state with Wait_sem _ -> true | _ -> false)
                eu.ctxs)
            t.eus
        in
        raise
          (Stuck
             (if waiting then "semaphore deadlock"
              else "no progress on any EU"))
      end
    end
    else stuck_rounds := 0
  done;
  t.last_done

let peek_reg t ~shred_id ~reg ~lane =
  let found = ref None in
  Array.iter
    (fun eu ->
      Array.iter
        (fun c ->
          match c.shred with
          | Some sh when sh.shred_id = shred_id && !found = None ->
            found := Some (reg_lane c reg lane)
          | _ -> ())
        eu.ctxs)
    t.eus;
  !found

let resident t =
  let acc = ref [] in
  Array.iter
    (fun eu ->
      Array.iteri
        (fun slot c ->
          match c.shred with
          | Some sh -> acc := (eu.eu_id, slot, sh.shred_id, c.pc) :: !acc
          | None -> ())
        eu.ctxs)
    t.eus;
  List.rev !acc

(* ---- recovery interface (driven by the supervising CHI runtime) ---- *)

let reap_overdue t ~watchdog_ps =
  let reaped = ref [] in
  Array.iter
    (fun eu ->
      Array.iteri
        (fun slot ctx ->
          match (ctx.state, ctx.shred) with
          | Hung, Some sh when eu.now - ctx.started >= watchdog_ps ->
            (* hangs strike before the first instruction retires, so the
               shred has no architectural effects to undo; release any
               semaphores the slot held and free it *)
            List.iter (fun s -> sem_release t s) ctx.sems_held;
            ctx.sems_held <- [];
            ctx.shred <- None;
            ctx.state <- Idle;
            ctx.fails <- ctx.fails + 1;
            trace_emit t ~ts:eu.now
              ~seq:(Trace.Exo { eu = eu.eu_id; slot })
              (Trace.Watchdog_reap { shred_id = sh.shred_id; fails = ctx.fails });
            reaped := (eu.eu_id, slot, sh, ctx.fails) :: !reaped
          | _ -> ())
        eu.ctxs)
    t.eus;
  List.rev !reaped

let quarantine t ~eu ~slot =
  trace_emit t ~ts:(now_ps t) ~seq:(Trace.Exo { eu; slot }) Trace.Quarantine;
  t.eus.(eu).ctxs.(slot).disabled <- true

let quarantined_slots t =
  Array.fold_left
    (fun acc eu ->
      Array.fold_left (fun a c -> if c.disabled then a + 1 else a) acc eu.ctxs)
    0 t.eus

let active_slots t =
  Array.fold_left
    (fun acc eu ->
      Array.fold_left (fun a c -> if c.disabled then a else a + 1) acc eu.ctxs)
    0 t.eus

let reinstate t ~eu ~slot =
  let ctx = t.eus.(eu).ctxs.(slot) in
  ctx.disabled <- false;
  ctx.fails <- 0

let slot_completions t ~eu ~slot = t.eus.(eu).ctxs.(slot).completions
let slot_failures t ~eu ~slot = t.eus.(eu).ctxs.(slot).fails

(* ---- hedged re-dispatch ---- *)

let overdue_shreds t ~age_ps =
  let acc = ref [] in
  Array.iter
    (fun eu ->
      Array.iter
        (fun ctx ->
          match (ctx.state, ctx.shred) with
          | Hung, Some sh
            when eu.now - ctx.started >= age_ps
                 && not (Hashtbl.mem t.hedged sh.shred_id) ->
            acc := (sh, eu.now - ctx.started) :: !acc
          | _ -> ())
        eu.ctxs)
    t.eus;
  List.rev !acc

let hedge t sh =
  if Hashtbl.mem t.hedged sh.shred_id then false
  else begin
    Hashtbl.replace t.hedged sh.shred_id { won = false };
    (* backup copy of an already-counted shred: reenqueue semantics —
       the team size must not grow, and the hedge doorbell is reliable *)
    Queue.add sh t.queue;
    true
  end

let hedge_pending t ~shred_id = Hashtbl.mem t.hedged shred_id

let hedge_live_copies t ~shred_id =
  let n = ref 0 in
  Array.iter
    (fun eu ->
      Array.iter
        (fun c ->
          match c.shred with
          | Some sh when sh.shred_id = shred_id -> incr n
          | _ -> ())
        eu.ctxs)
    t.eus;
  let count q =
    Queue.iter (fun (s : shred) -> if s.shred_id = shred_id then incr n) q
  in
  count t.queue;
  count t.parked;
  !n

(* Drop the race entry without declaring a winner — used when the
   runtime resolves the shred outside the GPU (IA32 fallback), so the
   dead entry cannot hijack a later team's reused shred id. *)
let hedge_resolve t ~shred_id = Hashtbl.remove t.hedged shred_id
let hedge_wins t = t.hedge_wins_

(* ---- whole-shred IA32 fallback emulation ----

   Proxy-executes one shred functionally on the IA32 sequencer using the
   same lane semantics as the EUs (graceful degradation: slower, never
   wrong). Runs on a scratch context with no timing model — the caller
   charges CPU time from the returned instruction/lane counts. Runs at a
   point where the EUs are paused, so semaphores degenerate to no-ops:
   the emulated shred is atomic with respect to the team. *)

let emulate_shred t sh =
  let b =
    match t.binding with
    | None -> invalid_arg "Gpu.emulate_shred: no binding"
    | Some b -> b
  in
  let ctx = mk_ctx () in
  ctx.shred <- Some sh;
  ctx.pc <- sh.entry;
  (match Hashtbl.find_opt t.pending_regs sh.shred_id with
  | Some cell ->
    List.iter
      (fun (reg, lanes) ->
        Array.iteri (fun j v -> set_reg_lane ctx reg j v) lanes)
      !cell;
    Hashtbl.remove t.pending_regs sh.shred_id
  | None -> ());
  let segfault vaddr =
    raise
      (Gpu_segfault
         {
           vaddr;
           vpage = vaddr lsr Phys_mem.page_shift;
           shred_id = sh.shred_id;
         })
  in
  (* IA32-side translation: the fallback runs under the OS, so a miss is
     an ordinary page fault, not an ATR round trip *)
  let translate vaddr =
    let pt = Address_space.page_table t.aspace in
    match Page_table.translate pt ~vaddr with
    | Some pa -> pa
    | None -> (
      match Address_space.fault_in t.aspace ~vaddr with
      | exception Address_space.Segfault _ -> segfault vaddr
      | `Already | `Faulted -> (
        match Page_table.translate pt ~vaddr with
        | Some pa -> pa
        | None -> segfault vaddr))
  in
  let instrs = ref 0 and lane_ops = ref 0 in
  let running = ref true in
  let fuel = ref 10_000_000 in
  while !running do
    decr fuel;
    if !fuel <= 0 then
      raise (Stuck "IA32 fallback emulation: shred did not terminate");
    let i = b.prog.instrs.(ctx.pc) in
    let width = i.width in
    incr instrs;
    lane_ops := !lane_ops + width;
    let mask = pred_mask ctx ~width i.pred in
    let src n = List.nth i.srcs n in
    let wr dst res =
      let old = read_lanes t ctx ~width dst in
      write_lanes ctx ~width dst (apply_pred ~mask ~width old res) ~ready:0
    in
    let next = ref (ctx.pc + 1) in
    (match i.op with
    | Nop | Fence | Semacq | Semrel -> ()
    | Add | Sub | Mul | Min | Max | Avg | Shl | Shr | Sar | And | Or | Xor
    | Fadd | Fsub | Fmul | Fmin | Fmax ->
      let a = read_lanes t ctx ~width (src 0) in
      let bl = read_lanes t ctx ~width (src 1) in
      wr (Option.get i.dst)
        (Array.init width (fun j -> alu_result i.op i.dtype a.(j) bl.(j)))
    | Mac | Fmac ->
      let a = read_lanes t ctx ~width (src 0) in
      let bl = read_lanes t ctx ~width (src 1) in
      let dst = Option.get i.dst in
      let acc = read_lanes t ctx ~width dst in
      wr dst
        (Array.init width (fun j ->
             if i.op = Mac then
               Lane.add i.dtype acc.(j) (Lane.mul i.dtype a.(j) bl.(j))
             else Lane.fadd acc.(j) (Lane.fmul a.(j) bl.(j))))
    | Bcast ->
      let a = read_lanes t ctx ~width (src 0) in
      wr (Option.get i.dst) (Array.make width (Lane.wrap i.dtype a.(0)))
    | Mov | Abs | Not | Sat | Fabs | Cvtif | Cvtfi ->
      let a = read_lanes t ctx ~width (src 0) in
      wr (Option.get i.dst) (Array.map (unary_result i.op i.dtype) a)
    | Fdiv | Fsqrt | Dpadd ->
      (* on the IA32 sequencer the "faulting" cases are just IEEE
         arithmetic — this is the CEH emulation path running locally *)
      let a = read_lanes t ctx ~width (src 0) in
      let bl =
        if i.op = Fsqrt then Array.make width 0
        else read_lanes t ctx ~width (src 1)
      in
      let res =
        match i.op with
        | Fdiv -> Array.init width (fun j -> Lane.fdiv_ieee a.(j) bl.(j))
        | Fsqrt -> Array.init width (fun j -> Lane.fsqrt_ieee a.(j))
        | _ -> Lane.dpadd_pairs a bl
      in
      wr (Option.get i.dst) res
    | Sad ->
      let a = read_lanes t ctx ~width (src 0) in
      let bl = read_lanes t ctx ~width (src 1) in
      let sum = ref 0 in
      for j = 0 to width - 1 do
        if (mask lsr j) land 1 = 1 then sum := !sum + abs (a.(j) - bl.(j))
      done;
      let res = Array.make width 0 in
      res.(0) <- Lane.wrap32 !sum;
      write_lanes ctx ~width (Option.get i.dst) res ~ready:0
    | Hadd ->
      let a = read_lanes t ctx ~width (src 0) in
      let sum = ref 0 in
      for j = 0 to width - 1 do
        if (mask lsr j) land 1 = 1 then sum := !sum + a.(j)
      done;
      let res = Array.make width 0 in
      res.(0) <- Lane.wrap i.dtype !sum;
      write_lanes ctx ~width (Option.get i.dst) res ~ready:0
    | Cmp cond -> (
      let a = read_lanes t ctx ~width (src 0) in
      let bl = read_lanes t ctx ~width (src 1) in
      let m = ref 0 in
      for j = 0 to width - 1 do
        if Lane.compare_lanes i.dtype cond a.(j) bl.(j) then
          m := !m lor (1 lsl j)
      done;
      match i.dst with
      | Some (Flag f) -> ctx.flags.(f) <- !m
      | _ -> invalid_arg "cmp dst")
    | Sel ->
      let a = read_lanes t ctx ~width (src 0) in
      let bl = read_lanes t ctx ~width (src 1) in
      let res =
        Array.init width (fun j ->
            if (mask lsr j) land 1 = 1 then a.(j) else bl.(j))
      in
      write_lanes ctx ~width (Option.get i.dst) res ~ready:0
    | Ld ->
      let vaddrs = element_vaddrs t ctx ~width (src 0) in
      let paddrs = Array.map translate vaddrs in
      wr (Option.get i.dst)
        (Array.init width (fun k ->
             read_elem t ~paddr:paddrs.(k) ~dtype:i.dtype))
    | St ->
      let vaddrs = element_vaddrs t ctx ~width (Option.get i.dst) in
      let paddrs = Array.map translate vaddrs in
      let v = read_lanes t ctx ~width (src 0) in
      for k = 0 to width - 1 do
        if (mask lsr k) land 1 = 1 then
          write_elem t ~paddr:paddrs.(k) ~dtype:i.dtype v.(k)
      done
    | Gather ->
      let vaddrs = gather_vaddrs t ctx ~width (src 0) in
      let paddrs = Array.map translate vaddrs in
      wr (Option.get i.dst)
        (Array.init width (fun k ->
             read_elem t ~paddr:paddrs.(k) ~dtype:i.dtype))
    | Scatter ->
      let vaddrs = gather_vaddrs t ctx ~width (Option.get i.dst) in
      let paddrs = Array.map translate vaddrs in
      let v = read_lanes t ctx ~width (src 0) in
      for k = 0 to width - 1 do
        if (mask lsr k) land 1 = 1 then
          write_elem t ~paddr:paddrs.(k) ~dtype:i.dtype v.(k)
      done
    | Sample -> (
      match src 0 with
      | Surf2d { slot; xreg; yreg } ->
        let s = surface t slot in
        if s.Surface.bpp <> 1 then invalid_arg "sample: only bpp=1 surfaces";
        let clampi lo hi x = if x < lo then lo else if x > hi then hi else x in
        let u0 = reg_lane ctx xreg 0 and v0 = reg_lane ctx yreg 0 in
        let x0 = clampi 0 (s.Surface.width - 1) (u0 asr 16)
        and y0 = clampi 0 (s.Surface.height - 1) (v0 asr 16) in
        ignore (translate (Surface.element_addr s ~x:x0 ~y:y0));
        wr (Option.get i.dst)
          (Array.init width (fun k ->
               sample_value t s ~u:(reg_lane ctx xreg k)
                 ~v:(reg_lane ctx yreg k)))
      | _ -> invalid_arg "sample operand")
    | Br mode -> (
      match i.srcs with
      | [ Flag f; Imm target ] ->
        let m = ctx.flags.(f) land ((1 lsl width) - 1) in
        let taken =
          match mode with
          | Any -> m <> 0
          | All -> m = (1 lsl width) - 1
          | None_set -> m = 0
        in
        if taken then next := Int32.to_int target
      | _ -> invalid_arg "br operands")
    | Jmp -> (
      match i.srcs with
      | [ Imm target ] -> next := Int32.to_int target
      | _ -> invalid_arg "jmp operands")
    | End -> running := false
    | Sendreg -> (
      match i.dst with
      | Some (Remote { shred_reg; reg }) ->
        let target_sid = reg_lane ctx shred_reg 0 in
        let v = read_lanes t ctx ~width (src 0) in
        let delivered = ref false in
        Array.iter
          (fun e ->
            Array.iter
              (fun c ->
                match c.shred with
                | Some s2 when s2.shred_id = target_sid && not !delivered ->
                  delivered := true;
                  for j = 0 to width - 1 do
                    set_reg_lane c reg j v.(j)
                  done
                | _ -> ())
              e.ctxs)
          t.eus;
        if not !delivered then begin
          let cell =
            match Hashtbl.find_opt t.pending_regs target_sid with
            | Some c -> c
            | None ->
              let c = ref [] in
              Hashtbl.replace t.pending_regs target_sid c;
              c
          in
          cell := (reg, Array.sub v 0 width) :: !cell
        end
      | _ -> invalid_arg "sendreg dst")
    | Spawn -> (
      match i.srcs with
      | [ Imm target; Reg preg ] ->
        t.spawn_counter <- t.spawn_counter + 1;
        let params = Array.init 8 (fun j -> reg_lane ctx preg j) in
        Queue.add
          {
            shred_id = 1_000_000 + t.spawn_counter;
            entry = Int32.to_int target;
            params;
          }
          t.queue;
        t.nshred <- t.nshred + 1
      | _ -> invalid_arg "spawn operands"));
    if !running then ctx.pc <- !next
  done;
  (!instrs, !lane_ops)
