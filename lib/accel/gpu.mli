(** The GMA-X3000-class accelerator simulator.

    Eight execution units (EUs), four hardware thread contexts per EU —
    32 exo-sequencers from the programmer's perspective. Each EU is
    in-order and single-issue with fly-weight switch-on-stall
    multithreading: when the current thread's next instruction is waiting
    on an operand (scoreboard) or memory, the EU switches to another ready
    context in one cycle. All EUs share one read/write cache in front of
    the system memory bus (UMA — the X3000 has no private VRAM), a
    fixed-function texture sampler, and 16 hardware semaphores.

    The GPU does not walk page tables: address translation misses in the
    shared exo TLB escalate through the [atr] hook (proxy execution on
    the IA32 sequencer, paper §3.2); faulting instructions escalate
    through the [ceh] hook (paper §3.3). *)

open Exochi_isa

type config = {
  clock_mhz : int; (* 667 in the prototype *)
  eus : int; (* 8 *)
  threads_per_eu : int; (* 4 *)
  cache_bytes : int;
  cache_ways : int;
  line_bytes : int;
  tlb_entries : int;
  dispatch_cycles : int; (* command-streamer cost per shred *)
  switch_on_stall : bool; (* ablation: disable fine-grained MT *)
  fault_plan : Exochi_faults.Fault_plan.t option;
      (* deterministic fault injection; [None] = pristine hardware *)
  trace : Exochi_obs.Trace.sink option;
      (* exo-trace sink; [None] = tracing off (zero overhead). Emission
         reads state only, so a traced run is bit-identical to an
         untraced one. *)
  dev : int;
      (* device index within the platform's device set (0 in a
         single-device platform); stamps every trace event this device
         emits *)
}

val default_config : config

(** A shred descriptor: continuation information in shared memory
    (paper §3.4). [params] are preloaded into [%p0..%p7]. *)
type shred = { shred_id : int; entry : int; params : int array }

(** Per-lane inputs the CEH proxy needs to emulate a faulting
    instruction. *)
type fault_request = {
  fault_op : X3k_ast.opcode;
  fault_dtype : X3k_ast.dtype;
  lane_a : int array;
  lane_b : int array;
}

(** Environment provided by the EXO platform layer. Every hook returns a
    completion timestamp (ps) so the faulting context knows when to
    resume; the hook implementations charge the CPU side. *)
type hooks = {
  atr : vpage:int -> now_ps:int -> (Exochi_memory.Pte.X3k.t option * int);
      (** Proxy a TLB miss. [None] entry means unrecoverable segfault. *)
  ceh : fault_request -> now_ps:int -> int array * int;
      (** Proxy a faulting instruction; returns the emulated lane results
          and the completion time. *)
  ceh_spurious : now_ps:int -> int;
      (** An injected spurious CEH trap: the IA32 handler finds nothing
          to emulate; returns the resume time. Only called when a fault
          plan is installed. *)
  mem_delay : paddr:int -> bytes:int -> write:bool -> now_ps:int -> int;
      (** Extra picoseconds of delay for a memory access (coherence
          snoops of the CPU caches in CC mode, protocol checking in
          non-CC mode). Return 0 for none. *)
  on_shred_done : shred -> now_ps:int -> unit;
}

type t

val create :
  ?config:config ->
  aspace:Exochi_memory.Address_space.t ->
  bus:Exochi_memory.Bus.t ->
  hooks:hooks ->
  unit ->
  t

val config : t -> config
val clock : t -> Exochi_util.Timebase.clock

(** {1 Profiling (Exo-scope)}

    [set_profiler t f] installs a per-instruction attribution hook: [f]
    is called once for every retired instruction with the bound program,
    the pc that issued, and the {e exact} simulated cost charged to the
    sequencer clock ([cycles * cycle] for straight-line issue,
    [(cycles + 2) * cycle] for taken branches). The terminal [end]
    instruction's bare retire cycle is charged to the machine as
    non-busy time and is deliberately {e not} reported, so the sum of
    reported costs equals [busy_cycles * ps_per_cycle clock] exactly
    (enforced by [test/test_obs.ml]). The hook must be pure accumulation
    — no clock, PRNG or machine state — to preserve the bit-and-time
    identity of profiled runs. *)
val set_profiler :
  t -> (prog:X3k_ast.program -> pc:int -> cost_ps:int -> unit) -> unit

val clear_profiler : t -> unit
val cache : t -> Exochi_memory.Cache.t
val tlb : t -> Exochi_memory.Pte.X3k.t Exochi_memory.Tlb.t

(** {1 Dispatch} *)

(** Bind a program and its surface table (program surface slot -> concrete
    surface) for subsequent dispatches. *)
val bind :
  t -> prog:X3k_ast.program -> surfaces:Exochi_memory.Surface.t array -> unit

(** Enqueue shreds on the software work queue (the queue lives in shared
    virtual memory; the runtime charges its own enqueue costs). One
    SIGNAL doorbell covers the batch: if the installed fault plan drops
    it, the shreds park invisibly until {!redeliver_doorbell}. *)
val enqueue : t -> shred list -> unit

(** Re-dispatch already-counted shreds after a recovery action: the team
    size ([%nshred]) does not grow and the doorbell is reliable. *)
val reenqueue : t -> shred list -> unit

(** Move doorbell-lost shreds back onto the visible queue; returns how
    many were redelivered. *)
val redeliver_doorbell : t -> int

(** Shreds parked behind a lost doorbell. *)
val parked_count : t -> int

(** Remove and return every queued shred (visible and parked) — used
    when no exo-sequencer is left to run them. *)
val drain_queue : t -> shred list

val queue_length : t -> int

(** Total shreds completed since creation. *)
val shreds_completed : t -> int

(** True when the queue is empty and every context is idle. *)
val quiescent : t -> bool

(** {1 Time} *)

(** The GPU's local time: max over EU local clocks. *)
val now_ps : t -> int

(** Advance every EU's local clock to at least [ps] (synchronise with the
    CPU timeline when a dispatch happens at CPU time [ps]). *)
val advance_to_ps : t -> int -> unit

(** Timestamp at which the most recent shred finished (the barrier time a
    waiting master observes). *)
val last_shred_done : t -> int

(** [run_until t ps] advances every EU to local time [ps], executing
    shreds. Returns the number of instructions retired in the slice. *)
val run_until : t -> int -> int

(** [run_to_quiescence t] keeps running until all work completes; returns
    the completion timestamp. Raises [Stuck] if no progress is possible
    (e.g. a deadlock on semaphores). *)
val run_to_quiescence : t -> int

exception Stuck of string

(** An exo-sequencer touched an address outside every mapped region and
    the ATR proxy could not resolve it. [shred_id] is [-1] when no shred
    was resident on the faulting context. *)
exception
  Gpu_segfault of { vaddr : int; vpage : int; shred_id : int }

(** {1 Fault recovery (driven by the supervising CHI runtime)} *)

(** Kill hung contexts whose shred has made no progress for
    [watchdog_ps] of simulated time. Each reaped entry is
    [(eu, slot, shred, consecutive_fails_on_slot)]; the slot is freed
    (and its semaphores released) so it can accept new work. *)
val reap_overdue :
  t -> watchdog_ps:int -> (int * int * shred * int) list

(** Remove a HW-thread slot from the eligible set. Permanent unless the
    runtime later calls {!reinstate} (circuit-breaker probation). *)
val quarantine : t -> eu:int -> slot:int -> unit

val quarantined_slots : t -> int

(** Slots still eligible for dispatch. *)
val active_slots : t -> int

(** Return a quarantined slot to the eligible set and clear its
    consecutive-fail count (a circuit breaker entering half-open). *)
val reinstate : t -> eu:int -> slot:int -> unit

(** Shreds this slot has ever retired (includes suppressed hedge
    losers) — the runtime's per-slot health signal. *)
val slot_completions : t -> eu:int -> slot:int -> int

(** Consecutive watchdog reaps on this slot. *)
val slot_failures : t -> eu:int -> slot:int -> int

(** {1 Hedged re-dispatch}

    A straggler shred (a context that stopped retiring) can be given a
    backup copy before the watchdog kills it: both copies race, the
    first to retire wins and is counted once, the loser is cancelled.
    Safe because shreds are pure functions of their params — duplicate
    stores write duplicate values. *)

(** Wedged resident shreds older than [age_ps] that have no hedge yet,
    as [(shred, age_ps)]. *)
val overdue_shreds : t -> age_ps:int -> (shred * int) list

(** Enqueue a backup copy; [false] if this shred is already hedged.
    Reenqueue semantics: the team size does not grow. *)
val hedge : t -> shred -> bool

(** A hedge race for this shred id is still unresolved. *)
val hedge_pending : t -> shred_id:int -> bool

(** Copies of this shred currently resident or queued. *)
val hedge_live_copies : t -> shred_id:int -> int

(** Drop the race entry without a winner — the runtime resolved the
    shred outside the GPU (IA32 fallback). Ids are reused across teams,
    so stale entries must not linger. *)
val hedge_resolve : t -> shred_id:int -> unit

(** Hedge races won so far (first copy retired, loser cancelled). *)
val hedge_wins : t -> int

(** Proxy-execute one whole shred functionally on the IA32 sequencer
    (graceful degradation when retries are exhausted or every slot is
    quarantined). Same lane semantics as the EUs; no timing model —
    returns [(instructions, lane_ops)] so the caller can charge CPU
    time. Must run while the EUs are paused. *)
val emulate_shred : t -> shred -> int * int

(** Flush the GPU cache through the bus (non-CC hand-off); returns dirty
    bytes written back. *)
val flush_cache : t -> int

(** {1 Counters} *)

val instructions_retired : t -> int
val thread_switches : t -> int
val stall_cycles : t -> int
val busy_cycles : t -> int

(** Picoseconds per sequencer cycle (from [config.clock_mhz]). *)
val cycle_ps : t -> int

(** Hardware thread contexts across all EUs ([eus * threads_per_eu]) —
    the concurrency the static-admission cost model divides by. *)
val hw_contexts : t -> int
val sampler_requests : t -> int

(** Cumulative picoseconds contexts spent waiting on operands (the
    scoreboard), summed across all threads — the quantity switch-on-stall
    multithreading exists to hide. *)
val operand_stall_ps : t -> int
val reset_counters : t -> unit

(** {1 Debug access (used by the cross-ISA debugger and tests)} *)

(** Read a vector register lane of a resident shred, if resident. *)
val peek_reg : t -> shred_id:int -> reg:int -> lane:int -> int option

(** Contexts currently resident: (eu, slot, shred_id, pc). *)
val resident : t -> (int * int * int * int) list
