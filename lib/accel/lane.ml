open Exochi_isa.X3k_ast

let wrap32 v = (v land 0xFFFFFFFF) lxor 0x80000000 |> fun x -> x - 0x80000000

let wrap dtype v =
  match dtype with
  | B -> v land 0xFF
  | W -> ((v land 0xFFFF) lxor 0x8000) - 0x8000
  | DW | F -> wrap32 v

let saturate dtype v =
  match dtype with
  | B -> if v < 0 then 0 else if v > 255 then 255 else v
  | W -> if v < -32768 then -32768 else if v > 32767 then 32767 else v
  | DW | F -> v

let float_of_lane v = Int32.float_of_bits (Int32.of_int v)
let lane_of_float f = wrap32 (Int32.to_int (Int32.bits_of_float f))

let add d a b = wrap d (a + b)
let sub d a b = wrap d (a - b)
let mul d a b = wrap d (a * b)
let min_ d a b = wrap d (min a b)
let max_ d a b = wrap d (max a b)

(* unsigned view of a lane under its dtype, for avg and B compares *)
let unsigned d v =
  match d with
  | B -> v land 0xFF
  | W -> v land 0xFFFF
  | DW | F -> v land 0xFFFFFFFF

let avg d a b = wrap d ((unsigned d a + unsigned d b + 1) lsr 1)
let abs_ d v = wrap d (abs v)
let shl d a b = wrap d (a lsl (b land 31))
let shr d a b = wrap d (unsigned DW a lsr (b land 31))
let sar d a b = wrap d (a asr (b land 31))
let and_ a b = wrap32 (a land b)
let or_ a b = wrap32 (a lor b)
let xor_ a b = wrap32 (a lxor b)
let not_ d v = wrap d (lnot v)

let compare_lanes d cond a b =
  let c =
    match d with
    | B -> compare (unsigned B a) (unsigned B b)
    | W | DW -> compare a b
    | F -> Float.compare (float_of_lane a) (float_of_lane b)
  in
  match cond with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let fop2 f a b = lane_of_float (f (float_of_lane a) (float_of_lane b))
let fadd = fop2 ( +. )
let fsub = fop2 ( -. )
let fmul = fop2 ( *. )
let fmin = fop2 Float.min
let fmax = fop2 Float.max
let fabs v = lane_of_float (Float.abs (float_of_lane v))

let fdiv a b =
  if float_of_lane b = 0.0 then Error `Fault else Ok (fop2 ( /. ) a b)

let fsqrt a =
  if float_of_lane a < 0.0 then Error `Fault
  else Ok (lane_of_float (sqrt (float_of_lane a)))

let fdiv_ieee a b = fop2 ( /. ) a b
let fsqrt_ieee a = lane_of_float (sqrt (float_of_lane a))
let cvtif v = lane_of_float (float_of_int v)

let cvtfi v =
  let f = float_of_lane v in
  if Float.is_nan f then 0
  else
    let r = Float.round f in
    if r >= 2147483647.0 then 0x7FFFFFFF
    else if r <= -2147483648.0 then wrap32 0x80000000
    else wrap32 (int_of_float r)

(* Double-precision pair add (the [dpadd] instruction the X3K cannot
   execute natively): adjacent lane pairs (2p, 2p+1) hold the low/high
   32-bit words of an IEEE binary64 value. Shared by the CEH proxy
   handler and the whole-shred IA32 fallback emulator. *)
let dpadd_pairs a b =
  let lanes = Array.length a in
  let res = Array.make lanes 0 in
  let of_pair lo hi =
    Int64.float_of_bits
      (Int64.logor
         (Int64.shift_left (Int64.of_int (hi land 0xFFFFFFFF)) 32)
         (Int64.of_int (lo land 0xFFFFFFFF)))
  in
  for p = 0 to (lanes / 2) - 1 do
    let lo = 2 * p and hi = (2 * p) + 1 in
    let da = of_pair a.(lo) a.(hi) in
    let db = of_pair b.(lo) b.(hi) in
    let bits = Int64.bits_of_float (da +. db) in
    res.(lo) <- wrap32 (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
    res.(hi) <- wrap32 (Int64.to_int (Int64.shift_right_logical bits 32))
  done;
  (* an odd trailing lane has no partner: pass it through unchanged *)
  if lanes land 1 = 1 then res.(lanes - 1) <- a.(lanes - 1);
  res
