(** Lane-level arithmetic for the X3K ISA.

    Lanes are stored as native OCaml ints holding sign-extended 32-bit
    values (unboxed, unlike [int32 array]); every operation re-normalises
    through {!wrap32}. Data types narrower than 32 bits wrap/saturate per
    {!X3k_ast.dtype}. Float lanes hold IEEE-754 binary32 bit patterns.

    These semantics are shared between the EU simulator and the CEH proxy
    emulator on the CPU — by construction both agree on results. *)

open Exochi_isa

(** Sign-extend the low 32 bits. Every lane value is kept in this form. *)
val wrap32 : int -> int

(** Wrap a lane result to its data type's width (B: unsigned 8-bit;
    W: signed 16-bit; DW/F: 32-bit). *)
val wrap : X3k_ast.dtype -> int -> int

(** Saturate to the data type's representable range (the [sat]
    instruction): B to [0,255], W to [-32768,32767], DW/F identity. *)
val saturate : X3k_ast.dtype -> int -> int

val float_of_lane : int -> float
val lane_of_float : float -> int

(** Integer binary ops (already include per-dtype wrapping). *)
val add : X3k_ast.dtype -> int -> int -> int

val sub : X3k_ast.dtype -> int -> int -> int
val mul : X3k_ast.dtype -> int -> int -> int
val min_ : X3k_ast.dtype -> int -> int -> int
val max_ : X3k_ast.dtype -> int -> int -> int

(** Rounding average, unsigned per-dtype (media op). *)
val avg : X3k_ast.dtype -> int -> int -> int

val abs_ : X3k_ast.dtype -> int -> int
val shl : X3k_ast.dtype -> int -> int -> int
val shr : X3k_ast.dtype -> int -> int -> int
val sar : X3k_ast.dtype -> int -> int -> int
val and_ : int -> int -> int
val or_ : int -> int -> int
val xor_ : int -> int -> int
val not_ : X3k_ast.dtype -> int -> int

(** Comparison: unsigned for B, signed for W/DW, IEEE for F. *)
val compare_lanes : X3k_ast.dtype -> X3k_ast.cond -> int -> int -> bool

(** Float ops on bit patterns; results rounded to binary32. *)
val fadd : int -> int -> int

val fsub : int -> int -> int
val fmul : int -> int -> int
val fmin : int -> int -> int
val fmax : int -> int -> int
val fabs : int -> int

(** [fdiv a b] and [fsqrt a] return [Error `Fault] on division by zero /
    negative input — the cases the exo-sequencer cannot complete and
    escalates through CEH. *)
val fdiv : int -> int -> (int, [ `Fault ]) result

val fsqrt : int -> (int, [ `Fault ]) result

(** IEEE-correct emulation used by the CEH proxy handler on the CPU:
    division by zero yields signed infinity (NaN for 0/0), square root of
    a negative value yields NaN. *)
val fdiv_ieee : int -> int -> int

val fsqrt_ieee : int -> int
val cvtif : int -> int
val cvtfi : int -> int

(** [dpadd_pairs a b] emulates the double-precision pair add on the IA32
    side: adjacent lane pairs (2p, 2p+1) hold the low/high words of a
    binary64 value. Used by both the CEH proxy handler and the
    whole-shred fallback emulator. *)
val dpadd_pairs : int array -> int array -> int array
