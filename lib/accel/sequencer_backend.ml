type kind = X3k | Ia32_soft

type caps = {
  bk_kind : kind;
  bk_dev : int;
  bk_eus : int;
  bk_threads_per_eu : int;
  bk_clock_mhz : int;
}

let kind_name = function X3k -> "x3k" | Ia32_soft -> "ia32-soft"
let slots c = c.bk_eus * c.bk_threads_per_eu

type t = {
  caps : caps;
  bind :
    prog:Exochi_isa.X3k_ast.program ->
    surfaces:Exochi_memory.Surface.t array ->
    unit;
  enqueue : Gpu.shred list -> unit;
  reenqueue : Gpu.shred list -> unit;
  drain_queue : unit -> Gpu.shred list;
  queue_length : unit -> int;
  redeliver_doorbell : unit -> int;
  parked_count : unit -> int;
  quiescent : unit -> bool;
  run_until : int -> int;
  run_to_quiescence : unit -> int;
  now_ps : unit -> int;
  advance_to_ps : int -> unit;
  last_shred_done : unit -> int;
  shreds_completed : unit -> int;
  reap_overdue : watchdog_ps:int -> (int * int * Gpu.shred * int) list;
  quarantine : eu:int -> slot:int -> unit;
  reinstate : eu:int -> slot:int -> unit;
  quarantined_slots : unit -> int;
  active_slots : unit -> int;
  slot_completions : eu:int -> slot:int -> int;
  overdue_shreds : age_ps:int -> (Gpu.shred * int) list;
  hedge : Gpu.shred -> bool;
  hedge_pending : shred_id:int -> bool;
  hedge_live_copies : shred_id:int -> int;
  hedge_resolve : shred_id:int -> unit;
  hedge_wins : unit -> int;
  emulate_shred : Gpu.shred -> int * int;
  flush_cache : unit -> int;
  set_profiler :
    (prog:Exochi_isa.X3k_ast.program -> pc:int -> cost_ps:int -> unit) -> unit;
  clear_profiler : unit -> unit;
  drawn_counts : unit -> int array;
}

let nclasses = List.length Exochi_faults.Fault_plan.all_classes

let of_gpu g =
  let cfg = Gpu.config g in
  {
    caps =
      {
        bk_kind = X3k;
        bk_dev = cfg.Gpu.dev;
        bk_eus = cfg.Gpu.eus;
        bk_threads_per_eu = cfg.Gpu.threads_per_eu;
        bk_clock_mhz = cfg.Gpu.clock_mhz;
      };
    bind = (fun ~prog ~surfaces -> Gpu.bind g ~prog ~surfaces);
    enqueue = (fun shreds -> Gpu.enqueue g shreds);
    reenqueue = (fun shreds -> Gpu.reenqueue g shreds);
    drain_queue = (fun () -> Gpu.drain_queue g);
    queue_length = (fun () -> Gpu.queue_length g);
    redeliver_doorbell = (fun () -> Gpu.redeliver_doorbell g);
    parked_count = (fun () -> Gpu.parked_count g);
    quiescent = (fun () -> Gpu.quiescent g);
    run_until = (fun ps -> Gpu.run_until g ps);
    run_to_quiescence = (fun () -> Gpu.run_to_quiescence g);
    now_ps = (fun () -> Gpu.now_ps g);
    advance_to_ps = (fun ps -> Gpu.advance_to_ps g ps);
    last_shred_done = (fun () -> Gpu.last_shred_done g);
    shreds_completed = (fun () -> Gpu.shreds_completed g);
    reap_overdue = (fun ~watchdog_ps -> Gpu.reap_overdue g ~watchdog_ps);
    quarantine = (fun ~eu ~slot -> Gpu.quarantine g ~eu ~slot);
    reinstate = (fun ~eu ~slot -> Gpu.reinstate g ~eu ~slot);
    quarantined_slots = (fun () -> Gpu.quarantined_slots g);
    active_slots = (fun () -> Gpu.active_slots g);
    slot_completions = (fun ~eu ~slot -> Gpu.slot_completions g ~eu ~slot);
    overdue_shreds = (fun ~age_ps -> Gpu.overdue_shreds g ~age_ps);
    hedge = (fun sh -> Gpu.hedge g sh);
    hedge_pending = (fun ~shred_id -> Gpu.hedge_pending g ~shred_id);
    hedge_live_copies = (fun ~shred_id -> Gpu.hedge_live_copies g ~shred_id);
    hedge_resolve = (fun ~shred_id -> Gpu.hedge_resolve g ~shred_id);
    hedge_wins = (fun () -> Gpu.hedge_wins g);
    emulate_shred = (fun sh -> Gpu.emulate_shred g sh);
    flush_cache = (fun () -> Gpu.flush_cache g);
    set_profiler = (fun f -> Gpu.set_profiler g f);
    clear_profiler = (fun () -> Gpu.clear_profiler g);
    drawn_counts =
      (fun () ->
        match cfg.Gpu.fault_plan with
        | Some plan -> Exochi_faults.Fault_plan.drawn_counts plan
        | None -> Array.make nclasses 0);
  }

let ia32_soft ~dev ~clock_mhz ~now_ps ~emulate ~notify =
  let completed = ref 0 in
  {
    caps =
      {
        bk_kind = Ia32_soft;
        bk_dev = dev;
        bk_eus = 1;
        bk_threads_per_eu = 1;
        bk_clock_mhz = clock_mhz;
      };
    (* the soft backend has no EPROC state: binding is the caller's
       concern (emulation resolves programs through the platform) *)
    bind = (fun ~prog:_ ~surfaces:_ -> ());
    enqueue =
      (fun shreds ->
        List.iter
          (fun sh ->
            ignore (emulate sh);
            incr completed;
            notify sh ~now_ps:(now_ps ()))
          shreds);
    reenqueue = (fun shreds -> List.iter (fun _ -> incr completed) shreds);
    drain_queue = (fun () -> []);
    queue_length = (fun () -> 0);
    redeliver_doorbell = (fun () -> 0);
    parked_count = (fun () -> 0);
    quiescent = (fun () -> true);
    run_until = (fun _ -> 0);
    run_to_quiescence = now_ps;
    now_ps;
    advance_to_ps = (fun _ -> ());
    last_shred_done = now_ps;
    shreds_completed = (fun () -> !completed);
    reap_overdue = (fun ~watchdog_ps:_ -> []);
    quarantine = (fun ~eu:_ ~slot:_ -> ());
    reinstate = (fun ~eu:_ ~slot:_ -> ());
    quarantined_slots = (fun () -> 0);
    active_slots = (fun () -> 1);
    slot_completions = (fun ~eu:_ ~slot:_ -> !completed);
    overdue_shreds = (fun ~age_ps:_ -> []);
    hedge = (fun _ -> false);
    hedge_pending = (fun ~shred_id:_ -> false);
    hedge_live_copies = (fun ~shred_id:_ -> 0);
    hedge_resolve = (fun ~shred_id:_ -> ());
    hedge_wins = (fun () -> 0);
    emulate_shred = emulate;
    flush_cache = (fun () -> 0);
    set_profiler = (fun _ -> ());
    clear_profiler = (fun () -> ());
    drawn_counts = (fun () -> Array.make nclasses 0);
  }

let describe t =
  let c = t.caps in
  Printf.sprintf "dev %d  %-9s %3d slots  (%d EU x %d)  %d MHz" c.bk_dev
    (kind_name c.bk_kind) (slots c) c.bk_eus c.bk_threads_per_eu c.bk_clock_mhz
