(** First-class sequencer-backend interface (Exo-fabric).

    EXOCHI's exoskeleton hides heterogeneous sequencers behind one
    MIMD-looking surface: the OS manages the IA32 master, and user-level
    code multiplexes everything else. This module is that surface as a
    value: the capability/dispatch/doorbell/fault operations the CHI
    runtime needs from {e any} exo-sequencer device, packaged as a record
    of closures so the platform can hold an indexed device set — N X3K
    instances, the IA32 soft backend, or anything else — without the
    runtime caring which is which.

    {!of_gpu} wraps one {!Gpu.t}; {!ia32_soft} wraps functional proxy
    execution on the master (graceful degradation as "just another
    backend"). Every closure delegates directly with no extra state, so
    going through the interface is call-for-call identical to calling
    the device module — the single-device bit-identity guarantee of the
    device-set refactor rests on this. *)

(** What kind of hardware answers the doorbell. *)
type kind = X3k | Ia32_soft

(** Static capabilities, used for placement and the device table. *)
type caps = {
  bk_kind : kind;
  bk_dev : int;  (** device index in the platform's device set *)
  bk_eus : int;
  bk_threads_per_eu : int;
  bk_clock_mhz : int;
}

val kind_name : kind -> string

(** Total dispatch slots ([eus * threads_per_eu]; 1 for the soft
    backend). *)
val slots : caps -> int

type t = {
  caps : caps;
  (* dispatch *)
  bind :
    prog:Exochi_isa.X3k_ast.program ->
    surfaces:Exochi_memory.Surface.t array ->
    unit;
  enqueue : Gpu.shred list -> unit;
  reenqueue : Gpu.shred list -> unit;
  drain_queue : unit -> Gpu.shred list;
  queue_length : unit -> int;
  (* doorbell / poll *)
  redeliver_doorbell : unit -> int;
  parked_count : unit -> int;
  quiescent : unit -> bool;
  run_until : int -> int;
  run_to_quiescence : unit -> int;
  now_ps : unit -> int;
  advance_to_ps : int -> unit;
  last_shred_done : unit -> int;
  shreds_completed : unit -> int;
  (* fault surface *)
  reap_overdue : watchdog_ps:int -> (int * int * Gpu.shred * int) list;
  quarantine : eu:int -> slot:int -> unit;
  reinstate : eu:int -> slot:int -> unit;
  quarantined_slots : unit -> int;
  active_slots : unit -> int;
  slot_completions : eu:int -> slot:int -> int;
  overdue_shreds : age_ps:int -> (Gpu.shred * int) list;
  hedge : Gpu.shred -> bool;
  hedge_pending : shred_id:int -> bool;
  hedge_live_copies : shred_id:int -> int;
  hedge_resolve : shred_id:int -> unit;
  hedge_wins : unit -> int;
  emulate_shred : Gpu.shred -> int * int;
  flush_cache : unit -> int;
  (* profiler / trace hooks *)
  set_profiler :
    (prog:Exochi_isa.X3k_ast.program -> pc:int -> cost_ps:int -> unit) -> unit;
  clear_profiler : unit -> unit;
  (* per-device fault-stream positions, in [Fault_plan.all_classes]
     order; all zeros when the device runs without a plan *)
  drawn_counts : unit -> int array;
}

(** Wrap one X3K device. Pure delegation — no added state, no added
    cost. *)
val of_gpu : Gpu.t -> t

(** The IA32 master as a capability-limited backend: one slot, no
    hardware queue or hedging; [enqueue] proxy-executes each shred
    immediately via [emulate] and reports completion through [notify].
    [now_ps] reads the master clock. Used for the device table and as
    the graceful-degradation endpoint. *)
val ia32_soft :
  dev:int ->
  clock_mhz:int ->
  now_ps:(unit -> int) ->
  emulate:(Gpu.shred -> int * int) ->
  notify:(Gpu.shred -> now_ps:int -> unit) ->
  t

(** One human-readable device-table row:
    ["dev 0  x3k       32 slots  (8 EU x 4)  667 MHz"]. *)
val describe : t -> string
