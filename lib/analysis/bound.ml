(* Exo-bound: symbolic loop-bound / worst-case-cycle analysis over the
   X3K and VIA32 CFGs (DESIGN.md §13).

   The analysis is sound-by-construction for upper bounds and honest
   when it cannot prove one: every loop gets a trip verdict — a
   constant, a symbolic ceil-expression over the launch parameters
   %p0..%pN, [Unbounded] (provably no exit makes progress), or
   [Unknown] (the exit shape is outside the decodable fragment). The
   per-shred worst case composes [X3k_cost.worst_retire_cycles] with
   the product of enclosing trip counts, so it is directly comparable
   to the sequencer's [busy_cycles] accounting (the soundness gate in
   test_analysis measures exactly that, and bench lint reports the
   slack). Rules: EXO011 statically unbounded loop, EXO012 irreducible
   control flow, EXO013 trip/cost overflow, EXO015 non-monotone
   induction variable. (EXO014 — bound vs declared deadline class — is
   applied per .chi section by Exo_check, which owns the launch
   geometry.) *)

module Loc = Exochi_isa.Loc
module X = Exochi_isa.X3k_ast
module XF = Exochi_isa.X3k_flow
module V = Exochi_isa.Via32_ast
module VF = Exochi_isa.Via32_flow
module Cfg = Exochi_isa.Cfg
module Cost = Exochi_isa.X3k_cost

let finding = Finding.make

(* Everything saturates at this many cycles; beyond it the verdict is
   an honest [Unknown] plus EXO013 rather than a wrapped number. *)
let overflow_cap = 1_000_000_000_000_000

exception Overflow

let mul_cap a b =
  if a = 0 || b = 0 then 0
  else if abs a > overflow_cap / abs b then raise Overflow
  else a * b

let add_cap a b =
  let s = a + b in
  if abs s > overflow_cap then raise Overflow else s

(* ==================================================================== *)
(* The symbolic domain: affine forms over the launch parameters         *)
(* ==================================================================== *)

(* [Sym (k, coeffs)] is k + sum coeffs_i * %p_i — the multi-parameter
   generalisation of Exo_check's a*%p0+b race domain. [coeffs] is
   sorted by parameter index and holds no zero coefficients. *)
type sym = Bot | Sym of int * (int * int) list | Top

let s_const k = Sym (k, [])
let s_param i = Sym (0, [ (i, 1) ])
let s_is_const = function Sym (k, []) -> Some k | _ -> None

let rec merge f c1 c2 =
  match (c1, c2) with
  | [], rest ->
    List.filter_map
      (fun (i, c) -> let c = f 0 c in if c = 0 then None else Some (i, c))
      rest
  | rest, [] ->
    List.filter_map
      (fun (i, c) -> let c = f c 0 in if c = 0 then None else Some (i, c))
      rest
  | (i1, a) :: r1, (i2, b) :: r2 ->
    if i1 = i2 then
      let c = f a b in
      if c = 0 then merge f r1 r2 else (i1, c) :: merge f r1 r2
    else if i1 < i2 then
      let c = f a 0 in
      if c = 0 then merge f r1 c2 else (i1, c) :: merge f r1 c2
    else
      let c = f 0 b in
      if c = 0 then merge f c1 r2 else (i2, c) :: merge f c1 r2

let s_lift2 f x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Sym (k1, c1), Sym (k2, c2) -> Sym (f k1 k2, merge f c1 c2)
  | _ -> Top

let s_add = s_lift2 ( + )
let s_sub = s_lift2 ( - )

let s_scale n = function
  | Sym (k, c) ->
    if n = 0 then s_const 0
    else Sym (k * n, List.map (fun (i, a) -> (i, a * n)) c)
  | v -> v

let s_mul x y =
  match (s_is_const x, s_is_const y) with
  | Some a, _ -> s_scale a y
  | _, Some b -> s_scale b x
  | _ ->
    (match (x, y) with Bot, _ | _, Bot -> Bot | _ -> Top)

let s_shl x k = if k >= 0 && k < 31 then s_scale (1 lsl k) x else Top

let s_join x y =
  match (x, y) with Bot, v | v, Bot -> v | _ -> if x = y then x else Top

let pp_sym fmt = function
  | Bot -> Format.fprintf fmt "_"
  | Top -> Format.fprintf fmt "?"
  | Sym (k, coeffs) ->
    Format.fprintf fmt "%d" k;
    List.iter
      (fun (i, c) ->
        if c >= 0 then Format.fprintf fmt "+%d*%%p%d" c i
        else Format.fprintf fmt "-%d*%%p%d" (-c) i)
      coeffs

let sym_to_string s = Format.asprintf "%a" pp_sym s

(* Interval evaluation: [env i] is the inclusive range of %pi, [None]
   when unknown. An affine form's range is reached at the endpoints. *)
let eval_range s ~env =
  match s with
  | Bot | Top -> None
  | Sym (k, coeffs) ->
    List.fold_left
      (fun acc (i, c) ->
        match (acc, env i) with
        | Some (lo, hi), Some (plo, phi) ->
          let a = mul_cap c plo and b = mul_cap c phi in
          Some (add_cap lo (min a b), add_cap hi (max a b))
        | _ -> None)
      (Some (k, k)) coeffs

let no_env : int -> (int * int) option = fun _ -> None

(* ==================================================================== *)
(* Trip-count verdicts                                                  *)
(* ==================================================================== *)

(* A loop's trip bound: the number of times its header can execute per
   entry is at most [max 1 (ceil num / den) + extra]. [ne_exit] marks
   a != exit, where a negative [num] means the bound was overshot —
   unbounded, not one trip. *)
type trip =
  | T_const of int
  | T_sym of { num : sym; den : int; extra : int; ne_exit : bool }
  | T_unbounded of string
  | T_unknown of string

let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)

let eval_trip t ~env =
  match t with
  | T_const n -> `Trips n
  | T_unbounded why -> `Unbounded why
  | T_unknown why -> `Unknown why
  | T_sym { num; den; extra; ne_exit } -> (
    match eval_range num ~env with
    | None -> `Unknown ("symbolic trip count " ^ sym_to_string num)
    | Some (nlo, nhi) ->
      if ne_exit && nlo < 0 then
        `Unbounded "a != exit can start past its bound"
      else `Trips (max 1 (cdiv nhi den) + extra))

let trip_to_string = function
  | T_const n -> string_of_int n
  | T_sym { num; den; extra; _ } ->
    Printf.sprintf "ceil((%s)/%d)%s" (sym_to_string num) den
      (if extra = 0 then "" else "+" ^ string_of_int extra)
  | T_unbounded _ -> "unbounded"
  | T_unknown _ -> "unknown"

type loop_info = {
  header : int; (* instruction index of the loop header *)
  header_line : int; (* source line of the header instruction *)
  depth : int; (* 0 = outermost *)
  trip : trip;
}

type verdict =
  | Cycles of int (* proven per-shred worst-case busy cycles *)
  | Unbounded
  | Unknown of string

let verdict_to_string = function
  | Cycles c -> Printf.sprintf "%d cycles" c
  | Unbounded -> "unbounded"
  | Unknown why -> "unknown (" ^ why ^ ")"

type t = {
  findings : Finding.t list;
  loops : loop_info list;
  verdict : verdict;
}

(* ==================================================================== *)
(* Generic loop-bound decoding                                          *)
(* ==================================================================== *)

(* The continue-condition of an exit test, already normalised so the
   induction variable is on the left: stay in the loop while IV <cond>
   bound. *)
type cond = X.cond

let mirror : cond -> cond = function
  | X.Lt -> X.Gt
  | X.Le -> X.Ge
  | X.Gt -> X.Lt
  | X.Ge -> X.Le
  | (X.Eq | X.Ne) as c -> c

let negate : cond -> cond = function
  | X.Lt -> X.Ge
  | X.Le -> X.Gt
  | X.Gt -> X.Le
  | X.Ge -> X.Lt
  | X.Eq -> X.Ne
  | X.Ne -> X.Eq

(* What the ISA-specific front end must provide about one loop for the
   shared trip computation. *)
type 'reg exit_test = {
  e_iv : 'reg; (* the register the comparison tests *)
  e_cond : cond; (* continue while e_iv <e_cond> e_bound *)
  e_bound : sym; (* loop-invariant bound value *)
  e_site : int; (* instruction index of the conditional branch *)
}

(* Trip count for one decoded exit: the IV starts at [init], moves by
   [step] (constant, sign-normalised below) on every iteration, and the
   loop continues while the condition holds. [pre_update] is true when
   the test reads the IV before the update in the iteration (while
   shape) — one more header execution than bound-crossings. *)
let trip_of_exit ~init ~step ~pre_update { e_cond; e_bound; _ } =
  let extra = if pre_update then 1 else 0 in
  (* normalise to a positive step by reflecting the number line *)
  let init, bound, cond =
    if step >= 0 then (init, e_bound, e_cond)
    else (s_scale (-1) init, s_scale (-1) e_bound, mirror e_cond)
  in
  let step = abs step in
  let diff adj = s_add (s_sub bound init) (s_const adj) in
  match cond with
  | X.Lt -> T_sym { num = diff 0; den = step; extra; ne_exit = false }
  | X.Le -> T_sym { num = diff 1; den = step; extra; ne_exit = false }
  | X.Gt | X.Ge ->
    T_unbounded "induction variable steps away from the exit bound"
  | X.Eq ->
    (* continue while IV = bound: any nonzero step breaks equality
       within two header executions *)
    T_const (1 + extra)
  | X.Ne ->
    if step = 1 then T_sym { num = diff 0; den = 1; extra; ne_exit = true }
    else (
      (* init/bound are already sign-normalised: step > 0 *)
      match (s_is_const init, s_is_const bound) with
      | Some i, Some b ->
        let d = b - i in
        if d >= 0 && d mod step = 0 then T_const (max 1 (d / step) + extra)
        else T_unbounded (Printf.sprintf "a != exit with step %d skips its bound" step)
      | _ -> T_unknown "!= exit with non-unit step and symbolic bound")

(* Pick the best (smallest-on-any-env) trip among decoded exits: prefer
   constants, then symbolic, then unbounded, then unknown. Every decoded
   exit is individually sound, so any of them may be used; an [Unbounded]
   from one exit is only the loop's fate if no other exit bounds it. *)
let best_trip trips =
  let rank = function
    | T_const _ -> 0
    | T_sym _ -> 1
    | T_unbounded _ -> 2
    | T_unknown _ -> 3
  in
  let better a b =
    match (a, b) with
    | T_const x, T_const y -> if x <= y then a else b
    | _ -> if rank a <= rank b then a else b
  in
  match trips with [] -> None | t :: rest -> Some (List.fold_left better t rest)

(* ==================================================================== *)
(* X3K front end                                                        *)
(* ==================================================================== *)

let max_tracked_reg = 255

(* Whole-program abstract interpretation in the multi-parameter domain,
   tracking lane-0 scalar values (the twin of Exo_check.x3k_interp).
   Returns the fixpoint entry state per instruction plus the transfer
   function, so loop-entry (pre-header) OUT states can be queried. *)
let x3k_sym_interp (p : X.program) =
  let n = Array.length p.X.instrs in
  let nregs = max_tracked_reg + 1 in
  let operand_sym st = function
    | X.Imm c -> s_const (Int32.to_int c)
    | X.Sreg (X.Param i) -> s_param i
    | X.Sreg X.Lane -> s_const 0 (* lane 0 of the iota vector *)
    | X.Sreg _ -> Top
    | X.Reg r -> if r < nregs then st.(r) else Top
    | X.Range (a, _) -> if a < nregs then st.(a) else Top
    | X.Flag _ | X.Surf _ | X.Surf2d _ | X.Remote _ -> Top
  in
  let transfer st (i : X.instr) =
    let dst_regs =
      match i.X.dst with
      | Some (X.Reg r) -> [ (r, true) ]
      | Some (X.Range (a, b)) -> List.init (b - a + 1) (fun k -> (a + k, k = 0))
      | _ -> []
    in
    if dst_regs = [] then st
    else begin
      let value =
        match (i.X.op, i.X.srcs) with
        | (X.Mov | X.Bcast), [ s ] -> operand_sym st s
        | X.Add, [ s1; s2 ] -> s_add (operand_sym st s1) (operand_sym st s2)
        | X.Sub, [ s1; s2 ] -> s_sub (operand_sym st s1) (operand_sym st s2)
        | X.Mul, [ s1; s2 ] -> s_mul (operand_sym st s1) (operand_sym st s2)
        | X.Shl, [ s1; X.Imm k ] -> s_shl (operand_sym st s1) (Int32.to_int k)
        | _ -> Top
      in
      let st = Array.copy st in
      List.iter
        (fun (r, lane0) ->
          if r < nregs then begin
            let v = if lane0 then value else Top in
            st.(r) <- (if i.X.pred = None then v else s_join st.(r) v)
          end)
        dst_regs;
      st
    end
  in
  let entry : sym array option array = Array.make n None in
  let work = Queue.create () in
  let push idx st =
    let merged =
      match entry.(idx) with
      | None -> Some st
      | Some cur ->
        let changed = ref false in
        let st' =
          Array.mapi
            (fun r v ->
              let j = s_join v st.(r) in
              if j <> v then changed := true;
              j)
            cur
        in
        if !changed then Some st' else None
    in
    match merged with
    | None -> ()
    | Some st ->
      entry.(idx) <- Some st;
      Queue.add idx work
  in
  List.iter (fun e -> push e (Array.make nregs Bot)) (XF.entries p);
  while not (Queue.is_empty work) do
    let idx = Queue.pop work in
    match entry.(idx) with
    | None -> ()
    | Some st ->
      let out = transfer st p.X.instrs.(idx) in
      List.iter (fun s -> push s out) (XF.succs p idx)
  done;
  let out idx =
    match entry.(idx) with
    | None -> None
    | Some st -> Some (transfer st p.X.instrs.(idx))
  in
  (entry, out)

(* Value of register [r] on entry to the loop: join of the OUT states
   of the header's predecessors from outside the body (plus the initial
   Bot state when the header is itself a program entry). *)
let loop_entry_value (cfg : Cfg.t) (l : Cfg.loop) out r =
  let from_preds =
    List.fold_left
      (fun acc p ->
        if l.Cfg.body.(p) then acc
        else
          match out p with
          | None -> acc
          | Some st -> s_join acc (if r < Array.length st then st.(r) else Top))
      Bot cfg.Cfg.pred.(l.Cfg.header)
  in
  if List.mem l.Cfg.header cfg.Cfg.entries then s_join from_preds Bot
  else from_preds

(* Unique unpredicated definition of flag [f] reaching instruction [u]
   backwards through the CFG (stopping at redefinitions). *)
let x3k_reaching_flag_def (p : X.program) (cfg : Cfg.t) u f =
  let defs = ref [] in
  let seen = Array.make cfg.Cfg.n false in
  let overflowed = ref false in
  let rec go idx =
    if not seen.(idx) then begin
      seen.(idx) <- true;
      (* a backward path reaching a program entry carries no def *)
      if List.mem idx cfg.Cfg.entries then overflowed := true;
      List.iter
        (fun pr ->
          let du = XF.def_use p.X.instrs.(pr) in
          if List.mem f du.XF.flag_defs then begin
            if not (List.mem pr !defs) then defs := pr :: !defs
          end
          else go pr)
        cfg.Cfg.pred.(idx)
    end
  in
  go u;
  match (!defs, !overflowed) with [ d ], false -> Some d | _ -> None

(* All updates of register [r] inside the loop body must be unpredicated
   constant self-steps (add/sub r = r, imm); returns their (index, step)
   list, or an error describing why [r] is not a monotone IV. *)
let x3k_iv_steps (p : X.program) (l : Cfg.loop) r =
  let bad = ref None in
  let steps = ref [] in
  List.iter
    (fun idx ->
      let i = p.X.instrs.(idx) in
      let du = XF.def_use i in
      if List.mem r du.XF.reg_defs then
        match (i.X.op, i.X.dst, i.X.srcs) with
        | (X.Add | X.Sub), Some (X.Reg d), [ X.Reg s1; X.Imm k ]
          when d = r && s1 = r && i.X.pred = None ->
          let k = Int32.to_int k in
          steps := (idx, if i.X.op = X.Add then k else -k) :: !steps
        | _, _, _ when i.X.pred <> None ->
          bad := Some (`Nonmono "predicated update of the induction variable")
        | _ -> bad := Some (`Opaque "non-constant update of the induction variable"))
    l.Cfg.nodes;
  match !bad with Some why -> Error why | None -> Ok !steps

(* One loop's trip verdict, X3K. *)
let x3k_loop_trip (p : X.program) (cfg : Cfg.t) out (l : Cfg.loop) =
  if l.Cfg.exits = [] then T_unbounded "the loop has no exit edges"
  else begin
    (* decodable conditional exits: an unpredicated width-1 br whose
       flag has a unique reaching width-1 unpredicated cmp *)
    let decoded =
      List.filter_map
        (fun (u, _v) ->
          let i = p.X.instrs.(u) in
          match (i.X.op, i.X.srcs) with
          | X.Br mode, [ X.Flag f; X.Imm tgt ]
            when i.X.pred = None && i.X.width = 1 -> (
            let tgt = Int32.to_int tgt in
            let exit_on_taken = not (tgt >= 0 && tgt < cfg.Cfg.n && l.Cfg.body.(tgt)) in
            match x3k_reaching_flag_def p cfg u f with
            | None -> None
            | Some d -> (
              let ci = p.X.instrs.(d) in
              match (ci.X.op, ci.X.srcs) with
              | X.Cmp c, [ a; b ] when ci.X.pred = None && ci.X.width = 1 ->
                (* taken when the flag is set (any/all over one lane) or
                   clear (none_set); continue = the non-exit direction *)
                let flag_means = match mode with X.None_set -> negate c | _ -> c in
                let continue_cond =
                  if exit_on_taken then negate flag_means else flag_means
                in
                Some (u, d, continue_cond, a, b)
              | _ -> None))
          | _ -> None)
        (List.sort_uniq compare l.Cfg.exits)
    in
    if decoded = [] then T_unknown "no decodable exit test"
    else begin
      let in_loop_reg_defs r =
        List.exists
          (fun idx -> List.mem r (XF.def_use p.X.instrs.(idx)).XF.reg_defs)
          l.Cfg.nodes
      in
      let invariant_sym = function
        | X.Imm c -> Some (s_const (Int32.to_int c))
        | X.Sreg (X.Param i) -> Some (s_param i)
        | X.Reg r when not (in_loop_reg_defs r) ->
          (* loop-invariant register: its value on loop entry *)
          Some (loop_entry_value cfg l out r)
        | _ -> None
      in
      let dominates_back_srcs idx =
        List.for_all (fun s -> Cfg.dominates cfg idx s) l.Cfg.back_srcs
      in
      let trips =
        List.map
          (fun (u, _d, cond, a, b) ->
            if not (dominates_back_srcs u) then
              T_unknown "the exit test does not run on every iteration"
            else begin
              (* put the induction variable on the left *)
              let pick_iv side_a side_b cond =
                match (side_a, side_b) with
                | X.Reg r, other when in_loop_reg_defs r -> Some (r, other, cond)
                | _ -> None
              in
              match
                (match pick_iv a b cond with
                | Some x -> Some x
                | None -> pick_iv b a (mirror cond))
              with
              | None -> (
                (* neither side varies: a loop-invariant test. As the
                   only exit this can never fire after passing once. *)
                match (invariant_sym a, invariant_sym b) with
                | Some _, Some _ when List.length decoded = 1
                                      && List.length l.Cfg.exits = 1 ->
                  T_unbounded "the exit condition is loop-invariant"
                | _ -> T_unknown "exit test without an induction variable")
              | Some (iv, bound_op, cond) -> (
                match invariant_sym bound_op with
                | None -> T_unknown "exit bound is not loop-invariant"
                | Some bound when bound = Top ->
                  T_unknown "exit bound is not statically known"
                | Some bound -> (
                  match x3k_iv_steps p l iv with
                  | Error (`Nonmono why) -> T_unknown ("EXO015:" ^ why)
                  | Error (`Opaque why) -> T_unknown why
                  | Ok [] -> T_unknown "exit register is never updated in the loop"
                  | Ok steps ->
                    let signs = List.sort_uniq compare (List.map (fun (_, s) -> compare s 0) steps) in
                    if List.mem 0 signs || List.length signs > 1 then
                      T_unknown "EXO015:mixed-direction updates of the induction variable"
                    else begin
                      (* guaranteed progress: self-steps that dominate
                         every back-edge source fire each iteration *)
                      let guaranteed =
                        List.filter (fun (idx, _) -> dominates_back_srcs idx) steps
                      in
                      if guaranteed = [] then
                        T_unknown "no induction-variable update is guaranteed every iteration"
                      else begin
                        let step = List.fold_left (fun acc (_, s) -> acc + s) 0 guaranteed in
                        let init = loop_entry_value cfg l out iv in
                        let init =
                          match init with
                          | Bot -> Top (* entered uninitialised: EXO008's business *)
                          | v -> v
                        in
                        if init = Top then T_unknown "induction-variable start value unknown"
                        else
                          (* the test reads the IV before the update
                             unless every guaranteed update dominates it *)
                          let pre_update =
                            not (List.for_all (fun (idx, _) -> Cfg.dominates cfg idx u) guaranteed)
                          in
                          trip_of_exit ~init ~step ~pre_update
                            { e_iv = iv; e_cond = cond; e_bound = bound; e_site = u }
                      end
                    end))
            end)
          decoded
      in
      match best_trip trips with Some t -> t | None -> T_unknown "no decodable exit test"
    end
  end

(* ==================================================================== *)
(* VIA32 front end                                                      *)
(* ==================================================================== *)

let gpr_idx = function
  | V.EAX -> 0 | V.EBX -> 1 | V.ECX -> 2 | V.EDX -> 3
  | V.ESI -> 4 | V.EDI -> 5 | V.EBP -> 6 | V.ESP -> 7

(* Constant propagation over the GPRs (VIA32 has no launch parameters,
   so the domain degenerates to constants-or-Top). *)
let via32_sym_interp (p : V.program) =
  let n = Array.length p.V.instrs in
  let transfer st (i : V.instr) =
    let st = Array.copy st in
    let set r v = st.(gpr_idx r) <- v in
    let get r = st.(gpr_idx r) in
    (match (i.V.op, i.V.operands) with
    | V.Mov _, [ V.R r; V.I c ] -> set r (s_const (Int32.to_int c))
    | V.Mov _, [ V.R r; V.R s ] -> set r (get s)
    | V.Add, [ V.R r; V.I c ] -> set r (s_add (get r) (s_const (Int32.to_int c)))
    | V.Sub, [ V.R r; V.I c ] -> set r (s_sub (get r) (s_const (Int32.to_int c)))
    | V.Imul, [ V.R r; V.I c ] -> set r (s_mul (get r) (s_const (Int32.to_int c)))
    | V.Shl, [ V.R r; V.I c ] -> set r (s_shl (get r) (Int32.to_int c))
    | V.Xor, [ V.R a; V.R b ] when a = b -> set a (s_const 0)
    | _ ->
      List.iter
        (function VF.Gpr r -> set r Top | _ -> ())
        (VF.def_use i).VF.defs);
    st
  in
  let entry : sym array option array = Array.make n None in
  let work = Queue.create () in
  let push idx st =
    let merged =
      match entry.(idx) with
      | None -> Some st
      | Some cur ->
        let changed = ref false in
        let st' =
          Array.mapi
            (fun r v ->
              let j = s_join v st.(r) in
              if j <> v then changed := true;
              j)
            cur
        in
        if !changed then Some st' else None
    in
    match merged with
    | None -> ()
    | Some st ->
      entry.(idx) <- Some st;
      Queue.add idx work
  in
  List.iter (fun e -> push e (Array.make 8 Bot)) (VF.entries p);
  while not (Queue.is_empty work) do
    let idx = Queue.pop work in
    match entry.(idx) with
    | None -> ()
    | Some st ->
      let out = transfer st p.V.instrs.(idx) in
      List.iter (fun s -> push s out) (VF.succs p idx)
  done;
  let out idx =
    match entry.(idx) with
    | None -> None
    | Some st -> Some (transfer st p.V.instrs.(idx))
  in
  (entry, out)

let via32_loop_entry_value (cfg : Cfg.t) (l : Cfg.loop) out r =
  let from_preds =
    List.fold_left
      (fun acc pr ->
        if l.Cfg.body.(pr) then acc
        else match out pr with None -> acc | Some st -> s_join acc st.(gpr_idx r))
      Bot cfg.Cfg.pred.(l.Cfg.header)
  in
  if List.mem l.Cfg.header cfg.Cfg.entries then s_join from_preds Bot
  else from_preds

let cond_of_cc = function
  | V.E -> Some X.Eq
  | V.NE -> Some X.Ne
  | V.L -> Some X.Lt
  | V.LE -> Some X.Le
  | V.G -> Some X.Gt
  | V.GE -> Some X.Ge
  | V.B | V.BE | V.A | V.AE -> None (* unsigned: outside the fragment *)

(* Unique reaching [cmp] defining the flags at [u]. *)
let via32_reaching_cmp (p : V.program) (cfg : Cfg.t) u =
  let defs = ref [] in
  let seen = Array.make cfg.Cfg.n false in
  let underflow = ref false in
  let rec go idx =
    if not seen.(idx) then begin
      seen.(idx) <- true;
      if List.mem idx cfg.Cfg.entries then underflow := true;
      List.iter
        (fun pr ->
          let du = VF.def_use p.V.instrs.(pr) in
          if List.mem VF.Flags du.VF.defs then begin
            if not (List.mem pr !defs) then defs := pr :: !defs
          end
          else go pr)
        cfg.Cfg.pred.(idx)
    end
  in
  go u;
  match (!defs, !underflow) with
  | [ d ], false -> (
    let i = p.V.instrs.(d) in
    match (i.V.op, i.V.operands) with
    | V.Cmp, [ a; b ] -> Some (a, b)
    | _ -> None)
  | _ -> None

let via32_iv_steps (p : V.program) (l : Cfg.loop) r =
  let bad = ref None in
  let steps = ref [] in
  List.iter
    (fun idx ->
      let i = p.V.instrs.(idx) in
      if List.mem (VF.Gpr r) (VF.def_use i).VF.defs then
        match (i.V.op, i.V.operands) with
        | V.Add, [ V.R d; V.I k ] when d = r ->
          steps := (idx, Int32.to_int k) :: !steps
        | V.Sub, [ V.R d; V.I k ] when d = r ->
          steps := (idx, -(Int32.to_int k)) :: !steps
        | _ -> bad := Some (`Opaque "non-constant update of the induction variable"))
    l.Cfg.nodes;
  match !bad with Some why -> Error why | None -> Ok !steps

let via32_loop_trip (p : V.program) (cfg : Cfg.t) out (l : Cfg.loop) =
  if l.Cfg.exits = [] then T_unbounded "the loop has no exit edges"
  else begin
    let decoded =
      List.filter_map
        (fun (u, _v) ->
          let i = p.V.instrs.(u) in
          match (i.V.op, i.V.operands) with
          | V.Jcc cc, [ V.I tgt ] -> (
            match cond_of_cc cc with
            | None -> None
            | Some c -> (
              let tgt = Int32.to_int tgt in
              let exit_on_taken =
                not (tgt >= 0 && tgt < cfg.Cfg.n && l.Cfg.body.(tgt))
              in
              let continue_cond = if exit_on_taken then negate c else c in
              match via32_reaching_cmp p cfg u with
              | None -> None
              | Some (a, b) -> Some (u, continue_cond, a, b)))
          | _ -> None)
        (List.sort_uniq compare l.Cfg.exits)
    in
    if decoded = [] then T_unknown "no decodable exit test"
    else begin
      let in_loop_defs r =
        List.exists
          (fun idx -> List.mem (VF.Gpr r) (VF.def_use p.V.instrs.(idx)).VF.defs)
          l.Cfg.nodes
      in
      let invariant_sym = function
        | V.I c -> Some (s_const (Int32.to_int c))
        | V.R r when not (in_loop_defs r) -> Some (via32_loop_entry_value cfg l out r)
        | _ -> None
      in
      let dominates_back_srcs idx =
        List.for_all (fun s -> Cfg.dominates cfg idx s) l.Cfg.back_srcs
      in
      let trips =
        List.map
          (fun (u, cond, a, b) ->
            if not (dominates_back_srcs u) then
              T_unknown "the exit test does not run on every iteration"
            else begin
              let pick_iv side_a side_b cond =
                match (side_a, side_b) with
                | V.R r, other when in_loop_defs r -> Some (r, other, cond)
                | _ -> None
              in
              match
                (match pick_iv a b cond with
                | Some x -> Some x
                | None -> pick_iv b a (mirror cond))
              with
              | None -> (
                match (invariant_sym a, invariant_sym b) with
                | Some _, Some _ when List.length decoded = 1
                                      && List.length l.Cfg.exits = 1 ->
                  T_unbounded "the exit condition is loop-invariant"
                | _ -> T_unknown "exit test without an induction variable")
              | Some (iv, bound_op, cond) -> (
                match invariant_sym bound_op with
                | None -> T_unknown "exit bound is not loop-invariant"
                | Some bound when bound = Top || bound = Bot ->
                  T_unknown "exit bound is not statically known"
                | Some bound -> (
                  match via32_iv_steps p l iv with
                  | Error (`Nonmono why) -> T_unknown ("EXO015:" ^ why)
                  | Error (`Opaque why) -> T_unknown why
                  | Ok [] -> T_unknown "exit register is never updated in the loop"
                  | Ok steps ->
                    let signs = List.sort_uniq compare (List.map (fun (_, s) -> compare s 0) steps) in
                    if List.mem 0 signs || List.length signs > 1 then
                      T_unknown "EXO015:mixed-direction updates of the induction variable"
                    else begin
                      let guaranteed =
                        List.filter (fun (idx, _) -> dominates_back_srcs idx) steps
                      in
                      if guaranteed = [] then
                        T_unknown "no induction-variable update is guaranteed every iteration"
                      else begin
                        let step = List.fold_left (fun acc (_, s) -> acc + s) 0 guaranteed in
                        let init =
                          match via32_loop_entry_value cfg l out iv with
                          | Bot -> Top
                          | v -> v
                        in
                        if init = Top then T_unknown "induction-variable start value unknown"
                        else
                          let pre_update =
                            not (List.for_all (fun (idx, _) -> Cfg.dominates cfg idx u) guaranteed)
                          in
                          trip_of_exit ~init ~step ~pre_update
                            { e_iv = iv; e_cond = cond; e_bound = bound; e_site = u }
                      end
                    end))
            end)
          decoded
      in
      match best_trip trips with Some t -> t | None -> T_unknown "no decodable exit test"
    end
  end

(* ==================================================================== *)
(* Findings + worst-case composition                                    *)
(* ==================================================================== *)

(* EXO011/EXO012/EXO013/EXO015 findings from the classified loops, plus
   the per-shred worst-case cycle verdict under [env]. *)
let compose ~loc_of_line ~line_of ~cost_of ~spawn_reachable (cfg : Cfg.t)
    (loops : (Cfg.loop * trip) array) ~env =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let irr = Cfg.irreducible_edges cfg in
  List.iter
    (fun (u, v) ->
      add
        (finding ~rule:"EXO012" ~severity:Finding.Warning (loc_of_line (line_of u))
           "irreducible control flow: the retreating edge to line %d is \
            not a natural back edge (multi-entry loop); no trip bound \
            can be inferred"
           (loc_of_line (line_of v)).Exochi_isa.Loc.line))
    irr;
  let infos =
    Array.to_list
      (Array.map
         (fun ((l : Cfg.loop), trip) ->
           let line = line_of l.Cfg.header in
           (match trip with
           | T_unbounded why ->
             add
               (finding ~rule:"EXO011" ~severity:Finding.Error (loc_of_line line)
                  "statically unbounded loop: %s" why)
           | T_unknown why when String.length why > 7 && String.sub why 0 7 = "EXO015:" ->
             add
               (finding ~rule:"EXO015" ~severity:Finding.Warning (loc_of_line line)
                  "backward branch with a non-monotone induction \
                   variable: %s"
                  (String.sub why 7 (String.length why - 7)))
           | _ -> ());
           { header = l.Cfg.header; header_line = line; depth = l.Cfg.depth; trip })
         loops)
  in
  (* evaluate each loop under the environment *)
  let verdict =
    try
      let evald =
        Array.map (fun ((l : Cfg.loop), trip) -> (l, eval_trip trip ~env)) loops
      in
      if spawn_reachable then
        Unknown "spawn creates shreds the per-shred cost model does not follow"
      else if irr <> [] then Unknown "irreducible control flow"
      else if Array.exists (fun (_, e) -> match e with `Unbounded _ -> true | _ -> false) evald
      then Unbounded
      else begin
        let unknown =
          Array.fold_left
            (fun acc (_, e) ->
              match (acc, e) with
              | None, `Unknown why -> Some why
              | acc, _ -> acc)
            None evald
        in
        match unknown with
        | Some why -> Unknown why
        | None ->
          let total = ref 0 in
          for idx = 0 to cfg.Cfg.n - 1 do
            if cfg.Cfg.reach.(idx) then begin
              let mult =
                Array.fold_left
                  (fun acc ((l : Cfg.loop), e) ->
                    if l.Cfg.body.(idx) then
                      match e with
                      | `Trips t -> mul_cap acc t
                      | _ -> acc (* unreachable: filtered above *)
                    else acc)
                  1 evald
              in
              total := add_cap !total (mul_cap (cost_of idx) mult)
            end
          done;
          Cycles !total
      end
    with Overflow ->
      add
        (finding ~rule:"EXO013" ~severity:Finding.Warning
           (loc_of_line (line_of 0))
           "trip-count/cost overflow: the worst-case bound exceeds %d \
            cycles; treating the section as unbounded for admission"
           overflow_cap);
      Unknown "trip-count/cost overflow"
  in
  (List.rev !findings, infos, verdict)

let analyze_x3k ?loc ?(env = no_env) (p : X.program) =
  let loc_of_line =
    match loc with
    | Some f -> f
    | None -> fun line -> Loc.make ~file:p.X.name ~line ~col:1
  in
  let cfg = XF.cfg p in
  let _, out = x3k_sym_interp p in
  let loops =
    Array.map (fun l -> (l, x3k_loop_trip p cfg out l)) (Cfg.loops cfg)
  in
  let spawn_reachable =
    Array.exists
      (fun idx -> cfg.Cfg.reach.(idx) && p.X.instrs.(idx).X.op = X.Spawn)
      (Array.init (Array.length p.X.instrs) Fun.id)
  in
  let findings, infos, verdict =
    compose ~loc_of_line
      ~line_of:(fun idx -> p.X.instrs.(idx).X.line)
      ~cost_of:(fun idx -> Cost.worst_retire_cycles p.X.instrs.(idx))
      ~spawn_reachable cfg loops ~env
  in
  { findings; loops = infos; verdict }

let analyze_via32 ?loc (p : V.program) =
  let loc_of_line =
    match loc with
    | Some f -> f
    | None -> fun line -> Loc.make ~file:p.V.name ~line ~col:1
  in
  let cfg = VF.cfg p in
  let _, out = via32_sym_interp p in
  let loops =
    Array.map (fun l -> (l, via32_loop_trip p cfg out l)) (Cfg.loops cfg)
  in
  let findings, infos, verdict =
    compose ~loc_of_line
      ~line_of:(fun idx -> p.V.instrs.(idx).V.line)
      ~cost_of:(fun _ -> 0) (* no VIA32 cycle model: loop verdicts only *)
      ~spawn_reachable:false cfg loops ~env:no_env
  in
  let verdict =
    match verdict with
    | Cycles _ -> Unknown "no VIA32 cycle cost model"
    | v -> v
  in
  { findings; loops = infos; verdict }
