(** Exo-bound: symbolic loop-bound / worst-case-cycle analysis over the
    X3K and VIA32 CFGs (DESIGN.md §13).

    Every natural loop ({!Exochi_isa.Cfg.loops}) gets a trip verdict —
    a constant, a symbolic ceil-expression over the launch parameters
    [%p0..%pN], provably unbounded, or honestly unknown. The X3K
    verdict composes {!Exochi_isa.X3k_cost.worst_retire_cycles} with
    the product of enclosing trip counts into a per-shred worst-case
    busy-cycle bound, directly comparable to [Gpu.busy_cycles].

    Rules emitted: EXO011 (statically unbounded loop), EXO012
    (irreducible control flow), EXO013 (trip/cost overflow), EXO015
    (backward branch with non-monotone induction variable). EXO014
    (bound vs declared deadline class) is applied by {!Exo_check},
    which owns the launch geometry. *)

(** Affine symbolic values [k + sum c_i * %p_i] over the launch
    parameters — the multi-parameter generalisation of the race
    domain's [a*%p0+b]. *)
type sym = Bot | Sym of int * (int * int) list | Top

val s_const : int -> sym
val s_param : int -> sym
val sym_to_string : sym -> string

(** Interval evaluation under a parameter environment: [env i] is the
    inclusive range of [%pi] ([None] = unknown). [None] on [Top]/[Bot]
    or any unknown parameter. *)
val eval_range : sym -> env:(int -> (int * int) option) -> (int * int) option

(** The all-unknown environment (standalone lint). *)
val no_env : int -> (int * int) option

(** Trip bound of one loop: header executions per loop entry are at
    most [max 1 (ceil num/den) + extra]. *)
type trip =
  | T_const of int
  | T_sym of { num : sym; den : int; extra : int; ne_exit : bool }
  | T_unbounded of string
  | T_unknown of string

val eval_trip :
  trip ->
  env:(int -> (int * int) option) ->
  [ `Trips of int | `Unbounded of string | `Unknown of string ]

val trip_to_string : trip -> string

type loop_info = {
  header : int; (* instruction index of the loop header *)
  header_line : int; (* source line of the header instruction *)
  depth : int; (* 0 = outermost *)
  trip : trip;
}

type verdict =
  | Cycles of int (* proven per-shred worst-case busy cycles *)
  | Unbounded
  | Unknown of string

val verdict_to_string : verdict -> string

type t = {
  findings : Finding.t list;
  loops : loop_info list;
  verdict : verdict;
}

(** Analyse an assembled X3K program. [loc] maps a source line to a
    finding location (defaults to [program.name:line]); [env] gives the
    launch-parameter ranges used to evaluate symbolic trips (defaults
    to {!no_env}: symbolic loops stay [Unknown], constant ones still
    bound). A reachable [spawn] makes the verdict [Unknown] — spawned
    shreds are outside the per-shred cost model. *)
val analyze_x3k :
  ?loc:(int -> Exochi_isa.Loc.t) ->
  ?env:(int -> (int * int) option) ->
  Exochi_isa.X3k_ast.program ->
  t

(** Analyse a VIA32 program: loop classification and EXO011/012/015
    only — there is no VIA32 cycle cost model, so a loop-free result is
    still [Unknown], never [Cycles]. *)
val analyze_via32 :
  ?loc:(int -> Exochi_isa.Loc.t) -> Exochi_isa.Via32_ast.program -> t
