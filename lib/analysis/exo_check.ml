(* Exo-check: static analysis over a compiled CHI-lite program and its
   accelerator sections (see DESIGN.md §9 for the rule catalog).

   Pass 1 (shred races): abstract-interpret each parallel region's X3K
   block into an access summary — read/write footprints over surfaces
   addressed by %p0-affine expressions — and decide, exactly, whether
   two distinct iterations of the region can touch the same element.
   Host code racing a master_nowait team is checked on the AST.

   Pass 2 (descriptors/clauses): writes through Input-mode descriptors,
   accesses outside the declared width*height extent (interval analysis
   on the same affine footprints), shared variables never bound to a
   descriptor, clause misuse.

   Pass 3 (assembly dataflow): def-use lint over the X3K and VIA32
   CFGs — possibly-uninitialized register/predicate reads, dead stores,
   unreachable code — generalizing the per-instruction shape checks of
   X3k_check/Via32_check. *)

module Loc = Exochi_isa.Loc
module X = Exochi_isa.X3k_ast
module XF = Exochi_isa.X3k_flow
module V = Exochi_isa.Via32_ast
module VF = Exochi_isa.Via32_flow
module Ast = Exochi_core.Chilite_ast
module Compile = Exochi_core.Chilite_compile
module Fatbin = Exochi_core.Chi_fatbin
module Surface = Exochi_memory.Surface
module ISet = Set.Make (Int)

let finding = Finding.make

(* ==================================================================== *)
(* Pass 3: dataflow lint over the X3K CFG                               *)
(* ==================================================================== *)

(* Definite-assignment: a forward must-analysis. The state at an
   instruction is the set of (registers, flags) written on *every* path
   from an entry; a use outside the state may read garbage. Predicated
   defs still count as defs — the idiom "(f0) mov vr1 = a / (!f0) mov
   vr1 = b" would otherwise drown the report in false positives; a
   predicated *first* write is rare enough to accept the false negative
   (DESIGN.md §9, EXO008). *)
let x3k_uninit ~loc p =
  let n = Array.length p.X.instrs in
  let entry : (ISet.t * ISet.t) option array = Array.make n None in
  let work = Queue.create () in
  let push idx st =
    let merged =
      match entry.(idx) with
      | None -> Some st
      | Some (r, f) ->
        let r' = ISet.inter r (fst st) and f' = ISet.inter f (snd st) in
        if ISet.equal r' r && ISet.equal f' f then None else Some (r', f')
    in
    match merged with
    | None -> ()
    | Some st ->
      entry.(idx) <- Some st;
      Queue.add idx work
  in
  List.iter (fun e -> push e (ISet.empty, ISet.empty)) (XF.entries p);
  while not (Queue.is_empty work) do
    let idx = Queue.pop work in
    match entry.(idx) with
    | None -> ()
    | Some (regs, flags) ->
      let du = XF.def_use p.X.instrs.(idx) in
      let out =
        ( ISet.union regs (ISet.of_list du.XF.reg_defs),
          ISet.union flags (ISet.of_list du.XF.flag_defs) )
      in
      List.iter (fun s -> push s out) (XF.succs p idx)
  done;
  let out = ref [] in
  Array.iteri
    (fun idx i ->
      match entry.(idx) with
      | None -> () (* unreachable; EXO010's business *)
      | Some (regs, flags) ->
        let du = XF.def_use i in
        let uninit =
          List.sort_uniq Int.compare
            (List.filter (fun r -> not (ISet.mem r regs)) du.XF.reg_uses)
        in
        (* one finding per run of consecutive registers: a [vrA..vrB]
           range operand reports once, not once per lane *)
        let rec runs = function
          | [] -> []
          | r :: rest ->
            let rec extend last = function
              | r' :: rest' when r' = last + 1 -> extend r' rest'
              | rest' -> (last, rest')
            in
            let last, rest = extend r rest in
            (r, last) :: runs rest
        in
        List.iter
          (fun (a, b) ->
            let reg_str =
              if a = b then Printf.sprintf "vr%d" a
              else Printf.sprintf "vr%d..vr%d" a b
            in
            out :=
              finding ~rule:"EXO008" ~severity:Finding.Warning (loc i)
                "%s may be read before initialization in '%s'" reg_str
                (X.opcode_name i.X.op)
              :: !out)
          (runs uninit);
        List.iter
          (fun f ->
            if not (ISet.mem f flags) then
              out :=
                finding ~rule:"EXO008" ~severity:Finding.Warning (loc i)
                  "flag f%d may be read before initialization in '%s'" f
                  (X.opcode_name i.X.op)
                :: !out)
          du.XF.flag_uses)
    p.X.instrs;
  List.rev !out

(* Backward liveness; a def with no live reader and no side effect is a
   dead store. Predicated defs do not kill (the old value survives a
   false predicate). *)
let x3k_dead_stores ~loc p =
  let n = Array.length p.X.instrs in
  let live_out = Array.make n (ISet.empty, ISet.empty) in
  let du = Array.map XF.def_use p.X.instrs in
  let changed = ref true in
  while !changed do
    changed := false;
    for idx = n - 1 downto 0 do
      let lo =
        List.fold_left
          (fun (r, f) s ->
            let sr, sf = live_out.(s) in
            let d = du.(s) in
            (* a predicated def may not execute, so it kills nothing *)
            let kill_r, kill_f =
              if d.XF.predicated then (ISet.empty, ISet.empty)
              else (ISet.of_list d.XF.reg_defs, ISet.of_list d.XF.flag_defs)
            in
            let live_in_r =
              ISet.union (ISet.of_list d.XF.reg_uses) (ISet.diff sr kill_r)
            and live_in_f =
              ISet.union (ISet.of_list d.XF.flag_uses) (ISet.diff sf kill_f)
            in
            (ISet.union r live_in_r, ISet.union f live_in_f))
          (ISet.empty, ISet.empty) (XF.succs p idx)
      in
      let cur_r, cur_f = live_out.(idx) in
      if not (ISet.equal (fst lo) cur_r && ISet.equal (snd lo) cur_f) then begin
        live_out.(idx) <- lo;
        changed := true
      end
    done
  done;
  let reach = XF.reachable p in
  let out = ref [] in
  Array.iteri
    (fun idx i ->
      let d = du.(idx) in
      if
        reach.(idx)
        && (not (XF.has_side_effect i))
        && (d.XF.reg_defs <> [] || d.XF.flag_defs <> [])
        && List.for_all (fun r -> not (ISet.mem r (fst live_out.(idx)))) d.XF.reg_defs
        && List.for_all (fun f -> not (ISet.mem f (snd live_out.(idx)))) d.XF.flag_defs
      then
        out :=
          finding ~rule:"EXO009" ~severity:Finding.Warning (loc i)
            "dead store: result of '%s' is never read" (X.opcode_name i.X.op)
          :: !out)
    p.X.instrs;
  List.rev !out

(* One finding per maximal run of unreachable instructions. *)
let x3k_unreachable ~loc p =
  let reach = XF.reachable p in
  let out = ref [] in
  let run_start = ref None in
  let flush_run stop =
    match !run_start with
    | Some start ->
      let count = stop - start in
      out :=
        finding ~rule:"EXO010" ~severity:Finding.Warning
          (loc p.X.instrs.(start))
          "unreachable code (%d instruction%s)" count
          (if count = 1 then "" else "s")
        :: !out;
      run_start := None
    | None -> ()
  in
  Array.iteri
    (fun idx _ ->
      if not reach.(idx) then begin
        if !run_start = None then run_start := Some idx
      end
      else flush_run idx)
    p.X.instrs;
  flush_run (Array.length p.X.instrs);
  List.rev !out

let x3k_lint ?loc p =
  let loc =
    match loc with
    | Some f -> f
    | None -> fun i -> Loc.make ~file:p.X.name ~line:i.X.line ~col:1
  in
  x3k_uninit ~loc p @ x3k_dead_stores ~loc p @ x3k_unreachable ~loc p

let check_x3k p = x3k_lint p @ (Bound.analyze_x3k p).Bound.findings

(* ==================================================================== *)
(* Pass 3: dataflow lint over the VIA32 CFG                             *)
(* ==================================================================== *)

module SSet = Set.Make (struct
  type t = VF.slot

  let compare = compare
end)

(* The stack pointer and frame pointer are live-in (the loader sets the
   stack up); everything else starts undefined. *)
let via32_entry_defined = SSet.of_list [ VF.Gpr V.ESP; VF.Gpr V.EBP ]

(* ret/hlt "use" every register only so that liveness keeps values handed
   to the caller alive; they are not real reads, so never report them. *)
let via32_synthetic_uses (i : V.instr) =
  match i.V.op with V.Ret | V.Hlt -> true | _ -> false

let via32_uninit ~loc p =
  let n = Array.length p.V.instrs in
  let entry : SSet.t option array = Array.make n None in
  let work = Queue.create () in
  let push idx st =
    let merged =
      match entry.(idx) with
      | None -> Some st
      | Some cur ->
        let st' = SSet.inter cur st in
        if SSet.equal st' cur then None else Some st'
    in
    match merged with
    | None -> ()
    | Some st ->
      entry.(idx) <- Some st;
      Queue.add idx work
  in
  List.iter (fun e -> push e via32_entry_defined) (VF.entries p);
  while not (Queue.is_empty work) do
    let idx = Queue.pop work in
    match entry.(idx) with
    | None -> ()
    | Some defined ->
      let du = VF.def_use p.V.instrs.(idx) in
      let out = SSet.union defined (SSet.of_list du.VF.defs) in
      List.iter (fun s -> push s out) (VF.succs p idx)
  done;
  let out = ref [] in
  Array.iteri
    (fun idx i ->
      match entry.(idx) with
      | None -> ()
      | Some defined ->
        if not (via32_synthetic_uses i) then
          let du = VF.def_use i in
          List.iter
            (fun s ->
              if not (SSet.mem s defined) then
                out :=
                  finding ~rule:"EXO008" ~severity:Finding.Warning (loc i)
                    "%s may be read before initialization in '%s'"
                    (VF.slot_name s) (V.opcode_name i.V.op)
                  :: !out)
            du.VF.uses)
    p.V.instrs;
  List.rev !out

let via32_dead_stores ~loc p =
  let n = Array.length p.V.instrs in
  let live_out = Array.make n SSet.empty in
  let du = Array.map VF.def_use p.V.instrs in
  let changed = ref true in
  while !changed do
    changed := false;
    for idx = n - 1 downto 0 do
      let lo =
        List.fold_left
          (fun acc s ->
            let d = du.(s) in
            SSet.union acc
              (SSet.union
                 (SSet.of_list d.VF.uses)
                 (SSet.diff live_out.(s) (SSet.of_list d.VF.defs))))
          SSet.empty (VF.succs p idx)
      in
      if not (SSet.equal lo live_out.(idx)) then begin
        live_out.(idx) <- lo;
        changed := true
      end
    done
  done;
  let reach = VF.reachable p in
  let out = ref [] in
  Array.iteri
    (fun idx i ->
      let d = du.(idx) in
      (* only flag stores whose defs are pure register writes *)
      let reportable =
        d.VF.defs <> []
        && List.for_all (function VF.Flags -> false | _ -> true) d.VF.defs
      in
      if
        reach.(idx) && reportable
        && (not (VF.has_side_effect p idx))
        && List.for_all (fun s -> not (SSet.mem s live_out.(idx))) d.VF.defs
      then
        out :=
          finding ~rule:"EXO009" ~severity:Finding.Warning (loc i)
            "dead store: result of '%s' is never read" (V.opcode_name i.V.op)
          :: !out)
    p.V.instrs;
  List.rev !out

let via32_unreachable ~loc p =
  let reach = VF.reachable p in
  let out = ref [] in
  let run_start = ref None in
  let flush_run stop =
    match !run_start with
    | Some start ->
      let count = stop - start in
      out :=
        finding ~rule:"EXO010" ~severity:Finding.Warning
          (loc p.V.instrs.(start))
          "unreachable code (%d instruction%s)" count
          (if count = 1 then "" else "s")
        :: !out;
      run_start := None
    | None -> ()
  in
  Array.iteri
    (fun idx _ ->
      if not reach.(idx) then begin
        if !run_start = None then run_start := Some idx
      end
      else flush_run idx)
    p.V.instrs;
  flush_run (Array.length p.V.instrs);
  List.rev !out

let via32_lint ?loc p =
  let loc =
    match loc with
    | Some f -> f
    | None -> fun i -> Loc.make ~file:p.V.name ~line:i.V.line ~col:1
  in
  via32_uninit ~loc p @ via32_dead_stores ~loc p @ via32_unreachable ~loc p

let check_via32 p = via32_lint p @ (Bound.analyze_via32 p).Bound.findings

(* ==================================================================== *)
(* Passes 1 & 2: abstract interpretation of a parallel region           *)
(* ==================================================================== *)

(* Lane-0 scalar values as affine functions of the iteration index:
   [Aff (a, b)] is a*%p0 + b. %p1.. (firstprivate) and anything the
   domain cannot follow go to [Top]. *)
type av = Bot | Aff of int * int | Top

let av_join x y =
  match (x, y) with Bot, v | v, Bot -> v | _ -> if x = y then x else Top

let av_binop f x y =
  match (x, y) with
  | Bot, _ | _, Bot -> Bot
  | Aff (a1, b1), Aff (a2, b2) -> f (a1, b1) (a2, b2)
  | _ -> Top

let av_add = av_binop (fun (a1, b1) (a2, b2) -> Aff (a1 + a2, b1 + b2))
let av_sub = av_binop (fun (a1, b1) (a2, b2) -> Aff (a1 - a2, b1 - b2))

let av_mul =
  av_binop (fun (a1, b1) (a2, b2) ->
      if a1 = 0 then Aff (a2 * b1, b2 * b1)
      else if a2 = 0 then Aff (a1 * b2, b1 * b2)
      else Top)

let av_shl x k =
  match x with Aff (a, b) -> Aff (a lsl k, b lsl k) | v -> v

let av_offset x c = av_add x (Aff (0, c))

(* Access footprints: each dimension is an affine base plus a constant
   element count. 1-D [Surf] accesses have one dimension; [Surf2d] has
   (x, width) and (y, 1). *)
type access = {
  surf : string;
  kind : [ `R | `W ];
  dims : (av * int) list;
  line : int; (* X3K-relative source line *)
}

let max_tracked_reg = 255

let x3k_interp (p : X.program) =
  let n = Array.length p.X.instrs in
  let nregs = max_tracked_reg + 1 in
  let entry : av array option array = Array.make n None in
  let work = Queue.create () in
  let push idx st =
    let merged =
      match entry.(idx) with
      | None -> Some st
      | Some cur ->
        let changed = ref false in
        let st' =
          Array.mapi
            (fun r v ->
              let j = av_join v st.(r) in
              if j <> v then changed := true;
              j)
            cur
        in
        if !changed then Some st' else None
    in
    match merged with
    | None -> ()
    | Some st ->
      entry.(idx) <- Some st;
      Queue.add idx work
  in
  List.iter (fun e -> push e (Array.make nregs Bot)) (XF.entries p);
  let operand_av st = function
    | X.Imm c -> Aff (0, Int32.to_int c)
    | X.Sreg (X.Param 0) -> Aff (1, 0) (* the iteration index *)
    | X.Sreg _ -> Top
    | X.Reg r -> if r < nregs then st.(r) else Top
    | X.Range (a, _) -> if a < nregs then st.(a) else Top
    | X.Flag _ | X.Surf _ | X.Surf2d _ | X.Remote _ -> Top
  in
  let transfer st (i : X.instr) =
    let dst_regs =
      match i.X.dst with
      | Some (X.Reg r) -> [ (r, true) ] (* (register, carries lane 0) *)
      | Some (X.Range (a, b)) ->
        List.init (b - a + 1) (fun k -> (a + k, k = 0))
      | _ -> []
    in
    if dst_regs = [] then st
    else begin
      let value =
        match (i.X.op, i.X.srcs) with
        | (X.Mov | X.Bcast), [ s ] -> operand_av st s
        | X.Add, [ s1; s2 ] -> av_add (operand_av st s1) (operand_av st s2)
        | X.Sub, [ s1; s2 ] -> av_sub (operand_av st s1) (operand_av st s2)
        | X.Mul, [ s1; s2 ] -> av_mul (operand_av st s1) (operand_av st s2)
        | X.Shl, [ s1; X.Imm k ] ->
          let k = Int32.to_int k in
          if k >= 0 && k < 31 then av_shl (operand_av st s1) k else Top
        | _ -> Top
      in
      let st = Array.copy st in
      List.iter
        (fun (r, lane0) ->
          if r < nregs then begin
            let v = if lane0 then value else Top in
            (* a predicated write may not happen: join with the old value *)
            st.(r) <- (if i.X.pred = None then v else av_join st.(r) v)
          end)
        dst_regs;
      st
    end
  in
  while not (Queue.is_empty work) do
    let idx = Queue.pop work in
    match entry.(idx) with
    | None -> ()
    | Some st ->
      let out = transfer st p.X.instrs.(idx) in
      List.iter (fun s -> push s out) (XF.succs p idx)
  done;
  (* collect the access summary with the fixpoint states *)
  let accesses = ref [] in
  Array.iteri
    (fun idx (i : X.instr) ->
      match entry.(idx) with
      | None -> ()
      | Some st ->
        let surf_name slot = X.surf_name p.X.surfaces slot in
        let record kind op =
          match op with
          | X.Surf { slot; index; offset } ->
            let base = av_offset (operand_av st (X.Reg index)) offset in
            (* gather/scatter index registers hold per-lane indices the
               scalar domain cannot follow *)
            let base =
              match i.X.op with
              | X.Gather | X.Scatter -> Top
              | _ -> base
            in
            accesses :=
              {
                surf = surf_name slot;
                kind;
                dims = [ (base, i.X.width) ];
                line = i.X.line;
              }
              :: !accesses
          | X.Surf2d { slot; xreg; yreg } ->
            let x = operand_av st (X.Reg xreg)
            and y = operand_av st (X.Reg yreg) in
            (* sampler coordinates are Q16.16 and clamped in hardware *)
            let x, y =
              match i.X.op with X.Sample -> (Top, Top) | _ -> (x, y)
            in
            accesses :=
              {
                surf = surf_name slot;
                kind;
                dims = [ (x, i.X.width); (y, 1) ];
                line = i.X.line;
              }
              :: !accesses
          | _ -> ()
        in
        (match (i.X.op, i.X.srcs) with
        | (X.Ld | X.Gather | X.Sample), [ src ] -> record `R src
        | _ -> ());
        (match (i.X.op, i.X.dst) with
        | (X.St | X.Scatter), Some dst -> record `W dst
        | _ -> ()))
    p.X.instrs;
  List.rev !accesses

(* ---- exact overlap decision between iterations ---- *)

let cdiv a b = if a >= 0 then (a + b - 1) / b else -(-a / b)
let fdiv a b = if a >= 0 then a / b else -((-a + b - 1) / b)

(* Integer i-interval (inclusive) where slope*i + c lands in [l, h]. *)
let solve_affine_in ~slope ~c ~l ~h =
  if slope = 0 then if c >= l && c <= h then `All else `None
  else if slope > 0 then `Range (cdiv (l - c) slope, fdiv (h - c) slope)
  else `Range (cdiv (c - h) (-slope), fdiv (c - l) (-slope))

let inter_range r (lo, hi) =
  match r with
  | `None -> None
  | `All -> if lo <= hi then Some (lo, hi) else None
  | `Range (a, b) ->
    let a = max a lo and b = min b hi in
    if a <= b then Some (a, b) else None

(* how far apart two iterations can be before we stop looking (bounds
   the d-scan; beyond this the analyzer goes quiet — DESIGN.md §9) *)
let max_iter_scan = 65_536

(* ∃ i≠j ∈ [lo,hi) such that, in every dimension, access 1 at iteration
   i overlaps access 2 at iteration j. Dimensions must all be affine. *)
let overlaps_across_iterations ~lo ~hi dims1 dims2 =
  let niter = hi - lo in
  if niter < 2 || niter > max_iter_scan then false
  else begin
    let dims =
      List.map2
        (fun (v1, w1) (v2, w2) ->
          match (v1, v2) with
          | Aff (a1, b1), Aff (a2, b2) -> Some ((a1, b1, w1), (a2, b2, w2))
          | _ -> None)
        dims1 dims2
    in
    if List.exists (fun d -> d = None) dims then false
    else begin
      let dims = List.filter_map Fun.id dims in
      let found = ref false in
      let d = ref (1 - niter) in
      while (not !found) && !d < niter do
        if !d <> 0 then begin
          (* j = i - d; both i and j must lie in [lo, hi) *)
          let ilo = max lo (lo + !d) and ihi = min (hi - 1) (hi - 1 + !d) in
          if ilo <= ihi then begin
            (* overlap in a dimension: a1*i + b1 - (a2*j + b2) within
               (-(w2-1) .. w1-1); substitute j = i - d *)
            let feasible =
              List.fold_left
                (fun acc ((a1, b1, w1), (a2, b2, w2)) ->
                  match acc with
                  | None -> None
                  | Some bounds ->
                    let slope = a1 - a2 in
                    let c = (a2 * !d) + b1 - b2 in
                    inter_range
                      (solve_affine_in ~slope ~c ~l:(-(w2 - 1)) ~h:(w1 - 1))
                      bounds)
                (Some (ilo, ihi)) dims
            in
            if feasible <> None then found := true
          end
        end;
        incr d
      done;
      !found
    end
  end

(* Extreme element indices a dimension can reach over [lo, hi). *)
let dim_bounds ~lo ~hi (v, w) =
  match v with
  | Aff (a, b) ->
    let at_lo = (a * lo) + b and at_hi = (a * (hi - 1)) + b in
    Some (min at_lo at_hi, max at_lo at_hi + w - 1)
  | _ -> None

(* ==================================================================== *)
(* Descriptor environment from the AST                                  *)
(* ==================================================================== *)

type desc_info = {
  d_mode : int option; (* 0 input / 1 output / 2 in-out, when literal *)
  d_width : int option;
  d_height : int option;
}

let lit = function Ast.Int v -> Some (Int32.to_int v) | _ -> None

let rec expr_iter f e =
  f e;
  match e with
  | Ast.Int _ | Ast.Var _ -> ()
  | Ast.Index (_, e) -> expr_iter f e
  | Ast.Unop (_, e) -> expr_iter f e
  | Ast.Binop (_, a, b) ->
    expr_iter f a;
    expr_iter f b
  | Ast.Call (_, args) -> List.iter (expr_iter f) args

let rec stmt_iter_exprs f = function
  | Ast.Decl (_, e) -> Option.iter (expr_iter f) e
  | Ast.Assign (_, e) -> expr_iter f e
  | Ast.Store (_, i, e) ->
    expr_iter f i;
    expr_iter f e
  | Ast.If (c, t, e) ->
    expr_iter f c;
    List.iter (stmt_iter_exprs f) t;
    Option.iter (List.iter (stmt_iter_exprs f)) e
  | Ast.While (c, b) ->
    expr_iter f c;
    List.iter (stmt_iter_exprs f) b
  | Ast.For (i, c, s, b) ->
    stmt_iter_exprs f i;
    expr_iter f c;
    stmt_iter_exprs f s;
    List.iter (stmt_iter_exprs f) b
  | Ast.Return e -> Option.iter (expr_iter f) e
  | Ast.Expr e -> expr_iter f e
  | Ast.Block b -> List.iter (stmt_iter_exprs f) b
  | Ast.Parallel r ->
    expr_iter f r.Ast.lo;
    expr_iter f r.Ast.hi

(* Every chi_desc(VAR, mode, w, h) call in the program, flow-insensitive
   (first call wins). *)
let collect_descriptors (prog : Ast.program) =
  let descs = ref [] in
  let visit = function
    | Ast.Call ("chi_desc", [ Ast.Var a; mode; w; h ]) ->
      if not (List.mem_assoc a !descs) then
        descs :=
          (a, { d_mode = lit mode; d_width = lit w; d_height = lit h })
          :: !descs
    | _ -> ()
  in
  List.iter
    (fun (f : Ast.func) -> List.iter (stmt_iter_exprs visit) f.Ast.body)
    prog.Ast.funcs;
  !descs

(* ==================================================================== *)
(* Host constant environment                                            *)
(* ==================================================================== *)

(* Flow-insensitive constant propagation over the host program: a name
   is constant when its initializer is provably its only write — a
   scalar global never assigned, or a local declared exactly once with
   an initializer and never reassigned anywhere. This widens the race /
   extent / bound passes from literal-only iteration spaces to
   symbolically constant ones ("int n = 64; ... chi_parallel(0, 0, n)"
   now analyzes like a literal 64). *)
let rec const_eval env = function
  | Ast.Int v -> Some (Int32.to_int v)
  | Ast.Var v -> Hashtbl.find_opt env v
  | Ast.Unop (`Neg, e) -> Option.map (fun v -> -v) (const_eval env e)
  | Ast.Unop (`Not, e) ->
    Option.map (fun v -> if v = 0 then 1 else 0) (const_eval env e)
  | Ast.Binop (op, a, b) -> (
    match (const_eval env a, const_eval env b) with
    | Some x, Some y -> (
      match op with
      | Ast.Add -> Some (x + y)
      | Ast.Sub -> Some (x - y)
      | Ast.Mul -> Some (x * y)
      | Ast.Div -> if y = 0 then None else Some (x / y)
      | Ast.Rem -> if y = 0 then None else Some (x mod y)
      | Ast.Shl -> if y >= 0 && y < 31 then Some (x lsl y) else None
      | Ast.Shr -> if y >= 0 && y < 31 then Some (x asr y) else None
      | Ast.Lt -> Some (if x < y then 1 else 0)
      | Ast.Le -> Some (if x <= y then 1 else 0)
      | Ast.Gt -> Some (if x > y then 1 else 0)
      | Ast.Ge -> Some (if x >= y then 1 else 0)
      | Ast.Eq -> Some (if x = y then 1 else 0)
      | Ast.Ne -> Some (if x <> y then 1 else 0)
      | Ast.BAnd -> Some (x land y)
      | Ast.BOr -> Some (x lor y)
      | Ast.BXor -> Some (x lxor y)
      | Ast.LAnd -> Some (if x <> 0 && y <> 0 then 1 else 0)
      | Ast.LOr -> Some (if x <> 0 || y <> 0 then 1 else 0))
    | _ -> None)
  | Ast.Index _ | Ast.Call _ -> None

let collect_const_env (prog : Ast.program) =
  (* names that must never be folded: assignment targets, function
     parameters, parallel loop variables, multiply-declared or
     uninitialized locals *)
  let tainted = Hashtbl.create 16 in
  let taint v = Hashtbl.replace tainted v () in
  let decl_count = Hashtbl.create 16 in
  let inits = ref [] in
  let rec walk s =
    (match s with
    | Ast.Assign (v, _) -> taint v
    | Ast.Decl (v, init) -> (
      let c = Option.value ~default:0 (Hashtbl.find_opt decl_count v) in
      Hashtbl.replace decl_count v (c + 1);
      if c > 0 then taint v;
      match init with
      | Some e -> inits := (v, e) :: !inits
      | None -> taint v)
    | Ast.Parallel r -> taint r.Ast.loop_var
    | _ -> ());
    match s with
    | Ast.If (_, t, e) ->
      List.iter walk t;
      Option.iter (List.iter walk) e
    | Ast.While (_, b) -> List.iter walk b
    | Ast.For (i, _, st, b) ->
      walk i;
      walk st;
      List.iter walk b
    | Ast.Block b -> List.iter walk b
    | _ -> ()
  in
  List.iter
    (fun (f : Ast.func) ->
      List.iter taint f.Ast.params;
      List.iter walk f.Ast.body)
    prog.Ast.funcs;
  let env = Hashtbl.create 16 in
  List.iter
    (function
      | Ast.Gvar (v, Some init) when not (Hashtbl.mem tainted v) ->
        Hashtbl.replace env v (Int32.to_int init)
      | _ -> ())
    prog.Ast.globals;
  (* fold local initializers in declaration order, so an init may read
     an earlier constant *)
  List.iter
    (fun (v, e) ->
      if not (Hashtbl.mem tainted v) then
        match const_eval env e with
        | Some c -> Hashtbl.replace env v c
        | None -> ())
    (List.rev !inits);
  env

(* ==================================================================== *)
(* Pass 1b: host code racing a master_nowait team (AST walk)            *)
(* ==================================================================== *)

(* Does the statement (or any sub-expression) call chi_wait()? *)
let stmt_calls_wait s =
  let found = ref false in
  stmt_iter_exprs
    (function Ast.Call ("chi_wait", _) -> found := true | _ -> ())
    s;
  !found

(* Global arrays the statement touches (reads or writes), restricted to
   a candidate set. *)
let stmt_touches ~candidates s =
  let touched = ref [] in
  let note v = if List.mem v candidates && not (List.mem v !touched) then touched := v :: !touched in
  let visit = function
    | Ast.Var v -> note v
    | Ast.Index (v, _) -> note v
    | Ast.Call ("chi_desc", Ast.Var v :: _) -> note v
    | _ -> ()
  in
  stmt_iter_exprs visit s;
  (match s with
  | Ast.Store (v, _, _) -> note v
  | Ast.Parallel r ->
    List.iter
      (fun c ->
        match c with
        | Ast.Shared vs -> List.iter note vs
        | _ -> ())
      r.Ast.pragma.Ast.clauses
  | _ -> ());
  List.rev !touched

(* Walk each function body: after a Parallel with master_nowait, any
   touch of its shared arrays before a chi_wait() races the still-running
   team. The scan is per-block — an access in the *enclosing* block after
   this one returns is a deliberate false negative (DESIGN.md §9). *)
let host_races (prog : Ast.program) =
  let out = ref [] in
  let rec walk_block stmts =
    match stmts with
    | [] -> ()
    | s :: rest ->
      (match s with
      | Ast.Parallel r when List.mem Ast.Master_nowait r.Ast.pragma.Ast.clauses
        ->
        let shared =
          List.concat_map
            (function Ast.Shared l -> l | _ -> [])
            r.Ast.pragma.Ast.clauses
        in
        let rec scan = function
          | [] -> ()
          | s' :: rest' ->
            if stmt_calls_wait s' then ()
            else begin
              List.iter
                (fun v ->
                  out :=
                    finding ~rule:"EXO003" ~severity:Finding.Error
                      r.Ast.pragma.Ast.ploc
                      "host code touches shared(%s) after this \
                       master_nowait launch without an intervening \
                       chi_wait()"
                      v
                    :: !out)
                (stmt_touches ~candidates:shared s');
              scan rest'
            end
        in
        scan rest
      | _ -> ());
      (* recurse into nested blocks *)
      (match s with
      | Ast.If (_, t, e) ->
        walk_block t;
        Option.iter walk_block e
      | Ast.While (_, b) -> walk_block b
      | Ast.For (_, _, _, b) -> walk_block b
      | Ast.Block b -> walk_block b
      | _ -> ());
      walk_block rest
  in
  List.iter (fun (f : Ast.func) -> walk_block f.Ast.body) prog.Ast.funcs;
  List.rev !out

(* ==================================================================== *)
(* Per-section checks                                                   *)
(* ==================================================================== *)

let check_section ~descs ~cenv (sec : Compile.section_info) =
  let out = ref [] in
  let add f = out := f :: !out in
  (* map an X3K-relative line into the .chi file: the __asm text starts
     right after the '{', whose location is asm_loc *)
  let map_line l = sec.Compile.asm_loc.Loc.line + l - 1 in
  let instr_loc (i : X.instr) =
    Loc.make ~file:sec.Compile.asm_loc.Loc.file ~line:(map_line i.X.line)
      ~col:1
  in
  let line_loc l =
    Loc.make ~file:sec.Compile.asm_loc.Loc.file ~line:(map_line l) ~col:1
  in
  (* ---- clause checks ---- *)
  if not (List.mem sec.Compile.loop_var sec.Compile.private_vars) then
    add
      (finding ~rule:"EXO007" ~severity:Finding.Warning sec.Compile.ploc
         "loop variable %S is not listed in private(...); every shred \
          rebinds it from %%p0"
         sec.Compile.loop_var);
  List.iter
    (fun v ->
      if not (List.mem v sec.Compile.shared) then
        add
          (finding ~rule:"EXO007" ~severity:Finding.Warning sec.Compile.ploc
             "descriptor(%s) is not listed in shared(...)" v))
    sec.Compile.descriptor_clause;
  List.iter
    (fun v ->
      if not (List.mem_assoc v descs) then
        add
          (finding ~rule:"EXO006" ~severity:Finding.Warning sec.Compile.ploc
             "shared(%s) is never bound to a descriptor (no chi_desc \
              call for it)"
             v))
    sec.Compile.shared;
  (* ---- access summary ---- *)
  let accesses = x3k_interp sec.Compile.x3k in
  let bounds =
    match (const_eval cenv sec.Compile.lo, const_eval cenv sec.Compile.hi) with
    | Some lo, Some hi when hi > lo -> Some (lo, hi)
    | _ -> None
  in
  (* ---- pass 1: shred/shred races ---- *)
  (match bounds with
  | None -> () (* non-literal iteration space: deliberately quiet *)
  | Some (lo, hi) ->
    let pairs = ref [] in
    List.iteri
      (fun i a1 ->
        List.iteri
          (fun j a2 ->
            if j >= i && a1.surf = a2.surf
               && (a1.kind = `W || a2.kind = `W)
               && List.length a1.dims = List.length a2.dims
            then pairs := (a1, a2) :: !pairs)
          accesses)
      accesses;
    List.iter
      (fun (a1, a2) ->
        if overlaps_across_iterations ~lo ~hi a1.dims a2.dims then begin
          let rule, severity =
            if a1.kind = `W && a2.kind = `W then ("EXO001", Finding.Error)
            else ("EXO002", Finding.Warning)
          in
          let verb = function `R -> "read" | `W -> "write" in
          add
            (finding ~rule ~severity
               (line_loc (max a1.line a2.line))
               "shred race on %S: %s at line %d overlaps %s at line %d \
                in another iteration of [%d, %d)"
               a1.surf (verb a1.kind) (map_line a1.line) (verb a2.kind)
               (map_line a2.line) lo hi)
        end)
      (List.rev !pairs));
  (* ---- pass 2: descriptor mode + extent ---- *)
  List.iter
    (fun a ->
      match List.assoc_opt a.surf descs with
      | None -> () (* EXO006 already reported *)
      | Some d ->
        if a.kind = `W && d.d_mode = Some 0 then
          add
            (finding ~rule:"EXO004" ~severity:Finding.Error (line_loc a.line)
               "store to %S, which is bound with an Input-mode descriptor"
               a.surf);
        (match (d.d_width, d.d_height, bounds) with
        | Some w, Some h, Some (lo, hi) -> (
          match a.dims with
          | [ (v, cnt) ] -> (
            (* 1-D: element indices must stay inside width*height *)
            match dim_bounds ~lo ~hi (v, cnt) with
            | Some (emin, emax) ->
              if
                emin < 0
                || not (Surface.index_in_extent ~width:w ~height:h emax)
              then
                add
                  (finding ~rule:"EXO005" ~severity:Finding.Error
                     (line_loc a.line)
                     "access to %S reaches element %d, outside the \
                      declared %dx%d extent (%d elements)"
                     a.surf
                     (if emin < 0 then emin else emax)
                     w h
                     (Surface.extent_elements ~width:w ~height:h))
            | None -> ())
          | [ (x, cnt); (y, _) ] ->
            (match dim_bounds ~lo ~hi (x, cnt) with
            | Some (xmin, xmax) ->
              if xmin < 0 || xmax >= w then
                add
                  (finding ~rule:"EXO005" ~severity:Finding.Error
                     (line_loc a.line)
                     "access to %S reaches column %d, outside the \
                      declared width %d"
                     a.surf
                     (if xmin < 0 then xmin else xmax)
                     w)
            | None -> ());
            (match dim_bounds ~lo ~hi (y, 1) with
            | Some (ymin, ymax) ->
              if ymin < 0 || ymax >= h then
                add
                  (finding ~rule:"EXO005" ~severity:Finding.Error
                     (line_loc a.line)
                     "access to %S reaches row %d, outside the declared \
                      height %d"
                     a.surf
                     (if ymin < 0 then ymin else ymax)
                     h)
            | None -> ())
          | _ -> ())
        | _ -> ()))
    accesses;
  (* ---- Exo-bound: trip counts, WCET, the deadline class ---- *)
  let benv i =
    if i = 0 then Option.map (fun (lo, hi) -> (lo, hi - 1)) bounds
    else
      (* %p1.. carry firstprivate values, evaluated once at the fork *)
      match List.nth_opt sec.Compile.firstprivate (i - 1) with
      | Some v -> Option.map (fun c -> (c, c)) (Hashtbl.find_opt cenv v)
      | None -> None
  in
  let b = Bound.analyze_x3k ~loc:line_loc ~env:benv sec.Compile.x3k in
  List.iter add b.Bound.findings;
  (match sec.Compile.deadline_us with
  | None -> ()
  | Some d -> (
    match b.Bound.verdict with
    | Bound.Unbounded -> () (* EXO011 already says it all *)
    | Bound.Unknown why ->
      add
        (finding ~rule:"EXO014" ~severity:Finding.Warning sec.Compile.ploc
           "deadline_us(%d) declared but no static bound exists for this \
            section: %s"
           d why)
    | Bound.Cycles c ->
      (* wall-clock model mirroring the default Gpu geometry (8 EUs x 4
         contexts at 667 MHz, 120-cycle dispatch): shreds run in waves of
         [hw_contexts], each wave at most the per-shred bound. With an
         unknown iteration space only the single-wave lower bound is
         checked. *)
      let hw_contexts = 32 and clock_mhz = 667 and dispatch = 120 in
      let waves =
        match bounds with
        | Some (lo, hi) -> (hi - lo + hw_contexts - 1) / hw_contexts
        | None -> 1
      in
      let wall_cycles = dispatch + (c * waves) in
      let wall_us = (wall_cycles + clock_mhz - 1) / clock_mhz in
      if wall_us > d then
        add
          (finding ~rule:"EXO014" ~severity:Finding.Error sec.Compile.ploc
             "worst-case bound %d cycles/shred over %d wave%s is ~%d us, \
              exceeding the declared deadline_us(%d)"
             c waves
             (if waves = 1 then "" else "s")
             wall_us d)));
  (* ---- pass 3 on the section body ---- *)
  out := List.rev_append (x3k_lint ~loc:instr_loc sec.Compile.x3k) (List.rev !out);
  List.rev !out

(* ==================================================================== *)
(* Whole-program entry points                                           *)
(* ==================================================================== *)

let check_compiled (c : Compile.compiled) =
  let descs = collect_descriptors c.Compile.ast in
  let cenv = collect_const_env c.Compile.ast in
  let section_findings =
    List.concat_map (check_section ~descs ~cenv) c.Compile.sections
  in
  let host_findings = host_races c.Compile.ast in
  let via32_findings =
    match Fatbin.find_via32 c.Compile.fatbin "main" with
    | Ok p -> via32_lint p @ (Bound.analyze_via32 p).Bound.findings
    | Error _ -> []
  in
  List.stable_sort Finding.compare
    (section_findings @ host_findings @ via32_findings)

let check_source ~name src =
  match Compile.compile ~name src with
  | Error e -> Error e
  | Ok compiled -> Ok (check_compiled compiled)
