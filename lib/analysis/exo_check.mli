(** Exo-check: the cross-ISA static analyzer.

    Three passes over a compiled CHI-lite program (DESIGN.md §9):

    - {b shred races} (EXO001–EXO003): each parallel region's X3K block
      is abstractly interpreted into an access summary — footprints over
      surfaces addressed by affine functions of the iteration index
      [%p0] — and overlapping footprints between distinct iterations are
      reported. Host accesses racing a [master_nowait] team are found by
      an AST walk.
    - {b descriptors and clauses} (EXO004–EXO007): stores through
      Input-mode descriptors, accesses outside the declared
      [width*height] extent, [shared] variables never bound by
      [chi_desc], clause misuse.
    - {b assembly dataflow} (EXO008–EXO010): def-use lint over the X3K
      and VIA32 control-flow graphs ({!Exochi_isa.X3k_flow},
      {!Exochi_isa.Via32_flow}) — possibly-uninitialized reads, dead
      stores, unreachable code.
    - {b loop bounds / WCET} (EXO011–EXO015): the {!Bound} symbolic
      trip-count analysis over every section (and the compiled VIA32
      [main]), plus EXO014 when a section's worst-case cycle bound
      exceeds its declared [deadline_us(...)] class under the default
      accelerator geometry.

    Iteration spaces and firstprivate parameter values are resolved by a
    flow-insensitive host constant propagation (globals with an
    initializer and no assignment, const locals), so the race / extent /
    bound passes also apply when [lo]/[hi] are named constants rather
    than literals.

    The analyzer is deliberately quiet when it cannot prove a problem:
    non-affine addresses, non-constant iteration bounds, and gather /
    scatter / sampler accesses produce no race or extent findings. Those
    false negatives are documented per rule in DESIGN.md §9 and §13. *)

(** Dataflow lint (EXO008–EXO010) plus loop-bound findings
    (EXO011–EXO013, EXO015) over a standalone X3K program. Findings are
    anchored at [program.name:line]. *)
val check_x3k : Exochi_isa.X3k_ast.program -> Finding.t list

(** Dataflow lint (EXO008–EXO010) plus loop-bound findings over a
    standalone VIA32 program. *)
val check_via32 : Exochi_isa.Via32_ast.program -> Finding.t list

(** All three passes over a compiled program: every accelerator section,
    the host AST, and the compiled VIA32 [main] section. Findings are
    sorted with {!Finding.compare}; section findings are anchored into
    the original [.chi] source via the section's [asm_loc]. *)
val check_compiled : Exochi_core.Chilite_compile.compiled -> Finding.t list

(** Compile [src] (named [name] in diagnostics) and run
    {!check_compiled}. [Error] is a compile-time failure, not a
    finding. *)
val check_source :
  name:string ->
  string ->
  (Finding.t list, Exochi_isa.Loc.error) result
