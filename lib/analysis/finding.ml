module Loc = Exochi_isa.Loc
module Tiny_json = Exochi_obs.Tiny_json

type severity = Error | Warning | Info

let severity_name = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

type t = {
  rule : string;
  severity : severity;
  loc : Loc.t;
  msg : string;
  note : string option;
}

let make ~rule ~severity loc fmt =
  Format.kasprintf (fun msg -> { rule; severity; loc; msg; note = None }) fmt

let with_note t note = { t with note = Some note }

(* The Exo-check rule catalog. Stable ids: rules are never renumbered,
   only retired. Described in DESIGN.md §9 with one true-positive and
   one deliberate false-negative example per rule. *)
let rules =
  [
    ("EXO001", "write/write overlap between shred iterations of a parallel \
                region (shred race)");
    ("EXO002", "read/write overlap between shred iterations of a parallel \
                region");
    ("EXO003", "host access to a shared surface after a master_nowait \
                launch without an intervening chi_wait()");
    ("EXO004", "store through a surface bound with an Input-mode \
                descriptor");
    ("EXO005", "surface access outside the declared width*height extent");
    ("EXO006", "shared(...) variable never bound to a descriptor before \
                the launch");
    ("EXO007", "clause misuse: loop variable not private, or \
                descriptor(...) variable not shared");
    ("EXO008", "register or predicate flag may be read before \
                initialization");
    ("EXO009", "dead store: register written but never read afterwards");
    ("EXO010", "unreachable code after jmp/end");
    ("EXO011", "statically unbounded loop: no exit, loop-invariant exit \
                condition, or induction variable stepping away from its \
                bound");
    ("EXO012", "irreducible control flow: a retreating edge that is not \
                a natural back edge (multi-entry loop), so no trip bound \
                can be inferred");
    ("EXO013", "trip-count/cost overflow: the worst-case cycle bound \
                exceeds the 1e15-cycle cap");
    ("EXO014", "section worst-case bound exceeds its declared \
                deadline_us(...) class");
    ("EXO015", "backward branch with a non-monotone induction variable \
                (predicated or mixed-direction updates)");
  ]

let rule_description rule = List.assoc_opt rule rules

(* Sort: file, line, column, then severity (errors first), then rule. *)
let compare a b =
  let c = String.compare a.loc.Loc.file b.loc.Loc.file in
  if c <> 0 then c
  else
    let c = Int.compare a.loc.Loc.line b.loc.Loc.line in
    if c <> 0 then c
    else
      let c = Int.compare a.loc.Loc.col b.loc.Loc.col in
      if c <> 0 then c
      else
        let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
        if c <> 0 then c else String.compare a.rule b.rule

let pp fmt t =
  Format.fprintf fmt "%a: %s: [%s] %s%s" Loc.pp t.loc
    (severity_name t.severity) t.rule t.msg
    (match t.note with Some n -> " [" ^ n ^ "]" | None -> "")

let to_string t = Format.asprintf "%a" pp t

let count sev l = List.length (List.filter (fun f -> f.severity = sev) l)
let has_errors l = List.exists (fun f -> f.severity = Error) l

let to_json t =
  Tiny_json.Obj
    ([
      ("rule", Tiny_json.Str t.rule);
      ("severity", Tiny_json.Str (severity_name t.severity));
      ("file", Tiny_json.Str t.loc.Loc.file);
      ("line", Tiny_json.Num (float_of_int t.loc.Loc.line));
      ("col", Tiny_json.Num (float_of_int t.loc.Loc.col));
      ("message", Tiny_json.Str t.msg);
    ]
    @ match t.note with
      | Some n -> [ ("note", Tiny_json.Str n) ]
      | None -> [])

(* SARIF 2.1.0 exposition: one run, the full rule catalog as the
   driver's rules, one result per finding. Severity maps to the SARIF
   level vocabulary (Info -> "note"). *)
let to_sarif findings =
  let level = function
    | Error -> "error"
    | Warning -> "warning"
    | Info -> "note"
  in
  let rules_json =
    List.map
      (fun (id, desc) ->
        Tiny_json.Obj
          [
            ("id", Tiny_json.Str id);
            ( "shortDescription",
              Tiny_json.Obj [ ("text", Tiny_json.Str desc) ] );
          ])
      rules
  in
  let result f =
    Tiny_json.Obj
      [
        ("ruleId", Tiny_json.Str f.rule);
        ("level", Tiny_json.Str (level f.severity));
        ( "message",
          Tiny_json.Obj
            [
              ( "text",
                Tiny_json.Str
                  (match f.note with
                  | Some n -> f.msg ^ " [" ^ n ^ "]"
                  | None -> f.msg) );
            ] );
        ( "locations",
          Tiny_json.Arr
            [
              Tiny_json.Obj
                [
                  ( "physicalLocation",
                    Tiny_json.Obj
                      [
                        ( "artifactLocation",
                          Tiny_json.Obj
                            [ ("uri", Tiny_json.Str f.loc.Loc.file) ] );
                        ( "region",
                          Tiny_json.Obj
                            [
                              ( "startLine",
                                Tiny_json.Num (float_of_int f.loc.Loc.line) );
                              ( "startColumn",
                                Tiny_json.Num (float_of_int f.loc.Loc.col) );
                            ] );
                      ] );
                ];
            ] );
      ]
  in
  Tiny_json.Obj
    [
      ( "$schema",
        Tiny_json.Str "https://json.schemastore.org/sarif-2.1.0.json" );
      ("version", Tiny_json.Str "2.1.0");
      ( "runs",
        Tiny_json.Arr
          [
            Tiny_json.Obj
              [
                ( "tool",
                  Tiny_json.Obj
                    [
                      ( "driver",
                        Tiny_json.Obj
                          [
                            ("name", Tiny_json.Str "exochi_lint");
                            ("rules", Tiny_json.Arr rules_json);
                          ] );
                    ] );
                ("results", Tiny_json.Arr (List.map result findings));
              ];
          ] );
    ]

let report_json ?(extra = []) findings =
  Tiny_json.Obj
    (extra
    @ [
        ("errors", Tiny_json.Num (float_of_int (count Error findings)));
        ("warnings", Tiny_json.Num (float_of_int (count Warning findings)));
        ("infos", Tiny_json.Num (float_of_int (count Info findings)));
        ("findings", Tiny_json.Arr (List.map to_json findings));
      ])
