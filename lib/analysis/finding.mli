(** Exo-check diagnostics: [Loc]-anchored findings with a stable rule id
    ([EXO001]...), a severity, and a machine-readable JSON form.

    Rule ids are stable across releases — rules are retired, never
    renumbered — so findings can be suppressed or tracked by id. The
    catalog with a true-positive and a deliberate false-negative example
    per rule lives in DESIGN.md §9. *)

module Loc = Exochi_isa.Loc

type severity = Error | Warning | Info

val severity_name : severity -> string

type t = {
  rule : string;
  severity : severity;
  loc : Loc.t;
  msg : string;
  note : string option;
      (** annotation attached after analysis, e.g. ["fixed-by-opt"]
          when the Exo-opt backend eliminates the flagged code *)
}

val make :
  rule:string ->
  severity:severity ->
  Loc.t ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

(** Attach (or replace) the annotation note. *)
val with_note : t -> string -> t

(** The rule catalog, [(id, description)] in id order. *)
val rules : (string * string) list

val rule_description : string -> string option

(** Order by location, then severity (errors first), then rule id. *)
val compare : t -> t -> int

(** ["file:line:col: severity: [EXO00N] message"]. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
val count : severity -> t list -> int
val has_errors : t list -> bool
val to_json : t -> Exochi_obs.Tiny_json.t

(** A complete SARIF 2.1.0 log object — one run whose driver carries the
    full {!rules} catalog and one [result] per finding ([Info] maps to
    level ["note"]). Serialise with {!Exochi_obs.Tiny_json.to_string}. *)
val to_sarif : t list -> Exochi_obs.Tiny_json.t

(** The findings report object: severity counts plus the finding array,
    with optional leading [extra] fields (e.g. the file name). *)
val report_json :
  ?extra:(string * Exochi_obs.Tiny_json.t) list ->
  t list ->
  Exochi_obs.Tiny_json.t
