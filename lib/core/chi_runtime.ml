open Exochi_memory
module Gpu = Exochi_accel.Gpu
module Machine = Exochi_cpu.Machine
module Trace = Exochi_obs.Trace
module Fault_plan = Exochi_faults.Fault_plan
module Breaker = Exochi_guard.Breaker
module Prng = Exochi_util.Prng

type flush_policy = Upfront | Upfront_naive | Interleaved

type recovery = {
  mutable redispatches : int;
  mutable doorbell_redeliveries : int;
  mutable watchdog_kills : int;
  mutable quarantined_seqs : int;
  mutable fallback_shreds : int;
  mutable fatal : int;
  mutable hedges : int;
  mutable hedge_wins : int;
  mutable cross_hedges : int;
  mutable breaker_opens : int;
  mutable breaker_closes : int;
}

type t = {
  platform : Exo_platform.t;
  features : Chi_descriptor.features;
  flush_policy : flush_policy;
  watchdog_ps : int;
  max_redispatch : int;
  quarantine_after : int;
  backoff_ps : int;
  hedge_after_ps : int;
  breaker_cooldown_ps : int;
  slots_per_dev : int; (* eus * threads_per_eu of one device *)
  (* one breaker per exo-sequencer slot across the whole device set,
     indexed dev * slots_per_dev + eu * threads_per_eu + slot; empty
     array when breakers are disabled (legacy permanent quarantine) *)
  breakers : Breaker.t array;
  probe_base : int array; (* slot completions when its probe started *)
  last_comp : int array; (* slot completions at the previous quantum *)
  jitter : (int, Prng.t) Hashtbl.t; (* per device, lazily seeded *)
  recovery : recovery;
  mutable last_flush_bytes : int;
  mutable last_copy_bytes : int;
  mutable dev_counter : int;
}

let create ~platform ?(flush_policy = Interleaved)
    ?(watchdog_ps = 1_000_000_000) ?(max_redispatch = 3)
    ?(quarantine_after = 3) ?(backoff_ps = 200_000) ?(hedge_after_ps = 0)
    ?(breaker_cooldown_ps = 0) () =
  let slots_per_dev =
    let cfg = Gpu.config (Exo_platform.gpu platform) in
    cfg.Gpu.eus * cfg.Gpu.threads_per_eu
  in
  let slots = slots_per_dev * Exo_platform.devices platform in
  {
    platform;
    features = Chi_descriptor.features ();
    flush_policy;
    watchdog_ps;
    max_redispatch;
    quarantine_after;
    backoff_ps;
    hedge_after_ps;
    breaker_cooldown_ps;
    slots_per_dev;
    breakers =
      (if breaker_cooldown_ps > 0 then
         Array.init slots (fun _ ->
             Breaker.create ~fail_threshold:quarantine_after
               ~cooldown_ps:breaker_cooldown_ps)
       else [||]);
    probe_base = Array.make slots 0;
    last_comp = Array.make slots 0;
    jitter = Hashtbl.create 4;
    recovery =
      {
        redispatches = 0;
        doorbell_redeliveries = 0;
        watchdog_kills = 0;
        quarantined_seqs = 0;
        fallback_shreds = 0;
        fatal = 0;
        hedges = 0;
        hedge_wins = 0;
        cross_hedges = 0;
        breaker_opens = 0;
        breaker_closes = 0;
      };
    last_flush_bytes = 0;
    last_copy_bytes = 0;
    dev_counter = 0;
  }

let platform t = t.platform
let features t = t.features

(* Runtime services run on the IA32 master, so their events land on its
   track; the sink is adopted from the platform. State-read-only. *)
let rev t ?(dev = 0) ~ts ?dur kind =
  match Exo_platform.trace t.platform with
  | None -> ()
  | Some sink -> Trace.emit sink ~ts_ps:ts ?dur_ps:dur ~dev ~seq:Trace.Ia32 kind
let flush_policy t = t.flush_policy
let last_flush_bytes t = t.last_flush_bytes
let last_copy_bytes t = t.last_copy_bytes
let recovery t = t.recovery

type team = {
  size : int;
  mutable completed : int;
  mutable waited : bool;
  devs : int list; (* X3K devices this team dispatched on, ascending *)
  (* data-copy mode: (descriptor, device surface) pairs for copy-back *)
  device : (Chi_descriptor.t * Surface.t) list;
}

let team_completed team = team.completed
let team_size team = team.size
let team_devices team = team.devs

let breaker_census t ~dev =
  if dev < 0 || dev >= Exo_platform.devices t.platform then
    invalid_arg "Chi_runtime.breaker_census: device out of range";
  let closed = ref 0 and opened = ref 0 and half = ref 0 in
  if Array.length t.breakers > 0 then
    for i = dev * t.slots_per_dev to ((dev + 1) * t.slots_per_dev) - 1 do
      match Breaker.state t.breakers.(i) with
      | Breaker.Closed -> incr closed
      | Breaker.Open -> incr opened
      | Breaker.Half_open -> incr half
    done;
  (!closed, !opened, !half)

(* ---- binding descriptors to the program's surface slots ---- *)

let surf_table prog descriptors =
  Array.map
    (fun sname ->
      match
        List.find_opt
          (fun d -> d.Chi_descriptor.surface.Surface.name = sname)
          descriptors
      with
      | Some d -> d.Chi_descriptor.surface
      | None ->
        invalid_arg
          (Printf.sprintf
             "CHI: inline assembly references surface %S but no descriptor \
              with that name was supplied"
             sname))
    prog.Exochi_isa.X3k_ast.surfaces

(* ---- memory-model preparation ---- *)

let desc_range d =
  let s = d.Chi_descriptor.surface in
  (s.Surface.base, Surface.byte_size s)

let is_input d =
  match d.Chi_descriptor.surface.Surface.mode with
  | Surface.Input | Surface.In_out -> true
  | Surface.Output -> false

let is_output d =
  match d.Chi_descriptor.surface.Surface.mode with
  | Surface.Output | Surface.In_out -> true
  | Surface.Input -> false

(* Copy a virtual range, charging the CPU at the explicit-copy rate. The
   copy routine streams through write-combining buffers, so it does not
   pollute (or consult) the CPU caches. *)
let charged_copy t ~src ~dst ~len =
  let aspace = Exo_platform.aspace t.platform in
  let data = Address_space.read_bytes aspace ~vaddr:src ~len in
  Address_space.write_bytes aspace ~vaddr:dst data;
  let cost = Memmodel.copy_ps (Exo_platform.model_costs t.platform) ~bytes:len in
  let cpu = Exo_platform.cpu t.platform in
  rev t ~ts:(Machine.now_ps cpu) ~dur:cost (Trace.Copy { bytes = len });
  Machine.add_time_ps cpu cost;
  t.last_copy_bytes <- t.last_copy_bytes + len

(* Flush a virtual range out of the CPU caches (timed through the bus —
   the optimised flush path). *)
let charged_flush t ~vaddr ~len =
  let cpu = Exo_platform.cpu t.platform in
  let t0 = Machine.now_ps cpu in
  let bytes = Machine.flush_range cpu ~vaddr ~len in
  if bytes > 0 then
    rev t ~ts:t0 ~dur:(Machine.now_ps cpu - t0) (Trace.Flush { bytes });
  t.last_flush_bytes <- t.last_flush_bytes + bytes;
  bytes

(* The unoptimised runtime's flush (paper Section 5.2: ~2 GB/s): same
   functional effect, but the write-back dribbles out at the naive rate. *)
let charged_flush_naive t ~vaddr ~len =
  let cpu = Exo_platform.cpu t.platform in
  let costs = Exo_platform.model_costs t.platform in
  let t0 = Machine.now_ps cpu in
  let bytes = Machine.flush_range cpu ~vaddr ~len in
  let fast = Machine.now_ps cpu - t0 in
  let naive = Memmodel.naive_flush_ps costs ~bytes in
  if naive > fast then Machine.add_time_ps cpu (naive - fast);
  if bytes > 0 then
    rev t ~ts:t0 ~dur:(Machine.now_ps cpu - t0) (Trace.Flush { bytes });
  t.last_flush_bytes <- t.last_flush_bytes + bytes;
  bytes

let prewalk_surfaces t surfaces =
  Array.iter
    (fun s ->
      Exo_platform.prewalk t.platform ~vaddr:s.Surface.base
        ~len:(Surface.byte_size s))
    surfaces

(* Data-copy mode: build device-side twins of every surface and copy the
   inputs over. *)
let make_device_surfaces t descriptors =
  let aspace = Exo_platform.aspace t.platform in
  List.map
    (fun d ->
      let s = d.Chi_descriptor.surface in
      t.dev_counter <- t.dev_counter + 1;
      let bytes = Surface.byte_size s in
      let base =
        Address_space.alloc aspace
          ~name:(Printf.sprintf "dev%d:%s" t.dev_counter s.Surface.name)
          ~bytes ~align:4096
      in
      let dev =
        Surface.make ~id:(200_000 + t.dev_counter) ~name:s.Surface.name ~base
          ~width:s.Surface.width ~height:s.Surface.height ~bpp:s.Surface.bpp
          ~tiling:s.Surface.tiling ~mode:s.Surface.mode
      in
      Exo_platform.register_surface t.platform dev;
      if is_input d then
        charged_copy t ~src:s.Surface.base ~dst:base ~len:bytes;
      (d, dev))
    descriptors

let release_device_surfaces t team =
  List.iter
    (fun (d, dev) ->
      if is_output d then
        charged_copy t ~src:dev.Surface.base
          ~dst:d.Chi_descriptor.surface.Surface.base
          ~len:(Surface.byte_size dev);
      Exo_platform.unregister_surface t.platform dev)
    team.device

(* ---- dispatch ---- *)

let enqueue_shreds t ~dev ~lo ~hi ~params =
  let gpu = Exo_platform.gpu_dev t.platform dev in
  let cpu = Exo_platform.cpu t.platform in
  let costs = Exo_platform.costs t.platform in
  let shreds =
    List.init (hi - lo) (fun k ->
        { Gpu.shred_id = lo + k; entry = 0; params = params (lo + k) })
  in
  (* batched software enqueue on the IA32 side + one SIGNAL doorbell *)
  Machine.add_time_ps cpu
    (costs.Exo_platform.signal_ps
    + ((hi - lo) * costs.Exo_platform.dispatch_cpu_ps));
  Exo_platform.sync_gpu_to_cpu t.platform;
  Gpu.enqueue gpu shreds

(* Pipelined feed for sharded teams. [enqueue_shreds] charges the
   master for the block's descriptors and then clock-jumps every device
   over that time ([sync_gpu_to_cpu]), which makes the software enqueue
   a serial term of the team barrier — harmless for one device (nothing
   is running yet), but at N devices it caps the speedup at
   e/(s + e/N). Here devices that already hold work {e execute} through
   the master's enqueue time instead ([Gpu.run_until] before the clock
   lift), so the feed overlaps execution and only the first chunk's
   latency stays serial. Single-device teams keep [enqueue_shreds] and
   its jump semantics — the bit- and time-identity of the legacy path. *)
let feed_chunk_overlapped t ~devs ~dev ~lo ~hi ~params =
  let gpu = Exo_platform.gpu_dev t.platform dev in
  let cpu = Exo_platform.cpu t.platform in
  let costs = Exo_platform.costs t.platform in
  let shreds =
    List.init (hi - lo) (fun k ->
        { Gpu.shred_id = lo + k; entry = 0; params = params (lo + k) })
  in
  Machine.add_time_ps cpu
    (costs.Exo_platform.signal_ps
    + ((hi - lo) * costs.Exo_platform.dispatch_cpu_ps));
  let now = Machine.now_ps cpu in
  List.iter
    (fun d -> ignore (Gpu.run_until (Exo_platform.gpu_dev t.platform d) now))
    devs;
  (* lift any still-idle clocks to the doorbell time *)
  Exo_platform.sync_gpu_to_cpu t.platform;
  Gpu.enqueue gpu shreds

(* ---- self-healing drain (fault recovery) ---- *)

(* Graceful degradation: proxy-execute the whole shred on the IA32
   sequencer via the CEH lane-emulation semantics. Slower, never wrong. *)
let fallback_shred t ~dev sh =
  let gpu = Exo_platform.gpu_dev t.platform dev in
  let cpu = Exo_platform.cpu t.platform in
  let costs = Exo_platform.costs t.platform in
  (* the shred is resolved off-GPU: a pending hedge race must not
     survive to hijack the next team's reuse of this shred id *)
  Gpu.hedge_resolve gpu ~shred_id:sh.Gpu.shred_id;
  t.recovery.fallback_shreds <- t.recovery.fallback_shreds + 1;
  let instrs, lane_ops = Gpu.emulate_shred gpu sh in
  let service =
    costs.Exo_platform.uli_ps + costs.Exo_platform.ceh_base_ps
    + (lane_ops * costs.Exo_platform.ceh_per_lane_ps)
  in
  rev t ~ts:(Machine.now_ps cpu) ~dur:service
    (Trace.Ia32_fallback { shred_id = sh.Gpu.shred_id; instrs; lane_ops });
  Machine.add_time_ps cpu service;
  Exo_platform.notify_shred_done ~dev t.platform sh ~now_ps:(Machine.now_ps cpu)

(* Per-device drain context of the supervised drain: each device keeps
   its own re-dispatch bookkeeping (attempt counts, backoff-parked
   shreds) so recovery on one device never perturbs another's stream. *)
type drain_ctx = {
  dc_dev : int;
  dc_gpu : Gpu.t;
  dc_plan : Fault_plan.t;
  dc_attempts : (int, int) Hashtbl.t;
  mutable dc_pending : (int * Gpu.shred) list;
      (* (release_ps, shred): backoff re-dispatches *)
}

(* Supervised replacement for [Gpu.run_to_quiescence], active only when
   a fault plan is installed. Runs every device in the same 200 us
   quanta and between quanta performs the recovery work the paper
   leaves to the application-level runtime: watchdog-reap hung
   contexts, re-dispatch their shreds with exponential backoff
   (bounded), quarantine a slot after K consecutive failures, re-ring
   lost doorbells, and fall back to IA32 proxy execution when retries
   are exhausted or no slot is left. With a zero-rate plan none of the
   recovery paths trigger and the [run_until] call sequence is
   identical to the unsupervised one — zero overhead when disabled.

   [cross] (a team spans several devices): a straggler that is still
   overdue after an on-device hedge gets one more backup copy enqueued
   on a quiescent peer device — cross-device hedging. The duplicate
   completion is absorbed by the team's dedup callback. *)
let supervised_drain ?(cross = false) t =
  match Exo_platform.fault_plan t.platform with
  | None -> ()
  | Some _ ->
    let cpu = Exo_platform.cpu t.platform in
    let costs = Exo_platform.costs t.platform in
    let quantum = 200_000_000 (* keep in lock-step with run_to_quiescence *) in
    let idle_rounds = ref 0 in
    let max_idle = 8 + (t.watchdog_ps / quantum) + 1 in
    let threads_per_eu =
      (Gpu.config (Exo_platform.gpu t.platform)).Gpu.threads_per_eu
    in
    let ndev = Exo_platform.devices t.platform in
    let ctxs =
      List.init ndev (fun dev ->
          let plan =
            match Exo_platform.fault_plan_dev t.platform dev with
            | Some p -> p
            | None -> assert false (* every device derives from the base *)
          in
          {
            dc_dev = dev;
            dc_gpu = Exo_platform.gpu_dev t.platform dev;
            dc_plan = plan;
            dc_attempts = Hashtbl.create 16;
            dc_pending = [];
          })
    in
    let cross_done : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    (* Backoff jitter draws from a dedicated per-device stream derived
       from that device's plan seed, never from the per-class fault
       streams — reaps are the only consumers, so a zero-rate plan
       (which never reaps) remains bit-identical to no plan at all. *)
    let jitter c =
      match Hashtbl.find_opt t.jitter c.dc_dev with
      | Some p -> p
      | None ->
        let p =
          Prng.create
            (Int64.logxor (Fault_plan.seed c.dc_plan) 0x9E3779B97F4A7C15L)
        in
        Hashtbl.add t.jitter c.dc_dev p;
        p
    in
    let sync_hedge_wins () =
      let total = ref 0 in
      List.iter (fun c -> total := !total + Gpu.hedge_wins c.dc_gpu) ctxs;
      t.recovery.hedge_wins <- !total
    in
    let handle_reaped c (eu, slot, sh, fails) =
      let gpu = c.dc_gpu in
      t.recovery.watchdog_kills <- t.recovery.watchdog_kills + 1;
      (if Array.length t.breakers > 0 then begin
         let b =
           t.breakers.((c.dc_dev * t.slots_per_dev)
                       + (eu * threads_per_eu) + slot)
         in
         Breaker.record_fail b;
         (* a reap on a half-open slot is a failed probe: re-open with a
            doubled cool-down rather than waiting for the threshold *)
         let reopen = Breaker.state b = Breaker.Half_open in
         if reopen || Breaker.should_open b then begin
           Gpu.quarantine gpu ~eu ~slot;
           t.recovery.quarantined_seqs <- t.recovery.quarantined_seqs + 1;
           Breaker.trip b ~now_ps:(Gpu.now_ps gpu);
           t.recovery.breaker_opens <- t.recovery.breaker_opens + 1;
           rev t ~dev:c.dc_dev ~ts:(Gpu.now_ps gpu)
             (Trace.Breaker_open
                { eu; slot; cooldown_ps = Breaker.cooldown_ps b })
         end
       end
       else if fails >= t.quarantine_after then begin
         Gpu.quarantine gpu ~eu ~slot;
         t.recovery.quarantined_seqs <- t.recovery.quarantined_seqs + 1
       end);
      if
        Gpu.hedge_pending gpu ~shred_id:sh.Gpu.shred_id
        && Gpu.hedge_live_copies gpu ~shred_id:sh.Gpu.shred_id > 0
      then
        (* a backup copy of this shred is still racing: the reap freed
           the slot, no re-dispatch is needed *)
        ()
      else begin
        let a =
          1
          + Option.value
              (Hashtbl.find_opt c.dc_attempts sh.Gpu.shred_id)
              ~default:0
        in
        Hashtbl.replace c.dc_attempts sh.Gpu.shred_id a;
        if a > t.max_redispatch || Gpu.active_slots gpu = 0 then
          fallback_shred t ~dev:c.dc_dev sh
        else begin
          t.recovery.redispatches <- t.recovery.redispatches + 1;
          let base = t.backoff_ps * (1 lsl min 8 (a - 1)) in
          (* full jitter over the top half of the window: concurrent
             reaps of a quarantine wave decorrelate instead of slamming
             the doorbell in lock-step *)
          let delay = (base / 2) + Prng.int (jitter c) ((base / 2) + 1) in
          rev t ~dev:c.dc_dev ~ts:(Gpu.now_ps gpu)
            (Trace.Redispatch
               { shred_id = sh.Gpu.shred_id; attempt = a; delay_ps = delay });
          c.dc_pending <- (Gpu.now_ps gpu + delay, sh) :: c.dc_pending
        end
      end
    in
    let hedge_overdue c =
      let gpu = c.dc_gpu in
      if t.hedge_after_ps > 0 then
        List.iter
          (fun ((sh : Gpu.shred), age) ->
            if Gpu.hedge gpu sh then begin
              t.recovery.hedges <- t.recovery.hedges + 1;
              rev t ~dev:c.dc_dev ~ts:(Gpu.now_ps gpu)
                (Trace.Hedge_dispatch
                   { shred_id = sh.Gpu.shred_id; age_ps = age });
              Machine.add_overhead_ps cpu
                (costs.Exo_platform.signal_ps
                + costs.Exo_platform.dispatch_cpu_ps)
            end)
          (Gpu.overdue_shreds gpu ~age_ps:t.hedge_after_ps)
    in
    (* open → half-open once the cool-down expires (reinstate the slot
       for its probe); half-open → closed once the probe retires.
       Returns true when any breaker moved, which counts as progress. *)
    let poll_breakers c =
      let gpu = c.dc_gpu in
      let moved = ref false in
      if Array.length t.breakers > 0 then begin
        let base = c.dc_dev * t.slots_per_dev in
        for i = base to base + t.slots_per_dev - 1 do
          let local = i - base in
          let eu = local / threads_per_eu
          and slot = local mod threads_per_eu in
          let b = t.breakers.(i) in
          match Breaker.state b with
          | Breaker.Open ->
            if Breaker.poll b ~now_ps:(Gpu.now_ps gpu) then begin
              Gpu.reinstate gpu ~eu ~slot;
              t.probe_base.(i) <- Gpu.slot_completions gpu ~eu ~slot;
              moved := true
            end
          | Breaker.Half_open ->
            if Gpu.slot_completions gpu ~eu ~slot > t.probe_base.(i)
            then begin
              Breaker.close b;
              t.recovery.breaker_closes <- t.recovery.breaker_closes + 1;
              rev t ~dev:c.dc_dev ~ts:(Gpu.now_ps gpu)
                (Trace.Breaker_close { eu; slot });
              moved := true
            end
          | Breaker.Closed ->
            let comp = Gpu.slot_completions gpu ~eu ~slot in
            if comp > t.last_comp.(i) then Breaker.record_ok b;
            t.last_comp.(i) <- comp
        done
      end;
      !moved
    in
    let release_due c =
      let gpu = c.dc_gpu in
      let now = Gpu.now_ps gpu in
      let due, later =
        List.partition (fun (ps, _) -> ps <= now) c.dc_pending
      in
      c.dc_pending <- later;
      if due <> [] then begin
        let shreds = List.map snd due in
        Machine.add_overhead_ps cpu
          (costs.Exo_platform.signal_ps
          + (List.length shreds * costs.Exo_platform.dispatch_cpu_ps));
        Gpu.reenqueue gpu shreds
      end
    in
    (* Cross-device hedging: a shred still overdue at twice the hedge
       threshold whose on-device backup has not resolved gets one copy
       enqueued on a quiescent peer with live slots. At most one
       cross-copy per shred id per drain. *)
    let cross_hedge () =
      if cross && t.hedge_after_ps > 0 then
        List.iter
          (fun c ->
            List.iter
              (fun ((sh : Gpu.shred), age) ->
                let id = sh.Gpu.shred_id in
                if
                  Gpu.hedge_pending c.dc_gpu ~shred_id:id
                  && not (Hashtbl.mem cross_done id)
                then
                  match
                    List.find_opt
                      (fun p ->
                        p.dc_dev <> c.dc_dev
                        && Gpu.quiescent p.dc_gpu
                        && Gpu.active_slots p.dc_gpu > 0)
                      ctxs
                  with
                  | Some peer ->
                    Hashtbl.replace cross_done id ();
                    t.recovery.cross_hedges <- t.recovery.cross_hedges + 1;
                    Machine.add_overhead_ps cpu
                      (costs.Exo_platform.signal_ps
                      + costs.Exo_platform.dispatch_cpu_ps);
                    rev t ~dev:peer.dc_dev ~ts:(Gpu.now_ps peer.dc_gpu)
                      (Trace.Hedge_dispatch { shred_id = id; age_ps = age });
                    Gpu.reenqueue peer.dc_gpu [ sh ]
                  | None -> ())
              (Gpu.overdue_shreds c.dc_gpu ~age_ps:(2 * t.hedge_after_ps)))
          ctxs
    in
    let ctx_done c =
      Gpu.quiescent c.dc_gpu
      && Gpu.parked_count c.dc_gpu = 0
      && c.dc_pending = []
    in
    let step c =
      let gpu = c.dc_gpu in
      let retired = Gpu.run_until gpu (Gpu.now_ps gpu + quantum) in
      hedge_overdue c;
      let reaped = Gpu.reap_overdue gpu ~watchdog_ps:t.watchdog_ps in
      List.iter (handle_reaped c) reaped;
      let breakers_moved = poll_breakers c in
      sync_hedge_wins ();
      (* shreds parked behind a lost doorbell and the machine has gone
         quiet: the master notices the missing completions and re-rings *)
      if Gpu.parked_count gpu > 0 && (retired = 0 || Gpu.quiescent gpu)
      then begin
        t.recovery.doorbell_redeliveries <-
          t.recovery.doorbell_redeliveries + 1;
        Machine.add_overhead_ps cpu costs.Exo_platform.signal_ps;
        ignore (Gpu.redeliver_doorbell gpu)
      end;
      release_due c;
      if Gpu.active_slots gpu = 0 then begin
        (* every exo-sequencer slot is quarantined: nothing will ever
           run on this device again — emulate the stranded work *)
        let stranded = Gpu.drain_queue gpu @ List.map snd c.dc_pending in
        c.dc_pending <- [];
        List.iter (fallback_shred t ~dev:c.dc_dev) stranded
      end;
      retired > 0 || reaped <> [] || breakers_moved
    in
    let continue_ = ref true in
    while !continue_ do
      if List.for_all ctx_done ctxs then continue_ := false
      else begin
        let progress = ref false in
        List.iter
          (fun c -> if not (ctx_done c) then if step c then progress := true)
          ctxs;
        cross_hedge ();
        if not !progress then begin
          incr idle_rounds;
          if !idle_rounds > max_idle then begin
            t.recovery.fatal <- t.recovery.fatal + 1;
            raise (Gpu.Stuck "supervised drain: no progress")
          end
        end
        else idle_rounds := 0
      end
    done;
    sync_hedge_wins ()

let wait t team =
  if not team.waited then begin
    team.waited <- true;
    let cpu = Exo_platform.cpu t.platform in
    let memmodel = Exo_platform.memmodel t.platform in
    let costs = Exo_platform.model_costs t.platform in
    supervised_drain t ~cross:(match team.devs with _ :: _ :: _ -> true | _ -> false);
    ignore (Exo_platform.barrier t.platform);
    match memmodel with
    | Memmodel.Non_cc_shared ->
      (* each participating device flushes its cache before releasing
         its completion semaphore; the master pays one semaphore wait
         per device *)
      List.iter
        (fun d ->
          let bytes = Gpu.flush_cache (Exo_platform.gpu_dev t.platform d) in
          let flush_ps = Memmodel.flush_ps costs ~bytes in
          Machine.add_time_ps cpu (flush_ps + costs.Memmodel.semaphore_ps);
          t.last_flush_bytes <- t.last_flush_bytes + bytes)
        team.devs
    | Memmodel.Data_copy -> release_device_surfaces t team
    | Memmodel.Cc_shared -> ()
  end

let parallel t ~prog ~descriptors ~num_threads ~params ?(chunk = 512) ?device
    ~master_nowait () =
  if num_threads <= 0 then invalid_arg "Chi_runtime.parallel: num_threads";
  t.last_flush_bytes <- 0;
  t.last_copy_bytes <- 0;
  let ndev = Exo_platform.devices t.platform in
  let memmodel = Exo_platform.memmodel t.platform in
  (match device with
  | Some d when d < 0 || d >= ndev ->
    invalid_arg "Chi_runtime.parallel: device out of range"
  | _ -> ());
  let shard_devs =
    match device with
    | Some d -> [ d ]
    | None ->
      (* data-copy mode keeps its private-surface protocol on device 0;
         shared-memory modes tile the team row-wise across the set *)
      if ndev > 1 && memmodel <> Memmodel.Data_copy then List.init ndev Fun.id
      else [ 0 ]
  in
  match shard_devs with
  | [ dev ] ->
    (* Single-device dispatch — the historical path, pinned to [dev].
       With [devices:1] platforms this is bit- and time-identical to the
       pre-device-set runtime. *)
    let gpu = Exo_platform.gpu_dev t.platform dev in
    let device, surfaces =
      match memmodel with
      | Memmodel.Data_copy ->
        let device = make_device_surfaces t descriptors in
        let table =
          Array.map
            (fun sname ->
              match
                List.find_opt
                  (fun (d, _) ->
                    d.Chi_descriptor.surface.Surface.name = sname)
                  device
              with
              | Some (_, dev) -> dev
              | None ->
                invalid_arg
                  (Printf.sprintf "CHI: no descriptor for surface %S" sname))
            prog.Exochi_isa.X3k_ast.surfaces
        in
        (device, table)
      | Memmodel.Non_cc_shared | Memmodel.Cc_shared ->
        ([], surf_table prog descriptors)
    in
    let team =
      { size = num_threads; completed = 0; waited = false; devs = [ dev ];
        device }
    in
    Exo_platform.set_shred_done_callback_dev t.platform ~dev
      (fun _sh ~now_ps:_ -> team.completed <- team.completed + 1);
    prewalk_surfaces t surfaces;
    Gpu.bind gpu ~prog ~surfaces;
    (match (memmodel, t.flush_policy) with
    | Memmodel.Non_cc_shared, (Upfront | Upfront_naive) ->
      (* flush every input surface completely before any shred launches;
         the naive variant pays the unoptimised 2 GB/s rate of §5.2 *)
      let flush =
        if t.flush_policy = Upfront_naive then charged_flush_naive
        else charged_flush
      in
      List.iter
        (fun d ->
          if is_input d then begin
            let base, len = desc_range d in
            ignore (flush t ~vaddr:base ~len)
          end)
        descriptors;
      enqueue_shreds t ~dev ~lo:0 ~hi:num_threads ~params
    | Memmodel.Non_cc_shared, Interleaved ->
      (* intelligent flushing (§5.2): flush only the chunk of data the next
         batch of shreds consumes, launch them, and keep flushing in
         parallel with exo-sequencer execution. Inputs too small to be
         worth slicing (lookup tables, logos) are flushed whole with the
         first chunk, since any shred may read any part of them. *)
      let small_cutoff = 65536 in
      let inputs = List.filter is_input descriptors in
      let nchunks = (num_threads + chunk - 1) / chunk in
      List.iter
        (fun d ->
          let base, len = desc_range d in
          if len < small_cutoff then ignore (charged_flush t ~vaddr:base ~len))
        inputs;
      let inputs =
        List.filter (fun d -> snd (desc_range d) >= small_cutoff) inputs
      in
      for c = 0 to nchunks - 1 do
        List.iter
          (fun d ->
            let base, len = desc_range d in
            let lo = len * c / nchunks and hi = len * (c + 1) / nchunks in
            if hi > lo then
              ignore (charged_flush t ~vaddr:(base + lo) ~len:(hi - lo)))
          inputs;
        let lo = c * chunk and hi = min num_threads ((c + 1) * chunk) in
        if hi > lo then begin
          enqueue_shreds t ~dev ~lo ~hi ~params;
          (* let the exo-sequencers run while the master keeps flushing *)
          ignore
            (Gpu.run_until gpu (Machine.now_ps (Exo_platform.cpu t.platform)))
        end
      done
    | _ -> enqueue_shreds t ~dev ~lo:0 ~hi:num_threads ~params);
    if not master_nowait then wait t team;
    team
  | devs ->
    (* Data-parallel sharding: tile the team row-wise in contiguous
       blocks across the device set. Every device binds the same program
       against the same shared surfaces, so the output surface is merged
       by construction — shred [i] writes the same rows wherever it
       runs. Completion callbacks are installed per device and dedup
       through [seen]: a cross-device hedge can retire the same shred id
       twice, but the team must count it once. *)
    let surfaces = surf_table prog descriptors in
    let team =
      { size = num_threads; completed = 0; waited = false; devs; device = [] }
    in
    let seen = Array.make num_threads false in
    let cb (sh : Gpu.shred) ~now_ps:_ =
      let id = sh.Gpu.shred_id in
      if id >= 0 && id < num_threads && not seen.(id) then begin
        seen.(id) <- true;
        team.completed <- team.completed + 1
      end
    in
    List.iter
      (fun d -> Exo_platform.set_shred_done_callback_dev t.platform ~dev:d cb)
      devs;
    prewalk_surfaces t surfaces;
    List.iter
      (fun d -> Gpu.bind (Exo_platform.gpu_dev t.platform d) ~prog ~surfaces)
      devs;
    (match memmodel with
    | Memmodel.Non_cc_shared ->
      (* sharded dispatch always flushes up front: interleaving chunk
         flushes with N devices' row blocks would flush shared lines
         once per device, so Interleaved degrades to Upfront here *)
      let flush =
        if t.flush_policy = Upfront_naive then charged_flush_naive
        else charged_flush
      in
      List.iter
        (fun d ->
          if is_input d then begin
            let base, len = desc_range d in
            ignore (flush t ~vaddr:base ~len)
          end)
        descriptors
    | Memmodel.Cc_shared | Memmodel.Data_copy -> ());
    let nd = List.length devs in
    let blocks =
      List.mapi
        (fun i d ->
          (d, num_threads * i / nd, num_threads * (i + 1) / nd))
        devs
    in
    (* round-robin chunked feed: every device starts executing its first
       chunk while the master is still enqueuing the rest of the team,
       so the software enqueue overlaps device execution instead of
       serialising ahead of the barrier. The feed granularity trades the
       last device's startup latency ((nd-1) * chunk * dispatch cost,
       finer is better) against doorbell overhead (one SIGNAL per chunk,
       coarser is better); the minimum of the sum sits at the square
       root of their cost ratio. *)
    let feed_chunk =
      let costs = Exo_platform.costs t.platform in
      let x =
        sqrt
          (float_of_int num_threads
          *. float_of_int costs.Exo_platform.signal_ps
          /. (float_of_int (max 1 (nd - 1))
             *. float_of_int (max 1 costs.Exo_platform.dispatch_cpu_ps)))
      in
      max 8 (min chunk (int_of_float x))
    in
    let nchunks =
      List.fold_left
        (fun acc (_, lo, hi) ->
          max acc ((hi - lo + feed_chunk - 1) / feed_chunk))
        0 blocks
    in
    for c = 0 to nchunks - 1 do
      List.iter
        (fun (d, lo, hi) ->
          let clo = lo + (c * feed_chunk)
          and chi_ = min hi (lo + ((c + 1) * feed_chunk)) in
          if chi_ > clo then
            feed_chunk_overlapped t ~devs ~dev:d ~lo:clo ~hi:chi_ ~params)
        blocks
    done;
    if not master_nowait then wait t team;
    team

(* ---- work queuing ---- *)

type task = { tq_params : int array; tq_deps : int list }

exception Dependency_cycle of int list

(* Up-front cycle check (Kahn's algorithm on a scratch indegree copy).
   Returns unit for an acyclic graph; for a cyclic one, extracts one
   concrete cycle deterministically — walk from the smallest unprocessed
   task, always following its first unprocessed dependency, until a task
   repeats — and raises before any shred is enqueued, so a bad graph
   fails with a located error instead of deadlocking the drain. *)
let check_acyclic tasks indegree children =
  let n = Array.length tasks in
  let deg = Array.copy indegree in
  let processed = Array.make n false in
  let queue = Queue.create () in
  Array.iteri (fun i d -> if d = 0 then Queue.add i queue) deg;
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    processed.(i) <- true;
    incr seen;
    List.iter
      (fun j ->
        deg.(j) <- deg.(j) - 1;
        if deg.(j) = 0 then Queue.add j queue)
      children.(i)
  done;
  if !seen <> n then begin
    (* every unprocessed task sits on or downstream of a cycle; walking
       first-unprocessed-dependency edges from the smallest one must
       revisit a task, and the revisited suffix is a cycle *)
    let start = ref 0 in
    while processed.(!start) do incr start done;
    let on_path = Array.make n (-1) in
    let path = ref [] in
    let rec walk v depth =
      if on_path.(v) >= 0 then begin
        (* cycle = path suffix from the first visit of [v] *)
        let members =
          List.filter (fun u -> on_path.(u) >= on_path.(v)) !path
        in
        List.sort compare members
      end
      else begin
        on_path.(v) <- depth;
        path := v :: !path;
        match
          List.find_opt (fun d -> not processed.(d)) tasks.(v).tq_deps
        with
        | Some d -> walk d (depth + 1)
        | None -> assert false (* unprocessed => has an unprocessed dep *)
      end
    in
    raise (Dependency_cycle (walk !start 0))
  end

let taskq t ~prog ~descriptors ~tasks =
  let n = Array.length tasks in
  if n > 0 then begin
    t.last_flush_bytes <- 0;
    t.last_copy_bytes <- 0;
    let gpu = Exo_platform.gpu t.platform in
    let cpu = Exo_platform.cpu t.platform in
    let pcosts = Exo_platform.costs t.platform in
    let memmodel = Exo_platform.memmodel t.platform in
    if memmodel = Memmodel.Data_copy then
      invalid_arg "Chi_runtime.taskq: data-copy mode not supported (no \
                   shared queue without shared memory)";
    (* dependency bookkeeping: the root shred walks the taskq body
       sequentially and enqueues each task; a task with unmet
       dependencies is parked until its parents complete *)
    let indegree = Array.make n 0 in
    let children = Array.make n [] in
    Array.iteri
      (fun i task ->
        List.iter
          (fun dep ->
            if dep < 0 || dep >= n then
              invalid_arg "Chi_runtime.taskq: dependency out of range";
            indegree.(i) <- indegree.(i) + 1;
            children.(dep) <- i :: children.(dep))
          task.tq_deps)
      tasks;
    (* reject cyclic graphs before binding the program or touching the
       work queue — nothing is dispatched for a graph that cannot drain *)
    check_acyclic tasks indegree children;
    let surfaces = surf_table prog descriptors in
    prewalk_surfaces t surfaces;
    Gpu.bind gpu ~prog ~surfaces;
    if memmodel = Memmodel.Non_cc_shared then
      List.iter
        (fun d ->
          if is_input d then begin
            let base, len = desc_range d in
            ignore (charged_flush t ~vaddr:base ~len)
          end)
        descriptors;
    let done_count = ref 0 in
    let enqueue_task i =
      Gpu.enqueue gpu
        [ { Gpu.shred_id = i; entry = 0; params = tasks.(i).tq_params } ]
    in
    Exo_platform.set_shred_done_callback t.platform (fun sh ~now_ps:_ ->
        incr done_count;
        (* the CHI scheduler is notified by user-level interrupt and
           enqueues newly released tasks *)
        let released = ref 0 in
        List.iter
          (fun child ->
            indegree.(child) <- indegree.(child) - 1;
            if indegree.(child) = 0 then begin
              incr released;
              enqueue_task child
            end)
          children.(sh.Gpu.shred_id);
        if !released > 0 then
          Machine.add_overhead_ps cpu
            (pcosts.Exo_platform.uli_ps
            + (!released * pcosts.Exo_platform.dispatch_cpu_ps)));
    (* enqueue the initially ready tasks *)
    let roots = ref [] in
    Array.iteri (fun i d -> if d = 0 then roots := i :: !roots) indegree;
    assert (!roots <> []) (* guaranteed by check_acyclic *);
    Machine.add_time_ps cpu
      (pcosts.Exo_platform.signal_ps
      + (List.length !roots * pcosts.Exo_platform.dispatch_cpu_ps));
    Exo_platform.sync_gpu_to_cpu t.platform;
    List.iter enqueue_task (List.rev !roots);
    supervised_drain t;
    ignore (Exo_platform.barrier t.platform);
    if !done_count <> n then begin
      (* defensive: the graph was proven acyclic, so a short drain means
         lost work, not a cycle — report the tasks still blocked *)
      let stuck = ref [] in
      Array.iteri (fun i d -> if d > 0 then stuck := i :: !stuck) indegree;
      raise (Dependency_cycle (List.rev !stuck))
    end;
    if memmodel = Memmodel.Non_cc_shared then begin
      let bytes = Gpu.flush_cache gpu in
      let costs = Exo_platform.model_costs t.platform in
      Machine.add_time_ps cpu
        (Memmodel.flush_ps costs ~bytes + costs.Memmodel.semaphore_ps);
      t.last_flush_bytes <- t.last_flush_bytes + bytes
    end
  end

(* ---- producer simulation ---- *)

let produce t desc =
  let cpu = Exo_platform.cpu t.platform in
  let base, len = desc_range desc in
  (* mark as many lines dirty as the cache hierarchy can hold; the tail
     of a large buffer naturally evicts (those writebacks happened during
     the producer stage, which we do not charge) *)
  let page = Phys_mem.page_size in
  let rec go vaddr remaining =
    if remaining > 0 then begin
      let chunk = min remaining page in
      (match
         Address_space.fault_in (Exo_platform.aspace t.platform) ~vaddr
       with
      | _ -> ());
      (match
         Page_table.translate
           (Address_space.page_table (Exo_platform.aspace t.platform))
           ~vaddr
       with
      | Some pa ->
        ignore (Cache.access_range (Machine.l1 cpu) ~addr:pa ~len:chunk ~write:true);
        ignore (Cache.access_range (Machine.l2 cpu) ~addr:pa ~len:chunk ~write:true)
      | None -> ());
      go (vaddr + chunk) (remaining - chunk)
    end
  in
  go base len
