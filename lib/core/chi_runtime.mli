(** The CHI runtime: translates OpenMP-style constructs into shred
    creation, scheduling and data-communication management on the EXO
    platform (paper §4.4).

    Two front doors use this module: the media-kernel library calls it
    programmatically (the way compiled CHI code calls the runtime's entry
    points), and CHI-lite-compiled programs reach it through CPU
    intrinsics ({!Chilite_run}).

    The runtime owns the memory-model orchestration of Figure 8:

    - {b CC shared}: translations are pre-walked from the descriptors;
      nothing else to do — hardware coherence handles visibility.
    - {b Non-CC shared}: input surfaces' dirty lines are flushed from the
      CPU caches before exo-sequencer shreds may consume them (up-front,
      or interleaved chunk-by-chunk with execution — §5.2's intelligent
      flushing), and the GPU cache is flushed before the completion
      semaphore is released.
    - {b Data copy}: inputs are copied into an accelerator-private region
      at the measured 3.1 GB/s rate, shreds run against the copies, and
      outputs are copied back. *)

(** Non-coherent hand-off flushing:
    - [Interleaved]: the intelligent policy of paper §5.2 — flush the
      slice of input the next chunk of shreds consumes, overlap the rest
      with execution (requires shreds to consume inputs in band order).
    - [Upfront]: flush all inputs completely before any shred launches,
      at the optimised (bus) rate — the correct policy for kernels whose
      shreds read far-apart data (temporal filters).
    - [Upfront_naive]: like [Upfront] but at the unoptimised 2 GB/s rate
      the paper measures — the baseline of §5.2's flush experiment. *)
type flush_policy = Upfront | Upfront_naive | Interleaved

(** Recovery activity of the self-healing dispatcher (counters only grow
    across constructs; read them, never write). *)
type recovery = {
  mutable redispatches : int;  (** shreds re-dispatched after a reap *)
  mutable doorbell_redeliveries : int;  (** lost SIGNALs re-rung *)
  mutable watchdog_kills : int;  (** hung contexts reaped *)
  mutable quarantined_seqs : int;
      (** HW-thread slots quarantined (permanently in legacy mode; until
          their breaker's cool-down expires in breaker mode) *)
  mutable fallback_shreds : int;  (** shreds proxy-executed on IA32 *)
  mutable fatal : int;  (** faults recovery could not absorb *)
  mutable hedges : int;  (** straggler shreds given a backup dispatch *)
  mutable hedge_wins : int;  (** hedge races resolved by a retirement *)
  mutable cross_hedges : int;
      (** straggler copies re-enqueued on a quiescent peer device *)
  mutable breaker_opens : int;  (** circuit-breaker trips *)
  mutable breaker_closes : int;  (** probationary reinstatements *)
}

type t

(** [watchdog_ps] (default 1 ms simulated): a dispatched shred that has
    retired nothing for this long is declared hung and reaped.
    [max_redispatch] (default 3): re-dispatch attempts per shred before
    falling back to IA32 proxy execution. [quarantine_after] (default
    3): consecutive failures on one HW-thread slot before it is removed
    from the eligible set. [backoff_ps] (default 200 ns): base of the
    exponential re-dispatch backoff; the actual delay is jittered over
    the top half of the window by a dedicated PRNG stream derived from
    the fault-plan seed, so concurrent retry waves decorrelate without
    perturbing the per-class fault streams.

    [hedge_after_ps] (default 0 = off): a resident shred that has
    retired nothing for this long gets a backup dispatch; the first copy
    to retire wins and the loser is cancelled. Pick a value below
    [watchdog_ps] to shave straggler latency before the watchdog kills.

    [breaker_cooldown_ps] (default 0 = legacy permanent quarantine):
    with a positive value each exo-sequencer slot is guarded by a
    circuit breaker ({!Exochi_guard.Breaker}) — EWMA health scoring
    trips the slot into quarantine, the cool-down expires into a
    half-open probe, and a retiring probe reinstates the slot.

    All are inert without a fault plan on the platform. *)
val create :
  platform:Exo_platform.t ->
  ?flush_policy:flush_policy ->
  ?watchdog_ps:int ->
  ?max_redispatch:int ->
  ?quarantine_after:int ->
  ?backoff_ps:int ->
  ?hedge_after_ps:int ->
  ?breaker_cooldown_ps:int ->
  unit ->
  t

val platform : t -> Exo_platform.t
val features : t -> Chi_descriptor.features
val flush_policy : t -> flush_policy
val recovery : t -> recovery

(** An outstanding parallel construct (a team of heterogeneous shreds
    launched with [master_nowait]). *)
type team

(** [parallel t ~prog ~descriptors ~num_threads ~params ~master_nowait]
    implements [#pragma omp parallel target(X3000)]:

    - binds each surface name referenced by the program's inline assembly
      to the descriptor whose surface has that name ([shared] +
      [descriptor] clauses);
    - performs the memory-model work described above;
    - creates [num_threads] shreds, shred [i] receiving [params i] in
      [%p0..%p7] ([private]/[firstprivate] clauses);
    - dispatches them to the exo-sequencers through the work queue;
    - waits at the implied barrier, unless [master_nowait] is set, in
      which case the team is returned outstanding and the IA32 master
      continues (paper §4.2).

    [chunk] controls interleaved-flush granularity (shreds per chunk).

    [device] pins the whole team to one device of a multi-device
    platform (the serve placement layer does this for concurrent
    batches). Omitted on a multi-device platform in a shared-memory
    mode, the team is {e sharded}: shred ids are tiled row-wise in
    contiguous blocks across the device set, every device binds the
    same program against the same shared surfaces (so the output merges
    by construction), completions dedup across devices, and stragglers
    may be hedged onto a quiescent peer device. Data-copy mode never
    shards (the private-surface protocol stays on device 0). *)
val parallel :
  t ->
  prog:Exochi_isa.X3k_ast.program ->
  descriptors:Chi_descriptor.t list ->
  num_threads:int ->
  params:(int -> int array) ->
  ?chunk:int ->
  ?device:int ->
  master_nowait:bool ->
  unit ->
  team

(** Barrier: wait for a team launched with [master_nowait]; performs the
    completion-side memory-model work (GPU cache flush + semaphore in
    non-CC mode, output copy-back in data-copy mode). Idempotent. *)
val wait : t -> team -> unit

(** Shreds completed so far in a team (monotonic; for progress tests). *)
val team_completed : team -> int

val team_size : team -> int

(** Devices the team was dispatched on, ascending ([[0]] for a legacy
    single-device team). *)
val team_devices : team -> int list

(** {1 Work queuing (producer-consumer), paper §4.3}

    [taskq] implements [#pragma intel omp taskq target(...)] with [task]
    constructs carrying dependencies: a task runs only after all of its
    dependencies complete, matching e.g. the H.264 deblocking order where
    a macroblock waits on its left and upper neighbours. *)

type task = {
  tq_params : int array; (* captureprivate values *)
  tq_deps : int list; (* indices into the task array *)
}

(** The task graph contains a dependency cycle; the payload is the task
    indices of one concrete cycle (ascending). Raised {e before} any
    shred is enqueued — a cyclic graph fails fast with a located error
    instead of deadlocking the drain. *)
exception Dependency_cycle of int list

(** Runs the whole task graph to completion (the taskq construct itself
    is synchronous). Raises {!Dependency_cycle} up front if the graph
    cannot drain. *)
val taskq :
  t ->
  prog:Exochi_isa.X3k_ast.program ->
  descriptors:Chi_descriptor.t list ->
  tasks:task array ->
  unit

(** {1 Producer simulation for benchmarks}

    [produce t desc] marks a surface's contents as freshly written by the
    IA32 producer stage: its lines become dirty in the CPU caches (as
    much as fits). The cost belongs to the producer, so none is charged —
    but subsequent non-CC dispatches must flush these lines, and CC-mode
    accesses snoop them, exactly the Figure 8 scenario. *)
val produce : t -> Chi_descriptor.t -> unit

(** {1 Introspection} *)

val last_flush_bytes : t -> int
val last_copy_bytes : t -> int

(** Per-device circuit-breaker census as [(closed, open_, half_open)]
    slot counts. All zeros when breakers are disabled
    ([breaker_cooldown_ps] = 0). *)
val breaker_census : t -> dev:int -> int * int * int
