type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | BAnd
  | BOr
  | BXor
  | LAnd
  | LOr

type expr =
  | Int of int32
  | Var of string
  | Index of string * expr
  | Unop of [ `Neg | `Not ] * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

type clause =
  | Target of string
  | Shared of string list
  | Private of string list
  | Firstprivate of string list
  | Descriptor of string list
  | Num_threads of expr
  | Deadline_us of expr
  | Master_nowait

type pragma = { clauses : clause list; ploc : Exochi_isa.Loc.t }

type stmt =
  | Decl of string * expr option
  | Assign of string * expr
  | Store of string * expr * expr
  | If of expr * block * block option
  | While of expr * block
  | For of stmt * expr * stmt * block
  | Return of expr option
  | Expr of expr
  | Block of block
  | Parallel of parallel

and block = stmt list

and parallel = {
  pragma : pragma;
  loop_var : string;
  lo : expr;
  hi : expr;
  asm_text : string;
  asm_loc : Exochi_isa.Loc.t;
}

type global = Gvar of string * int32 option | Garray of string * int

type func = {
  fname : string;
  params : string list;
  body : block;
  floc : Exochi_isa.Loc.t;
}

type program = { globals : global list; funcs : func list }
