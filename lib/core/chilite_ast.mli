(** Abstract syntax for CHI-lite, the C-subset front end of the CHI
    programming environment.

    CHI-lite covers the language surface the paper's examples use
    (Figures 6 and 9): integer globals and arrays, functions, control
    flow, the CHI runtime calls, and OpenMP [parallel] pragmas with a
    [target] clause whose body is a [for] loop over an accelerator
    [__asm] block — each iteration becomes one heterogeneous shred, the
    loop variable arriving in [%p0] (the [private] clause). *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Shl
  | Shr
  | Lt
  | Le
  | Gt
  | Ge
  | Eq
  | Ne
  | BAnd
  | BOr
  | BXor
  | LAnd
  | LOr

type expr =
  | Int of int32
  | Var of string
  | Index of string * expr (* a[e] *)
  | Unop of [ `Neg | `Not ] * expr
  | Binop of binop * expr * expr
  | Call of string * expr list

(** One clause of a [#pragma omp parallel] line. *)
type clause =
  | Target of string (* target(X3000) *)
  | Shared of string list
  | Private of string list
  | Firstprivate of string list
  | Descriptor of string list
  | Num_threads of expr
  | Deadline_us of expr (* deadline_us(N): latency class for Exo-bound *)
  | Master_nowait

type pragma = { clauses : clause list; ploc : Exochi_isa.Loc.t }

type stmt =
  | Decl of string * expr option (* int x; / int x = e; *)
  | Assign of string * expr
  | Store of string * expr * expr (* a[i] = e *)
  | If of expr * block * block option
  | While of expr * block
  | For of stmt * expr * stmt * block
  | Return of expr option
  | Expr of expr
  | Block of block
  | Parallel of parallel

and block = stmt list

(** A lowered parallel region: the loop header that generates shreds and
    the accelerator assembly text of its body. *)
and parallel = {
  pragma : pragma;
  loop_var : string;
  lo : expr;
  hi : expr; (* iterations [lo, hi) *)
  asm_text : string;
  asm_loc : Exochi_isa.Loc.t;
}

type global =
  | Gvar of string * int32 option (* int g; / int g = k; *)
  | Garray of string * int (* int a[N]; *)

type func = {
  fname : string;
  params : string list;
  body : block;
  floc : Exochi_isa.Loc.t;
}

type program = { globals : global list; funcs : func list }
