open Chilite_ast
module Loc = Exochi_isa.Loc

let ( let* ) = Result.bind

type section_info = {
  sec_name : string;
  shared : string list;
  nowait : bool;
  deadline_us : int option;
  private_vars : string list;
  firstprivate : string list;
  descriptor_clause : string list;
  loop_var : string;
  lo : Chilite_ast.expr;
  hi : Chilite_ast.expr;
  x3k : Exochi_isa.X3k_ast.program;
  ploc : Loc.t;
  asm_loc : Loc.t;
}

type compiled = {
  fatbin : Chi_fatbin.t;
  globals : (string * int) list;
  global_init : (string * int32) list;
  sections : section_info list;
  ast : Chilite_ast.program;
}

(* ---- environments ---- *)

type gkind = Scalar | Array of int

type env = {
  globals : (string * gkind) list;
  funcs : (string * int) list; (* name -> arity *)
  (* current function *)
  locals : (string * int) list; (* name -> [ebp - off] *)
  params : (string * int) list; (* name -> [ebp + off] *)
  buf : Buffer.t;
  label : int ref;
  sections : section_info list ref;
  floc : Loc.t;
}

let fresh env prefix =
  incr env.label;
  Printf.sprintf "%s%d" prefix !(env.label)

let emit env fmt = Printf.ksprintf (fun s -> Buffer.add_string env.buf s) fmt

let builtin_arity =
  [ ("chi_desc", 4); ("chi_wait", 0); ("print_int", 1) ]

let err loc fmt = Loc.error loc fmt

(* ---- collect locals of a function (flat scoping) ---- *)

let rec block_decls b = List.concat_map stmt_decls b

and stmt_decls = function
  | Decl (n, _) -> [ n ]
  | If (_, t, e) -> block_decls t @ (match e with Some b -> block_decls b | None -> [])
  | While (_, b) -> block_decls b
  | For (i, _, s, b) -> stmt_decls i @ stmt_decls s @ block_decls b
  | Block b -> block_decls b
  | Parallel _ | Assign _ | Store _ | Return _ | Expr _ -> []

(* ---- expression codegen: result in eax ---- *)

let rec gen_expr env e =
  match e with
  | Int v ->
    emit env "  mov.d eax, %ld\n" v;
    Ok ()
  | Var x -> (
    match List.assoc_opt x env.locals with
    | Some off ->
      emit env "  mov.d eax, [ebp - %d]\n" off;
      Ok ()
    | None -> (
      match List.assoc_opt x env.params with
      | Some off ->
        emit env "  mov.d eax, [ebp + %d]\n" off;
        Ok ()
      | None -> (
        match List.assoc_opt x env.globals with
        | Some Scalar ->
          emit env "  mov.d eax, [%s]\n" x;
          Ok ()
        | Some (Array _) ->
          err env.floc "array %S used as a scalar value" x
        | None -> err env.floc "undeclared variable %S" x)))
  | Index (a, idx) -> (
    match List.assoc_opt a env.globals with
    | Some (Array _) ->
      let* () = gen_expr env idx in
      emit env "  shl eax, 2\n  mov.d ebx, eax\n  mov.d eax, [%s + ebx]\n" a;
      Ok ()
    | Some Scalar -> err env.floc "%S is not an array" a
    | None -> err env.floc "undeclared array %S" a)
  | Unop (`Neg, e) ->
    let* () = gen_expr env e in
    emit env "  neg eax\n";
    Ok ()
  | Unop (`Not, e) ->
    let* () = gen_expr env e in
    emit env "  cmp eax, 0\n  sete eax\n";
    Ok ()
  | Binop (LAnd, a, b) ->
    let lfalse = fresh env "and_f" and lend = fresh env "and_e" in
    let* () = gen_expr env a in
    emit env "  cmp eax, 0\n  je %s\n" lfalse;
    let* () = gen_expr env b in
    emit env "  cmp eax, 0\n  je %s\n  mov.d eax, 1\n  jmp %s\n%s:\n  mov.d eax, 0\n%s:\n"
      lfalse lend lfalse lend;
    Ok ()
  | Binop (LOr, a, b) ->
    let ltrue = fresh env "or_t" and lend = fresh env "or_e" in
    let* () = gen_expr env a in
    emit env "  cmp eax, 0\n  jne %s\n" ltrue;
    let* () = gen_expr env b in
    emit env "  cmp eax, 0\n  jne %s\n  mov.d eax, 0\n  jmp %s\n%s:\n  mov.d eax, 1\n%s:\n"
      ltrue lend ltrue lend;
    Ok ()
  | Binop (op, a, b) ->
    let* () = gen_expr env a in
    emit env "  push eax\n";
    let* () = gen_expr env b in
    emit env "  mov.d ebx, eax\n  pop eax\n";
    (match op with
    | Add -> emit env "  add eax, ebx\n"
    | Sub -> emit env "  sub eax, ebx\n"
    | Mul -> emit env "  imul eax, ebx\n"
    | Div -> emit env "  sdiv eax, ebx\n"
    | Rem -> emit env "  srem eax, ebx\n"
    | Shl -> emit env "  shl eax, ebx\n"
    | Shr -> emit env "  sar eax, ebx\n"
    | BAnd -> emit env "  and eax, ebx\n"
    | BOr -> emit env "  or eax, ebx\n"
    | BXor -> emit env "  xor eax, ebx\n"
    | Lt -> emit env "  cmp eax, ebx\n  setl eax\n"
    | Le -> emit env "  cmp eax, ebx\n  setle eax\n"
    | Gt -> emit env "  cmp eax, ebx\n  setg eax\n"
    | Ge -> emit env "  cmp eax, ebx\n  setge eax\n"
    | Eq -> emit env "  cmp eax, ebx\n  sete eax\n"
    | Ne -> emit env "  cmp eax, ebx\n  setne eax\n"
    | LAnd | LOr -> assert false);
    Ok ()
  | Call ("chi_desc", args) -> gen_chi_desc env args
  | Call (f, args) -> (
    let arity =
      match List.assoc_opt f env.funcs with
      | Some a -> Some a
      | None -> List.assoc_opt f builtin_arity
    in
    match arity with
    | None -> err env.floc "call to undeclared function %S" f
    | Some a when a <> List.length args ->
      err env.floc "%S expects %d argument(s), got %d" f a (List.length args)
    | Some _ ->
      let* () =
        List.fold_left
          (fun acc arg ->
            let* () = acc in
            let* () = gen_expr env arg in
            emit env "  push eax\n";
            Ok ())
          (Ok ()) args
      in
      emit env "  call %s\n" f;
      if args <> [] then emit env "  add esp, %d\n" (4 * List.length args);
      Ok ())

(* chi_desc(ARR, mode, w, h): the first argument must be an array global,
   passed to the runtime as its global index *)
and gen_chi_desc env args =
  match args with
  | [ Var a; mode; w; h ] -> (
    match List.assoc_opt a env.globals with
    | Some (Array _) ->
      let idx =
        let rec find i = function
          | [] -> assert false
          | (n, _) :: _ when n = a -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 env.globals
      in
      emit env "  mov.d eax, %d\n  push eax\n" idx;
      let* () =
        List.fold_left
          (fun acc arg ->
            let* () = acc in
            let* () = gen_expr env arg in
            emit env "  push eax\n";
            Ok ())
          (Ok ())
          [ mode; w; h ]
      in
      emit env "  call chi_desc\n  add esp, 16\n";
      Ok ()
    | _ -> err env.floc "chi_desc: %S is not a global array" a)
  | _ -> err env.floc "chi_desc expects (array, mode, width, height)"

(* ---- statements ---- *)

let store_scalar env x =
  match List.assoc_opt x env.locals with
  | Some off ->
    emit env "  mov.d [ebp - %d], eax\n" off;
    Ok ()
  | None -> (
    match List.assoc_opt x env.params with
    | Some off ->
      emit env "  mov.d [ebp + %d], eax\n" off;
      Ok ()
    | None -> (
      match List.assoc_opt x env.globals with
      | Some Scalar ->
        emit env "  mov.d [%s], eax\n" x;
        Ok ()
      | Some (Array _) -> err env.floc "cannot assign to array %S" x
      | None -> err env.floc "undeclared variable %S" x))

let rec gen_stmt env ~epilogue s =
  match s with
  | Decl (x, None) ->
    ignore x;
    Ok ()
  | Decl (x, Some e) | Assign (x, e) ->
    let* () = gen_expr env e in
    store_scalar env x
  | Store (a, idx, e) -> (
    match List.assoc_opt a env.globals with
    | Some (Array _) ->
      let* () = gen_expr env idx in
      emit env "  shl eax, 2\n  push eax\n";
      let* () = gen_expr env e in
      emit env "  pop ebx\n  mov.d [%s + ebx], eax\n" a;
      Ok ()
    | _ -> err env.floc "undeclared array %S" a)
  | If (c, t, e) ->
    let lelse = fresh env "else" and lend = fresh env "fi" in
    let* () = gen_expr env c in
    emit env "  cmp eax, 0\n  je %s\n" lelse;
    let* () = gen_block env ~epilogue t in
    emit env "  jmp %s\n%s:\n" lend lelse;
    let* () =
      match e with Some b -> gen_block env ~epilogue b | None -> Ok ()
    in
    emit env "%s:\n" lend;
    Ok ()
  | While (c, b) ->
    let ltop = fresh env "wtop" and lend = fresh env "wend" in
    emit env "%s:\n" ltop;
    let* () = gen_expr env c in
    emit env "  cmp eax, 0\n  je %s\n" lend;
    let* () = gen_block env ~epilogue b in
    emit env "  jmp %s\n%s:\n" ltop lend;
    Ok ()
  | For (init, cond, step, b) ->
    let ltop = fresh env "ftop" and lend = fresh env "fend" in
    let* () = gen_stmt env ~epilogue init in
    emit env "%s:\n" ltop;
    let* () = gen_expr env cond in
    emit env "  cmp eax, 0\n  je %s\n" lend;
    let* () = gen_block env ~epilogue b in
    let* () = gen_stmt env ~epilogue step in
    emit env "  jmp %s\n%s:\n" ltop lend;
    Ok ()
  | Return None ->
    emit env "  jmp %s\n" epilogue;
    Ok ()
  | Return (Some e) ->
    let* () = gen_expr env e in
    emit env "  jmp %s\n" epilogue;
    Ok ()
  | Expr e ->
    let* () = gen_expr env e in
    Ok ()
  | Block b -> gen_block env ~epilogue b
  | Parallel region -> gen_parallel env region

and gen_block env ~epilogue b =
  List.fold_left
    (fun acc s ->
      let* () = acc in
      gen_stmt env ~epilogue s)
    (Ok ()) b

and gen_parallel env region =
  (* validate clauses *)
  let clauses = region.pragma.clauses in
  let* () =
    (* each clause kind may appear at most once; a duplicate list is
       almost always a merge mistake and would silently concatenate *)
    let kind = function
      | Target _ -> Some "target"
      | Shared _ -> Some "shared"
      | Private _ -> Some "private"
      | Firstprivate _ -> Some "firstprivate"
      | Descriptor _ -> Some "descriptor"
      | Num_threads _ -> Some "num_threads"
      | Deadline_us _ -> Some "deadline_us"
      | Master_nowait -> None
    in
    let rec dup seen = function
      | [] -> Ok ()
      | c :: rest -> (
        match kind c with
        | None -> dup seen rest
        | Some k ->
          if List.mem k seen then
            err region.pragma.ploc "duplicate %s(...) clause" k
          else dup (k :: seen) rest)
    in
    dup [] clauses
  in
  let* () =
    match List.find_map (function Target t -> Some t | _ -> None) clauses with
    | Some "X3000" -> Ok ()
    | Some other ->
      err region.pragma.ploc "unknown target ISA %S (expected X3000)" other
    | None -> err region.pragma.ploc "parallel pragma requires target(...)"
  in
  let shared =
    List.concat_map (function Shared l -> l | _ -> []) clauses
  in
  let nowait = List.mem Master_nowait clauses in
  let* deadline_us =
    match
      List.find_map (function Deadline_us e -> Some e | _ -> None) clauses
    with
    | None -> Ok None
    | Some (Int v) when Int32.compare v 1l >= 0 ->
      Ok (Some (Int32.to_int v))
    | Some (Int _) ->
      err region.pragma.ploc "deadline_us(...) requires a positive value"
    | Some _ ->
      err region.pragma.ploc
        "deadline_us(...) requires an integer literal (the deadline is a \
         static latency class, not a runtime value)"
  in
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        match List.assoc_opt v env.globals with
        | Some (Array _) -> Ok ()
        | _ ->
          err region.pragma.ploc "shared(%s): not a global array" v)
      (Ok ()) shared
  in
  let descriptor_clause =
    List.concat_map (function Descriptor l -> l | _ -> []) clauses
  in
  let* () =
    (* descriptor(...) names accelerator-visible variables: they must be
       declared global arrays, and being listed implies being shared *)
    List.fold_left
      (fun acc v ->
        let* () = acc in
        match List.assoc_opt v env.globals with
        | Some (Array _) -> Ok ()
        | Some Scalar ->
          err region.pragma.ploc
            "descriptor(%s): %S is a scalar, not a global array" v v
        | None ->
          err region.pragma.ploc
            "descriptor(%s): no such global variable" v)
      (Ok ()) descriptor_clause
  in
  (* assemble the accelerator block *)
  let sec_name = Printf.sprintf "sec%d" (List.length !(env.sections)) in
  let* prog =
    match Exochi_isa.X3k_asm.assemble ~name:sec_name region.asm_text with
    | Ok p -> Ok p
    | Error e ->
      err region.asm_loc "in accelerator inline assembly: %s" e.Loc.msg
  in
  (* every surface the assembly names must appear in shared(...) *)
  let* () =
    Array.fold_left
      (fun acc s ->
        let* () = acc in
        if List.mem s shared then Ok ()
        else
          err region.pragma.ploc
            "inline assembly references %S which is not in shared(...)" s)
      (Ok ()) prog.Exochi_isa.X3k_ast.surfaces
  in
  (* firstprivate values are evaluated once at the fork and delivered to
     every shred in %p1, %p2, ... (%p0 carries the iteration index) *)
  let firstprivate =
    List.concat_map (function Firstprivate l -> l | _ -> []) clauses
  in
  let private_vars =
    List.concat_map (function Private l -> l | _ -> []) clauses
  in
  let info =
    {
      sec_name;
      shared;
      nowait;
      deadline_us;
      private_vars;
      firstprivate;
      descriptor_clause;
      loop_var = region.loop_var;
      lo = region.lo;
      hi = region.hi;
      x3k = prog;
      ploc = region.pragma.ploc;
      asm_loc = region.asm_loc;
    }
  in
  let sec_id = List.length !(env.sections) in
  env.sections := info :: !(env.sections);
  let* () =
    if List.length firstprivate > 7 then
      err region.pragma.ploc "at most 7 firstprivate values fit in %%p1..%%p7"
    else Ok ()
  in
  (* chi_parallel: pushes sec, lo, hi, nowait, fp..., then the fp count
     last so the handler can find everything from the top of the stack *)
  emit env "  mov.d eax, %d\n  push eax\n" sec_id;
  let* () = gen_expr env region.lo in
  emit env "  push eax\n";
  let* () = gen_expr env region.hi in
  emit env "  push eax\n";
  emit env "  mov.d eax, %d\n  push eax\n" (if nowait then 1 else 0);
  let* () =
    List.fold_left
      (fun acc v ->
        let* () = acc in
        let* () = gen_expr env (Var v) in
        emit env "  push eax\n";
        Ok ())
      (Ok ()) firstprivate
  in
  emit env "  mov.d eax, %d\n  push eax\n" (List.length firstprivate);
  emit env "  call chi_parallel\n  add esp, %d\n"
    (4 * (5 + List.length firstprivate));
  Ok ()

(* ---- functions ---- *)

let gen_func env (f : func) =
  let decls = block_decls f.body in
  let* () =
    let rec dup = function
      | [] -> Ok ()
      | x :: rest ->
        if List.mem x rest then err f.floc "duplicate local %S in %S" x f.fname
        else dup rest
    in
    dup (decls @ f.params)
  in
  let locals = List.mapi (fun i x -> (x, 4 * (i + 1))) decls in
  let nparams = List.length f.params in
  let params =
    List.mapi (fun i x -> (x, 4 + (4 * (nparams - 1 - i)))) f.params
  in
  let env = { env with locals; params; floc = f.floc } in
  let epilogue = fresh env "ret" in
  emit env "%s:\n  push ebp\n  mov.d ebp, esp\n" f.fname;
  if locals <> [] then emit env "  sub esp, %d\n" (4 * List.length locals);
  let* () = gen_block env ~epilogue f.body in
  emit env "%s:\n  mov.d esp, ebp\n  pop ebp\n  ret\n" epilogue;
  Ok ()

let compile_internal ~name src =
  let* prog = Chilite_parser.parse ~file:name src in
  (* global environment *)
  let* globals =
    List.fold_left
      (fun acc g ->
        let* acc = acc in
        let n = match g with Gvar (n, _) | Garray (n, _) -> n in
        if List.mem_assoc n acc then
          err Loc.dummy "duplicate global %S" n
        else
          Ok
            (acc
            @ [ (n, match g with Gvar _ -> Scalar | Garray (_, k) -> Array k) ]))
      (Ok []) prog.Chilite_ast.globals
  in
  let funcs = List.map (fun f -> (f.fname, List.length f.params)) prog.funcs in
  let* () =
    let rec dup = function
      | [] -> Ok ()
      | (x, _) :: rest ->
        if List.mem_assoc x rest then err Loc.dummy "duplicate function %S" x
        else dup rest
    in
    dup funcs
  in
  let* () =
    if List.mem_assoc "main" funcs then
      if List.assoc "main" funcs = 0 then Ok ()
      else err Loc.dummy "main must take no parameters"
    else err Loc.dummy "program has no main function"
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "  call main\n  hlt\n";
  let env0 =
    {
      globals;
      funcs;
      locals = [];
      params = [];
      buf;
      label = ref 0;
      sections = ref [];
      floc = Loc.dummy;
    }
  in
  let* () =
    List.fold_left
      (fun acc f ->
        let* () = acc in
        gen_func env0 f)
      (Ok ()) prog.funcs
  in
  Ok (prog, env0, Buffer.contents buf)

let compile ?(opt_level = Exochi_opt.Opt.O0) ~name src =
  let* prog, env, via_text = compile_internal ~name src in
  let* via_prog =
    match Exochi_isa.Via32_asm.assemble ~name:"main" via_text with
    | Ok p -> Ok p
    | Error e ->
      err e.Loc.loc "internal: generated VIA32 failed to assemble: %s"
        e.Loc.msg
  in
  let sections =
    List.rev_map
      (fun info ->
        { info with x3k = Exochi_opt.Opt.optimize opt_level info.x3k })
      !(env.sections)
  in
  let fatbin = Chi_fatbin.empty ~name in
  let fatbin = Chi_fatbin.add_via32 fatbin via_prog in
  let fatbin =
    List.fold_left (fun fb info -> Chi_fatbin.add_x3k fb info.x3k) fatbin
      sections
  in
  let globals =
    List.map
      (function
        | Gvar (n, _) -> (n, 4)
        | Garray (n, k) -> (n, 4 * k))
      prog.Chilite_ast.globals
  in
  let global_init =
    List.filter_map
      (function Gvar (n, Some v) -> Some (n, v) | _ -> None)
      prog.Chilite_ast.globals
  in
  Ok
    {
      fatbin;
      globals;
      global_init;
      sections;
      ast = prog;
    }

let compile_to_via32_text ~name src =
  let* _, _, via_text = compile_internal ~name src in
  Ok via_text
