(** The CHI-lite compiler driver: semantic checks, VIA32 code generation
    for the IA32 path, inline accelerator assembly blocks handed to the
    X3K assembler, and fat-binary emission (paper Figure 4).

    The IA32 section is named ["main"]; each parallel region becomes an
    X3K section ["sec<N>"] indexed by the identifier the generated code
    passes to the [chi_parallel] runtime entry point.

    Runtime entry points the generated code calls (arguments pushed left
    to right, caller pops):
    - [chi_desc(global_idx, mode, width, height)] — Table 1 API #1.
    - [chi_parallel(section_id, lo, hi, nowait)] — launch one shred per
      iteration of [\[lo, hi)]; iteration index arrives in [%p0].
    - [chi_wait()] — barrier for the outstanding [master_nowait] team.
    - [print_int(v)] — host console output (examples, tests). *)

(** Per-parallel-region metadata, exported for the runtime (which needs
    [shared]/[nowait]) and for the Exo-check static analyzer (which
    needs the clause lists, the iteration space, the assembled X3K
    program and the source anchors). *)
type section_info = {
  sec_name : string;
  shared : string list; (* surface names the region binds *)
  nowait : bool;
  deadline_us : int option; (* deadline_us(N) latency class, if declared *)
  private_vars : string list; (* private(...) clause *)
  firstprivate : string list; (* firstprivate(...), delivered in %p1.. *)
  descriptor_clause : string list; (* descriptor(...) clause *)
  loop_var : string; (* iteration variable, seeded from %p0 *)
  lo : Chilite_ast.expr; (* iteration space [lo, hi) *)
  hi : Chilite_ast.expr;
  x3k : Exochi_isa.X3k_ast.program; (* the assembled region body *)
  ploc : Exochi_isa.Loc.t; (* the #pragma line *)
  asm_loc : Exochi_isa.Loc.t; (* just past the __asm '{' *)
}

type compiled = {
  fatbin : Chi_fatbin.t;
  globals : (string * int) list; (* name -> byte size, in layout order *)
  global_init : (string * int32) list; (* scalar initialisers *)
  sections : section_info list;
  ast : Chilite_ast.program; (* the parsed source, for analysis *)
}

(** [opt_level] runs the {!Exochi_opt.Opt} backend over every
    accelerator section before fat-binary emission (default [O0]). *)
val compile :
  ?opt_level:Exochi_opt.Opt.level ->
  name:string ->
  string ->
  (compiled, Exochi_isa.Loc.error) result

(** The generated VIA32 text (for inspection / the [exochi_cc] driver). *)
val compile_to_via32_text :
  name:string -> string -> (string, Exochi_isa.Loc.error) result
