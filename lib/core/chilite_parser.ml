open Chilite_ast
module Lx = Chilite_lexer
module Loc = Exochi_isa.Loc

let ( let* ) = Result.bind

type state = {
  lx : Lx.t;
  mutable tok : Lx.token;
  mutable tok_loc : Loc.t;
}

let advance st =
  match Lx.next st.lx with
  | Ok (tok, loc) ->
    st.tok <- tok;
    st.tok_loc <- loc;
    Ok ()
  | Error e -> Error e

let expect st want ~what =
  if st.tok = want then advance st
  else
    Loc.error st.tok_loc "expected %a in %s, found %a" Lx.pp_token want what
      Lx.pp_token st.tok

let expect_ident st ~what =
  match st.tok with
  | Lx.IDENT s ->
    let* () = advance st in
    Ok s
  | tok -> Loc.error st.tok_loc "expected identifier in %s, found %a" what Lx.pp_token tok

(* ---- expressions (precedence climbing) ---- *)

let binop_of_token = function
  | Lx.OROR -> Some (LOr, 1)
  | Lx.ANDAND -> Some (LAnd, 2)
  | Lx.BAR -> Some (BOr, 3)
  | Lx.CARET -> Some (BXor, 4)
  | Lx.AMP -> Some (BAnd, 5)
  | Lx.EQ -> Some (Eq, 6)
  | Lx.NE -> Some (Ne, 6)
  | Lx.LT -> Some (Lt, 7)
  | Lx.LE -> Some (Le, 7)
  | Lx.GT -> Some (Gt, 7)
  | Lx.GE -> Some (Ge, 7)
  | Lx.SHL -> Some (Shl, 8)
  | Lx.SHR -> Some (Shr, 8)
  | Lx.PLUS -> Some (Add, 9)
  | Lx.MINUS -> Some (Sub, 9)
  | Lx.STAR -> Some (Mul, 10)
  | Lx.SLASH -> Some (Div, 10)
  | Lx.PERCENT -> Some (Rem, 10)
  | _ -> None

let rec parse_expr st = parse_bin st 0

and parse_bin st min_prec =
  let* lhs = parse_unary st in
  let rec loop lhs =
    match binop_of_token st.tok with
    | Some (op, prec) when prec >= min_prec ->
      let* () = advance st in
      let* rhs = parse_bin st (prec + 1) in
      loop (Binop (op, lhs, rhs))
    | _ -> Ok lhs
  in
  loop lhs

and parse_unary st =
  match st.tok with
  | Lx.MINUS ->
    let* () = advance st in
    let* e = parse_unary st in
    Ok (Unop (`Neg, e))
  | Lx.BANG ->
    let* () = advance st in
    let* e = parse_unary st in
    Ok (Unop (`Not, e))
  | _ -> parse_primary st

and parse_primary st =
  match st.tok with
  | Lx.INT v ->
    let* () = advance st in
    Ok (Int v)
  | Lx.LPAREN ->
    let* () = advance st in
    let* e = parse_expr st in
    let* () = expect st Lx.RPAREN ~what:"parenthesised expression" in
    Ok e
  | Lx.IDENT name -> (
    let* () = advance st in
    match st.tok with
    | Lx.LPAREN ->
      let* () = advance st in
      let* args =
        if st.tok = Lx.RPAREN then Ok []
        else begin
          let rec go acc =
            let* e = parse_expr st in
            if st.tok = Lx.COMMA then
              let* () = advance st in
              go (e :: acc)
            else Ok (List.rev (e :: acc))
          in
          go []
        end
      in
      let* () = expect st Lx.RPAREN ~what:"call" in
      Ok (Call (name, args))
    | Lx.LBRACK ->
      let* () = advance st in
      let* idx = parse_expr st in
      let* () = expect st Lx.RBRACK ~what:"array index" in
      Ok (Index (name, idx))
    | _ -> Ok (Var name))
  | tok -> Loc.error st.tok_loc "expected expression, found %a" Lx.pp_token tok

(* ---- pragma lines ---- *)

let parse_pragma_clauses ~ploc text =
  (* tokenize the clause text with the CHI-lite lexer *)
  let lx = Lx.create ~file:ploc.Loc.file text in
  let st = { lx; tok = Lx.EOF; tok_loc = ploc } in
  let* () = advance st in
  (* leading 'omp parallel' (or the unsupported taskq forms) *)
  let* () =
    match st.tok with
    | Lx.IDENT "omp" -> advance st
    | Lx.IDENT "intel" ->
      Loc.error ploc
        "taskq/task pragmas are not supported by CHI-lite; use the \
         Chi_runtime.taskq API"
    | _ -> Loc.error ploc "expected 'omp' after #pragma"
  in
  let* () =
    match st.tok with
    | Lx.IDENT "parallel" -> advance st
    | _ -> Loc.error ploc "expected 'parallel' after '#pragma omp'"
  in
  let ident_list () =
    let* () = expect st Lx.LPAREN ~what:"clause" in
    let rec go acc =
      let* name = expect_ident st ~what:"clause variable list" in
      if st.tok = Lx.COMMA then
        let* () = advance st in
        go (name :: acc)
      else begin
        let* () = expect st Lx.RPAREN ~what:"clause" in
        Ok (List.rev (name :: acc))
      end
    in
    go []
  in
  let rec clauses acc =
    match st.tok with
    | Lx.EOF -> Ok (List.rev acc)
    | Lx.IDENT "target" ->
      let* () = advance st in
      let* names = ident_list () in
      (match names with
      | [ isa ] -> clauses (Target isa :: acc)
      | _ -> Loc.error ploc "target() takes exactly one ISA name")
    | Lx.IDENT "shared" ->
      let* () = advance st in
      let* names = ident_list () in
      clauses (Shared names :: acc)
    | Lx.IDENT "private" ->
      let* () = advance st in
      let* names = ident_list () in
      clauses (Private names :: acc)
    | Lx.IDENT "firstprivate" ->
      let* () = advance st in
      let* names = ident_list () in
      clauses (Firstprivate names :: acc)
    | Lx.IDENT "descriptor" ->
      let* () = advance st in
      let* names = ident_list () in
      clauses (Descriptor names :: acc)
    | Lx.IDENT "num_threads" ->
      let* () = advance st in
      let* () = expect st Lx.LPAREN ~what:"num_threads" in
      let* e = parse_expr st in
      let* () = expect st Lx.RPAREN ~what:"num_threads" in
      clauses (Num_threads e :: acc)
    | Lx.IDENT "deadline_us" ->
      let* () = advance st in
      let* () = expect st Lx.LPAREN ~what:"deadline_us" in
      let* e = parse_expr st in
      let* () = expect st Lx.RPAREN ~what:"deadline_us" in
      clauses (Deadline_us e :: acc)
    | Lx.IDENT "master_nowait" ->
      let* () = advance st in
      clauses (Master_nowait :: acc)
    | tok -> Loc.error ploc "unknown pragma clause: %a" Lx.pp_token tok
  in
  clauses []

(* ---- statements ---- *)

let rec parse_stmt st =
  match st.tok with
  | Lx.KW "int" -> (
    let* () = advance st in
    let* name = expect_ident st ~what:"declaration" in
    match st.tok with
    | Lx.ASSIGN ->
      let* () = advance st in
      let* e = parse_expr st in
      let* () = expect st Lx.SEMI ~what:"declaration" in
      Ok (Decl (name, Some e))
    | _ ->
      let* () = expect st Lx.SEMI ~what:"declaration" in
      Ok (Decl (name, None)))
  | Lx.KW "if" ->
    let* () = advance st in
    let* () = expect st Lx.LPAREN ~what:"if" in
    let* cond = parse_expr st in
    let* () = expect st Lx.RPAREN ~what:"if" in
    let* then_ = parse_block_or_stmt st in
    if st.tok = Lx.KW "else" then begin
      let* () = advance st in
      let* else_ = parse_block_or_stmt st in
      Ok (If (cond, then_, Some else_))
    end
    else Ok (If (cond, then_, None))
  | Lx.KW "while" ->
    let* () = advance st in
    let* () = expect st Lx.LPAREN ~what:"while" in
    let* cond = parse_expr st in
    let* () = expect st Lx.RPAREN ~what:"while" in
    let* body = parse_block_or_stmt st in
    Ok (While (cond, body))
  | Lx.KW "for" ->
    let* init, cond, step = parse_for_header st in
    let* body = parse_block_or_stmt st in
    Ok (For (init, cond, step, body))
  | Lx.KW "return" -> (
    let* () = advance st in
    match st.tok with
    | Lx.SEMI ->
      let* () = advance st in
      Ok (Return None)
    | _ ->
      let* e = parse_expr st in
      let* () = expect st Lx.SEMI ~what:"return" in
      Ok (Return (Some e)))
  | Lx.LBRACE ->
    let* b = parse_block st in
    Ok (Block b)
  | Lx.PRAGMA text ->
    let ploc = st.tok_loc in
    let* clauses = parse_pragma_clauses ~ploc text in
    let* () = advance st in
    parse_parallel st { clauses; ploc }
  | Lx.IDENT name -> (
    let* () = advance st in
    match st.tok with
    | Lx.ASSIGN ->
      let* () = advance st in
      let* e = parse_expr st in
      let* () = expect st Lx.SEMI ~what:"assignment" in
      Ok (Assign (name, e))
    | Lx.LBRACK ->
      let* () = advance st in
      let* idx = parse_expr st in
      let* () = expect st Lx.RBRACK ~what:"array store" in
      (match st.tok with
      | Lx.ASSIGN ->
        let* () = advance st in
        let* e = parse_expr st in
        let* () = expect st Lx.SEMI ~what:"array store" in
        Ok (Store (name, idx, e))
      | _ -> Loc.error st.tok_loc "expected '=' after indexed l-value")
    | Lx.LPAREN ->
      (* call statement: re-parse via primary path *)
      let* () = advance st in
      let* args =
        if st.tok = Lx.RPAREN then Ok []
        else begin
          let rec go acc =
            let* e = parse_expr st in
            if st.tok = Lx.COMMA then
              let* () = advance st in
              go (e :: acc)
            else Ok (List.rev (e :: acc))
          in
          go []
        end
      in
      let* () = expect st Lx.RPAREN ~what:"call" in
      let* () = expect st Lx.SEMI ~what:"call statement" in
      Ok (Expr (Call (name, args)))
    | tok ->
      Loc.error st.tok_loc "expected '=', '[' or '(' after identifier, found %a"
        Lx.pp_token tok)
  | tok -> Loc.error st.tok_loc "expected statement, found %a" Lx.pp_token tok

and parse_for_header st =
  let* () = advance st in
  let* () = expect st Lx.LPAREN ~what:"for" in
  let* init =
    let* name = expect_ident st ~what:"for initialiser" in
    let* () = expect st Lx.ASSIGN ~what:"for initialiser" in
    let* e = parse_expr st in
    Ok (Assign (name, e))
  in
  let* () = expect st Lx.SEMI ~what:"for" in
  let* cond = parse_expr st in
  let* () = expect st Lx.SEMI ~what:"for" in
  let* step =
    let* name = expect_ident st ~what:"for step" in
    let* () = expect st Lx.ASSIGN ~what:"for step" in
    let* e = parse_expr st in
    Ok (Assign (name, e))
  in
  let* () = expect st Lx.RPAREN ~what:"for" in
  Ok (init, cond, step)

and parse_block st =
  let* () = expect st Lx.LBRACE ~what:"block" in
  let rec go acc =
    if st.tok = Lx.RBRACE then begin
      let* () = advance st in
      Ok (List.rev acc)
    end
    else
      let* s = parse_stmt st in
      go (s :: acc)
  in
  go []

and parse_block_or_stmt st =
  if st.tok = Lx.LBRACE then parse_block st
  else
    let* s = parse_stmt st in
    Ok [ s ]

(* The structured region after a parallel pragma: either a for-loop whose
   body is a single __asm block (one shred per iteration, Figure 6), or a
   bare __asm block with num_threads(N). Both may be wrapped in braces. *)
and parse_parallel st pragma =
  let* wrapped =
    if st.tok = Lx.LBRACE then
      let* () = advance st in
      Ok true
    else Ok false
  in
  let* region =
    match st.tok with
    | Lx.KW "for" -> (
      let* init, cond, step = parse_for_header st in
      let* loop_var, lo =
        match init with
        | Assign (v, e) -> Ok (v, e)
        | _ -> Loc.error pragma.ploc "parallel for initialiser must be v = e"
      in
      let* hi =
        match cond with
        | Binop (Lt, Var v, e) when v = loop_var -> Ok e
        | _ ->
          Loc.error pragma.ploc
            "parallel for condition must be '%s < bound'" loop_var
      in
      let* () =
        match step with
        | Assign (v, Binop (Add, Var v', Int 1l)) when v = loop_var && v' = loop_var
          ->
          Ok ()
        | _ ->
          Loc.error pragma.ploc "parallel for step must be '%s = %s + 1'"
            loop_var loop_var
      in
      let* asm_text, asm_loc = parse_asm_block st in
      Ok { pragma; loop_var; lo; hi; asm_text; asm_loc })
    | Lx.ASM -> (
      let n =
        List.find_map
          (function Num_threads e -> Some e | _ -> None)
          pragma.clauses
      in
      match n with
      | None ->
        Loc.error pragma.ploc
          "a bare __asm parallel region requires num_threads(...)"
      | Some n ->
        let* asm_text, asm_loc = parse_asm_block_after_kw st in
        Ok { pragma; loop_var = "_shred"; lo = Int 0l; hi = n; asm_text; asm_loc })
    | tok ->
      Loc.error st.tok_loc
        "parallel region must be a for loop over __asm or an __asm block, \
         found %a"
        Lx.pp_token tok
  in
  let* () =
    if wrapped then expect st Lx.RBRACE ~what:"parallel region" else Ok ()
  in
  Ok (Parallel region)

and parse_asm_block st =
  match st.tok with
  | Lx.ASM -> parse_asm_block_after_kw st
  | tok ->
    Loc.error st.tok_loc "parallel loop body must be an __asm block, found %a"
      Lx.pp_token tok

and parse_asm_block_after_kw st =
  (* [st.tok] is ASM; the next token must be '{'. Once '{' is the current
     token the lexer's cursor sits just past it, so the raw slurp picks up
     exactly the assembler text. *)
  let* () = advance st in
  match st.tok with
  | Lx.LBRACE ->
    let* text, loc = Lx.raw_braced_block st.lx in
    let* () = advance st in
    Ok (text, loc)
  | tok -> Loc.error st.tok_loc "expected '{' after __asm, found %a" Lx.pp_token tok

(* ---- program ---- *)

let parse_global st =
  let* () = advance st (* 'int' *) in
  let* name = expect_ident st ~what:"global declaration" in
  match st.tok with
  | Lx.LBRACK -> (
    let* () = advance st in
    match st.tok with
    | Lx.INT n when Int32.to_int n > 0 ->
      let* () = advance st in
      let* () = expect st Lx.RBRACK ~what:"array declaration" in
      let* () = expect st Lx.SEMI ~what:"array declaration" in
      Ok (Garray (name, Int32.to_int n))
    | _ -> Loc.error st.tok_loc "array size must be a positive integer literal")
  | Lx.ASSIGN -> (
    let* () = advance st in
    match st.tok with
    | Lx.INT v ->
      let* () = advance st in
      let* () = expect st Lx.SEMI ~what:"global declaration" in
      Ok (Gvar (name, Some v))
    | _ -> Loc.error st.tok_loc "global initialiser must be an integer literal")
  | Lx.SEMI ->
    let* () = advance st in
    Ok (Gvar (name, None))
  | tok ->
    Loc.error st.tok_loc "expected '[', '=' or ';' after global name, found %a"
      Lx.pp_token tok

let parse ~file src =
  let lx = Lx.create ~file src in
  let st = { lx; tok = Lx.EOF; tok_loc = Loc.dummy } in
  let* () = advance st in
  let globals = ref [] in
  let funcs = ref [] in
  let rec go () =
    match st.tok with
    | Lx.EOF -> Ok ()
    | Lx.KW "int" | Lx.KW "void" -> (
      (* lookahead: 'int name (' is a function, otherwise a global *)
      let is_void = st.tok = Lx.KW "void" in
      let save_pos_tok = st.tok in
      ignore save_pos_tok;
      let floc = st.tok_loc in
      let* () = advance st in
      let* name = expect_ident st ~what:"top-level declaration" in
      match st.tok with
      | Lx.LPAREN ->
        let* () = advance st in
        let* params =
          if st.tok = Lx.RPAREN then Ok []
          else begin
            let rec go acc =
              let* () = expect st (Lx.KW "int") ~what:"parameter list" in
              let* p = expect_ident st ~what:"parameter list" in
              if st.tok = Lx.COMMA then
                let* () = advance st in
                go (p :: acc)
              else Ok (List.rev (p :: acc))
            in
            go []
          end
        in
        let* () = expect st Lx.RPAREN ~what:"function declaration" in
        let* body = parse_block st in
        funcs := { fname = name; params; body; floc } :: !funcs;
        ignore is_void;
        go ()
      | _ when not is_void -> (
        (* re-dispatch as global: mimic parse_global after name *)
        match st.tok with
        | Lx.LBRACK -> (
          let* () = advance st in
          match st.tok with
          | Lx.INT n when Int32.to_int n > 0 ->
            let* () = advance st in
            let* () = expect st Lx.RBRACK ~what:"array declaration" in
            let* () = expect st Lx.SEMI ~what:"array declaration" in
            globals := Garray (name, Int32.to_int n) :: !globals;
            go ()
          | _ ->
            Loc.error st.tok_loc "array size must be a positive integer literal")
        | Lx.ASSIGN -> (
          let* () = advance st in
          match st.tok with
          | Lx.INT v ->
            let* () = advance st in
            let* () = expect st Lx.SEMI ~what:"global declaration" in
            globals := Gvar (name, Some v) :: !globals;
            go ()
          | _ ->
            Loc.error st.tok_loc "global initialiser must be an integer literal")
        | Lx.SEMI ->
          let* () = advance st in
          globals := Gvar (name, None) :: !globals;
          go ()
        | tok ->
          Loc.error st.tok_loc
            "expected '[', '=', ';' or '(' after top-level name, found %a"
            Lx.pp_token tok)
      | tok ->
        Loc.error st.tok_loc "void declaration must be a function, found %a"
          Lx.pp_token tok)
    | tok ->
      Loc.error st.tok_loc "expected top-level declaration, found %a"
        Lx.pp_token tok
  in
  let* () = go () in
  ignore parse_global;
  Ok { globals = List.rev !globals; funcs = List.rev !funcs }
