open Exochi_memory
module Machine = Exochi_cpu.Machine

type t = {
  platform : Exo_platform.t;
  rt : Chi_runtime.t;
  compiled : Chilite_compile.compiled;
  loaded : Machine.loaded;
  global_addrs : (string * int) list;
  progs : Exochi_isa.X3k_ast.program array; (* section id -> program *)
  profile : Exochi_obs.Profile.t option;
  mutable descriptors : Chi_descriptor.t list;
  mutable team : Chi_runtime.team option;
  mutable output_rev : int list;
}

let stack_bytes = 256 * 1024

let load ?profile ~platform (compiled : Chilite_compile.compiled) =
  let aspace = Exo_platform.aspace platform in
  (* globals *)
  let global_addrs =
    List.map
      (fun (name, bytes) ->
        (name, Address_space.alloc aspace ~name ~bytes ~align:64))
      compiled.Chilite_compile.globals
  in
  List.iter
    (fun (name, v) ->
      Address_space.write_u32 aspace (List.assoc name global_addrs) v)
    compiled.Chilite_compile.global_init;
  (* code *)
  let via =
    match Chi_fatbin.find_via32 compiled.Chilite_compile.fatbin "main" with
    | Ok p -> p
    | Error e -> failwith e
  in
  let progs =
    Array.of_list
      (List.map
         (fun (s : Chilite_compile.section_info) ->
           match
             Chi_fatbin.find_x3k compiled.Chilite_compile.fatbin
               s.Chilite_compile.sec_name
           with
           | Ok p -> p
           | Error e -> failwith e)
         compiled.Chilite_compile.sections)
  in
  let stack = Address_space.alloc aspace ~name:"stack" ~bytes:stack_bytes ~align:4096 in
  let cpu = Exo_platform.cpu platform in
  Machine.set_reg cpu Exochi_isa.Via32_ast.ESP
    (Int32.of_int (stack + stack_bytes - 64));
  let loaded = Machine.load_program via ~symbols:global_addrs in
  (* exo frames anchor to the .chi parallel section that produced the
     program: "exo <section> (<file>:<line>)" *)
  Option.iter
    (fun p ->
      Exo_profiler.attach_gpu p
        (Exo_platform.gpu platform)
        ~root_of:(fun prog ->
          match
            List.find_opt
              (fun (s : Chilite_compile.section_info) ->
                s.Chilite_compile.sec_name = prog.Exochi_isa.X3k_ast.name)
              compiled.Chilite_compile.sections
          with
          | Some s ->
            Printf.sprintf "exo %s (%s:%d)" s.Chilite_compile.sec_name
              s.Chilite_compile.ploc.Exochi_isa.Loc.file
              s.Chilite_compile.ploc.Exochi_isa.Loc.line
          | None -> "exo " ^ prog.Exochi_isa.X3k_ast.name))
    profile;
  {
    platform;
    rt = Chi_runtime.create ~platform ();
    compiled;
    loaded;
    global_addrs;
    progs;
    profile;
    descriptors = [];
    team = None;
    output_rev = [];
  }

let runtime t = t.rt
let output t = List.rev t.output_rev
let global_addr t name = List.assoc_opt name t.global_addrs

let read_global t name ~index =
  match global_addr t name with
  | Some base ->
    Address_space.read_u32 (Exo_platform.aspace t.platform) (base + (4 * index))
  | None -> failwith ("unknown global " ^ name)

let write_global t name ~index v =
  match global_addr t name with
  | Some base ->
    Address_space.write_u32 (Exo_platform.aspace t.platform) (base + (4 * index)) v
  | None -> failwith ("unknown global " ^ name)

(* Read intrinsic argument [i] of [n] (pushed left to right). *)
let arg t cpu ~n i =
  let esp = Int32.to_int (Machine.get_reg cpu Exochi_isa.Via32_ast.ESP) in
  Int32.to_int
    (Address_space.read_u32 (Exo_platform.aspace t.platform)
       (esp + (4 * (n - 1 - i))))

let intrinsic t name cpu =
  match name with
  | "chi_desc" ->
    let idx = arg t cpu ~n:4 0 in
    let mode = arg t cpu ~n:4 1 in
    let width = arg t cpu ~n:4 2 in
    let height = arg t cpu ~n:4 3 in
    let gname, _ =
      try List.nth t.compiled.Chilite_compile.globals idx
      with _ -> failwith "chi_desc: bad global index"
    in
    let base = List.assoc gname t.global_addrs in
    let mode =
      match mode with
      | 0 -> Chi_descriptor.Input
      | 1 -> Chi_descriptor.Output
      | 2 -> Chi_descriptor.In_out
      | m -> failwith (Printf.sprintf "chi_desc: bad mode %d" m)
    in
    let d =
      Chi_descriptor.alloc t.platform ~name:gname ~base ~width ~height ~bpp:4
        ~mode ()
    in
    t.descriptors <- d :: t.descriptors
  | "chi_parallel" ->
    (* stack top down: nfp, fp[nfp-1..0], nowait, hi, lo, sec *)
    let esp = Int32.to_int (Machine.get_reg cpu Exochi_isa.Via32_ast.ESP) in
    let aspace = Exo_platform.aspace t.platform in
    let peek off = Int32.to_int (Address_space.read_u32 aspace (esp + off)) in
    let nfp = peek 0 in
    let fps = Array.init nfp (fun k -> peek (4 * (nfp - k))) in
    let nowait = peek (4 * (nfp + 1)) <> 0 in
    let hi = peek (4 * (nfp + 2)) in
    let lo = peek (4 * (nfp + 3)) in
    let sec = peek (4 * (nfp + 4)) in
    if sec < 0 || sec >= Array.length t.progs then
      failwith "chi_parallel: bad section id";
    if hi < lo then failwith "chi_parallel: empty iteration space";
    let info = List.nth t.compiled.Chilite_compile.sections sec in
    let descriptors =
      List.filter
        (fun d ->
          List.mem
            d.Chi_descriptor.surface.Surface.name
            info.Chilite_compile.shared)
        t.descriptors
    in
    if hi > lo then begin
      let team =
        Chi_runtime.parallel t.rt ~prog:t.progs.(sec) ~descriptors
          ~num_threads:(hi - lo)
          ~params:(fun i -> Array.append [| lo + i |] fps)
          ~master_nowait:nowait ()
      in
      if nowait then t.team <- Some team
    end
  | "chi_wait" -> (
    match t.team with
    | Some team ->
      Chi_runtime.wait t.rt team;
      t.team <- None
    | None -> ())
  | "print_int" ->
    let v = arg t cpu ~n:1 0 in
    t.output_rev <- v :: t.output_rev
  | other -> failwith ("unknown runtime entry point " ^ other)

let intrinsic_handler t name cpu = intrinsic t name cpu
let loaded t = t.loaded

let run t =
  let cpu = Exo_platform.cpu t.platform in
  (* while a master_nowait team is outstanding, keep the exo-sequencers
     running concurrently with the IA32 master *)
  let last_sync = ref (Machine.now_ps cpu) in
  let poll cpu =
    if t.team <> None && Machine.now_ps cpu - !last_sync > 2_000_000 then begin
      last_sync := Machine.now_ps cpu;
      ignore
        (Exochi_accel.Gpu.run_until (Exo_platform.gpu t.platform) !last_sync)
    end
  in
  let on_instr =
    Option.map (fun p -> Exo_profiler.ia32_on_instr p t.loaded) t.profile
  in
  match
    Machine.run cpu ?on_instr t.loaded ~poll ~entry:0
      ~intrinsics:(fun name cpu -> intrinsic t name cpu)
  with
  | Machine.Halted | Machine.Ret_to_host ->
    (* an outstanding nowait team still completes at program exit *)
    (match t.team with
    | Some team ->
      Chi_runtime.wait t.rt team;
      t.team <- None
    | None -> ())
  | Machine.Fuel_exhausted -> failwith "CHI-lite program ran out of fuel"
  | Machine.Paused _ -> assert false
