(** Loader and execution environment for compiled CHI-lite programs.

    [load] places the program's globals in the shared virtual address
    space, decodes the fat binary's sections, and wires the runtime entry
    points ([chi_desc], [chi_parallel], [chi_wait], [print_int]) to the
    CHI runtime; [run] executes [main] on the simulated IA32 sequencer,
    dispatching any parallel regions to the exo-sequencers.

    Descriptor modes in CHI-lite source: [0] input, [1] output,
    [2] in/out. *)

type t

(** [load ?profile ~platform compiled] prepares the program. When
    [profile] is given, an exact attribution profile is collected during
    {!run}: X3K cost lands under ["exo <section> (<file>:<line>)"] roots
    (one per [#pragma omp parallel] section, anchored to its source
    line) and IA32 cost under ["ia32 main"] ({!Exo_profiler}). *)
val load :
  ?profile:Exochi_obs.Profile.t ->
  platform:Exo_platform.t ->
  Chilite_compile.compiled ->
  t
val runtime : t -> Chi_runtime.t

(** Run [main] to completion. Raises [Failure] on runtime errors (unknown
    section, bad descriptor index, ...). *)
val run : t -> unit

(** Values printed with [print_int], in program order. *)
val output : t -> int list

(** The runtime-entry-point dispatcher, exposed so debuggers can drive
    the machine themselves ({!Chi_debug.run_cpu} takes an [intrinsics]
    callback). *)
val intrinsic_handler : t -> string -> Exochi_cpu.Machine.t -> unit

(** The loaded VIA32 image (for breakpoints by instruction index and
    source-line mapping). *)
val loaded : t -> Exochi_cpu.Machine.loaded

(** Address of a global, for test harnesses to populate and inspect. *)
val global_addr : t -> string -> int option

(** Convenience accessors for int-array globals. *)
val read_global : t -> string -> index:int -> int32

val write_global : t -> string -> index:int -> int32 -> unit
