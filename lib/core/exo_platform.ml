open Exochi_memory
module Fault_plan = Exochi_faults.Fault_plan
module Trace = Exochi_obs.Trace

type costs = {
  uli_ps : int;
  atr_service_ps : int;
  gtt_fetch_ps : int;
  ceh_base_ps : int;
  ceh_per_lane_ps : int;
  signal_ps : int;
  dispatch_cpu_ps : int;
}

let default_costs =
  {
    uli_ps = 120_000; (* ~290 CPU cycles to take a user-level interrupt *)
    atr_service_ps = 180_000; (* walk (2 reads) + transcode + TLB insert *)
    gtt_fetch_ps = 45_000; (* memory-resident GTT entry fetch, ~30 GPU cyc *)
    ceh_base_ps = 250_000;
    ceh_per_lane_ps = 25_000;
    signal_ps = 40_000; (* SIGNAL doorbell *)
    dispatch_cpu_ps = 12_000; (* amortised batch enqueue of one descriptor *)
  }

type protocol_mode = Strict | Count_only

exception Protocol_violation of string

type t = {
  mem : Phys_mem.t;
  aspace : Address_space.t;
  bus : Bus.t; (* device 0's memory link; the CPU also charges here *)
  buses : Bus.t array; (* one private link per X3K device *)
  cpu : Exochi_cpu.Machine.t;
  cpu_mhz : int;
  devices : int;
  mutable gpus : Exochi_accel.Gpu.t array; (* tied after creation *)
  mutable backends : Exochi_accel.Sequencer_backend.t array; (* X3K rows *)
  memmodel : Memmodel.config;
  mcosts : Memmodel.costs;
  costs : costs;
  protocol : protocol_mode;
  gtt_enabled : bool;
  gtt : (int, Pte.X3k.t) Hashtbl.t; (* vpage -> transcoded entry *)
  (* per-device fault streams: index 0 is the caller's plan object
     (shared with every layer that reads its counters); device d > 0
     draws from an independent stream derived from the same seed *)
  fault_plans : Fault_plan.t option array;
  trace : Trace.sink option;
  mutable surfaces : Surface.t list;
  mutable atr_proxies : int;
  mutable gtt_hits : int;
  mutable ceh_proxies : int;
  mutable violations : int;
  mutable atr_transient_retries : int;
  mutable gtt_evictions : int;
  mutable ceh_spurious : int;
  (* per-device completion callbacks, so concurrently placed teams on
     different devices each observe only their own retirements *)
  on_shred_done :
    (Exochi_accel.Gpu.shred -> now_ps:int -> unit) array;
}

let aspace t = t.aspace
let cpu t = t.cpu
let gpu t = t.gpus.(0)
let gpu_dev t d = t.gpus.(d)
let devices t = t.devices
let bus t = t.bus
let bus_dev t d = t.buses.(d)
let memmodel t = t.memmodel
let model_costs t = t.mcosts
let costs t = t.costs
let trace t = t.trace

(* Proxy-side trace emission: ATR walks, CEH emulation and prewalks all
   execute on the IA32 sequencer, so their events land on its track;
   [dev] records which device was being serviced. Reads state only —
   the no-sink path is one [match]. *)
let pev t ?(dev = 0) ~ts ?dur kind =
  match t.trace with
  | None -> ()
  | Some sink -> Trace.emit sink ~ts_ps:ts ?dur_ps:dur ~dev ~seq:Trace.Ia32 kind

(* ---- surface registry ---- *)

let register_surface t s = t.surfaces <- s :: t.surfaces

let unregister_surface t s =
  t.surfaces <- List.filter (fun s' -> s'.Surface.id <> s.Surface.id) t.surfaces

let tiling_for t ~vaddr =
  match List.find_opt (fun s -> Surface.contains s ~vaddr) t.surfaces with
  | Some s -> s.Surface.tiling
  | None -> Pte.X3k.Linear

(* ---- ATR ---- *)

(* Full proxy round trip for one page: user-level interrupt on the IA32
   sequencer, page-table walk (possibly faulting the page in first),
   PTE transcode, exo-TLB/GTT insert. An injected transient failure
   loses the round trip in flight; the proxy handler notices and
   retries (bounded, so a pathological plan cannot live-lock it). *)
let rec atr_proxy ?(attempt = 0) t ~dev ~vpage ~now_ps =
  t.atr_proxies <- t.atr_proxies + 1;
  let transient =
    attempt < 5
    &&
    match t.fault_plans.(dev) with
    | Some plan -> Fault_plan.decide plan Fault_plan.Atr_transient
    | None -> false
  in
  if transient then begin
    let wasted = t.costs.uli_ps + t.costs.atr_service_ps in
    pev t ~dev ~ts:now_ps (Trace.Fault_injected { cls = "atr-transient" });
    pev t ~dev ~ts:now_ps ~dur:wasted (Trace.Atr_transient { vpage; attempt });
    Exochi_cpu.Machine.add_overhead_ps t.cpu wasted;
    t.atr_transient_retries <- t.atr_transient_retries + 1;
    atr_proxy ~attempt:(attempt + 1) t ~dev ~vpage ~now_ps:(now_ps + wasted)
  end
  else begin
  let vaddr = vpage lsl Phys_mem.page_shift in
  let fault_ps =
    match Address_space.fault_in t.aspace ~vaddr with
    | `Already -> 0
    | `Faulted -> 1_500_000 (* OS page-fault service by proxy *)
    | exception Address_space.Segfault _ -> -1
  in
  if fault_ps < 0 then (None, now_ps)
  else begin
    match Page_table.walk (Address_space.page_table t.aspace) ~vpage with
    | Page_table.Mapped pte ->
      let x3k = Pte.transcode pte ~tiling:(tiling_for t ~vaddr) in
      if t.gtt_enabled then Hashtbl.replace t.gtt vpage x3k;
      let service = t.costs.uli_ps + t.costs.atr_service_ps + fault_ps in
      pev t ~dev ~ts:now_ps ~dur:service
        (Trace.Atr_proxy { vpage; faulted_in = fault_ps > 0 });
      (* the CPU pays for servicing the interrupt *)
      Exochi_cpu.Machine.add_overhead_ps t.cpu service;
      (Some x3k, now_ps + service)
    | _ -> (None, now_ps)
  end
  end

let atr_hook t ~dev ~vpage ~now_ps =
  match Hashtbl.find_opt t.gtt vpage with
  | Some pte ->
    let corrupt =
      match t.fault_plans.(dev) with
      | Some plan -> Fault_plan.decide plan Fault_plan.Gtt_corrupt
      | None -> false
    in
    if corrupt then begin
      (* the shadow entry is gone/corrupt: drop it and pay the full
         proxy re-walk, which also repairs the GTT *)
      pev t ~dev ~ts:now_ps (Trace.Fault_injected { cls = "gtt-corrupt" });
      Hashtbl.remove t.gtt vpage;
      t.gtt_evictions <- t.gtt_evictions + 1;
      atr_proxy t ~dev ~vpage ~now_ps
    end
    else begin
      t.gtt_hits <- t.gtt_hits + 1;
      pev t ~dev ~ts:now_ps ~dur:t.costs.gtt_fetch_ps
        (Trace.Atr_gtt_hit { vpage });
      (Some pte, now_ps + t.costs.gtt_fetch_ps)
    end
  | None -> atr_proxy t ~dev ~vpage ~now_ps

let prewalk t ~vaddr ~len =
  if len > 0 && t.gtt_enabled then begin
    let first = vaddr lsr Phys_mem.page_shift in
    let last = (vaddr + len - 1) lsr Phys_mem.page_shift in
    let fresh = ref 0 in
    for vpage = first to last do
      if not (Hashtbl.mem t.gtt vpage) then begin
        incr fresh;
        let va = vpage lsl Phys_mem.page_shift in
        ignore (Address_space.fault_in t.aspace ~vaddr:va);
        match Page_table.walk (Address_space.page_table t.aspace) ~vpage with
        | Page_table.Mapped pte ->
          Hashtbl.replace t.gtt vpage
            (Pte.transcode pte ~tiling:(tiling_for t ~vaddr:va))
        | _ -> ()
      end
    done;
    if !fresh > 0 then begin
      (* one ULI covers the whole batch; per-page walk+transcode ~40ns *)
      let service = t.costs.uli_ps + (!fresh * 40_000) in
      pev t
        ~ts:(Exochi_cpu.Machine.now_ps t.cpu)
        ~dur:service
        (Trace.Atr_prewalk { pages = !fresh });
      Exochi_cpu.Machine.add_time_ps t.cpu service
    end
  end

let invalidate_gtt t =
  Hashtbl.reset t.gtt;
  Array.iter (fun g -> Tlb.flush (Exochi_accel.Gpu.tlb g)) t.gpus

(* ---- CEH ---- *)

let ceh_hook t ~dev (req : Exochi_accel.Gpu.fault_request) ~now_ps =
  t.ceh_proxies <- t.ceh_proxies + 1;
  let open Exochi_isa.X3k_ast in
  let lanes = Array.length req.lane_a in
  let results =
    match req.fault_op with
    | Fdiv ->
      Array.init lanes (fun j ->
          Exochi_accel.Lane.fdiv_ieee req.lane_a.(j) req.lane_b.(j))
    | Fsqrt ->
      Array.init lanes (fun j -> Exochi_accel.Lane.fsqrt_ieee req.lane_a.(j))
    | Dpadd -> Exochi_accel.Lane.dpadd_pairs req.lane_a req.lane_b
    | op ->
      invalid_arg
        (Printf.sprintf "CEH: unexpected faulting op %s" (opcode_name op))
  in
  let service =
    t.costs.uli_ps + t.costs.ceh_base_ps + (lanes * t.costs.ceh_per_lane_ps)
  in
  pev t ~dev ~ts:now_ps ~dur:service
    (Trace.Ceh_proxy { op = opcode_name req.fault_op; lanes });
  Exochi_cpu.Machine.add_overhead_ps t.cpu service;
  (results, now_ps + service)

(* An injected spurious CEH trap: the handler takes the ULI, decodes,
   finds nothing to emulate and resumes the shred. *)
let ceh_spurious_hook t ~dev ~now_ps =
  t.ceh_spurious <- t.ceh_spurious + 1;
  let service = t.costs.uli_ps + t.costs.ceh_base_ps in
  pev t ~dev ~ts:now_ps ~dur:service Trace.Ceh_spurious;
  Exochi_cpu.Machine.add_overhead_ps t.cpu service;
  now_ps + service

(* ---- memory-model hook ---- *)

let mem_delay_hook t ~paddr ~bytes ~write ~now_ps =
  ignore now_ps;
  match t.memmodel with
  | Memmodel.Data_copy -> 0
  | Memmodel.Cc_shared ->
    (* Coherence probe of the CPU caches for the first line touched. A
       dirty hit is supplied cache-to-cache (it does not add a second bus
       transfer — the caller's access charges the bus); the extra delay
       is per-thread latency, hidden by switch-on-stall multithreading. *)
    ignore now_ps;
    ignore bytes;
    let line = paddr land lnot 63 in
    let s1 = Cache.snoop (Exochi_cpu.Machine.l1 t.cpu) ~line_addr:line in
    let s2 = Cache.snoop (Exochi_cpu.Machine.l2 t.cpu) ~line_addr:line in
    let dirty = s1 = `Dirty || s2 = `Dirty in
    let present = dirty || s1 = `Clean || s2 = `Clean in
    if dirty then t.mcosts.Memmodel.snoop_ps * 2
    else if present then t.mcosts.Memmodel.snoop_ps
    else 0
  | Memmodel.Non_cc_shared ->
    if not write then begin
      (* the software protocol requires the producer to have flushed this
         line before any exo-sequencer reads it; a read of a CPU-dirty
         line means the flush discipline was broken *)
      let line = paddr land lnot 63 in
      let dirty =
        Cache.probe (Exochi_cpu.Machine.l1 t.cpu) ~line_addr:line = `Dirty
        || Cache.probe (Exochi_cpu.Machine.l2 t.cpu) ~line_addr:line = `Dirty
      in
      if dirty then begin
        t.violations <- t.violations + 1;
        if t.protocol = Strict then
          raise
            (Protocol_violation
               (Printf.sprintf
                  "exo-sequencer read of CPU-dirty line %#x without flush"
                  line))
      end;
      ignore bytes;
      0
    end
    else 0

let reset_counters t =
  t.atr_proxies <- 0;
  t.gtt_hits <- 0;
  t.ceh_proxies <- 0;
  t.violations <- 0;
  t.atr_transient_retries <- 0;
  t.gtt_evictions <- 0;
  t.ceh_spurious <- 0

let atr_proxies t = t.atr_proxies
let gtt_hits t = t.gtt_hits
let ceh_proxies t = t.ceh_proxies
let protocol_violations t = t.violations
let atr_transient_retries t = t.atr_transient_retries
let gtt_evictions t = t.gtt_evictions
let ceh_spurious t = t.ceh_spurious
let fault_plan t = t.fault_plans.(0)
let fault_plan_dev t d = t.fault_plans.(d)

(* ---- construction ---- *)

(* Per-device fault-stream derivation: device 0 keeps the caller's plan
   object (so its injection/draw counters stay externally visible);
   device d > 0 draws from an independent splitmix64 stream derived from
   the same seed and rates. The multiplier is distinct from the
   runtime's backoff-jitter derivation, so no two streams alias. *)
let derived_plan base ~dev =
  match base with
  | None -> None
  | Some p when dev = 0 -> Some p
  | Some p ->
    Some
      (Fault_plan.create
         ~seed:
           (Int64.logxor (Fault_plan.seed p)
              (Int64.mul (Int64.of_int dev) 0xD1B54A32D192ED03L))
         ~rates:(Fault_plan.rates p) ())

let create ?(frames = 64 * 1024) ?cpu_config ?gpu_config ?(bus_gbps = 8.0)
    ?(bus_latency_ps = 90_000) ?(memmodel = Memmodel.Cc_shared)
    ?(model_costs = Memmodel.default_costs) ?(costs = default_costs)
    ?(protocol = Count_only) ?(gtt_enabled = true) ?(devices = 1) ?fault_plan
    ?trace () =
  if devices <= 0 then invalid_arg "Exo_platform.create: devices";
  let mem = Phys_mem.create ~frames in
  let aspace = Address_space.create mem in
  (* one private memory link per X3K device; the CPU shares device 0's *)
  let buses =
    Array.init devices (fun _ ->
        Bus.create ~gbps:bus_gbps ~latency_ps:bus_latency_ps)
  in
  let bus = buses.(0) in
  let cpu = Exochi_cpu.Machine.create ?config:cpu_config ~aspace ~bus () in
  let cpu_mhz =
    (Option.value cpu_config ~default:Exochi_cpu.Machine.default_config)
      .Exochi_cpu.Machine.clock_mhz
  in
  (* one plan drives every layer: an explicit [?fault_plan] wins, else a
     plan carried in [gpu_config] is adopted platform-wide *)
  let gpu_base =
    Option.value gpu_config ~default:Exochi_accel.Gpu.default_config
  in
  let fault_plan =
    match fault_plan with
    | Some _ -> fault_plan
    | None -> gpu_base.Exochi_accel.Gpu.fault_plan
  in
  (* same resolution as the fault plan: an explicit [?trace] wins, else a
     sink carried in [gpu_config] is adopted platform-wide *)
  let trace =
    match trace with
    | Some _ -> trace
    | None -> gpu_base.Exochi_accel.Gpu.trace
  in
  Option.iter
    (fun sink ->
      Trace.set_topology sink ~devices ~eus:gpu_base.Exochi_accel.Gpu.eus
        ~threads_per_eu:gpu_base.Exochi_accel.Gpu.threads_per_eu ())
    trace;
  let fault_plans = Array.init devices (fun d -> derived_plan fault_plan ~dev:d) in
  let t =
    {
      mem;
      aspace;
      bus;
      buses;
      cpu;
      cpu_mhz;
      devices;
      gpus = [||];
      backends = [||];
      memmodel;
      mcosts = model_costs;
      costs;
      protocol;
      gtt_enabled;
      gtt = Hashtbl.create 4096;
      fault_plans;
      trace;
      surfaces = [];
      atr_proxies = 0;
      gtt_hits = 0;
      ceh_proxies = 0;
      violations = 0;
      atr_transient_retries = 0;
      gtt_evictions = 0;
      ceh_spurious = 0;
      on_shred_done = Array.make devices (fun _ ~now_ps:_ -> ());
    }
  in
  let hooks_for dev =
    {
      Exochi_accel.Gpu.atr =
        (fun ~vpage ~now_ps -> atr_hook t ~dev ~vpage ~now_ps);
      ceh = (fun req ~now_ps -> ceh_hook t ~dev req ~now_ps);
      ceh_spurious = (fun ~now_ps -> ceh_spurious_hook t ~dev ~now_ps);
      mem_delay =
        (fun ~paddr ~bytes ~write ~now_ps ->
          mem_delay_hook t ~paddr ~bytes ~write ~now_ps);
      on_shred_done = (fun sh ~now_ps -> t.on_shred_done.(dev) sh ~now_ps);
    }
  in
  t.gpus <-
    Array.init devices (fun dev ->
        let gpu_cfg =
          {
            gpu_base with
            Exochi_accel.Gpu.fault_plan = fault_plans.(dev);
            trace;
            dev;
          }
        in
        Exochi_accel.Gpu.create ~config:gpu_cfg ~aspace ~bus:buses.(dev)
          ~hooks:(hooks_for dev) ());
  t.backends <- Array.map Exochi_accel.Sequencer_backend.of_gpu t.gpus;
  t

let set_shred_done_callback t f =
  Array.iteri (fun d _ -> t.on_shred_done.(d) <- f) t.on_shred_done

let set_shred_done_callback_dev t ~dev f = t.on_shred_done.(dev) <- f

(* Completion notification for a shred the runtime proxy-executed on the
   IA32 sequencer (graceful-degradation path) — routes through the same
   callback a GPU retirement would. *)
let notify_shred_done ?(dev = 0) t sh ~now_ps = t.on_shred_done.(dev) sh ~now_ps

let sync_gpu_to_cpu t =
  let now = Exochi_cpu.Machine.now_ps t.cpu in
  Array.iter (fun g -> Exochi_accel.Gpu.advance_to_ps g now) t.gpus

(* ---- the device set as Sequencer_backend values ---- *)

let backend t ~dev = t.backends.(dev)

(* X3K devices in index order, then the IA32 master as a
   capability-limited soft backend — "just another sequencer" for the
   device table and the graceful-degradation path. *)
let all_backends t =
  Array.to_list t.backends
  @ [
      Exochi_accel.Sequencer_backend.ia32_soft ~dev:t.devices
        ~clock_mhz:t.cpu_mhz
        ~now_ps:(fun () -> Exochi_cpu.Machine.now_ps t.cpu)
        ~emulate:(fun sh -> Exochi_accel.Gpu.emulate_shred (gpu t) sh)
        ~notify:(fun sh ~now_ps -> notify_shred_done t sh ~now_ps);
    ]

(* Snapshot the memory-system counters into the trace as Chrome counter
   samples — typically called once at the end of a run, before export. *)
let emit_mem_counters t =
  match t.trace with
  | None -> ()
  | Some _ ->
    let ts =
      Array.fold_left
        (fun acc g -> max acc (Exochi_accel.Gpu.now_ps g))
        (Exochi_cpu.Machine.now_ps t.cpu)
        t.gpus
    in
    let c ?dev name value =
      pev t ?dev ~ts (Trace.Counter { counter = name; value })
    in
    (* device 0 keeps the historical counter names; extra devices get a
       ":devN" suffix so a single-device export is byte-identical *)
    Array.iteri
      (fun d g ->
        let n name =
          if d = 0 then name else Printf.sprintf "%s:dev%d" name d
        in
        let gcache = Exochi_accel.Gpu.cache g in
        let gtlb = Exochi_accel.Gpu.tlb g in
        c ~dev:d (n "gpu_cache_hits") (Cache.hits gcache);
        c ~dev:d (n "gpu_cache_misses") (Cache.misses gcache);
        c ~dev:d (n "gpu_cache_writebacks") (Cache.writebacks gcache);
        c ~dev:d (n "gpu_tlb_hits") (Tlb.hits gtlb);
        c ~dev:d (n "gpu_tlb_misses") (Tlb.misses gtlb))
      t.gpus;
    c "cpu_l1_hits" (Cache.hits (Exochi_cpu.Machine.l1 t.cpu));
    c "cpu_l1_misses" (Cache.misses (Exochi_cpu.Machine.l1 t.cpu));
    c "cpu_l2_hits" (Cache.hits (Exochi_cpu.Machine.l2 t.cpu));
    c "cpu_l2_misses" (Cache.misses (Exochi_cpu.Machine.l2 t.cpu));
    Array.iteri
      (fun d b ->
        let n name =
          if d = 0 then name else Printf.sprintf "%s:dev%d" name d
        in
        c ~dev:d (n "bus_bytes") (Bus.total_bytes b);
        c ~dev:d (n "bus_requests") (Bus.total_requests b))
      t.buses

(* The master's team barrier covers the whole device set: it observes
   the last completion across every device, then pays one semaphore
   signal. With one device this is exactly the historical barrier. *)
let barrier t =
  let done_ps =
    Array.fold_left
      (fun acc g ->
        max acc
          (if Exochi_accel.Gpu.quiescent g then
             Exochi_accel.Gpu.last_shred_done g
           else Exochi_accel.Gpu.run_to_quiescence g))
      0 t.gpus
  in
  let arrive = max done_ps (Exochi_cpu.Machine.now_ps t.cpu) + t.costs.signal_ps in
  Exochi_cpu.Machine.advance_to_ps t.cpu arrive;
  arrive
