(** The EXO platform: one OS-managed IA32 sequencer plus 32 exo-sequencers
    behind the MISP exoskeleton, sharing a virtual address space.

    This module wires the CPU and GPU simulators together and implements
    the three EXO architecture mechanisms:

    - {b MISP exoskeleton}: user-level inter-sequencer signalling. Shred
      dispatch and completion notifications are priced as user-level
      interrupts ({!costs}); no OS involvement.
    - {b ATR} (§3.2): the GPU's translation misses are serviced by proxy
      on the CPU — walk the IA32 page table (reads against simulated
      physical memory), transcode the IA32 PTE into the X3K format
      ({!Exochi_memory.Pte.transcode}), install it. A software
      GTT shadow caches transcoded entries so only cold pages pay the
      full proxy round trip, as on real hardware where the driver-built
      GTT backs the TLB.
    - {b CEH} (§3.3): faulting X3K instructions (fdiv by zero, fsqrt of
      negative, the unsupported double-precision [dpadd]) are emulated
      IEEE-correctly on the CPU and the results written back into the
      faulting context.

    It also implements the Figure 8 memory models through the GPU's
    [mem_delay] hook: CC-shared snoops the CPU caches; non-CC-shared
    checks the software flush protocol (reads of CPU-dirty lines are
    protocol violations); data-copy runs the GPU on a private copy. *)

type costs = {
  uli_ps : int; (* user-level interrupt delivery + dispatch *)
  atr_service_ps : int; (* proxy handler body: walk + transcode + insert *)
  gtt_fetch_ps : int; (* GTT shadow hit (no proxy needed) *)
  ceh_base_ps : int; (* CEH proxy fixed cost *)
  ceh_per_lane_ps : int;
  signal_ps : int; (* one SIGNAL instruction / doorbell *)
  dispatch_cpu_ps : int; (* IA32-side work to enqueue one shred *)
}

val default_costs : costs

type protocol_mode = Strict | Count_only

exception Protocol_violation of string

type t

val create :
  ?frames:int ->
  ?cpu_config:Exochi_cpu.Machine.config ->
  ?gpu_config:Exochi_accel.Gpu.config ->
  ?bus_gbps:float ->
  ?bus_latency_ps:int ->
  ?memmodel:Exochi_memory.Memmodel.config ->
  ?model_costs:Exochi_memory.Memmodel.costs ->
  ?costs:costs ->
  ?protocol:protocol_mode ->
  ?gtt_enabled:bool ->
  ?devices:int ->
  ?fault_plan:Exochi_faults.Fault_plan.t ->
  ?trace:Exochi_obs.Trace.sink ->
  unit ->
  t
(** [gtt_enabled] (default true): cache transcoded entries in a
    memory-resident GTT shadow so only cold pages pay the full ATR proxy
    round trip. Disabling it (an ablation) makes every exo TLB miss a
    user-level-interrupt proxy execution.

    [devices] (default 1) builds an indexed device set: N identically
    configured X3K instances with independent EPROC state, exo TLBs,
    caches, private memory links and per-device fault streams, all
    sharing the virtual address space, the proxy GTT shadow and the IA32
    master. Device 0 is the historical single device: a [devices:1]
    platform is bit- and time-identical to one built before the device
    set existed.

    [fault_plan] installs a deterministic fault-injection plan across
    every layer (GPU dispatch/doorbells/instructions, ATR proxy, GTT
    shadow). Omitted: pristine hardware, with bit-identical behaviour to
    a zero-rate plan.

    [trace] installs an exo-trace sink platform-wide (the GPU, the ATR
    and CEH proxy paths, and the CHI runtime all emit into it); like the
    fault plan, an explicit argument wins over a sink carried in
    [gpu_config]. The sink's topology is set from the GPU configuration
    so exporters know the full track layout. Omitted: tracing off, with
    zero overhead and bit-identical behaviour to a traced run. *)

val aspace : t -> Exochi_memory.Address_space.t
val cpu : t -> Exochi_cpu.Machine.t

(** Device 0 — the historical accessor every single-device caller uses. *)
val gpu : t -> Exochi_accel.Gpu.t

(** {1 The device set} *)

val devices : t -> int
val gpu_dev : t -> int -> Exochi_accel.Gpu.t

(** Device [dev] as a {!Exochi_accel.Sequencer_backend.t} value (built
    once at platform creation; pure delegation). *)
val backend : t -> dev:int -> Exochi_accel.Sequencer_backend.t

(** Every backend in the platform: the X3K devices in index order
    followed by the IA32 master as a capability-limited soft backend
    (the graceful-degradation endpoint, listed as just another
    sequencer). *)
val all_backends : t -> Exochi_accel.Sequencer_backend.t list

(** Device [dev]'s fault stream ([fault_plan_dev t 0 == fault_plan t]). *)
val fault_plan_dev : t -> int -> Exochi_faults.Fault_plan.t option

val bus : t -> Exochi_memory.Bus.t
val bus_dev : t -> int -> Exochi_memory.Bus.t
val memmodel : t -> Exochi_memory.Memmodel.config
val model_costs : t -> Exochi_memory.Memmodel.costs
val costs : t -> costs

(** The installed exo-trace sink, if any (the CHI runtime adopts it). *)
val trace : t -> Exochi_obs.Trace.sink option

(** Snapshot memory-system counters (GPU cache/TLB, CPU L1/L2, bus) into
    the trace as counter samples, stamped at the later of the CPU and GPU
    clocks. No-op without a sink. *)
val emit_mem_counters : t -> unit

(** {1 Surface registry}

    ATR needs per-page tiling information (the IA32 PTE cannot carry it);
    the CHI descriptor layer registers each surface's range here. *)

val register_surface : t -> Exochi_memory.Surface.t -> unit
val unregister_surface : t -> Exochi_memory.Surface.t -> unit
val tiling_for : t -> vaddr:int -> Exochi_memory.Pte.X3k.tiling

(** {1 GTT shadow} *)

(** [prewalk t ~vaddr ~len] proxies translations for a whole range in one
    ULI (the runtime does this when it configures the accelerator from
    descriptors). Charges the CPU and returns when the batch completes.
    Pages not yet present in the IA32 table are faulted in. *)
val prewalk : t -> vaddr:int -> len:int -> unit

(** Drop all GTT shadow entries and flush the exo TLB (tests, and
    descriptor free). *)
val invalidate_gtt : t -> unit

(** {1 Shred completion notifications}

    The CHI runtime registers its scheduler here; the exoskeleton
    delivers one callback per completed shred (a user-level interrupt in
    the real design). *)

(** Install [f] as the completion callback on {e every} device (one team
    spanning the device set). *)
val set_shred_done_callback :
  t -> (Exochi_accel.Gpu.shred -> now_ps:int -> unit) -> unit

(** Install a completion callback on one device only — concurrently
    placed teams on different devices each observe only their own
    retirements. *)
val set_shred_done_callback_dev :
  t -> dev:int -> (Exochi_accel.Gpu.shred -> now_ps:int -> unit) -> unit

(** Deliver a completion notification for a shred the runtime
    proxy-executed on the IA32 sequencer (graceful degradation) — the
    team bookkeeping must see it exactly as a GPU retirement. [dev]
    (default 0) selects whose callback fires. *)
val notify_shred_done :
  ?dev:int -> t -> Exochi_accel.Gpu.shred -> now_ps:int -> unit

(** {1 Synchronisation} *)

(** [sync_gpu_to_cpu t] advances every EU clock on every device to the
    CPU's current time (call before dispatching work the CPU just
    enqueued). *)
val sync_gpu_to_cpu : t -> unit

(** [barrier t] runs every device to quiescence and advances the CPU
    clock to the completion signal (the implied barrier at the end of a
    parallel construct). Returns the barrier timestamp. *)
val barrier : t -> int

(** {1 Counters} *)

val atr_proxies : t -> int (* full proxy round trips *)
val gtt_hits : t -> int
val ceh_proxies : t -> int
val protocol_violations : t -> int

(** Injected-fault recovery activity. *)

val atr_transient_retries : t -> int (* lost ATR round trips, retried *)
val gtt_evictions : t -> int (* injected GTT corruptions repaired *)
val ceh_spurious : t -> int (* spurious CEH traps absorbed *)
val fault_plan : t -> Exochi_faults.Fault_plan.t option
val reset_counters : t -> unit
