(* Exo-profiler: wiring between the execution layers' attribution hooks
   and the Exochi_obs.Profile store.

   The simulator retires instructions with exact simulated cost, so
   "profiling" is attribution, not sampling: every X3K instruction the
   GPU retires lands under a two-frame stack [root; "NNN <instr>"] where
   root identifies the program (by default "exo <name>"; Chilite_run
   substitutes the .chi section and its source anchor). Frame label
   arrays are rendered once per program and cached, so the hook itself
   is two array reads and a hashtable bump per retired instruction. *)

module Profile = Exochi_obs.Profile
module X3k_ast = Exochi_isa.X3k_ast
module Via32_ast = Exochi_isa.Via32_ast

let default_root (p : X3k_ast.program) = "exo " ^ p.X3k_ast.name

(* Install a per-instruction attribution hook on [gpu]. [root_of] maps a
   bound program to its root frame (default ["exo <prog name>"]). *)
let attach_gpu ?(root_of = default_root) profile gpu =
  let cache : (string, string * string array) Hashtbl.t = Hashtbl.create 8 in
  let lookup (prog : X3k_ast.program) =
    match Hashtbl.find_opt cache prog.X3k_ast.name with
    | Some v -> v
    | None ->
      let frames =
        Array.mapi
          (fun pc i ->
            X3k_ast.frame_name ~surfaces:prog.X3k_ast.surfaces pc i)
          prog.X3k_ast.instrs
      in
      let v = (root_of prog, frames) in
      Hashtbl.add cache prog.X3k_ast.name v;
      v
  in
  Exochi_accel.Gpu.set_profiler gpu (fun ~prog ~pc ~cost_ps ->
      let root, frames = lookup prog in
      Profile.record profile ~stack:[ root; frames.(pc) ] ~ps:cost_ps)

(* IA32 attribution via Machine.run's [on_instr] hook. The machine hook
   fires before each instruction with the clock already settled, so we
   attribute the elapsed delta to the *previous* pc — the instruction
   that consumed it (including any intrinsic time charged under a call).
   The terminal hlt/ret gets no successor hook, so its issue cost stays
   unattributed; IA32 totals are therefore advisory, unlike the exact
   exo-sequencer totals. *)
let ia32_on_instr ?(root = "ia32 main") profile
    (loaded : Exochi_cpu.Machine.loaded) =
  let frames =
    Array.mapi
      (fun pc i -> Via32_ast.frame_name pc i)
      loaded.Exochi_cpu.Machine.prog.Via32_ast.instrs
  in
  let prev = ref None in
  fun cpu ~pc ->
    let now = Exochi_cpu.Machine.now_ps cpu in
    (match !prev with
    | Some (ppc, pnow) when now > pnow ->
      Profile.record profile ~stack:[ root; frames.(ppc) ] ~ps:(now - pnow)
    | _ -> ());
    prev := Some (pc, now);
    `Continue
