(** Exo-profiler: attribution glue between the execution layers and
    {!Exochi_obs.Profile}.

    The simulator knows the exact simulated cost of every retired
    instruction, so profiles here are exact attributions, not samples.
    X3K cost recorded through {!attach_gpu} lands under two-frame stacks
    [[root; "NNN <instr>"]]; the sum over all ["exo "]-rooted frames
    equals the platform's exo-sequencer busy time exactly
    ([Gpu.busy_cycles * ps_per_cycle] — enforced by [test/test_obs.ml]).
    Recording is pure accumulation, preserving the bit-and-time identity
    of profiled runs. *)

(** [attach_gpu profile gpu] installs the per-instruction hook
    ({!Exochi_accel.Gpu.set_profiler}). [root_of] maps the bound program
    to its root frame; default ["exo <prog name>"]. *)
val attach_gpu :
  ?root_of:(Exochi_isa.X3k_ast.program -> string) ->
  Exochi_obs.Profile.t ->
  Exochi_accel.Gpu.t ->
  unit

(** [ia32_on_instr profile loaded] builds an [on_instr] callback for
    {!Exochi_cpu.Machine.run} that attributes elapsed IA32 time to the
    instruction that consumed it (delta attribution: the hook fires
    before each instruction, so the elapsed time since the previous hook
    belongs to the previous pc, including intrinsic time charged under a
    [call]). The terminal [hlt]/[ret] cost stays unattributed, so IA32
    totals are advisory — unlike the exact exo-sequencer totals. Wall
    time the IA32 master spends blocked in [chi_wait] while exo shreds
    drain overlaps the exo frames' cost; sum roots, not the file total,
    when comparing against busy time. *)
val ia32_on_instr :
  ?root:string ->
  Exochi_obs.Profile.t ->
  Exochi_cpu.Machine.loaded ->
  Exochi_cpu.Machine.t ->
  pc:int ->
  [ `Continue | `Pause ]
