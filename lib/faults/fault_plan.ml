open Exochi_util

type fault_class =
  | Shred_hang
  | Lost_signal
  | Atr_transient
  | Ceh_spurious
  | Gtt_corrupt

let all_classes =
  [ Shred_hang; Lost_signal; Atr_transient; Ceh_spurious; Gtt_corrupt ]

let nclasses = List.length all_classes

let index = function
  | Shred_hang -> 0
  | Lost_signal -> 1
  | Atr_transient -> 2
  | Ceh_spurious -> 3
  | Gtt_corrupt -> 4

let class_name = function
  | Shred_hang -> "shred-hang"
  | Lost_signal -> "lost-signal"
  | Atr_transient -> "atr-transient"
  | Ceh_spurious -> "ceh-spurious"
  | Gtt_corrupt -> "gtt-corrupt"

type rates = {
  hang : float;
  lost_signal : float;
  atr_transient : float;
  ceh_spurious : float;
  gtt_corrupt : float;
}

let zero_rates =
  {
    hang = 0.0;
    lost_signal = 0.0;
    atr_transient = 0.0;
    ceh_spurious = 0.0;
    gtt_corrupt = 0.0;
  }

let uniform_rates r =
  {
    hang = r;
    lost_signal = r;
    atr_transient = r;
    ceh_spurious = r;
    gtt_corrupt = r;
  }

let rate_of rates = function
  | Shred_hang -> rates.hang
  | Lost_signal -> rates.lost_signal
  | Atr_transient -> rates.atr_transient
  | Ceh_spurious -> rates.ceh_spurious
  | Gtt_corrupt -> rates.gtt_corrupt

type t = {
  seed : int64;
  rates : rates;
  streams : Prng.t array;  (** one independent stream per fault class *)
  counts : int array;
  draws : int array;  (** decisions drawn per class (hits and misses) *)
}

let create ~seed ~rates () =
  let master = Prng.create seed in
  {
    seed;
    rates;
    streams = Array.init nclasses (fun _ -> Prng.split master);
    counts = Array.make nclasses 0;
    draws = Array.make nclasses 0;
  }

let seed t = t.seed
let rates t = t.rates

let decide t cls =
  let rate = rate_of t.rates cls in
  (* Zero-rate classes must not draw: a zero-rate plan has to leave the
     fault schedule (and thus the whole run) bit-identical to no plan. *)
  if rate <= 0.0 then false
  else begin
    let i = index cls in
    t.draws.(i) <- t.draws.(i) + 1;
    let hit = Prng.float t.streams.(i) < rate in
    if hit then t.counts.(i) <- t.counts.(i) + 1;
    hit
  end

let injected t cls = t.counts.(index cls)
let injected_total t = Array.fold_left ( + ) 0 t.counts
let injected_counts t = Array.copy t.counts
let drawn t cls = t.draws.(index cls)
let drawn_counts t = Array.copy t.draws

let of_spec s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad fault spec %S (expected SEED:RATE)" s)
  | Some i -> (
      let seed_s = String.sub s 0 i in
      let rate_s = String.sub s (i + 1) (String.length s - i - 1) in
      match (Int64.of_string_opt seed_s, float_of_string_opt rate_s) with
      | Some seed, Some rate when rate >= 0.0 && rate <= 1.0 ->
          Ok (create ~seed ~rates:(uniform_rates rate) ())
      | _ ->
          Error
            (Printf.sprintf
               "bad fault spec %S (seed must be an integer, rate a float in \
                [0,1])"
               s))
