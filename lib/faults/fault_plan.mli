(** Deterministic fault-injection plans for the simulated EXO platform.

    EXOCHI's exo-sequencers are application-managed: the OS neither
    schedules them nor cleans up after them, so every fault an accelerator
    can produce — a wedged EU thread, a lost SIGNAL doorbell, a flaky
    proxy round trip — must be absorbed by the CHI runtime itself
    (paper §3.2–§3.3, §4.4). A [Fault_plan.t] injects those faults into
    the simulator with per-class probabilities and a fully reproducible
    schedule: the plan owns one splitmix64 stream per fault class
    (derived from a single seed), and because the simulator itself is
    deterministic, equal seeds produce bit-identical fault schedules and
    therefore bit-identical runs.

    A plan whose rate for a class is zero never draws from that class's
    stream, so a zero-rate plan perturbs nothing: timing and all counters
    are identical to a run with no plan installed. *)

type fault_class =
  | Shred_hang  (** the EU context stops retiring right after dispatch *)
  | Lost_signal  (** a SIGNAL doorbell is dropped; enqueued shreds park *)
  | Atr_transient
      (** an ATR proxy round trip fails transiently (succeeds on retry) *)
  | Ceh_spurious
      (** an instruction takes a CEH trap although nothing is wrong; the
          IA32 handler finds nothing to emulate and resumes the shred *)
  | Gtt_corrupt
      (** a GTT-shadow entry is corrupted/evicted; the next use pays a
          full proxy re-walk *)

val all_classes : fault_class list
val class_name : fault_class -> string

(** Per-class injection probabilities, each in [0, 1]. *)
type rates = {
  hang : float;
  lost_signal : float;
  atr_transient : float;
  ceh_spurious : float;
  gtt_corrupt : float;
}

val zero_rates : rates

(** Same rate for every class. *)
val uniform_rates : float -> rates

type t

(** [create ~seed ~rates ()] builds a plan. Equal seeds and rates yield
    identical fault schedules (given a deterministic consumer). *)
val create : seed:int64 -> rates:rates -> unit -> t

val seed : t -> int64
val rates : t -> rates

(** [decide t cls] draws the next decision for [cls]: [true] means
    "inject a fault here". Zero-rate classes never draw and always
    return [false]. Counts injections. *)
val decide : t -> fault_class -> bool

(** Injections performed so far, per class / in total. *)
val injected : t -> fault_class -> int

val injected_total : t -> int

(** Injections per class, in {!all_classes} order (fresh copy). *)
val injected_counts : t -> int array

(** {2 Stream positions}

    Every {!decide} on a nonzero-rate class consumes exactly one PRNG
    draw, so the per-class draw count {e is} the stream position. The
    serve journal records these positions with every completion, and a
    recovered run verifies its deterministic replay reaches the same
    positions — the guarantee that re-dispatch after [--recover] draws
    from the same fault schedule as the original run. *)

(** Decisions drawn so far for one class (hits and misses). *)
val drawn : t -> fault_class -> int

(** Draw counts per class, in {!all_classes} order (fresh copy). *)
val drawn_counts : t -> int array

(** Parse a ["SEED:RATE"] command-line spec (e.g. ["7:0.01"]) into a
    plan with [uniform_rates RATE]. *)
val of_spec : string -> (t, string) result
