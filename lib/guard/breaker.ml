(* Circuit breaker with EWMA health scoring.

   One breaker guards one exo-sequencer slot. Instead of the legacy
   permanent quarantine ("three strikes and the slot is dead for the
   rest of the run"), a tripped breaker cools down, lets one probe
   through (half-open), and reinstates the slot if the probe retires.
   A failed probe re-opens the breaker with a doubled cool-down, so a
   genuinely dead slot converges back to quarantine while a slot that
   merely ate a transient burst returns to service. *)

type state = Closed | Open | Half_open

type t = {
  fail_threshold : int;
  base_cooldown_ps : int;
  mutable state : state;
  mutable ewma : float;  (** health in [0,1]; 1 = perfectly healthy *)
  mutable consec_fails : int;
  mutable cooldown_ps : int;  (** current cool-down (doubles on re-trip) *)
  mutable opened_at_ps : int;
  mutable probed : bool;  (** half-open probe already released *)
  mutable trips : int;
}

let alpha = 0.3
let unhealthy = 0.25

let create ~fail_threshold ~cooldown_ps =
  {
    fail_threshold;
    base_cooldown_ps = cooldown_ps;
    state = Closed;
    ewma = 1.0;
    consec_fails = 0;
    cooldown_ps;
    opened_at_ps = 0;
    probed = false;
    trips = 0;
  }

let state t = t.state
let health t = t.ewma
let trips t = t.trips
let cooldown_ps t = t.cooldown_ps

let observe t ok =
  t.ewma <- (alpha *. (if ok then 1.0 else 0.0)) +. ((1.0 -. alpha) *. t.ewma);
  if ok then t.consec_fails <- 0
  else t.consec_fails <- t.consec_fails + 1

let record_ok t = observe t true
let record_fail t = observe t false

let should_open t =
  t.state = Closed
  && (t.consec_fails >= t.fail_threshold || t.ewma <= unhealthy)

let trip t ~now_ps =
  (* A probe that fails proves the cool-down was too short: double it
     (capped) so a dead slot's probes back off geometrically. *)
  if t.state = Half_open then
    t.cooldown_ps <- min (t.cooldown_ps * 2) (t.base_cooldown_ps * 256);
  t.state <- Open;
  t.opened_at_ps <- now_ps;
  t.probed <- false;
  t.trips <- t.trips + 1

let poll t ~now_ps =
  match t.state with
  | Open when now_ps - t.opened_at_ps >= t.cooldown_ps ->
      t.state <- Half_open;
      t.probed <- true;
      true
  | _ -> false

let close t =
  t.state <- Closed;
  t.consec_fails <- 0;
  t.cooldown_ps <- t.base_cooldown_ps;
  t.ewma <- max t.ewma 0.5;
  t.probed <- false
