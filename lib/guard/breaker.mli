(** Per-sequencer circuit breaker with EWMA health scoring.

    Replaces permanent slot quarantine: a slot whose shreds keep getting
    watchdog-reaped trips its breaker ([Closed] → [Open]), sits out a
    cool-down, then gets one probationary probe ([Half_open]). A probe
    that retires closes the breaker and reinstates the slot; a probe
    that fails re-opens it with a doubled cool-down (capped at 256× the
    base), so genuinely dead hardware converges back to quarantine while
    transient victims return to service.

    Health is an exponentially weighted moving average over per-slot
    success/failure observations (alpha 0.3, initial 1.0). The breaker
    wants to open when consecutive failures reach the threshold {e or}
    health drops to 0.25 or below. All time is simulated picoseconds;
    the breaker itself is pure bookkeeping and fully deterministic. *)

type state = Closed | Open | Half_open

type t

(** [create ~fail_threshold ~cooldown_ps] starts [Closed] at full
    health. *)
val create : fail_threshold:int -> cooldown_ps:int -> t

val state : t -> state

(** Current EWMA health in [0, 1]. *)
val health : t -> float

(** Times this breaker has tripped open. *)
val trips : t -> int

(** Current cool-down (doubles each time a half-open probe fails). *)
val cooldown_ps : t -> int

val record_ok : t -> unit
val record_fail : t -> unit

(** Whether a [Closed] breaker has crossed its trip condition. Call
    after {!record_fail}; the caller decides when to actually {!trip}
    (it also quarantines the slot). *)
val should_open : t -> bool

(** Trip to [Open] at [now_ps]. Tripping from [Half_open] (a failed
    probe) doubles the cool-down first. *)
val trip : t -> now_ps:int -> unit

(** [poll t ~now_ps] transitions [Open] → [Half_open] once the
    cool-down has elapsed. Returns [true] exactly when that transition
    happens — the caller's cue to reinstate the slot for its probe. *)
val poll : t -> now_ps:int -> bool

(** Probe succeeded: [Half_open] → [Closed], cool-down and failure
    count reset, health bumped to at least 0.5. *)
val close : t -> unit
