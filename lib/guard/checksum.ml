(* 64-bit FNV-1a. Chosen for the guard layer because it is trivially
   deterministic across platforms, incremental (surfaces hash one after
   another into the same accumulator) and fast enough to run after every
   batch without touching the simulated clock. *)

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let fold_byte acc b =
  Int64.mul (Int64.logxor acc (Int64.of_int (b land 0xff))) prime

let add_string acc s =
  let acc = ref acc in
  String.iter (fun c -> acc := fold_byte !acc (Char.code c)) s;
  !acc

let add_bytes acc b =
  let acc = ref acc in
  Bytes.iter (fun c -> acc := fold_byte !acc (Char.code c)) b;
  !acc

(* Mix a 64-bit value in little-endian byte order, so checksums over
   structured records are byte-layout-faithful. *)
let add_int64 acc v =
  let acc = ref acc in
  for i = 0 to 7 do
    acc :=
      fold_byte !acc (Int64.to_int (Int64.shift_right_logical v (i * 8)))
  done;
  !acc

let add_int acc v = add_int64 acc (Int64.of_int v)
let of_string s = add_string offset_basis s
let of_bytes b = add_bytes offset_basis b
let to_hex v = Printf.sprintf "%016Lx" v
