(** Deterministic 64-bit FNV-1a checksums.

    The guard layer's integrity primitive: output surfaces are hashed
    after every batch and compared against a golden reference, turning
    silent data corruption into a detected, countable event. Incremental
    — feed surfaces one after another into the same accumulator. *)

(** The FNV-1a initial accumulator. *)
val offset_basis : int64

val add_string : int64 -> string -> int64
val add_bytes : int64 -> Bytes.t -> int64

(** Mix one 64-bit value, little-endian byte order. *)
val add_int64 : int64 -> int64 -> int64

val add_int : int64 -> int -> int64

(** [of_string s] = [add_string offset_basis s]. *)
val of_string : string -> int64

val of_bytes : Bytes.t -> int64

(** 16 lowercase hex digits. *)
val to_hex : int64 -> string
