(* Crash-safe record framing.

   Each record is written as

     u32 LE payload length | u64 LE FNV-1a(payload) | payload

   and flushed before append returns, so after a SIGKILL the file is a
   valid journal prefix followed by at most one torn record. [load]
   reads records until EOF or the first frame whose length/checksum does
   not verify, returns the valid prefix, and flags the truncation so the
   recovering process can rewrite a clean journal. *)

type writer = { oc : out_channel }

let max_len = 1 lsl 24  (* 16 MiB: any longer frame is corruption *)

let create_writer path = { oc = open_out_bin path }
let append_writer path = { oc = open_out_gen [ Open_append; Open_binary ] 0o644 path }

let append w payload =
  let len = String.length payload in
  if len > max_len then invalid_arg "Journal.append: oversized record";
  let hdr = Bytes.create 12 in
  Bytes.set_int32_le hdr 0 (Int32.of_int len);
  Bytes.set_int64_le hdr 4 (Checksum.of_string payload);
  output_bytes w.oc hdr;
  output_string w.oc payload;
  flush w.oc

let close_writer w = close_out w.oc

type load = { records : string list; truncated : bool }

let load path =
  if not (Sys.file_exists path) then { records = []; truncated = false }
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let total = in_channel_length ic in
        let hdr = Bytes.create 12 in
        let rec go acc =
          let pos = pos_in ic in
          if pos >= total then { records = List.rev acc; truncated = false }
          else if total - pos < 12 then
            { records = List.rev acc; truncated = true }
          else begin
            really_input ic hdr 0 12;
            let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
            let sum = Bytes.get_int64_le hdr 4 in
            if len < 0 || len > max_len || total - pos_in ic < len then
              { records = List.rev acc; truncated = true }
            else begin
              let payload = really_input_string ic len in
              if Checksum.of_string payload <> sum then
                { records = List.rev acc; truncated = true }
              else go (payload :: acc)
            end
          end
        in
        go [])
  end

(* Rewrite [path] to hold exactly [records] — used after a truncated
   load so the journal on disk is clean again before replay appends. *)
let rewrite path records =
  let w = create_writer path in
  Fun.protect
    ~finally:(fun () -> close_writer w)
    (fun () -> List.iter (append w) records)
