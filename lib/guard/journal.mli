(** Length-prefixed, checksummed record framing for crash-safe journals.

    Byte layout of one record:

    {v
    u32 LE  payload length
    u64 LE  FNV-1a 64 checksum of the payload
    bytes   payload
    v}

    Every {!append} flushes, so a process killed mid-run leaves a valid
    prefix followed by at most one torn frame. {!load} stops at the
    first frame that fails its length or checksum test and reports the
    truncation; {!rewrite} then restores a clean file before replay
    appends resume. Payload contents are opaque to this module — the
    serve layer defines its own record encoding on top.

    Naming: this module is the {e generic framing} layer only. The
    crash-safe serve log itself (job records, fingerprints, recovery) is
    owned by {!Exochi_serving.Serve_journal}, which writes through this
    framing. *)

type writer

(** Truncate/create [path] for writing. *)
val create_writer : string -> writer

(** Open [path] for appending (created if missing). *)
val append_writer : string -> writer

(** Frame, write and flush one record. Raises [Invalid_argument] on
    payloads over 16 MiB (such a length in a header is treated as
    corruption by {!load}). *)
val append : writer -> string -> unit

val close_writer : writer -> unit

type load = {
  records : string list;  (** valid prefix, in append order *)
  truncated : bool;  (** trailing torn/corrupt frame was dropped *)
}

(** Read the valid record prefix of [path]. A missing file loads as
    zero records, not truncated. *)
val load : string -> load

(** Replace [path] with exactly [records], freshly framed. *)
val rewrite : string -> string list -> unit
