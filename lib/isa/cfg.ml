(* Generic control-flow analysis over integer-indexed instruction
   graphs: dominator trees (Cooper–Harvey–Kennedy iterative scheme over
   a virtual root, so multi-entry programs — X3K spawn targets — are
   handled uniformly), natural-loop detection with back-edge merging for
   shared headers, and irreducibility classification (retreating DFS
   edges whose target does not dominate their source). *)

type t = {
  n : int;
  entries : int list;
  succ : int list array;
  pred : int list array;
  reach : bool array;
  idom : int array; (* -1 = virtual root (entries); -2 = unreachable *)
  rpo : int array; (* reachable nodes in reverse postorder *)
  rpo_num : int array; (* position in [rpo]; -1 when unreachable *)
  dfs_retreating : (int * int) list; (* DFS back edges u -> v *)
}

type loop = {
  header : int;
  body : bool array;
  nodes : int list;
  back_srcs : int list;
  exits : (int * int) list;
  parent : int option;
  depth : int;
}

let build ~n ~entries ~succs =
  let entries = List.sort_uniq compare (List.filter (fun e -> e >= 0 && e < n) entries) in
  let succ = Array.init n (fun i -> List.filter (fun s -> s >= 0 && s < n) (succs i)) in
  let pred = Array.make n [] in
  Array.iteri (fun u ss -> List.iter (fun v -> pred.(v) <- u :: pred.(v)) ss) succ;
  let reach = Array.make n false in
  (* Iterative DFS from every entry: postorder for the dominator sweep,
     plus retreating-edge detection (target still on the DFS stack). *)
  let post = ref [] in
  let on_stack = Array.make n false in
  let retreating = ref [] in
  let rec dfs u =
    if not reach.(u) then begin
      reach.(u) <- true;
      on_stack.(u) <- true;
      List.iter
        (fun v -> if reach.(v) then (if on_stack.(v) then retreating := (u, v) :: !retreating) else dfs v)
        succ.(u);
      on_stack.(u) <- false;
      post := u :: !post
    end
  in
  List.iter dfs entries;
  let rpo = Array.of_list !post in
  let rpo_num = Array.make n (-1) in
  Array.iteri (fun k v -> rpo_num.(v) <- k) rpo;
  (* Cooper–Harvey–Kennedy over a virtual root (index [n]) that edges
     into every entry; -1 denotes that root in the exposed array. *)
  let idom = Array.make n (-2) in
  List.iter (fun e -> idom.(e) <- -1) entries;
  let intersect a b =
    (* walk both up the (partial) dominator tree; the virtual root (-1)
       has rpo number -1, smaller than every real node's *)
    let num x = if x < 0 then -1 else rpo_num.(x) in
    let a = ref a and b = ref b in
    while !a <> !b do
      while num !a > num !b do a := idom.(!a) done;
      while num !b > num !a do b := idom.(!b) done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun v ->
        let processed = List.filter (fun p -> reach.(p) && idom.(p) <> -2) pred.(v) in
        let new_idom =
          match processed with
          | [] -> if List.mem v entries then -1 else -2
          | p0 :: rest ->
            let seed = if List.mem v entries then -1 else p0 in
            List.fold_left (fun acc p -> intersect acc p) seed rest
        in
        if new_idom <> idom.(v) && new_idom <> -2 then begin
          idom.(v) <- new_idom;
          changed := true
        end)
      rpo
  done;
  { n; entries; succ; pred; reach; idom; rpo; rpo_num; dfs_retreating = !retreating }

let dominates t a b =
  if not (a >= 0 && a < t.n && b >= 0 && b < t.n && t.reach.(a) && t.reach.(b))
  then false
  else begin
    let x = ref b in
    let res = ref false in
    while (not !res) && !x >= 0 do
      if !x = a then res := true else x := t.idom.(!x)
    done;
    !res
  end

let back_edges t =
  List.filter_map
    (fun u ->
      if t.reach.(u) then
        match List.filter (fun v -> dominates t v u) t.succ.(u) with
        | [] -> None
        | vs -> Some (List.map (fun v -> (u, v)) vs)
      else None)
    (List.init t.n Fun.id)
  |> List.concat

let irreducible_edges t =
  List.filter (fun (u, v) -> not (dominates t v u)) t.dfs_retreating

let loops t =
  let edges = back_edges t in
  (* group back edges by header; the natural loop of a header is the
     union over its back edges of { nodes reaching the source without
     passing through the header } *)
  let headers = List.sort_uniq compare (List.map snd edges) in
  let raw =
    List.map
      (fun h ->
        let body = Array.make t.n false in
        body.(h) <- true;
        let srcs = List.filter_map (fun (u, v) -> if v = h then Some u else None) edges in
        let rec up u =
          if not body.(u) then begin
            body.(u) <- true;
            List.iter (fun p -> if t.reach.(p) then up p) t.pred.(u)
          end
        in
        List.iter up srcs;
        let nodes = List.filter (fun i -> body.(i)) (List.init t.n Fun.id) in
        let exits =
          List.concat_map
            (fun u -> List.filter_map (fun v -> if body.(v) then None else Some (u, v)) t.succ.(u))
            nodes
        in
        (h, body, nodes, List.sort_uniq compare srcs, exits))
      headers
  in
  (* nesting: the parent of loop L is the smallest strictly-larger loop
     whose body contains L's header (and body — natural loops either
     nest or are disjoint once same-header loops are merged) *)
  let arr = Array.of_list raw in
  let size i = let _, _, ns, _, _ = arr.(i) in List.length ns in
  let parent = Array.make (Array.length arr) None in
  Array.iteri
    (fun i (h, _, _, _, _) ->
      let best = ref None in
      Array.iteri
        (fun j (_, body_j, _, _, _) ->
          if i <> j && body_j.(h) && size j > size i then
            match !best with
            | Some b when size b <= size j -> ()
            | _ -> best := Some j)
        arr;
      parent.(i) <- !best)
    arr;
  let rec depth i = match parent.(i) with None -> 0 | Some p -> 1 + depth p in
  Array.mapi
    (fun i (header, body, nodes, back_srcs, exits) ->
      { header; body; nodes; back_srcs; exits; parent = parent.(i); depth = depth i })
    arr
