(** Generic control-flow analysis over integer-indexed instruction
    graphs: dominator trees, natural loops, and irreducibility — the
    substrate for the Exo-bound loop/WCET analysis. Nodes are
    instruction indices [0..n-1]; the graph shape comes from the
    per-ISA [succs]/[entries] in {!X3k_flow} and {!Via32_flow}.

    Multi-entry programs (X3K [spawn] targets) are handled by a virtual
    root that edges into every entry, so dominance is well defined:
    code reachable from two entries is dominated only by the root. *)

type t = {
  n : int;
  entries : int list;
  succ : int list array;
  pred : int list array;
  reach : bool array; (* reachable from some entry *)
  idom : int array; (* immediate dominator; -1 = virtual root, -2 = unreachable *)
  rpo : int array; (* reachable nodes in reverse postorder *)
  rpo_num : int array; (* position in [rpo]; -1 when unreachable *)
  dfs_retreating : (int * int) list; (* DFS retreating edges u -> v *)
}

type loop = {
  header : int;
  body : bool array; (* membership over all n nodes (header included) *)
  nodes : int list; (* body as a sorted index list *)
  back_srcs : int list; (* sources of back edges into [header] *)
  exits : (int * int) list; (* (inside, outside) edges leaving the body *)
  parent : int option; (* index in {!loops} of the enclosing loop *)
  depth : int; (* 0 = outermost *)
}

(** [build ~n ~entries ~succs] analyses the graph. Out-of-range entries
    and successors are dropped (defensive against malformed targets). *)
val build : n:int -> entries:int list -> succs:(int -> int list) -> t

(** [dominates t a b]: every path from an entry to [b] passes through
    [a]. False when either node is unreachable. *)
val dominates : t -> int -> int -> bool

(** CFG back edges [(u, v)]: [v] dominates [u]. *)
val back_edges : t -> (int * int) list

(** Natural loops, one per header (back edges sharing a header are
    merged into a single loop), with nesting resolved. Loops lying in
    unreachable code are not reported. *)
val loops : t -> loop array

(** Retreating DFS edges whose target does {e not} dominate their
    source — non-empty exactly when the CFG is irreducible (e.g. a
    two-entry loop). Such cycles are not natural loops and get no
    trip-count bound. *)
val irreducible_edges : t -> (int * int) list
