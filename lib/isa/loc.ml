type t = { file : string; line : int; col : int }

let dummy = { file = "<none>"; line = 0; col = 0 }
let make ~file ~line ~col = { file; line; col }
let pp fmt t = Format.fprintf fmt "%s:%d:%d" t.file t.line t.col

type error = { loc : t; msg : string }

let errorf loc fmt = Format.kasprintf (fun msg -> { loc; msg }) fmt

let error loc fmt =
  Format.kasprintf (fun msg -> Error { loc; msg }) fmt

let pp_error fmt e = Format.fprintf fmt "%a: %s" pp e.loc e.msg
let error_to_string e = Format.asprintf "%a" pp_error e

(* ---- source-anchored pretty printing (compiler and linter share it) ---- *)

let source_line src n =
  if n <= 0 then None
  else
    let rec go line start =
      let stop =
        match String.index_from_opt src start '\n' with
        | Some i -> i
        | None -> String.length src
      in
      if line = n then Some (String.sub src start (stop - start))
      else if stop >= String.length src then None
      else go (line + 1) (stop + 1)
    in
    go 1 0

let pp_source_excerpt fmt ~src loc =
  match source_line src loc.line with
  | None -> ()
  | Some text ->
    let gutter = Printf.sprintf "%5d | " loc.line in
    Format.fprintf fmt "%s%s@." gutter text;
    (* the caret column: clamp into the line, tabs count as one column *)
    let col = max 1 (min loc.col (String.length text + 1)) in
    Format.fprintf fmt "%s%s^@."
      (String.make (String.length gutter) ' ')
      (String.make (col - 1) ' ')

let pp_error_source ~src fmt e =
  Format.fprintf fmt "%a@." pp_error e;
  pp_source_excerpt fmt ~src e.loc

let error_to_string_source ~src e =
  Format.asprintf "%a" (pp_error_source ~src) e
