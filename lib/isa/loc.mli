(** Source locations and located diagnostics, shared by the two assemblers
    and the CHI-lite compiler front end. *)

type t = { file : string; line : int; col : int }

val dummy : t
val make : file:string -> line:int -> col:int -> t
val pp : Format.formatter -> t -> unit

(** A located diagnostic. *)
type error = { loc : t; msg : string }

val error : t -> ('a, Format.formatter, unit, ('b, error) result) format4 -> 'a

(** Like {!error} but returns the bare diagnostic record — for code that
    accumulates several diagnostics instead of short-circuiting. *)
val errorf : t -> ('a, Format.formatter, unit, error) format4 -> 'a

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** [source_line src n] is line [n] (1-based) of [src], without its
    newline, if it exists. *)
val source_line : string -> int -> string option

(** [pp_error_source ~src fmt e] prints the diagnostic followed by the
    offending source line and a caret under the reported column:
    {v
    prog.chi:7:3: undeclared variable "x"
        7 |   x = 1;
          |   ^
    v}
    Used by [exochi_cc] and [exochi_lint]; degrades to {!pp_error} when
    the line is not present in [src]. *)
val pp_error_source : src:string -> Format.formatter -> error -> unit

val error_to_string_source : src:string -> error -> string
