let assemble_all ~name src =
  match Via32_parser.parse ~name src with
  | Error e -> Error [ e ]
  | Ok p -> Via32_check.check p

let assemble ~name src =
  match assemble_all ~name src with
  | Ok p -> Ok p
  | Error (e :: _) -> Error e
  | Error [] -> assert false

let assemble_exn ~name src =
  match assemble ~name src with
  | Ok p -> p
  | Error e -> failwith (Loc.error_to_string e)

let to_binary = Via32_encode.encode_program
let of_binary = Via32_encode.decode_program
let disassemble p = Format.asprintf "%a" Via32_ast.pp_program p
