(** The VIA32 assembler: parse, validate, encode — the CPU-side twin of
    {!X3k_asm}. The CHI-lite compiler emits VIA32 text and assembles it
    here into the fat binary's CPU section. *)

val assemble : name:string -> string -> (Via32_ast.program, Loc.error) result

(** Like {!assemble}, but reports {e every} structural diagnostic the
    checker accumulates (a lex/parse failure still yields a single
    error). *)
val assemble_all :
  name:string -> string -> (Via32_ast.program, Loc.error list) result
val assemble_exn : name:string -> string -> Via32_ast.program
val to_binary : Via32_ast.program -> bytes
val of_binary : name:string -> bytes -> (Via32_ast.program, string) result
val disassemble : Via32_ast.program -> string
