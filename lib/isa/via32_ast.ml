type reg = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

let reg_name = function
  | EAX -> "eax"
  | EBX -> "ebx"
  | ECX -> "ecx"
  | EDX -> "edx"
  | ESI -> "esi"
  | EDI -> "edi"
  | EBP -> "ebp"
  | ESP -> "esp"

let reg_index = function
  | EAX -> 0
  | EBX -> 1
  | ECX -> 2
  | EDX -> 3
  | ESI -> 4
  | EDI -> 5
  | EBP -> 6
  | ESP -> 7

let reg_of_index = function
  | 0 -> EAX
  | 1 -> EBX
  | 2 -> ECX
  | 3 -> EDX
  | 4 -> ESI
  | 5 -> EDI
  | 6 -> EBP
  | 7 -> ESP
  | i -> invalid_arg (Printf.sprintf "Via32_ast.reg_of_index %d" i)

type mem = {
  base : reg option;
  index : (reg * int) option;
  disp : int;
  sym : string option;
}

type operand = R of reg | X of int | I of int32 | M of mem
type cc = E | NE | L | LE | G | GE | B | BE | A | AE

let cc_name = function
  | E -> "e"
  | NE -> "ne"
  | L -> "l"
  | LE -> "le"
  | G -> "g"
  | GE -> "ge"
  | B -> "b"
  | BE -> "be"
  | A -> "a"
  | AE -> "ae"

type msize = B1 | B2 | B4

let msize_suffix = function B1 -> ".b" | B2 -> ".w" | B4 -> ".d"

type opcode =
  | Mov of msize
  | Movsx of msize
  | Lea
  | Add
  | Sub
  | Imul
  | Sdiv
  | Srem
  | And
  | Or
  | Xor
  | Not
  | Neg
  | Shl
  | Shr
  | Sar
  | Cmp
  | Test
  | Setcc of cc
  | Push
  | Pop
  | Call
  | Ret
  | Jmp
  | Jcc of cc
  | Nop
  | Hlt
  | Movdqu
  | Movntdq
  | Movd
  | Movpk of msize
  | Paddd
  | Psubd
  | Pmulld
  | Pminsd
  | Pmaxsd
  | Pabsd
  | Pavgd
  | Pavgb
  | Psadd
  | Phaddd
  | Packus
  | Pcmpgtd
  | Pand
  | Por
  | Pxor
  | Pslld
  | Psrld
  | Psrad
  | Pshufd
  | Addps
  | Subps
  | Mulps
  | Divps
  | Minps
  | Maxps
  | Sqrtps
  | Cvtdq2ps
  | Cvtps2dq
  | Cmpps of cc
  | Movmskps

let opcode_name = function
  | Mov s -> "mov" ^ msize_suffix s
  | Movsx s -> "movsx" ^ msize_suffix s
  | Lea -> "lea"
  | Add -> "add"
  | Sub -> "sub"
  | Imul -> "imul"
  | Sdiv -> "sdiv"
  | Srem -> "srem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Neg -> "neg"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | Cmp -> "cmp"
  | Test -> "test"
  | Setcc c -> "set" ^ cc_name c
  | Push -> "push"
  | Pop -> "pop"
  | Call -> "call"
  | Ret -> "ret"
  | Jmp -> "jmp"
  | Jcc c -> "j" ^ cc_name c
  | Nop -> "nop"
  | Hlt -> "hlt"
  | Movdqu -> "movdqu"
  | Movntdq -> "movntdq"
  | Movd -> "movd"
  | Movpk s -> "movpk" ^ msize_suffix s
  | Paddd -> "paddd"
  | Psubd -> "psubd"
  | Pmulld -> "pmulld"
  | Pminsd -> "pminsd"
  | Pmaxsd -> "pmaxsd"
  | Pabsd -> "pabsd"
  | Pavgd -> "pavgd"
  | Pavgb -> "pavgb"
  | Psadd -> "psadd"
  | Phaddd -> "phaddd"
  | Packus -> "packus"
  | Pcmpgtd -> "pcmpgtd"
  | Pand -> "pand"
  | Por -> "por"
  | Pxor -> "pxor"
  | Pslld -> "pslld"
  | Psrld -> "psrld"
  | Psrad -> "psrad"
  | Pshufd -> "pshufd"
  | Addps -> "addps"
  | Subps -> "subps"
  | Mulps -> "mulps"
  | Divps -> "divps"
  | Minps -> "minps"
  | Maxps -> "maxps"
  | Sqrtps -> "sqrtps"
  | Cvtdq2ps -> "cvtdq2ps"
  | Cvtps2dq -> "cvtps2dq"
  | Cmpps c -> "cmpps." ^ cc_name c
  | Movmskps -> "movmskps"

type instr = { op : opcode; operands : operand list; line : int }
type call_target = Internal of int | Intrinsic of string

type program = {
  name : string;
  instrs : instr array;
  labels : (string * int) list;
  calls : (int * call_target) list;
  symbols : string array;
  source : string;
}

let call_target p idx = List.assoc_opt idx p.calls

let pp_mem fmt m =
  Format.pp_print_string fmt "[";
  let first = ref true in
  let sep () =
    if !first then first := false else Format.pp_print_string fmt " + "
  in
  Option.iter
    (fun s ->
      sep ();
      Format.pp_print_string fmt s)
    m.sym;
  Option.iter
    (fun r ->
      sep ();
      Format.pp_print_string fmt (reg_name r))
    m.base;
  Option.iter
    (fun (r, s) ->
      sep ();
      Format.fprintf fmt "%s*%d" (reg_name r) s)
    m.index;
  if m.disp <> 0 || !first then begin
    if m.disp < 0 then Format.fprintf fmt " - %d" (-m.disp)
    else begin
      sep ();
      Format.fprintf fmt "%d" m.disp
    end
  end;
  Format.pp_print_string fmt "]"

let pp_operand fmt = function
  | R r -> Format.pp_print_string fmt (reg_name r)
  | X i -> Format.fprintf fmt "xmm%d" i
  | I i -> Format.fprintf fmt "%ld" i
  | M m -> pp_mem fmt m

let pp_instr fmt i =
  Format.pp_print_string fmt (opcode_name i.op);
  match i.operands with
  | [] -> ()
  | ops ->
    Format.fprintf fmt " %a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_operand)
      ops

(* Profiler frame label: zero-padded pc + rendered instruction, so
   frames sort in program order inside a flamegraph. *)
let frame_name pc instr = Format.asprintf "%03d %a" pc pp_instr instr

let pp_program fmt p =
  Format.fprintf fmt "; program %s (%d instrs)@." p.name (Array.length p.instrs);
  Array.iteri
    (fun idx i ->
      List.iter
        (fun (l, at) -> if at = idx then Format.fprintf fmt "%s:@." l)
        p.labels;
      (match call_target p idx with
      | Some (Intrinsic s) -> Format.fprintf fmt "  call %s@." s
      | Some (Internal t) -> Format.fprintf fmt "  call @%d@." t
      | None -> Format.fprintf fmt "  %a@." pp_instr i))
    p.instrs
