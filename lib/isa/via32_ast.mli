(** Abstract syntax for VIA32, the virtual IA32-class CPU ISA.

    VIA32 stands in for the paper's IA32 + SSE target: eight 32-bit
    general-purpose registers, eight 128-bit SIMD registers (4 x 32-bit
    lanes), Intel-syntax two-operand instructions, flags set by [cmp]/
    [test], and a small media extension (packed average, SAD, saturating
    pack) mirroring the SSE integer ops the paper's kernels rely on.

    Concrete syntax (Intel order, [dst, src]):
    {v
        mov.d   eax, [esi + ecx*4 + 16]
        add     eax, ebx
        movdqu  xmm0, [esi + ecx*4]
        paddd   xmm0, xmm1
        cmp     ecx, 100
        jl      loop_top
        hlt
    v} *)

type reg = EAX | EBX | ECX | EDX | ESI | EDI | EBP | ESP

val reg_name : reg -> string
val reg_index : reg -> int
val reg_of_index : int -> reg

(** Memory operand: [base + index*scale + disp + symbol]. Symbols are
    data-section names resolved by the loader. *)
type mem = {
  base : reg option;
  index : (reg * int) option; (* scale in {1,2,4,8} *)
  disp : int;
  sym : string option;
}

type operand =
  | R of reg
  | X of int (* xmm0..xmm7 *)
  | I of int32
  | M of mem

(** Condition codes (signed unless stated). *)
type cc = E | NE | L | LE | G | GE | B | BE | A | AE

val cc_name : cc -> string

(** Memory access width for scalar moves. *)
type msize = B1 | B2 | B4

type opcode =
  (* scalar *)
  | Mov of msize (* zero-extending loads; truncating stores *)
  | Movsx of msize (* sign-extending load, B1/B2 only *)
  | Lea
  | Add
  | Sub
  | Imul
  | Sdiv (* virtualised signed divide *)
  | Srem
  | And
  | Or
  | Xor
  | Not
  | Neg
  | Shl
  | Shr
  | Sar
  | Cmp
  | Test
  | Setcc of cc
  | Push
  | Pop
  | Call (* target: symbol operand I/label or runtime intrinsic by name *)
  | Ret
  | Jmp
  | Jcc of cc
  | Nop
  | Hlt (* end of shred / program *)
  (* SSE-class, 4 x 32-bit lanes *)
  | Movdqu (* 16-byte load/store/reg move *)
  | Movntdq (* 16-byte streaming store: write-combining, no RFO *)
  | Movd (* lane 0 <-> scalar reg *)
  | Movpk of msize (* packed-narrow load/store: 4 elements of B1/B2 *)
  | Paddd
  | Psubd
  | Pmulld
  | Pminsd
  | Pmaxsd
  | Pabsd
  | Pavgd (* rounding average, dword lanes *)
  | Pavgb (* rounding average over the 16 packed bytes *)
  | Psadd (* sum of |a-b| over lanes -> lane 0 *)
  | Phaddd (* horizontal add -> lane 0 *)
  | Packus (* clamp lanes to 0..255 *)
  | Pcmpgtd (* per-lane signed >, all-ones mask result *)
  | Pand
  | Por
  | Pxor
  | Pslld
  | Psrld
  | Psrad
  | Pshufd (* dst, src, imm8 control *)
  (* SSE float, 4 x binary32 *)
  | Addps
  | Subps
  | Mulps
  | Divps
  | Minps
  | Maxps
  | Sqrtps
  | Cvtdq2ps
  | Cvtps2dq
  | Cmpps of cc (* lane mask result, ordered compares *)
  | Movmskps (* lane sign mask -> scalar reg *)

val opcode_name : opcode -> string

type instr = {
  op : opcode;
  operands : operand list; (* dst first, Intel order *)
  line : int;
}

(** Call targets: either an internal label (resolved to instruction
    index) or a named runtime intrinsic handled by the CPU simulator. *)
type call_target = Internal of int | Intrinsic of string

type program = {
  name : string;
  instrs : instr array;
  labels : (string * int) list;
  calls : (int * call_target) list; (* instr index -> resolved target *)
  symbols : string array; (* data symbols referenced, slot order *)
  source : string;
}

val call_target : program -> int -> call_target option
val pp_operand : Format.formatter -> operand -> unit
val pp_instr : Format.formatter -> instr -> unit

(** Profiler frame label for instruction [pc]: ["012 add eax, 4"]. *)
val frame_name : int -> instr -> string
val pp_program : Format.formatter -> program -> unit
