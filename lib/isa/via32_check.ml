open Via32_ast

let ( let* ) = Result.bind

let err p i fmt =
  Loc.error (Loc.make ~file:p.name ~line:i.line ~col:1) fmt

(* Operand kind predicates *)
let is_r = function R _ -> true | _ -> false
let is_x = function X _ -> true | _ -> false
let is_i = function I _ -> true | _ -> false
let is_m = function M _ -> true | _ -> false
let is_rim o = is_r o || is_i o || is_m o
let is_xm o = is_x o || is_m o

let arity p i n =
  if List.length i.operands = n then Ok ()
  else
    err p i "%s expects %d operand(s), got %d" (opcode_name i.op) n
      (List.length i.operands)

let check2 p i dst_ok src_ok ~dst_desc ~src_desc =
  let* () = arity p i 2 in
  match i.operands with
  | [ d; s ] ->
    if not (dst_ok d) then
      err p i "%s destination must be %s" (opcode_name i.op) dst_desc
    else if not (src_ok s) then
      err p i "%s source must be %s" (opcode_name i.op) src_desc
    else if is_m d && is_m s then
      err p i "%s cannot have two memory operands" (opcode_name i.op)
    else Ok ()
  | _ -> assert false

let check1 p i ok ~desc =
  let* () = arity p i 1 in
  match i.operands with
  | [ o ] ->
    if ok o then Ok ()
    else err p i "%s operand must be %s" (opcode_name i.op) desc
  | _ -> assert false

let branch_target p i =
  match i.operands with
  | [ I t ] ->
    let t = Int32.to_int t in
    if t < 0 || t > Array.length p.instrs then
      err p i "branch target %d out of range" t
    else Ok ()
  | _ -> err p i "%s requires a label" (opcode_name i.op)

let check_instr p idx i =
  match i.op with
  | Mov _ ->
    check2 p i
      (fun o -> is_r o || is_x o || is_m o)
      (fun o -> is_rim o || is_x o)
      ~dst_desc:"a register or memory" ~src_desc:"a register, immediate or memory"
  | Movsx _ ->
    check2 p i is_r is_m ~dst_desc:"a register" ~src_desc:"a memory operand"
  | Lea -> check2 p i is_r is_m ~dst_desc:"a register" ~src_desc:"a memory operand"
  | Add | Sub | Imul | Sdiv | Srem | And | Or | Xor | Cmp | Test ->
    check2 p i
      (fun o -> is_r o || is_m o)
      is_rim ~dst_desc:"a register or memory"
      ~src_desc:"a register, immediate or memory"
  | Shl | Shr | Sar ->
    check2 p i is_r
      (fun o -> is_r o || is_i o)
      ~dst_desc:"a register" ~src_desc:"a register or immediate"
  | Not | Neg -> check1 p i is_r ~desc:"a register"
  | Setcc _ -> check1 p i is_r ~desc:"a register"
  | Push -> check1 p i (fun o -> is_r o || is_i o) ~desc:"a register or immediate"
  | Pop -> check1 p i is_r ~desc:"a register"
  | Call -> (
    let* () = arity p i 0 in
    match call_target p idx with
    | Some (Internal t) ->
      if t < 0 || t >= Array.length p.instrs then
        err p i "call target %d out of range" t
      else Ok ()
    | Some (Intrinsic _) -> Ok ()
    | None -> err p i "call without a resolved target")
  | Ret | Nop | Hlt -> arity p i 0
  | Jmp | Jcc _ -> branch_target p i
  | Movdqu ->
    check2 p i is_xm is_xm ~dst_desc:"xmm or memory" ~src_desc:"xmm or memory"
  | Movntdq ->
    check2 p i is_m is_x ~dst_desc:"a memory operand" ~src_desc:"xmm"
  | Movd ->
    check2 p i
      (fun o -> is_r o || is_x o)
      (fun o -> is_r o || is_x o)
      ~dst_desc:"a register or xmm" ~src_desc:"a register or xmm"
  | Movpk _ ->
    check2 p i is_xm is_xm ~dst_desc:"xmm or memory" ~src_desc:"xmm or memory"
  | Paddd | Psubd | Pmulld | Pminsd | Pmaxsd | Pavgd | Pavgb | Psadd | Pcmpgtd | Pand | Por
  | Pxor | Addps | Subps | Mulps | Divps | Minps | Maxps | Cmpps _ ->
    check2 p i is_x is_xm ~dst_desc:"xmm" ~src_desc:"xmm or memory"
  | Pabsd | Packus | Sqrtps | Cvtdq2ps | Cvtps2dq | Phaddd ->
    check2 p i is_x is_xm ~dst_desc:"xmm" ~src_desc:"xmm or memory"
  | Pslld | Psrld | Psrad ->
    check2 p i is_x is_i ~dst_desc:"xmm" ~src_desc:"an immediate"
  | Pshufd -> (
    let* () = arity p i 3 in
    match i.operands with
    | [ d; s; c ] ->
      if not (is_x d && is_x s && is_i c) then
        err p i "pshufd expects xmm, xmm, imm8"
      else Ok ()
    | _ -> assert false)
  | Movmskps ->
    check2 p i is_r is_x ~dst_desc:"a register" ~src_desc:"xmm"

let consistency p i =
  (* movdqu/movpk must reference xmm at least once *)
  match (i.op, i.operands) with
  | (Movdqu | Movpk _), [ d; s ] when is_m d && is_m s ->
    err p i "%s cannot have two memory operands" (opcode_name i.op)
  | (Movdqu | Movpk _), [ d; s ] when not (is_x d || is_x s) ->
    err p i "%s requires an xmm operand" (opcode_name i.op)
  | (Movpk _), [ d; s ] when not (is_m d || is_m s) ->
    err p i "%s moves between xmm and memory" (opcode_name i.op)
  | _ -> Ok ()

(* Accumulate one diagnostic per offending instruction (the first failed
   check) plus the termination check, in program order. *)
let check p =
  if Array.length p.instrs = 0 then
    Error [ Loc.errorf (Loc.make ~file:p.name ~line:1 ~col:1) "empty program" ]
  else begin
    let errs = ref [] in
    Array.iteri
      (fun idx i ->
        let r =
          let* () = check_instr p idx i in
          consistency p i
        in
        match r with Ok () -> () | Error e -> errs := e :: !errs)
      p.instrs;
    let last = p.instrs.(Array.length p.instrs - 1) in
    (match last.op with
    | Hlt | Ret | Jmp -> ()
    | _ ->
      errs :=
        Loc.errorf
          (Loc.make ~file:p.name ~line:last.line ~col:1)
          "program must end with hlt, ret or an unconditional jmp"
        :: !errs);
    match List.rev !errs with [] -> Ok p | es -> Error es
  end
