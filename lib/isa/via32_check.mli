(** Structural validation of parsed VIA32 programs: operand arity and
    kinds per opcode, memory-operand well-formedness, branch targets in
    range, call targets resolved, and termination ([hlt], [ret] or an
    unconditional [jmp] last).

    [check] accumulates every structural error (one per offending
    instruction, in program order) rather than stopping at the first, so
    drivers can report them all in one pass. The error list is never
    empty. *)

val check : Via32_ast.program -> (Via32_ast.program, Loc.error list) result
