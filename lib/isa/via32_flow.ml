open Via32_ast

type slot = Gpr of reg | Xmm of int | Flags

let slot_name = function
  | Gpr r -> reg_name r
  | Xmm i -> Printf.sprintf "xmm%d" i
  | Flags -> "flags"

type def_use = {
  uses : slot list;
  defs : slot list;
}

let dedup l = List.sort_uniq compare l

let mem_uses m =
  (match m.base with Some r -> [ Gpr r ] | None -> [])
  @ (match m.index with Some (r, _) -> [ Gpr r ] | None -> [])

(* Reads contributed by an operand in a *source* position. *)
let src_uses = function
  | R r -> [ Gpr r ]
  | X i -> [ Xmm i ]
  | I _ -> []
  | M m -> mem_uses m

(* How an opcode treats its first operand. *)
type dst_kind =
  | Write (* pure definition (mov-like) *)
  | Read_write (* two-operand ALU: dst is also a source *)
  | Read_only (* cmp/test and stores: first operand is only read *)

let dst_kind = function
  | Mov _ | Movsx _ | Lea | Setcc _ | Pop | Movdqu | Movntdq | Movd | Movpk _
  | Pabsd | Sqrtps | Cvtdq2ps | Cvtps2dq | Pshufd | Movmskps ->
    Write
  | Add | Sub | Imul | Sdiv | Srem | And | Or | Xor | Not | Neg | Shl | Shr
  | Sar | Paddd | Psubd | Pmulld | Pminsd | Pmaxsd | Pavgd | Pavgb | Psadd
  | Phaddd | Packus | Pcmpgtd | Pand | Por | Pxor | Pslld | Psrld | Psrad
  | Addps | Subps | Mulps | Divps | Minps | Maxps | Cmpps _ ->
    Read_write
  | Cmp | Test | Push -> Read_only
  | Call | Ret | Jmp | Jcc _ | Nop | Hlt -> Read_only

let all_gprs = [ EAX; EBX; ECX; EDX; ESI; EDI; EBP; ESP ] |> List.map (fun r -> Gpr r)

let def_use i =
  let flags_defs =
    match i.op with Cmp | Test -> [ Flags ] | _ -> []
  in
  let flags_uses =
    match i.op with Setcc _ | Jcc _ -> [ Flags ] | _ -> []
  in
  let base =
    match (i.op, i.operands) with
    | (Ret | Hlt), _ ->
      (* final/return state: treat every register as observed, so values
         computed for the caller are not reported as dead stores *)
      { uses = all_gprs @ [ Flags ]; defs = [] }
    | Call, _ ->
      (* the callee receives the stack and leaves its result in eax *)
      { uses = [ Gpr ESP ]; defs = [ Gpr EAX; Gpr ESP ] }
    | Push, [ s ] -> { uses = Gpr ESP :: src_uses s; defs = [ Gpr ESP ] }
    | Pop, [ R r ] -> { uses = [ Gpr ESP ]; defs = [ Gpr r; Gpr ESP ] }
    | Xor, [ R a; R b ] when a = b ->
      (* zeroing idiom: the old value is not really read *)
      { uses = []; defs = [ Gpr a ] }
    | Pxor, [ X a; X b ] when a = b -> { uses = []; defs = [ Xmm a ] }
    | _, [] -> { uses = []; defs = [] }
    | _, (d :: srcs as ops) -> (
      let rest_uses = List.concat_map src_uses srcs in
      match dst_kind i.op with
      | Read_only -> { uses = List.concat_map src_uses ops; defs = [] }
      | kind -> (
        let dst_extra_uses =
          match kind with Read_write -> src_uses d | _ -> []
        in
        match d with
        | R r ->
          { uses = rest_uses @ dst_extra_uses; defs = [ Gpr r ] }
        | X x ->
          { uses = rest_uses @ dst_extra_uses; defs = [ Xmm x ] }
        | M m ->
          (* a store: the address registers are uses, nothing is defined *)
          { uses = rest_uses @ dst_extra_uses @ mem_uses m; defs = [] }
        | I _ -> { uses = rest_uses; defs = [] }))
  in
  {
    uses = dedup (flags_uses @ base.uses);
    defs = dedup (flags_defs @ base.defs);
  }

(* Effects beyond register/flag defs: memory writes, stack traffic,
   control transfers, the final halt. *)
let has_side_effect p idx =
  let i = p.instrs.(idx) in
  match i.op with
  | Push | Pop | Call | Ret | Jmp | Jcc _ | Hlt | Movntdq -> true
  | _ -> (
    match i.operands with
    | M _ :: _ when dst_kind i.op <> Read_only -> true (* store to memory *)
    | _ -> false)

let branch_target i =
  match (i.op, i.operands) with
  | (Jmp | Jcc _), [ I t ] -> Some (Int32.to_int t)
  | _ -> None

let succs p idx =
  let n = Array.length p.instrs in
  let i = p.instrs.(idx) in
  let fall = if idx + 1 < n then [ idx + 1 ] else [] in
  match i.op with
  | Ret | Hlt -> []
  | Jmp -> ( match branch_target i with Some t when t < n -> [ t ] | _ -> [])
  | Jcc _ -> (
    match branch_target i with
    | Some t when t < n -> dedup (t :: fall)
    | _ -> fall)
  | Call -> (
    (* flow both into the callee and past the call: the callee returns *)
    match call_target p idx with
    | Some (Internal t) when t >= 0 && t < n -> dedup (t :: fall)
    | _ -> fall)
  | _ -> fall

let entries _p = [ 0 ]

let reachable p =
  let n = Array.length p.instrs in
  let seen = Array.make n false in
  let rec go idx =
    if idx < n && not seen.(idx) then begin
      seen.(idx) <- true;
      List.iter go (succs p idx)
    end
  in
  List.iter go (entries p);
  seen

let cfg p =
  Cfg.build ~n:(Array.length p.instrs) ~entries:(entries p) ~succs:(succs p)
