(** Control-flow and def-use facts over checked VIA32 programs — the
    CPU-side twin of {!X3k_flow}, used by the Exo-check dataflow passes.

    State slots are the eight GPRs, the XMM registers, and a single
    [Flags] pseudo-slot (the simulator models only the cmp/test result
    pair, read by [setcc]/[jcc]). Memory is not tracked. *)

type slot = Gpr of Via32_ast.reg | Xmm of int | Flags

val slot_name : slot -> string

type def_use = { uses : slot list; defs : slot list }

(** Def/use of one instruction. Conservative conventions: [call] uses
    [esp] and defines [eax]/[esp]; [ret] and [hlt] use every register so
    values handed to the caller or visible at halt are never "dead". *)
val def_use : Via32_ast.instr -> def_use

(** Whether the instruction at an index has effects beyond its defs
    (memory/stack writes, control transfers, halt). *)
val has_side_effect : Via32_ast.program -> int -> bool

val branch_target : Via32_ast.instr -> int option

(** CFG successors; [call] flows both into an internal callee and past
    the call site. *)
val succs : Via32_ast.program -> int -> int list

val entries : Via32_ast.program -> int list
val reachable : Via32_ast.program -> bool array

(** Full control-flow analysis (dominators, loops, irreducibility) of
    the program graph — see {!Cfg}. *)
val cfg : Via32_ast.program -> Cfg.t
