(** The X3K assembler: parse, validate, encode.

    This is the accelerator-specific inline assembler that the CHI
    compiler links against (paper §4.1): the CHI-lite front end hands the
    text of each [__asm { }] block to [assemble], and embeds the resulting
    binary in a fat-binary section. *)

(** [assemble ~name src] runs the full pipeline:
    lex → parse → check. On failure, reports the first diagnostic. *)
val assemble : name:string -> string -> (X3k_ast.program, Loc.error) result

(** Like {!assemble}, but reports {e every} structural diagnostic the
    checker accumulates (a lex/parse failure still yields a single
    error). Used by [exochi_cc] and [exochi_lint]. *)
val assemble_all :
  name:string -> string -> (X3k_ast.program, Loc.error list) result

(** [assemble_exn ~name src] — for statically known-good sources (kernel
    libraries, tests); failure messages include the location. *)
val assemble_exn : name:string -> string -> X3k_ast.program

(** [to_binary p] / [of_binary ~name b] — encoded form for fat-binary
    sections; [of_binary] round-trips everything but the original source
    text. *)
val to_binary : X3k_ast.program -> bytes

val of_binary : name:string -> bytes -> (X3k_ast.program, string) result

(** Disassembly of a checked program. *)
val disassemble : X3k_ast.program -> string
