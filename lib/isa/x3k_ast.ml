type dtype = B | W | DW | F

let dtype_bytes = function B -> 1 | W -> 2 | DW -> 4 | F -> 4
let dtype_name = function B -> "b" | W -> "w" | DW -> "dw" | F -> "f"

type cond = Eq | Ne | Lt | Le | Gt | Ge

let cond_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"

type brmode = Any | All | None_set

type sreg = Sid | Nshred | Eu | Tid | Lane | Param of int

type operand =
  | Reg of int
  | Range of int * int
  | Flag of int
  | Imm of int32
  | Sreg of sreg
  | Surf of { slot : int; index : int; offset : int }
  | Surf2d of { slot : int; xreg : int; yreg : int }
  | Remote of { shred_reg : int; reg : int }

type opcode =
  | Mov
  | Add
  | Sub
  | Mul
  | Mac
  | Min
  | Max
  | Avg
  | Abs
  | Sad
  | Hadd
  | Shl
  | Shr
  | Sar
  | And
  | Or
  | Xor
  | Not
  | Sat
  | Bcast
  | Fadd
  | Fsub
  | Fmul
  | Fmac
  | Fmin
  | Fmax
  | Fdiv
  | Fsqrt
  | Fabs
  | Cvtif
  | Cvtfi
  | Dpadd
  | Cmp of cond
  | Sel
  | Ld
  | St
  | Gather
  | Scatter
  | Sample
  | Br of brmode
  | Jmp
  | End
  | Fence
  | Semacq
  | Semrel
  | Sendreg
  | Spawn
  | Nop

let opcode_name = function
  | Mov -> "mov"
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Mac -> "mac"
  | Min -> "min"
  | Max -> "max"
  | Avg -> "avg"
  | Abs -> "abs"
  | Sad -> "sad"
  | Hadd -> "hadd"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sar -> "sar"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Sat -> "sat"
  | Bcast -> "bcast"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fmul -> "fmul"
  | Fmac -> "fmac"
  | Fmin -> "fmin"
  | Fmax -> "fmax"
  | Fdiv -> "fdiv"
  | Fsqrt -> "fsqrt"
  | Fabs -> "fabs"
  | Cvtif -> "cvtif"
  | Cvtfi -> "cvtfi"
  | Dpadd -> "dpadd"
  | Cmp c -> "cmp." ^ cond_name c
  | Sel -> "sel"
  | Ld -> "ld"
  | St -> "st"
  | Gather -> "gather"
  | Scatter -> "scatter"
  | Sample -> "sample"
  | Br Any -> "br.any"
  | Br All -> "br.all"
  | Br None_set -> "br.none"
  | Jmp -> "jmp"
  | End -> "end"
  | Fence -> "fence"
  | Semacq -> "sem.acq"
  | Semrel -> "sem.rel"
  | Sendreg -> "sendreg"
  | Spawn -> "spawn"
  | Nop -> "nop"

type pred = { flag : int; negate : bool }

type instr = {
  pred : pred option;
  op : opcode;
  width : int;
  dtype : dtype;
  dst : operand option;
  srcs : operand list;
  line : int;
}

let nop =
  { pred = None; op = Nop; width = 1; dtype = DW; dst = None; srcs = []; line = 0 }

type program = {
  name : string;
  instrs : instr array;
  surfaces : string array;
  labels : (string * int) list;
  source : string;
}

let surface_slot p name =
  let rec go i =
    if i >= Array.length p.surfaces then None
    else if p.surfaces.(i) = name then Some i
    else go (i + 1)
  in
  go 0

let sreg_name = function
  | Sid -> "sid"
  | Nshred -> "nshred"
  | Eu -> "eu"
  | Tid -> "tid"
  | Lane -> "lane"
  | Param i -> Printf.sprintf "p%d" i

let surf_name surfaces slot =
  if slot >= 0 && slot < Array.length surfaces then surfaces.(slot)
  else Printf.sprintf "?surf%d" slot

let pp_operand ~surfaces fmt = function
  | Reg r -> Format.fprintf fmt "vr%d" r
  | Range (a, b) -> Format.fprintf fmt "[vr%d..vr%d]" a b
  | Flag f -> Format.fprintf fmt "f%d" f
  | Imm i -> Format.fprintf fmt "%ld" i
  | Sreg s -> Format.fprintf fmt "%%%s" (sreg_name s)
  | Surf { slot; index; offset } ->
    Format.fprintf fmt "(%s, vr%d, %d)" (surf_name surfaces slot) index offset
  | Surf2d { slot; xreg; yreg } ->
    Format.fprintf fmt "(%s, vr%d, vr%d)" (surf_name surfaces slot) xreg yreg
  | Remote { shred_reg; reg } -> Format.fprintf fmt "@(vr%d, %d)" shred_reg reg

let pp_instr ~surfaces fmt i =
  Option.iter
    (fun { flag; negate } ->
      Format.fprintf fmt "(%sf%d) " (if negate then "!" else "") flag)
    i.pred;
  let needs_shape =
    match i.op with
    | Jmp | End | Fence | Nop | Semacq | Semrel | Br _ | Spawn -> false
    | _ -> true
  in
  if needs_shape then
    Format.fprintf fmt "%s.%d.%s" (opcode_name i.op) i.width
      (dtype_name i.dtype)
  else Format.pp_print_string fmt (opcode_name i.op);
  let pp_op = pp_operand ~surfaces in
  (match (i.dst, i.srcs) with
  | Some d, [] -> Format.fprintf fmt " %a" pp_op d
  | Some d, srcs ->
    Format.fprintf fmt " %a = %a" pp_op d
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_op)
      srcs
  | None, [] -> ()
  | None, srcs ->
    Format.fprintf fmt " %a"
      (Format.pp_print_list
         ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ")
         pp_op)
      srcs)

(* Profiler frame label: zero-padded pc + rendered instruction, so
   frames sort in program order inside a flamegraph. *)
let frame_name ~surfaces pc instr =
  Format.asprintf "%03d %a" pc (pp_instr ~surfaces) instr

let pp_program fmt p =
  Format.fprintf fmt "; program %s (%d instrs, %d surfaces)@." p.name
    (Array.length p.instrs)
    (Array.length p.surfaces);
  Array.iteri
    (fun idx i ->
      List.iter
        (fun (l, at) -> if at = idx then Format.fprintf fmt "%s:@." l)
        p.labels;
      Format.fprintf fmt "  %a@." (pp_instr ~surfaces:p.surfaces) i)
    p.instrs
