(** Abstract syntax for the X3K accelerator ISA.

    X3K is our stand-in for the GMA X3000 execution-unit ISA described in
    the paper: wide SIMD (up to 16 lanes per instruction), a large vector
    register file (128 registers of 16 x 32-bit lanes per hardware
    thread), per-lane predication via flag registers, media instructions
    (average, sum-of-absolute-differences, saturation), surface-based
    memory access, access to the fixed-function texture sampler, and
    inter-shred register writes.

    The concrete syntax follows the paper's Figure 6 pseudo-code:

    {v
          shl.1.dw   vr1 = %p0, 3
          ld.8.dw    [vr2..vr9] = (A, vr1, 0)
          add.8.dw   [vr18..vr25] = [vr2..vr9], [vr10..vr17]
          st.8.dw    (C, vr1, 0) = [vr18..vr25]
          end
    v} *)

(** Lane data type of an operation. Lanes are always held in 32-bit
    containers; the data type selects memory width and saturation
    behaviour. *)
type dtype =
  | B (* unsigned byte *)
  | W (* signed 16-bit word *)
  | DW (* signed 32-bit doubleword *)
  | F (* IEEE-754 binary32 *)

val dtype_bytes : dtype -> int
val dtype_name : dtype -> string

(** Comparison conditions for [cmp]. Signed for [W]/[DW], unsigned for
    [B], ordered-float for [F]. *)
type cond = Eq | Ne | Lt | Le | Gt | Ge

val cond_name : cond -> string

(** Branch modes test a flag register's low [width] lanes. *)
type brmode = Any | All | None_set

(** Special read-only registers, preloaded per shred by the dispatcher. *)
type sreg =
  | Sid (* global shred id within the parallel region *)
  | Nshred (* team size *)
  | Eu (* executing EU index *)
  | Tid (* hardware thread slot on the EU *)
  | Lane (* per-lane index 0..width-1 (an iota vector) *)
  | Param of int (* %p0..%p7: private/firstprivate values *)

type operand =
  | Reg of int (* vrN, 0..127 *)
  | Range of int * int (* [vrA..vrB], inclusive, A <= B *)
  | Flag of int (* fN, 0..3 *)
  | Imm of int32 (* integer or float-bits immediate *)
  | Sreg of sreg
  | Surf of { slot : int; index : int (* vr holding element index, lane 0 *); offset : int }
      (* (NAME, vrIdx, off): element addressing into surface slot *)
  | Surf2d of { slot : int; xreg : int; yreg : int }
      (* (NAME, vrX, vrY): 2-D element addressing, coords from lane 0 *)
  | Remote of { shred_reg : int; reg : int }
      (* @(vrS, N): register N of the shred whose id is lane 0 of vrS *)

type opcode =
  (* integer / media ALU *)
  | Mov
  | Add
  | Sub
  | Mul
  | Mac (* dst += src1 * src2 *)
  | Min
  | Max
  | Avg (* rounding average, media op *)
  | Abs
  | Sad (* sum of |a-b| over lanes -> lane 0 *)
  | Hadd (* horizontal add of lanes -> lane 0 *)
  | Shl
  | Shr (* logical *)
  | Sar (* arithmetic *)
  | And
  | Or
  | Xor
  | Not
  | Sat (* saturate lanes to the range of dtype *)
  | Bcast (* broadcast lane 0 of the source to all lanes *)
  (* float *)
  | Fadd
  | Fsub
  | Fmul
  | Fmac
  | Fmin
  | Fmax
  | Fdiv (* faults to CEH on division by zero *)
  | Fsqrt (* faults to CEH on negative input *)
  | Fabs
  | Cvtif (* int -> float *)
  | Cvtfi (* float -> int, round to nearest even *)
  | Dpadd (* double-precision pair add: always faults to CEH (paper §3.3) *)
  (* comparison / selection *)
  | Cmp of cond
  | Sel (* dst = flag ? src1 : src2; flag given via predication *)
  (* memory *)
  | Ld
  | St
  | Gather (* per-lane indices *)
  | Scatter
  | Sample (* fixed-function bilinear sampler *)
  (* control *)
  | Br of brmode
  | Jmp
  | End
  (* synchronisation / communication *)
  | Fence
  | Semacq (* hardware semaphore acquire, immediate id *)
  | Semrel
  | Sendreg (* write a register in another shred's register file *)
  | Spawn (* enqueue a child shred: spawn entry_label, paramreg *)
  | Nop

val opcode_name : opcode -> string

(** Predication: [(fN)] executes lanes where the flag bit is set,
    [(!fN)] the complement. *)
type pred = { flag : int; negate : bool }

type instr = {
  pred : pred option;
  op : opcode;
  width : int; (* SIMD lanes: 1, 2, 4, 8 or 16 *)
  dtype : dtype;
  dst : operand option;
  srcs : operand list;
  line : int; (* 1-based source line, for debug info *)
}

val nop : instr

(** A complete assembled unit. *)
type program = {
  name : string;
  instrs : instr array;
  surfaces : string array; (* slot -> symbolic surface name *)
  labels : (string * int) list; (* label -> instruction index *)
  source : string; (* original assembly text *)
}

(** [surface_slot p name] finds the slot bound to a symbolic name. *)
val surface_slot : program -> string -> int option

(** [surf_name surfaces slot] is the symbolic name of a slot, or a
    ["?surfN"] placeholder when the slot is out of range. *)
val surf_name : string array -> int -> string

val pp_operand : surfaces:string array -> Format.formatter -> operand -> unit
val pp_instr : surfaces:string array -> Format.formatter -> instr -> unit

(** Profiler frame label for instruction [pc]: ["003 mul.8.dw ..."] —
    zero-padded pc keeps frames in program order in flamegraphs. *)
val frame_name : surfaces:string array -> int -> instr -> string

(** Disassemble a whole program, with labels re-attached. *)
val pp_program : Format.formatter -> program -> unit
