open X3k_ast

let ( let* ) = Result.bind

let loc_of p i =
  Loc.make ~file:p.name ~line:i.line ~col:1

let err p i fmt = Loc.error (loc_of p i) fmt

(* A "vector-like" source: broadcastable or a real vector. *)
let is_vec_src = function
  | Reg _ | Range _ | Imm _ | Sreg _ -> true
  | Flag _ | Surf _ | Surf2d _ | Remote _ -> false

let is_vec_dst = function
  | Reg _ | Range _ -> true
  | _ -> false

let check_vec_width p i = function
  | Reg _ ->
    if i.width > 16 then err p i "width %d exceeds 16 lanes of one register" i.width
    else Ok ()
  | Range (a, b) ->
    let count = b - a + 1 in
    if i.width mod count <> 0 then
      err p i "width %d not divisible by range of %d registers" i.width count
    else if i.width / count > 16 then
      err p i "width %d spreads >16 lanes per register over [vr%d..vr%d]"
        i.width a b
    else Ok ()
  | _ -> Ok ()

let check_operand_widths p i =
  let all = (match i.dst with Some d -> [ d ] | None -> []) @ i.srcs in
  List.fold_left
    (fun acc o ->
      let* () = acc in
      check_vec_width p i o)
    (Ok ()) all

let nsrcs p i n =
  if List.length i.srcs = n then Ok ()
  else
    err p i "%s expects %d source operand(s), got %d" (opcode_name i.op) n
      (List.length i.srcs)

let vec_dst p i =
  match i.dst with
  | Some d when is_vec_dst d -> Ok ()
  | Some _ -> err p i "%s requires a register destination" (opcode_name i.op)
  | None -> err p i "%s requires a destination" (opcode_name i.op)

let vec_srcs p i =
  List.fold_left
    (fun acc s ->
      let* () = acc in
      if is_vec_src s then Ok ()
      else err p i "%s: bad source operand kind" (opcode_name i.op))
    (Ok ()) i.srcs

let no_dst p i =
  match i.dst with
  | None -> Ok ()
  | Some _ -> err p i "%s takes no destination" (opcode_name i.op)

let branch_target p i o =
  match o with
  | Imm t ->
    let t = Int32.to_int t in
    if t < 0 || t > Array.length p.instrs then
      err p i "branch target %d out of range" t
    else Ok ()
  | _ -> err p i "branch target must be a label"

let surface_in_range p i = function
  | (Surf { slot; _ } | Surf2d { slot; _ }) when slot >= Array.length p.surfaces
    ->
    err p i "surface slot %d unbound" slot
  | _ -> Ok ()

let check_instr p i =
  let* () = check_operand_widths p i in
  let* () =
    List.fold_left
      (fun acc o ->
        let* () = acc in
        surface_in_range p i o)
      (Ok ())
      ((match i.dst with Some d -> [ d ] | None -> []) @ i.srcs)
  in
  match i.op with
  | Add | Sub | Mul | Min | Max | Avg | Shl | Shr | Sar | And | Or | Xor
  | Fadd | Fsub | Fmul | Fmin | Fmax | Fdiv | Dpadd ->
    let* () = vec_dst p i in
    let* () = nsrcs p i 2 in
    vec_srcs p i
  | Mac | Fmac ->
    let* () = vec_dst p i in
    let* () = nsrcs p i 2 in
    vec_srcs p i
  | Mov | Abs | Not | Sat | Bcast | Fsqrt | Fabs | Cvtif | Cvtfi ->
    let* () = vec_dst p i in
    let* () = nsrcs p i 1 in
    vec_srcs p i
  | Sad ->
    let* () = vec_dst p i in
    let* () = nsrcs p i 2 in
    vec_srcs p i
  | Hadd ->
    let* () = vec_dst p i in
    let* () = nsrcs p i 1 in
    vec_srcs p i
  | Cmp _ -> (
    let* () = nsrcs p i 2 in
    let* () = vec_srcs p i in
    match i.dst with
    | Some (Flag _) -> Ok ()
    | _ -> err p i "cmp destination must be a flag register")
  | Sel -> (
    let* () = vec_dst p i in
    let* () = nsrcs p i 2 in
    let* () = vec_srcs p i in
    match i.pred with
    | Some _ -> Ok ()
    | None -> err p i "sel requires predication")
  | Ld | Gather | Sample -> (
    let* () = vec_dst p i in
    let* () = nsrcs p i 1 in
    match (i.op, i.srcs) with
    | Ld, [ (Surf _ | Surf2d _) ] -> Ok ()
    | Gather, [ Surf _ ] -> Ok ()
    | Sample, [ Surf2d _ ] -> Ok ()
    | _, _ -> err p i "%s source must be a surface operand" (opcode_name i.op))
  | St | Scatter -> (
    let* () = nsrcs p i 1 in
    let* () = vec_srcs p i in
    match (i.op, i.dst) with
    | St, Some (Surf _ | Surf2d _) -> Ok ()
    | Scatter, Some (Surf _) -> Ok ()
    | _, _ ->
      err p i "%s destination must be a surface operand" (opcode_name i.op))
  | Br _ -> (
    let* () = no_dst p i in
    let* () = nsrcs p i 2 in
    match i.srcs with
    | [ Flag _; target ] -> branch_target p i target
    | _ -> err p i "br expects a flag register and a label")
  | Jmp -> (
    let* () = no_dst p i in
    let* () = nsrcs p i 1 in
    match i.srcs with
    | [ target ] -> branch_target p i target
    | _ -> assert false)
  | End | Fence | Nop ->
    let* () = no_dst p i in
    nsrcs p i 0
  | Semacq | Semrel -> (
    let* () = no_dst p i in
    let* () = nsrcs p i 1 in
    match i.srcs with
    | [ Imm s ] when Int32.to_int s >= 0 && Int32.to_int s < 16 -> Ok ()
    | _ -> err p i "semaphore id must be an immediate 0..15")
  | Sendreg -> (
    let* () = nsrcs p i 1 in
    let* () = vec_srcs p i in
    match i.dst with
    | Some (Remote _) -> Ok ()
    | _ -> err p i "sendreg destination must be @(vrS, n)")
  | Spawn -> (
    let* () = no_dst p i in
    let* () = nsrcs p i 2 in
    match i.srcs with
    | [ target; Reg _ ] -> branch_target p i target
    | _ -> err p i "spawn expects a label and a parameter register")

(* Accumulate one diagnostic per offending instruction (the first failed
   check; later checks on a malformed instruction are noise) plus the
   termination check, in program order. *)
let check p =
  if Array.length p.instrs = 0 then
    Error [ Loc.errorf (Loc.make ~file:p.name ~line:1 ~col:1) "empty program" ]
  else begin
    let errs = ref [] in
    Array.iter
      (fun i ->
        match check_instr p i with
        | Ok () -> ()
        | Error e -> errs := e :: !errs)
      p.instrs;
    let last = p.instrs.(Array.length p.instrs - 1) in
    (match last.op with
    | End | Jmp -> ()
    | _ ->
      errs :=
        Loc.errorf (loc_of p last)
          "program must end with 'end' or an unconditional 'jmp'"
        :: !errs);
    match List.rev !errs with [] -> Ok p | es -> Error es
  end
