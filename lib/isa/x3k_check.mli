(** Structural validation of parsed X3K programs: operand shapes per
    opcode, SIMD width legality, register-range divisibility, branch
    targets in range, and termination (the program must end in [end] or
    an unconditional [jmp]). Runs after parsing and before encoding, so
    the simulator can assume well-formed instructions.

    [check] accumulates every structural error (one per offending
    instruction, in program order) rather than stopping at the first, so
    drivers can report them all in one pass. The error list is never
    empty. *)

val check : X3k_ast.program -> (X3k_ast.program, Loc.error list) result
