open X3k_ast

(* The single source of truth for X3K issue costs: the GPU sequencer
   charges these per retired instruction (see Gpu), and the Exo-bound
   static analyzer composes the same numbers into worst-case cycle
   bounds — so a static bound is comparable to measured busy_cycles. *)

let issue_cycles i =
  match i.op with
  | Gather | Scatter -> if i.width > 8 then 6 else 3
  | Ld | St | Sample -> if i.width > 8 then 4 else 2
  | _ -> if i.width > 8 then 2 else 1

let taken_branch_penalty = 2

(* Worst case a single retirement of this instruction can add to
   busy_cycles: a taken jmp/br pays the redirect penalty on top of its
   issue cost; [end] finishes the shred without charging busy time. *)
let worst_retire_cycles i =
  match i.op with
  | End -> 0
  | Jmp | Br _ -> issue_cycles i + taken_branch_penalty
  | _ -> issue_cycles i
