open X3k_ast

(* The single source of truth for X3K issue costs: the GPU sequencer
   charges these per retired instruction (see Gpu), and the Exo-bound
   static analyzer composes the same numbers into worst-case cycle
   bounds — so a static bound is comparable to measured busy_cycles.

   Every opcode is listed explicitly in every table. The Exo-opt list
   scheduler and the WCET bound both consume these numbers; a wildcard
   default would let a new opcode silently inherit a cost nobody chose
   for it, so there is none. *)

(* Per-issue sequencer occupancy before SIMD-width doubling: the
   gather/scatter address sequencers take 3 cycles, the linear memory
   pipes 2, everything else single-issues. *)
let base_issue_cycles = function
  | Gather | Scatter -> 3
  | Ld | St | Sample -> 2
  | Mov | Add | Sub | Mul | Mac | Min | Max | Avg | Abs | Sad | Hadd | Shl
  | Shr | Sar | And | Or | Xor | Not | Sat | Bcast | Fadd | Fsub | Fmul
  | Fmac | Fmin | Fmax | Fdiv | Fsqrt | Fabs | Cvtif | Cvtfi | Dpadd | Cmp _
  | Sel | Br _ | Jmp | End | Fence | Semacq | Semrel | Sendreg | Spawn | Nop
    ->
    1

(* Lanes beyond 8 double-pump the issue stage. *)
let issue_cycles i =
  let c = base_issue_cycles i.op in
  if i.width > 8 then 2 * c else c

let taken_branch_penalty = 2

(* Worst case a single retirement of this instruction can add to
   busy_cycles: a taken jmp/br pays the redirect penalty on top of its
   issue cost; [end] finishes the shred without charging busy time. *)
let worst_retire_cycles i =
  match i.op with
  | End -> 0
  | Jmp | Br _ -> issue_cycles i + taken_branch_penalty
  | Mov | Add | Sub | Mul | Mac | Min | Max | Avg | Abs | Sad | Hadd | Shl
  | Shr | Sar | And | Or | Xor | Not | Sat | Bcast | Fadd | Fsub | Fmul
  | Fmac | Fmin | Fmax | Fdiv | Fsqrt | Fabs | Cvtif | Cvtfi | Dpadd | Cmp _
  | Sel | Ld | St | Gather | Scatter | Sample | Fence | Semacq | Semrel
  | Sendreg | Spawn | Nop ->
    issue_cycles i

(* ---- result latencies ----

   Cycles until a consumer can read the value an instruction produced,
   mirroring the EU bypass network in [Gpu] (lat_alu / lat_mul /
   lat_fdiv / lat_fsqrt / lat_cmp — those read these constants, so the
   tables cannot drift apart). Memory results really come from the
   cache/bus path at run time; [mem_latency_cycles] is the nominal
   cache-hit latency the list scheduler plans against. *)

let alu_latency_cycles = 1
let mul_latency_cycles = 3
let fdiv_latency_cycles = 12
let fsqrt_latency_cycles = 16
let cmp_latency_cycles = 1
let mem_latency_cycles = 20

let result_latency_cycles i =
  match i.op with
  | Mul | Mac | Fmac | Sad | Hadd -> mul_latency_cycles
  | Fdiv -> fdiv_latency_cycles
  | Fsqrt -> fsqrt_latency_cycles
  (* dpadd is always CEH-proxied to the IA32 sequencer; plan it like a
     long-latency divide so dependents are not scheduled against it *)
  | Dpadd -> fdiv_latency_cycles
  | Cmp _ -> cmp_latency_cycles
  | Ld | Gather | Sample -> mem_latency_cycles
  | Mov | Add | Sub | Min | Max | Avg | Abs | Shl | Shr | Sar | And | Or
  | Xor | Not | Sat | Bcast | Fadd | Fsub | Fmul | Fmin | Fmax | Fabs
  | Cvtif | Cvtfi | Sel ->
    alu_latency_cycles
  (* no register/flag result to wait on *)
  | St | Scatter | Br _ | Jmp | End | Fence | Semacq | Semrel | Sendreg
  | Spawn | Nop ->
    alu_latency_cycles
