(** X3K per-instruction issue costs — the single table shared by the
    GPU sequencer's retire accounting ([Gpu.busy_cycles], the
    [Gpu.set_profiler] hook) and the Exo-bound static WCET analysis,
    so static bounds and measured busy cycles are directly comparable. *)

(** Cycles one issue of the instruction occupies the sequencer. *)
val issue_cycles : X3k_ast.instr -> int

(** Extra cycles a taken branch ([jmp], taken [br]) pays. *)
val taken_branch_penalty : int

(** Worst case one retirement can add to busy_cycles: issue cost, plus
    the taken-branch penalty for [jmp]/[br]; 0 for [end]. *)
val worst_retire_cycles : X3k_ast.instr -> int
