(** X3K per-instruction issue costs — the single table shared by the
    GPU sequencer's retire accounting ([Gpu.busy_cycles], the
    [Gpu.set_profiler] hook), the Exo-bound static WCET analysis, and
    the Exo-opt list scheduler, so static bounds and measured busy
    cycles are directly comparable.

    Every opcode has an explicit entry in every table — there are no
    wildcard defaults for the optimizer to schedule against. *)

(** Issue occupancy of one opcode before SIMD-width scaling. *)
val base_issue_cycles : X3k_ast.opcode -> int

(** Cycles one issue of the instruction occupies the sequencer
    ([base_issue_cycles], doubled for widths above 8 lanes). *)
val issue_cycles : X3k_ast.instr -> int

(** Extra cycles a taken branch ([jmp], taken [br]) pays. *)
val taken_branch_penalty : int

(** Worst case one retirement can add to busy_cycles: issue cost, plus
    the taken-branch penalty for [jmp]/[br]; 0 for [end]. *)
val worst_retire_cycles : X3k_ast.instr -> int

(** {2 Result latencies}

    Cycles until a dependent instruction can read this instruction's
    result, mirroring the EU bypass network in [Gpu] (which reads these
    constants for its [lat_*] values). *)

val alu_latency_cycles : int
val mul_latency_cycles : int
val fdiv_latency_cycles : int
val fsqrt_latency_cycles : int
val cmp_latency_cycles : int

(** Nominal cache-hit latency the scheduler plans loads against (the
    real readiness comes from the memory path at run time). *)
val mem_latency_cycles : int

val result_latency_cycles : X3k_ast.instr -> int
