open X3k_ast

(* Registers a single operand touches, as (vr list, flag list). A [Reg]
   of any SIMD width stays within one architectural register; [Range]
   spreads the lanes over vrA..vrB. *)
let operand_regs = function
  | Reg r -> ([ r ], [])
  | Range (a, b) -> (List.init (b - a + 1) (fun k -> a + k), [])
  | Flag f -> ([], [ f ])
  | Imm _ | Sreg _ -> ([], [])
  | Surf { index; _ } -> ([ index ], [])
  | Surf2d { xreg; yreg; _ } -> ([ xreg; yreg ], [])
  | Remote { shred_reg; _ } -> ([ shred_reg ], [])

type def_use = {
  reg_uses : int list;
  reg_defs : int list;
  flag_uses : int list;
  flag_defs : int list;
  predicated : bool; (* defs are conditional on the predicate *)
}

let dedup l = List.sort_uniq compare l

let def_use i =
  let src_regs, src_flags =
    List.fold_left
      (fun (rs, fs) o ->
        let r, f = operand_regs o in
        (r @ rs, f @ fs))
      ([], []) i.srcs
  in
  let pred_flags =
    match i.pred with Some { flag; _ } -> [ flag ] | None -> []
  in
  (* A surface or remote destination is a store: its address registers
     are *uses*; only [Reg]/[Range]/[Flag] destinations define state. *)
  let dst_reg_defs, dst_flag_defs, dst_reg_uses =
    match i.dst with
    | None -> ([], [], [])
    | Some (Reg _ as o) | Some (Range _ as o) -> (fst (operand_regs o), [], [])
    | Some (Flag f) -> ([], [ f ], [])
    | Some (Surf _ as o) | Some (Surf2d _ as o) | Some (Remote _ as o) ->
      ([], [], fst (operand_regs o))
    | Some (Imm _) | Some (Sreg _) -> ([], [], [])
  in
  (* mac/fmac accumulate into the destination: the def is also a use *)
  let acc_uses =
    match i.op with Mac | Fmac -> dst_reg_defs | _ -> []
  in
  {
    reg_uses = dedup (src_regs @ dst_reg_uses @ acc_uses);
    reg_defs = dedup dst_reg_defs;
    flag_uses = dedup (src_flags @ pred_flags);
    flag_defs = dedup dst_flag_defs;
    predicated = i.pred <> None;
  }

(* Whether the instruction has an effect beyond its register/flag defs
   (memory traffic, synchronisation, control, shred management) — such
   instructions are never dead stores. *)
let has_side_effect i =
  match i.op with
  | St | Scatter | Fence | Semacq | Semrel | Sendreg | Spawn | End | Jmp
  | Br _ ->
    true
  | Ld | Gather | Sample ->
    (* loads are pure in the simulator's memory model, but keep sampler
       accesses (they can fault through the ATR) *)
    false
  | _ -> false

let branch_target i =
  match (i.op, i.srcs) with
  | (Jmp, [ Imm t ]) | (Br _, [ _; Imm t ]) | (Spawn, [ Imm t; _ ]) ->
    Some (Int32.to_int t)
  | _ -> None

(* Successors within the shred's own control flow. [Spawn]'s target is a
   *new* shred's entry point, not a successor of this one — it is
   reported by {!entries} instead. *)
let succs p idx =
  let n = Array.length p.instrs in
  let i = p.instrs.(idx) in
  let fall = if idx + 1 < n then [ idx + 1 ] else [] in
  match i.op with
  | End -> []
  | Jmp -> ( match branch_target i with Some t when t < n -> [ t ] | _ -> [])
  | Br _ -> (
    match branch_target i with
    | Some t when t < n -> dedup (t :: fall)
    | _ -> fall)
  | _ -> fall

let entries p =
  let spawned =
    Array.to_list p.instrs
    |> List.filter_map (fun i ->
           match (i.op, branch_target i) with
           | Spawn, Some t when t < Array.length p.instrs -> Some t
           | _ -> None)
  in
  dedup (0 :: spawned)

let reachable p =
  let n = Array.length p.instrs in
  let seen = Array.make n false in
  let rec go idx =
    if idx < n && not seen.(idx) then begin
      seen.(idx) <- true;
      List.iter go (succs p idx)
    end
  in
  List.iter go (entries p);
  seen

let cfg p =
  Cfg.build ~n:(Array.length p.instrs) ~entries:(entries p) ~succs:(succs p)
