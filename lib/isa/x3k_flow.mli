(** Control-flow and def-use facts over checked X3K programs — the
    substrate for the Exo-check dataflow passes (uninitialized reads,
    dead stores, unreachable code) and for the shred access summaries.

    Instruction indices are positions in [program.instrs]; branch
    operands have already been resolved to indices by the parser. *)

type def_use = {
  reg_uses : int list; (* vector registers read (including store addresses) *)
  reg_defs : int list; (* vector registers written *)
  flag_uses : int list; (* flag registers read (sources and predicates) *)
  flag_defs : int list; (* flag registers written *)
  predicated : bool; (* defs happen only when the predicate fires *)
}

val def_use : X3k_ast.instr -> def_use

(** Registers a single operand touches, as [(vrs, flags)]. *)
val operand_regs : X3k_ast.operand -> int list * int list

(** Whether the instruction has effects beyond its register/flag defs
    (stores, fences, semaphores, sends, spawns, control flow) — such
    instructions are never dead stores. *)
val has_side_effect : X3k_ast.instr -> bool

(** Resolved branch/spawn target, if the instruction has one. *)
val branch_target : X3k_ast.instr -> int option

(** CFG successors of the instruction at an index, within one shred.
    [spawn] targets are {e not} successors — they are extra {!entries}. *)
val succs : X3k_ast.program -> int -> int list

(** Entry points: instruction 0 plus every [spawn] target. *)
val entries : X3k_ast.program -> int list

(** [reachable p] marks the instructions reachable from {!entries}. *)
val reachable : X3k_ast.program -> bool array

(** Full control-flow analysis (dominators, loops, irreducibility) of
    the shred graph — see {!Cfg}. Spawn targets are extra entries. *)
val cfg : X3k_ast.program -> Cfg.t
