open Exochi_memory
open Exochi_core
module Machine = Exochi_cpu.Machine
module Image = Exochi_media.Image

type result = {
  time_ps : int;
  correct : bool;
  max_diff : int;
  gpu_instrs : int;
  cpu_instrs : int;
  flush_bytes : int;
  copy_bytes : int;
  atr_proxies : int;
  gtt_hits : int;
  ceh_proxies : int;
  shreds : int;
  thread_switches : int;
  protocol_violations : int;
  cpu_busy_ps : int;
  gpu_busy_ps : int;
  faults_injected : int;
  retries : int;
  quarantined_seqs : int;
  fallback_shreds : int;
  recovered_faults : int;
  fatal_faults : int;
}

type split = All_gpu | All_cpu | Cooperative of float | Dynamic

let oracle_fraction ~cpu_time ~gpu_time =
  (* both sides finish together when f * t_cpu = (1-f) * t_gpu, i.e. the
     CPU share is proportional to its relative speed *)
  if cpu_time <= 0 || gpu_time <= 0 then 0.0
  else begin
    let tc = float_of_int cpu_time and tg = float_of_int gpu_time in
    tg /. (tc +. tg)
  end

(* Allocate and populate the workload's surfaces; returns descriptors in
   surface-name order plus the lookup alist. *)
let materialise platform (io : Kernel.io) =
  let aspace = Exo_platform.aspace platform in
  let bpp_of name =
    match List.assoc_opt ("bpp:" ^ name) io.Kernel.meta with
    | Some b -> b
    | None -> 1
  in
  let mk_desc name width height mode =
    let bpp = bpp_of name in
    let pitch = Surface.required_pitch ~width ~bpp ~tiling:Surface.Linear in
    let bytes = pitch * height in
    let base = Address_space.alloc aspace ~name ~bytes ~align:64 in
    (* warm the buffer: allocation and first touch happen before the
       measured region, as in any steady-state media pipeline *)
    let rec touch off =
      if off < bytes then begin
        ignore (Address_space.fault_in aspace ~vaddr:(base + off));
        touch (off + Phys_mem.page_size)
      end
    in
    touch 0;
    Chi_descriptor.alloc platform ~name ~base ~width ~height ~bpp ~mode ()
  in
  let input_descs =
    List.map
      (fun (name, img) ->
        let d =
          mk_desc name img.Image.width img.Image.height Chi_descriptor.Input
        in
        Image.store aspace img ~surface:d.Chi_descriptor.surface;
        (name, d))
      io.Kernel.inputs
  in
  let output_descs =
    List.map
      (fun (name, w, h) -> (name, mk_desc name w h Chi_descriptor.Output))
      io.Kernel.outputs
  in
  (input_descs, output_descs)

let load_via32 platform kernel (io : Kernel.io) ~lo ~hi descs =
  let aspace = Exo_platform.aspace platform in
  let src = kernel.Kernel.via32_asm io ~lo ~hi in
  let prog = Exochi_isa.Via32_asm.assemble_exn ~name:kernel.Kernel.abbrev src in
  let pool = kernel.Kernel.cpool io in
  let pool_base =
    Address_space.alloc aspace ~name:"CPOOL"
      ~bytes:(max 16 (4 * Array.length pool))
      ~align:64
  in
  Array.iteri
    (fun i v -> Address_space.write_u32 aspace (pool_base + (4 * i)) v)
    pool;
  let symbols =
    ("CPOOL", pool_base)
    :: List.map
         (fun (name, d) ->
           (name, d.Chi_descriptor.surface.Surface.base))
         descs
  in
  (* a small stack for the CPU program *)
  let stack =
    Address_space.alloc aspace ~name:"stack" ~bytes:65536 ~align:4096
  in
  let cpu = Exo_platform.cpu platform in
  Machine.set_reg cpu Exochi_isa.Via32_ast.ESP
    (Int32.of_int (stack + 65536 - 16));
  Machine.load_program prog ~symbols

(* Run the master's own VIA32 work. While a heterogeneous team is
   outstanding (master_nowait), the exo-sequencers run concurrently: the
   user-level-interrupt poll hook advances the GPU to the CPU's local time
   every couple of microseconds so the two sides contend for the bus in
   (simulated) real time. *)
let run_cpu_program ?(concurrent_gpu = false) platform loaded =
  let cpu = Exo_platform.cpu platform in
  let gpu = Exo_platform.gpu platform in
  let last_sync = ref (Machine.now_ps cpu) in
  let poll cpu =
    if concurrent_gpu && Machine.now_ps cpu - !last_sync > 2_000_000 then begin
      last_sync := Machine.now_ps cpu;
      ignore (Exochi_accel.Gpu.run_until gpu !last_sync)
    end
  in
  match
    Machine.run cpu loaded ~poll ~entry:0 ~intrinsics:(fun name _ ->
        failwith ("unexpected intrinsic " ^ name))
  with
  | Machine.Halted | Machine.Ret_to_host -> ()
  | Machine.Fuel_exhausted -> failwith "CPU kernel ran out of fuel"
  | Machine.Paused _ -> assert false

let check_outputs platform (io : Kernel.io) golden output_descs =
  let aspace = Exo_platform.aspace platform in
  ignore io;
  List.fold_left
    (fun (ok, worst) (name, expected) ->
      match List.assoc_opt name output_descs with
      | None -> (false, worst)
      | Some d ->
        let got = Image.load aspace ~surface:d.Chi_descriptor.surface in
        let diff = Image.max_abs_diff expected got in
        (ok && diff = 0, max worst diff))
    (true, 0) golden

(* Dynamic work distribution (paper Section 5.3): the unit space is cut
   into chunks; the runtime keeps the exo-sequencers' work queue topped up
   and the IA32 master claims a chunk for itself whenever the queue is
   full enough, so both sequencer kinds finish together without an a
   priori partition. *)
let run_dynamic ~opt_level platform kernel io input_descs output_descs =
  let cpu = Exo_platform.cpu platform in
  let gpu = Exo_platform.gpu platform in
  let costs = Exo_platform.costs platform in
  let units = io.Kernel.units in
  let chunk = max 1 (units / 64) in
  let prog =
    Exochi_opt.Opt.optimize opt_level
      (Exochi_isa.X3k_asm.assemble_exn ~name:kernel.Kernel.abbrev
         (kernel.Kernel.x3k_asm io))
  in
  let surfaces =
    Array.map
      (fun sname ->
        match
          List.find_opt
            (fun (n, _) -> n = sname)
            (input_descs @ output_descs)
        with
        | Some (_, d) -> d.Chi_descriptor.surface
        | None -> invalid_arg ("dynamic: no descriptor for " ^ sname))
      prog.Exochi_isa.X3k_ast.surfaces
  in
  Array.iter
    (fun s ->
      Exo_platform.prewalk platform ~vaddr:s.Surface.base
        ~len:(Surface.byte_size s))
    surfaces;
  Exochi_accel.Gpu.bind gpu ~prog ~surfaces;
  let next = ref 0 in
  let cpu_busy = ref 0 in
  let take n =
    let lo = !next in
    let hi = min units (lo + n) in
    next := hi;
    (lo, hi)
  in
  let feed_gpu n =
    let lo, hi = take n in
    if hi > lo then begin
      Machine.add_time_ps cpu
        (costs.Exo_platform.signal_ps
        + ((hi - lo) * costs.Exo_platform.dispatch_cpu_ps));
      (* let the exo-sequencers execute up to the master's clock before the
         new work lands (not just jump their clocks forward) *)
      ignore (Exochi_accel.Gpu.run_until gpu (Machine.now_ps cpu));
      Exochi_accel.Gpu.enqueue gpu
        (List.init (hi - lo) (fun k ->
             {
               Exochi_accel.Gpu.shred_id = lo + k;
               entry = 0;
               params = kernel.Kernel.unit_params io (lo + k);
             }))
    end
  in
  let cpu_chunk = max 1 (chunk / 2) in
  (* adaptive rates, measured as the run progresses: the master only
     claims a chunk while doing so cannot extend the critical path *)
  let cpu_unit_ps = ref 0 in
  let t_start = Machine.now_ps cpu in
  let gpu_unit_ps () =
    let done_ = Exochi_accel.Gpu.shreds_completed gpu in
    if done_ = 0 then 0
    else (Exochi_accel.Gpu.now_ps gpu - t_start) / done_
  in
  let master_should_claim () =
    if !cpu_unit_ps = 0 then true (* first chunk: measure *)
    else begin
      let backlog = units - !next + Exochi_accel.Gpu.queue_length gpu in
      let remaining_gpu_ps = backlog * gpu_unit_ps () in
      !cpu_unit_ps * cpu_chunk * 2 < remaining_gpu_ps
    end
  in
  while !next < units do
    (* keep several chunks queued so the exo-sequencers never starve
       while the master is busy with its own piece *)
    while
      Exochi_accel.Gpu.queue_length gpu < 6 * chunk && !next < units
    do
      feed_gpu chunk
    done;
    if !next < units then
      if units - !next > 4 * chunk && master_should_claim () then begin
        let lo, hi = take cpu_chunk in
        let loaded =
          load_via32 platform kernel io ~lo ~hi (input_descs @ output_descs)
        in
        let c0 = Machine.now_ps cpu in
        run_cpu_program ~concurrent_gpu:true platform loaded;
        let dt = Machine.now_ps cpu - c0 in
        cpu_busy := !cpu_busy + dt;
        cpu_unit_ps := dt / (hi - lo)
      end
      else feed_gpu (min chunk (units - !next))
  done;
  ignore (Exo_platform.barrier platform);
  !cpu_busy

let run ?(memmodel = Memmodel.Cc_shared) ?flush_policy ?gpu_config
    ?gtt_enabled ?(devices = 1) ?fault_plan ?trace ?(split = All_gpu)
    ?(seed = 42L) ?frames ?(validate = true) ?(opt_level = Exochi_opt.Opt.O0)
    kernel scale =
  (match (fault_plan, split) with
  | Some _, Dynamic ->
    invalid_arg
      "Harness: fault injection with dynamic distribution is not supported \
       (the dynamic feeder bypasses the supervised drain)"
  | _ -> ());
  if devices > 1 && split = Dynamic then
    invalid_arg
      "Harness: dynamic distribution drives device 0 directly and cannot \
       shard across devices";
  let prng = Exochi_util.Prng.create seed in
  let io = kernel.Kernel.make_io ?frames prng scale in
  let platform =
    Exo_platform.create ~memmodel ?gpu_config ?gtt_enabled ~devices ?fault_plan
      ?trace ()
  in
  let flush_policy =
    match flush_policy with
    | Some p -> Some p
    | None ->
      (* interleaved flushing is only protocol-safe when shreds consume
         their inputs in band order *)
      if kernel.Kernel.band_ordered then None
      else Some Chi_runtime.Upfront
  in
  let rt = Chi_runtime.create ~platform ?flush_policy () in
  let cpu = Exo_platform.cpu platform in
  let gpu = Exo_platform.gpu platform in
  let input_descs, output_descs = materialise platform io in
  let golden = if validate then kernel.Kernel.golden io else [] in
  (* the input data was produced by the preceding IA32 pipeline stage *)
  List.iter (fun (_, d) -> Chi_runtime.produce rt d) input_descs;
  let descriptors = List.map snd (input_descs @ output_descs) in
  let units = io.Kernel.units in
  let cpu_units =
    match split with
    | All_gpu | Dynamic -> 0
    | All_cpu -> units
    | Cooperative f ->
      let u = int_of_float (Float.round (f *. float_of_int units)) in
      min units (max 0 u)
  in
  let gpu_units = units - cpu_units in
  let t0 = Machine.now_ps cpu in
  let cpu_busy = ref 0 in
  if split = Dynamic then begin
    if memmodel <> Memmodel.Cc_shared then
      invalid_arg "Harness: dynamic distribution requires CC-shared memory";
    cpu_busy :=
      run_dynamic ~opt_level platform kernel io input_descs output_descs
  end;
  (* launch the heterogeneous team first (master_nowait), then the IA32
     master processes its own share, then waits at the barrier *)
  let team =
    if gpu_units > 0 && split <> Dynamic then begin
      let prog =
        Exochi_opt.Opt.optimize opt_level
          (Exochi_isa.X3k_asm.assemble_exn ~name:kernel.Kernel.abbrev
             (kernel.Kernel.x3k_asm io))
      in
      Some
        (Chi_runtime.parallel rt ~prog ~descriptors ~num_threads:gpu_units
           ~params:(fun i -> kernel.Kernel.unit_params io (i + cpu_units))
           ~master_nowait:(cpu_units > 0) ())
    end
    else None
  in
  if cpu_units > 0 then begin
    let loaded =
      load_via32 platform kernel io ~lo:0 ~hi:cpu_units
        (input_descs @ output_descs)
    in
    let c0 = Machine.now_ps cpu in
    run_cpu_program ~concurrent_gpu:(team <> None) platform loaded;
    cpu_busy := Machine.now_ps cpu - c0
  end;
  Option.iter (fun team -> Chi_runtime.wait rt team) team;
  let t1 = Machine.now_ps cpu in
  Exo_platform.emit_mem_counters platform;
  let correct, max_diff =
    if validate then check_outputs platform io golden output_descs
    else (true, 0)
  in
  ignore gpu;
  (* GPU-side counters aggregate over the device set (one term at one
     device — the historical numbers) *)
  let sum_gpus f =
    let tot = ref 0 in
    for d = 0 to Exo_platform.devices platform - 1 do
      tot := !tot + f (Exo_platform.gpu_dev platform d)
    done;
    !tot
  in
  let injected_total =
    let tot = ref 0 in
    for d = 0 to Exo_platform.devices platform - 1 do
      match Exo_platform.fault_plan_dev platform d with
      | Some p -> tot := !tot + Exochi_faults.Fault_plan.injected_total p
      | None -> ()
    done;
    !tot
  in
  {
    time_ps = t1 - t0;
    correct;
    max_diff;
    gpu_instrs = sum_gpus Exochi_accel.Gpu.instructions_retired;
    cpu_instrs = Machine.instructions_retired cpu;
    flush_bytes = Chi_runtime.last_flush_bytes rt;
    copy_bytes = Chi_runtime.last_copy_bytes rt;
    atr_proxies = Exo_platform.atr_proxies platform;
    gtt_hits = Exo_platform.gtt_hits platform;
    ceh_proxies = Exo_platform.ceh_proxies platform;
    shreds = sum_gpus Exochi_accel.Gpu.shreds_completed;
    thread_switches = sum_gpus Exochi_accel.Gpu.thread_switches;
    protocol_violations = Exo_platform.protocol_violations platform;
    cpu_busy_ps = !cpu_busy;
    gpu_busy_ps =
      sum_gpus (fun g ->
          Exochi_accel.Gpu.busy_cycles g
          * Exochi_util.Timebase.ps_per_cycle (Exochi_accel.Gpu.clock g));
    faults_injected = injected_total;
    retries =
      (let r = Chi_runtime.recovery rt in
       r.Chi_runtime.redispatches + r.Chi_runtime.doorbell_redeliveries
       + Exo_platform.atr_transient_retries platform);
    quarantined_seqs = (Chi_runtime.recovery rt).Chi_runtime.quarantined_seqs;
    fallback_shreds = (Chi_runtime.recovery rt).Chi_runtime.fallback_shreds;
    recovered_faults =
      max 0 (injected_total - (Chi_runtime.recovery rt).Chi_runtime.fatal);
    fatal_faults = (Chi_runtime.recovery rt).Chi_runtime.fatal;
  }
