(** Kernel execution harness: sets up a fresh EXO platform, materialises a
    workload's surfaces in the shared virtual address space, runs the
    kernel on the chosen sequencers through the CHI runtime, validates the
    outputs against the golden reference, and reports simulated time.

    This is the measurement machinery behind Figures 7, 8 and 10. *)

type result = {
  time_ps : int; (* wall-clock on the simulated platform *)
  correct : bool; (* outputs bit-identical to the golden reference *)
  max_diff : int; (* worst absolute sample difference (0 when correct) *)
  gpu_instrs : int;
  cpu_instrs : int;
  flush_bytes : int;
  copy_bytes : int;
  atr_proxies : int;
  gtt_hits : int;
  ceh_proxies : int;
  shreds : int;
  thread_switches : int;
  protocol_violations : int;
  cpu_busy_ps : int; (* IA32 busy time inside the measured window *)
  gpu_busy_ps : int; (* exo-sequencer busy time (issue cycles) *)
  (* fault injection & recovery (all zero without a fault plan) *)
  faults_injected : int; (* decisions the plan turned into faults *)
  retries : int; (* re-dispatches + doorbell re-rings + ATR retries *)
  quarantined_seqs : int; (* HW-thread slots removed from service *)
  fallback_shreds : int; (* shreds proxy-executed on the IA32 sequencer *)
  recovered_faults : int; (* injected - fatal *)
  fatal_faults : int; (* faults recovery could not absorb *)
}

(** How to split the unit space (Figure 10). [Cooperative f] statically
    gives fraction [f] of the units to the IA32 sequencer (the rest run as
    exo-sequencer shreds with [master_nowait]); [Dynamic] self-schedules
    chunks of units onto whichever sequencer kind is hungry — the dynamic
    work-distribution policy of paper Section 5.3 (CC-shared memory
    only). *)
type split = All_gpu | All_cpu | Cooperative of float | Dynamic

(** [fault_plan] installs deterministic fault injection for the run; the
    CHI runtime's self-healing dispatch absorbs the faults (outputs stay
    bit-correct, the recovery counters in {!result} light up). Not
    compatible with [split = Dynamic].

    [devices] (default 1) builds the platform with that many X3K devices
    and lets the CHI runtime shard the team row-wise across them;
    GPU-side counters in {!result} aggregate over the whole device set.
    [devices:1] is bit- and time-identical to omitting the argument.
    Not compatible with [split = Dynamic] (the dynamic feeder drives
    device 0 directly). *)
val run :
  ?memmodel:Exochi_memory.Memmodel.config ->
  ?flush_policy:Exochi_core.Chi_runtime.flush_policy ->
  ?gpu_config:Exochi_accel.Gpu.config ->
  ?gtt_enabled:bool ->
  ?devices:int ->
  ?fault_plan:Exochi_faults.Fault_plan.t ->
  ?trace:Exochi_obs.Trace.sink ->
  ?split:split ->
  ?seed:int64 ->
  ?frames:int ->
  ?validate:bool ->
  ?opt_level:Exochi_opt.Opt.level ->
  Kernel.t ->
  Kernel.scale ->
  result

(** [oracle_fraction ~cpu_time ~gpu_time] — the work fraction to give the
    IA32 sequencer so both finish together, assuming linear scaling
    (the paper's oracle partition). *)
val oracle_fraction : cpu_time:int -> gpu_time:int -> float
