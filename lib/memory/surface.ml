open Exochi_util

type tiling = Pte.X3k.tiling = Linear | Tiled_x | Tiled_y
type mode = Input | Output | In_out

type t = {
  id : int;
  name : string;
  base : int;
  width : int;
  height : int;
  bpp : int;
  pitch : int;
  tiling : tiling;
  mode : mode;
}

(* X tiles: 512 bytes x 8 rows; Y tiles: 128 bytes x 32 rows (16-byte
   OWord columns). These are the classic Intel GPU tile geometries. *)
let xtile_w = 512
let xtile_h = 8
let ytile_w = 128
let ytile_h = 32
let yt_col = 16

let required_pitch ~width ~bpp ~tiling =
  let row = width * bpp in
  match tiling with
  | Linear -> Bits.align_up row 64
  | Tiled_x -> Bits.align_up row xtile_w
  | Tiled_y -> Bits.align_up row ytile_w

let aligned_height t =
  match t.tiling with
  | Linear -> t.height
  | Tiled_x -> Bits.align_up t.height xtile_h
  | Tiled_y -> Bits.align_up t.height ytile_h

let byte_size t = t.pitch * aligned_height t

let make ~id ~name ~base ~width ~height ~bpp ~tiling ~mode =
  if width <= 0 || height <= 0 then invalid_arg "Surface.make: dimensions";
  if bpp <> 1 && bpp <> 2 && bpp <> 4 then invalid_arg "Surface.make: bpp";
  if base < 0 then invalid_arg "Surface.make: base";
  let pitch = required_pitch ~width ~bpp ~tiling in
  { id; name; base; width; height; bpp; pitch; tiling; mode }

let check_bounds t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg
      (Printf.sprintf "Surface %s: (%d,%d) outside %dx%d" t.name x y t.width
         t.height)

let element_addr t ~x ~y =
  check_bounds t ~x ~y;
  let xb = x * t.bpp in
  match t.tiling with
  | Linear -> t.base + (y * t.pitch) + xb
  | Tiled_x ->
    let tiles_per_row = t.pitch / xtile_w in
    let tile = ((y / xtile_h) * tiles_per_row) + (xb / xtile_w) in
    let within = (y mod xtile_h * xtile_w) + (xb mod xtile_w) in
    t.base + (tile * xtile_w * xtile_h) + within
  | Tiled_y ->
    let tiles_per_row = t.pitch / ytile_w in
    let tile = ((y / ytile_h) * tiles_per_row) + (xb / ytile_w) in
    let col = xb mod ytile_w / yt_col in
    let within = (col * yt_col * ytile_h) + (y mod ytile_h * yt_col) + (xb mod yt_col) in
    t.base + (tile * ytile_w * ytile_h) + within

let row_addr t ~y =
  check_bounds t ~x:0 ~y;
  match t.tiling with
  | Linear -> t.base + (y * t.pitch)
  | Tiled_x | Tiled_y -> element_addr t ~x:0 ~y

let contains t ~vaddr = vaddr >= t.base && vaddr < t.base + byte_size t

(* Extent queries for code that reasons about *declared* dimensions
   before any surface object exists (the Exo-check static analyzer):
   1-D accelerator addressing treats a surface as a row-major array of
   [width * height] elements, so a declared extent admits exactly the
   element indices [0, width*height). *)

let extent_elements ~width ~height = width * height

let extent_bytes ~width ~height ~bpp = width * height * bpp

let index_in_extent ~width ~height index =
  index >= 0 && index < extent_elements ~width ~height

let element_count t = extent_elements ~width:t.width ~height:t.height

let pp fmt t =
  Format.fprintf fmt "surface#%d %s @%#x %dx%d bpp=%d pitch=%d %s %s" t.id
    t.name t.base t.width t.height t.bpp t.pitch
    (match t.tiling with Linear -> "linear" | Tiled_x -> "tiledX" | Tiled_y -> "tiledY")
    (match t.mode with Input -> "in" | Output -> "out" | In_out -> "inout")
