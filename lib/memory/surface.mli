(** Two-dimensional surfaces — the accelerator's native view of memory.

    The GMA X3000 accesses virtual memory through *surfaces*: 2-D blocks
    with a pixel format, a pitch and a tiling layout (paper §4.4). The CHI
    descriptor API ({!Exochi_core.Chi_descriptor}) wraps these. Address
    computation, including the X/Y tile swizzles, happens here, so both
    the sampler and ordinary surface loads agree on the layout. *)

type tiling = Pte.X3k.tiling = Linear | Tiled_x | Tiled_y

type mode = Input | Output | In_out

type t = {
  id : int;
  name : string;
  base : int; (* virtual base address *)
  width : int; (* in elements *)
  height : int;
  bpp : int; (* bytes per element: 1, 2 or 4 *)
  pitch : int; (* bytes per row, tiling-aligned *)
  tiling : tiling;
  mode : mode;
}

(** [required_pitch ~width ~bpp ~tiling] is the smallest legal pitch:
    64-byte aligned for linear, 512 for X-tiled, 128 for Y-tiled. *)
val required_pitch : width:int -> bpp:int -> tiling:tiling -> int

(** Total bytes of backing store ([pitch * aligned_height]); X tiles are
    8 rows tall and Y tiles 32, so tiled surfaces round the height up. *)
val byte_size : t -> int

(** [make ~id ~name ~base ~width ~height ~bpp ~tiling ~mode] — validates
    dimensions and computes the pitch. *)
val make :
  id:int ->
  name:string ->
  base:int ->
  width:int ->
  height:int ->
  bpp:int ->
  tiling:tiling ->
  mode:mode ->
  t

(** [element_addr t ~x ~y] is the virtual address of element [(x, y)],
    applying the tile swizzle. Out-of-bounds coordinates are rejected with
    [Invalid_argument] — the hardware's surface-state bounds check. *)
val element_addr : t -> x:int -> y:int -> int

(** [row_addr t ~y] is the address of element [(0, y)]. For linear
    surfaces, consecutive x share a row segment; for tiled surfaces use
    {!element_addr} per element. *)
val row_addr : t -> y:int -> int

(** [contains t ~vaddr] — whether an address falls in the surface's
    backing range. *)
val contains : t -> vaddr:int -> bool

(** {1 Declared-extent queries}

    Used by the Exo-check static analyzer, which reasons about the
    [width x height x bpp] extents declared in [chi_desc] calls before
    any surface is allocated. 1-D accelerator addressing ([Surf]
    operands) treats a surface as a row-major array of
    [width * height] elements. *)

(** Addressable elements of a declared [width x height] extent. *)
val extent_elements : width:int -> height:int -> int

(** Bytes spanned by the declared elements (excludes pitch padding). *)
val extent_bytes : width:int -> height:int -> bpp:int -> int

(** Whether a 1-D element index falls inside the declared extent — the
    static counterpart of the {!element_addr} bounds check. *)
val index_in_extent : width:int -> height:int -> int -> bool

(** [element_count t = extent_elements ~width:t.width ~height:t.height]. *)
val element_count : t -> int

val pp : Format.formatter -> t -> unit
