(* Log-bucketed streaming histogram (HDR-style): O(1) record, O(1)
   memory, deterministic quantiles with a bounded relative error, and
   lossless merge.

   Bucketing: a positive value [v] is decomposed with [Float.frexp] into
   [m * 2^e] (m in [0.5,1)) and lands in one of [sub] linear sub-buckets
   of its octave, so the relative width of every bucket is at most
   [1/sub] (3.125% at sub = 32). frexp is exact — no logarithm, no libm
   rounding differences — so the same value stream always produces the
   same buckets on any platform, and two histograms built from permuted
   streams are identical structure-for-structure. Quantiles use the
   nearest-rank rule over the cumulative bucket counts and report the
   bucket midpoint clamped into the exact observed [min, max]. *)

let sub = 32
let emin = -16 (* smallest tracked octave: values below 2^-17 clamp *)
let emax = 63 (* largest: values at or above 2^63 clamp *)
let octaves = emax - emin + 1
let nbuckets = octaves * sub

(* Worst-case relative half-width of one bucket: quantiles land within
   this fraction of any sample that shares the bucket. *)
let rel_error = 1.0 /. float_of_int sub

type t = {
  mutable count : int;
  mutable zeros : int; (* values <= 0, reported as 0 *)
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
  buckets : int array;
}

let create () =
  {
    count = 0;
    zeros = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
    buckets = Array.make nbuckets 0;
  }

let index_of v =
  (* v > 0 *)
  let m, e = Float.frexp v in
  if e < emin then 0
  else if e > emax then nbuckets - 1
  else begin
    let s = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int sub) in
    let s = if s >= sub then sub - 1 else s in
    ((e - emin) * sub) + s
  end

(* Bucket [idx] covers [2^(e-1) * (1 + s/sub), 2^(e-1) * (1 + (s+1)/sub)). *)
let bucket_lo idx =
  let e = emin + (idx / sub) and s = idx mod sub in
  Float.ldexp (1.0 +. (float_of_int s /. float_of_int sub)) (e - 1)

let bucket_hi idx =
  let e = emin + (idx / sub) and s = idx mod sub in
  Float.ldexp (1.0 +. (float_of_int (s + 1) /. float_of_int sub)) (e - 1)

let bucket_mid idx = 0.5 *. (bucket_lo idx +. bucket_hi idx)

let record t v =
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v;
  if v <= 0.0 then t.zeros <- t.zeros + 1
  else begin
    let i = index_of v in
    t.buckets.(i) <- t.buckets.(i) + 1
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then 0.0 else t.sum /. float_of_int t.count
let min_value t = if t.count = 0 then 0.0 else t.min_v
let max_value t = if t.count = 0 then 0.0 else t.max_v

(* Absolute width of the bucket a value would land in — the error budget
   the quantile tests hold the estimates to. *)
let width_at v = if v <= 0.0 then 0.0 else bucket_hi (index_of v) -. bucket_lo (index_of v)

let quantile t p =
  if p < 0.0 || p > 100.0 then invalid_arg "Hist.quantile: p out of range";
  if t.count = 0 then 0.0
  else begin
    (* nearest rank on the same 0-based scale Stats.percentile
       interpolates over, so the two agree to within a bucket *)
    let rank =
      1 + int_of_float ((p /. 100.0 *. float_of_int (t.count - 1)) +. 0.5)
    in
    let rank = if rank > t.count then t.count else rank in
    if rank <= t.zeros then Float.max 0.0 t.min_v
    else begin
      let rec scan i acc =
        if i >= nbuckets then t.max_v
        else begin
          let acc = acc + t.buckets.(i) in
          if acc >= rank then begin
            let v = bucket_mid i in
            if v < t.min_v then t.min_v
            else if v > t.max_v then t.max_v
            else v
          end
          else scan (i + 1) acc
        end
      in
      scan 0 t.zeros
    end
  end

let merge a b =
  let t = create () in
  t.count <- a.count + b.count;
  t.zeros <- a.zeros + b.zeros;
  t.sum <- a.sum +. b.sum;
  t.min_v <- Float.min a.min_v b.min_v;
  t.max_v <- Float.max a.max_v b.max_v;
  Array.iteri (fun i n -> t.buckets.(i) <- n + b.buckets.(i)) a.buckets;
  t

(* Occupied buckets, (midpoint, count), ascending — introspection and
   structural equality in tests. *)
let nonzero t =
  let acc = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (bucket_mid i, t.buckets.(i)) :: !acc
  done;
  if t.zeros > 0 then (0.0, t.zeros) :: !acc else !acc
