(** Log-bucketed streaming histogram: O(1) {!record}, fixed memory,
    deterministic quantiles and lossless {!merge}.

    Values are bucketed by [Float.frexp]: each power-of-two octave is
    split into [sub = 32] linear sub-buckets, so every bucket's relative
    width is at most {!rel_error} (3.125%) and a quantile estimate is
    never further than one bucket width from the exact sorted
    percentile at the same rank. Bucketing is pure integer/ldexp
    arithmetic — no logarithm — so identical value streams produce
    identical histograms on every platform, and the aggregators built on
    this ({!Metrics}, {!Live}, [Server_stats]) stay bit-deterministic.

    Non-positive values are counted in a dedicated zero bucket and
    reported as [0.]; the exact observed min/max/sum are tracked
    alongside the buckets, so {!mean}, {!min_value} and {!max_value} are
    exact. *)

type t

val create : unit -> t

(** O(1): one frexp, one array increment. *)
val record : t -> float -> unit

val count : t -> int
val sum : t -> float

(** Exact (tracked outside the buckets). 0 when empty. *)
val mean : t -> float

val min_value : t -> float
val max_value : t -> float

(** [quantile t p] for [p] in [0..100] (percent): nearest-rank bucket
    midpoint, clamped into the exact observed [min, max]. 0 when empty.
    Monotone in [p] by construction. *)
val quantile : t -> float -> float

(** Worst-case relative bucket half-width ([1/sub]). *)
val rel_error : float

(** Absolute width of the bucket that would hold [v] — the per-estimate
    error budget the tests check against. *)
val width_at : float -> float

(** Lossless: bucket counts add; min/max/sum/count combine exactly.
    Associative and commutative up to structural equality. *)
val merge : t -> t -> t

(** Occupied buckets as [(midpoint, count)], ascending. The zero bucket
    reports midpoint [0.]. *)
val nonzero : t -> (float * int) list
