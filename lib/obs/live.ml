(* Live: a streaming aggregator fed by the Trace.emit tap.

   Metrics.of_sink folds whatever survives in the bounded ring, so any
   run longer than the ring's capacity silently computes counts and
   percentiles over the tail window only. Live sees every event at
   emission time instead: counts stay exact and latency distributions
   are held in streaming Hist histograms, no matter how often the ring
   wraps. Accumulation is pure (no clock, no PRNG, no simulation state),
   preserving the tracing layer's bit-and-time-identity guarantee. *)

type t = {
  mutable events : int;
  mutable first_ts : int;
  mutable last_ts : int; (* max over ts + dur *)
  (* shreds *)
  mutable shreds_enqueued : int;
  mutable shreds_retired : int;
  mutable exo_busy_ps : int;
  shred_lat : Hist.t;
  (* serve job lifecycle *)
  mutable jobs_arrived : int;
  mutable jobs_done : int;
  mutable jobs_shed : int;
  sheds_by_reason : (string, int) Hashtbl.t;
  mutable batches : int;
  job_lat : Hist.t;
  (* guard *)
  mutable sdc_detected : int;
  mutable breaker_opens : int;
  mutable breaker_closes : int;
  (* per-device slices, keyed by the event's device index; a
     single-device run only ever touches key 0 *)
  dev_retired : (int, int ref) Hashtbl.t;
  dev_busy_ps : (int, int ref) Hashtbl.t;
  dev_batches : (int, int ref) Hashtbl.t;
}

let create () =
  {
    events = 0;
    first_ts = max_int;
    last_ts = 0;
    shreds_enqueued = 0;
    shreds_retired = 0;
    exo_busy_ps = 0;
    shred_lat = Hist.create ();
    jobs_arrived = 0;
    jobs_done = 0;
    jobs_shed = 0;
    sheds_by_reason = Hashtbl.create 8;
    batches = 0;
    job_lat = Hist.create ();
    sdc_detected = 0;
    breaker_opens = 0;
    breaker_closes = 0;
    dev_retired = Hashtbl.create 4;
    dev_busy_ps = Hashtbl.create 4;
    dev_batches = Hashtbl.create 4;
  }

let bump tbl key by =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace tbl key (ref by)

let observe t (e : Trace.event) =
  t.events <- t.events + 1;
  if e.Trace.ts_ps < t.first_ts then t.first_ts <- e.Trace.ts_ps;
  let fin = e.Trace.ts_ps + e.Trace.dur_ps in
  if fin > t.last_ts then t.last_ts <- fin;
  match e.Trace.kind with
  | Trace.Shred_enqueue _ -> t.shreds_enqueued <- t.shreds_enqueued + 1
  | Trace.Shred_run _ ->
    t.shreds_retired <- t.shreds_retired + 1;
    t.exo_busy_ps <- t.exo_busy_ps + e.Trace.dur_ps;
    bump t.dev_retired e.Trace.dev 1;
    bump t.dev_busy_ps e.Trace.dev e.Trace.dur_ps;
    Hist.record t.shred_lat (float_of_int e.Trace.dur_ps)
  | Trace.Job_arrive _ -> t.jobs_arrived <- t.jobs_arrived + 1
  | Trace.Job_done { latency_ps; _ } ->
    t.jobs_done <- t.jobs_done + 1;
    Hist.record t.job_lat (float_of_int latency_ps)
  | Trace.Job_shed { reason; _ } ->
    t.jobs_shed <- t.jobs_shed + 1;
    Hashtbl.replace t.sheds_by_reason reason
      (1 + Option.value (Hashtbl.find_opt t.sheds_by_reason reason) ~default:0)
  | Trace.Batch_dispatch _ ->
    t.batches <- t.batches + 1;
    bump t.dev_batches e.Trace.dev 1
  | Trace.Sdc_detected { corruptions; _ } ->
    t.sdc_detected <- t.sdc_detected + corruptions
  | Trace.Breaker_open _ -> t.breaker_opens <- t.breaker_opens + 1
  | Trace.Breaker_close _ -> t.breaker_closes <- t.breaker_closes + 1
  | _ -> ()

let attach t sink = Trace.set_tap sink (observe t)

let events t = t.events
let span_ps t = if t.events = 0 then 0 else max 0 (t.last_ts - t.first_ts)
let shreds_enqueued t = t.shreds_enqueued
let shreds_retired t = t.shreds_retired
let exo_busy_ps t = t.exo_busy_ps
let shred_lat t = t.shred_lat
let jobs_arrived t = t.jobs_arrived
let jobs_done t = t.jobs_done
let jobs_shed t = t.jobs_shed

let sheds_by_reason t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.sheds_by_reason []
  |> List.sort compare
let batches t = t.batches
let job_lat t = t.job_lat
let sdc_detected t = t.sdc_detected
let breakers_open t = max 0 (t.breaker_opens - t.breaker_closes)

let by_device t =
  let keys tbl acc =
    Hashtbl.fold (fun k _ acc -> if List.mem k acc then acc else k :: acc) tbl acc
  in
  let get tbl k =
    match Hashtbl.find_opt tbl k with Some r -> !r | None -> 0
  in
  keys t.dev_retired (keys t.dev_busy_ps (keys t.dev_batches []))
  |> List.sort compare
  |> List.map (fun d ->
         (d, get t.dev_retired d, get t.dev_busy_ps d, get t.dev_batches d))

let job_throughput_jps t =
  let span = span_ps t in
  if span <= 0 then 0.0 else float_of_int t.jobs_done *. 1e12 /. float_of_int span
