(** Live: exact streaming aggregation over the {!Trace.emit} tap.

    {!Metrics.of_sink} is a post-mortem fold over the bounded ring — once
    the ring wraps ([Trace.dropped > 0]) its counts and percentiles
    cover only the surviving tail window. A [Live] aggregator attached
    with {!attach} sees {e every} event at emission time: counts are
    exact over unbounded runs and latency distributions are kept in
    streaming {!Hist} histograms (O(1) per event, fixed memory).

    Observation is pure accumulation — no clock, PRNG or simulation
    state is touched — so a tapped run stays bit- and time-identical to
    an untapped one ([test/test_obs.ml] enforces this alongside the
    original untraced-vs-traced identity). *)

type t

val create : unit -> t

(** Install this aggregator as [sink]'s tap ({!Trace.set_tap}). *)
val attach : t -> Trace.sink -> unit

(** Feed one event directly (what the tap calls). *)
val observe : t -> Trace.event -> unit

val events : t -> int

(** First event start to last event end, exact over the whole run. *)
val span_ps : t -> int

val shreds_enqueued : t -> int
val shreds_retired : t -> int
val exo_busy_ps : t -> int

(** Shred dispatch-to-retire latency distribution. *)
val shred_lat : t -> Hist.t

val jobs_arrived : t -> int
val jobs_done : t -> int
val jobs_shed : t -> int

(** Shed counts keyed by the typed reason label carried on
    [Trace.Job_shed] (e.g. ["deadline"], ["infeasible-deadline"]),
    sorted by label. Empty when nothing was shed. *)
val sheds_by_reason : t -> (string * int) list

val batches : t -> int

(** Job submit-to-completion latency distribution. *)
val job_lat : t -> Hist.t

val sdc_detected : t -> int

(** Currently-open circuit breakers (opens minus closes). *)
val breakers_open : t -> int

(** Per-device slices in ascending device order:
    [(dev, shreds retired, exo busy ps, batches dispatched)]. Only
    devices that produced at least one event appear — a single-device
    run yields at most the device-0 row. *)
val by_device : t -> (int * int * int * int) list

(** Completed jobs per second over {!span_ps}. *)
val job_throughput_jps : t -> float
