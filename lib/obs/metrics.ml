(* Per-kernel metrics aggregated from the trace event stream: EU
   occupancy, shred-latency percentiles, proxy-service breakdowns and
   bytes moved. Everything is derived from events (plus the counter
   snapshots the platform emits at the end of a run), so the aggregator
   works on any sink regardless of which layer filled it. *)

type service = { count : int; total_ps : int }

let no_service = { count = 0; total_ps = 0 }
let bump s dur = { count = s.count + 1; total_ps = s.total_ps + dur }

type t = {
  events : int;
  dropped : int;
  windowed : bool; (* ring wrapped: percentiles cover the tail only *)
  span_ps : int; (* first event start .. last event end *)
  exo_tracks : int;
  (* shreds *)
  shreds_retired : int;
  shreds_enqueued : int;
  lat_p50_ps : float;
  lat_p95_ps : float;
  lat_p99_ps : float;
  lat_mean_ps : float;
  (* occupancy: summed shred-run time / (exo_tracks * span) *)
  exo_busy_ps : int;
  occupancy : float;
  (* proxy breakdown *)
  atr_tlb_misses : int;
  atr_gtt_hits : service;
  atr_proxies : service;
  atr_transients : int;
  ceh_proxies : service;
  ceh_spurious : int;
  (* dispatch & recovery *)
  doorbells : int;
  doorbells_lost : int;
  redeliveries : int;
  redispatches : int;
  watchdog_reaps : int;
  quarantines : int;
  ia32_fallbacks : int;
  faults : (string * int) list; (* per class, name-sorted *)
  (* bytes moved *)
  flush_bytes : int;
  copy_bytes : int;
  (* Exo-serve job lifecycle (zero unless a serve layer emitted) *)
  jobs_arrived : int;
  jobs_done : int;
  jobs_shed : int;
  batches : int;
  job_lat_p50_ps : float;
  job_lat_p99_ps : float;
  (* Exo-guard integrity & resilience (zero unless the guard layer ran) *)
  sdc_detected : int;
  breaker_opens : int;
  breaker_closes : int;
  hedges : int;
  hedge_wins : int;
  counters : (string * int) list; (* last value per counter, name-sorted *)
  device_rows : (int * int * int) list;
      (* (dev, shreds retired, busy ps), device order; one row per
         device that retired work *)
}

let of_events ?(dropped = 0) ~eus ~threads_per_eu events =
  let exo_tracks = eus * threads_per_eu in
  let first = ref max_int and last = ref 0 in
  let retired = ref 0 and enqueued = ref 0 in
  let lats = Hist.create () in
  let busy = ref 0 in
  let tlb_misses = ref 0 and transients = ref 0 and spurious = ref 0 in
  let gtt = ref no_service and proxy = ref no_service and ceh = ref no_service in
  let doorbells = ref 0 and lost = ref 0 and redeliveries = ref 0 in
  let redispatches = ref 0 and reaps = ref 0 and quarantines = ref 0 in
  let fallbacks = ref 0 in
  let faults : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let flush = ref 0 and copy = ref 0 in
  let arrived = ref 0 and jobs_done = ref 0 and shed = ref 0 in
  let batches = ref 0 in
  let job_lats = Hist.create () in
  let sdc = ref 0 and br_opens = ref 0 and br_closes = ref 0 in
  let hedges = ref 0 and hedge_wins = ref 0 in
  let counters : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let dev_rows : (int, int ref * int ref) Hashtbl.t = Hashtbl.create 4 in
  let dev_row d =
    match Hashtbl.find_opt dev_rows d with
    | Some r -> r
    | None ->
      let r = (ref 0, ref 0) in
      Hashtbl.replace dev_rows d r;
      r
  in
  let n = ref 0 in
  List.iter
    (fun (e : Trace.event) ->
      incr n;
      first := min !first e.ts_ps;
      last := max !last (e.ts_ps + e.dur_ps);
      match e.kind with
      | Trace.Shred_run _ ->
        incr retired;
        busy := !busy + e.dur_ps;
        let r, bp = dev_row e.dev in
        incr r;
        bp := !bp + e.dur_ps;
        Hist.record lats (float_of_int e.dur_ps)
      | Trace.Shred_enqueue _ -> incr enqueued
      | Trace.Signal_doorbell { lost = l; _ } ->
        incr doorbells;
        if l then incr lost
      | Trace.Doorbell_redeliver _ -> incr redeliveries
      | Trace.Shred_dispatch _ | Trace.Shred_start _ -> ()
      | Trace.Watchdog_reap _ -> incr reaps
      | Trace.Redispatch _ -> incr redispatches
      | Trace.Quarantine -> incr quarantines
      | Trace.Ia32_fallback _ -> incr fallbacks
      | Trace.Atr_tlb_miss _ -> incr tlb_misses
      | Trace.Atr_gtt_hit _ -> gtt := bump !gtt e.dur_ps
      | Trace.Atr_proxy _ -> proxy := bump !proxy e.dur_ps
      | Trace.Atr_transient _ -> incr transients
      | Trace.Atr_prewalk _ -> ()
      | Trace.Ceh_proxy _ -> ceh := bump !ceh e.dur_ps
      | Trace.Ceh_writeback _ -> ()
      | Trace.Ceh_spurious -> incr spurious
      | Trace.Fault_injected { cls } ->
        Hashtbl.replace faults cls
          (1 + Option.value (Hashtbl.find_opt faults cls) ~default:0)
      | Trace.Flush { bytes } -> flush := !flush + bytes
      | Trace.Copy { bytes } -> copy := !copy + bytes
      | Trace.Job_arrive _ -> incr arrived
      | Trace.Job_shed _ -> incr shed
      | Trace.Batch_dispatch _ -> incr batches
      | Trace.Job_done { latency_ps; _ } ->
        incr jobs_done;
        Hist.record job_lats (float_of_int latency_ps)
      | Trace.Sdc_detected { corruptions; _ } -> sdc := !sdc + corruptions
      | Trace.Breaker_open _ -> incr br_opens
      | Trace.Breaker_close _ -> incr br_closes
      | Trace.Hedge_dispatch _ -> incr hedges
      | Trace.Hedge_win _ -> incr hedge_wins
      | Trace.Counter { counter; value } -> Hashtbl.replace counters counter value)
    events;
  let span = if !n = 0 then 0 else max 0 (!last - !first) in
  let pct p = Hist.quantile lats p in
  let sorted_assoc tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  {
    events = !n;
    dropped;
    windowed = dropped > 0;
    span_ps = span;
    exo_tracks;
    shreds_retired = !retired;
    shreds_enqueued = !enqueued;
    lat_p50_ps = pct 50.0;
    lat_p95_ps = pct 95.0;
    lat_p99_ps = pct 99.0;
    lat_mean_ps = Hist.mean lats;
    exo_busy_ps = !busy;
    occupancy =
      (if span = 0 || exo_tracks = 0 then 0.0
       else float_of_int !busy /. (float_of_int span *. float_of_int exo_tracks));
    atr_tlb_misses = !tlb_misses;
    atr_gtt_hits = !gtt;
    atr_proxies = !proxy;
    atr_transients = !transients;
    ceh_proxies = !ceh;
    ceh_spurious = !spurious;
    doorbells = !doorbells;
    doorbells_lost = !lost;
    redeliveries = !redeliveries;
    redispatches = !redispatches;
    watchdog_reaps = !reaps;
    quarantines = !quarantines;
    ia32_fallbacks = !fallbacks;
    faults = sorted_assoc faults;
    flush_bytes = !flush;
    copy_bytes = !copy;
    jobs_arrived = !arrived;
    jobs_done = !jobs_done;
    jobs_shed = !shed;
    batches = !batches;
    job_lat_p50_ps = Hist.quantile job_lats 50.0;
    job_lat_p99_ps = Hist.quantile job_lats 99.0;
    sdc_detected = !sdc;
    breaker_opens = !br_opens;
    breaker_closes = !br_closes;
    hedges = !hedges;
    hedge_wins = !hedge_wins;
    counters = sorted_assoc counters;
    device_rows =
      Hashtbl.fold (fun d (r, bp) acc -> (d, !r, !bp) :: acc) dev_rows []
      |> List.sort compare;
  }

let of_sink sink =
  of_events ~dropped:(Trace.dropped sink) ~eus:(Trace.eus sink)
    ~threads_per_eu:(Trace.threads_per_eu sink)
    (Trace.events sink)

(* ---- rendering ---- *)

let ms ps = float_of_int ps /. 1e9
let us f = f /. 1e6

let render m =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "trace        : %d event(s)%s over %.3f ms on %d exo track(s) + IA32"
    m.events
    (if m.dropped > 0 then Printf.sprintf " (%d dropped; windowed)" m.dropped
     else "")
    (ms m.span_ps) m.exo_tracks;
  line "shreds       : %d retired / %d enqueued; %d doorbell(s)%s"
    m.shreds_retired m.shreds_enqueued m.doorbells
    (if m.doorbells_lost > 0 then
       Printf.sprintf " (%d lost, %d re-rung)" m.doorbells_lost m.redeliveries
     else "");
  if m.shreds_retired > 0 then begin
    line "shred latency: p50 %.1f us  p95 %.1f us  p99 %.1f us  (mean %.1f us)"
      (us m.lat_p50_ps) (us m.lat_p95_ps) (us m.lat_p99_ps) (us m.lat_mean_ps);
    line "EU occupancy : %.1f%% (%.3f ms busy across %d contexts)"
      (100.0 *. m.occupancy) (ms m.exo_busy_ps) m.exo_tracks
  end;
  line "ATR          : %d TLB miss(es) -> %d GTT-shadow hit(s) (%.1f us), %d \
        full proxy walk(s) (%.1f us)%s"
    m.atr_tlb_misses m.atr_gtt_hits.count
    (us (float_of_int m.atr_gtt_hits.total_ps))
    m.atr_proxies.count
    (us (float_of_int m.atr_proxies.total_ps))
    (if m.atr_transients > 0 then
       Printf.sprintf ", %d transient retry(ies)" m.atr_transients
     else "");
  line "CEH          : %d proxy(ies) (%.1f us)%s" m.ceh_proxies.count
    (us (float_of_int m.ceh_proxies.total_ps))
    (if m.ceh_spurious > 0 then
       Printf.sprintf ", %d spurious trap(s)" m.ceh_spurious
     else "");
  if
    m.redispatches > 0 || m.watchdog_reaps > 0 || m.quarantines > 0
    || m.ia32_fallbacks > 0
  then
    line "recovery     : %d watchdog reap(s), %d redispatch(es), %d \
          quarantine(s), %d IA32 fallback(s)"
      m.watchdog_reaps m.redispatches m.quarantines m.ia32_fallbacks;
  if m.faults <> [] then
    line "faults       : %s"
      (String.concat ", "
         (List.map (fun (c, n) -> Printf.sprintf "%s x%d" c n) m.faults));
  if m.flush_bytes > 0 || m.copy_bytes > 0 then
    line "bytes moved  : %d KiB flushed, %d KiB copied" (m.flush_bytes / 1024)
      (m.copy_bytes / 1024);
  if m.jobs_arrived > 0 || m.jobs_done > 0 || m.jobs_shed > 0 then
    line
      "serving      : %d job(s) admitted, %d done, %d shed across %d \
       batch(es); job latency p50 %.1f us p99 %.1f us"
      m.jobs_arrived m.jobs_done m.jobs_shed m.batches (us m.job_lat_p50_ps)
      (us m.job_lat_p99_ps);
  if
    m.sdc_detected > 0 || m.breaker_opens > 0 || m.breaker_closes > 0
    || m.hedges > 0
  then
    line
      "guard        : %d SDC detected; breakers %d open / %d close; %d \
       hedge(s), %d won"
      m.sdc_detected m.breaker_opens m.breaker_closes m.hedges m.hedge_wins;
  (* the device breakdown only exists under a multi-device topology, so
     single-device reports render byte-identically *)
  (match m.device_rows with
  | [] | [ _ ] -> ()
  | rows ->
    List.iter
      (fun (d, retired, busy) ->
        line "device %d     : %d shred(s) retired, %.3f ms busy" d retired
          (ms busy))
      rows);
  List.iter (fun (name, v) -> line "counter      : %-18s %d" name v) m.counters;
  Buffer.contents b

(* deterministic flat JSON (per-kernel metrics snapshots for bench) *)
let to_json ?(extra = []) m =
  let b = Buffer.create 512 in
  Buffer.add_string b "{";
  let first = ref true in
  let field k v =
    if !first then first := false else Buffer.add_string b ",";
    Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v)
  in
  let num_int k v = field k (string_of_int v) in
  let num_f k v = field k (Printf.sprintf "%.6f" v) in
  List.iter (fun (k, v) -> field k v) extra;
  num_int "events" m.events;
  num_int "dropped" m.dropped;
  field "windowed" (if m.windowed then "true" else "false");
  num_int "span_ps" m.span_ps;
  num_int "exo_tracks" m.exo_tracks;
  num_int "shreds_retired" m.shreds_retired;
  num_f "occupancy" m.occupancy;
  num_f "shred_lat_p50_ps" m.lat_p50_ps;
  num_f "shred_lat_p95_ps" m.lat_p95_ps;
  num_f "shred_lat_p99_ps" m.lat_p99_ps;
  num_f "shred_lat_mean_ps" m.lat_mean_ps;
  num_int "atr_tlb_misses" m.atr_tlb_misses;
  num_int "atr_gtt_hits" m.atr_gtt_hits.count;
  num_int "atr_gtt_ps" m.atr_gtt_hits.total_ps;
  num_int "atr_proxies" m.atr_proxies.count;
  num_int "atr_proxy_ps" m.atr_proxies.total_ps;
  num_int "atr_transients" m.atr_transients;
  num_int "ceh_proxies" m.ceh_proxies.count;
  num_int "ceh_proxy_ps" m.ceh_proxies.total_ps;
  num_int "ceh_spurious" m.ceh_spurious;
  num_int "doorbells" m.doorbells;
  num_int "doorbells_lost" m.doorbells_lost;
  num_int "redispatches" m.redispatches;
  num_int "watchdog_reaps" m.watchdog_reaps;
  num_int "quarantines" m.quarantines;
  num_int "ia32_fallbacks" m.ia32_fallbacks;
  num_int "flush_bytes" m.flush_bytes;
  num_int "copy_bytes" m.copy_bytes;
  num_int "jobs_arrived" m.jobs_arrived;
  num_int "jobs_done" m.jobs_done;
  num_int "jobs_shed" m.jobs_shed;
  num_int "batches" m.batches;
  num_f "job_lat_p50_ps" m.job_lat_p50_ps;
  num_f "job_lat_p99_ps" m.job_lat_p99_ps;
  num_int "sdc_detected" m.sdc_detected;
  num_int "breaker_opens" m.breaker_opens;
  num_int "breaker_closes" m.breaker_closes;
  num_int "hedges" m.hedges;
  num_int "hedge_wins" m.hedge_wins;
  (match m.device_rows with
  | [] | [ _ ] -> ()
  | rows ->
    List.iter
      (fun (d, retired, busy) ->
        num_int (Printf.sprintf "dev%d_shreds_retired" d) retired;
        num_int (Printf.sprintf "dev%d_busy_ps" d) busy)
      rows);
  List.iter (fun (name, v) -> num_int name v) m.counters;
  Buffer.add_string b "}";
  Buffer.contents b
