(** Per-kernel metrics derived from a trace: EU occupancy, shred-latency
    percentiles, ATR/CEH proxy-service breakdowns, recovery activity and
    bytes moved. Purely a fold over {!Trace.events} — computing metrics
    never perturbs the simulation. *)

(** Count + accumulated service time of one proxy path. *)
type service = { count : int; total_ps : int }

type t = {
  events : int;
  dropped : int;
  windowed : bool;
      (** true when the ring wrapped ([dropped > 0]): counts and
          percentiles below cover only the surviving tail window. Attach
          a {!Live} aggregator for exact whole-run statistics. *)
  span_ps : int;  (** first event start .. last event end *)
  exo_tracks : int;
  shreds_retired : int;
  shreds_enqueued : int;
  lat_p50_ps : float;
  lat_p95_ps : float;
  lat_p99_ps : float;
  lat_mean_ps : float;
  exo_busy_ps : int;
  occupancy : float;
      (** summed shred-run time / (exo_tracks * span), in [0,1] *)
  atr_tlb_misses : int;
  atr_gtt_hits : service;
  atr_proxies : service;
  atr_transients : int;
  ceh_proxies : service;
  ceh_spurious : int;
  doorbells : int;
  doorbells_lost : int;
  redeliveries : int;
  redispatches : int;
  watchdog_reaps : int;
  quarantines : int;
  ia32_fallbacks : int;
  faults : (string * int) list;  (** per fault class, name-sorted *)
  flush_bytes : int;
  copy_bytes : int;
  jobs_arrived : int;  (** Exo-serve: jobs past admission *)
  jobs_done : int;  (** Exo-serve: jobs completed at a team barrier *)
  jobs_shed : int;  (** Exo-serve: jobs rejected or dropped *)
  batches : int;  (** Exo-serve: coalesced teams dispatched *)
  job_lat_p50_ps : float;  (** submit → completion, media job latency *)
  job_lat_p99_ps : float;
  sdc_detected : int;
      (** Exo-guard: corruptions caught by checksums/audits *)
  breaker_opens : int;  (** Exo-guard: circuit-breaker trips *)
  breaker_closes : int;  (** Exo-guard: probationary reinstatements *)
  hedges : int;  (** Exo-guard: backup dispatches for stragglers *)
  hedge_wins : int;  (** Exo-guard: hedged shreds whose first copy won *)
  counters : (string * int) list;  (** last value per counter, name-sorted *)
  device_rows : (int * int * int) list;
      (** Exo-fabric: [(dev, shreds retired, busy ps)] per device that
          retired work, in device order. Rendered (and serialised as
          [devN_*] fields) only when more than one device appears, so
          single-device reports are unchanged. *)
}

val of_events :
  ?dropped:int -> eus:int -> threads_per_eu:int -> Trace.event list -> t

val of_sink : Trace.sink -> t

(** Plain-text summary (the [exochi_run --metrics] / harness report). *)
val render : t -> string

(** Deterministic flat JSON object. [extra] fields (already-serialised
    values) are emitted first — used for kernel name / config tags in
    [BENCH_metrics.json]. *)
val to_json : ?extra:(string * string) list -> t -> string
