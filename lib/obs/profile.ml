(* Profile: an exact cost profile over simulated time.

   Unlike a wall-clock sampling profiler, the simulator knows the exact
   simulated cost of every instruction it retires, so the "profiler" is
   an attribution sink: execution layers call [record] with a stack
   (root frame first) and the picoseconds that instruction consumed.
   Aggregation is pure accumulation — recording never touches the
   simulation clock or PRNG, so profiled runs keep the bit-and-time
   identity guarantee of the tracing layer.

   Exports: collapsed-stack lines (flamegraph.pl / inferno / speedscope
   all ingest them) and speedscope's JSON schema directly. Both are
   emitted in sorted stack order so output is deterministic. *)

type node = { mutable ps : int; mutable hits : int }
type t = { tbl : (string list, node) Hashtbl.t }

let create () = { tbl = Hashtbl.create 256 }

let record t ~stack ~ps =
  if stack = [] then invalid_arg "Profile.record: empty stack";
  match Hashtbl.find_opt t.tbl stack with
  | Some n ->
    n.ps <- n.ps + ps;
    n.hits <- n.hits + 1
  | None -> Hashtbl.add t.tbl stack { ps; hits = 1 }

let total_ps t = Hashtbl.fold (fun _ n acc -> acc + n.ps) t.tbl 0

let has_prefix ~prefix s =
  let lp = String.length prefix in
  String.length s >= lp && String.sub s 0 lp = prefix

let root_total_ps t ~prefix =
  Hashtbl.fold
    (fun stack n acc ->
      match stack with
      | root :: _ when has_prefix ~prefix root -> acc + n.ps
      | _ -> acc)
    t.tbl 0

let stacks t =
  Hashtbl.fold (fun stack n acc -> (stack, n.ps, n.hits) :: acc) t.tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> compare (a : string list) b)

(* Collapsed-stack format: "root;frame;leaf <cost>" one line per unique
   stack. Semicolons inside frame names would split frames, so map them
   to commas. *)
let to_collapsed t =
  let b = Buffer.create 4096 in
  List.iter
    (fun (stack, ps, _) ->
      let clean f = String.map (fun c -> if c = ';' then ',' else c) f in
      Buffer.add_string b (String.concat ";" (List.map clean stack));
      Buffer.add_string b (Printf.sprintf " %d\n" ps))
    (stacks t);
  Buffer.contents b

(* speedscope "sampled" profile: a shared frame table plus one
   (stack, weight) pair per unique stack. Weights are nanoseconds so
   speedscope's time axis reads naturally (1 ns = 1000 ps). *)
let to_speedscope t ~name =
  let sorted = stacks t in
  let frames : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let frame_order = ref [] in
  let frame_id f =
    match Hashtbl.find_opt frames f with
    | Some i -> i
    | None ->
      let i = Hashtbl.length frames in
      Hashtbl.add frames f i;
      frame_order := f :: !frame_order;
      i
  in
  let samples =
    List.map (fun (stack, ps, _) -> (List.map frame_id stack, ps)) sorted
  in
  let buf = Buffer.create 8192 in
  let esc s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Buffer.add_string buf
    "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\",";
  Buffer.add_string buf "\"shared\":{\"frames\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "{\"name\":\"%s\"}" (esc f)))
    (List.rev !frame_order);
  Buffer.add_string buf "]},\"profiles\":[{";
  Buffer.add_string buf "\"type\":\"sampled\",";
  Buffer.add_string buf (Printf.sprintf "\"name\":\"%s\"," (esc name));
  Buffer.add_string buf "\"unit\":\"nanoseconds\",";
  Buffer.add_string buf "\"startValue\":0,";
  let total_ns = float_of_int (total_ps t) /. 1000.0 in
  Buffer.add_string buf (Printf.sprintf "\"endValue\":%.3f," total_ns);
  Buffer.add_string buf "\"samples\":[";
  List.iteri
    (fun i (ids, _) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_char buf '[';
      List.iteri
        (fun j id ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (string_of_int id))
        ids;
      Buffer.add_char buf ']')
    samples;
  Buffer.add_string buf "],\"weights\":[";
  List.iteri
    (fun i (_, ps) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%.3f" (float_of_int ps /. 1000.0)))
    samples;
  Buffer.add_string buf "]}]}";
  Buffer.contents buf
