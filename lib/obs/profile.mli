(** Profile: exact attribution of simulated cost to instruction stacks.

    The simulator retires instructions with known simulated cost, so
    profiling here is {e exact attribution}, not statistical sampling:
    each execution layer calls {!record} with a stack (root frame first
    — e.g. ["exo saxpy"; "003 mul.8.dw ..."]) and the picoseconds that
    instruction consumed. Recording is pure accumulation (no clock, no
    PRNG), preserving the tracing layer's bit-and-time identity
    guarantee.

    Exports are deterministic (sorted stack order): collapsed-stack
    lines for flamegraph tooling and speedscope's JSON schema. *)

type t

val create : unit -> t

(** [record t ~stack ~ps] adds [ps] picoseconds to [stack] (root frame
    first, leaf last). Raises [Invalid_argument] on an empty stack. *)
val record : t -> stack:string list -> ps:int -> unit

(** Sum of all recorded cost. *)
val total_ps : t -> int

(** Sum of cost recorded under root frames starting with [prefix] —
    e.g. [~prefix:"exo "] totals all exo-sequencer frames, which must
    equal the platform's busy time (enforced by [test/test_obs.ml]). *)
val root_total_ps : t -> prefix:string -> int

(** All (stack, total_ps, hits) triples, sorted by stack. *)
val stacks : t -> (string list * int * int) list

(** Collapsed-stack flamegraph lines: ["root;frame;leaf cost\n"]. *)
val to_collapsed : t -> string

(** speedscope "sampled"-type JSON profile; weights in nanoseconds. *)
val to_speedscope : t -> name:string -> string
