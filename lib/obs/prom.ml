(* Prometheus text exposition (version 0.0.4). Deterministic: metrics
   are emitted in the order given, labels in the order given. Used by
   [exochi_serve --prom FILE] to publish live serve statistics for a
   node-exporter-style textfile collector. *)

type mtype = Counter | Gauge

type metric = {
  name : string;
  help : string;
  mtype : mtype;
  samples : ((string * string) list * float) list;
}

let type_name = function Counter -> "counter" | Gauge -> "gauge"

let escape_help s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let escape_label_value s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6f" v

let to_text metrics =
  let b = Buffer.create 1024 in
  List.iter
    (fun m ->
      Buffer.add_string b
        (Printf.sprintf "# HELP %s %s\n" m.name (escape_help m.help));
      Buffer.add_string b
        (Printf.sprintf "# TYPE %s %s\n" m.name (type_name m.mtype));
      List.iter
        (fun (labels, v) ->
          let lbl =
            if labels = [] then ""
            else
              "{"
              ^ String.concat ","
                  (List.map
                     (fun (k, lv) ->
                       Printf.sprintf "%s=\"%s\"" k (escape_label_value lv))
                     labels)
              ^ "}"
          in
          Buffer.add_string b
            (Printf.sprintf "%s%s %s\n" m.name lbl (value_repr v)))
        m.samples)
    metrics;
  Buffer.contents b

let counter ?(labels = []) name ~help v =
  { name; help; mtype = Counter; samples = [ (labels, v) ] }

let gauge ?(labels = []) name ~help v =
  { name; help; mtype = Gauge; samples = [ (labels, v) ] }

let multi name ~help mtype samples = { name; help; mtype; samples }
