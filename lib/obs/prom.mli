(** Prometheus text exposition (format version 0.0.4).

    [exochi_serve --prom FILE] rewrites [FILE] with these expositions at
    a configurable interval, so a textfile collector (or a human with
    [watch cat]) can follow a live serve run. Output is deterministic:
    metrics in the order given, labels in the order given. *)

type mtype = Counter | Gauge

type metric = {
  name : string;
  help : string;
  mtype : mtype;
  samples : ((string * string) list * float) list;
      (** one [(labels, value)] sample per line *)
}

(** Single-sample counter ([labels] defaults to none). *)
val counter : ?labels:(string * string) list -> string -> help:string -> float -> metric

(** Single-sample gauge. *)
val gauge : ?labels:(string * string) list -> string -> help:string -> float -> metric

(** Multi-sample metric (e.g. one gauge per tenant). *)
val multi :
  string -> help:string -> mtype -> ((string * string) list * float) list -> metric

(** Render the full exposition ([# HELP] / [# TYPE] / sample lines). *)
val to_text : metric list -> string
