(* A minimal dependency-free JSON parser, sufficient to validate the
   Chrome-trace-event files the exporter writes (CI lint + tests). Not a
   general-purpose library: numbers are parsed as floats, no streaming. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected %c" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if st.pos + 4 > String.length st.src then
            error st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> error st "bad \\u escape"
          in
          st.pos <- st.pos + 4;
          (* good enough for validation: encode the code point as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> error st "bad escape");
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then error st "expected number";
  match float_of_string_opt (String.sub st.src start (st.pos - start)) with
  | Some f -> f
  | None -> error st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '{' -> parse_obj st
  | Some '[' -> parse_arr st
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

and parse_obj st =
  expect st '{';
  skip_ws st;
  if peek st = Some '}' then begin
    advance st;
    Obj []
  end
  else begin
    let rec members acc =
      skip_ws st;
      let key = parse_string st in
      skip_ws st;
      expect st ':';
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        members ((key, v) :: acc)
      | Some '}' ->
        advance st;
        List.rev ((key, v) :: acc)
      | _ -> error st "expected , or } in object"
    in
    Obj (members [])
  end

and parse_arr st =
  expect st '[';
  skip_ws st;
  if peek st = Some ']' then begin
    advance st;
    Arr []
  end
  else begin
    let rec elements acc =
      let v = parse_value st in
      skip_ws st;
      match peek st with
      | Some ',' ->
        advance st;
        elements (v :: acc)
      | Some ']' ->
        advance st;
        List.rev (v :: acc)
      | _ -> error st "expected , or ] in array"
    in
    Arr (elements [])
  end

let parse src =
  let st = { src; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length src then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_num = function Num f -> Some f | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_arr = function Arr xs -> Some xs | _ -> None

(* ---- serialisation (the linter's machine-readable findings) ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

(* [indent = None] emits compact single-line JSON; [Some n] pretty-prints
   with [n]-space steps. Round-trips through {!parse}. *)
let to_string ?indent v =
  let buf = Buffer.create 256 in
  let pad depth =
    match indent with
    | None -> ()
    | Some n ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (n * depth) ' ')
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_string f)
    | Str s -> escape_string buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          go (depth + 1) x)
        xs;
      pad depth;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (depth + 1);
          escape_string buf k;
          Buffer.add_char buf ':';
          if indent <> None then Buffer.add_char buf ' ';
          go (depth + 1) x)
        fields;
      pad depth;
      Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf
