(** Minimal dependency-free JSON parser used to validate exported traces
    (the CI lint step and the regression tests). Numbers are floats;
    [\u] escapes are decoded just well enough for validation. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result

(** Field of an object, if present (and the value is an object). *)
val member : string -> t -> t option

val to_num : t -> float option
val to_str : t -> string option
val to_arr : t -> t list option

(** Serialise a value; round-trips through {!parse}. [indent] selects
    pretty-printing with the given step (compact when omitted). Used for
    the Exo-check machine-readable findings format. *)
val to_string : ?indent:int -> t -> string
