type seq = Ia32 | Exo of { eu : int; slot : int }

type kind =
  | Shred_enqueue of { shred_id : int }
  | Signal_doorbell of { shreds : int; lost : bool }
  | Doorbell_redeliver of { shreds : int }
  | Shred_dispatch of { shred_id : int }
  | Shred_start of { shred_id : int }
  | Shred_run of { shred_id : int }
  | Watchdog_reap of { shred_id : int; fails : int }
  | Redispatch of { shred_id : int; attempt : int; delay_ps : int }
  | Quarantine
  | Ia32_fallback of { shred_id : int; instrs : int; lane_ops : int }
  | Atr_tlb_miss of { vpage : int }
  | Atr_gtt_hit of { vpage : int }
  | Atr_proxy of { vpage : int; faulted_in : bool }
  | Atr_transient of { vpage : int; attempt : int }
  | Atr_prewalk of { pages : int }
  | Ceh_proxy of { op : string; lanes : int }
  | Ceh_writeback of { op : string; lanes : int }
  | Ceh_spurious
  | Fault_injected of { cls : string }
  | Flush of { bytes : int }
  | Copy of { bytes : int }
  | Job_arrive of { job : int; tenant : int }
  | Job_shed of { job : int; tenant : int; reason : string }
  | Batch_dispatch of { batch : int; jobs : int; shreds : int }
  | Job_done of { job : int; tenant : int; latency_ps : int }
  | Sdc_detected of { batch : int; corruptions : int; source : string }
  | Breaker_open of { eu : int; slot : int; cooldown_ps : int }
  | Breaker_close of { eu : int; slot : int }
  | Hedge_dispatch of { shred_id : int; age_ps : int }
  | Hedge_win of { shred_id : int }
  | Counter of { counter : string; value : int }

type event = { ts_ps : int; dur_ps : int; dev : int; seq : seq; kind : kind }

type sink = {
  cap : int;
  buf : event array;
  mutable len : int;
  mutable head : int; (* index of the next write *)
  mutable dropped : int;
  mutable eus : int;
  mutable threads_per_eu : int;
  mutable devices : int;
  (* streaming tap (Exo-scope): called once per emitted event, before
     the ring can drop it. The tap must not touch simulation state —
     pure accumulation only — so tapped runs keep the bit-and-time
     identity guarantee. *)
  mutable tap : (event -> unit) option;
}

let dummy = { ts_ps = 0; dur_ps = 0; dev = 0; seq = Ia32; kind = Ceh_spurious }

let create ?(capacity = 262_144) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity";
  {
    cap = capacity;
    buf = Array.make capacity dummy;
    len = 0;
    head = 0;
    dropped = 0;
    eus = 8;
    threads_per_eu = 4;
    devices = 1;
    tap = None;
  }

let set_tap s f = s.tap <- Some f
let clear_tap s = s.tap <- None

let set_topology s ?(devices = 1) ~eus ~threads_per_eu () =
  if eus <= 0 || threads_per_eu <= 0 || devices <= 0 then
    invalid_arg "Trace.set_topology";
  s.eus <- eus;
  s.threads_per_eu <- threads_per_eu;
  s.devices <- devices

let eus s = s.eus
let threads_per_eu s = s.threads_per_eu
let devices s = s.devices

let emit s ~ts_ps ?(dur_ps = 0) ?(dev = 0) ~seq kind =
  let e = { ts_ps; dur_ps; dev; seq; kind } in
  s.buf.(s.head) <- e;
  s.head <- (s.head + 1) mod s.cap;
  if s.len < s.cap then s.len <- s.len + 1 else s.dropped <- s.dropped + 1;
  match s.tap with None -> () | Some f -> f e

let length s = s.len
let capacity s = s.cap
let dropped s = s.dropped

let clear s =
  s.len <- 0;
  s.head <- 0;
  s.dropped <- 0

let events s =
  (* oldest surviving event first *)
  let start = (s.head - s.len + s.cap) mod s.cap in
  List.init s.len (fun i -> s.buf.((start + i) mod s.cap))

let kind_name = function
  | Shred_enqueue _ -> "shred-enqueue"
  | Signal_doorbell _ -> "signal-doorbell"
  | Doorbell_redeliver _ -> "doorbell-redeliver"
  | Shred_dispatch _ -> "shred-dispatch"
  | Shred_start _ -> "shred-start"
  | Shred_run _ -> "shred-run"
  | Watchdog_reap _ -> "watchdog-reap"
  | Redispatch _ -> "redispatch"
  | Quarantine -> "quarantine"
  | Ia32_fallback _ -> "ia32-fallback"
  | Atr_tlb_miss _ -> "atr-tlb-miss"
  | Atr_gtt_hit _ -> "atr-gtt-hit"
  | Atr_proxy _ -> "atr-proxy"
  | Atr_transient _ -> "atr-transient"
  | Atr_prewalk _ -> "atr-prewalk"
  | Ceh_proxy _ -> "ceh-proxy"
  | Ceh_writeback _ -> "ceh-writeback"
  | Ceh_spurious -> "ceh-spurious"
  | Fault_injected _ -> "fault-injected"
  | Flush _ -> "flush"
  | Copy _ -> "copy"
  | Job_arrive _ -> "job-arrive"
  | Job_shed _ -> "job-shed"
  | Batch_dispatch _ -> "batch-dispatch"
  | Job_done _ -> "job-done"
  | Sdc_detected _ -> "sdc-detected"
  | Breaker_open _ -> "breaker-open"
  | Breaker_close _ -> "breaker-close"
  | Hedge_dispatch _ -> "hedge-dispatch"
  | Hedge_win _ -> "hedge-win"
  | Counter _ -> "counter"

let seq_label = function
  | Ia32 -> "IA32"
  | Exo { eu; slot } -> Printf.sprintf "EU%d/T%d" eu slot

let kind_detail = function
  | Shred_enqueue { shred_id } -> Printf.sprintf "shred %d" shred_id
  | Signal_doorbell { shreds; lost } ->
    Printf.sprintf "%d shred(s)%s" shreds (if lost then " LOST" else "")
  | Doorbell_redeliver { shreds } -> Printf.sprintf "%d shred(s)" shreds
  | Shred_dispatch { shred_id }
  | Shred_start { shred_id }
  | Shred_run { shred_id } ->
    Printf.sprintf "shred %d" shred_id
  | Watchdog_reap { shred_id; fails } ->
    Printf.sprintf "shred %d (slot fails %d)" shred_id fails
  | Redispatch { shred_id; attempt; delay_ps } ->
    Printf.sprintf "shred %d attempt %d backoff %d ps" shred_id attempt
      delay_ps
  | Quarantine -> ""
  | Ia32_fallback { shred_id; instrs; lane_ops } ->
    Printf.sprintf "shred %d (%d instrs, %d lane-ops)" shred_id instrs
      lane_ops
  | Atr_tlb_miss { vpage }
  | Atr_gtt_hit { vpage } ->
    Printf.sprintf "vpage %#x" vpage
  | Atr_proxy { vpage; faulted_in } ->
    Printf.sprintf "vpage %#x%s" vpage (if faulted_in then " +page-fault" else "")
  | Atr_transient { vpage; attempt } ->
    Printf.sprintf "vpage %#x attempt %d" vpage attempt
  | Atr_prewalk { pages } -> Printf.sprintf "%d page(s)" pages
  | Ceh_proxy { op; lanes } | Ceh_writeback { op; lanes } ->
    Printf.sprintf "%s x%d" op lanes
  | Ceh_spurious -> ""
  | Fault_injected { cls } -> cls
  | Flush { bytes } | Copy { bytes } -> Printf.sprintf "%d bytes" bytes
  | Job_arrive { job; tenant } -> Printf.sprintf "job %d tenant %d" job tenant
  | Job_shed { job; tenant; reason } ->
    Printf.sprintf "job %d tenant %d (%s)" job tenant reason
  | Batch_dispatch { batch; jobs; shreds } ->
    Printf.sprintf "batch %d: %d job(s), %d shred(s)" batch jobs shreds
  | Job_done { job; tenant; latency_ps } ->
    Printf.sprintf "job %d tenant %d latency %d ps" job tenant latency_ps
  | Sdc_detected { batch; corruptions; source } ->
    Printf.sprintf "batch %d: %d corruption(s) via %s" batch corruptions source
  | Breaker_open { eu; slot; cooldown_ps } ->
    Printf.sprintf "EU%d/T%d cooldown %d ps" eu slot cooldown_ps
  | Breaker_close { eu; slot } -> Printf.sprintf "EU%d/T%d reinstated" eu slot
  | Hedge_dispatch { shred_id; age_ps } ->
    Printf.sprintf "shred %d stuck %d ps" shred_id age_ps
  | Hedge_win { shred_id } -> Printf.sprintf "shred %d" shred_id
  | Counter { counter; value } -> Printf.sprintf "%s = %d" counter value

let pp_event fmt e =
  let detail = kind_detail e.kind in
  let ts = Format.asprintf "%a" Exochi_util.Timebase.pp_ps e.ts_ps in
  Format.fprintf fmt "%10s  %-7s %-18s %s" ts (seq_label e.seq)
    (kind_name e.kind) detail;
  if e.dur_ps > 0 then
    Format.fprintf fmt "  (%a)" Exochi_util.Timebase.pp_ps e.dur_ps
