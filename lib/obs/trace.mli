(** Exo-trace: typed event tracing for the EXO/CHI stack.

    A {!sink} is a bounded ring buffer of typed events, each stamped with
    a {!Timebase} picosecond timestamp and a sequencer id ({!seq}). One
    sink is optionally installed platform-wide ({!Exo_platform.create} /
    [Gpu.config] / the CHI runtime adopts it from the platform) and every
    load-bearing transition emits into it: shred
    enqueue/dispatch/start/retire, SIGNAL doorbells, ATR TLB miss →
    GTT-shadow hit vs. full proxy walk, CEH proxy begin/writeback, fault
    injections and every recovery action, plus memory-system counters.

    {b Overhead guarantee}: emission never touches simulation state — no
    clock, no counter, no PRNG draw — so a traced run is time-for-time
    and bit-for-bit identical to an untraced one, and the no-sink path
    pays a single [match] per potential event. Enforced by
    [test/test_obs.ml]. *)

(** The sequencer (track) an event belongs to. The platform has one
    OS-managed IA32 sequencer plus [eus * threads_per_eu] exo-sequencers
    (32 in the prototype configuration). *)
type seq = Ia32 | Exo of { eu : int; slot : int }

(** Event taxonomy (DESIGN.md §8). Durations live on the {!event}, not
    the kind: a kind with a nonzero duration renders as a Perfetto slice,
    a zero-duration one as an instant. *)
type kind =
  | Shred_enqueue of { shred_id : int }  (** placed on the work queue *)
  | Signal_doorbell of { shreds : int; lost : bool }
      (** one SIGNAL covers the batch; [lost] = injected drop *)
  | Doorbell_redeliver of { shreds : int }  (** runtime re-rings *)
  | Shred_dispatch of { shred_id : int }  (** bound to an EU context *)
  | Shred_start of { shred_id : int }  (** first instruction may issue *)
  | Shred_run of { shred_id : int }
      (** dispatch→retire slice on the executing exo-sequencer *)
  | Watchdog_reap of { shred_id : int; fails : int }
  | Redispatch of { shred_id : int; attempt : int; delay_ps : int }
  | Quarantine  (** the HW-thread slot is retired for good *)
  | Ia32_fallback of { shred_id : int; instrs : int; lane_ops : int }
      (** whole-shred proxy execution on the IA32 sequencer *)
  | Atr_tlb_miss of { vpage : int }  (** exo TLB miss, escalating *)
  | Atr_gtt_hit of { vpage : int }  (** serviced from the GTT shadow *)
  | Atr_proxy of { vpage : int; faulted_in : bool }
      (** full ULI proxy walk on the IA32 sequencer *)
  | Atr_transient of { vpage : int; attempt : int }
      (** injected lost round trip, retried *)
  | Atr_prewalk of { pages : int }  (** batched descriptor prewalk *)
  | Ceh_proxy of { op : string; lanes : int }
      (** faulting instruction emulated on the IA32 sequencer *)
  | Ceh_writeback of { op : string; lanes : int }
      (** emulated results land back in the faulting context *)
  | Ceh_spurious  (** injected trap with nothing to emulate *)
  | Fault_injected of { cls : string }  (** a plan decision fired *)
  | Flush of { bytes : int }  (** non-CC hand-off cache flush *)
  | Copy of { bytes : int }  (** data-copy mode transfer *)
  | Job_arrive of { job : int; tenant : int }
      (** Exo-serve: a kernel-invocation job passed admission *)
  | Job_shed of { job : int; tenant : int; reason : string }
      (** Exo-serve: a job was rejected/dropped ([reason] is the stable
          shed-reason label) *)
  | Batch_dispatch of { batch : int; jobs : int; shreds : int }
      (** Exo-serve: one coalesced team of compatible jobs launched *)
  | Job_done of { job : int; tenant : int; latency_ps : int }
      (** Exo-serve: job completed at the team barrier;
          [latency_ps] = completion - submission *)
  | Sdc_detected of { batch : int; corruptions : int; source : string }
      (** Exo-guard: silent data corruption caught by integrity
          verification; [source] is ["checksum"] (full-surface golden
          comparison) or ["audit"] (sampled golden replay) *)
  | Breaker_open of { eu : int; slot : int; cooldown_ps : int }
      (** Exo-guard: the slot's circuit breaker tripped; the slot is
          quarantined for [cooldown_ps] before a half-open probe *)
  | Breaker_close of { eu : int; slot : int }
      (** Exo-guard: a half-open probe retired; the slot is reinstated *)
  | Hedge_dispatch of { shred_id : int; age_ps : int }
      (** Exo-guard: a straggler shred got a backup dispatch after
          sitting [age_ps] without retiring *)
  | Hedge_win of { shred_id : int }
      (** Exo-guard: first copy of a hedged shred retired; the losing
          copy is cancelled *)
  | Counter of { counter : string; value : int }
      (** memory-system counter snapshot (TLB/cache hits, bus bytes) *)

(** [dev] is the device index the event belongs to (0 in a single-device
    platform; the IA32 master's proxy events carry the device they were
    servicing). *)
type event = { ts_ps : int; dur_ps : int; dev : int; seq : seq; kind : kind }

type sink

(** [create ~capacity ()] builds an empty bounded sink (default capacity
    262144 events). When full, the oldest event is overwritten and
    {!dropped} grows. *)
val create : ?capacity:int -> unit -> sink

(** Recorded by the platform when the sink is installed, so exporters
    know the full track layout even for tracks that saw no events.
    [devices] is the X3K device count (default 1). *)
val set_topology :
  sink -> ?devices:int -> eus:int -> threads_per_eu:int -> unit -> unit

val eus : sink -> int
val threads_per_eu : sink -> int
val devices : sink -> int

(** [emit sink ~ts_ps ?dur_ps ?dev ~seq kind] appends one event. O(1),
    no simulation side effects. [dev] defaults to device 0. *)
val emit :
  sink -> ts_ps:int -> ?dur_ps:int -> ?dev:int -> seq:seq -> kind -> unit

(** [set_tap sink f] installs a streaming tap: [f] sees every event at
    emission time, {e before} the ring can overwrite it, so a tap-fed
    aggregator ({!Live}) stays exact even after the ring wraps. The tap
    must not touch simulation state (no clock, no PRNG, no counters) —
    pure accumulation only — which keeps tapped runs bit- and
    time-identical to untapped ones (enforced by [test/test_obs.ml]). *)
val set_tap : sink -> (event -> unit) -> unit

val clear_tap : sink -> unit

(** Events in emission order (oldest surviving first). *)
val events : sink -> event list

val length : sink -> int
val capacity : sink -> int
val dropped : sink -> int
val clear : sink -> unit

(** {1 Rendering helpers} *)

val kind_name : kind -> string

(** ["IA32"] or ["EU3/T1"]. *)
val seq_label : seq -> string

(** One-line human rendering (the [exochi_dbg] timeline view). *)
val pp_event : Format.formatter -> event -> unit
