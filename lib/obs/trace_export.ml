(* Chrome/Perfetto trace-event JSON exporter.

   One track (tid) per exo-sequencer plus tid 0 for the IA32 proxy
   sequencer, so a run opens directly in about:tracing / ui.perfetto.dev.
   Timestamps are microseconds (the trace-event format's unit) printed
   with fixed precision, so equal event streams serialise to identical
   bytes — the determinism tests diff exported files directly. *)

(* Exo tracks are grouped by device: device [d]'s sequencers occupy the
   tid range [1 + d*eus*tpe, 1 + (d+1)*eus*tpe). With one device this
   collapses to the historical layout (and identical exported bytes). *)
let tid_of sink (e : Trace.event) =
  match e.Trace.seq with
  | Trace.Ia32 -> 0
  | Trace.Exo { eu; slot } ->
    let per_dev = Trace.eus sink * Trace.threads_per_eu sink in
    1 + (e.Trace.dev * per_dev) + (eu * Trace.threads_per_eu sink) + slot

let track_count sink =
  1 + (Trace.devices sink * Trace.eus sink * Trace.threads_per_eu sink)

let track_name sink tid =
  if tid = 0 then "IA32 sequencer (proxy)"
  else
    let per_dev = Trace.eus sink * Trace.threads_per_eu sink in
    let k = tid - 1 in
    let dev = k / per_dev and r = k mod per_dev in
    let eu = r / Trace.threads_per_eu sink
    and slot = r mod Trace.threads_per_eu sink in
    if Trace.devices sink = 1 then Printf.sprintf "exo EU%d/T%d" eu slot
    else Printf.sprintf "exo D%d EU%d/T%d" dev eu slot

(* ---- JSON writing ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let us_of_ps ps = Printf.sprintf "%.6f" (float_of_int ps /. 1e6)

type arg = I of int | S of string | B of bool

let args_string args =
  String.concat ","
    (List.map
       (fun (k, v) ->
         Printf.sprintf "\"%s\":%s" (escape k)
           (match v with
           | I i -> string_of_int i
           | S s -> Printf.sprintf "\"%s\"" (escape s)
           | B b -> if b then "true" else "false"))
       args)

let kind_args : Trace.kind -> (string * arg) list = function
  | Shred_enqueue { shred_id } -> [ ("shred", I shred_id) ]
  | Signal_doorbell { shreds; lost } ->
    [ ("shreds", I shreds); ("lost", B lost) ]
  | Doorbell_redeliver { shreds } -> [ ("shreds", I shreds) ]
  | Shred_dispatch { shred_id }
  | Shred_start { shred_id }
  | Shred_run { shred_id } ->
    [ ("shred", I shred_id) ]
  | Watchdog_reap { shred_id; fails } ->
    [ ("shred", I shred_id); ("slot_fails", I fails) ]
  | Redispatch { shred_id; attempt; delay_ps } ->
    [ ("shred", I shred_id); ("attempt", I attempt); ("backoff_ps", I delay_ps) ]
  | Quarantine -> []
  | Ia32_fallback { shred_id; instrs; lane_ops } ->
    [ ("shred", I shred_id); ("instrs", I instrs); ("lane_ops", I lane_ops) ]
  | Atr_tlb_miss { vpage } | Atr_gtt_hit { vpage } -> [ ("vpage", I vpage) ]
  | Atr_proxy { vpage; faulted_in } ->
    [ ("vpage", I vpage); ("page_fault", B faulted_in) ]
  | Atr_transient { vpage; attempt } ->
    [ ("vpage", I vpage); ("attempt", I attempt) ]
  | Atr_prewalk { pages } -> [ ("pages", I pages) ]
  | Ceh_proxy { op; lanes } | Ceh_writeback { op; lanes } ->
    [ ("op", S op); ("lanes", I lanes) ]
  | Ceh_spurious -> []
  | Fault_injected { cls } -> [ ("class", S cls) ]
  | Flush { bytes } | Copy { bytes } -> [ ("bytes", I bytes) ]
  | Job_arrive { job; tenant } -> [ ("job", I job); ("tenant", I tenant) ]
  | Job_shed { job; tenant; reason } ->
    [ ("job", I job); ("tenant", I tenant); ("reason", S reason) ]
  | Batch_dispatch { batch; jobs; shreds } ->
    [ ("batch", I batch); ("jobs", I jobs); ("shreds", I shreds) ]
  | Job_done { job; tenant; latency_ps } ->
    [ ("job", I job); ("tenant", I tenant); ("latency_ps", I latency_ps) ]
  | Sdc_detected { batch; corruptions; source } ->
    [ ("batch", I batch); ("corruptions", I corruptions); ("source", S source) ]
  | Breaker_open { eu; slot; cooldown_ps } ->
    [ ("eu", I eu); ("slot", I slot); ("cooldown_ps", I cooldown_ps) ]
  | Breaker_close { eu; slot } -> [ ("eu", I eu); ("slot", I slot) ]
  | Hedge_dispatch { shred_id; age_ps } ->
    [ ("shred", I shred_id); ("age_ps", I age_ps) ]
  | Hedge_win { shred_id } -> [ ("shred", I shred_id) ]
  | Counter _ -> []

let event_name (e : Trace.event) =
  match e.kind with
  | Shred_run { shred_id } -> Printf.sprintf "shred %d" shred_id
  | Ceh_proxy { op; _ } -> Printf.sprintf "ceh-proxy %s" op
  | Fault_injected { cls } -> Printf.sprintf "fault %s" cls
  | k -> Trace.kind_name k

let category (e : Trace.event) =
  match e.kind with
  | Shred_enqueue _ | Signal_doorbell _ | Doorbell_redeliver _
  | Shred_dispatch _ | Shred_start _ | Shred_run _ ->
    "shred"
  | Watchdog_reap _ | Redispatch _ | Quarantine | Ia32_fallback _
  | Breaker_open _ | Breaker_close _ | Hedge_dispatch _ | Hedge_win _ ->
    "recovery"
  | Atr_tlb_miss _ | Atr_gtt_hit _ | Atr_proxy _ | Atr_transient _
  | Atr_prewalk _ ->
    "atr"
  | Ceh_proxy _ | Ceh_writeback _ | Ceh_spurious -> "ceh"
  | Fault_injected _ -> "fault"
  | Flush _ | Copy _ -> "memmodel"
  | Job_arrive _ | Job_shed _ | Batch_dispatch _ | Job_done _ -> "serve"
  | Sdc_detected _ -> "guard"
  | Counter _ -> "counter"

let pid = 1

let to_chrome sink =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  let first = ref true in
  let add line =
    if !first then first := false else Buffer.add_string buf ",\n";
    Buffer.add_string buf line
  in
  add
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":\"EXO platform\"}}"
       pid);
  (* sink provenance: lets the validator (and trace lint) tell whether
     the ring wrapped — a wrapped export is a tail window, not the run *)
  add
    (Printf.sprintf
       "{\"name\":\"exochi_sink\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"dropped\":%d,\"capacity\":%d,\"events\":%d}}"
       pid (Trace.dropped sink) (Trace.capacity sink) (Trace.length sink));
  let tracks = track_count sink in
  for tid = 0 to tracks - 1 do
    add
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
         pid tid
         (escape (track_name sink tid)));
    add
      (Printf.sprintf
         "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
         pid tid tid)
  done;
  (* stable order: by track, then timestamp, ties keep emission order —
     the per-track streams the CI lint checks are monotonic by
     construction *)
  let indexed = List.mapi (fun i e -> (i, e)) (Trace.events sink) in
  let sorted =
    List.stable_sort
      (fun (i, (a : Trace.event)) (j, (b : Trace.event)) ->
        let ta = tid_of sink a and tb = tid_of sink b in
        if ta <> tb then compare ta tb
        else if a.ts_ps <> b.ts_ps then compare a.ts_ps b.ts_ps
        else compare i j)
      indexed
  in
  List.iter
    (fun (_, (e : Trace.event)) ->
      match e.kind with
      | Counter { counter; value } ->
        add
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"counter\",\"ph\":\"C\",\"pid\":%d,\"ts\":%s,\"args\":{\"value\":%d}}"
             (escape counter) pid (us_of_ps e.ts_ps) value)
      | _ ->
        let args = kind_args e.kind in
        let args_field =
          if args = [] then "" else Printf.sprintf ",\"args\":{%s}" (args_string args)
        in
        if e.dur_ps > 0 then
          add
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%s,\"dur\":%s%s}"
               (escape (event_name e)) (category e) pid (tid_of sink e)
               (us_of_ps e.ts_ps) (us_of_ps e.dur_ps) args_field)
        else
          add
            (Printf.sprintf
               "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%s%s}"
               (escape (event_name e)) (category e) pid (tid_of sink e)
               (us_of_ps e.ts_ps) args_field))
    sorted;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ---- validation (CI lint + tests) ---- *)

type validation = {
  tracks : int; (* thread_name metadata entries *)
  events : int; (* non-metadata events *)
  counters : int;
  dropped : int; (* from exochi_sink metadata; 0 when absent *)
}

let validate_chrome text =
  match Tiny_json.parse text with
  | Error msg -> Error ("malformed JSON: " ^ msg)
  | Ok json -> (
    match Option.bind (Tiny_json.member "traceEvents" json) Tiny_json.to_arr with
    | None -> Error "no traceEvents array"
    | Some entries ->
      let tracks = ref 0 and events = ref 0 and counters = ref 0 in
      let dropped = ref 0 in
      let last_ts : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
      let err = ref None in
      List.iteri
        (fun i entry ->
          if !err = None then begin
            let field k = Tiny_json.member k entry in
            match Option.bind (field "ph") Tiny_json.to_str with
            | None -> err := Some (Printf.sprintf "event %d: missing ph" i)
            | Some "M" -> (
              match Option.bind (field "name") Tiny_json.to_str with
              | Some "thread_name" -> incr tracks
              | Some "exochi_sink" -> (
                match
                  Option.bind (field "args") (Tiny_json.member "dropped")
                  |> Fun.flip Option.bind Tiny_json.to_num
                with
                | Some d -> dropped := int_of_float d
                | None -> ())
              | _ -> ())
            | Some "C" -> (
              incr counters;
              match Option.bind (field "ts") Tiny_json.to_num with
              | None -> err := Some (Printf.sprintf "counter %d: missing ts" i)
              | Some _ -> ())
            | Some ph -> (
              incr events;
              let num k = Option.bind (field k) Tiny_json.to_num in
              match (num "pid", num "tid", num "ts") with
              | Some pid, Some tid, Some ts ->
                let key = (int_of_float pid, int_of_float tid) in
                (match Hashtbl.find_opt last_ts key with
                | Some prev when ts < prev ->
                  err :=
                    Some
                      (Printf.sprintf
                         "event %d (ph %s): ts %.6f < %.6f on track %d — not \
                          monotonic"
                         i ph ts prev (snd key))
                | _ -> Hashtbl.replace last_ts key ts);
                if ph = "X" && num "dur" = None then
                  err := Some (Printf.sprintf "event %d: X phase without dur" i)
              | _ ->
                err := Some (Printf.sprintf "event %d: missing pid/tid/ts" i))
          end)
        entries;
      (match !err with
      | Some e -> Error e
      | None ->
        Ok
          {
            tracks = !tracks;
            events = !events;
            counters = !counters;
            dropped = !dropped;
          }))
