(** Chrome/Perfetto trace-event JSON export and validation.

    Track layout: tid 0 is the IA32 proxy sequencer; tids
    [1 .. eus * threads_per_eu] are the exo-sequencers (one track per HW
    thread context), named ["exo EU<e>/T<s>"]. All tracks are declared
    via [thread_name] metadata even when empty, so a default-configured
    platform always exports 33 tracks. Events with a nonzero duration
    become ["X"] (complete) slices, instants become ["i"], and
    {!Trace.Counter} events become ["C"] counter samples.

    The serialisation is deterministic: equal event streams produce
    byte-identical output (fixed-precision timestamps, stable per-track
    sort with emission order as the tie-break). *)

(** Track id an event lands on. Exo tracks are grouped by device:
    device [d] occupies tids [1 + d*eus*tpe .. (d+1)*eus*tpe]; with one
    device this is the historical single-device layout. *)
val tid_of : Trace.sink -> Trace.event -> int

(** Total declared tracks: 1 + devices * eus * threads_per_eu. *)
val track_count : Trace.sink -> int

val track_name : Trace.sink -> int -> string

(** Serialise the sink to Chrome trace-event JSON (a complete file,
    loadable in about:tracing and ui.perfetto.dev). *)
val to_chrome : Trace.sink -> string

type validation = {
  tracks : int; (* thread_name metadata entries *)
  events : int; (* slice/instant events *)
  counters : int; (* counter samples *)
  dropped : int;
      (* ring-drop count from the exochi_sink metadata entry; 0 when the
         file predates that entry. Nonzero means the export is a tail
         window of the run, not the whole run. *)
}

(** Parse and check an exported file: well-formed JSON, a [traceEvents]
    array, every event carrying [ph]/[pid]/[tid]/[ts], durations on
    ["X"] slices, and per-track monotonically non-decreasing [ts]. *)
val validate_chrome : string -> (validation, string) result
