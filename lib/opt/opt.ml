open Exochi_isa
open X3k_ast
module Lane = Exochi_accel.Lane
module IR = Opt_ir

(* Exo-opt: an SSA-free, CFG-level optimization pipeline over X3K
   programs. Legality leans on three ISA facts, so no SSA construction
   is needed:

   - registers are 16-lane vectors and a width-w write only touches
     lanes 0..w-1, so a def is really a read-modify-write: every pass
     treats defs as uses for ordering, and value facts always carry the
     width they are known for;
   - [Reg]/[Imm] operand reads are wrap32-normalised exactly like the
     values [Lane] produces, so replaying an instruction's [Lane] calls
     at compile time yields bit-identical results;
   - [fdiv]/[fsqrt]/[dpadd] can fault into the CEH proxy path and
     [ld]/[gather]/[sample] can raise [Gpu_segfault], so those are
     never folded, deleted or speculated.

   Anything outside that comfort zone ([spawn], [sendreg], semaphores,
   remote operands, predicated control flow) makes [Opt_ir.build]
   raise [Unsupported] and the program is returned unchanged. *)

module ISet = Set.Make (Int)
module SMap = Map.Make (String)
module IMap = Map.Make (Int)

type level = O0 | O1 | O2

let level_to_int = function O0 -> 0 | O1 -> 1 | O2 -> 2

let level_of_int = function
  | 0 -> Some O0
  | 1 -> Some O1
  | 2 -> Some O2
  | _ -> None

let level_of_string = function
  | "0" | "O0" | "-O0" -> Some O0
  | "1" | "O1" | "-O1" -> Some O1
  | "2" | "O2" | "-O2" -> Some O2
  | _ -> None

let level_name l = Printf.sprintf "O%d" (level_to_int l)

(* ------------------------------------------------------------------ *)
(* Value facts: constant + copy propagation                            *)
(* ------------------------------------------------------------------ *)

type fact =
  | Const of int * int (* width w, value: lanes 0..w-1 all hold value *)
  | CopyOf of int * int (* src reg s, width w: lanes 0..w-1 equal s's *)

let meet_fact a b =
  match (a, b) with
  | Const (w1, v1), Const (w2, v2) when v1 = v2 -> Some (Const (min w1 w2, v1))
  | CopyOf (s1, w1), CopyOf (s2, w2) when s1 = s2 ->
    Some (CopyOf (s1, min w1 w2))
  | _ -> None

let meet_env e1 e2 =
  IMap.merge
    (fun _ a b ->
      match (a, b) with Some x, Some y -> meet_fact x y | _ -> None)
    e1 e2

(* forget everything about reg r: its own fact and any copy reading it *)
let kill_reg env r =
  IMap.filter
    (fun d f ->
      d <> r && match f with CopyOf (s, _) -> s <> r | Const _ -> true)
    env

let imm_value v = Lane.wrap32 (Int32.to_int v)

(* constant value of an operand's lanes 0..width-1 under env *)
let const_of env ~width = function
  | Imm v -> Some (imm_value v)
  | Reg r -> (
    match IMap.find_opt r env with
    | Some (Const (w, v)) when w >= width -> Some v
    | _ -> None)
  | _ -> None

(* exact mirrors of Gpu.alu_result / Gpu.unary_result for the
   deterministic ops (faulting fdiv/fsqrt/dpadd deliberately absent) *)
let eval_binop op dtype a b =
  match op with
  | Add -> Some (Lane.add dtype a b)
  | Sub -> Some (Lane.sub dtype a b)
  | Mul -> Some (Lane.mul dtype a b)
  | Min -> Some (Lane.min_ dtype a b)
  | Max -> Some (Lane.max_ dtype a b)
  | Avg -> Some (Lane.avg dtype a b)
  | Shl -> Some (Lane.shl dtype a b)
  | Shr -> Some (Lane.shr dtype a b)
  | Sar -> Some (Lane.sar dtype a b)
  | And -> Some (Lane.and_ a b)
  | Or -> Some (Lane.or_ a b)
  | Xor -> Some (Lane.xor_ a b)
  | Fadd -> Some (Lane.fadd a b)
  | Fsub -> Some (Lane.fsub a b)
  | Fmul -> Some (Lane.fmul a b)
  | Fmin -> Some (Lane.fmin a b)
  | Fmax -> Some (Lane.fmax a b)
  | _ -> None

let eval_unop op dtype a =
  match op with
  | Mov | Bcast -> Some (Lane.wrap dtype a)
  | Abs -> Some (Lane.abs_ dtype a)
  | Not -> Some (Lane.not_ dtype a)
  | Sat -> Some (Lane.saturate dtype a)
  | Fabs -> Some (Lane.fabs a)
  | Cvtif -> Some (Lane.cvtif a)
  | Cvtfi -> Some (Lane.cvtfi a)
  | _ -> None

(* value all dst lanes 0..width-1 would hold, when provable *)
let fold_value env i =
  match (i.pred, i.dst, i.srcs) with
  | None, Some (Reg _), [ a; b ] -> (
    match (const_of env ~width:i.width a, const_of env ~width:i.width b) with
    | Some va, Some vb -> eval_binop i.op i.dtype va vb
    | _ -> None)
  | None, Some (Reg _), [ a ] -> (
    let width = if i.op = Bcast then 1 else i.width in
    match const_of env ~width a with
    | Some va -> eval_unop i.op i.dtype va
    | None -> None)
  | _ -> None

(* substitute proven-constant and copied registers into source (and
   surface-address) operands. Surface/2d addressing reads lane 0 of
   its registers only (see Gpu.element_vaddrs), so width-1 facts are
   enough there. *)
let subst_operand env ~width o =
  let copy_for ~width r =
    match IMap.find_opt r env with
    | Some (CopyOf (s, w)) when w >= width -> Some s
    | _ -> None
  in
  match o with
  | Reg r -> (
    match IMap.find_opt r env with
    | Some (Const (w, v)) when w >= width ->
      Imm (Int32.of_int (v land 0xFFFFFFFF))
    | Some (CopyOf (s, w)) when w >= width -> Reg s
    | _ -> o)
  | Surf s -> (
    match copy_for ~width:1 s.index with
    | Some index -> Surf { s with index }
    | None -> o)
  | Surf2d s ->
    let xreg = Option.value (copy_for ~width:1 s.xreg) ~default:s.xreg in
    let yreg = Option.value (copy_for ~width:1 s.yreg) ~default:s.yreg in
    if xreg = s.xreg && yreg = s.yreg then o else Surf2d { s with xreg; yreg }
  | Range _ | Flag _ | Imm _ | Sreg _ | Remote _ -> o

let rewrite_instr env i =
  let srcs = List.map (subst_operand env ~width:i.width) i.srcs in
  let dst =
    (* a surface/remote destination's address regs are uses *)
    match i.dst with
    | Some ((Surf _ | Surf2d _) as o) -> Some (subst_operand env ~width:i.width o)
    | d -> d
  in
  let i = { i with srcs; dst } in
  match fold_value env i with
  | Some v when not (i.op = Mov && match i.srcs with [ Imm _ ] -> true | _ -> false)
    ->
    { i with op = Mov; srcs = [ Imm (Int32.of_int (v land 0xFFFFFFFF)) ] }
  | _ -> i

(* env after executing [i] (which reads the pre-state) *)
let transfer env i =
  let gained =
    match fold_value env i with
    | Some v -> (
      match i.dst with
      | Some (Reg d) -> Some (d, Const (i.width, v))
      | _ -> None)
    | None -> (
      match (i.pred, i.op, i.dst, i.srcs) with
      | None, Mov, Some (Reg d), [ Reg s ] when s <> d -> (
        match IMap.find_opt s env with
        | Some (Const (w, v)) when w >= i.width ->
          Some (d, Const (i.width, Lane.wrap i.dtype v))
        | Some (CopyOf (s0, w)) when i.dtype = DW && w >= i.width && s0 <> d ->
          Some (d, CopyOf (s0, i.width))
        | _ when i.dtype = DW -> Some (d, CopyOf (s, i.width))
        | _ -> None)
      | _ -> None)
  in
  let du = X3k_flow.def_use i in
  let env = List.fold_left kill_reg env du.X3k_flow.reg_defs in
  match gained with Some (d, f) -> IMap.add d f env | None -> env

(* Forward fixpoint of per-block const/copy envs. Blocks start
   optimistic (unvisited preds are ignored in the meet) and facts only
   shrink once computed, so iteration terminates at a sound fixpoint. *)
let const_envs t =
  let g = IR.cfg t in
  let nb = IR.num_blocks t in
  let out_env = Array.make nb IMap.empty in
  let computed = Array.make nb false in
  let in_env b =
    if b = 0 then IMap.empty
    else
      match List.filter (fun p -> computed.(p)) g.Cfg.pred.(b) with
      | [] -> IMap.empty
      | p :: rest ->
        List.fold_left (fun acc q -> meet_env acc out_env.(q)) out_env.(p) rest
  in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > 1000 then IR.unsupported "const-env fixpoint diverged";
    Array.iter
      (fun b ->
        if b >= 0 && b < nb then begin
          let e = List.fold_left transfer (in_env b) t.IR.blocks.(b).IR.body in
          if (not computed.(b)) || not (IMap.equal ( = ) out_env.(b) e) then begin
            out_env.(b) <- e;
            computed.(b) <- true;
            changed := true
          end
        end)
      g.Cfg.rpo
  done;
  (g, out_env, in_env)

(* ---- pass: constant folding + copy propagation ---- *)

let fold_prop t =
  let _, _, in_env = const_envs t in
  let changed = ref false in
  Array.iteri
    (fun bi b ->
      let env = ref (in_env bi) in
      let body =
        List.map
          (fun i ->
            let i' = rewrite_instr !env i in
            env := transfer !env i';
            if i' <> i then changed := true;
            i')
          b.IR.body
      in
      b.IR.body <- body)
    t.IR.blocks;
  !changed

(* ---- pass: strength reduction ---- *)

let is_pow2 v = v > 0 && v land (v - 1) = 0

let log2 v =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 v

let strength_rewrite i =
  let int_dtype = match i.dtype with B | W | DW -> true | F -> false in
  if i.pred <> None || not int_dtype then i
  else
    let mov src = { i with op = Mov; srcs = [ src ] } in
    match (i.op, i.srcs) with
    | Mul, [ a; Imm c ] | Mul, [ Imm c; a ] -> (
      match imm_value c with
      | 0 -> mov (Imm 0l)
      | 1 -> mov a
      | cv when is_pow2 cv ->
        (* a * 2^k == a lsl k exactly, and the per-dtype wrap agrees *)
        { i with op = Shl; srcs = [ a; Imm (Int32.of_int (log2 cv)) ] }
      | _ -> i)
    | Add, [ a; Imm c ] when imm_value c = 0 -> mov a
    | Add, [ Imm c; a ] when imm_value c = 0 -> mov a
    | Sub, [ a; Imm c ] when imm_value c = 0 -> mov a
    | Shl, [ a; Imm c ] when imm_value c = 0 -> mov a
    (* or/xor with 0 skip the dtype wrap (Lane.or_ has no dtype), so
       they are only mov-equivalent at dw width *)
    | Or, [ a; Imm c ] when imm_value c = 0 && i.dtype = DW -> mov a
    | Or, [ Imm c; a ] when imm_value c = 0 && i.dtype = DW -> mov a
    | Xor, [ a; Imm c ] when imm_value c = 0 && i.dtype = DW -> mov a
    | Xor, [ Imm c; a ] when imm_value c = 0 && i.dtype = DW -> mov a
    | _ -> i

let strength t =
  let changed = ref false in
  Array.iter
    (fun b ->
      b.IR.body <-
        List.map
          (fun i ->
            let i' = strength_rewrite i in
            if i' <> i then changed := true;
            i')
          b.IR.body)
    t.IR.blocks;
  !changed

(* ---- pass: common-subexpression elimination over extended basic
   blocks ---- *)

(* deterministic register-only ops a CSE table may hold *)
let cse_op = function
  | Mov | Add | Sub | Mul | Min | Max | Avg | Abs | Sad | Hadd | Shl | Shr
  | Sar | And | Or | Xor | Not | Sat | Bcast | Fadd | Fsub | Fmul | Fmin
  | Fmax | Fabs | Cvtif | Cvtfi | Cmp _ ->
    true
  | Mac | Fmac (* read their destination *) | Sel | Fdiv | Fsqrt | Dpadd
  | Ld | St | Gather | Scatter | Sample | Br _ | Jmp | End | Fence | Semacq
  | Semrel | Sendreg | Spawn | Nop ->
    false

let sreg_key = function
  | Sid -> "sid"
  | Nshred -> "nshred"
  | Eu -> "eu"
  | Tid -> "tid"
  | Lane -> "lane"
  | Param n -> Printf.sprintf "p%d" n

let operand_key = function
  | Reg r -> Some (Printf.sprintf "r%d" r)
  | Imm v -> Some (Printf.sprintf "i%ld" v)
  | Sreg s -> Some ("s" ^ sreg_key s)
  | Flag f -> Some (Printf.sprintf "f%d" f)
  | Range _ | Surf _ | Surf2d _ | Remote _ -> None

let expr_key i =
  let rec srcs acc = function
    | [] -> Some (List.rev acc)
    | o :: rest -> (
      match operand_key o with
      | Some k -> srcs (k :: acc) rest
      | None -> None)
  in
  match srcs [] i.srcs with
  | Some ks ->
    Some
      (Printf.sprintf "%s.%d.%s:%s" (opcode_name i.op) i.width
         (dtype_name i.dtype) (String.concat "," ks))
  | None -> None

type cse_entry = { holder : operand; dep_regs : ISet.t; dep_flags : ISet.t }

let cse t =
  let g = IR.cfg t in
  let nb = IR.num_blocks t in
  let changed = ref false in
  let visited = Array.make nb false in
  let kill_table table (du : X3k_flow.def_use) =
    if du.X3k_flow.reg_defs = [] && du.X3k_flow.flag_defs = [] then table
    else
      SMap.filter
        (fun _ e ->
          (not
             (List.exists (fun r -> ISet.mem r e.dep_regs) du.X3k_flow.reg_defs))
          && not
               (List.exists
                  (fun f -> ISet.mem f e.dep_flags)
                  du.X3k_flow.flag_defs))
        table
  in
  let rec visit b table =
    visited.(b) <- true;
    let table = ref table in
    let body =
      List.filter_map
        (fun i ->
          let du = X3k_flow.def_use i in
          let candidate =
            i.pred = None && cse_op i.op
            && match i.dst with Some (Reg _) | Some (Flag _) -> true | _ -> false
          in
          let key = if candidate then expr_key i else None in
          match key with
          | Some k -> (
            match (SMap.find_opt k !table, i.dst) with
            | Some { holder = Reg h; _ }, Some (Reg d) when h = d ->
              (* recomputation of a value the register still holds *)
              changed := true;
              None
            | Some { holder = Flag h; _ }, Some (Flag d) when h = d ->
              changed := true;
              None
            | Some { holder = Reg h; _ }, Some (Reg _) ->
              let mov =
                { i with op = Mov; dtype = DW; srcs = [ Reg h ] }
              in
              changed := true;
              table := kill_table !table du;
              Some mov
            | Some _, _ ->
              table := kill_table !table du;
              Some i
            | None, Some dst ->
              table := kill_table !table du;
              (* a read-modify-write expression (dst among its own
                 sources, e.g. [add r4 = r4, 8]) is invalidated by its
                 own execution — never record it *)
              let rmw =
                match dst with
                | Reg d -> List.mem d du.X3k_flow.reg_uses
                | Flag d -> List.mem d du.X3k_flow.flag_uses
                | _ -> false
              in
              if not rmw then begin
                let dep_regs =
                  List.fold_left (fun s r -> ISet.add r s)
                    (match dst with Reg d -> ISet.singleton d | _ -> ISet.empty)
                    du.X3k_flow.reg_uses
                in
                let dep_flags =
                  List.fold_left (fun s f -> ISet.add f s)
                    (match dst with Flag d -> ISet.singleton d | _ -> ISet.empty)
                    du.X3k_flow.flag_uses
                in
                table := SMap.add k { holder = dst; dep_regs; dep_flags } !table
              end;
              Some i
            | None, None -> assert false)
          | None ->
            table := kill_table !table du;
            Some i)
        t.IR.blocks.(b).IR.body
    in
    t.IR.blocks.(b).IR.body <- body;
    let final = !table in
    List.iter
      (fun s ->
        if s <> b && (not visited.(s)) && g.Cfg.pred.(s) = [ b ] then
          visit s final)
      (IR.succs t b)
  in
  for b = 0 to nb - 1 do
    if (not visited.(b)) && List.length g.Cfg.pred.(b) <> 1 then
      visit b SMap.empty
  done;
  (* blocks on single-pred cycles never got a root; give them empty
     tables so rewrites stay sound *)
  for b = 0 to nb - 1 do
    if not visited.(b) then visit b SMap.empty
  done;
  !changed

(* ---- liveness (no-kill, so partial-width writes are safe) ---- *)

let instr_uses (du : X3k_flow.def_use) =
  ( ISet.of_list du.X3k_flow.reg_uses,
    ISet.of_list du.X3k_flow.flag_uses )

(* An unpredicated [cmp] overwrites its destination flag in full (all
   16 mask bits, whatever the cmp width — see [Gpu.exec_instr]), so it
   kills the flag for liveness. Register writes are partial (lanes
   0..width-1 only), so registers never have kills. *)
let flag_kill i =
  match (i.pred, i.op, i.dst) with
  | None, Cmp _, Some (Flag f) -> Some f
  | _ -> None

let liveness t =
  let nb = IR.num_blocks t in
  (* gen = upward-exposed uses; kill = flags fully defined before any
     use — both from a backward scan of the block *)
  let gen = Array.make nb (ISet.empty, ISet.empty) in
  let kill = Array.make nb ISet.empty in
  Array.iteri
    (fun b blk ->
      let tr, tf = IR.term_uses t b in
      let regs = ref (ISet.of_list tr) and flags = ref (ISet.of_list tf) in
      let killed = ref ISet.empty in
      List.iter
        (fun i ->
          (match flag_kill i with
          | Some f ->
            flags := ISet.remove f !flags;
            killed := ISet.add f !killed
          | None -> ());
          let r, f = instr_uses (X3k_flow.def_use i) in
          regs := ISet.union !regs r;
          flags := ISet.union !flags f)
        (List.rev blk.IR.body);
      gen.(b) <- (!regs, !flags);
      kill.(b) <- !killed)
    t.IR.blocks;
  let live_in = Array.make nb (ISet.empty, ISet.empty) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      let out_r, out_f =
        List.fold_left
          (fun (r, f) s ->
            let sr, sf = live_in.(s) in
            (ISet.union r sr, ISet.union f sf))
          (ISet.empty, ISet.empty) (IR.succs t b)
      in
      let gr, gf = gen.(b) in
      let nr = ISet.union gr out_r
      and nf = ISet.union gf (ISet.diff out_f kill.(b)) in
      let or_, of_ = live_in.(b) in
      if not (ISet.equal nr or_ && ISet.equal nf of_) then begin
        live_in.(b) <- (nr, nf);
        changed := true
      end
    done
  done;
  fun b ->
    List.fold_left
      (fun (r, f) s ->
        let sr, sf = live_in.(s) in
        (ISet.union r sr, ISet.union f sf))
      (ISet.empty, ISet.empty) (IR.succs t b)

(* ---- pass: dead-code elimination ---- *)

(* ops whose removal could change behaviour even when the defs are
   dead: memory access can segfault, fdiv/fsqrt/dpadd can fault into
   the CEH path *)
let never_dead = function
  | Ld | Gather | Sample | Fdiv | Fsqrt | Dpadd -> true
  | _ -> false

let dce t =
  let live_out = liveness t in
  let changed = ref false in
  Array.iteri
    (fun bi b ->
      let tr, tf = IR.term_uses t bi in
      let lr, lf = live_out bi in
      let live_r = ref (ISet.union lr (ISet.of_list tr)) in
      let live_f = ref (ISet.union lf (ISet.of_list tf)) in
      let body =
        List.fold_left
          (fun acc i ->
            let du = X3k_flow.def_use i in
            let has_defs =
              du.X3k_flow.reg_defs <> [] || du.X3k_flow.flag_defs <> []
            in
            let dead =
              (not (X3k_flow.has_side_effect i))
              && (not (never_dead i.op))
              && (has_defs || i.op = Nop)
              && List.for_all
                   (fun r -> not (ISet.mem r !live_r))
                   du.X3k_flow.reg_defs
              && List.for_all
                   (fun f -> not (ISet.mem f !live_f))
                   du.X3k_flow.flag_defs
            in
            if dead then begin
              changed := true;
              acc
            end
            else begin
              (match flag_kill i with
              | Some f -> live_f := ISet.remove f !live_f
              | None -> ());
              let ur, uf = instr_uses du in
              live_r := ISet.union !live_r ur;
              live_f := ISet.union !live_f uf;
              i :: acc
            end)
          [] (List.rev b.IR.body)
      in
      b.IR.body <- body)
    t.IR.blocks;
  !changed

(* ---- layout surgery ---- *)

let insert_block t idx blk =
  IR.retarget t (fun g -> if g >= idx then g + 1 else g);
  let nb = IR.num_blocks t in
  let arr = Array.make (nb + 1) blk in
  Array.blit t.IR.blocks 0 arr 0 idx;
  Array.blit t.IR.blocks idx arr (idx + 1) (nb - idx);
  t.IR.blocks <- arr

(* ---- pass: loop-invariant code motion ---- *)

(* Hoisting is busy-safe by construction: a candidate's block must
   dominate the latch and every exit source, so it runs at least once
   per loop entry; the preheader runs exactly once per entry. *)
let licm_candidates t g (l : Cfg.loop) =
  match l.Cfg.back_srcs with
  | [ latch ] ->
    (* fall-through back edge into the header would make preheader
       insertion ambiguous; natural loops never produce one, but stay
       defensive *)
    let fall_back_edge =
      l.Cfg.header > 0
      && l.Cfg.body.(l.Cfg.header - 1)
      &&
      match t.IR.blocks.(l.Cfg.header - 1).IR.term with
      | IR.Fall | IR.Cond _ -> true
      | IR.Goto _ | IR.Stop _ -> false
    in
    if fall_back_edge then []
    else begin
      (* defs and uses inside the loop, with the block (and body index)
         of every def/use *)
      let reg_defs = Hashtbl.create 16 and flag_defs = Hashtbl.create 16 in
      let reg_uses = Hashtbl.create 16 and flag_uses = Hashtbl.create 16 in
      let note tbl k site = Hashtbl.replace tbl k (site :: (try Hashtbl.find tbl k with Not_found -> [])) in
      List.iter
        (fun b ->
          List.iteri
            (fun idx i ->
              let du = X3k_flow.def_use i in
              List.iter (fun r -> note reg_defs r (b, idx)) du.X3k_flow.reg_defs;
              List.iter (fun f -> note flag_defs f (b, idx)) du.X3k_flow.flag_defs;
              List.iter (fun r -> note reg_uses r (b, idx)) du.X3k_flow.reg_uses;
              List.iter (fun f -> note flag_uses f (b, idx)) du.X3k_flow.flag_uses)
            t.IR.blocks.(b).IR.body;
          let tr, tf = IR.term_uses t b in
          let term_idx = List.length t.IR.blocks.(b).IR.body in
          List.iter (fun r -> note reg_uses r (b, term_idx)) tr;
          List.iter (fun f -> note flag_uses f (b, term_idx)) tf)
        l.Cfg.nodes;
      let defs tbl k = try Hashtbl.find tbl k with Not_found -> [] in
      let invariant_operand o =
        match o with
        | Imm _ | Sreg _ -> true
        | Reg r -> defs reg_defs r = []
        | Flag f -> defs flag_defs f = []
        | Range _ | Surf _ | Surf2d _ | Remote _ -> false
      in
      let dominates_site b idx (ub, uidx) =
        if ub = b then idx < uidx else Cfg.dominates g b ub
      in
      let cands = ref [] in
      List.iter
        (fun b ->
          List.iteri
            (fun idx i ->
              let ok =
                i.pred = None && cse_op i.op
                && (match i.op with Mac | Fmac -> false | _ -> true)
                && (match i.dst with
                   | Some (Reg _) | Some (Flag _) -> true
                   | _ -> false)
                && List.for_all invariant_operand i.srcs
                && Cfg.dominates g b latch
                && List.for_all
                     (fun (e, _) -> Cfg.dominates g b e)
                     l.Cfg.exits
                &&
                let du = X3k_flow.def_use i in
                let single_def tbl k =
                  match defs tbl k with [ (db, di) ] -> db = b && di = idx | _ -> false
                in
                List.for_all (fun r -> single_def reg_defs r) du.X3k_flow.reg_defs
                && List.for_all (fun f -> single_def flag_defs f) du.X3k_flow.flag_defs
                && List.for_all
                     (fun r ->
                       List.for_all (dominates_site b idx)
                         (defs reg_uses r))
                     du.X3k_flow.reg_defs
                && List.for_all
                     (fun f ->
                       List.for_all (dominates_site b idx)
                         (defs flag_uses f))
                     du.X3k_flow.flag_defs
              in
              if ok then cands := (b, idx) :: !cands)
            t.IR.blocks.(b).IR.body)
        l.Cfg.nodes;
      List.rev !cands
    end
  | _ -> []

let licm t =
  let changed = ref false in
  let continue_ = ref true in
  let guard = ref 0 in
  while !continue_ && !guard < 64 do
    incr guard;
    continue_ := false;
    let g = IR.cfg t in
    let loops = Cfg.loops g in
    (try
       Array.iter
         (fun l ->
           match licm_candidates t g l with
           | [] -> ()
           | cands ->
             let header = l.Cfg.header in
             let hoisted =
               List.map
                 (fun (b, idx) -> List.nth t.IR.blocks.(b).IR.body idx)
                 cands
             in
             (* remove (descending index order per block) *)
             List.iter
               (fun (b, idx) ->
                 t.IR.blocks.(b).IR.body <-
                   List.filteri (fun k _ -> k <> idx) t.IR.blocks.(b).IR.body)
               (List.sort (fun (b1, i1) (b2, i2) ->
                    compare (b2, i2) (b1, i1))
                  cands);
             let pre = { IR.body = hoisted; IR.term = IR.Fall } in
             insert_block t header pre;
             (* entry edges: explicit targets from outside the loop
                that now point at the shifted header come back to the
                preheader (back edges keep targeting the header) *)
             Array.iteri
               (fun q blk ->
                 if q <> header then begin
                   let old = if q < header then q else q - 1 in
                   let in_loop =
                     old >= 0
                     && old < Array.length l.Cfg.body
                     && l.Cfg.body.(old)
                   in
                   if not in_loop then
                     match blk.IR.term with
                     | IR.Goto tg when tg = header + 1 ->
                       blk.IR.term <- IR.Goto header
                     | IR.Cond c when c.target = header + 1 ->
                       blk.IR.term <- IR.Cond { c with target = header }
                     | _ -> ()
                 end)
               t.IR.blocks;
             changed := true;
             continue_ := true;
             raise Exit)
         loops
     with Exit -> ())
  done;
  !changed

(* ---- pass: full unrolling of constant-trip innermost loops ---- *)

type uop = K of int | Iv

let unroll_caps_copies = 256
let unroll_caps_loop_instrs = 2048
let unroll_caps_prog_instrs = 4096

let try_unroll t g out_env (l : Cfg.loop) =
  let nodes = l.Cfg.nodes in
  let lo = List.fold_left min max_int nodes in
  let hi = List.fold_left max (-1) nodes in
  let len = hi - lo + 1 in
  let in_loop b = b >= 0 && b < Array.length l.Cfg.body && l.Cfg.body.(b) in
  if List.length nodes <> len || l.Cfg.header <> lo then false
  else
    match l.Cfg.back_srcs with
    | [ latch ] when latch = hi -> (
      let shape =
        match (t.IR.blocks.(lo).IR.term, t.IR.blocks.(hi).IR.term) with
        | _, IR.Cond { br; target } when target = lo ->
          if List.for_all (fun (e, o) -> e = hi && o = hi + 1) l.Cfg.exits
             && l.Cfg.exits <> []
          then Some (`Bottom br)
          else None
        | IR.Cond { br; target = out }, IR.Goto back
          when back = lo && not (in_loop out) ->
          if List.for_all (fun (e, o) -> e = lo && o = out) l.Cfg.exits
             && l.Cfg.exits <> []
          then Some (`Top (br, out))
          else None
        | _ -> None
      in
      match shape with
      | None -> false
      | Some shape -> (
        let br = match shape with `Bottom br | `Top (br, _) -> br in
        match br.srcs with
        | [ Flag bf; Imm _ ] -> (
          (* collect per-reg/flag def sites across the loop *)
          let reg_defs = Hashtbl.create 16 and flag_defs = Hashtbl.create 16 in
          let note tbl k v =
            Hashtbl.replace tbl k (v :: (try Hashtbl.find tbl k with Not_found -> []))
          in
          List.iter
            (fun b ->
              List.iteri
                (fun idx i ->
                  let du = X3k_flow.def_use i in
                  List.iter (fun r -> note reg_defs r (b, idx, i)) du.X3k_flow.reg_defs;
                  List.iter (fun f -> note flag_defs f (b, idx, i)) du.X3k_flow.flag_defs)
                t.IR.blocks.(b).IR.body)
            nodes;
          let defs tbl k = try Hashtbl.find tbl k with Not_found -> [] in
          match defs flag_defs bf with
          | [ (cb, ci, cmp) ] -> (
            let entry_env =
              match
                List.filter (fun p -> not (in_loop p)) g.Cfg.pred.(lo)
              with
              | [] -> IMap.empty
              | p :: rest ->
                List.fold_left
                  (fun acc q -> meet_env acc out_env.(q))
                  out_env.(p) rest
            in
            let cmp_ok =
              (match cmp.op with Cmp _ -> true | _ -> false)
              && cmp.pred = None && cmp.width = 1
              && (match shape with `Top _ -> cb = lo | `Bottom _ -> true)
              && Cfg.dominates g cb latch
            in
            if not cmp_ok then false
            else
              let cond = match cmp.op with Cmp c -> c | _ -> assert false in
              (* classify cmp operands; find the unique IV *)
              let iv = ref None in
              let classify o =
                match o with
                | Imm v -> Some (K (imm_value v))
                | Reg r -> (
                  match defs reg_defs r with
                  | [] -> (
                    match IMap.find_opt r entry_env with
                    | Some (Const (w, v)) when w >= 1 -> Some (K v)
                    | _ -> None)
                  | [ (ab, ai, add) ] -> (
                    let step =
                      if add.op = Add && add.pred = None && add.dtype = DW
                         && add.dst = Some (Reg r)
                      then
                        match add.srcs with
                        | [ Reg r'; Imm s ] when r' = r -> Some (imm_value s)
                        | [ Imm s; Reg r' ] when r' = r -> Some (imm_value s)
                        | _ -> None
                      else None
                    in
                    match step with
                    | Some s when !iv = None && Cfg.dominates g ab latch -> (
                      match IMap.find_opt r entry_env with
                      | Some (Const (w, v0)) when w >= 1 ->
                        iv := Some (ab, ai, s, v0);
                        Some Iv
                      | _ -> None)
                    | _ -> None)
                  | _ -> None)
                | _ -> None
              in
              match cmp.srcs with
              | [ x; y ] -> (
                match (classify x, classify y) with
                | Some cx, Some cy -> (
                  match !iv with
                  | Some (ab, ai, step, v0)
                    when cx = Iv || cy = Iv -> (
                    (* does the add execute before the cmp within one
                       iteration? *)
                    let off =
                      if ab = cb then if ai < ci then Some 1 else Some 0
                      else if Cfg.dominates g ab cb then Some 1
                      else if Cfg.dominates g cb ab then Some 0
                      else None
                    in
                    match off with
                    | None -> false
                    | Some off -> (
                      let ivv = ref v0 and adds = ref 0 in
                      let value_after k =
                        while !adds < k do
                          ivv := Lane.add DW !ivv step;
                          incr adds
                        done;
                        !ivv
                      in
                      let taken_at e =
                        let v = value_after (e - 1 + off) in
                        let ev c = match c with K w -> w | Iv -> v in
                        let r = Lane.compare_lanes cmp.dtype cond (ev cx) (ev cy) in
                        let full = (1 lsl br.width) - 1 in
                        let m = (if r then 1 else 0) land full in
                        match br.op with
                        | Br Any -> m <> 0
                        | Br All -> m = full
                        | Br None_set -> m = 0
                        | _ -> assert false
                      in
                      let copies =
                        match shape with
                        | `Bottom _ ->
                          let rec go e =
                            if e > 4096 then None
                            else if taken_at e then go (e + 1)
                            else Some e
                          in
                          go 1
                        | `Top _ ->
                          let rec go e =
                            if e > 4096 then None
                            else if taken_at e then Some (e - 1)
                            else go (e + 1)
                          in
                          go 1
                      in
                      match copies with
                      | None -> false
                      | Some copies -> (
                        let loop_instrs =
                          List.fold_left
                            (fun acc b ->
                              acc + List.length t.IR.blocks.(b).IR.body + 1)
                            0 nodes
                        in
                        let partial_instrs =
                          match shape with
                          | `Top _ ->
                            List.length t.IR.blocks.(lo).IR.body + 1
                          | `Bottom _ -> 0
                        in
                        let new_total =
                          IR.num_instrs t - loop_instrs
                          + (copies * loop_instrs)
                          + partial_instrs
                        in
                        if copies > unroll_caps_copies
                           || copies * loop_instrs > unroll_caps_loop_instrs
                           || new_total > unroll_caps_prog_instrs
                        then false
                        else begin
                          (* ---- rebuild the block array ---- *)
                          let nb = IR.num_blocks t in
                          let mid_len =
                            (copies * len)
                            + match shape with `Top _ -> 1 | `Bottom _ -> 0
                          in
                          let delta = mid_len - len in
                          let out_map tg =
                            if tg < lo then tg
                            else if tg > hi then tg + delta
                            else lo (* external edges only reach the header *)
                          in
                          let clone_copy c j =
                            let src = t.IR.blocks.(lo + j) in
                            let local tg = lo + (c * len) + (tg - lo) in
                            let term =
                              match src.IR.term with
                              | IR.Cond { target; _ }
                                when (match shape with
                                     | `Bottom _ -> j = len - 1
                                     | `Top _ -> j = 0) ->
                                ignore target;
                                (* resolved test: falls into the next
                                   copy (or the exit block) *)
                                IR.Fall
                              | IR.Goto tg
                                when (match shape with
                                     | `Top _ -> j = len - 1 && tg = lo
                                     | `Bottom _ -> false) ->
                                IR.Fall
                              | IR.Goto tg when in_loop tg -> IR.Goto (local tg)
                              | IR.Cond c2 when in_loop c2.target ->
                                IR.Cond { c2 with target = local c2.target }
                              | IR.Fall -> IR.Fall
                              | other -> other
                            in
                            { IR.body = src.IR.body; IR.term = term }
                          in
                          let middle =
                            Array.init mid_len (fun k ->
                                if k < copies * len then
                                  clone_copy (k / len) (k mod len)
                                else
                                  (* Top shape: trailing partial
                                     iteration = header body + exit *)
                                  match shape with
                                  | `Top (_, out) ->
                                    {
                                      IR.body = t.IR.blocks.(lo).IR.body;
                                      IR.term = IR.Goto (out_map out);
                                    }
                                  | `Bottom _ -> assert false)
                          in
                          let remap_outside blk =
                            match blk.IR.term with
                            | IR.Goto tg -> blk.IR.term <- IR.Goto (out_map tg)
                            | IR.Cond c2 ->
                              blk.IR.term <-
                                IR.Cond { c2 with target = out_map c2.target }
                            | IR.Fall | IR.Stop _ -> ()
                          in
                          let prefix = Array.sub t.IR.blocks 0 lo in
                          let suffix =
                            Array.sub t.IR.blocks (hi + 1) (nb - hi - 1)
                          in
                          Array.iter remap_outside prefix;
                          Array.iter remap_outside suffix;
                          t.IR.blocks <- Array.concat [ prefix; middle; suffix ];
                          true
                        end)))
                  | _ -> false)
                | _ -> false)
              | _ -> false)
          | _ -> false)
        | _ -> false)
      | exception Not_found -> false)
    | _ -> false

let unroll_one t =
  let g, out_env, _ = const_envs t in
  let loops = Cfg.loops g in
  let nl = Array.length loops in
  let has_child = Array.make nl false in
  Array.iter
    (fun l ->
      match l.Cfg.parent with
      | Some p -> has_child.(p) <- true
      | None -> ())
    loops;
  let result = ref false in
  (try
     for li = 0 to nl - 1 do
       if (not has_child.(li)) && try_unroll t g out_env loops.(li) then begin
         result := true;
         raise Exit
       end
     done
   with Exit -> ());
  !result

(* ---- pass: list scheduling within basic blocks ---- *)

let sched_mem_op = function
  | Ld | St | Gather | Scatter | Sample | Fence | Fdiv | Fsqrt | Dpadd -> true
  | _ -> false

let sched_block b =
  let arr = Array.of_list b.IR.body in
  let n = Array.length arr in
  if n > 1 then begin
    let du = Array.map X3k_flow.def_use arr in
    let preds = Array.make n [] and succs = Array.make n [] in
    let add_edge i j w =
      if i >= 0 && i <> j then begin
        preds.(j) <- (i, w) :: preds.(j);
        succs.(i) <- (j, w) :: succs.(i)
      end
    in
    let last_def_reg = Hashtbl.create 32
    and uses_reg = Hashtbl.create 32
    and last_def_flag = Hashtbl.create 8
    and uses_flag = Hashtbl.create 8
    and last_mem = ref (-1) in
    let find tbl k d = try Hashtbl.find tbl k with Not_found -> d in
    for j = 0 to n - 1 do
      let u = du.(j) in
      let raw tbl_def tbl_uses k =
        let ld = find tbl_def k (-1) in
        if ld >= 0 then
          add_edge ld j (X3k_cost.result_latency_cycles arr.(ld));
        Hashtbl.replace tbl_uses k (j :: find tbl_uses k [])
      in
      List.iter (fun r -> raw last_def_reg uses_reg r) u.X3k_flow.reg_uses;
      List.iter (fun f -> raw last_def_flag uses_flag f) u.X3k_flow.flag_uses;
      let def tbl_def tbl_uses k =
        let ld = find tbl_def k (-1) in
        add_edge ld j 0;
        List.iter (fun i -> add_edge i j 0) (find tbl_uses k []);
        Hashtbl.replace tbl_def k j;
        Hashtbl.replace tbl_uses k []
      in
      List.iter (fun r -> def last_def_reg uses_reg r) u.X3k_flow.reg_defs;
      List.iter (fun f -> def last_def_flag uses_flag f) u.X3k_flow.flag_defs;
      if sched_mem_op arr.(j).op then begin
        add_edge !last_mem j 0;
        last_mem := j
      end
    done;
    (* critical-path heights (edges only point forward) *)
    let height = Array.make n 0 in
    for j = n - 1 downto 0 do
      let h =
        List.fold_left (fun acc (s, w) -> max acc (w + height.(s))) 0 succs.(j)
      in
      height.(j) <- h + X3k_cost.issue_cycles arr.(j)
    done;
    let indeg = Array.make n 0 in
    Array.iteri (fun j ps -> indeg.(j) <- List.length ps) preds;
    let start = Array.make n 0 in
    let scheduled = Array.make n false in
    let order = ref [] in
    let now = ref 0 in
    for _ = 1 to n do
      (* among dependency-ready instrs pick min stall, then max height,
         then lowest original index — fully deterministic *)
      let best = ref (-1) and best_key = ref (max_int, max_int, max_int) in
      for j = 0 to n - 1 do
        if (not scheduled.(j)) && indeg.(j) = 0 then begin
          let avail =
            List.fold_left
              (fun acc (i, w) -> max acc (start.(i) + w))
              0 preds.(j)
          in
          let stall = max 0 (avail - !now) in
          let key = (stall, -height.(j), j) in
          if key < !best_key then begin
            best := j;
            best_key := key
          end
        end
      done;
      let j = !best in
      assert (j >= 0);
      let avail =
        List.fold_left (fun acc (i, w) -> max acc (start.(i) + w)) 0 preds.(j)
      in
      start.(j) <- max !now avail;
      now := start.(j) + X3k_cost.issue_cycles arr.(j);
      scheduled.(j) <- true;
      List.iter (fun (s, _) -> indeg.(s) <- indeg.(s) - 1) succs.(j);
      order := j :: !order
    done;
    b.IR.body <- List.rev_map (fun j -> arr.(j)) !order
  end

let sched t = Array.iter sched_block t.IR.blocks

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let o1_round t =
  let c = ref false in
  if IR.drop_unreachable t then c := true;
  if fold_prop t then c := true;
  if strength t then c := true;
  if cse t then c := true;
  if dce t then c := true;
  !c

let run_o1 t =
  let rounds = ref 0 in
  while o1_round t && !rounds < 8 do
    incr rounds
  done

let run_o2 t =
  run_o1 t;
  ignore (licm t);
  let rounds = ref 0 in
  while unroll_one t && !rounds < 24 do
    incr rounds;
    run_o1 t;
    ignore (licm t)
  done;
  run_o1 t;
  sched t

let optimize level p =
  match level with
  | O0 -> p
  | O1 | O2 -> (
    try
      let t = IR.build p in
      (match level with
      | O1 -> run_o1 t
      | O2 -> run_o2 t
      | O0 -> assert false);
      let q = IR.linearize t in
      (* the optimizer must never emit a structurally invalid program;
         if it somehow would, ship the original *)
      match X3k_check.check q with Ok q -> q | Error _ -> p
    with IR.Unsupported _ -> p)

type pass = Constprop | Strength | Cse | Dce | Licm | Unroll | Sched

let pass_name = function
  | Constprop -> "constprop"
  | Strength -> "strength"
  | Cse -> "cse"
  | Dce -> "dce"
  | Licm -> "licm"
  | Unroll -> "unroll"
  | Sched -> "sched"

let run_pass pass p =
  try
    let t = IR.build p in
    (match pass with
    | Constprop -> ignore (fold_prop t)
    | Strength -> ignore (strength t)
    | Cse -> ignore (cse t)
    | Dce -> ignore (dce t)
    | Licm -> ignore (licm t)
    | Unroll -> ignore (unroll_one t)
    | Sched -> sched t);
    let q = IR.linearize t in
    match X3k_check.check q with Ok q -> q | Error _ -> p
  with IR.Unsupported _ -> p

(* ------------------------------------------------------------------ *)
(* Inspection: block costs and side-by-side diff reports               *)
(* ------------------------------------------------------------------ *)

(* Tolerant block split (never bails): leaders at entry, branch
   targets and post-terminator positions. *)
let block_costs (p : program) =
  let n = Array.length p.instrs in
  if n = 0 then []
  else begin
    let leader = Array.make n false in
    leader.(0) <- true;
    Array.iteri
      (fun i ins ->
        (match X3k_flow.branch_target ins with
        | Some tg when tg >= 0 && tg < n -> leader.(tg) <- true
        | _ -> ());
        match ins.op with
        | Jmp | Br _ | End | Spawn ->
          if i + 1 < n then leader.(i + 1) <- true
        | _ -> ())
      p.instrs;
    let blocks = ref [] in
    let start = ref 0 in
    for i = 1 to n do
      if i = n || leader.(i) then begin
        let len = i - !start in
        let cost = ref 0 in
        for k = !start to i - 1 do
          cost := !cost + X3k_cost.worst_retire_cycles p.instrs.(k)
        done;
        blocks := (!start, len, !cost) :: !blocks;
        start := i
      end
    done;
    List.rev !blocks
  end

let total_worst_retire p =
  Array.fold_left (fun acc i -> acc + X3k_cost.worst_retire_cycles i) 0 p.instrs

let render_blocks p =
  List.concat_map
    (fun (start, len, cost) ->
      Printf.sprintf "@%03d  (%d instrs, %d worst-retire cycles)" start len
        cost
      :: List.init len (fun k ->
             Format.asprintf "  %03d %a" (start + k)
               (pp_instr ~surfaces:p.surfaces)
               p.instrs.(start + k)))
    (block_costs p)

let diff_report ~original ~optimized =
  let w = 46 in
  let pad s =
    let s = if String.length s > w then String.sub s 0 w else s in
    s ^ String.make (w - String.length s) ' '
  in
  let l = render_blocks original and r = render_blocks optimized in
  let rec zip acc l r =
    match (l, r) with
    | [], [] -> List.rev acc
    | x :: l, [] -> zip ((pad x ^ " |") :: acc) l []
    | [], y :: r -> zip ((pad "" ^ " | " ^ y) :: acc) [] r
    | x :: l, y :: r -> zip ((pad x ^ " | " ^ y) :: acc) l r
  in
  let co = total_worst_retire original and cq = total_worst_retire optimized in
  let header =
    [
      Printf.sprintf "%s: %d -> %d instrs, %d -> %d static worst-retire cycles"
        original.name
        (Array.length original.instrs)
        (Array.length optimized.instrs)
        co cq;
      Printf.sprintf "%s | %s" (pad "-- original --") "-- optimized --";
    ]
  in
  String.concat "\n" (header @ zip [] l r) ^ "\n"

(* source lines still present in a program (for lint's fixed-by-opt
   annotation: a dead store whose line vanished at -O1 was eliminated) *)
let surviving_lines p =
  Array.fold_left (fun s i -> ISet.add i.line s) ISet.empty p.instrs

let line_survives p line = ISet.mem line (surviving_lines p)
