(** Exo-opt: cost-model-driven X3K optimizing backend.

    An SSA-free, CFG-level pass pipeline over assembled
    {!Exochi_isa.X3k_ast.program}s: constant folding + copy
    propagation, strength reduction, CSE over extended basic blocks,
    dead-code elimination, loop-invariant code motion into synthesized
    preheaders, full unrolling of constant-trip loops, and a list
    scheduler driven by {!Exochi_isa.X3k_cost} latencies.

    Every transformation preserves observable behaviour bit-for-bit
    (outputs, faulting ops, memory access order) and never increases
    the retired-work cost model [gpu_busy_ps]. Programs using
    [spawn]/[sendreg]/semaphores/remote operands are returned
    unchanged. *)

type level = O0 | O1 | O2

val level_to_int : level -> int
val level_of_int : int -> level option

(** Accepts ["0"], ["O0"], ["-O0"] (and the 1/2 forms). *)
val level_of_string : string -> level option

val level_name : level -> string

(** [optimize level p] returns an optimized program with identical
    observable behaviour, or [p] itself at [O0] / when the program is
    unsupported. The result always passes {!Exochi_isa.X3k_check}. *)
val optimize : level -> Exochi_isa.X3k_ast.program -> Exochi_isa.X3k_ast.program

(** Individual passes, exposed for unit testing. *)
type pass = Constprop | Strength | Cse | Dce | Licm | Unroll | Sched

val pass_name : pass -> string
val run_pass : pass -> Exochi_isa.X3k_ast.program -> Exochi_isa.X3k_ast.program

(** [(start_index, length, worst_retire_cycles)] per basic block, in
    program order. Tolerant of any checked program (never raises). *)
val block_costs : Exochi_isa.X3k_ast.program -> (int * int * int) list

(** Static sum of per-instruction worst-case retire cycles. *)
val total_worst_retire : Exochi_isa.X3k_ast.program -> int

(** Side-by-side disassembly of original vs optimized with per-block
    cycle costs, for [exochi_cc --emit-asm] and [exochi_dbg opt-diff]. *)
val diff_report :
  original:Exochi_isa.X3k_ast.program ->
  optimized:Exochi_isa.X3k_ast.program ->
  string

(** [line_survives p line]: does any instruction of [p] still carry
    this source line? Used by lint's [fixed-by-opt] annotation. *)
val line_survives : Exochi_isa.X3k_ast.program -> int -> bool
