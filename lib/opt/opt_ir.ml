open Exochi_isa
open X3k_ast

(* Basic-block IR over an assembled X3K program. Branch targets in the
   AST are absolute instruction indices; every pass that moves, clones
   or deletes code would have to patch them, so the IR lifts targets to
   block identities once and [linearize] re-materialises absolute
   indices (and fresh labels) at the end.

   Invariants the passes rely on:
   - a [Fall] or [Cond] fall-through edge always goes to the next block
     in layout order (block ids are layout positions);
   - terminator instructions never appear inside [body];
   - the program was accepted by [X3k_check] before [build], so the
     last block never ends in a bare fall-through. *)

type term =
  | Fall (* fall through to the next block in layout *)
  | Goto of int (* unconditional jmp to a block id *)
  | Cond of { br : instr; target : int }
    (* conditional br to [target]; falls through when not taken. [br]
       keeps its flag operand; the Imm target is patched on emit *)
  | Stop of instr (* end *)

type block = { mutable body : instr list; mutable term : term }

type t = {
  name : string;
  surfaces : string array;
  source : string;
  mutable blocks : block array;
}

exception Unsupported of string

let unsupported fmt = Format.kasprintf (fun m -> raise (Unsupported m)) fmt

(* Ops the optimizer refuses to reason about: [spawn] makes the program
   multi-entry (the natural-loop and liveness machinery would need the
   spawned shred's view), and the inter-shred communication ops give
   register traffic an external observer. *)
let op_bails = function
  | Spawn | Sendreg | Semacq | Semrel -> true
  | _ -> false

let operand_bails = function Remote _ -> true | _ -> false

let check_supported (p : program) =
  Array.iter
    (fun i ->
      if op_bails i.op then unsupported "%s" (opcode_name i.op);
      if List.exists operand_bails i.srcs then unsupported "remote operand";
      (match i.dst with
      | Some o when operand_bails o -> unsupported "remote destination"
      | _ -> ());
      match i.op with
      | Jmp | Br _ | End ->
        if i.pred <> None then unsupported "predicated control flow"
      | _ -> ())
    p.instrs

let build (p : program) : t =
  let n = Array.length p.instrs in
  if n = 0 then unsupported "empty program";
  check_supported p;
  let target_of i =
    match X3k_flow.branch_target p.instrs.(i) with
    | Some t when t >= 0 && t < n -> t
    | Some t -> unsupported "branch target %d out of range" t
    | None -> unsupported "non-immediate branch target"
  in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun i ins ->
      match ins.op with
      | Jmp | Br _ ->
        leader.(target_of i) <- true;
        if i + 1 < n then leader.(i + 1) <- true
      | End -> if i + 1 < n then leader.(i + 1) <- true
      | _ -> ())
    p.instrs;
  (* instruction index -> id of the block that starts there *)
  let block_of = Array.make n (-1) in
  let nblocks = ref 0 in
  for i = 0 to n - 1 do
    if leader.(i) then begin
      block_of.(i) <- !nblocks;
      incr nblocks
    end
  done;
  let blocks =
    Array.init !nblocks (fun _ -> { body = []; term = Fall })
  in
  let cur = ref [] and cur_id = ref 0 in
  let open_block = ref false in
  let flush term =
    blocks.(!cur_id).body <- List.rev !cur;
    blocks.(!cur_id).term <- term;
    cur := [];
    open_block := false
  in
  for i = 0 to n - 1 do
    if leader.(i) then begin
      (* previous segment ended without a terminator: fall-through *)
      if !open_block then flush Fall;
      cur_id := block_of.(i);
      open_block := true
    end;
    let ins = p.instrs.(i) in
    match ins.op with
    | Jmp -> flush (Goto block_of.(target_of i))
    | Br _ ->
      if i + 1 >= n then unsupported "br as final instruction";
      flush (Cond { br = ins; target = block_of.(target_of i) })
    | End -> flush (Stop ins)
    | _ -> cur := ins :: !cur
  done;
  if !open_block then unsupported "program falls off the end";
  { name = p.name; surfaces = p.surfaces; source = p.source; blocks }

let num_blocks t = Array.length t.blocks

let succs t id =
  let last = num_blocks t - 1 in
  match t.blocks.(id).term with
  | Fall -> if id < last then [ id + 1 ] else []
  | Goto g -> [ g ]
  | Cond { target; _ } ->
    if id < last then List.sort_uniq compare [ target; id + 1 ]
    else [ target ]
  | Stop _ -> []

let cfg t = Cfg.build ~n:(num_blocks t) ~entries:[ 0 ] ~succs:(succs t)

(* Registers/flags a terminator reads (a [Cond]'s flag and, through
   [def_use], anything odd an exotic br form might carry). *)
let term_uses t id =
  match t.blocks.(id).term with
  | Cond { br; _ } ->
    let du = X3k_flow.def_use br in
    (du.X3k_flow.reg_uses, du.X3k_flow.flag_uses)
  | Fall | Goto _ | Stop _ -> ([], [])

let iter_instrs t f =
  Array.iter
    (fun b ->
      List.iter f b.body;
      match b.term with Cond { br; _ } -> f br | Stop i -> f i | _ -> ())
    t.blocks

let num_instrs t =
  let c = ref 0 in
  iter_instrs t (fun _ -> incr c);
  !c

(* Remap every explicit branch target through [f] (layout surgery). *)
let retarget t f =
  Array.iter
    (fun b ->
      match b.term with
      | Goto g -> b.term <- Goto (f g)
      | Cond c -> b.term <- Cond { c with target = f c.target }
      | Fall | Stop _ -> ())
    t.blocks

(* Drop blocks unreachable from the entry. Removed blocks have no
   predecessors (not even fall-through ones), so renumbering the rest
   preserves every edge. *)
let drop_unreachable t =
  let g = cfg t in
  let keep = g.Cfg.reach in
  if Array.for_all (fun k -> k) keep then false
  else begin
    let new_id = Array.make (num_blocks t) (-1) in
    let next = ref 0 in
    Array.iteri
      (fun i k ->
        if k then begin
          new_id.(i) <- !next;
          incr next
        end)
      keep;
    let kept = ref [] in
    Array.iteri
      (fun i b -> if keep.(i) then kept := b :: !kept)
      t.blocks;
    t.blocks <- Array.of_list (List.rev !kept);
    retarget t (fun g -> new_id.(g));
    true
  end

(* A [Goto g] can be elided when every block strictly between emits
   nothing and falls through — the jump lands exactly where execution
   would fall anyway. *)
let elidable t i g =
  g > i
  &&
  let rec clear j =
    j >= g
    || (t.blocks.(j).body = [] && t.blocks.(j).term = Fall && clear (j + 1))
  in
  clear (i + 1)

let linearize t : program =
  let nb = num_blocks t in
  let size i =
    let b = t.blocks.(i) in
    List.length b.body
    +
    match b.term with
    | Fall -> 0
    | Goto g -> if elidable t i g then 0 else 1
    | Cond _ | Stop _ -> 1
  in
  let start = Array.make (nb + 1) 0 in
  for i = 0 to nb - 1 do
    start.(i + 1) <- start.(i) + size i
  done;
  let out = ref [] in
  let labels = ref [] in
  let need_label = Array.make nb false in
  Array.iteri
    (fun i b ->
      match b.term with
      | Goto g -> if not (elidable t i g) then need_label.(g) <- true
      | Cond { target; _ } -> need_label.(target) <- true
      | Fall | Stop _ -> ())
    t.blocks;
  Array.iteri
    (fun i b ->
      if need_label.(i) then
        labels := (Printf.sprintf "L%d" start.(i), start.(i)) :: !labels;
      List.iter (fun ins -> out := ins :: !out) b.body;
      let jmp_to g =
        {
          pred = None;
          op = Jmp;
          width = 1;
          dtype = DW;
          dst = None;
          srcs = [ Imm (Int32.of_int start.(g)) ];
          line = 0;
        }
      in
      match b.term with
      | Fall -> ()
      | Goto g -> if not (elidable t i g) then out := jmp_to g :: !out
      | Cond { br; target } ->
        let srcs =
          match br.srcs with
          | [ flag; Imm _ ] -> [ flag; Imm (Int32.of_int start.(target)) ]
          | _ -> unsupported "malformed br operands"
        in
        out := { br with srcs } :: !out
      | Stop e -> out := e :: !out)
    t.blocks;
  {
    name = t.name;
    instrs = Array.of_list (List.rev !out);
    surfaces = t.surfaces;
    labels = List.rev !labels;
    source = t.source;
  }
