(** Basic-block IR over assembled X3K programs.

    AST branch targets are absolute instruction indices; the IR lifts
    them to block identities so passes can move, clone and delete code
    freely, and {!linearize} re-materialises absolute indices (plus
    fresh labels) afterwards. Block ids double as layout positions:
    fall-through always reaches block [id + 1]. *)

type term =
  | Fall  (** fall through to the next block in layout *)
  | Goto of int  (** unconditional jmp to a block id *)
  | Cond of { br : Exochi_isa.X3k_ast.instr; target : int }
      (** conditional br to [target], falling through when not taken;
          the [br] instr's Imm target operand is patched on emit *)
  | Stop of Exochi_isa.X3k_ast.instr  (** end *)

type block = { mutable body : Exochi_isa.X3k_ast.instr list; mutable term : term }

type t = {
  name : string;
  surfaces : string array;
  source : string;
  mutable blocks : block array;
}

(** Raised by {!build} on programs the optimizer refuses to touch:
    [spawn]/[sendreg]/[sem.*], remote operands, predicated control
    flow, or malformed branch targets. Callers treat it as "return the
    program unchanged". *)
exception Unsupported of string

val unsupported : ('a, Format.formatter, unit, 'b) format4 -> 'a
val build : Exochi_isa.X3k_ast.program -> t
val linearize : t -> Exochi_isa.X3k_ast.program
val num_blocks : t -> int
val num_instrs : t -> int
val succs : t -> int -> int list

(** Block-level CFG (single entry: block 0). *)
val cfg : t -> Exochi_isa.Cfg.t

(** Registers and flags the block's terminator reads. *)
val term_uses : t -> int -> int list * int list

val iter_instrs : t -> (Exochi_isa.X3k_ast.instr -> unit) -> unit

(** Remap every explicit branch target through the function. *)
val retarget : t -> (int -> int) -> unit

(** Remove blocks unreachable from entry (they have no predecessors,
    so edges are preserved); returns whether anything changed. *)
val drop_unreachable : t -> bool
