type config = { max_jobs : int; max_shreds : int }

let default = { max_jobs = 32; max_shreds = 256 }

type batch = { kernel : string; jobs : Job.t list; shreds : int }

(* Tenants ordered by (virtual time, id) — the WFQ service order. *)
let by_vtime tenants =
  let ts = Array.to_list tenants in
  List.sort
    (fun a b ->
      let c = Float.compare (Tenant.vtime a) (Tenant.vtime b) in
      if c <> 0 then c else compare (Tenant.id a) (Tenant.id b))
    ts

let select cfg tenants ~now_ps =
  if cfg.max_jobs <= 0 || cfg.max_shreds <= 0 then
    invalid_arg "Batcher.select: config";
  let expired =
    Array.to_list tenants
    |> List.concat_map (fun t -> Tenant.drop_expired t ~now_ps)
  in
  (* lead: best (class, vtime, id) over the per-tenant heads *)
  let lead =
    List.fold_left
      (fun best t ->
        match Tenant.head t with
        | None -> best
        | Some j -> (
          let key =
            (Job.priority_rank j.Job.priority, Tenant.vtime t, Tenant.id t)
          in
          match best with
          | Some (bk, _, _) when bk <= key -> best
          | _ -> Some (key, t, j)))
      None
      (Array.to_list tenants)
  in
  match lead with
  | None -> (expired, None)
  | Some (_, lead_tenant, lead_job) ->
    let kernel = lead_job.Job.kernel in
    (* the lead joins unconditionally (take with an unbounded budget) *)
    let first =
      match Tenant.take lead_tenant ~kernel ~max_shreds:max_int with
      | Some j -> j
      | None -> assert false
    in
    Tenant.charge lead_tenant ~shreds:first.Job.shreds;
    let jobs = ref [ first ] in
    let njobs = ref 1 in
    let shreds = ref first.Job.shreds in
    let continue_ = ref true in
    while !continue_ && !njobs < cfg.max_jobs && !shreds < cfg.max_shreds do
      (* pull from the lowest-vtime tenant that has a compatible job *)
      let budget = cfg.max_shreds - !shreds in
      let rec try_tenants = function
        | [] -> None
        | t :: rest -> (
          match Tenant.take t ~kernel ~max_shreds:budget with
          | Some j -> Some (t, j)
          | None -> try_tenants rest)
      in
      match try_tenants (by_vtime tenants) with
      | None -> continue_ := false
      | Some (t, j) ->
        Tenant.charge t ~shreds:j.Job.shreds;
        jobs := j :: !jobs;
        incr njobs;
        shreds := !shreds + j.Job.shreds
    done;
    (expired, Some { kernel; jobs = List.rev !jobs; shreds = !shreds })
