(** Batch formation: coalesce compatible queued jobs into one CHI
    [parallel] team per dispatch cycle.

    The rule: pick the {e lead} job — highest priority class first, then
    smallest tenant virtual time ({!Tenant.vtime}), then tenant id — and
    let it fix the batch's kernel. Then keep pulling the matching job
    (same kernel, class-major EDF within each tenant) from whichever
    tenant currently has the smallest virtual time, charging each
    tenant's fair-share account as its jobs join, until [max_jobs] or
    [max_shreds] is reached or no compatible job remains. One team per
    batch keeps all EU hardware threads occupied and amortises the
    per-team doorbell/prewalk/barrier cost across jobs. *)

type config = {
  max_jobs : int;  (** jobs coalesced per team (1 = no batching) *)
  max_shreds : int;  (** team-size bound — the in-flight shred budget *)
}

val default : config
(** 32 jobs / 256 shreds. *)

type batch = {
  kernel : string;
  jobs : Job.t list;  (** dispatch order; shred segments are assigned
                          in this order *)
  shreds : int;  (** total team size *)
}

(** [select cfg tenants ~now_ps] first removes every queued job whose
    deadline has already passed (returned first, to be shed), then forms
    a batch from the survivors. [None] when every queue is empty. The
    lead job always joins even if it alone exceeds [max_shreds], so an
    oversized job cannot starve. *)
val select :
  config -> Tenant.t array -> now_ps:int -> Job.t list * batch option
