type priority = High | Normal | Low

let priority_rank = function High -> 0 | Normal -> 1 | Low -> 2
let priority_name = function High -> "high" | Normal -> "normal" | Low -> "low"

let priority_of_string s =
  match String.lowercase_ascii s with
  | "high" -> Some High
  | "normal" -> Some Normal
  | "low" -> Some Low
  | _ -> None

type t = {
  id : int;
  tenant : int;
  kernel : string;
  shreds : int;
  priority : priority;
  submit_ps : int;
  deadline_ps : int option;
}

type shed_reason =
  | Unknown_kernel of string
  | Queue_full of { tenant : int; depth : int; cap : int }
  | Inflight_exceeded of { backlog : int; cap : int }
  | Deadline_expired of { late_ps : int }
  | Infeasible_deadline of { needed_ps : int; slack_ps : int }
  | Fatal_fault of { attempts : int }

let reason_label = function
  | Unknown_kernel _ -> "unknown-kernel"
  | Queue_full _ -> "queue-full"
  | Inflight_exceeded _ -> "inflight"
  | Deadline_expired _ -> "deadline"
  | Infeasible_deadline _ -> "infeasible-deadline"
  | Fatal_fault _ -> "fatal-fault"

let reason_to_string = function
  | Unknown_kernel k -> Printf.sprintf "unknown kernel %S" k
  | Queue_full { tenant; depth; cap } ->
    Printf.sprintf "tenant %d queue full (%d >= cap %d)" tenant depth cap
  | Inflight_exceeded { backlog; cap } ->
    Printf.sprintf "in-flight budget exceeded (%d >= cap %d)" backlog cap
  | Deadline_expired { late_ps } ->
    Printf.sprintf "deadline expired %d ps ago" late_ps
  | Infeasible_deadline { needed_ps; slack_ps } ->
    Printf.sprintf
      "deadline infeasible: static bound needs %d ps, only %d ps remain"
      needed_ps slack_ps
  | Fatal_fault { attempts } ->
    Printf.sprintf "dispatch failed after %d attempt(s)" attempts

let expired t ~now_ps =
  match t.deadline_ps with None -> false | Some d -> d < now_ps

let compare_edf a b =
  let dl = function None -> max_int | Some d -> d in
  let c = compare (dl a.deadline_ps) (dl b.deadline_ps) in
  if c <> 0 then c
  else
    let c = compare a.submit_ps b.submit_ps in
    if c <> 0 then c else compare a.id b.id
