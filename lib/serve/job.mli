(** Kernel-invocation jobs — the unit of work Exo-serve schedules.

    A job asks the server to run [shreds] exo-sequencer shreds of a
    registered media kernel ({!Exochi_kernels.Registry}) against that
    kernel's resident surface arena. Jobs carry a tenant id, a priority
    class, a submission timestamp on the simulated clock and an optional
    absolute deadline; the dispatcher coalesces compatible jobs into one
    CHI [parallel] team per dispatch cycle. *)

(** Priority classes, strictly ordered: a dispatch cycle never leads with
    a [Normal] job while a [High] job is queued anywhere. *)
type priority = High | Normal | Low

(** 0 for [High], 1 for [Normal], 2 for [Low]. *)
val priority_rank : priority -> int

val priority_name : priority -> string
val priority_of_string : string -> priority option

type t = {
  id : int;
  tenant : int;  (** index into the server's tenant table *)
  kernel : string;  (** {!Exochi_kernels.Registry} abbreviation *)
  shreds : int;  (** exo-sequencer shreds requested (> 0) *)
  priority : priority;
  submit_ps : int;  (** submission time on the simulated clock *)
  deadline_ps : int option;  (** absolute completion deadline *)
}

(** Why admission control or the dispatcher dropped a job. Every shed is
    typed so clients can distinguish overload from bad requests. *)
type shed_reason =
  | Unknown_kernel of string  (** no such kernel in the registry *)
  | Queue_full of { tenant : int; depth : int; cap : int }
      (** the tenant's queue is at capacity *)
  | Inflight_exceeded of { backlog : int; cap : int }
      (** the server-wide admitted-backlog budget is exhausted *)
  | Deadline_expired of { late_ps : int }
      (** the deadline passed before admission or dispatch *)
  | Infeasible_deadline of { needed_ps : int; slack_ps : int }
      (** static admission: the Exo-bound worst-case runtime already
          exceeds the remaining slack, so the deadline cannot be met *)
  | Fatal_fault of { attempts : int }
      (** re-queued after dispatcher faults too many times *)

(** Stable short key for stats tables and trace events
    (["unknown-kernel"], ["queue-full"], ["inflight"], ["deadline"],
    ["infeasible-deadline"], ["fatal-fault"]). *)
val reason_label : shed_reason -> string

val reason_to_string : shed_reason -> string

(** [expired job ~now_ps] — the deadline (if any) has passed. *)
val expired : t -> now_ps:int -> bool

(** Earliest-deadline-first order within a priority class: deadline
    ascending (no deadline sorts last), then submission time, then id.
    A total order for deterministic queues. *)
val compare_edf : t -> t -> int
