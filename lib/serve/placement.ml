type policy = Least_loaded | Affinity

let policy_of_string = function
  | "least-loaded" -> Some Least_loaded
  | "affinity" -> Some Affinity
  | _ -> None

let policy_name = function
  | Least_loaded -> "least-loaded"
  | Affinity -> "affinity"

type t = {
  ndev : int;
  pol : policy;
  shreds : int array; (* outstanding shreds per device *)
  batches : int array; (* outstanding batches per device *)
  homes : (string, int) Hashtbl.t; (* kernel -> affinity device *)
}

let create ~devices ~policy =
  if devices <= 0 then invalid_arg "Placement.create: devices";
  {
    ndev = devices;
    pol = policy;
    shreds = Array.make devices 0;
    batches = Array.make devices 0;
    homes = Hashtbl.create 8;
  }

let devices t = t.ndev
let policy t = t.pol

let no_penalty (_ : int) = 0

let least_loaded t penalty =
  let cost d = t.shreds.(d) + penalty d in
  let best = ref 0 in
  for d = 1 to t.ndev - 1 do
    if cost d < cost !best then best := d
  done;
  !best

let place ?(penalty = no_penalty) t ~kernel ~shreds =
  let dev =
    match t.pol with
    | Least_loaded -> least_loaded t penalty
    | Affinity -> (
      let key = String.lowercase_ascii kernel in
      match Hashtbl.find_opt t.homes key with
      | Some home ->
        (* overflow to least-loaded only when home is busy and an idle
           peer exists — affinity is a preference, not a pin *)
        if t.shreds.(home) + penalty home = 0 then home
        else begin
          let ll = least_loaded t penalty in
          if t.shreds.(ll) + penalty ll = 0 then ll else home
        end
      | None ->
        let d = least_loaded t penalty in
        Hashtbl.replace t.homes key d;
        d)
  in
  t.shreds.(dev) <- t.shreds.(dev) + shreds;
  t.batches.(dev) <- t.batches.(dev) + 1;
  dev

let release t ~dev ~shreds =
  if dev < 0 || dev >= t.ndev then invalid_arg "Placement.release: dev";
  t.shreds.(dev) <- max 0 (t.shreds.(dev) - shreds);
  t.batches.(dev) <- max 0 (t.batches.(dev) - 1)

let load t ~dev =
  if dev < 0 || dev >= t.ndev then invalid_arg "Placement.load: dev";
  (t.shreds.(dev), t.batches.(dev))

let snapshot t = Array.init t.ndev (fun d -> (d, t.shreds.(d)))
