(** Device placement for multi-device serving.

    With [--devices N] the server runs one X3K device set and pins each
    batch to a device. The placement layer owns that choice: it tracks
    per-device load (outstanding shreds and batches) and picks the next
    device deterministically — same submission sequence, same placement,
    every run.

    Policies:
    - [Least_loaded]: the device with the fewest outstanding shreds;
      ties break to the lowest device index.
    - [Affinity]: each kernel sticks to the device that first ran it
      (arena cache locality); a kernel's first placement — and any
      overflow when its home device is saturated — falls back to
      least-loaded. *)

type policy = Least_loaded | Affinity

val policy_of_string : string -> policy option
val policy_name : policy -> string

type t

(** [create ~devices ~policy] — [devices] must be positive. *)
val create : devices:int -> policy:policy -> t

val devices : t -> int
val policy : t -> policy

(** Pick a device for a batch of [shreds] shreds of kernel [kernel] and
    account the load against it. Always succeeds (placement never
    sheds; admission decides capacity). [penalty], when given, adds
    extra load to a device during comparison — the server biases
    against devices with open circuit breakers. *)
val place : ?penalty:(int -> int) -> t -> kernel:string -> shreds:int -> int

(** Release a batch's load after it completes. *)
val release : t -> dev:int -> shreds:int -> unit

(** Outstanding (shreds, batches) on one device. *)
val load : t -> dev:int -> int * int

(** Devices in ascending index order with their outstanding shred
    counts (dashboard / debug surface). *)
val snapshot : t -> (int * int) array
