(* Crash-safe serve journal.

   One record per job-lifecycle event, framed by Exochi_guard.Journal
   (length + FNV-1a checksum, flushed per append), so a SIGKILL at any
   point leaves a loadable prefix. Because the whole simulator is
   deterministic, recovery is redo-from-start: the journal's job is not
   to restore state but to (a) identify which admitted jobs were never
   acknowledged and (b) verify the redo retraces the original run —
   each Done record carries the fault-plan stream positions at that
   completion, so a divergent replay is caught, not silently accepted.

   Payloads are space-separated text: trivially deterministic, and
   `strings` on a journal file is a usable debugging tool. *)

module Gj = Exochi_guard.Journal
module Checksum = Exochi_guard.Checksum

type record =
  | Meta of { fingerprint : int64 }
  | Admit of { job : int; at_ps : int }
  | Done of { job : int; done_ps : int; drawn : int array }
  | Shed of { job : int; reason : string }

let encode = function
  | Meta { fingerprint } -> Printf.sprintf "M %Lx" fingerprint
  | Admit { job; at_ps } -> Printf.sprintf "A %d %d" job at_ps
  | Done { job; done_ps; drawn } ->
    Printf.sprintf "D %d %d %s" job done_ps
      (String.concat " " (Array.to_list (Array.map string_of_int drawn)))
  | Shed { job; reason } -> Printf.sprintf "S %d %s" job reason

let decode s =
  match String.split_on_char ' ' s with
  | [ "M"; fp ] -> (
    match Int64.of_string_opt ("0x" ^ fp) with
    | Some fingerprint -> Some (Meta { fingerprint })
    | None -> None)
  | [ "A"; job; at ] -> (
    match (int_of_string_opt job, int_of_string_opt at) with
    | Some job, Some at_ps -> Some (Admit { job; at_ps })
    | _ -> None)
  | "D" :: job :: done_ps :: drawn -> (
    match
      ( int_of_string_opt job,
        int_of_string_opt done_ps,
        List.map int_of_string_opt drawn )
    with
    | Some job, Some done_ps, counts
      when List.for_all Option.is_some counts ->
      Some
        (Done
           {
             job;
             done_ps;
             drawn = Array.of_list (List.map Option.get counts);
           })
    | _ -> None)
  | [ "S"; job; reason ] -> (
    match int_of_string_opt job with
    | Some job -> Some (Shed { job; reason })
    | _ -> None)
  | _ -> None

(* Fingerprint of the run configuration: a recovered process must be
   replaying the same config/workload/fault spec, or the deterministic
   redo is meaningless. Callers hash whatever identifies their run. *)
let fingerprint parts =
  List.fold_left Checksum.add_string Checksum.offset_basis parts

type writer = Gj.writer

(* Start a fresh journal: truncates and stamps the fingerprint. Also
   used by recovery itself — the redo rewrites the journal from scratch
   so the recovered file is byte-identical to an uninterrupted run's. *)
let start path ~fingerprint:fp =
  let w = Gj.create_writer path in
  Gj.append w (encode (Meta { fingerprint = fp }));
  w

let record w r = Gj.append w (encode r)
let close w = Gj.close_writer w

type replay = {
  rp_fingerprint : int64 option;
  rp_admitted : (int * int) list; (* job, at_ps — journal order *)
  rp_completed : (int * int array) list; (* job, drawn — journal order *)
  rp_shed : (int * string) list;
  rp_truncated : bool;
  rp_garbled : int; (* framed-but-undecodable records (skipped) *)
}

let load path =
  let { Gj.records; truncated } = Gj.load path in
  let fp = ref None and garbled = ref 0 in
  let admitted = ref [] and completed = ref [] and shed = ref [] in
  List.iter
    (fun payload ->
      match decode payload with
      | Some (Meta { fingerprint }) ->
        if !fp = None then fp := Some fingerprint
      | Some (Admit { job; at_ps }) -> admitted := (job, at_ps) :: !admitted
      | Some (Done { job; drawn; _ }) -> completed := (job, drawn) :: !completed
      | Some (Shed { job; reason }) -> shed := (job, reason) :: !shed
      | None -> incr garbled)
    records;
  {
    rp_fingerprint = !fp;
    rp_admitted = List.rev !admitted;
    rp_completed = List.rev !completed;
    rp_shed = List.rev !shed;
    rp_truncated = truncated;
    rp_garbled = !garbled;
  }

(* Jobs admitted but neither completed nor shed — the un-acked work a
   crash stranded; the redo re-executes them (and everything else). *)
let unacked rp =
  let resolved = Hashtbl.create 64 in
  List.iter (fun (j, _) -> Hashtbl.replace resolved j ()) rp.rp_completed;
  List.iter (fun (j, _) -> Hashtbl.replace resolved j ()) rp.rp_shed;
  List.filter (fun (j, _) -> not (Hashtbl.mem resolved j)) rp.rp_admitted
