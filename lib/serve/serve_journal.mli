(** Crash-safe serve journal.

    Naming: this module (Exochi_serving.Serve_journal) {e owns} the
    crash-safe serve log — job-lifecycle records and redo-from-start
    recovery semantics. The generic length-prefixed checksummed record
    framing it writes through lives in {!Exochi_guard.Journal}; the two
    previously collided on the name [Journal].

    Records every job admission, completion and shed into a
    length-prefixed, checksummed, per-record-flushed file
    ({!Exochi_guard.Journal} framing), so a process killed mid-run
    leaves a loadable prefix.

    The simulator is deterministic, so recovery is {e redo-from-start}:
    [--recover] replays the identical workload and uses the journal to
    (a) report which admitted jobs were never acknowledged and (b)
    {e verify} the redo — each [Done] record carries the fault-plan
    stream positions ({!Exochi_faults.Fault_plan.drawn_counts}) at that
    completion, and the redo must reproduce the journaled completion
    sequence exactly. The redo rewrites the journal from scratch, so a
    recovered journal is byte-identical to an uninterrupted run's. *)

type record =
  | Meta of { fingerprint : int64 }
      (** first record: hash of the run configuration *)
  | Admit of { job : int; at_ps : int }
  | Done of { job : int; done_ps : int; drawn : int array }
      (** [drawn] = per-class fault-stream positions at completion *)
  | Shed of { job : int; reason : string }

(** Hash a run-identifying list of strings (config, seed, workload and
    fault specs) into a journal fingerprint. *)
val fingerprint : string list -> int64

type writer

(** Truncate/create the journal and stamp the fingerprint. *)
val start : string -> fingerprint:int64 -> writer

val record : writer -> record -> unit
val close : writer -> unit

type replay = {
  rp_fingerprint : int64 option;  (** from the leading [Meta] record *)
  rp_admitted : (int * int) list;  (** (job, at_ps), journal order *)
  rp_completed : (int * int array) list;
      (** (job, drawn), journal order — the sequence a recovering run
          must reproduce *)
  rp_shed : (int * string) list;
  rp_truncated : bool;  (** a torn/corrupt tail frame was dropped *)
  rp_garbled : int;  (** well-framed but undecodable records, skipped *)
}

val load : string -> replay

(** Admitted jobs with neither a [Done] nor a [Shed] record — the
    un-acked work the crash stranded. *)
val unacked : replay -> (int * int) list
